// Benchmark harness: one benchmark per table/figure/quantitative claim of
// the paper (see DESIGN.md §3 for the experiment index). Each benchmark
// regenerates the corresponding artefact and reports the headline numbers
// as custom metrics, so `go test -bench=. -benchmem` reproduces the
// evaluation end to end. EXPERIMENTS.md records paper-vs-measured.
package repro_test

import (
	"testing"
	"time"

	"repro/internal/calib"
	"repro/internal/circuit"
	"repro/internal/cryo"
	"repro/internal/device"
	"repro/internal/facility"
	"repro/internal/hybrid"
	"repro/internal/netmodel"
	"repro/internal/ops"
	"repro/internal/qdmi"
	"repro/internal/qrm"
	"repro/internal/transpile"
)

// --- E1: Table 1 — site survey acceptance over three candidates. ---

func BenchmarkTable1SiteSurvey(b *testing.B) {
	sites := []facility.Site{
		{Name: "urban", Env: facility.NoisyUrban(), DeliveryWidthCM: 130, FloorLoadKgM2: 2000, CellTowerDistM: 220, FluorescentM: 3},
		{Name: "borderline", Env: facility.Borderline(), DeliveryWidthCM: 95, FloorLoadKgM2: 1100, CellTowerDistM: 450, FluorescentM: 4},
		{Name: "basement", Env: facility.Quiet(), DeliveryWidthCM: 110, FloorLoadKgM2: 1600, CellTowerDistM: 800, FluorescentM: 6},
	}
	var accepted int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reports, err := facility.RankSites(sites, facility.SurveyConfig{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		accepted = 0
		for _, r := range reports {
			if r.Accepted {
				accepted++
			}
		}
	}
	b.ReportMetric(float64(accepted), "sites-accepted")
	b.ReportMetric(3, "sites-surveyed")
}

// --- E2: Figure 4 — autonomous calibration fidelity over 146 days. ---

func BenchmarkFigure4CalibrationSeries(b *testing.B) {
	var st ops.SeriesStats
	var rep *ops.Report
	for i := 0; i < b.N; i++ {
		sim, err := ops.New(ops.Config{Days: 146, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		rep, err = sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		st = rep.Stats()
	}
	b.ReportMetric(st.MeanF1Q, "mean-f1q")
	b.ReportMetric(st.MeanFReadout, "mean-freadout")
	b.ReportMetric(st.MeanFCZ, "mean-fcz")
	b.ReportMetric(rep.UnattendedDays, "unattended-days")
	b.ReportMetric(float64(rep.QuickCals), "quick-cals")
	b.ReportMetric(float64(rep.FullCals), "full-cals")
}

// --- E3: §2.4 — output bandwidth vs 1 GbE across qubit counts. ---

func BenchmarkSection24Bandwidth(b *testing.B) {
	var rate20 float64
	var rows []netmodel.ScalingRow
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = netmodel.ScalingTable([]int{20, 54, 150})
		if err != nil {
			b.Fatal(err)
		}
		rate20 = rows[0].RateBps
	}
	b.ReportMetric(rate20/1000, "kbit/s-at-20q")
	b.ReportMetric(rows[2].RateBps/1000, "kbit/s-at-150q")
	b.ReportMetric(100*rows[0].Utilization, "gbe-util-%")
}

// --- E4: §3.2 — quick (40 min) vs full (100 min) recalibration quality. ---

func BenchmarkSection32QuickVsFullRecal(b *testing.B) {
	var quickF, fullF float64
	for i := 0; i < b.N; i++ {
		seed := int64(100 + i)
		mk := func() *device.QPU {
			q := device.New20Q(seed)
			q.AdvanceDrift(72) // three days of drift before the procedure
			return q
		}
		qq := mk()
		qq.Recalibrate(false)
		quickF = qq.Calibration().MeanF1Q()
		qf := mk()
		qf.Recalibrate(true)
		fullF = qf.Calibration().MeanF1Q()
	}
	b.ReportMetric(quickF, "f1q-after-quick")
	b.ReportMetric(fullF, "f1q-after-full")
	b.ReportMetric(40, "quick-minutes")
	b.ReportMetric(100, "full-minutes")
}

// --- E5: §3.5 — outage recovery timelines and the redundancy ablation. ---

func BenchmarkSection35OutageRecovery(b *testing.B) {
	var secsTo1K, cooldownDays float64
	for i := 0; i < b.N; i++ {
		// Time from cooling fault to calibration loss (paper: ~2 min).
		c := cryo.New()
		c.SetCooling(cryo.CoolingOff)
		secsTo1K = 0
		for c.CalibrationSafe() {
			c.Advance(5)
			secsTo1K += 5
		}
		// Full cooldown from ambient (paper: 2-5 days).
		w := cryo.NewWarm()
		w.SetCooling(cryo.CoolingOn)
		hours := 0.0
		for !w.AtBase() {
			w.Advance(3600)
			hours++
		}
		cooldownDays = hours / 24
	}
	b.ReportMetric(secsTo1K, "secs-to-1K")
	b.ReportMetric(cooldownDays, "cooldown-days")
}

func BenchmarkSection35RedundancyAblation(b *testing.B) {
	outages := []ops.OutageEvent{{Kind: ops.OutageCoolingWater, StartDay: 3, DurationHours: 6}}
	var availSingle, availRedundant float64
	for i := 0; i < b.N; i++ {
		s1, err := ops.New(ops.Config{Days: 14, Seed: 3, Outages: outages})
		if err != nil {
			b.Fatal(err)
		}
		r1, err := s1.Run()
		if err != nil {
			b.Fatal(err)
		}
		s2, err := ops.New(ops.Config{Days: 14, Seed: 3, Redundant: true, Outages: outages})
		if err != nil {
			b.Fatal(err)
		}
		r2, err := s2.Run()
		if err != nil {
			b.Fatal(err)
		}
		availSingle = r1.AvailableFraction
		availRedundant = r2.AvailableFraction
	}
	b.ReportMetric(100*availSingle, "avail-single-%")
	b.ReportMetric(100*availRedundant, "avail-redundant-%")
}

// --- E6: §2.2 — power profile vs the Cray EX4000 envelope. ---

func BenchmarkSection22PowerProfile(b *testing.B) {
	var peak, steady float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		warm := cryo.NewWarm()
		warm.SetCooling(cryo.CoolingOn)
		peak = warm.PowerDrawKW()
		cold := cryo.New()
		steady = cold.PowerDrawKW()
	}
	b.ReportMetric(peak, "peak-kw")
	b.ReportMetric(steady, "steady-kw")
	b.ReportMetric(140, "cray-ex4000-kw")
}

// --- E7: Figure 2 — MQSS routing, HPC path vs REST path. ---

func BenchmarkFigure2MQSSRoutingHPCPath(b *testing.B) {
	m := qrm.NewManager(qdmi.NewDevice(device.NewTwin20Q(1), nil))
	ghz := circuit.GHZ(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := m.Submit(qrm.Request{Circuit: ghz, Shots: 10, User: "bench"})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Drain(); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Job(id); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: Figure 3 / §3.1 — telemetry-aware JIT placement vs static. ---

func BenchmarkFigure3JITPlacement(b *testing.B) {
	// A device drifted for a week without calibration: the JIT path should
	// find better qubits than the static identity layout.
	qpu := device.New20Q(8)
	qpu.AdvanceDrift(24 * 7)
	dev := qdmi.NewDevice(qpu, nil)
	ghz := circuit.GHZ(6)
	var fJIT, fStatic float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := dev.Target()
		rj, err := transpile.Transpile(ghz, target, transpile.Options{Placement: transpile.PlaceFidelityAware})
		if err != nil {
			b.Fatal(err)
		}
		rs, err := transpile.Transpile(ghz, target, transpile.Options{Placement: transpile.PlaceStatic})
		if err != nil {
			b.Fatal(err)
		}
		fJIT = transpile.ExpectedFidelity(rj.Circuit, target)
		fStatic = transpile.ExpectedFidelity(rs.Circuit, target)
	}
	b.ReportMetric(fJIT, "expected-fidelity-jit")
	b.ReportMetric(fStatic, "expected-fidelity-static")
}

// --- E9: §3.2 — GHZ ladder health check (the live benchmark). ---

func BenchmarkGHZHealthCheck(b *testing.B) {
	dev := qdmi.NewDevice(device.New20Q(9), nil)
	var f4 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hc, err := calib.RunHealthCheck(dev, []int{2, 4, 6}, 200)
		if err != nil {
			b.Fatal(err)
		}
		f4 = hc.Fidelities[4]
	}
	b.ReportMetric(f4, "ghz4-fidelity")
}

// --- E10: §4 user projects — VQE (H2) and QAOA-TSP end to end. ---

func BenchmarkVQEH2(b *testing.B) {
	var energy float64
	for i := 0; i < b.N; i++ {
		ansatz, np := hybrid.HardwareEfficientAnsatz(2, 1)
		v := &hybrid.VQE{
			Hamiltonian: hybrid.H2Molecule(),
			Ansatz:      ansatz,
			Runner:      &hybrid.ExactRunner{Seed: 3},
			Shots:       2000,
			Optimizer:   hybrid.DefaultSPSA(150, 5),
		}
		initial := make([]float64, np)
		for j := range initial {
			initial[j] = 0.1 * float64(j+1)
		}
		res, err := v.Run(initial)
		if err != nil {
			b.Fatal(err)
		}
		energy = res.Value
	}
	b.ReportMetric(energy, "vqe-energy-hartree")
	b.ReportMetric(hybrid.H2GroundStateEnergy(), "exact-energy-hartree")
}

func BenchmarkQAOATSP(b *testing.B) {
	dist := [][]float64{{0, 2, 9}, {2, 0, 6}, {9, 6, 0}}
	var bestLen, optLen float64
	for i := 0; i < b.N; i++ {
		tsp, err := hybrid.NewTSP(dist)
		if err != nil {
			b.Fatal(err)
		}
		qubo, err := tsp.QUBO()
		if err != nil {
			b.Fatal(err)
		}
		q := &hybrid.QAOA{
			Cost: qubo.ToIsing(), Layers: 2,
			Runner: &hybrid.ExactRunner{Seed: 99}, Shots: 2000,
			Optimizer: hybrid.DefaultSPSA(60, 31),
		}
		res, err := q.Run([]float64{0.1, 0.1, 0.2, 0.2})
		if err != nil {
			b.Fatal(err)
		}
		if tour, derr := tsp.DecodeTour(res.BestBits); derr == nil {
			bestLen, _ = tsp.TourLength(tour)
		}
		_, optLen, _ = tsp.BruteForceBestTour()
	}
	b.ReportMetric(bestLen, "qaoa-tour-length")
	b.ReportMetric(optLen, "optimal-tour-length")
}

// --- E12: §3.2 — uptime accounting over the long campaign. ---

func BenchmarkUptimeAccounting(b *testing.B) {
	var avail, calHours float64
	for i := 0; i < b.N; i++ {
		sim, err := ops.New(ops.Config{Days: 120, Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		avail = rep.AvailableFraction
		calHours = rep.CalibrationHours
	}
	b.ReportMetric(100*avail, "availability-%")
	b.ReportMetric(calHours, "calibration-hours")
}

// --- Ablations on design choices (DESIGN.md §4). ---

func BenchmarkAblationPeepholeOptimizer(b *testing.B) {
	dev := qdmi.NewDevice(device.New20Q(15), nil)
	target := dev.Target()
	// A frontend-style circuit with redundancy the optimizer can remove.
	c := circuit.New(6, "redundant")
	for i := 0; i < 5; i++ {
		c.X(i).X(i).T(i).Tdag(i)
	}
	c.H(0)
	for q := 1; q < 6; q++ {
		c.CNOT(q-1, q)
	}
	var withOpt, withoutOpt int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		on, err := transpile.Transpile(c, target, transpile.Options{Placement: transpile.PlaceStatic})
		if err != nil {
			b.Fatal(err)
		}
		off, err := transpile.Transpile(c, target, transpile.Options{Placement: transpile.PlaceStatic, SkipOptimize: true})
		if err != nil {
			b.Fatal(err)
		}
		withOpt, withoutOpt = on.Stats.OutputGates, off.Stats.OutputGates
	}
	b.ReportMetric(float64(withOpt), "gates-optimized")
	b.ReportMetric(float64(withoutOpt), "gates-unoptimized")
}

func BenchmarkAblationTrajectoryShotNoise(b *testing.B) {
	// Readout-fidelity estimation error vs shot count: how many shots the
	// health checks need for a stable number.
	qpu := device.New20Q(16)
	dev := qdmi.NewDevice(qpu, nil)
	res, err := transpile.Transpile(circuit.GHZ(4), dev.Target(), transpile.Options{
		Placement: transpile.PlaceFidelityAware,
	})
	if err != nil {
		b.Fatal(err)
	}
	var spread float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo, hi := 1.0, 0.0
		for rep := 0; rep < 5; rep++ {
			out, err := qpu.Execute(res.Circuit, 200)
			if err != nil {
				b.Fatal(err)
			}
			f := 0.0
			for outcome, c := range out.Counts {
				placed0, placed1 := true, true
				for _, p := range res.FinalLayout[:4] {
					if outcome&(1<<uint(p)) != 0 {
						placed0 = false
					} else {
						placed1 = false
					}
				}
				if placed0 || placed1 {
					f += float64(c)
				}
			}
			f /= 200
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
		spread = hi - lo
	}
	b.ReportMetric(spread, "fidelity-spread-at-200-shots")
}

func BenchmarkAblationRoutingStrategy(b *testing.B) {
	// A line with a detour loop, and a TLS parked on the direct coupler
	// between qubits 1 and 2: the hop-minimal route crosses it, the
	// fidelity-weighted route detours through the loop.
	//
	//   0 - 1 - 2 - 3 - 4
	//       |   |
	//       5 - 6
	target := &transpile.Target{
		NumQubits: 7,
		Edges: [][2]int{
			{0, 1}, {1, 2}, {2, 3}, {3, 4},
			{1, 5}, {5, 6}, {2, 6},
		},
		F1Q:   make([]float64, 7),
		FRead: make([]float64, 7),
		FCZ:   map[[2]int]float64{},
	}
	for i := range target.F1Q {
		target.F1Q[i] = 0.999
		target.FRead[i] = 0.98
	}
	for _, e := range target.Edges {
		target.FCZ[e] = 0.99
	}
	target.FCZ[[2]int{1, 2}] = 0.65
	// Logical CZ between far-apart physical qubits 0 and 3 forces routing.
	ghz := circuit.New(4, "far").H(0).CNOT(0, 3)
	var fHop, fFid float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hop, err := transpile.Transpile(ghz, target, transpile.Options{
			Placement: transpile.PlaceStatic, Routing: transpile.RouteShortestHop,
		})
		if err != nil {
			b.Fatal(err)
		}
		fid, err := transpile.Transpile(ghz, target, transpile.Options{
			Placement: transpile.PlaceStatic, Routing: transpile.RouteFidelityWeighted,
		})
		if err != nil {
			b.Fatal(err)
		}
		fHop = transpile.ExpectedFidelity(hop.Circuit, target)
		fFid = transpile.ExpectedFidelity(fid.Circuit, target)
	}
	b.ReportMetric(fHop, "expected-fidelity-hop")
	b.ReportMetric(fFid, "expected-fidelity-weighted")
}

func BenchmarkMaintenancePlanning(b *testing.B) {
	var days float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plan := ops.MaintenancePlan(730, 0)
		if err := ops.ValidatePlan(plan, 730); err != nil {
			b.Fatal(err)
		}
		days = ops.TotalMaintenanceDays(plan)
	}
	b.ReportMetric(days, "maintenance-days-2y")
}

// --- E13: dispatch-pipeline throughput and latency at 1/4/16 workers. ---
//
// The batch workload is the VQE measurement loop: a handful of distinct
// circuits resubmitted many times per round. Execution runs against the
// digital twin with a 2 ms control-electronics round-trip (the paced mode),
// so the benchmark is latency-bound the way the real integration is — the
// host CPU compiles while the QPU round-trip is in flight, which is exactly
// the overlap the worker pool exists to exploit. The transpile cache
// collapses the repeated compilations to one per circuit per calibration
// epoch.

func benchmarkDispatchThroughput(b *testing.B, workers int) {
	qpu := device.NewTwin20Q(30)
	qpu.SetExecLatency(2 * time.Millisecond)
	m := qrm.NewManager(qdmi.NewDevice(qpu, nil))
	if err := m.Start(workers); err != nil {
		b.Fatal(err)
	}
	defer m.Stop()
	circuits := []*circuit.Circuit{circuit.GHZ(3), circuit.GHZ(4), circuit.GHZ(5), circuit.GHZ(6)}
	const repeats = 16 // 64 jobs per round
	jobs := 0
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		reqs := make([]qrm.Request, 0, len(circuits)*repeats)
		for r := 0; r < repeats; r++ {
			for _, c := range circuits {
				reqs = append(reqs, qrm.Request{Circuit: c, Shots: 20, User: "bench"})
			}
		}
		_, ids, err := m.SubmitBatch(reqs)
		if err != nil {
			b.Fatal(err)
		}
		for _, id := range ids {
			j, err := m.WaitJob(id)
			if err != nil {
				b.Fatal(err)
			}
			if j.Status != qrm.StatusDone {
				b.Fatalf("job %d: %s (%s)", id, j.Status, j.Error)
			}
		}
		jobs += len(ids)
	}
	elapsed := time.Since(start)
	b.StopTimer()
	snap := m.Metrics()
	b.ReportMetric(float64(jobs)/elapsed.Seconds(), "jobs/s")
	b.ReportMetric(snap.E2EMs.Quantile(0.50), "p50-ms")
	b.ReportMetric(snap.E2EMs.Quantile(0.95), "p95-ms")
	b.ReportMetric(100*snap.HitRatio(), "cache-hit-%")
}

func BenchmarkDispatchThroughput1Worker(b *testing.B)   { benchmarkDispatchThroughput(b, 1) }
func BenchmarkDispatchThroughput4Workers(b *testing.B)  { benchmarkDispatchThroughput(b, 4) }
func BenchmarkDispatchThroughput16Workers(b *testing.B) { benchmarkDispatchThroughput(b, 16) }

// --- Substrate microbenchmarks: the simulator itself. ---

func BenchmarkStatevectorGHZ20(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := circuit.GHZ(20).Simulate()
		if err != nil {
			b.Fatal(err)
		}
		_ = s
	}
}

func BenchmarkTranspileGHZ20(b *testing.B) {
	dev := qdmi.NewDevice(device.New20Q(13), nil)
	target := dev.Target()
	ghz := circuit.GHZ(20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := transpile.Transpile(ghz, target, transpile.Options{
			Placement: transpile.PlaceFidelityAware,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNoisyExecutionGHZ5x100(b *testing.B) {
	qpu := device.New20Q(14)
	dev := qdmi.NewDevice(qpu, nil)
	res, err := transpile.Transpile(circuit.GHZ(5), dev.Target(), transpile.Options{
		Placement: transpile.PlaceFidelityAware,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qpu.Execute(res.Circuit, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E15/E16: compiled-circuit execution engine vs the naive shot loop. ---
//
// BenchmarkExecuteCompiled* time device.Execute (compile-once, pooled
// states, noiseless fast path, shot-branching trajectory tree on noisy
// jobs); the *Naive variants time the retained reference loop so the
// BENCH_sim.json speedups are reproducible from the benchmark table alone.

func benchmarkExecute(b *testing.B, qpu *device.QPU, naive bool, shots int) {
	b.Helper()
	ghz := device.NativeGHZLine(5)
	exec := qpu.Execute
	if naive {
		exec = qpu.ExecuteNaive
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec(ghz, shots); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(shots)*float64(b.N)/b.Elapsed().Seconds(), "shots/s")
}

func BenchmarkExecuteCompiled(b *testing.B)      { benchmarkExecute(b, device.NewTwin20Q(40), false, 200) }
func BenchmarkExecuteNaive(b *testing.B)         { benchmarkExecute(b, device.NewTwin20Q(40), true, 200) }
func BenchmarkExecuteCompiledNoisy(b *testing.B) { benchmarkExecute(b, device.New20Q(41), false, 200) }
func BenchmarkExecuteNaiveNoisy(b *testing.B)    { benchmarkExecute(b, device.New20Q(41), true, 200) }

// Shot-branching at depth: GHZ(10) crosses rows of the grid (snake path)
// and a 4000-shot job shows the leaves/shots amortization at scale. The
// leaves-per-shot custom metric is the redundancy the tree removed.
func BenchmarkExecuteBranchTreeGHZ10(b *testing.B) {
	qpu := device.New20Q(42)
	ghz := device.NativeGHZSnake(10)
	const shots = 4000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qpu.Execute(ghz, shots); err != nil {
			b.Fatal(err)
		}
	}
	st := qpu.ExecStats()
	b.ReportMetric(float64(shots)*float64(b.N)/b.Elapsed().Seconds(), "shots/s")
	b.ReportMetric(st.LeavesPerShot(), "leaves/shot")
}
