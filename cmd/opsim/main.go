// Command opsim runs the daily-operations campaign (Figure 4 and §3.5) and
// emits the fidelity series as CSV plus a summary — the data behind the
// paper's operational claims, regenerated on demand.
//
// Usage:
//
//	opsim [-days 146] [-seed 42] [-redundant] [-outage-day N -outage-hours H -outage-kind water|power] [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/ops"
)

func main() {
	days := flag.Int("days", 146, "campaign length in days")
	seed := flag.Int64("seed", 42, "simulation seed")
	redundant := flag.Bool("redundant", false, "redundant power + cooling (lesson 3)")
	outageDay := flag.Float64("outage-day", -1, "inject an outage starting this day (-1 = none)")
	outageHours := flag.Float64("outage-hours", 6, "outage duration in hours")
	outageKind := flag.String("outage-kind", "water", "outage kind: water or power")
	csvPath := flag.String("csv", "", "write the fidelity series to this CSV file")
	flag.Parse()

	cfg := ops.Config{Days: *days, Seed: *seed, Redundant: *redundant}
	if *outageDay >= 0 {
		kind := ops.OutageCoolingWater
		if *outageKind == "power" {
			kind = ops.OutagePower
		}
		cfg.Outages = []ops.OutageEvent{{Kind: kind, StartDay: *outageDay, DurationHours: *outageHours}}
	}
	sim, err := ops.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}

	st := rep.Stats()
	fmt.Printf("campaign: %d days, seed %d, redundant=%v\n", *days, *seed, *redundant)
	fmt.Printf("F1Q      mean %.4f  min %.4f\n", st.MeanF1Q, st.MinF1Q)
	fmt.Printf("Freadout mean %.4f  min %.4f\n", st.MeanFReadout, st.MinFReadout)
	fmt.Printf("FCZ      mean %.4f  min %.4f\n", st.MeanFCZ, st.MinFCZ)
	fmt.Printf("calibrations: %d quick / %d full (%.0f h)\n", rep.QuickCals, rep.FullCals, rep.CalibrationHours)
	fmt.Printf("downtime %.0f h (cooldown %.0f h), warmups>1K %d\n", rep.DowntimeHours, rep.CooldownHours, rep.WarmupsAbove1K)
	fmt.Printf("availability %.2f%%, longest unattended stretch %.0f days\n",
		100*rep.AvailableFraction, rep.UnattendedDays)

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(f, "day,f_1q,f_readout,f_cz")
		for _, p := range rep.Series {
			fmt.Fprintf(f, "%.2f,%.6f,%.6f,%.6f\n", p.Day, p.F1Q, p.FReadout, p.FCZ)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("series written to %s (%d points)\n", *csvPath, len(rep.Series))
	}
}
