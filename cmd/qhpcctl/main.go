// Command qhpcctl is the operator/user CLI for a running qhpcd: it submits
// OpenQASM circuits, inspects jobs and device state, and pages through job
// history — the dashboard operations §4's early users relied on.
//
// Usage:
//
//	qhpcctl -server http://localhost:8080 device
//	qhpcctl -server http://localhost:8080 submit -shots 500 -user alice circuit.qasm
//	qhpcctl -server http://localhost:8080 job 17
//	qhpcctl -server http://localhost:8080 history -user alice -offset 0 -limit 10
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/mqss"
	"repro/internal/qrm"
	"repro/internal/quantum"
)

func main() {
	server := flag.String("server", "http://localhost:8080", "qhpcd base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}
	client := mqss.NewRemoteClient(*server, nil)
	switch args[0] {
	case "device":
		info, err := client.Device()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("device: %s (%d qubits, twin=%v)\n", info.Properties.Name,
			info.Properties.NumQubits, info.Properties.DigitalTwin)
		fmt.Printf("fidelities: 1q %.4f, readout %.4f, cz %.4f (calibration age %.1f h)\n",
			info.Fidelity1Q, info.FidelityReadout, info.FidelityCZ, info.CalibrationAgeH)
		fmt.Println("coupling map:")
		for q := 0; q < info.Properties.NumQubits; q++ {
			fmt.Printf("  q%-2d -> %v\n", q, info.Properties.CouplingMap[q])
		}
	case "submit":
		fs := flag.NewFlagSet("submit", flag.ExitOnError)
		shots := fs.Int("shots", 1000, "shots")
		user := fs.String("user", "cli", "submitting user")
		static := fs.Bool("static", false, "static placement instead of fidelity-aware JIT")
		if err := fs.Parse(args[1:]); err != nil {
			log.Fatal(err)
		}
		if fs.NArg() != 1 {
			log.Fatal("submit needs exactly one .qasm file")
		}
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		c, err := circuit.ParseQASM(f)
		f.Close()
		if err != nil {
			log.Fatalf("parsing %s: %v", fs.Arg(0), err)
		}
		job, err := client.Run(qrm.Request{
			Circuit: c, Shots: *shots, User: *user, StaticPlacement: *static,
		})
		if err != nil {
			log.Fatal(err)
		}
		printJob(job)
	case "job":
		if len(args) != 2 {
			log.Fatal("job needs an ID")
		}
		id, err := strconv.Atoi(args[1])
		if err != nil {
			log.Fatalf("bad job id %q", args[1])
		}
		job, err := client.Job(id)
		if err != nil {
			log.Fatal(err)
		}
		printJob(job)
	case "history":
		fs := flag.NewFlagSet("history", flag.ExitOnError)
		user := fs.String("user", "", "filter by user")
		offset := fs.Int("offset", 0, "page offset")
		limit := fs.Int("limit", 10, "page size")
		if err := fs.Parse(args[1:]); err != nil {
			log.Fatal(err)
		}
		page, err := client.History(*user, *offset, *limit)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("jobs %d-%d of %d (has more: %v)\n",
			page.Offset+1, page.Offset+len(page.Jobs), page.Total, page.HasMore)
		for _, j := range page.Jobs {
			fmt.Printf("  #%-4d %-12s user=%-10s circuit=%q shots=%d\n",
				j.ID, j.Status, j.Request.User, j.Request.Circuit.Name, j.Request.Shots)
		}
	case "bench":
		fs := flag.NewFlagSet("bench", flag.ExitOnError)
		clients := fs.Int("clients", 8, "concurrent clients")
		jobs := fs.Int("jobs", 10, "jobs per client")
		shots := fs.Int("shots", 100, "shots per job")
		qubits := fs.Int("qubits", 4, "GHZ circuit size")
		batch := fs.Bool("batch", false, "submit each client's jobs as one streamed batch")
		if err := fs.Parse(args[1:]); err != nil {
			log.Fatal(err)
		}
		runBench(*server, *clients, *jobs, *shots, *qubits, *batch)
	default:
		usage()
	}
}

// runBench drives N concurrent clients against a running qhpcd and reports
// job throughput plus the client-observed latency distribution — the load
// harness for the QRM dispatch pipeline.
func runBench(server string, clients, jobs, shots, qubits int, batch bool) {
	if clients < 1 || jobs < 1 {
		log.Fatal("bench needs -clients >= 1 and -jobs >= 1")
	}
	ghz := circuit.GHZ(qubits)
	var mu sync.Mutex
	var latencies []time.Duration
	var failures int

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := mqss.NewRemoteClient(server, nil)
			user := fmt.Sprintf("bench-%d", c)
			if batch {
				reqs := make([]qrm.Request, jobs)
				for i := range reqs {
					reqs[i] = qrm.Request{Circuit: ghz, Shots: shots, User: user}
				}
				delivered := 0
				batchStart := time.Now()
				_, err := cl.StreamBatch(reqs, func(j *qrm.Job) {
					lat := time.Since(batchStart)
					mu.Lock()
					delivered++
					latencies = append(latencies, lat)
					if j.Status != qrm.StatusDone {
						failures++
					}
					mu.Unlock()
				})
				if err != nil {
					log.Printf("bench client %d: %v", c, err)
					mu.Lock()
					// Only jobs the stream never delivered count as extra
					// failures; delivered ones were already tallied above.
					failures += jobs - delivered
					mu.Unlock()
				}
				return
			}
			for i := 0; i < jobs; i++ {
				jobStart := time.Now()
				j, err := cl.Run(qrm.Request{Circuit: ghz, Shots: shots, User: user})
				lat := time.Since(jobStart)
				mu.Lock()
				latencies = append(latencies, lat)
				if err != nil || j.Status != qrm.StatusDone {
					failures++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := clients * jobs
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	mode := "sequential submits"
	if batch {
		mode = "streamed batches"
	}
	fmt.Printf("bench: %d clients x %d jobs (%s), GHZ(%d) x %d shots\n",
		clients, jobs, mode, qubits, shots)
	fmt.Printf("  wall time:    %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  throughput:   %.1f jobs/s\n", float64(total)/elapsed.Seconds())
	fmt.Printf("  latency:      p50 %v, p95 %v, max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond), pct(1.0).Round(time.Microsecond))
	fmt.Printf("  failures:     %d/%d\n", failures, total)

	cl := mqss.NewRemoteClient(server, nil)
	if m, err := cl.Metrics(); err == nil {
		fmt.Printf("server pipeline: %d workers, %d completed, max queue depth %d\n",
			m.Workers, m.Completed, m.MaxQueueDepth)
		fmt.Printf("  transpile cache: %d hits / %d misses (%.0f%% hit ratio)\n",
			m.CacheHits, m.CacheMisses, 100*m.HitRatio())
		fmt.Printf("  server e2e: p50 %.2f ms, p95 %.2f ms\n",
			m.E2EMs.Quantile(0.50), m.E2EMs.Quantile(0.95))
	}
}

func printJob(j *qrm.Job) {
	fmt.Printf("job #%d: %s\n", j.ID, j.Status)
	if j.Error != "" {
		fmt.Printf("  error: %s\n", j.Error)
		return
	}
	fmt.Printf("  compiled: %d gates (%d CZ) — %s\n", j.CompiledGates, j.CZCount, j.CompileStats)
	fmt.Printf("  layout (logical->physical): %v\n", j.Layout)
	fmt.Printf("  duration: %.1f ms on control electronics\n", j.DurationUs/1000)
	n := j.Request.Circuit.NumQubits
	shown := 0
	for outcome, count := range j.Counts {
		if shown >= 8 {
			fmt.Printf("  ... %d more outcomes\n", len(j.Counts)-8)
			break
		}
		logical := 0
		for i, p := range j.Layout {
			if outcome&(1<<uint(p)) != 0 {
				logical |= 1 << uint(i)
			}
		}
		fmt.Printf("  |%s> %d\n", quantum.FormatBitstring(logical, n), count)
		shown++
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: qhpcctl [-server URL] <command>
commands:
  device                               show device properties and live calibration
  submit [-shots N] [-user U] f.qasm   submit an OpenQASM circuit
  job <id>                             show one job
  history [-user U] [-offset N] [-limit N]   page through job history
  bench [-clients N] [-jobs N] [-shots N] [-qubits N] [-batch]
                                       drive concurrent load and report throughput/latency`)
	os.Exit(2)
}
