// Command qhpcctl is the operator/user CLI for a running qhpcd: it submits
// OpenQASM circuits, inspects jobs and device state, and pages through job
// history — the dashboard operations §4's early users relied on.
//
// Usage:
//
//	qhpcctl -server http://localhost:8080 device
//	qhpcctl -server http://localhost:8080 submit -shots 500 -user alice circuit.qasm
//	qhpcctl -server http://localhost:8080 job 17
//	qhpcctl -server http://localhost:8080 job submit -shots 500 -wait circuit.qasm
//	qhpcctl -server http://localhost:8080 job watch j-17
//	qhpcctl -server http://localhost:8080 job cancel j-17
//	qhpcctl -server http://localhost:8080 history -user alice -offset 0 -limit 10
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/mqss"
	"repro/internal/qrm"
	"repro/internal/quantum"
	"repro/internal/scenario"
	"repro/internal/telemetry/trace"
)

func main() {
	server := flag.String("server", "http://localhost:8080", "qhpcd base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}
	ctx := context.Background()
	client := mqss.NewRemoteClient(*server, nil)
	switch args[0] {
	case "device":
		var info *mqss.DeviceInfo
		var err error
		if len(args) > 1 {
			// Fleet servers host several backends; name one explicitly.
			info, err = client.FleetDevice(ctx, args[1])
		} else {
			info, err = client.Device(ctx)
		}
		if err != nil {
			log.Fatal(err)
		}
		if info.Properties.Name == "" {
			log.Fatal("empty device response — against a fleet server, use `qhpcctl device <name>` (see `qhpcctl fleet status` for the roster)")
		}
		fmt.Printf("device: %s (%d qubits, twin=%v)\n", info.Properties.Name,
			info.Properties.NumQubits, info.Properties.DigitalTwin)
		fmt.Printf("fidelities: 1q %.4f, readout %.4f, cz %.4f (calibration age %.1f h)\n",
			info.Fidelity1Q, info.FidelityReadout, info.FidelityCZ, info.CalibrationAgeH)
		fmt.Println("coupling map:")
		for q := 0; q < info.Properties.NumQubits; q++ {
			fmt.Printf("  q%-2d -> %v\n", q, info.Properties.CouplingMap[q])
		}
		if info.Calibration != nil && len(info.Calibration.Couplers) > 0 {
			fmt.Println("coupler CZ fidelities:")
			edges := make([][2]int, 0, len(info.Calibration.Couplers))
			for e := range info.Calibration.Couplers {
				edges = append(edges, e)
			}
			sort.Slice(edges, func(i, j int) bool {
				if edges[i][0] != edges[j][0] {
					return edges[i][0] < edges[j][0]
				}
				return edges[i][1] < edges[j][1]
			})
			for _, e := range edges {
				fmt.Printf("  q%d-q%d: %.4f\n", e[0], e[1], info.Calibration.FCZ(e[0], e[1]))
			}
		}
	case "submit":
		fs := flag.NewFlagSet("submit", flag.ExitOnError)
		shots := fs.Int("shots", 1000, "shots")
		user := fs.String("user", "cli", "submitting user")
		static := fs.Bool("static", false, "static placement instead of fidelity-aware JIT")
		device := fs.String("device", "", "fleet servers: pin the job to one backend")
		policy := fs.String("policy", "", "fleet servers: routing policy override")
		if err := fs.Parse(args[1:]); err != nil {
			log.Fatal(err)
		}
		if fs.NArg() != 1 {
			log.Fatal("submit needs exactly one .qasm file")
		}
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		c, err := circuit.ParseQASM(f)
		f.Close()
		if err != nil {
			log.Fatalf("parsing %s: %v", fs.Arg(0), err)
		}
		req := qrm.Request{Circuit: c, Shots: *shots, User: *user, StaticPlacement: *static}
		if *device != "" || *policy != "" {
			fj, err := client.RunRouted(ctx, req, mqss.RouteOptions{Device: *device, Policy: *policy})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("routed to %s (score %.4f, %d migrations)\n", fj.Device, fj.Score, fj.Migrations)
			if fj.Result != nil {
				res := *fj.Result
				res.ID = fj.ID
				printJob(&res)
			} else {
				fmt.Printf("job #%d: %s %s\n", fj.ID, fj.Status, fj.Error)
			}
			break
		}
		job, err := client.Run(ctx, req)
		if err != nil {
			log.Fatal(err)
		}
		printJob(job)
	case "job":
		if len(args) < 2 {
			log.Fatal("job needs a subcommand (submit/status/watch/cancel) or an ID")
		}
		// Back-compat: `qhpcctl job 17` still fetches the legacy record.
		if id, err := strconv.Atoi(args[1]); err == nil {
			job, err := client.Job(ctx, id)
			if err != nil {
				log.Fatal(err)
			}
			printJob(job)
			break
		}
		jobCommand(ctx, client, args[1:])
	case "history":
		fs := flag.NewFlagSet("history", flag.ExitOnError)
		user := fs.String("user", "", "filter by user")
		offset := fs.Int("offset", 0, "page offset")
		limit := fs.Int("limit", 10, "page size")
		if err := fs.Parse(args[1:]); err != nil {
			log.Fatal(err)
		}
		page, err := client.History(ctx, *user, *offset, *limit)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("jobs %d-%d of %d (has more: %v)\n",
			page.Offset+1, page.Offset+len(page.Jobs), page.Total, page.HasMore)
		for _, j := range page.Jobs {
			fmt.Printf("  #%-4d %-12s user=%-10s circuit=%q shots=%d\n",
				j.ID, j.Status, j.Request.User, j.Request.Circuit.Name, j.Request.Shots)
		}
	case "fleet":
		sub := "status"
		if len(args) > 1 {
			sub = args[1]
		}
		if sub != "status" {
			log.Fatalf("unknown fleet subcommand %q (want: status)", sub)
		}
		m, err := client.FleetMetrics(ctx)
		if err != nil {
			log.Fatal(err)
		}
		printFleetStatus(m)
	case "bench":
		fs := flag.NewFlagSet("bench", flag.ExitOnError)
		clients := fs.Int("clients", 8, "concurrent clients")
		jobs := fs.Int("jobs", 10, "jobs per client")
		shots := fs.Int("shots", 100, "shots per job")
		qubits := fs.Int("qubits", 4, "GHZ circuit size")
		batch := fs.Bool("batch", false, "submit each client's jobs as one streamed batch")
		fleetMode := fs.Bool("fleet", false, "use the fleet routing API (streamed batches with routing envelopes)")
		device := fs.String("device", "", "fleet mode: pin all jobs to one device")
		policy := fs.String("policy", "", "fleet mode: routing policy override")
		simMode := fs.Bool("sim", false, "run the in-process execution-engine bench (no server; compares naive vs compiled shot loop)")
		jsonOut := fs.String("json", "", "write machine-readable bench results to this file")
		if err := fs.Parse(args[1:]); err != nil {
			log.Fatal(err)
		}
		if *simMode {
			// -sim runs in process against a local device pair: the
			// server-load controls don't apply, and silently ignoring them
			// would misreport what was measured.
			set := map[string]bool{}
			fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
			for _, name := range []string{"clients", "batch", "fleet", "device", "policy"} {
				if set[name] {
					log.Fatalf("bench -sim is in-process; -%s does not apply (supported: -jobs, -shots, -qubits, -json)", name)
				}
			}
			// Zero values keep the harness defaults (the BENCH_sim.json
			// artifact configuration), so a bare `bench -sim` reproduces the
			// tracked workload; the bench subcommand's own flag defaults
			// must not override it.
			p := simBenchParams{jsonOut: *jsonOut}
			if set["jobs"] {
				p.jobs = *jobs
			}
			if set["shots"] {
				p.shots = *shots
			}
			if set["qubits"] {
				p.qubits = *qubits
			}
			runSimBench(p)
			break
		}
		runBench(*server, benchConfig{
			clients: *clients, jobs: *jobs, shots: *shots, qubits: *qubits,
			batch: *batch, fleet: *fleetMode, device: *device, policy: *policy,
			jsonOut: *jsonOut,
		})
	case "trace":
		jt, err := client.V2JobTrace(ctx, v2ID(args[1:]))
		if err != nil {
			log.Fatal(err)
		}
		printTrace(jt)
	case "scenarios":
		scenariosCommand(args[1:])
	case "store":
		storeCommand(ctx, client, args[1:])
	case "tenants":
		tenantsCommand(ctx, client, args[1:])
	case "federation":
		federationCommand(ctx, client, args[1:])
	default:
		usage()
	}
}

// printTrace renders the span tree as an indented waterfall: one line per
// span with its start offset, duration, share of the root's wall time, and
// attributes (docs/OBSERVABILITY.md explains how to read it).
func printTrace(jt *mqss.JobTrace) {
	state := fmt.Sprintf("%.3f ms total", jt.DurationUs/1000)
	if !jt.Complete {
		state += " (in flight)"
	}
	if jt.DroppedSpans > 0 {
		state += fmt.Sprintf(", %d spans dropped", jt.DroppedSpans)
	}
	fmt.Printf("trace %s [%s]: %s\n", jt.JobID, jt.State, state)
	if jt.Root == nil {
		return
	}
	total := jt.Root.DurationUs
	var walk func(sp *trace.SpanSnapshot, depth int)
	walk = func(sp *trace.SpanSnapshot, depth int) {
		pct := 0.0
		if total > 0 {
			pct = 100 * sp.DurationUs / total
		}
		name := sp.Name
		if sp.InProgress {
			name += " (in progress)"
		}
		fmt.Printf("  %-32s @%9.3f ms %10.3f ms %6.1f%%%s\n",
			strings.Repeat("  ", depth)+name,
			sp.StartUs/1000, sp.DurationUs/1000, pct, attrSuffix(sp.Attrs))
		for _, c := range sp.Children {
			walk(c, depth+1)
		}
	}
	walk(jt.Root, 0)
}

// attrSuffix renders span attributes deterministically (sorted keys).
func attrSuffix(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%s", k, attrs[k])
	}
	return "  {" + strings.TrimSpace(b.String()) + "}"
}

// scenariosCommand is the fault-scenario lab front-end: `scenarios list`
// shows the registry, `scenarios run` executes it in process (no daemon —
// each scenario boots its own fleet behind a real HTTP server) and applies
// the release gates exactly as the CI scenario-lab job does.
func scenariosCommand(args []string) {
	sub := "list"
	if len(args) > 0 {
		sub = args[0]
		args = args[1:]
	}
	switch sub {
	case "list":
		for _, s := range scenario.All() {
			fmt.Printf("  %-24s seed=%-4d %s\n", s.Name, s.Seed, s.Description)
		}
	case "run":
		fs := flag.NewFlagSet("scenarios run", flag.ExitOnError)
		name := fs.String("name", "", "run only the named scenario (default: all)")
		runs := fs.Int("runs", 3, "reruns per scenario (gates compare medians)")
		jsonOut := fs.String("json", "", "write the BENCH_scenarios.json artifact to this file")
		negative := fs.Bool("negative-control", false,
			"withhold every React hook so faults go unhandled; gates must trip")
		if err := fs.Parse(args); err != nil {
			log.Fatal(err)
		}
		r := &scenario.Runner{Runs: *runs, SkipReact: *negative, Logf: func(format string, a ...interface{}) {
			fmt.Printf(format+"\n", a...)
		}}
		art, err := r.RunAll(*name)
		if err != nil {
			log.Fatal(err)
		}
		for _, res := range art.Scenarios {
			fmt.Printf("%s: pass=%v (recovery %.2fx, warmup spread %.1f%%)\n",
				res.Name, res.Pass, res.RecoveryRatio, res.WarmupSpreadPct)
			for _, g := range res.Gates {
				mark := "PASS"
				if !g.Pass {
					mark = "FAIL"
				}
				fmt.Printf("  [%s] %-20s %s\n", mark, g.Name, g.Detail)
			}
		}
		if *jsonOut != "" {
			if err := art.WriteFile(*jsonOut); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", *jsonOut)
		}
		if *negative {
			if art.Pass {
				log.Fatal("negative control failed: no gate tripped with React hooks withheld")
			}
			fmt.Println("negative control OK: gates tripped with React hooks withheld")
			return
		}
		if !art.Pass {
			os.Exit(1)
		}
	default:
		log.Fatalf("unknown scenarios subcommand %q (want: list, run)", sub)
	}
}

// storeCommand inspects the daemon's crash-durable job store:
// `store status` reads GET /api/v2/admin/store (docs/DURABILITY.md).
func storeCommand(ctx context.Context, client *mqss.Client, args []string) {
	sub := "status"
	if len(args) > 0 {
		sub = args[0]
	}
	if sub != "status" {
		log.Fatalf("unknown store subcommand %q (want: status)", sub)
	}
	st, err := client.StoreStatus(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if !st.Attached {
		fmt.Println("durable store: not attached (daemon running without -data-dir)")
		return
	}
	fmt.Printf("durable store: %s (wal-sync=%s)\n", st.Dir, st.SyncMode)
	fmt.Printf("wal: lsn %d (durable %d), %d appends, %d fsyncs, %s written\n",
		st.LastLSN, st.DurableLSN, st.Appends, st.Fsyncs, humanBytes(st.Bytes))
	fmt.Printf("disk: %d journal segments, %s total\n", st.Segments, humanBytes(uint64(st.WALBytes)))
	last := "never"
	if st.LastCompaction != "" {
		last = st.LastCompaction
	}
	fmt.Printf("compaction: %d runs, snapshot lsn %d, last %s\n",
		st.Compactions, st.SnapshotLSN, last)
	if st.Replay != nil {
		fmt.Printf("startup replay: %d records from %d segments (snapshot lsn %d) in %.1f ms",
			st.Replay.Records, st.Replay.Segments, st.Replay.SnapshotLSN, st.Replay.DurationMs)
		if st.Replay.SkippedBytes > 0 {
			fmt.Printf("; torn tail: %d bytes skipped", st.Replay.SkippedBytes)
		}
		fmt.Println()
	}
	if st.Restored != nil {
		fmt.Printf("recovered jobs: %d terminal, %d re-queued, %d expired\n",
			st.Restored.Terminal, st.Restored.Requeued, st.Restored.Expired)
	}
}

// tenantsCommand shows the multi-tenant admission plane:
// `tenants status` reads GET /api/v2/admin/tenants — the configured limits
// plus one usage row per tenant (queue depth, outcome counters, throttles).
func tenantsCommand(ctx context.Context, client *mqss.Client, args []string) {
	sub := "status"
	if len(args) > 0 {
		sub = args[0]
	}
	if sub != "status" {
		log.Fatalf("unknown tenants subcommand %q (want: status)", sub)
	}
	ts, err := client.TenantsStatus(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if ts.Limiter != nil {
		fmt.Printf("rate limit: %.3g jobs/s per tenant (burst %d); refusals are 429 + Retry-After\n",
			ts.Limiter.Rate, ts.Limiter.Burst)
	} else {
		fmt.Println("rate limit: off")
	}
	if ts.Admission != nil && ts.Admission.Enabled() {
		fmt.Printf("queue bounds: per-tenant %d, high-water %d (0 = unbounded); overflow is shed\n",
			ts.Admission.MaxTenantQueue, ts.Admission.HighWater)
	} else {
		fmt.Println("queue bounds: off")
	}
	if len(ts.Tenants) == 0 {
		fmt.Println("no tenant activity yet")
		return
	}
	fmt.Printf("%-20s %6s %9s %9s %6s %9s %6s %9s %9s\n",
		"TENANT", "QUEUED", "SUBMITTED", "COMPLETED", "FAILED", "CANCELLED", "SHED", "ALLOWED", "THROTTLED")
	for _, row := range ts.Tenants {
		fmt.Printf("%-20s %6d %9d %9d %6d %9d %6d %9d %9d\n",
			row.User, row.Queued, row.Submitted, row.Completed, row.Failed,
			row.Cancelled, row.Shed, row.Allowed, row.Throttled)
	}
}

// federationCommand shows the sharded-fleet membership: `federation
// status` reads GET /api/v2/federation/status — which peers this node
// knows, who is alive, and each member's job-ID range base
// (docs/FEDERATION.md).
func federationCommand(ctx context.Context, client *mqss.Client, args []string) {
	sub := "status"
	if len(args) > 0 {
		sub = args[0]
	}
	if sub != "status" {
		log.Fatalf("unknown federation subcommand %q (want: status)", sub)
	}
	st, err := client.FederationStatus(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("federation: %d nodes, %d alive (answering node: %s)\n", st.Nodes, st.Alive, st.NodeID)
	fmt.Printf("%-12s %-28s %10s %6s %s\n", "NODE", "URL", "ID-BASE", "ALIVE", "LAST-SEEN")
	for _, p := range st.Peers {
		alive := "no"
		if p.Alive {
			alive = "yes"
		}
		seen := "never"
		switch {
		case p.Self:
			seen = "(self)"
		case p.LastSeen >= 0:
			// last_seen_ms is already relative: ms since last contact.
			seen = fmt.Sprintf("%.1fs ago", float64(p.LastSeen)/1000)
		}
		fmt.Printf("%-12s %-28s %10d %6s %s\n", p.ID, p.URL, p.IDBase, alive, seen)
	}
}

// humanBytes renders a byte count with a binary-prefix unit.
func humanBytes(n uint64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// jobCommand is the v2 async job group: submit returns immediately with a
// handle (or -wait blocks), status/watch/cancel operate on the opaque ID.
func jobCommand(ctx context.Context, client *mqss.Client, args []string) {
	switch args[0] {
	case "submit":
		fs := flag.NewFlagSet("job submit", flag.ExitOnError)
		shots := fs.Int("shots", 1000, "shots")
		user := fs.String("user", "cli", "submitting user")
		priority := fs.Int("priority", 0, "queue priority (higher dispatches first)")
		deadline := fs.Float64("deadline-ms", 0, "dispatch deadline in ms from submission (0 = none)")
		static := fs.Bool("static", false, "static placement instead of fidelity-aware JIT")
		device := fs.String("device", "", "fleet servers: pin the job to one backend")
		policy := fs.String("policy", "", "fleet servers: routing policy override")
		idemKey := fs.String("idempotency-key", "", "replay-safe submission key")
		wait := fs.Bool("wait", false, "block until the job is terminal and print the result")
		if err := fs.Parse(args[1:]); err != nil {
			log.Fatal(err)
		}
		if fs.NArg() != 1 {
			log.Fatal("job submit needs exactly one .qasm file")
		}
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		c, err := circuit.ParseQASM(f)
		f.Close()
		if err != nil {
			log.Fatalf("parsing %s: %v", fs.Arg(0), err)
		}
		h, err := client.Submit(ctx, mqss.SubmitRequest{
			Circuit: c, Shots: *shots, User: *user,
			Priority: *priority, DeadlineMs: *deadline,
			StaticPlacement: *static, Device: *device, Policy: *policy,
		}, *idemKey)
		if err != nil {
			log.Fatal(err)
		}
		if !*wait {
			fmt.Printf("accepted: job %s (poll with `qhpcctl job status %s`, stream with `qhpcctl job watch %s`)\n",
				h.ID, h.ID, h.ID)
			return
		}
		job, err := h.Wait(ctx)
		if err != nil {
			log.Fatal(err)
		}
		printV2Job(job)
	case "status":
		job, err := client.V2Job(ctx, v2ID(args[1:]))
		if err != nil {
			log.Fatal(err)
		}
		printV2Job(job)
	case "watch":
		h, err := client.Handle(v2ID(args[1:]))
		if err != nil {
			log.Fatal(err)
		}
		job, err := h.Watch(ctx, func(ev mqss.JobEvent) {
			fmt.Printf("  event %-4d %-10s device=%-22s %s\n", ev.Seq, ev.State, ev.Device, ev.Reason)
		})
		if err != nil {
			log.Fatal(err)
		}
		printV2Job(job)
	case "cancel":
		h, err := client.Handle(v2ID(args[1:]))
		if err != nil {
			log.Fatal(err)
		}
		if err := h.Cancel(ctx); err != nil {
			log.Fatal(err)
		}
		job, err := h.Poll(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cancel requested: job %s now %s\n", job.ID, job.State)
	default:
		log.Fatalf("unknown job subcommand %q (want: submit, status, watch, cancel)", args[0])
	}
}

// v2ID reads the ID argument, accepting both the opaque form ("j-17") and
// a bare number.
func v2ID(args []string) string {
	if len(args) != 1 {
		log.Fatal("need exactly one job ID")
	}
	if n, err := strconv.Atoi(args[0]); err == nil {
		return mqss.FormatJobID(n)
	}
	return args[0]
}

// printV2Job renders the unified v2 record.
func printV2Job(j *mqss.Job) {
	fmt.Printf("job %s: %s", j.ID, j.State)
	if j.Device != "" {
		fmt.Printf(" on %s", j.Device)
	}
	if j.Migrations > 0 {
		fmt.Printf(" (%d migrations)", j.Migrations)
	}
	fmt.Println()
	if j.Error != nil {
		fmt.Printf("  error: [%s] %s (retryable: %v)\n", j.Error.Code, j.Error.Message, j.Error.Retryable)
		return
	}
	if j.State != mqss.StateDone {
		return
	}
	fmt.Printf("  compiled: %d gates (%d CZ) — %s\n", j.CompiledGates, j.CZCount, j.CompileStats)
	fmt.Printf("  duration: %.1f ms on control electronics\n", j.DurationUs/1000)
	shown := 0
	for outcome, count := range j.Counts {
		if shown >= 8 {
			fmt.Printf("  ... %d more outcomes\n", len(j.Counts)-8)
			break
		}
		fmt.Printf("  outcome %d: %d\n", outcome, count)
		shown++
	}
}

// printFleetStatus renders the fleet snapshot as the operator table.
func printFleetStatus(m *fleet.Metrics) {
	fmt.Printf("fleet: %d devices, policy %s\n", len(m.Devices), m.Policy)
	fmt.Printf("jobs: %d submitted, %d routed, %d migrated, %d completed, %d failed, %d parked now\n",
		m.Submitted, m.Routed, m.Migrated, m.Completed, m.Failed, m.ParkedNow)
	fmt.Printf("%-24s %-12s %6s %6s %6s %8s %8s %8s %8s %8s\n",
		"DEVICE", "STATE", "QUBITS", "QUEUE", "INFL", "ROUTED", "MIGR-OUT", "DONE", "F1Q", "FCZ")
	for _, d := range m.Devices {
		fmt.Printf("%-24s %-12s %6d %6d %6d %8d %8d %8d %8.4f %8.4f\n",
			d.Name, d.State, d.Qubits, d.QueueDepth, d.Inflight,
			d.Routed, d.MigratedOut, d.Completed, d.MeanF1Q, d.MeanFCZ)
	}
}

// benchConfig parameterizes the load harness.
type benchConfig struct {
	clients, jobs, shots, qubits int
	batch                        bool
	// fleet uses the routed batch API and reports the per-device job
	// distribution; device/policy pass through as routing controls.
	fleet          bool
	device, policy string
	jsonOut        string
}

// benchJSON is the machine-readable bench record (-json flag) — the same
// shape BENCH_fleet.json tracks across PRs.
type benchJSON struct {
	Mode       string         `json:"mode"`
	Clients    int            `json:"clients"`
	JobsPerCli int            `json:"jobs_per_client"`
	Shots      int            `json:"shots"`
	Qubits     int            `json:"qubits"`
	WallMs     float64        `json:"wall_ms"`
	JobsPerSec float64        `json:"jobs_per_sec"`
	P50Ms      float64        `json:"p50_ms"`
	P95Ms      float64        `json:"p95_ms"`
	Failures   int            `json:"failures"`
	ByDevice   map[string]int `json:"by_device,omitempty"`
}

// runBench drives N concurrent clients against a running qhpcd and reports
// job throughput plus the client-observed latency distribution — the load
// harness for the QRM dispatch pipeline and the fleet scheduler.
func runBench(server string, cfg benchConfig) {
	if cfg.clients < 1 || cfg.jobs < 1 {
		log.Fatal("bench needs -clients >= 1 and -jobs >= 1")
	}
	ghz := circuit.GHZ(cfg.qubits)
	var mu sync.Mutex
	var latencies []time.Duration
	var failures int
	byDevice := map[string]int{}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := mqss.NewRemoteClient(server, nil)
			user := fmt.Sprintf("bench-%d", c)
			reqs := make([]qrm.Request, cfg.jobs)
			for i := range reqs {
				reqs[i] = qrm.Request{Circuit: ghz, Shots: cfg.shots, User: user}
			}
			switch {
			case cfg.fleet:
				delivered := 0
				batchStart := time.Now()
				_, err := cl.StreamBatchRouted(context.Background(), reqs,
					mqss.RouteOptions{Device: cfg.device, Policy: cfg.policy},
					func(j *fleet.Job) {
						lat := time.Since(batchStart)
						mu.Lock()
						delivered++
						latencies = append(latencies, lat)
						byDevice[j.Device]++
						if j.Status != fleet.JobDone {
							failures++
						}
						mu.Unlock()
					})
				if err != nil {
					log.Printf("bench client %d: %v", c, err)
					mu.Lock()
					failures += cfg.jobs - delivered
					mu.Unlock()
				}
			case cfg.batch:
				delivered := 0
				batchStart := time.Now()
				_, err := cl.StreamBatch(context.Background(), reqs, func(j *qrm.Job) {
					lat := time.Since(batchStart)
					mu.Lock()
					delivered++
					latencies = append(latencies, lat)
					if j.Status != qrm.StatusDone {
						failures++
					}
					mu.Unlock()
				})
				if err != nil {
					log.Printf("bench client %d: %v", c, err)
					mu.Lock()
					// Only jobs the stream never delivered count as extra
					// failures; delivered ones were already tallied above.
					failures += cfg.jobs - delivered
					mu.Unlock()
				}
			default:
				for i := 0; i < cfg.jobs; i++ {
					jobStart := time.Now()
					j, err := cl.Run(context.Background(), qrm.Request{Circuit: ghz, Shots: cfg.shots, User: user})
					lat := time.Since(jobStart)
					mu.Lock()
					latencies = append(latencies, lat)
					if err != nil || j.Status != qrm.StatusDone {
						failures++
					}
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := cfg.clients * cfg.jobs
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	mode := "sequential submits"
	if cfg.batch {
		mode = "streamed batches"
	}
	if cfg.fleet {
		mode = "fleet-routed batches"
	}
	fmt.Printf("bench: %d clients x %d jobs (%s), GHZ(%d) x %d shots\n",
		cfg.clients, cfg.jobs, mode, cfg.qubits, cfg.shots)
	fmt.Printf("  wall time:    %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  throughput:   %.1f jobs/s\n", float64(total)/elapsed.Seconds())
	fmt.Printf("  latency:      p50 %v, p95 %v, max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond), pct(1.0).Round(time.Microsecond))
	fmt.Printf("  failures:     %d/%d\n", failures, total)
	if cfg.fleet && len(byDevice) > 0 {
		fmt.Printf("  by device:\n")
		names := make([]string, 0, len(byDevice))
		for name := range byDevice {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("    %-24s %d jobs\n", name, byDevice[name])
		}
	}

	cl := mqss.NewRemoteClient(server, nil)
	if cfg.fleet {
		if m, err := cl.FleetMetrics(context.Background()); err == nil {
			fmt.Printf("server fleet: %d devices, %d routed, %d migrated, %d completed\n",
				len(m.Devices), m.Routed, m.Migrated, m.Completed)
		}
	} else if m, err := cl.Metrics(context.Background()); err == nil {
		fmt.Printf("server pipeline: %d workers, %d completed, max queue depth %d\n",
			m.Workers, m.Completed, m.MaxQueueDepth)
		fmt.Printf("  transpile cache: %d hits / %d misses (%.0f%% hit ratio)\n",
			m.CacheHits, m.CacheMisses, 100*m.HitRatio())
		fmt.Printf("  server e2e: p50 %.2f ms, p95 %.2f ms\n",
			m.E2EMs.Quantile(0.50), m.E2EMs.Quantile(0.95))
		fmt.Printf("  sim engine: %d fast-path, %d branch-tree jobs (%.3f leaves/shot), %d dist-cache hits\n",
			m.SimFastPathJobs, m.SimBranchTreeJobs, m.BranchLeavesPerShot(), m.SimDistCacheHits)
	}

	if cfg.jsonOut != "" {
		rec := benchJSON{
			Mode: mode, Clients: cfg.clients, JobsPerCli: cfg.jobs,
			Shots: cfg.shots, Qubits: cfg.qubits,
			WallMs:     float64(elapsed.Microseconds()) / 1000,
			JobsPerSec: float64(total) / elapsed.Seconds(),
			P50Ms:      float64(pct(0.50).Microseconds()) / 1000,
			P95Ms:      float64(pct(0.95).Microseconds()) / 1000,
			Failures:   failures,
		}
		if len(byDevice) > 0 {
			rec.ByDevice = byDevice
		}
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(cfg.jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", cfg.jsonOut)
	}
}

// simBenchParams parameterizes the in-process execution-engine bench.
// jobs == 0 keeps the harness defaults (the artifact configuration).
type simBenchParams struct {
	shots, qubits, jobs int
	jsonOut             string
}

// runSimBench runs the device-level execution-engine harness (the one
// behind BENCH_sim.json) in process — no daemon needed — and reports the
// naive-vs-compiled speedups.
func runSimBench(p simBenchParams) {
	art, err := device.RunSimBench(device.SimBenchConfig{
		Shots: p.shots, Qubits: p.qubits,
		NoiselessJobs: p.jobs, NoisyJobs: p.jobs,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sim bench: %s\n", art.Workload)
	for _, row := range art.Rows {
		fmt.Printf("  %-14s naive %8.0f jobs/s (p50 %7.3f ms)  ->  compiled %8.0f jobs/s (p50 %7.3f ms, p95 %7.3f ms)  %5.1fx",
			row.Name, row.NaiveJobsPerSec, row.NaiveP50Ms,
			row.CompiledJobsPerSec, row.CompiledP50Ms, row.CompiledP95Ms, row.Speedup)
		if row.BranchLeavesPerShot > 0 {
			fmt.Printf("  [%.3f leaves/shot]", row.BranchLeavesPerShot)
		}
		if row.DistCacheHits > 0 {
			fmt.Printf("  [%d dist-cache hits]", row.DistCacheHits)
		}
		fmt.Println()
	}
	fmt.Printf("  speedup: %.1fx noiseless (fast path), %.1fx noisy (shot-branching path)\n",
		art.SpeedupNoiseless, art.SpeedupNoisy)
	if p.jsonOut != "" {
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(p.jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", p.jsonOut)
	}
}

func printJob(j *qrm.Job) {
	fmt.Printf("job #%d: %s\n", j.ID, j.Status)
	if j.Error != "" {
		fmt.Printf("  error: %s\n", j.Error)
		return
	}
	fmt.Printf("  compiled: %d gates (%d CZ) — %s\n", j.CompiledGates, j.CZCount, j.CompileStats)
	fmt.Printf("  layout (logical->physical): %v\n", j.Layout)
	fmt.Printf("  duration: %.1f ms on control electronics\n", j.DurationUs/1000)
	n := j.Request.Circuit.NumQubits
	shown := 0
	for outcome, count := range j.Counts {
		if shown >= 8 {
			fmt.Printf("  ... %d more outcomes\n", len(j.Counts)-8)
			break
		}
		logical := 0
		for i, p := range j.Layout {
			if outcome&(1<<uint(p)) != 0 {
				logical |= 1 << uint(i)
			}
		}
		fmt.Printf("  |%s> %d\n", quantum.FormatBitstring(logical, n), count)
		shown++
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: qhpcctl [-server URL] <command>
commands:
  device [name]                        show device properties and live calibration
                                       (fleet servers: name one backend)
  submit [-shots N] [-user U] [-device D] [-policy P] f.qasm
                                       submit an OpenQASM circuit and wait; -device/-policy
                                       route on fleet servers
  job <id>                             show one job (legacy v1 record)
  job submit [-shots N] [-user U] [-priority N] [-deadline-ms N]
             [-device D] [-policy P] [-idempotency-key K] [-wait] f.qasm
                                       async v2 submission: returns the job handle
                                       immediately (-wait blocks for the result)
  job status <j-id>                    show the unified v2 job record
  job watch <j-id>                     stream lifecycle events until terminal
  job cancel <j-id>                    cancel (propagates into the pipeline)
  trace <j-id>                         render the job's span tree as a waterfall:
                                       per-stage start offsets, durations, and
                                       % of total wall time (docs/OBSERVABILITY.md)
  history [-user U] [-offset N] [-limit N]   page through job history
  fleet [status]                       show per-device fleet status (fleet servers)
  bench [-clients N] [-jobs N] [-shots N] [-qubits N] [-batch]
        [-fleet] [-device D] [-policy P] [-sim] [-json FILE]
                                       drive concurrent load and report throughput/latency;
                                       -fleet uses the routed API, -json writes results,
                                       -sim runs the in-process execution-engine bench
                                       (naive vs compiled shot loop, BENCH_sim.json shape)
  scenarios list                       list the registered fault scenarios
  scenarios run [-name X] [-runs N] [-json FILE] [-negative-control]
                                       run the fault-scenario lab in process and apply
                                       the SLO release gates (docs/SCENARIOS.md)
  store [status]                       show the crash-durable job store: WAL position,
                                       segments, compaction, and what the last restart
                                       recovered (docs/DURABILITY.md)
  tenants [status]                     show the multi-tenant admission plane: configured
                                       rate limit and queue bounds plus per-tenant usage
                                       (queue depth, completions, sheds, throttles)
  federation [status]                  show the sharded-fleet membership: peers, liveness,
                                       and each member's job-ID range (docs/FEDERATION.md)`)
	os.Exit(2)
}
