package main

import (
	"fmt"
	"sort"
	"strings"
)

// snapshotFleetRefusal is the -snapshot refusal in fleet mode. Fleet jobs
// span devices (migrations, parking), so a per-manager snapshot would
// silently capture one shard — refuse loudly and point at the flag that
// actually persists a fleet.
const snapshotFleetRefusal = "-snapshot applies to single-device mode only; " +
	"fleet jobs span devices, so a one-manager snapshot would silently drop the rest — " +
	"use -data-dir for crash-durable fleet persistence instead"

// parsePeers parses the -peers flag: a comma-separated list of id=url
// entries naming every OTHER federation member, e.g.
//
//	-peers node-b=http://host2:8080,node-c=http://host3:8080
func parsePeers(s string) (map[string]string, error) {
	peers := map[string]string{}
	if strings.TrimSpace(s) == "" {
		return peers, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		id, url = strings.TrimSpace(id), strings.TrimSpace(url)
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("-peers entry %q is not id=url", part)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("-peers names node %q twice", id)
		}
		peers[id] = strings.TrimSuffix(url, "/")
	}
	return peers, nil
}

// peerSummary renders the peer map as a stable "id→url" list for startup
// logging.
func peerSummary(peers map[string]string) string {
	ids := make([]string, 0, len(peers))
	for id := range peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	parts := make([]string, 0, len(ids))
	for _, id := range ids {
		parts = append(parts, id+"="+peers[id])
	}
	return strings.Join(parts, " ")
}
