package main

import (
	"strings"
	"testing"
)

// The -snapshot refusal in fleet mode must tell the operator what to run
// instead, not just say no: it names -data-dir, the flag that actually
// persists a fleet.
func TestSnapshotFleetRefusalIsActionable(t *testing.T) {
	if !strings.Contains(snapshotFleetRefusal, "-data-dir") {
		t.Fatalf("refusal does not point at -data-dir: %q", snapshotFleetRefusal)
	}
	if !strings.Contains(snapshotFleetRefusal, "-snapshot") ||
		!strings.Contains(snapshotFleetRefusal, "single-device") {
		t.Fatalf("refusal lost its context: %q", snapshotFleetRefusal)
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers(" node-b = http://h2:8080/ , node-c=http://h3:8080 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers["node-b"] != "http://h2:8080" || peers["node-c"] != "http://h3:8080" {
		t.Fatalf("parsePeers = %v", peers)
	}
	if got, err := parsePeers(""); err != nil || len(got) != 0 {
		t.Fatalf("empty flag: %v, %v", got, err)
	}
	for _, bad := range []string{"node-b", "=http://h2", "node-b=", "a=u,a=v"} {
		if _, err := parsePeers(bad); err == nil {
			t.Errorf("parsePeers(%q) accepted", bad)
		}
	}
	if s := peerSummary(peers); s != "node-b=http://h2:8080 node-c=http://h3:8080" {
		t.Fatalf("peerSummary = %q", s)
	}
}
