// Command qhpcd runs the HPC+QC center as a service: it commissions the
// center (site survey, cooldown, calibration) and then serves the MQSS REST
// API — the remote asynchronous access path of Fig. 2.
//
// Usage:
//
//	qhpcd [-addr :8080] [-seed 1] [-twin] [-redundant] [-workers 4]
//	      [-devices 1] [-fleet-policy best-fidelity] [-maintenance-days 0]
//	      [-pprof-addr localhost:6060] [-engine-stats-every 30s]
//	      [-snapshot /var/lib/qhpcd/qrm.json]
//	      [-data-dir /var/lib/qhpcd/store] [-wal-sync group] [-wal-compact-every 1m]
//	      [-tenant-rate 0] [-tenant-burst 0] [-tenant-queue 0] [-queue-high-water 0]
//	      [-node-id node-a] [-self-url http://host1:8080] [-peers node-b=http://host2:8080]
//	      [-fed-heartbeat 1s] [-fed-dead-after 3s]
//
// The -node-id/-peers flags federate this daemon with other qhpcd nodes
// (docs/FEDERATION.md): submissions are placed by rendezvous hash on
// (tenant, idempotency-key) and any member transparently proxies reads,
// cancels, and watch streams to the job's owner, so clients can talk to
// whichever node they like.
//
// The -tenant-* flags turn on the multi-tenant admission plane (default off):
// a per-user token bucket on v2 submits (refusals are 429 with Retry-After
// and a retryable envelope) and queue-level load shedding — a per-tenant
// depth bound plus a per-device high-water mark past which the lowest-
// priority queued jobs fail loudly with a retryable "shed" envelope.
// `qhpcctl tenants` and GET /api/v2/admin/tenants show per-tenant usage.
//
// With -data-dir the daemon journals every job transition to a crash-durable
// WAL (docs/DURABILITY.md): kill -9 the process, restart it with the same
// directory, and accepted jobs come back — terminal ones with their results,
// queued/running ones re-queued under their original IDs.
//
// With -devices N > 1 the daemon serves a simulated multi-QPU fleet: the
// center's primary QPU plus N-1 heterogeneous siblings (different grid
// shapes, seeds and drift histories), fronted by the calibration-aware
// fleet scheduler. Clients pin with ?device= and steer routing with
// ?policy=; `qhpcctl fleet` shows the roster.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux (-pprof-addr)
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/facility"
	"repro/internal/federation"
	"repro/internal/fleet"
	"repro/internal/mqss"
	"repro/internal/tenant"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address for the REST API")
	seed := flag.Int64("seed", 1, "simulation seed")
	twin := flag.Bool("twin", false, "serve the noiseless digital twin instead of the noisy QPU")
	redundant := flag.Bool("redundant", true, "redundant power and cooling feeds (lesson 3)")
	nodes := flag.Int("nodes", 64, "classical cluster node count")
	workers := flag.Int("workers", 4, "dispatch workers per device (0 = synchronous per-request execution, single-device mode only)")
	devices := flag.Int("devices", 1, "fleet size; > 1 serves the multi-QPU fleet scheduler")
	policyFlag := flag.String("fleet-policy", string(fleet.PolicyBestFidelity),
		"fleet routing policy: best-fidelity, least-loaded, or round-robin")
	maintDays := flag.Float64("maintenance-days", 0,
		"attach staggered maintenance windows every N days to each fleet device (0 = none)")
	simRate := flag.Float64("sim-rate", 0,
		"simulated days per wall-clock second driving the fleet maintenance clock (0 = frozen; defaults to 1 when -maintenance-days is set)")
	pprofAddr := flag.String("pprof-addr", "",
		"serve net/http/pprof on this address (e.g. localhost:6060; empty = disabled)")
	engineStatsEvery := flag.Duration("engine-stats-every", 0,
		"log execution-engine counters (fast path, shot-branching leaves/shot, dist-cache hits) at this interval; 0 = disabled, single-device mode only")
	snapshotPath := flag.String("snapshot", "",
		"write the QRM job store to this file on graceful shutdown (single-device mode; restore with LoadSnapshot/RequeueInterrupted tooling)")
	dataDir := flag.String("data-dir", "",
		"crash-durable job store directory (WAL + snapshots); on restart the daemon replays it and re-queues interrupted work (empty = in-memory only)")
	walSync := flag.String("wal-sync", "group",
		"WAL durability mode: always (fsync per record), group (batched fsync; default), off (no fsync — crash loses recent acks)")
	walCompactEvery := flag.Duration("wal-compact-every", time.Minute,
		"snapshot-compact the WAL at this interval (0 = only on shutdown)")
	tenantRate := flag.Float64("tenant-rate", 0,
		"per-tenant submission rate limit in jobs/s (0 = no rate limiting)")
	tenantBurst := flag.Int("tenant-burst", 0,
		"per-tenant token-bucket burst; defaults to ceil(-tenant-rate) when rate limiting is on")
	tenantQueue := flag.Int("tenant-queue", 0,
		"max queued jobs per tenant per device; overflow is shed as retryable failures (0 = unbounded)")
	queueHighWater := flag.Int("queue-high-water", 0,
		"per-device queue depth past which the lowest-priority queued jobs are shed (0 = unbounded)")
	nodeID := flag.String("node-id", "",
		"federation member name; joins the peers named by -peers into one sharded fleet (empty = standalone)")
	selfURL := flag.String("self-url", "",
		"this node's base URL as its peers reach it (e.g. http://host1:8080); used with -node-id")
	peersFlag := flag.String("peers", "",
		"comma-separated id=url list of the OTHER federation members (e.g. node-b=http://host2:8080,node-c=http://host3:8080)")
	fedHeartbeat := flag.Duration("fed-heartbeat", time.Second,
		"federation heartbeat interval")
	fedDeadAfter := flag.Duration("fed-dead-after", 0,
		"declare a silent peer dead after this long (default 3x -fed-heartbeat)")
	flag.Parse()

	if *pprofAddr != "" {
		// The profiling endpoints live on their own listener (the pprof
		// import registers on http.DefaultServeMux), so hot-path work can be
		// profiled against the live daemon without exposing profiles on the
		// public API port.
		go func() {
			fmt.Fprintf(os.Stderr, "qhpcd: pprof on http://%s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("qhpcd: pprof listener: %v", err)
			}
		}()
	}

	center, err := core.New(core.Config{
		Seed: *seed, Nodes: *nodes, Redundant: *redundant, DigitalTwin: *twin,
	})
	if err != nil {
		log.Fatalf("qhpcd: %v", err)
	}

	candidates := []facility.Site{
		{Name: "ground-floor", Env: facility.NoisyUrban(), DeliveryWidthCM: 120, FloorLoadKgM2: 1500, CellTowerDistM: 300, FluorescentM: 4},
		{Name: "basement", Env: facility.Quiet(), DeliveryWidthCM: 120, FloorLoadKgM2: 1500, CellTowerDistM: 800, FluorescentM: 6},
	}
	days, err := center.CommissionFast(candidates, facility.SurveyConfig{Seed: *seed})
	if err != nil {
		log.Fatalf("qhpcd: commissioning failed: %v", err)
	}
	fmt.Fprintf(os.Stderr, "qhpcd: site %q accepted; cooldown %.1f simulated days; phase %s\n",
		center.SiteReport().Site, days, center.Phase())

	// Crash durability: open the store (snapshot + WAL replay) before the
	// backend exists so recovered jobs can be handed straight to it.
	var store *durable.Store
	var recovery *durable.Recovery
	if *dataDir != "" {
		mode, err := durable.ParseSyncMode(*walSync)
		if err != nil {
			log.Fatalf("qhpcd: %v", err)
		}
		replayStart := time.Now()
		store, recovery, err = durable.Open(*dataDir, durable.Options{Sync: mode})
		if err != nil {
			log.Fatalf("qhpcd: opening durable store: %v", err)
		}
		fmt.Fprintf(os.Stderr, "qhpcd: durable store %s (wal-sync=%s): replayed %d records (%d segments, snapshot lsn %d) in %v\n",
			*dataDir, mode, recovery.Stats.Records, recovery.Stats.Segments,
			recovery.Stats.SnapshotLSN, time.Since(replayStart).Round(time.Millisecond))
		if recovery.Stats.SkippedBytes > 0 {
			log.Printf("qhpcd: WAL had a torn tail: %d trailing bytes ignored (normal after a crash)", recovery.Stats.SkippedBytes)
		}
	}

	admission := tenant.Admission{MaxTenantQueue: *tenantQueue, HighWater: *queueHighWater}

	var mqssServer *mqss.Server
	// drain runs after the listener stops accepting: finish or park the
	// backend's remaining work so no accepted job is silently dropped.
	var drain func()
	// fleetSched escapes the fleet branch so the federation bootstrap can
	// stamp its ID base and node identity.
	var fleetSched *fleet.Scheduler
	if *devices > 1 {
		policy, err := fleet.ParsePolicy(*policyFlag)
		if err != nil {
			log.Fatalf("qhpcd: %v", err)
		}
		w := *workers
		if w < 1 {
			w = 4 // fleet devices always run live pools
		}
		if *engineStatsEvery > 0 {
			fmt.Fprintf(os.Stderr, "qhpcd: -engine-stats-every applies to single-device mode only; use GET /api/v1/fleet for per-device counters\n")
		}
		if *snapshotPath != "" {
			log.Fatalf("qhpcd: %s", snapshotFleetRefusal)
		}
		f, err := center.BuildFleet(core.FleetConfig{
			Devices: *devices, WorkersPerDevice: w,
			Policy: policy, MaintenanceEveryDays: *maintDays,
		})
		if err != nil {
			log.Fatalf("qhpcd: building fleet: %v", err)
		}
		if admission.Enabled() {
			f.SetAdmission(admission)
		}
		if store != nil {
			if len(recovery.QRMJobs) > 0 {
				log.Printf("qhpcd: %s holds %d single-device job records; they are preserved but a fleet daemon cannot re-queue them", *dataDir, len(recovery.QRMJobs))
			}
			f.AttachStore(store)
			rs, err := f.Restore(recovery.FleetJobs)
			if err != nil {
				log.Fatalf("qhpcd: restoring fleet jobs: %v", err)
			}
			store.NoteRestore(rs.Terminal, rs.Requeued, rs.Expired)
			fmt.Fprintf(os.Stderr, "qhpcd: recovered %d jobs (%d terminal, %d re-queued, %d expired) from %s\n",
				rs.Terminal+rs.Requeued+rs.Expired, rs.Terminal, rs.Requeued, rs.Expired, *dataDir)
		}
		drain = f.Stop
		fleetSched = f
		mqssServer = center.FleetRESTHandler(f)
		fmt.Fprintf(os.Stderr, "qhpcd: fleet of %d devices (%s routing, %d workers each): %v\n",
			*devices, policy, w, f.Devices())
		fmt.Fprintf(os.Stderr, "qhpcd: fleet endpoints: POST /api/v1/jobs[?device=&policy=], POST /api/v1/jobs/batch[?stream=1&device=&policy=], GET /api/v1/fleet\n")
		// Maintenance windows live on the simulation clock; a frozen clock
		// would make -maintenance-days a no-op, so it defaults on.
		rate := *simRate
		if rate == 0 && *maintDays > 0 {
			rate = 1
		}
		if rate > 0 {
			fmt.Fprintf(os.Stderr, "qhpcd: simulation clock at %.3g days/s (maintenance windows will drain devices on schedule)\n", rate)
			go func() {
				const tick = 250 * time.Millisecond
				day := 0.0
				for range time.Tick(tick) {
					day += rate * tick.Seconds()
					f.AdvanceTo(day)
					f.PublishMetrics(nil, day*86400)
				}
			}()
		}
	} else {
		if admission.Enabled() {
			center.QRM.SetAdmission(admission)
		}
		if store != nil {
			if len(recovery.FleetJobs) > 0 {
				log.Printf("qhpcd: %s holds %d fleet job records; they are preserved but a single-device daemon cannot re-queue them", *dataDir, len(recovery.FleetJobs))
			}
			center.QRM.AttachStore(store)
			rs, err := center.QRM.Restore(recovery.QRMJobs)
			if err != nil {
				log.Fatalf("qhpcd: restoring jobs: %v", err)
			}
			store.NoteRestore(rs.Terminal, rs.Requeued, rs.Expired)
			fmt.Fprintf(os.Stderr, "qhpcd: recovered %d jobs (%d terminal, %d re-queued, %d expired) from %s\n",
				rs.Terminal+rs.Requeued+rs.Expired, rs.Terminal, rs.Requeued, rs.Expired, *dataDir)
		}
		if *workers > 0 {
			if err := center.StartPipeline(*workers); err != nil {
				log.Fatalf("qhpcd: starting dispatch pipeline: %v", err)
			}
			fmt.Fprintf(os.Stderr, "qhpcd: dispatch pipeline running with %d workers (QPU admission-gated)\n", *workers)
		}
		if *engineStatsEvery > 0 {
			// Operator-visible view of the per-job strategy pick: how many
			// jobs rode the fast path vs the shot-branching tree, how hard
			// the tree amortized (leaves/shot), and how often noiseless jobs
			// skipped simulation entirely. The same counters are in the
			// /api/v1/metrics JSON; this is the tail -f version.
			go func(every time.Duration) {
				for range time.Tick(every) {
					m := center.QRM.Metrics()
					fmt.Fprintf(os.Stderr,
						"qhpcd: engine: compile %d hit/%d miss, fast-path %d jobs (%d dist-cache), branch-tree %d jobs %.3f leaves/shot\n",
						m.SimCompileHits, m.SimCompileMisses, m.SimFastPathJobs,
						m.SimDistCacheHits, m.SimBranchTreeJobs, m.BranchLeavesPerShot())
				}
			}(*engineStatsEvery)
		}
		mqssServer = center.RESTHandler()
		drain = center.StopPipeline
	}
	if *tenantRate > 0 {
		burst := *tenantBurst
		if burst < 1 {
			burst = int(math.Ceil(*tenantRate))
		}
		mqssServer.SetTenantLimits(*tenantRate, burst)
		fmt.Fprintf(os.Stderr, "qhpcd: per-tenant rate limit %.3g jobs/s (burst %d); over-limit submits get 429 + Retry-After\n",
			*tenantRate, burst)
	}
	if admission.Enabled() {
		fmt.Fprintf(os.Stderr, "qhpcd: queue admission bounds: per-tenant %d, high-water %d (0 = unbounded); overflow is shed as retryable failures\n",
			admission.MaxTenantQueue, admission.HighWater)
	}
	if store != nil {
		mqssServer.AttachStore(store, recovery.Idem)
		if *walCompactEvery > 0 {
			go func(every time.Duration) {
				for range time.Tick(every) {
					if err := store.Compact(); err != nil {
						log.Printf("qhpcd: WAL compaction: %v", err)
					}
				}
			}(*walCompactEvery)
		}
	}
	// Federation: join the peer set AFTER the store restore so recovered
	// jobs are already queryable when peers start proxying, and before the
	// listener opens so the /api/v2/federation routes exist from the first
	// request. The ID base keeps every member minting from its own range,
	// which is what lets any node map a job ID to its owner.
	var fed *federation.Node
	if *nodeID != "" {
		peers, err := parsePeers(*peersFlag)
		if err != nil {
			log.Fatalf("qhpcd: %v", err)
		}
		fed, err = federation.New(federation.Config{
			NodeID: *nodeID, SelfURL: *selfURL, Peers: peers,
			HeartbeatEvery: *fedHeartbeat, DeadAfter: *fedDeadAfter,
		})
		if err != nil {
			log.Fatalf("qhpcd: federation: %v", err)
		}
		if fleetSched != nil {
			fleetSched.SetIDBase(fed.SelfBase())
			fleetSched.SetIDLimit(fed.SelfLimit())
			fleetSched.SetNodeID(*nodeID)
		} else {
			center.QRM.SetIDBase(fed.SelfBase())
			center.QRM.SetIDLimit(fed.SelfLimit())
			center.QRM.SetNodeID(*nodeID)
		}
		mqssServer.AttachFederation(fed)
		fed.Start()
		fmt.Fprintf(os.Stderr, "qhpcd: federation member %q (%d nodes, id range base %d): peers %s\n",
			*nodeID, len(peers)+1, fed.SelfBase(), peerSummary(peers))
		fmt.Fprintf(os.Stderr, "qhpcd: federation endpoints: GET /api/v2/federation/status, GET /api/v2/federation/owner?id=, POST /api/v2/federation/heartbeat; `qhpcctl federation status` for the membership table\n")
	} else if *peersFlag != "" {
		log.Fatalf("qhpcd: -peers requires -node-id (this node needs a name its peers agree on)")
	}
	fmt.Fprintf(os.Stderr, "qhpcd: serving MQSS REST API on %s\n", *addr)
	fmt.Fprintf(os.Stderr, "qhpcd: endpoints: POST /api/v1/jobs, POST /api/v1/jobs/batch[?stream=1], GET /api/v1/jobs, GET /api/v1/device, GET /api/v1/telemetry/, GET /api/v1/metrics, GET /healthz\n")
	fmt.Fprintf(os.Stderr, "qhpcd: v2 endpoints: POST /api/v2/jobs[?wait=], GET /api/v2/jobs[?user=&state=&cursor=], GET /api/v2/jobs/{id}[?wait=], GET /api/v2/jobs/{id}/events, GET /api/v2/jobs/{id}/trace, DELETE /api/v2/jobs/{id}\n")
	fmt.Fprintf(os.Stderr, "qhpcd: observability: GET /metrics (Prometheus text), `qhpcctl trace <j-id>` for span waterfalls (docs/OBSERVABILITY.md)\n")

	// Graceful shutdown: SIGINT/SIGTERM stops accepting connections, ends
	// active v2 watch streams cleanly (mqss.Server.Close), waits for
	// in-flight handlers, then drains the dispatch backend so accepted jobs
	// finish (single device) or park safely (fleet Stop).
	srv := &http.Server{Addr: *addr, Handler: mqssServer}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("qhpcd: %v", err)
		}
	case <-ctx.Done():
		fmt.Fprintf(os.Stderr, "qhpcd: signal received; draining (watch streams, handlers, pipeline)\n")
		if fed != nil {
			fed.Close() // stop heartbeating before peers see half-closed state
		}
		mqssServer.Close() // release long-lived event streams first
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("qhpcd: shutdown: %v", err)
		}
		cancel()
		if drain != nil {
			drain()
		}
		if *snapshotPath != "" {
			// Write-on-close durability: after the pipeline has drained, the
			// job store is quiescent — persist it so restart tooling
			// (LoadSnapshot + RequeueInterrupted) can pick up where this
			// process left off. WAL-style continuous persistence stays a
			// roadmap item; this is the shutdown half.
			if err := center.QRM.SaveSnapshotFile(*snapshotPath); err != nil {
				log.Printf("qhpcd: snapshot: %v", err)
			} else {
				fmt.Fprintf(os.Stderr, "qhpcd: job store snapshot written to %s\n", *snapshotPath)
			}
		}
		if store != nil {
			// The backend is quiescent: fold the WAL into one snapshot so the
			// next start replays a single file, then fsync-close the journal.
			if err := store.Compact(); err != nil {
				log.Printf("qhpcd: final WAL compaction: %v", err)
			}
			if err := store.Close(); err != nil {
				log.Printf("qhpcd: closing durable store: %v", err)
			}
		}
		fmt.Fprintf(os.Stderr, "qhpcd: drained; bye\n")
	}
}
