// Command qhpcd runs the HPC+QC center as a service: it commissions the
// center (site survey, cooldown, calibration) and then serves the MQSS REST
// API — the remote asynchronous access path of Fig. 2.
//
// Usage:
//
//	qhpcd [-addr :8080] [-seed 1] [-twin] [-redundant] [-fast]
//
// -fast accelerates commissioning (the multi-day cooldown runs at
// simulation speed); without it the daemon still commissions instantly
// because wall-clock cooldowns would be unhelpful in a simulator.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/facility"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address for the REST API")
	seed := flag.Int64("seed", 1, "simulation seed")
	twin := flag.Bool("twin", false, "serve the noiseless digital twin instead of the noisy QPU")
	redundant := flag.Bool("redundant", true, "redundant power and cooling feeds (lesson 3)")
	nodes := flag.Int("nodes", 64, "classical cluster node count")
	workers := flag.Int("workers", 4, "QRM dispatch workers (0 = synchronous per-request execution)")
	flag.Parse()

	center, err := core.New(core.Config{
		Seed: *seed, Nodes: *nodes, Redundant: *redundant, DigitalTwin: *twin,
	})
	if err != nil {
		log.Fatalf("qhpcd: %v", err)
	}

	candidates := []facility.Site{
		{Name: "ground-floor", Env: facility.NoisyUrban(), DeliveryWidthCM: 120, FloorLoadKgM2: 1500, CellTowerDistM: 300, FluorescentM: 4},
		{Name: "basement", Env: facility.Quiet(), DeliveryWidthCM: 120, FloorLoadKgM2: 1500, CellTowerDistM: 800, FluorescentM: 6},
	}
	days, err := center.CommissionFast(candidates, facility.SurveyConfig{Seed: *seed})
	if err != nil {
		log.Fatalf("qhpcd: commissioning failed: %v", err)
	}
	fmt.Fprintf(os.Stderr, "qhpcd: site %q accepted; cooldown %.1f simulated days; phase %s\n",
		center.SiteReport().Site, days, center.Phase())
	if *workers > 0 {
		if err := center.StartPipeline(*workers); err != nil {
			log.Fatalf("qhpcd: starting dispatch pipeline: %v", err)
		}
		fmt.Fprintf(os.Stderr, "qhpcd: dispatch pipeline running with %d workers (QPU admission-gated)\n", *workers)
	}
	fmt.Fprintf(os.Stderr, "qhpcd: serving MQSS REST API on %s\n", *addr)
	fmt.Fprintf(os.Stderr, "qhpcd: endpoints: POST /api/v1/jobs, POST /api/v1/jobs/batch[?stream=1], GET /api/v1/jobs, GET /api/v1/device, GET /api/v1/telemetry/, GET /api/v1/metrics, GET /healthz\n")

	if err := http.ListenAndServe(*addr, center.RESTHandler()); err != nil {
		log.Fatalf("qhpcd: %v", err)
	}
}
