// Command sitesurvey runs the Table 1 acceptance campaign over the built-in
// candidate environments (or a chosen profile) and prints the report —
// the tool an integration engineer would run during §2.1.
//
// Usage:
//
//	sitesurvey [-seed 1] [-profile all|quiet|borderline|urban]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/facility"
)

func main() {
	seed := flag.Int64("seed", 1, "measurement campaign seed")
	profile := flag.String("profile", "all", "which candidate profile to survey: all, quiet, borderline, urban")
	flag.Parse()

	all := map[string]facility.Site{
		"quiet": {
			Name: "basement-lab", Env: facility.Quiet(),
			DeliveryWidthCM: 110, FloorLoadKgM2: 1600, CellTowerDistM: 800, FluorescentM: 6,
		},
		"borderline": {
			Name: "mezzanine", Env: facility.Borderline(),
			DeliveryWidthCM: 95, FloorLoadKgM2: 1100, CellTowerDistM: 450, FluorescentM: 4,
		},
		"urban": {
			Name: "ground-floor-street", Env: facility.NoisyUrban(),
			DeliveryWidthCM: 130, FloorLoadKgM2: 2000, CellTowerDistM: 220, FluorescentM: 3,
		},
	}

	var sites []facility.Site
	if *profile == "all" {
		for _, key := range []string{"quiet", "borderline", "urban"} {
			sites = append(sites, all[key])
		}
	} else if s, ok := all[*profile]; ok {
		sites = append(sites, s)
	} else {
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(2)
	}

	reports, err := facility.RankSites(sites, facility.SurveyConfig{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	for _, rep := range reports {
		fmt.Println(rep)
	}
	if len(reports) > 1 {
		fmt.Printf("recommendation: %s\n", reports[0].Site)
	}
}
