// Package repro is a Go reproduction of "First Practical Experiences
// Integrating Quantum Computers with HPC Resources: A Case Study With a
// 20-qubit Superconducting Quantum Computer" (SFWM @ SC 2025).
//
// The public surface lives in the example binaries (cmd/, examples/) and
// the benchmark harness (bench_test.go); the implementation is organized
// under internal/ as one package per subsystem. See DESIGN.md for the full
// system inventory and EXPERIMENTS.md for the paper-vs-measured record.
package repro
