// Mitigation example: the readout-error-mitigation technique taught during
// user onboarding (§4: "how to implement error mitigation methods tailored
// to the machine"). A Bell state is measured on the noisy QPU; tensor-
// product readout calibration corrects the histogram, and the ZZ correlator
// moves measurably closer to its ideal value of 1.
package main

import (
	"fmt"
	"log"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/mitigation"
	"repro/internal/qdmi"
	"repro/internal/transpile"
)

// runner executes circuits on a noisy QPU with static placement so that
// calibration circuits and payload circuits see the same physical qubits.
type runner struct {
	qpu *device.QPU
	dev *qdmi.Device
}

func (r *runner) Run(c *circuit.Circuit, shots int) (map[int]int, error) {
	res, err := transpile.Transpile(c, r.dev.Target(), transpile.Options{
		Placement: transpile.PlaceStatic,
	})
	if err != nil {
		return nil, err
	}
	out, err := r.qpu.Execute(res.Circuit, shots)
	if err != nil {
		return nil, err
	}
	return out.Counts, nil
}

func main() {
	qpu := device.New20Q(77)
	// Exaggerate readout error a little by aging the device: drift pulls
	// readout fidelity down, which is exactly when mitigation pays off.
	qpu.AdvanceDrift(24 * 10)
	r := &runner{qpu: qpu, dev: qdmi.NewDevice(qpu, nil)}

	const n, shots = 2, 20000
	fmt.Println("Calibrating readout confusion matrices (|00> and |11> circuits)...")
	cm, err := mitigation.Calibrate(r, n, shots)
	if err != nil {
		log.Fatal(err)
	}
	for q := 0; q < n; q++ {
		f, err := cm.AssignmentFidelity(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  qubit %d assignment fidelity: %.4f\n", q, f)
	}

	bell := circuit.New(n, "bell").H(0).CNOT(0, 1)
	counts, err := r.Run(bell, shots)
	if err != nil {
		log.Fatal(err)
	}

	// <Z0 Z1> is 1 for an ideal Bell state.
	zzRaw := correlator(counts)
	mitigated, err := cm.Apply(counts)
	if err != nil {
		log.Fatal(err)
	}
	zzMit := correlatorF(mitigated)
	fmt.Printf("\nBell-state ZZ correlator (ideal = 1):\n")
	fmt.Printf("  raw:       %.4f  (error %.4f)\n", zzRaw, 1-zzRaw)
	fmt.Printf("  mitigated: %.4f  (error %.4f)\n", zzMit, 1-zzMit)
	if 1-zzMit < 1-zzRaw {
		fmt.Println("\nMitigation removed most of the readout bias; the residual is")
		fmt.Println("gate error and decoherence, which readout mitigation cannot touch.")
	}
}

func correlator(counts map[int]int) float64 {
	num, den := 0.0, 0.0
	for outcome, c := range counts {
		v := 1.0
		if (outcome&1 != 0) != (outcome&2 != 0) {
			v = -1
		}
		num += v * float64(c)
		den += float64(c)
	}
	return num / den
}

func correlatorF(counts map[int]float64) float64 {
	num, den := 0.0, 0.0
	for outcome, c := range counts {
		v := 1.0
		if (outcome&1 != 0) != (outcome&2 != 0) {
			v = -1
		}
		num += v * c
		den += c
	}
	return num / den
}
