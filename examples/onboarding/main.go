// Onboarding example: the §4 early-user program end to end — application
// review, mentorship assignment, the Use–Modify–Create progression gating
// hardware access behind digital-twin practice, and the FAQ process that
// turns user friction into engineering priorities.
package main

import (
	"fmt"
	"log"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/onboarding"
	"repro/internal/qdmi"
	"repro/internal/qrm"
)

func main() {
	reg := onboarding.NewRegistry(10, []string{"sa-keller", "sa-huang"})

	// 1. Application review (§4 selection criteria).
	apps := []onboarding.Application{
		{User: "chem-group", Project: "molecular embedding", ResearchRelevance: 5, WorkflowPlan: 4, Deliverability: 4, MQVAffiliation: true},
		{User: "opt-group", Project: "TSP benchmarking", ResearchRelevance: 4, WorkflowPlan: 5, Deliverability: 4, PriorCollaboration: true},
		{User: "vague-group", Project: "quantum stuff", ResearchRelevance: 2, WorkflowPlan: 1, Deliverability: 2},
	}
	for _, a := range apps {
		admitted, err := reg.Review(a)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("application %-12s score %2d -> admitted=%v\n", a.User, a.Score(), admitted)
	}

	// 2. Training on the digital twin (Use -> Modify), then hardware.
	twin := qrm.NewManager(qdmi.NewDevice(device.NewTwin20Q(5), nil))
	hardware := qrm.NewManager(qdmi.NewDevice(device.New20Q(5), nil))
	user := "chem-group"

	if err := reg.CanSubmit(user, true); err != nil {
		fmt.Printf("\nhardware gate works: %v\n", err)
	}
	if err := reg.Advance(user); err != nil { // use -> modify
		log.Fatal(err)
	}
	fmt.Println("\ntwin practice (Use-Modify stages):")
	for i := 0; i < 6; i++ {
		id, err := twin.Submit(qrm.Request{Circuit: circuit.GHZ(3 + i%3), Shots: 200, User: user})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := twin.Drain(); err != nil {
			log.Fatal(err)
		}
		j, _ := twin.Job(id)
		fmt.Printf("  twin job %d: %s (%d outcomes)\n", id, j.Status, len(j.Counts))
		reg.RecordJob(user, false)
	}
	if err := reg.Advance(user); err != nil { // modify -> create
		log.Fatal(err)
	}
	if err := reg.CanSubmit(user, true); err != nil {
		log.Fatal(err)
	}
	u, _ := reg.Lookup(user)
	fmt.Printf("\n%s reached stage %q (mentor %s) — hardware unlocked\n", user, u.Stage, u.Mentor)
	id, err := hardware.Submit(qrm.Request{Circuit: circuit.GHZ(5), Shots: 500, User: user})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := hardware.Drain(); err != nil {
		log.Fatal(err)
	}
	j, _ := hardware.Job(id)
	fmt.Printf("hardware job %d: %s — %s\n", id, j.Status, j.CompileStats)
	reg.RecordJob(user, true)
	reg.SubmitReport(user)

	// 3. The FAQ loop that drove §4's engineering priorities.
	for i := 0; i < 6; i++ {
		reg.Ask(onboarding.CatTracking, "How do I navigate my job history?")
	}
	reg.Ask(onboarding.CatSubmission, "Can I submit circuits in a batch?")
	reg.Ask(onboarding.CatSubmission, "Can I submit circuits in a batch?")
	reg.Ask(onboarding.CatSystemInfo, "Where do I find the qubit coupling map?")
	reg.Answer(onboarding.CatTracking, "How do I navigate my job history?",
		"Use GET /api/v1/jobs?offset=&limit= — pagination was added for exactly this.")

	fmt.Println("\ntop user friction (drives the engineering backlog):")
	for _, cat := range onboarding.Categories() {
		for _, q := range reg.TopQuestions(cat, 1) {
			fmt.Printf("  [%s] asked %dx: %s\n", cat, q.Count, q.Text)
		}
	}
	st := reg.Stats()
	fmt.Printf("\ncohort: %d users, %d at create stage, %d reports filed, %d twin + %d hardware jobs\n",
		st.Users, st.AtCreateStage, st.ReportsFiled, st.TwinJobs, st.HardwareJobs)
}
