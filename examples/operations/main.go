// Operations example: the 146-day autonomous calibration campaign behind
// Figure 4, plus the §3.5 outage scenario and the lesson-3 redundancy
// ablation — the operational story of the paper in one run.
package main

import (
	"fmt"
	"log"

	"repro/internal/calib"
	"repro/internal/ops"
)

func main() {
	// Figure 4: 146 days of autonomous scheduler-controlled calibration.
	sim, err := ops.New(ops.Config{Days: 146, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	st := rep.Stats()
	fmt.Println("=== Figure 4: autonomous calibration over 146 days ===")
	fmt.Printf("single-qubit gate fidelity: mean %.4f, min %.4f\n", st.MeanF1Q, st.MinF1Q)
	fmt.Printf("readout fidelity:           mean %.4f, min %.4f\n", st.MeanFReadout, st.MinFReadout)
	fmt.Printf("CZ fidelity:                mean %.4f, min %.4f\n", st.MeanFCZ, st.MinFCZ)
	fmt.Printf("calibrations: %d quick (40 min), %d full (100 min), %.0f h total\n",
		rep.QuickCals, rep.FullCals, rep.CalibrationHours)
	fmt.Printf("unattended: %.0f days; availability %.1f%%\n\n", rep.UnattendedDays, 100*rep.AvailableFraction)

	// Downsampled fidelity series, the plottable Figure 4 data.
	fmt.Println("day   F1Q     Freadout  FCZ")
	for i, p := range rep.Series {
		if i%14 != 0 {
			continue
		}
		fmt.Printf("%3.0f   %.4f  %.4f    %.4f\n", p.Day, p.F1Q, p.FReadout, p.FCZ)
	}

	// §3.5: a cooling-water outage without redundancy.
	fmt.Println("\n=== §3.5: 6-hour cooling-water outage, single feed ===")
	simOut, err := ops.New(ops.Config{
		Days: 14, Seed: 7,
		Outages: []ops.OutageEvent{{Kind: ops.OutageCoolingWater, StartDay: 5, DurationHours: 6}},
	})
	if err != nil {
		log.Fatal(err)
	}
	repOut, err := simOut.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warmups above 1 K: %d (calibration lost, full recal forced)\n", repOut.WarmupsAbove1K)
	fmt.Printf("downtime %.0f h, of which cooldown %.0f h; availability %.1f%%\n",
		repOut.DowntimeHours, repOut.CooldownHours, 100*repOut.AvailableFraction)

	// Lesson 3 ablation: the same fault with redundant infrastructure.
	fmt.Println("\n=== Lesson 3: same outage with redundant feeds + UPS ===")
	simRed, err := ops.New(ops.Config{
		Days: 14, Seed: 7, Redundant: true,
		Outages: []ops.OutageEvent{{Kind: ops.OutageCoolingWater, StartDay: 5, DurationHours: 6}},
	})
	if err != nil {
		log.Fatal(err)
	}
	repRed, err := simRed.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warmups above 1 K: %d; availability %.1f%% (vs %.1f%% without redundancy)\n",
		repRed.WarmupsAbove1K, 100*repRed.AvailableFraction, 100*repOut.AvailableFraction)

	// Lesson 2 ablation: what happens with no calibration at all.
	fmt.Println("\n=== Lesson 2 ablation: 60 days without any recalibration ===")
	never := &calib.Policy{QuickEveryHours: 1e12, FullEveryHours: 1e12}
	simNoCal, err := ops.New(ops.Config{Days: 60, Seed: 7, Policy: never})
	if err != nil {
		log.Fatal(err)
	}
	repNoCal, err := simNoCal.Run()
	if err != nil {
		log.Fatal(err)
	}
	stN := repNoCal.Stats()
	fmt.Printf("uncalibrated F1Q sinks to %.4f (mean %.4f); the calibrated system held %.4f\n",
		stN.MinF1Q, stN.MeanF1Q, st.MeanF1Q)
}
