// Quickstart: commission an HPC+QC center, submit a GHZ health-check
// circuit through the MQSS client on both access paths, and print the
// measured histograms — the "hello world" an onboarded early user runs.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"sort"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/facility"
	"repro/internal/mqss"
	"repro/internal/qrm"
	"repro/internal/quantum"
)

func main() {
	// 1. Build the center and commission it: site survey, installation,
	//    cooldown to 10 mK, full calibration.
	center, err := core.New(core.Config{Seed: 2024, Nodes: 16})
	if err != nil {
		log.Fatal(err)
	}
	candidates := []facility.Site{
		{Name: "street-side", Env: facility.NoisyUrban(), DeliveryWidthCM: 100, FloorLoadKgM2: 1200, CellTowerDistM: 400, FluorescentM: 4},
		{Name: "basement", Env: facility.Quiet(), DeliveryWidthCM: 120, FloorLoadKgM2: 1500, CellTowerDistM: 900, FluorescentM: 8},
	}
	days, err := center.CommissionFast(candidates, facility.SurveyConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Selected site: %s\n", center.SiteReport().Site)
	fmt.Printf("Commissioned after a %.1f-day cooldown; phase: %s\n\n", days, center.Phase())

	ctx := context.Background()

	// 2. The HPC path: tightly-coupled, in-process (accelerator mode).
	local := center.LocalClient()
	job, err := local.Run(ctx, qrm.Request{Circuit: circuit.GHZ(5), Shots: 1000, User: "quickstart"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HPC path (%s): job %d %s, compiled to %d native gates (%d CZ)\n",
		local.Path(), job.ID, job.Status, job.CompiledGates, job.CZCount)
	printHistogram(job.Counts, 5, job.Layout)

	// 3. The remote path: the same job over the REST API — no code changes
	//    beyond the client constructor (Fig. 2's routing promise).
	srv := httptest.NewServer(center.RESTHandler())
	defer srv.Close()
	remote := mqss.NewRemoteClient(srv.URL, srv.Client())
	rjob, err := remote.Run(ctx, qrm.Request{Circuit: circuit.GHZ(5), Shots: 1000, User: "quickstart"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nREST path (%s): job %d %s\n", remote.Path(), rjob.ID, rjob.Status)
	printHistogram(rjob.Counts, 5, rjob.Layout)

	// 3b. The v2 async access model the remote path is actually built on:
	//     submit-and-go, then watch the lifecycle stream until the terminal
	//     state arrives (202 + Location under the hood). Async needs the
	//     dispatch pipeline running — the production qhpcd configuration.
	if err := center.StartPipeline(2); err != nil {
		log.Fatal(err)
	}
	defer center.StopPipeline()
	handle, err := remote.Submit(ctx, mqss.SubmitRequest{
		Circuit: circuit.GHZ(5), Shots: 500, User: "quickstart",
	}, "quickstart-demo-1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nv2 async: accepted job %s; watching lifecycle:\n", handle.ID)
	final, err := handle.Watch(ctx, func(ev mqss.JobEvent) {
		fmt.Printf("  -> %s %s\n", ev.State, ev.Reason)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v2 async: job %s finished %s in %.1f ms\n", final.ID, final.State, final.DurationUs/1000)

	// 4. Live device data through QDMI, as the training sessions teach.
	calib := center.QDMI.Calibration()
	fmt.Printf("\nDevice: %s — F1Q %.4f, readout %.4f, CZ %.4f (calibration age %.1f h)\n",
		center.QDMI.Properties().Name, calib.MeanF1Q(), calib.MeanFReadout(), calib.MeanFCZ(), calib.AgeHours)
}

// printHistogram shows the outcomes restricted to the placed qubits.
func printHistogram(counts map[int]int, n int, layout []int) {
	// Project physical outcomes onto the placed logical qubits, merging
	// outcomes that differ only on unplaced qubits (readout noise there).
	logical := make(map[int]int)
	total := 0
	for outcome, c := range counts {
		l := 0
		for i, p := range layout {
			if outcome&(1<<uint(p)) != 0 {
				l |= 1 << uint(i)
			}
		}
		logical[l] += c
		total += c
	}
	type row struct {
		bits  string
		count int
	}
	rows := make([]row, 0, len(logical))
	for l, c := range logical {
		rows = append(rows, row{quantum.FormatBitstring(l, n), c})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].count > rows[j].count })
	for i, r := range rows {
		if i >= 6 {
			fmt.Printf("  ... %d more outcomes\n", len(rows)-6)
			break
		}
		fmt.Printf("  |%s>  %5d  (%.1f%%)\n", r.bits, r.count, 100*float64(r.count)/float64(total))
	}
}
