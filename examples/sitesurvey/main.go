// Site-survey example: the §2.1 / Table 1 campaign over three candidate
// spaces — quiet basement, borderline mezzanine, tram-side ground floor —
// reproducing the selection process the HPC center ran before installation.
package main

import (
	"fmt"
	"log"

	"repro/internal/facility"
	"repro/internal/netmodel"
)

func main() {
	candidates := []facility.Site{
		{
			Name:            "ground-floor-street",
			Env:             facility.NoisyUrban(),
			DeliveryWidthCM: 130, FloorLoadKgM2: 2000, CellTowerDistM: 220, FluorescentM: 3,
		},
		{
			Name:            "mezzanine",
			Env:             facility.Borderline(),
			DeliveryWidthCM: 95, FloorLoadKgM2: 1100, CellTowerDistM: 450, FluorescentM: 4,
		},
		{
			Name:            "basement-lab",
			Env:             facility.Quiet(),
			DeliveryWidthCM: 110, FloorLoadKgM2: 1600, CellTowerDistM: 800, FluorescentM: 6,
		},
	}

	fmt.Println("Table 1 site survey — three candidate spaces, 26 h campaign each")
	fmt.Println()
	reports, err := facility.RankSites(candidates, facility.SurveyConfig{Seed: 2025})
	if err != nil {
		log.Fatal(err)
	}
	for _, rep := range reports {
		fmt.Println(rep)
	}
	fmt.Printf("Decision: install at %q\n\n", reports[0].Site)

	// §2.4: confirm the network provisioning for the selected space.
	fmt.Println("Network provisioning check (§2.4):")
	rows, err := netmodel.ScalingTable([]int{20, 54, 150})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("qubits   data rate     1 GbE utilization")
	for _, r := range rows {
		fmt.Printf("%6d   %7.0f kbit/s   %.4f%%\n", r.Qubits, r.RateBps/1000, 100*r.Utilization)
	}
	fmt.Println("\n1 Gbit ethernet is sufficient at every near-term scale.")
}
