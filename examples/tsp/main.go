// TSP example: application-driven benchmarking of the Traveling Salesperson
// Problem with QAOA — the workload of the early-user publication the paper
// cites ([4], Bentellis et al.). A 3-city instance encodes into 9 qubits
// (one-hot city×position), fitting the 20-qubit device with room for
// routing.
package main

import (
	"fmt"
	"log"

	"repro/internal/hybrid"
)

func main() {
	// Distance matrix for three cities.
	dist := [][]float64{
		{0, 2, 9},
		{2, 0, 6},
		{9, 6, 0},
	}
	tsp, err := hybrid.NewTSP(dist)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TSP: %d cities -> %d qubits (one-hot city x position)\n", tsp.N, tsp.NumQubits())

	// Classical reference.
	bestTour, bestLen, err := tsp.BruteForceBestTour()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Brute force optimum: tour %v, length %.1f\n\n", bestTour, bestLen)

	// Encode as QUBO, lower to a diagonal Ising Hamiltonian.
	qubo, err := tsp.QUBO()
	if err != nil {
		log.Fatal(err)
	}
	cost := qubo.ToIsing()
	fmt.Printf("Ising cost Hamiltonian: %d terms over %d qubits\n", len(cost.Terms), cost.NumQubits())

	// QAOA with p=2 layers on the ideal simulator (the digital twin is how
	// early users validated algorithms before hardware time, §4).
	q := &hybrid.QAOA{
		Cost:      cost,
		Layers:    2,
		Runner:    &hybrid.ExactRunner{Seed: 99},
		Shots:     4000,
		Optimizer: hybrid.DefaultSPSA(150, 31),
	}
	res, err := q.Run([]float64{0.1, 0.1, 0.2, 0.2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QAOA p=2: mean sampled cost %.2f, best sampled cost %.2f (%d objective evaluations)\n",
		res.MeanCost, res.BestCost, res.Opt.Evaluations)

	tour, err := tsp.DecodeTour(res.BestBits)
	if err != nil {
		fmt.Printf("Best sample violates constraints (%v) — penalty weight tuning is part of the workload\n", err)
		return
	}
	tourLen, err := tsp.TourLength(tour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Best sampled tour: %v, length %.1f (optimum %.1f)\n", tour, tourLen, bestLen)
	if tourLen == bestLen {
		fmt.Println("QAOA's best sample matches the classical optimum.")
	}
}
