// VQE example: the hydrogen-molecule ground state via the tightly-coupled
// accelerator path — the hybrid quantum-classical loop §2.6 names as the
// reason the HPC access mode exists. The classical optimizer (SPSA) and the
// quantum expectation evaluation alternate hundreds of times, which is why
// queue-per-job latency would be prohibitive and the in-HPC client matters.
package main

import (
	"fmt"
	"log"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/hybrid"
	"repro/internal/qdmi"
	"repro/internal/qrm"
)

func main() {
	h2 := hybrid.H2Molecule()
	exact := hybrid.H2GroundStateEnergy()
	fmt.Printf("Target: H2 molecule, exact ground energy %.4f Hartree\n", exact)
	fmt.Printf("Hamiltonian: %s\n\n", h2)

	ansatz, numParams := hybrid.HardwareEfficientAnsatz(2, 1)
	initial := make([]float64, numParams)
	for i := range initial {
		initial[i] = 0.1 * float64(i+1)
	}

	// Stage 1 (onboarding practice, §4): run against the digital twin.
	twinQRM := qrm.NewManager(qdmi.NewDevice(device.NewTwin20Q(11), nil))
	twinRunner := qrmRunner{m: twinQRM, user: "vqe-twin"}
	vqeTwin := &hybrid.VQE{
		Hamiltonian: h2, Ansatz: ansatz, Runner: twinRunner,
		Shots: 4000, Optimizer: hybrid.DefaultSPSA(250, 5),
	}
	resTwin, err := vqeTwin.Run(initial)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Digital twin:  E = %.4f Hartree (error %+.4f), %d energy evaluations\n",
		resTwin.Value, resTwin.Value-exact, resTwin.Evaluations)

	// Stage 2: the same loop against the noisy 20-qubit QPU, through the
	// concurrent dispatch pipeline. Every energy evaluation is JIT-compiled
	// against the live calibration; the transpile cache collapses repeated
	// measurement circuits to one compilation per calibration epoch.
	qpuQRM := qrm.NewManager(qdmi.NewDevice(device.New20Q(11), nil))
	if err := qpuQRM.Start(2); err != nil {
		log.Fatal(err)
	}
	defer qpuQRM.Stop()
	qpuRunner := qrmRunner{m: qpuQRM, user: "vqe-qpu"}
	vqeQPU := &hybrid.VQE{
		Hamiltonian: h2, Ansatz: ansatz, Runner: qpuRunner,
		Shots: 2000, Optimizer: hybrid.DefaultSPSA(120, 5),
	}
	resQPU, err := vqeQPU.Run(initial)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Noisy QPU:     E = %.4f Hartree (error %+.4f), %d energy evaluations\n",
		resQPU.Value, resQPU.Value-exact, resQPU.Evaluations)

	// Final energy: re-measure the optimized circuit several times to
	// average shot noise. These repeats are identical circuits, so from the
	// second repetition on the dispatch pipeline serves the compilation
	// from its transpile cache.
	prep, err := ansatz(resQPU.Params)
	if err != nil {
		log.Fatal(err)
	}
	const finalReps = 10
	sum := 0.0
	for i := 0; i < finalReps; i++ {
		e, err := hybrid.MeasureExpectation(h2, prep, qpuRunner, 2000)
		if err != nil {
			log.Fatal(err)
		}
		sum += e
	}
	fmt.Printf("Final energy (averaged over %d repeats): E = %.4f Hartree (error %+.4f)\n",
		finalReps, sum/finalReps, sum/finalReps-exact)

	page, err := qpuQRM.History("vqe-qpu", 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	metrics := qpuQRM.Metrics()
	fmt.Printf("\nQRM executed %d quantum jobs for the noisy run (%d workers).\n",
		page.Total, metrics.Workers)
	fmt.Printf("Transpile cache: %d hits / %d misses; e2e p95 %.2f ms.\n",
		metrics.CacheHits, metrics.CacheMisses, metrics.E2EMs.Quantile(0.95))
	fmt.Println("Chemical-accuracy work would add error mitigation — the §4 training topic.")
}

// qrmRunner adapts the QRM to the hybrid.Runner interface: each expectation
// measurement becomes one quantum job on the stack.
type qrmRunner struct {
	m    *qrm.Manager
	user string
}

func (r qrmRunner) Run(c *circuit.Circuit, shots int) (map[int]int, error) {
	id, err := r.m.Submit(qrm.Request{Circuit: c, Shots: shots, User: r.user})
	if err != nil {
		return nil, err
	}
	var job *qrm.Job
	if r.m.Running() {
		// Pipeline mode: the dispatch workers own execution.
		job, err = r.m.WaitJob(id)
	} else {
		if _, err = r.m.Drain(); err != nil {
			return nil, err
		}
		job, err = r.m.Job(id)
	}
	if err != nil {
		return nil, err
	}
	if job.Status != qrm.StatusDone {
		return nil, fmt.Errorf("job %d failed: %s", id, job.Error)
	}
	// Project physical outcomes back onto logical qubits via the layout.
	logicalCounts := make(map[int]int, len(job.Counts))
	for outcome, count := range job.Counts {
		logical := 0
		for i, p := range job.Layout {
			if outcome&(1<<uint(p)) != 0 {
				logical |= 1 << uint(i)
			}
		}
		logicalCounts[logical] += count
	}
	return logicalCounts, nil
}
