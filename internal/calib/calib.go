// Package calib implements the calibration operations layer (§3.2): the
// standardized algorithmic health checks (GHZ state creation on qubit
// subsets) that measure the system's "live" performance, and the
// scheduler-controllable policy that decides when to run the quick (40 min)
// or full (100 min) recalibration procedure.
package calib

import (
	"fmt"
	"strings"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/qdmi"
	"repro/internal/transpile"
)

// Procedure identifies a recalibration procedure.
type Procedure int

const (
	// ProcedureNone means no recalibration is needed.
	ProcedureNone Procedure = iota
	// ProcedureQuick is the 40-minute procedure with slightly lower
	// resulting performance.
	ProcedureQuick
	// ProcedureFull is the 100-minute procedure yielding optimal
	// performance.
	ProcedureFull
)

func (p Procedure) String() string {
	switch p {
	case ProcedureNone:
		return "none"
	case ProcedureQuick:
		return "quick"
	case ProcedureFull:
		return "full"
	}
	return fmt.Sprintf("procedure(%d)", int(p))
}

// DurationMinutes returns the procedure duration from §3.2.
func (p Procedure) DurationMinutes() float64 {
	switch p {
	case ProcedureQuick:
		return 40
	case ProcedureFull:
		return 100
	}
	return 0
}

// HealthCheck is the result of running the GHZ benchmark ladder.
type HealthCheck struct {
	// Fidelities maps GHZ size -> population fidelity P(0...0)+P(1...1).
	Fidelities map[int]float64
	// Shots used per size.
	Shots int
	// Pass reports whether every size met its threshold.
	Pass bool
	// Failures lists sizes that fell below threshold.
	Failures []int
}

func (h *HealthCheck) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "health check (%d shots): ", h.Shots)
	if h.Pass {
		b.WriteString("PASS")
	} else {
		fmt.Fprintf(&b, "FAIL at sizes %v", h.Failures)
	}
	return b.String()
}

// Thresholds returns the acceptance threshold for an n-qubit GHZ population
// fidelity. Ideal is 1.0; each qubit's gates and readout chip away at it, so
// the bar decays geometrically with size. The constants are set so a freshly
// fully-calibrated device passes with margin and a badly drifted one fails.
func Threshold(n int) float64 {
	base := 0.93
	perQubit := 0.975
	th := base
	for i := 1; i < n; i++ {
		th *= perQubit
	}
	return th
}

// RunHealthCheck executes the GHZ ladder on the device through the JIT
// transpiler (fidelity-aware placement, as production health checks would
// use) and scores each size against its threshold.
func RunHealthCheck(dev *qdmi.Device, sizes []int, shots int) (*HealthCheck, error) {
	if shots < 1 {
		return nil, fmt.Errorf("calib: shots must be positive, got %d", shots)
	}
	hc := &HealthCheck{Fidelities: make(map[int]float64, len(sizes)), Shots: shots, Pass: true}
	for _, n := range sizes {
		if n < 2 || n > dev.Properties().NumQubits {
			return nil, fmt.Errorf("calib: GHZ size %d out of range [2, %d]", n, dev.Properties().NumQubits)
		}
		res, err := transpile.Transpile(circuit.GHZ(n), dev.Target(), transpile.Options{
			Placement: transpile.PlaceFidelityAware,
		})
		if err != nil {
			return nil, fmt.Errorf("calib: transpiling GHZ-%d: %w", n, err)
		}
		out, err := dev.QPU().Execute(res.Circuit, shots)
		if err != nil {
			return nil, fmt.Errorf("calib: executing GHZ-%d: %w", n, err)
		}
		// Population fidelity on the physical register: the GHZ lives on
		// the placed qubits; count outcomes where all placed qubits agree.
		f := placedGHZFidelity(out, res.FinalLayout[:n])
		hc.Fidelities[n] = f
		if f < Threshold(n) {
			hc.Pass = false
			hc.Failures = append(hc.Failures, n)
		}
	}
	return hc, nil
}

// placedGHZFidelity counts outcomes where every placed qubit reads 0 or
// every placed qubit reads 1 (ignoring unplaced qubits, which stay |0>).
func placedGHZFidelity(res *device.Result, placed []int) float64 {
	if res.Shots == 0 {
		return 0
	}
	good := 0
	for outcome, count := range res.Counts {
		zeros, ones := 0, 0
		for _, p := range placed {
			if outcome&(1<<uint(p)) == 0 {
				zeros++
			} else {
				ones++
			}
		}
		if zeros == len(placed) || ones == len(placed) {
			good += count
		}
	}
	return float64(good) / float64(res.Shots)
}

// Policy decides which procedure to run, given the health state. It
// implements the paper's operating model: routine recalibration fully under
// HPC-center control (lesson 2), quick procedures for routine drift, full
// procedures on schedule or after health-check failure.
type Policy struct {
	// QuickEveryHours triggers a quick recalibration when the record is
	// older than this (default 24 h: daily).
	QuickEveryHours float64
	// FullEveryHours triggers a full recalibration when the last full one
	// is older than this (default 168 h: weekly).
	FullEveryHours float64
	// FullOnHealthFailure escalates to a full procedure when the health
	// check fails.
	FullOnHealthFailure bool

	hoursSinceFull float64
}

// DefaultPolicy returns the daily-quick / weekly-full policy.
func DefaultPolicy() *Policy {
	return &Policy{QuickEveryHours: 24, FullEveryHours: 168, FullOnHealthFailure: true}
}

// Decide returns the procedure to run given the calibration age and the
// latest health check (nil means no check available).
func (p *Policy) Decide(calibAgeHours float64, hc *HealthCheck) Procedure {
	if hc != nil && !hc.Pass && p.FullOnHealthFailure {
		return ProcedureFull
	}
	if p.hoursSinceFull >= p.FullEveryHours {
		return ProcedureFull
	}
	if calibAgeHours >= p.QuickEveryHours {
		return ProcedureQuick
	}
	return ProcedureNone
}

// Advance ages the policy clock by dtHours.
func (p *Policy) Advance(dtHours float64) { p.hoursSinceFull += dtHours }

// Ran records that a procedure was executed.
func (p *Policy) Ran(proc Procedure) {
	if proc == ProcedureFull {
		p.hoursSinceFull = 0
	}
}

// HoursSinceFull reports the policy's full-calibration age.
func (p *Policy) HoursSinceFull() float64 { return p.hoursSinceFull }
