package calib

import (
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/qdmi"
)

func TestProcedureDurationsMatchPaper(t *testing.T) {
	if ProcedureQuick.DurationMinutes() != 40 {
		t.Error("quick should be 40 minutes (§3.2)")
	}
	if ProcedureFull.DurationMinutes() != 100 {
		t.Error("full should be 100 minutes (§3.2)")
	}
	if ProcedureNone.DurationMinutes() != 0 {
		t.Error("none should be 0 minutes")
	}
}

func TestProcedureStrings(t *testing.T) {
	if ProcedureNone.String() != "none" || ProcedureQuick.String() != "quick" || ProcedureFull.String() != "full" {
		t.Error("procedure names wrong")
	}
	if !strings.Contains(Procedure(9).String(), "9") {
		t.Error("unknown procedure should include number")
	}
}

func TestThresholdDecreasesWithSize(t *testing.T) {
	prev := 1.0
	for n := 2; n <= 20; n++ {
		th := Threshold(n)
		if th >= prev {
			t.Fatalf("threshold not decreasing at n=%d: %g >= %g", n, th, prev)
		}
		if th <= 0 || th >= 1 {
			t.Fatalf("threshold out of (0,1) at n=%d: %g", n, th)
		}
		prev = th
	}
}

func TestHealthCheckPassesOnFreshDevice(t *testing.T) {
	dev := qdmi.NewDevice(device.New20Q(1), nil)
	hc, err := RunHealthCheck(dev, []int{2, 4, 6}, 400)
	if err != nil {
		t.Fatal(err)
	}
	if !hc.Pass {
		t.Errorf("fresh device failed health check: %+v", hc.Fidelities)
	}
	for n, f := range hc.Fidelities {
		if f < Threshold(n) {
			t.Errorf("GHZ-%d fidelity %.3f below threshold %.3f", n, f, Threshold(n))
		}
	}
	if !strings.Contains(hc.String(), "PASS") {
		t.Errorf("string = %q", hc.String())
	}
}

func TestHealthCheckFailsOnBadlyDriftedDevice(t *testing.T) {
	qpu := device.New20Q(2)
	qpu.AdvanceDrift(24 * 60) // two months unattended
	dev := qdmi.NewDevice(qpu, nil)
	hc, err := RunHealthCheck(dev, []int{4, 8}, 400)
	if err != nil {
		t.Fatal(err)
	}
	if hc.Pass {
		t.Errorf("60-day drifted device passed health check: %+v", hc.Fidelities)
	}
	if len(hc.Failures) == 0 {
		t.Error("failures list empty")
	}
	if !strings.Contains(hc.String(), "FAIL") {
		t.Errorf("string = %q", hc.String())
	}
}

func TestHealthCheckValidation(t *testing.T) {
	dev := qdmi.NewDevice(device.New20Q(3), nil)
	if _, err := RunHealthCheck(dev, []int{2}, 0); err == nil {
		t.Error("expected error for 0 shots")
	}
	if _, err := RunHealthCheck(dev, []int{1}, 100); err == nil {
		t.Error("expected error for GHZ-1")
	}
	if _, err := RunHealthCheck(dev, []int{25}, 100); err == nil {
		t.Error("expected error for GHZ-25 on 20 qubits")
	}
}

func TestPolicySchedule(t *testing.T) {
	p := DefaultPolicy()
	if got := p.Decide(1, nil); got != ProcedureNone {
		t.Errorf("fresh record: %v, want none", got)
	}
	if got := p.Decide(25, nil); got != ProcedureQuick {
		t.Errorf("25 h old record: %v, want quick", got)
	}
	p.Advance(170) // past the weekly full cadence
	if got := p.Decide(1, nil); got != ProcedureFull {
		t.Errorf("week since full: %v, want full", got)
	}
	p.Ran(ProcedureFull)
	if p.HoursSinceFull() != 0 {
		t.Error("Ran(full) should reset the full clock")
	}
	if got := p.Decide(1, nil); got != ProcedureNone {
		t.Errorf("after full: %v, want none", got)
	}
}

func TestPolicyEscalatesOnHealthFailure(t *testing.T) {
	p := DefaultPolicy()
	bad := &HealthCheck{Pass: false, Failures: []int{8}}
	if got := p.Decide(0, bad); got != ProcedureFull {
		t.Errorf("health failure: %v, want full", got)
	}
	p.FullOnHealthFailure = false
	if got := p.Decide(0, bad); got != ProcedureNone {
		t.Errorf("health failure with escalation off: %v, want none", got)
	}
}

func TestQuickRanDoesNotResetFullClock(t *testing.T) {
	p := DefaultPolicy()
	p.Advance(100)
	p.Ran(ProcedureQuick)
	if p.HoursSinceFull() != 100 {
		t.Error("quick procedure must not reset the full-calibration clock")
	}
}

// End-to-end §3.2 scenario: drift degrades health, recalibration restores it.
func TestRecalibrationRestoresHealth(t *testing.T) {
	qpu := device.New20Q(4)
	dev := qdmi.NewDevice(qpu, nil)
	qpu.AdvanceDrift(24 * 45)
	before, err := RunHealthCheck(dev, []int{6}, 300)
	if err != nil {
		t.Fatal(err)
	}
	qpu.Recalibrate(true)
	after, err := RunHealthCheck(dev, []int{6}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if after.Fidelities[6] <= before.Fidelities[6] {
		t.Errorf("recalibration did not improve GHZ-6: %.3f -> %.3f",
			before.Fidelities[6], after.Fidelities[6])
	}
	if !after.Pass {
		t.Errorf("device should pass after full recalibration: %+v", after.Fidelities)
	}
}
