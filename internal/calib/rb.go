package calib

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/device"
)

// Randomized benchmarking (RB) is part of the "suite of algorithmic
// benchmarks" the system runs to check its state (§3.2). Single-qubit RB
// applies random Clifford sequences of growing length followed by the
// recovery Clifford; the survival probability decays as A·p^m + B, and the
// average gate fidelity is 1 - (1-p)/2.

// cliffords1Q is a generating presentation of the 24-element single-qubit
// Clifford group as PRX/RZ native sequences. For RB purposes we use the
// standard decomposition of each Clifford into at most three generators
// from {X90, Z90}; here we store each Clifford's unitary directly and
// synthesize native gates per element.
type clifford struct {
	name  string
	gates []circuit.Gate
}

// buildCliffords enumerates the 24 single-qubit Cliffords as sequences over
// H, S (each itself lowered later by the transpiler). The enumeration is the
// standard coset construction: {I, H, S, HS, SH, HSH...} — we generate by
// closure over {H, S} and keep 24 distinct unitaries.
func buildCliffords() []clifford {
	type entry struct {
		m     [2][2]complex128
		gates []circuit.Gate
	}
	hGate := circuit.Gate{Name: circuit.OpH, Qubits: []int{0}}
	sGate := circuit.Gate{Name: circuit.OpS, Qubits: []int{0}}

	id := [2][2]complex128{{1, 0}, {0, 1}}
	hm := [2][2]complex128{
		{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0)},
		{complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0)},
	}
	sm := [2][2]complex128{{1, 0}, {0, complex(0, 1)}}

	mul := func(a, b [2][2]complex128) [2][2]complex128 {
		var out [2][2]complex128
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				out[i][j] = a[i][0]*b[0][j] + a[i][1]*b[1][j]
			}
		}
		return out
	}
	// canonical key up to global phase: normalize by the first nonzero
	// element's phase.
	key := func(m [2][2]complex128) string {
		var ref complex128
		for _, row := range m {
			for _, v := range row {
				if realAbs(v) > 1e-9 {
					ref = v
					break
				}
			}
			if ref != 0 {
				break
			}
		}
		norm := ref / complex(realAbs(ref), 0)
		out := ""
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				v := m[i][j] / norm
				out += fmt.Sprintf("%.6f,%.6f;", real(v), imag(v))
			}
		}
		return out
	}

	seen := map[string]bool{}
	frontier := []entry{{m: id}}
	seen[key(id)] = true
	var all []entry
	all = append(all, frontier...)
	for len(frontier) > 0 && len(all) < 24 {
		var next []entry
		for _, e := range frontier {
			for _, g := range []struct {
				m [2][2]complex128
				g circuit.Gate
			}{{hm, hGate}, {sm, sGate}} {
				nm := mul(g.m, e.m)
				k := key(nm)
				if seen[k] {
					continue
				}
				seen[k] = true
				ne := entry{m: nm, gates: append(append([]circuit.Gate(nil), e.gates...), g.g)}
				next = append(next, ne)
				all = append(all, ne)
				if len(all) == 24 {
					break
				}
			}
			if len(all) == 24 {
				break
			}
		}
		frontier = next
	}
	out := make([]clifford, len(all))
	for i, e := range all {
		out[i] = clifford{name: fmt.Sprintf("C%d", i), gates: e.gates}
	}
	return out
}

func realAbs(v complex128) float64 { return math.Hypot(real(v), imag(v)) }

var cliffordGroup = buildCliffords()

// NumCliffords1Q exposes the group size (24) for tests.
func NumCliffords1Q() int { return len(cliffordGroup) }

// RBResult is the outcome of a randomized-benchmarking run.
type RBResult struct {
	// Lengths and Survival are the decay-curve points.
	Lengths  []int
	Survival []float64
	// DecayP is the fitted depolarizing parameter p.
	DecayP float64
	// AvgGateFidelity = 1 - (1-p)/2.
	AvgGateFidelity float64
}

// RunRB performs single-qubit RB on physical qubit q of the device:
// sequences of the given lengths, seqPerLen random sequences each, shots
// measurements per sequence. The recovery gate is synthesized by inverting
// the sequence gate-by-gate (each Clifford's inverse is its reversed
// dagger — realized here by simulating and appending the exact inverse
// sequence, which stays within the group).
func RunRB(qpu *device.QPU, q int, lengths []int, seqPerLen, shots int, seed int64) (*RBResult, error) {
	if q < 0 || q >= qpu.NumQubits() {
		return nil, fmt.Errorf("calib: RB qubit %d out of range", q)
	}
	if len(lengths) < 2 {
		return nil, fmt.Errorf("calib: RB needs >= 2 sequence lengths")
	}
	if seqPerLen < 1 || shots < 1 {
		return nil, fmt.Errorf("calib: RB needs positive sequences and shots")
	}
	rng := rand.New(rand.NewSource(seed))
	res := &RBResult{Lengths: append([]int(nil), lengths...)}
	for _, m := range lengths {
		if m < 1 {
			return nil, fmt.Errorf("calib: RB length %d must be >= 1", m)
		}
		survive := 0.0
		for s := 0; s < seqPerLen; s++ {
			seq := make([]int, m)
			for i := range seq {
				seq[i] = rng.Intn(len(cliffordGroup))
			}
			c, err := rbCircuit(q, qpu.NumQubits(), seq)
			if err != nil {
				return nil, err
			}
			out, err := qpu.Execute(c, shots)
			if err != nil {
				return nil, fmt.Errorf("calib: RB length %d: %w", m, err)
			}
			bit := 1 << uint(q)
			good := 0
			for outcome, count := range out.Counts {
				if outcome&bit == 0 {
					good += count
				}
			}
			survive += float64(good) / float64(shots)
		}
		res.Survival = append(res.Survival, survive/float64(seqPerLen))
	}
	res.DecayP = fitDecay(res.Lengths, res.Survival)
	res.AvgGateFidelity = 1 - (1-res.DecayP)/2
	return res, nil
}

// rbCircuit builds the native circuit for one RB sequence plus its inverse.
func rbCircuit(q, numQubits int, seq []int) (*circuit.Circuit, error) {
	logical := circuit.New(1, "rb")
	for _, idx := range seq {
		for _, g := range cliffordGroup[idx].gates {
			if err := logical.AddGate(g); err != nil {
				return nil, err
			}
		}
	}
	// Append the exact inverse: reversed sequence with each gate inverted
	// (H† = H, S† = Sdg).
	for i := len(logical.Gates) - 1; i >= 0; i-- {
		g := logical.Gates[i]
		inv := g
		switch g.Name {
		case circuit.OpH:
			// self-inverse
		case circuit.OpS:
			inv = circuit.Gate{Name: circuit.OpSdag, Qubits: g.Qubits}
		default:
			return nil, fmt.Errorf("calib: unexpected RB generator %q", g.Name)
		}
		logical.Gates = append(logical.Gates, inv)
	}
	// Lower to native gates on the physical register, mapping logical
	// qubit 0 to the chosen physical qubit via a trivial remap.
	phys := circuit.New(numQubits, "rb-native")
	for _, g := range logical.Gates {
		ng := g
		ng.Qubits = []int{q}
		if err := phys.AddGate(ng); err != nil {
			return nil, err
		}
	}
	return lowerTo1QNative(phys)
}

// lowerTo1QNative rewrites H and S/Sdg into PRX/RZ without pulling in the
// full transpiler (RB must not depend on placement decisions).
func lowerTo1QNative(c *circuit.Circuit) (*circuit.Circuit, error) {
	out := circuit.New(c.NumQubits, c.Name)
	for _, g := range c.Gates {
		q := g.Qubits[0]
		switch g.Name {
		case circuit.OpH:
			out.RZ(q, math.Pi)
			out.PRX(q, math.Pi/2, math.Pi/2)
		case circuit.OpS:
			out.RZ(q, math.Pi/2)
		case circuit.OpSdag:
			out.RZ(q, -math.Pi/2)
		default:
			return nil, fmt.Errorf("calib: cannot lower %q", g.Name)
		}
	}
	return out, nil
}

// fitDecay fits survival = A·p^m + B with fixed A = 0.5, B = 0.5 (the
// standard single-qubit asymptote) by least squares over log-transformed
// points, falling back to a two-point estimate when the transform is
// ill-conditioned.
func fitDecay(lengths []int, survival []float64) float64 {
	// Transform: y = (s - 0.5)/0.5 = p^m  ->  ln y = m ln p.
	var sumXX, sumXY float64
	count := 0
	for i, m := range lengths {
		y := (survival[i] - 0.5) / 0.5
		if y <= 1e-6 {
			continue
		}
		x := float64(m)
		sumXX += x * x
		sumXY += x * math.Log(y)
		count++
	}
	if count < 2 || sumXX == 0 {
		return 0
	}
	lnP := sumXY / sumXX
	p := math.Exp(lnP)
	if p > 1 {
		p = 1
	}
	if p < 0 {
		p = 0
	}
	return p
}
