package calib

import (
	"math"
	"testing"

	"repro/internal/device"
)

func TestCliffordGroupHas24Elements(t *testing.T) {
	if got := NumCliffords1Q(); got != 24 {
		t.Fatalf("Clifford group size = %d, want 24", got)
	}
}

func TestRBCircuitIsIdentityIdeally(t *testing.T) {
	// Any RB sequence + inverse must return |0> exactly on the twin.
	twin := device.NewTwin20Q(1)
	res, err := RunRB(twin, 3, []int{2, 8, 16}, 4, 200, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Survival {
		if s != 1 {
			t.Errorf("twin survival at length %d = %g, want exactly 1", res.Lengths[i], s)
		}
	}
	if res.AvgGateFidelity < 0.9999 {
		t.Errorf("twin RB fidelity = %g, want ~1", res.AvgGateFidelity)
	}
}

func TestRBDecaysOnNoisyDevice(t *testing.T) {
	qpu := device.New20Q(2)
	res, err := RunRB(qpu, 0, []int{1, 4, 16, 32}, 6, 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Survival must decay with sequence length.
	if res.Survival[0] <= res.Survival[len(res.Survival)-1] {
		t.Errorf("no decay: survival %v", res.Survival)
	}
	// The fitted fidelity should land near the calibration record's F1Q
	// (which folds in gate depolarizing + decoherence). Allow a loose band:
	// RB sees PRX error plus T1/T2 during the sequence.
	f1q := qpu.Calibration().Qubits[0].F1Q
	if res.AvgGateFidelity < f1q-0.02 || res.AvgGateFidelity > 1 {
		t.Errorf("RB fidelity %.5f vs calibration F1Q %.5f", res.AvgGateFidelity, f1q)
	}
}

func TestRBDetectsDriftedQubit(t *testing.T) {
	fresh := device.New20Q(3)
	drifted := device.New20Q(3)
	drifted.AdvanceDrift(24 * 45)
	lengths := []int{1, 8, 24}
	rf, err := RunRB(fresh, 0, lengths, 5, 300, 11)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := RunRB(drifted, 0, lengths, 5, 300, 11)
	if err != nil {
		t.Fatal(err)
	}
	if rd.AvgGateFidelity >= rf.AvgGateFidelity {
		t.Errorf("drifted RB fidelity %.5f should be below fresh %.5f",
			rd.AvgGateFidelity, rf.AvgGateFidelity)
	}
}

func TestRunRBValidation(t *testing.T) {
	qpu := device.New20Q(4)
	if _, err := RunRB(qpu, -1, []int{1, 2}, 1, 10, 1); err == nil {
		t.Error("bad qubit should fail")
	}
	if _, err := RunRB(qpu, 0, []int{4}, 1, 10, 1); err == nil {
		t.Error("single length should fail")
	}
	if _, err := RunRB(qpu, 0, []int{1, 2}, 0, 10, 1); err == nil {
		t.Error("0 sequences should fail")
	}
	if _, err := RunRB(qpu, 0, []int{0, 2}, 1, 10, 1); err == nil {
		t.Error("0 length should fail")
	}
}

func TestFitDecayExact(t *testing.T) {
	// Synthetic exact decay p = 0.99.
	p := 0.99
	lengths := []int{1, 2, 4, 8, 16, 32}
	survival := make([]float64, len(lengths))
	for i, m := range lengths {
		survival[i] = 0.5*math.Pow(p, float64(m)) + 0.5
	}
	got := fitDecay(lengths, survival)
	if math.Abs(got-p) > 1e-6 {
		t.Errorf("fitted p = %.6f, want %.2f", got, p)
	}
}

func TestFitDecayDegenerate(t *testing.T) {
	if fitDecay([]int{1, 2}, []float64{0.5, 0.5}) != 0 {
		t.Error("all-asymptote data should fit p = 0")
	}
}
