// Package circuit defines the gate-level intermediate representation shared
// by every layer of the stack: frontend adapters build Circuits, the
// transpiler lowers them to the QPU's native gate set, the device executor
// runs them, and the REST API serializes them. It is the Go equivalent of
// the common IR the paper's MQSS uses to enable "homogeneous compilation
// strategies across heterogeneous targets" (§2.6).
package circuit

import (
	"fmt"
	"math"
	"strings"
)

// Gate names understood by the IR. PRX, RZ and CZ form the native set of the
// square-grid transmon QPU; the rest are frontend conveniences the
// transpiler lowers.
const (
	OpH       = "h"
	OpX       = "x"
	OpY       = "y"
	OpZ       = "z"
	OpS       = "s"
	OpSdag    = "sdg"
	OpT       = "t"
	OpTdag    = "tdg"
	OpRX      = "rx"
	OpRY      = "ry"
	OpRZ      = "rz"
	OpPRX     = "prx"
	OpU3      = "u3" // generic single-qubit unitary U3(θ, φ, λ)
	OpCZ      = "cz"
	OpCNOT    = "cx"
	OpSWAP    = "swap"
	OpCRZ     = "crz" // controlled-RZ(θ)
	OpCCX     = "ccx" // Toffoli
	OpBarrier = "barrier"
)

// arity and parameter count per op.
type opSpec struct {
	qubits int
	params int
}

var opSpecs = map[string]opSpec{
	OpH: {1, 0}, OpX: {1, 0}, OpY: {1, 0}, OpZ: {1, 0},
	OpS: {1, 0}, OpSdag: {1, 0}, OpT: {1, 0}, OpTdag: {1, 0},
	OpRX: {1, 1}, OpRY: {1, 1}, OpRZ: {1, 1}, OpPRX: {1, 2}, OpU3: {1, 3},
	OpCZ: {2, 0}, OpCNOT: {2, 0}, OpSWAP: {2, 0}, OpCRZ: {2, 1},
	OpCCX:     {3, 0},
	OpBarrier: {0, 0},
}

// KnownOp reports whether name is a gate the IR understands.
func KnownOp(name string) bool {
	_, ok := opSpecs[name]
	return ok
}

// Gate is one operation in a circuit.
type Gate struct {
	Name   string    `json:"name"`
	Qubits []int     `json:"qubits"`
	Params []float64 `json:"params,omitempty"`
}

// Validate checks arity and parameter count.
func (g Gate) Validate(numQubits int) error {
	spec, ok := opSpecs[g.Name]
	if !ok {
		return fmt.Errorf("circuit: unknown gate %q", g.Name)
	}
	if g.Name == OpBarrier {
		return nil // barrier may name any subset of qubits
	}
	if len(g.Qubits) != spec.qubits {
		return fmt.Errorf("circuit: gate %q wants %d qubits, got %d", g.Name, spec.qubits, len(g.Qubits))
	}
	if len(g.Params) != spec.params {
		return fmt.Errorf("circuit: gate %q wants %d params, got %d", g.Name, spec.params, len(g.Params))
	}
	seen := map[int]bool{}
	for _, q := range g.Qubits {
		if q < 0 || q >= numQubits {
			return fmt.Errorf("circuit: gate %q qubit %d out of range [0, %d)", g.Name, q, numQubits)
		}
		if seen[q] {
			return fmt.Errorf("circuit: gate %q uses qubit %d twice", g.Name, q)
		}
		seen[q] = true
	}
	return nil
}

func (g Gate) String() string {
	var b strings.Builder
	b.WriteString(g.Name)
	if len(g.Params) > 0 {
		b.WriteByte('(')
		for i, p := range g.Params {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%g", p)
		}
		b.WriteByte(')')
	}
	for i, q := range g.Qubits {
		if i == 0 {
			b.WriteByte(' ')
		} else {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "q[%d]", q)
	}
	return b.String()
}

// Circuit is an ordered gate list over a fixed qubit register. Measurement
// of all qubits in the Z basis is implicit at the end, matching the
// histogram-of-bitstrings output format of §2.4.
type Circuit struct {
	Name      string `json:"name,omitempty"`
	NumQubits int    `json:"num_qubits"`
	Gates     []Gate `json:"gates"`
}

// New returns an empty circuit over n qubits.
func New(n int, name string) *Circuit {
	return &Circuit{Name: name, NumQubits: n}
}

// Validate checks every gate against the register size.
func (c *Circuit) Validate() error {
	if c.NumQubits < 1 {
		return fmt.Errorf("circuit: register size %d must be >= 1", c.NumQubits)
	}
	for i, g := range c.Gates {
		if err := g.Validate(c.NumQubits); err != nil {
			return fmt.Errorf("gate %d: %w", i, err)
		}
	}
	return nil
}

// Clone returns a deep copy.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{Name: c.Name, NumQubits: c.NumQubits, Gates: make([]Gate, len(c.Gates))}
	for i, g := range c.Gates {
		ng := Gate{Name: g.Name, Qubits: append([]int(nil), g.Qubits...)}
		if len(g.Params) > 0 {
			ng.Params = append([]float64(nil), g.Params...)
		}
		out.Gates[i] = ng
	}
	return out
}

// append validates and adds a gate, panicking on programmer error — the
// builder methods are meant for statically-correct construction; use
// AddGate for data-driven paths.
func (c *Circuit) append(g Gate) *Circuit {
	if err := g.Validate(c.NumQubits); err != nil {
		panic(err)
	}
	c.Gates = append(c.Gates, g)
	return c
}

// AddGate validates and appends a gate, returning an error on bad input.
func (c *Circuit) AddGate(g Gate) error {
	if err := g.Validate(c.NumQubits); err != nil {
		return err
	}
	c.Gates = append(c.Gates, g)
	return nil
}

// Builder methods. Each returns the circuit for chaining.

func (c *Circuit) H(q int) *Circuit    { return c.append(Gate{Name: OpH, Qubits: []int{q}}) }
func (c *Circuit) X(q int) *Circuit    { return c.append(Gate{Name: OpX, Qubits: []int{q}}) }
func (c *Circuit) Y(q int) *Circuit    { return c.append(Gate{Name: OpY, Qubits: []int{q}}) }
func (c *Circuit) Z(q int) *Circuit    { return c.append(Gate{Name: OpZ, Qubits: []int{q}}) }
func (c *Circuit) S(q int) *Circuit    { return c.append(Gate{Name: OpS, Qubits: []int{q}}) }
func (c *Circuit) Sdag(q int) *Circuit { return c.append(Gate{Name: OpSdag, Qubits: []int{q}}) }
func (c *Circuit) T(q int) *Circuit    { return c.append(Gate{Name: OpT, Qubits: []int{q}}) }
func (c *Circuit) Tdag(q int) *Circuit { return c.append(Gate{Name: OpTdag, Qubits: []int{q}}) }

func (c *Circuit) RX(q int, theta float64) *Circuit {
	return c.append(Gate{Name: OpRX, Qubits: []int{q}, Params: []float64{theta}})
}
func (c *Circuit) RY(q int, theta float64) *Circuit {
	return c.append(Gate{Name: OpRY, Qubits: []int{q}, Params: []float64{theta}})
}
func (c *Circuit) RZ(q int, theta float64) *Circuit {
	return c.append(Gate{Name: OpRZ, Qubits: []int{q}, Params: []float64{theta}})
}
func (c *Circuit) PRX(q int, theta, phi float64) *Circuit {
	return c.append(Gate{Name: OpPRX, Qubits: []int{q}, Params: []float64{theta, phi}})
}
func (c *Circuit) U3(q int, theta, phi, lambda float64) *Circuit {
	return c.append(Gate{Name: OpU3, Qubits: []int{q}, Params: []float64{theta, phi, lambda}})
}
func (c *Circuit) CZ(a, b int) *Circuit { return c.append(Gate{Name: OpCZ, Qubits: []int{a, b}}) }
func (c *Circuit) CRZ(control, target int, theta float64) *Circuit {
	return c.append(Gate{Name: OpCRZ, Qubits: []int{control, target}, Params: []float64{theta}})
}
func (c *Circuit) CCX(c1, c2, target int) *Circuit {
	return c.append(Gate{Name: OpCCX, Qubits: []int{c1, c2, target}})
}
func (c *Circuit) CNOT(control, target int) *Circuit {
	return c.append(Gate{Name: OpCNOT, Qubits: []int{control, target}})
}
func (c *Circuit) SWAP(a, b int) *Circuit {
	return c.append(Gate{Name: OpSWAP, Qubits: []int{a, b}})
}
func (c *Circuit) Barrier(qs ...int) *Circuit {
	return c.append(Gate{Name: OpBarrier, Qubits: qs})
}

// GHZ builds the n-qubit GHZ preparation circuit used as the standardized
// health check (§3.2).
func GHZ(n int) *Circuit {
	c := New(n, fmt.Sprintf("ghz-%d", n))
	c.H(0)
	for q := 1; q < n; q++ {
		c.CNOT(q-1, q)
	}
	return c
}

// Depth returns the circuit depth: the number of layers when gates that act
// on disjoint qubits are packed greedily. Barriers seal layers.
func (c *Circuit) Depth() int {
	level := make([]int, c.NumQubits)
	depth := 0
	barrier := 0
	for _, g := range c.Gates {
		if g.Name == OpBarrier {
			barrier = depth
			continue
		}
		l := barrier
		for _, q := range g.Qubits {
			if level[q] > l {
				l = level[q]
			}
		}
		l++
		for _, q := range g.Qubits {
			level[q] = l
		}
		if l > depth {
			depth = l
		}
	}
	return depth
}

// CountOp returns how many gates named op the circuit contains.
func (c *Circuit) CountOp(op string) int {
	n := 0
	for _, g := range c.Gates {
		if g.Name == op {
			n++
		}
	}
	return n
}

// TwoQubitCount returns the number of two-qubit gates.
func (c *Circuit) TwoQubitCount() int {
	n := 0
	for _, g := range c.Gates {
		if len(g.Qubits) == 2 && g.Name != OpBarrier {
			n++
		}
	}
	return n
}

// IsNative reports whether the circuit only uses the native set
// {PRX, RZ, CZ} (plus barriers).
func (c *Circuit) IsNative() bool {
	for _, g := range c.Gates {
		switch g.Name {
		case OpPRX, OpRZ, OpCZ, OpBarrier:
		default:
			return false
		}
	}
	return true
}

// normalizeAngle maps an angle into (-π, π].
func normalizeAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a > math.Pi {
		a -= 2 * math.Pi
	}
	if a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}
