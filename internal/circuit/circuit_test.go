package circuit

import (
	"math"
	"strings"
	"testing"
)

func TestBuilderChaining(t *testing.T) {
	c := New(3, "demo").H(0).CNOT(0, 1).CNOT(1, 2).RZ(2, math.Pi/4)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 4 {
		t.Errorf("got %d gates, want 4", len(c.Gates))
	}
}

func TestGateValidation(t *testing.T) {
	cases := []struct {
		g    Gate
		desc string
	}{
		{Gate{Name: "bogus", Qubits: []int{0}}, "unknown gate"},
		{Gate{Name: OpH, Qubits: []int{0, 1}}, "wrong arity"},
		{Gate{Name: OpCZ, Qubits: []int{0}}, "missing qubit"},
		{Gate{Name: OpCZ, Qubits: []int{1, 1}}, "duplicate qubit"},
		{Gate{Name: OpH, Qubits: []int{5}}, "out of range"},
		{Gate{Name: OpRZ, Qubits: []int{0}}, "missing param"},
		{Gate{Name: OpH, Qubits: []int{0}, Params: []float64{1}}, "extra param"},
	}
	for _, c := range cases {
		if err := c.g.Validate(3); err == nil {
			t.Errorf("%s: expected validation error for %+v", c.desc, c.g)
		}
	}
	ok := Gate{Name: OpPRX, Qubits: []int{2}, Params: []float64{1, 2}}
	if err := ok.Validate(3); err != nil {
		t.Errorf("valid gate rejected: %v", err)
	}
}

func TestBuilderPanicsOnBadQubit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, "").H(5)
}

func TestAddGateReturnsError(t *testing.T) {
	c := New(2, "")
	if err := c.AddGate(Gate{Name: OpH, Qubits: []int{7}}); err == nil {
		t.Error("expected error")
	}
	if err := c.AddGate(Gate{Name: OpH, Qubits: []int{1}}); err != nil {
		t.Errorf("valid gate rejected: %v", err)
	}
}

func TestValidateRejectsEmptyRegister(t *testing.T) {
	c := &Circuit{NumQubits: 0}
	if err := c.Validate(); err == nil {
		t.Error("expected error for empty register")
	}
}

func TestDepth(t *testing.T) {
	// h(0) | cx(0,1) | cx(1,2) is depth 3; h(0)+h(1) pack into one layer.
	c := New(3, "")
	c.H(0).H(1).CNOT(0, 1).CNOT(1, 2)
	if d := c.Depth(); d != 3 {
		t.Errorf("depth = %d, want 3", d)
	}
	empty := New(2, "")
	if d := empty.Depth(); d != 0 {
		t.Errorf("empty depth = %d, want 0", d)
	}
}

func TestDepthWithBarrier(t *testing.T) {
	// Barrier forces h(1) into a later layer than h(0).
	c := New(2, "")
	c.H(0).Barrier().H(1)
	if d := c.Depth(); d != 2 {
		t.Errorf("depth with barrier = %d, want 2", d)
	}
}

func TestCounts(t *testing.T) {
	c := GHZ(5)
	if got := c.CountOp(OpCNOT); got != 4 {
		t.Errorf("CNOT count = %d, want 4", got)
	}
	if got := c.TwoQubitCount(); got != 4 {
		t.Errorf("two-qubit count = %d, want 4", got)
	}
	if c.IsNative() {
		t.Error("GHZ circuit uses H/CNOT, should not be native")
	}
	n := New(2, "").PRX(0, 1, 2).RZ(1, 0.5).CZ(0, 1)
	if !n.IsNative() {
		t.Error("PRX/RZ/CZ circuit should be native")
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := New(2, "orig").RX(0, 1.5)
	cl := c.Clone()
	cl.Gates[0].Params[0] = 99
	cl.Gates[0].Qubits[0] = 1
	if c.Gates[0].Params[0] != 1.5 || c.Gates[0].Qubits[0] != 0 {
		t.Error("clone shares backing arrays with original")
	}
}

func TestGateString(t *testing.T) {
	g := Gate{Name: OpPRX, Qubits: []int{3}, Params: []float64{1.5, 0.5}}
	s := g.String()
	if !strings.Contains(s, "prx") || !strings.Contains(s, "q[3]") {
		t.Errorf("gate string %q missing pieces", s)
	}
	cz := Gate{Name: OpCZ, Qubits: []int{0, 1}}
	if got := cz.String(); got != "cz q[0],q[1]" {
		t.Errorf("cz string = %q", got)
	}
}

func TestNormalizeAngle(t *testing.T) {
	cases := map[float64]float64{
		0:               0,
		math.Pi:         math.Pi,
		-math.Pi:        math.Pi,
		3 * math.Pi:     math.Pi,
		2 * math.Pi:     0,
		-math.Pi / 2:    -math.Pi / 2,
		5 * math.Pi / 2: math.Pi / 2,
	}
	for in, want := range cases {
		if got := normalizeAngle(in); math.Abs(got-want) > 1e-12 {
			t.Errorf("normalizeAngle(%g) = %g, want %g", in, got, want)
		}
	}
}

func TestSimulateGHZ(t *testing.T) {
	s, err := GHZ(4).Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Probability(0)-0.5) > 1e-10 {
		t.Errorf("P(0000) = %g", s.Probability(0))
	}
	if math.Abs(s.Probability(15)-0.5) > 1e-10 {
		t.Errorf("P(1111) = %g", s.Probability(15))
	}
}

func TestSimulateAllGateTypes(t *testing.T) {
	c := New(3, "all-gates")
	c.H(0).X(1).Y(2).Z(0).S(1).Sdag(1).T(2).Tdag(2)
	c.RX(0, 0.3).RY(1, 0.7).RZ(2, 1.1).PRX(0, 0.5, 0.2)
	c.CZ(0, 1).CNOT(1, 2).SWAP(0, 2).Barrier()
	s, err := c.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Norm()-1) > 1e-9 {
		t.Errorf("norm = %g", s.Norm())
	}
}

func TestApplyToSmallerState(t *testing.T) {
	c := GHZ(5)
	s, _ := GHZ(3).Simulate()
	if err := c.ApplyTo(s); err == nil {
		t.Error("expected error applying 5-qubit circuit to 3-qubit state")
	}
}

func TestEquivalentTo(t *testing.T) {
	a := New(2, "").H(0).CNOT(0, 1)
	// Same Bell state via H on qubit 0, CZ, H on qubit 1... build an
	// equivalent: h(0); h(1); cz(0,1); h(1) == h(0); cnot(0,1).
	b := New(2, "").H(0).H(1).CZ(0, 1).H(1)
	eq, err := a.EquivalentTo(b, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("CZ-conjugated circuit should equal CNOT circuit")
	}
	cDiff := New(2, "").H(0)
	eq, err = a.EquivalentTo(cDiff, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("different circuits reported equivalent")
	}
	d := New(3, "")
	if _, err := a.EquivalentTo(d, 1e-9); err == nil {
		t.Error("expected size-mismatch error")
	}
}

func TestUnitaryLookupErrors(t *testing.T) {
	if _, err := Unitary1(Gate{Name: OpCZ}); err == nil {
		t.Error("Unitary1(cz) should fail")
	}
	if _, err := Unitary2(Gate{Name: OpH}); err == nil {
		t.Error("Unitary2(h) should fail")
	}
}
