package circuit

import (
	"fmt"

	"repro/internal/quantum"
)

// Compile lowers a circuit into a flat quantum.Program of precomputed
// unitaries, fusing runs of adjacent single-qubit gates on the same qubit
// into one 2x2 matrix. The compiled program applies no per-gate name
// dispatch or matrix construction, so executing it many times (the shot
// loop) pays the lowering cost once — the compile-once/execute-many split
// behind the device's execution engine. Barriers carry no simulation
// semantics and are dropped.
//
// Fusion is exact: single-qubit gates on distinct qubits commute, so
// deferring a qubit's accumulated product until a multi-qubit gate touches
// that qubit (or the circuit ends) preserves the circuit unitary.
func Compile(c *Circuit) (*quantum.Program, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	p := &quantum.Program{NumQubits: c.NumQubits}
	// pending[q] accumulates the product of not-yet-emitted single-qubit
	// gates on q, later-gate-leftmost.
	pending := make([]*quantum.Matrix2, c.NumQubits)
	flush := func(q int) {
		if pending[q] == nil {
			return
		}
		p.Ops = append(p.Ops, quantum.ProgOp{Kind: quantum.ProgOp1Q, Q1: q, M2: *pending[q]})
		pending[q] = nil
	}
	for i, g := range c.Gates {
		if g.Name == OpBarrier {
			continue
		}
		switch len(g.Qubits) {
		case 1:
			m, err := Unitary1(g)
			if err != nil {
				return nil, fmt.Errorf("gate %d: %w", i, err)
			}
			q := g.Qubits[0]
			if pending[q] == nil {
				pending[q] = &m
			} else {
				fused := quantum.Mul2(m, *pending[q])
				pending[q] = &fused
			}
		case 2:
			m, err := Unitary2(g)
			if err != nil {
				return nil, fmt.Errorf("gate %d: %w", i, err)
			}
			flush(g.Qubits[0])
			flush(g.Qubits[1])
			p.Ops = append(p.Ops, quantum.ProgOp{
				Kind: quantum.ProgOp2Q, Q1: g.Qubits[0], Q2: g.Qubits[1], M4: m,
			})
		case 3:
			if g.Name != OpCCX {
				return nil, fmt.Errorf("gate %d: unsupported three-qubit gate %q", i, g.Name)
			}
			flush(g.Qubits[0])
			flush(g.Qubits[1])
			flush(g.Qubits[2])
			p.Ops = append(p.Ops, quantum.ProgOp{
				Kind: quantum.ProgOpToffoli, Q1: g.Qubits[0], Q2: g.Qubits[1], Q3: g.Qubits[2],
			})
		default:
			return nil, fmt.Errorf("gate %d: unsupported arity %d", i, len(g.Qubits))
		}
	}
	for q := 0; q < c.NumQubits; q++ {
		flush(q)
	}
	return p, nil
}
