package circuit

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/quantum"
)

// randomCircuit builds a random circuit over n qubits drawing from the full
// IR gate set (parameterized, multi-qubit, Toffoli, barriers).
func randomCircuit(rng *rand.Rand, n, gates int) *Circuit {
	c := New(n, "random")
	oneQ := []string{OpH, OpX, OpY, OpZ, OpS, OpSdag, OpT, OpTdag, OpRX, OpRY, OpRZ, OpPRX, OpU3}
	twoQ := []string{OpCZ, OpCNOT, OpSWAP, OpCRZ}
	params := func(k int) []float64 {
		ps := make([]float64, k)
		for i := range ps {
			ps[i] = (rng.Float64()*2 - 1) * 2 * math.Pi
		}
		return ps
	}
	for len(c.Gates) < gates {
		switch r := rng.Float64(); {
		case r < 0.55:
			name := oneQ[rng.Intn(len(oneQ))]
			g := Gate{Name: name, Qubits: []int{rng.Intn(n)}, Params: params(opSpecs[name].params)}
			if len(g.Params) == 0 {
				g.Params = nil
			}
			c.append(g)
		case r < 0.85 && n >= 2:
			name := twoQ[rng.Intn(len(twoQ))]
			a := rng.Intn(n)
			b := rng.Intn(n - 1)
			if b >= a {
				b++
			}
			g := Gate{Name: name, Qubits: []int{a, b}, Params: params(opSpecs[name].params)}
			if len(g.Params) == 0 {
				g.Params = nil
			}
			c.append(g)
		case r < 0.92 && n >= 3:
			qs := rng.Perm(n)[:3]
			c.CCX(qs[0], qs[1], qs[2])
		default:
			c.Barrier()
		}
	}
	return c
}

// TestCompiledProgramMatchesApplyTo is the engine's correctness property:
// over randomized circuits, the fused flat program is unitary-equivalent to
// the naive gate-by-gate reference (state fidelity >= 1-1e-9 on |0...0>).
func TestCompiledProgramMatchesApplyTo(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(4) // 2..5 qubits
		c := randomCircuit(rng, n, 10+rng.Intn(30))
		prog, err := Compile(c)
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		want, err := c.Simulate() // naive ApplyTo reference
		if err != nil {
			t.Fatalf("trial %d: simulate: %v", trial, err)
		}
		got, err := quantum.AcquireState(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := prog.RunOn(got); err != nil {
			t.Fatalf("trial %d: run: %v", trial, err)
		}
		f, err := got.Fidelity(want)
		if err != nil {
			t.Fatal(err)
		}
		quantum.ReleaseState(got)
		if f < 1-1e-9 {
			t.Fatalf("trial %d (n=%d, %d gates): compiled/naive fidelity = %.12f, want >= 1-1e-9\ncircuit: %+v",
				trial, n, len(c.Gates), f, c.Gates)
		}
	}
}

func TestCompileFusesSingleQubitRuns(t *testing.T) {
	// 6 single-qubit gates on q0 + 2 on q1, split by one CZ: the run on q0
	// before the CZ fuses to one op, as does everything after.
	c := New(2, "fusion")
	c.H(0).T(0).RZ(0, 0.3) // fuse -> 1 op
	c.X(1)                 // fuse -> 1 op
	c.CZ(0, 1)             // 1 op
	c.S(0).RX(0, 0.1)      // fuse -> 1 op
	c.Y(1)                 // fuse -> 1 op
	prog, err := Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Ops) != 5 {
		t.Errorf("fused program has %d ops, want 5 (from %d gates)", len(prog.Ops), len(c.Gates))
	}
	oneQ := 0
	for _, op := range prog.Ops {
		if op.Kind == quantum.ProgOp1Q {
			oneQ++
		}
	}
	if oneQ != 4 {
		t.Errorf("fused program has %d single-qubit ops, want 4", oneQ)
	}
}

func TestCompileDropsBarriers(t *testing.T) {
	c := New(2, "barriers")
	c.H(0).Barrier(0, 1).H(0) // H·H fuses to identity-equivalent single op
	prog, err := Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Ops) != 1 {
		t.Errorf("program has %d ops, want 1 (barrier dropped, H·H fused)", len(prog.Ops))
	}
}

func TestCompileEmptyCircuit(t *testing.T) {
	prog, err := Compile(New(3, "empty"))
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Ops) != 0 || prog.NumQubits != 3 {
		t.Errorf("empty circuit compiled to %d ops over %d qubits", len(prog.Ops), prog.NumQubits)
	}
}

func TestCompileRejectsInvalid(t *testing.T) {
	c := &Circuit{NumQubits: 2, Gates: []Gate{{Name: "nope", Qubits: []int{0}}}}
	if _, err := Compile(c); err == nil {
		t.Error("expected error for unknown gate")
	}
}
