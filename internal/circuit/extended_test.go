package circuit

import (
	"math"
	"strings"
	"testing"
)

func TestU3SpecialCases(t *testing.T) {
	// U3(θ, 0, 0) == RY(θ) exactly in our convention.
	a := New(1, "").U3(0, 1.1, 0, 0)
	b := New(1, "").RY(0, 1.1)
	eq, err := a.EquivalentTo(b, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("U3(θ,0,0) != RY(θ)")
	}
	// U3(π, 0, π) == X up to global phase.
	c := New(1, "").U3(0, math.Pi, 0, math.Pi)
	d := New(1, "").X(0)
	eq, err = c.EquivalentTo(d, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("U3(π,0,π) != X")
	}
}

func TestCRZControlledBehaviour(t *testing.T) {
	// Control |0>: CRZ acts trivially.
	a := New(2, "").H(1).CRZ(0, 1, 1.3)
	b := New(2, "").H(1)
	eq, err := a.EquivalentTo(b, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("CRZ with control |0> should be identity")
	}
	// Control |1>: target picks up RZ(θ) (global phase differs by e^{iθ/2},
	// absorbed by EquivalentTo).
	c := New(2, "").X(0).H(1).CRZ(0, 1, 1.3)
	d := New(2, "").X(0).H(1).RZ(1, 1.3)
	eq, err = c.EquivalentTo(d, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("CRZ with control |1> should apply RZ to the target")
	}
}

func TestToffoliTruthTable(t *testing.T) {
	// CCX flips the target iff both controls are 1.
	for input := 0; input < 8; input++ {
		c := New(3, "")
		for q := 0; q < 3; q++ {
			if input&(1<<uint(q)) != 0 {
				c.X(q)
			}
		}
		c.CCX(0, 1, 2)
		s, err := c.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		want := input
		if input&0b011 == 0b011 {
			want ^= 0b100
		}
		if p := s.Probability(want); math.Abs(p-1) > 1e-10 {
			t.Errorf("CCX input %03b: P(%03b) = %g, want 1", input, want, p)
		}
	}
}

func TestToffoliOnSuperposition(t *testing.T) {
	// CCX on (|00>+|11>)⊗|0> entangles the target with the controls.
	c := New(3, "").H(0).CNOT(0, 1).CCX(0, 1, 2)
	s, err := c.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Probability(0b000)-0.5) > 1e-10 {
		t.Errorf("P(000) = %g", s.Probability(0b000))
	}
	if math.Abs(s.Probability(0b111)-0.5) > 1e-10 {
		t.Errorf("P(111) = %g", s.Probability(0b111))
	}
}

func TestCCXValidation(t *testing.T) {
	g := Gate{Name: OpCCX, Qubits: []int{0, 0, 1}}
	if err := g.Validate(3); err == nil {
		t.Error("duplicate Toffoli qubits should fail validation")
	}
	g2 := Gate{Name: OpCCX, Qubits: []int{0, 1}}
	if err := g2.Validate(3); err == nil {
		t.Error("two-qubit Toffoli should fail validation")
	}
}

func TestExtendedOpsQASMRoundTrip(t *testing.T) {
	orig := New(3, "ext")
	orig.U3(0, 0.5, 0.25, -0.75).CRZ(0, 1, 1.5).CCX(0, 1, 2)
	parsed, err := ParseQASM(strings.NewReader(orig.ToQASM()))
	if err != nil {
		t.Fatal(err)
	}
	eq, err := orig.EquivalentTo(parsed, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("extended ops lost in QASM round trip")
	}
}
