package circuit

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Fingerprint returns a structural hash of the circuit: qubit count plus
// every gate's name, operand qubits, and parameter bit patterns, in order.
// The circuit's display name is deliberately excluded — two identically
// structured programs hash equal regardless of labelling. The QRM's
// transpile cache keys on this together with the device calibration epoch.
func (c *Circuit) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeInt(c.NumQubits)
	for _, g := range c.Gates {
		h.Write([]byte(g.Name))
		writeInt(len(g.Qubits))
		for _, q := range g.Qubits {
			writeInt(q)
		}
		writeInt(len(g.Params))
		for _, p := range g.Params {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p))
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}
