package circuit

import "testing"

func TestFingerprintStableAndNameBlind(t *testing.T) {
	a := GHZ(4)
	b := GHZ(4)
	b.Name = "renamed"
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint should ignore the circuit name")
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Error("fingerprint not deterministic")
	}
}

func TestFingerprintDistinguishesStructure(t *testing.T) {
	base := GHZ(4)
	cases := map[string]*Circuit{
		"different size":   GHZ(5),
		"different gate":   New(4, "x").X(0).CNOT(0, 1).CNOT(1, 2).CNOT(2, 3),
		"different qubits": New(4, "x").H(1).CNOT(0, 1).CNOT(1, 2).CNOT(2, 3),
		"extra gate":       GHZ(4).Barrier(),
	}
	for name, c := range cases {
		if c.Fingerprint() == base.Fingerprint() {
			t.Errorf("%s: fingerprint collided with GHZ(4)", name)
		}
	}
	p1 := New(1, "p").RY(0, 0.5)
	p2 := New(1, "p").RY(0, 0.5000001)
	if p1.Fingerprint() == p2.Fingerprint() {
		t.Error("fingerprint should distinguish parameter values")
	}
}
