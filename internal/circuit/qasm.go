package circuit

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ToQASM renders the circuit as an OpenQASM-2-style program. Only the subset
// needed for interchange is emitted: a single quantum register and the gate
// vocabulary of this IR (prx is emitted as a non-standard named gate, which
// ParseQASM accepts back).
func (c *Circuit) ToQASM() string {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\n")
	if c.Name != "" {
		fmt.Fprintf(&b, "// name: %s\n", c.Name)
	}
	fmt.Fprintf(&b, "qreg q[%d];\n", c.NumQubits)
	for _, g := range c.Gates {
		if g.Name == OpBarrier {
			b.WriteString("barrier")
			for i, q := range g.Qubits {
				if i == 0 {
					b.WriteByte(' ')
				} else {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "q[%d]", q)
			}
			b.WriteString(";\n")
			continue
		}
		b.WriteString(g.Name)
		if len(g.Params) > 0 {
			b.WriteByte('(')
			for i, p := range g.Params {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(strconv.FormatFloat(p, 'g', 17, 64))
			}
			b.WriteByte(')')
		}
		b.WriteByte(' ')
		for i, q := range g.Qubits {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "q[%d]", q)
		}
		b.WriteString(";\n")
	}
	return b.String()
}

// ParseQASM parses the QASM subset emitted by ToQASM. Supported statements:
// OPENQASM version, include (ignored), qreg, barrier, and gate applications
// with optional parenthesized parameters. Parameters may use "pi" and simple
// fractions like pi/2 or -pi/4.
func ParseQASM(r io.Reader) (*Circuit, error) {
	scanner := bufio.NewScanner(r)
	var c *Circuit
	name := ""
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if strings.HasPrefix(line, "// name:") {
			name = strings.TrimSpace(strings.TrimPrefix(line, "// name:"))
			continue
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		// Statements may share a line; split on ';'.
		for _, stmt := range strings.Split(line, ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			if err := parseStatement(stmt, &c, name); err != nil {
				return nil, fmt.Errorf("circuit: qasm line %d: %w", lineNo, err)
			}
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("circuit: reading qasm: %w", err)
	}
	if c == nil {
		return nil, fmt.Errorf("circuit: qasm program has no qreg declaration")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

func parseStatement(stmt string, c **Circuit, name string) error {
	switch {
	case strings.HasPrefix(stmt, "OPENQASM"), strings.HasPrefix(stmt, "include"),
		strings.HasPrefix(stmt, "creg"), strings.HasPrefix(stmt, "measure"):
		return nil
	case strings.HasPrefix(stmt, "qreg"):
		var n int
		rest := strings.TrimSpace(strings.TrimPrefix(stmt, "qreg"))
		if _, err := fmt.Sscanf(rest, "q[%d]", &n); err != nil {
			return fmt.Errorf("bad qreg %q: %w", stmt, err)
		}
		if *c != nil {
			return fmt.Errorf("multiple qreg declarations")
		}
		*c = New(n, name)
		return nil
	}
	if *c == nil {
		return fmt.Errorf("gate before qreg declaration: %q", stmt)
	}
	// Gate application: name[(params)] qargs
	head := stmt
	var params []float64
	if i := strings.IndexByte(stmt, '('); i >= 0 {
		j := strings.IndexByte(stmt, ')')
		if j < i {
			return fmt.Errorf("unbalanced parentheses in %q", stmt)
		}
		head = stmt[:i]
		for _, p := range strings.Split(stmt[i+1:j], ",") {
			v, err := parseAngle(strings.TrimSpace(p))
			if err != nil {
				return err
			}
			params = append(params, v)
		}
		head = head + " " + stmt[j+1:]
	}
	fields := strings.Fields(head)
	if len(fields) < 1 {
		return fmt.Errorf("empty statement")
	}
	op := fields[0]
	if !KnownOp(op) {
		return fmt.Errorf("unknown gate %q", op)
	}
	var qubits []int
	if len(fields) > 1 {
		for _, qa := range strings.Split(strings.Join(fields[1:], ""), ",") {
			qa = strings.TrimSpace(qa)
			if qa == "" {
				continue
			}
			var q int
			if _, err := fmt.Sscanf(qa, "q[%d]", &q); err != nil {
				return fmt.Errorf("bad qubit argument %q: %w", qa, err)
			}
			qubits = append(qubits, q)
		}
	}
	return (*c).AddGate(Gate{Name: op, Qubits: qubits, Params: params})
}

// parseAngle evaluates a numeric literal or a simple pi expression:
// pi, -pi, pi/2, -pi/4, 2*pi, 3*pi/2.
func parseAngle(s string) (float64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty parameter")
	}
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v, nil
	}
	sign := 1.0
	if strings.HasPrefix(s, "-") {
		sign = -1
		s = s[1:]
	}
	mult := 1.0
	if i := strings.Index(s, "*pi"); i > 0 {
		m, err := strconv.ParseFloat(s[:i], 64)
		if err != nil {
			return 0, fmt.Errorf("bad pi multiplier in %q", s)
		}
		mult = m
		s = "pi" + s[i+3:]
	}
	if !strings.HasPrefix(s, "pi") {
		return 0, fmt.Errorf("cannot parse parameter %q", s)
	}
	rest := s[2:]
	div := 1.0
	if strings.HasPrefix(rest, "/") {
		d, err := strconv.ParseFloat(rest[1:], 64)
		if err != nil || d == 0 {
			return 0, fmt.Errorf("bad pi divisor in %q", s)
		}
		div = d
	} else if rest != "" {
		return 0, fmt.Errorf("cannot parse parameter %q", s)
	}
	return sign * mult * math.Pi / div, nil
}
