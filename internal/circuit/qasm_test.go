package circuit

import (
	"math"
	"strings"
	"testing"
)

func TestQASMRoundTrip(t *testing.T) {
	orig := New(4, "roundtrip")
	orig.H(0).CNOT(0, 1).RZ(2, math.Pi/4).PRX(3, 1.25, -0.5).CZ(1, 3).SWAP(0, 2).Barrier(0, 1)
	text := orig.ToQASM()
	parsed, err := ParseQASM(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse failed: %v\n%s", err, text)
	}
	if parsed.Name != "roundtrip" {
		t.Errorf("name = %q, want roundtrip", parsed.Name)
	}
	if parsed.NumQubits != 4 {
		t.Errorf("qubits = %d, want 4", parsed.NumQubits)
	}
	if len(parsed.Gates) != len(orig.Gates) {
		t.Fatalf("gate count %d, want %d", len(parsed.Gates), len(orig.Gates))
	}
	for i := range orig.Gates {
		a, b := orig.Gates[i], parsed.Gates[i]
		if a.Name != b.Name {
			t.Errorf("gate %d name %q vs %q", i, a.Name, b.Name)
		}
		for j := range a.Params {
			if math.Abs(a.Params[j]-b.Params[j]) > 1e-15 {
				t.Errorf("gate %d param %d: %g vs %g", i, j, a.Params[j], b.Params[j])
			}
		}
	}
}

func TestParseQASMHandWritten(t *testing.T) {
	src := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
rz(pi/2) q[2];
rx(-pi/4) q[0]; ry(2*pi) q[1];
measure q -> c;
`
	c, err := ParseQASM(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 3 {
		t.Errorf("qubits = %d", c.NumQubits)
	}
	if len(c.Gates) != 5 {
		t.Fatalf("gates = %d, want 5", len(c.Gates))
	}
	if got := c.Gates[2].Params[0]; math.Abs(got-math.Pi/2) > 1e-12 {
		t.Errorf("rz param = %g, want pi/2", got)
	}
	if got := c.Gates[3].Params[0]; math.Abs(got+math.Pi/4) > 1e-12 {
		t.Errorf("rx param = %g, want -pi/4", got)
	}
	if got := c.Gates[4].Params[0]; math.Abs(got-2*math.Pi) > 1e-12 {
		t.Errorf("ry param = %g, want 2*pi", got)
	}
}

func TestParseQASMErrors(t *testing.T) {
	cases := map[string]string{
		"no qreg":       "OPENQASM 2.0;\nh q[0];\n",
		"empty":         "",
		"unknown gate":  "qreg q[2];\nfoo q[0];\n",
		"double qreg":   "qreg q[2];\nqreg q[3];\n",
		"bad qubit":     "qreg q[2];\nh q[9];\n",
		"bad param":     "qreg q[2];\nrz(banana) q[0];\n",
		"bad qubit arg": "qreg q[2];\nh qubit0;\n",
	}
	for desc, src := range cases {
		if _, err := ParseQASM(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected parse error", desc)
		}
	}
}

func TestParseQASMSemanticEquivalence(t *testing.T) {
	orig := GHZ(5)
	parsed, err := ParseQASM(strings.NewReader(orig.ToQASM()))
	if err != nil {
		t.Fatal(err)
	}
	eq, err := orig.EquivalentTo(parsed, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("parsed circuit not equivalent to original")
	}
}

func TestParseAngleForms(t *testing.T) {
	cases := map[string]float64{
		"1.5":     1.5,
		"pi":      math.Pi,
		"-pi":     -math.Pi,
		"pi/2":    math.Pi / 2,
		"-pi/4":   -math.Pi / 4,
		"2*pi":    2 * math.Pi,
		"3*pi/2":  3 * math.Pi / 2,
		"-2*pi/3": -2 * math.Pi / 3,
		"0":       0,
	}
	for in, want := range cases {
		got, err := parseAngle(in)
		if err != nil {
			t.Errorf("parseAngle(%q) error: %v", in, err)
			continue
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("parseAngle(%q) = %g, want %g", in, got, want)
		}
	}
	for _, bad := range []string{"", "pie", "pi/0", "x*pi", "pi2"} {
		if _, err := parseAngle(bad); err == nil {
			t.Errorf("parseAngle(%q) should fail", bad)
		}
	}
}
