package circuit

import (
	"fmt"

	"repro/internal/quantum"
)

// Unitary1 returns the 2x2 matrix of a single-qubit gate.
func Unitary1(g Gate) (quantum.Matrix2, error) {
	switch g.Name {
	case OpH:
		return quantum.H, nil
	case OpX:
		return quantum.X, nil
	case OpY:
		return quantum.Y, nil
	case OpZ:
		return quantum.Z, nil
	case OpS:
		return quantum.S, nil
	case OpSdag:
		return quantum.Sdag, nil
	case OpT:
		return quantum.T, nil
	case OpTdag:
		return quantum.Tdag, nil
	case OpRX:
		return quantum.RX(g.Params[0]), nil
	case OpRY:
		return quantum.RY(g.Params[0]), nil
	case OpRZ:
		return quantum.RZ(g.Params[0]), nil
	case OpPRX:
		return quantum.PRX(g.Params[0], g.Params[1]), nil
	case OpU3:
		// U3(θ, φ, λ) = RZ(φ)·RY(θ)·RZ(λ), applied right to left.
		return quantum.Mul2(quantum.RZ(g.Params[1]),
			quantum.Mul2(quantum.RY(g.Params[0]), quantum.RZ(g.Params[2]))), nil
	}
	return quantum.Matrix2{}, fmt.Errorf("circuit: %q is not a single-qubit gate", g.Name)
}

// Unitary2 returns the 4x4 matrix of a two-qubit gate, over basis order with
// the gate's first qubit as the low bit.
func Unitary2(g Gate) (quantum.Matrix4, error) {
	switch g.Name {
	case OpCZ:
		return quantum.CZ, nil
	case OpCNOT:
		// Control is the first listed qubit = low bit -> CNOT01.
		return quantum.CNOT01, nil
	case OpSWAP:
		return quantum.SWAP, nil
	case OpCRZ:
		// Control is the first listed qubit = low bit: RZ(θ) on the target
		// when the control is 1.
		theta := g.Params[0]
		return quantum.Matrix4{
			{1, 0, 0, 0},
			{0, quantum.Phase(-theta / 2), 0, 0},
			{0, 0, 1, 0},
			{0, 0, 0, quantum.Phase(theta / 2)},
		}, nil
	}
	return quantum.Matrix4{}, fmt.Errorf("circuit: %q is not a two-qubit gate", g.Name)
}

// ApplyTo applies the circuit's gates, in order, to an existing state. The
// state must have at least NumQubits qubits.
func (c *Circuit) ApplyTo(s *quantum.State) error {
	if s.NumQubits() < c.NumQubits {
		return fmt.Errorf("circuit: state has %d qubits, circuit needs %d", s.NumQubits(), c.NumQubits)
	}
	for i, g := range c.Gates {
		if g.Name == OpBarrier {
			continue
		}
		switch len(g.Qubits) {
		case 1:
			m, err := Unitary1(g)
			if err != nil {
				return fmt.Errorf("gate %d: %w", i, err)
			}
			if err := s.Apply1Q(g.Qubits[0], m); err != nil {
				return fmt.Errorf("gate %d: %w", i, err)
			}
		case 2:
			m, err := Unitary2(g)
			if err != nil {
				return fmt.Errorf("gate %d: %w", i, err)
			}
			if err := s.Apply2Q(g.Qubits[0], g.Qubits[1], m); err != nil {
				return fmt.Errorf("gate %d: %w", i, err)
			}
		case 3:
			if g.Name != OpCCX {
				return fmt.Errorf("gate %d: unsupported three-qubit gate %q", i, g.Name)
			}
			if err := s.ApplyToffoli(g.Qubits[0], g.Qubits[1], g.Qubits[2]); err != nil {
				return fmt.Errorf("gate %d: %w", i, err)
			}
		default:
			return fmt.Errorf("gate %d: unsupported arity %d", i, len(g.Qubits))
		}
	}
	return nil
}

// Simulate runs the circuit on |0...0> and returns the final state — the
// ideal, noiseless "digital twin" execution path (§4).
func (c *Circuit) Simulate() (*quantum.State, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	s, err := quantum.NewState(c.NumQubits)
	if err != nil {
		return nil, err
	}
	if err := c.ApplyTo(s); err != nil {
		return nil, err
	}
	return s, nil
}

// EquivalentTo reports whether two circuits implement the same state map on
// |0..0> within tolerance, up to global phase — the transpiler's correctness
// criterion. (State fidelity on the all-zeros input is not a full unitary
// equivalence check, but combined with randomized input tests it is the
// standard practical criterion.)
func (c *Circuit) EquivalentTo(other *Circuit, tol float64) (bool, error) {
	if c.NumQubits != other.NumQubits {
		return false, fmt.Errorf("circuit: register sizes differ (%d vs %d)", c.NumQubits, other.NumQubits)
	}
	a, err := c.Simulate()
	if err != nil {
		return false, err
	}
	b, err := other.Simulate()
	if err != nil {
		return false, err
	}
	f, err := a.Fidelity(b)
	if err != nil {
		return false, err
	}
	return f > 1-tol, nil
}
