// Package core wires every subsystem into the paper's contribution: a
// co-located, loosely-integrated HPC+QC center. A Center owns the facility
// (power, cooling water), the cryogenic plant, the 20-qubit QPU with its
// calibration lifecycle, the DCDB-style telemetry store, the QDMI device
// handle, the batch scheduler with the QPU as a resource, the QRM, and the
// MQSS client/REST layer. Commissioning follows the paper's sequence: site
// survey (§2.1) → installation and cooldown (§2.5) → calibration and
// benchmark verification (§3.2) → user operations (§4).
package core

import (
	"fmt"

	"repro/internal/calib"
	"repro/internal/cryo"
	"repro/internal/device"
	"repro/internal/facility"
	"repro/internal/hpc"
	"repro/internal/mqss"
	"repro/internal/qdmi"
	"repro/internal/qrm"
	"repro/internal/telemetry"
)

// Phase tracks the center's lifecycle.
type Phase int

const (
	PhaseSiteSelection Phase = iota
	PhaseInstallation
	PhaseCommissioning
	PhaseOperational
	PhaseOutage
)

func (p Phase) String() string {
	switch p {
	case PhaseSiteSelection:
		return "site-selection"
	case PhaseInstallation:
		return "installation"
	case PhaseCommissioning:
		return "commissioning"
	case PhaseOperational:
		return "operational"
	case PhaseOutage:
		return "outage"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// Config parameterizes a center.
type Config struct {
	Seed int64
	// Nodes is the classical cluster size.
	Nodes int
	// Redundant enables redundant power and cooling (lesson 3).
	Redundant bool
	// DigitalTwin builds the center around the noiseless emulator.
	DigitalTwin bool
}

// Center is the integrated HPC+QC installation.
type Center struct {
	cfg   Config
	phase Phase
	site  *facility.Report

	Power  *facility.PowerSystem
	Water  *facility.CoolingWater
	Cryo   *cryo.Cryostat
	QPU    *device.QPU
	QDMI   *qdmi.Device
	Store  *telemetry.Store
	Poll   *telemetry.Poller
	HPC    *hpc.Scheduler
	QRM    *qrm.Manager
	Policy *calib.Policy

	simTime float64 // seconds
}

// New builds a center in the site-selection phase.
func New(cfg Config) (*Center, error) {
	if cfg.Nodes == 0 {
		cfg.Nodes = 64
	}
	sched, err := hpc.NewScheduler(cfg.Nodes)
	if err != nil {
		return nil, err
	}
	var popts []facility.PowerOption
	if cfg.Redundant {
		popts = append(popts, facility.WithRedundantFeed(), facility.WithUPS(4*3600))
	}
	var qpu *device.QPU
	if cfg.DigitalTwin {
		qpu = device.NewTwin20Q(cfg.Seed)
	} else {
		qpu = device.New20Q(cfg.Seed)
	}
	store := telemetry.NewStore(0)
	dev := qdmi.NewDevice(qpu, store)
	poller := telemetry.NewPoller(store)
	poller.Register(dev)

	c := &Center{
		cfg:    cfg,
		phase:  PhaseSiteSelection,
		Power:  facility.NewPowerSystem(popts...),
		Water:  facility.NewCoolingWater(18, cfg.Redundant),
		Cryo:   cryo.NewWarm(), // delivered warm, in crates (§2.5)
		QPU:    qpu,
		QDMI:   dev,
		Store:  store,
		Poll:   poller,
		HPC:    sched,
		QRM:    qrm.NewManager(dev),
		Policy: calib.DefaultPolicy(),
	}
	// The QPU is not a schedulable resource until commissioned.
	c.HPC.SetQPUOnline(false)
	c.QRM.SetOnline(false)

	// Register facility collectors so DCDB sees cryo and power data (Fig 3).
	poller.Register(telemetry.FuncCollector{
		Name: "cryo-plant",
		Fn: func() map[string]float64 {
			return map[string]float64{
				"mxc_temp_k":   c.Cryo.QPUTemperature(),
				"stage4k_k":    c.Cryo.Temperature(cryo.Stage4K),
				"ln2_liters":   c.Cryo.LN2Level(),
				"power_kw":     c.Cryo.PowerDrawKW(),
				"water_temp_c": c.Water.Temperature(),
			}
		},
	})
	// Dispatch-pipeline health: queue depth, in-flight jobs, cache
	// effectiveness, tail latency — the §3.1 "without altering workflows"
	// dissemination extended to the QRM.
	poller.Register(telemetry.FuncCollector{
		Name: "qrm-pipeline",
		Fn:   func() map[string]float64 { return c.QRM.Metrics().Gauges() },
	})
	return c, nil
}

// Phase returns the current lifecycle phase.
func (c *Center) Phase() Phase { return c.phase }

// SiteReport returns the accepted survey (nil before SelectSite).
func (c *Center) SiteReport() *facility.Report { return c.site }

// SelectSite surveys the candidates and commits to the best one. It fails
// if no candidate passes — the paper's process requires an accepted site
// before installation.
func (c *Center) SelectSite(candidates []facility.Site, cfg facility.SurveyConfig) (*facility.Report, error) {
	if c.phase != PhaseSiteSelection {
		return nil, fmt.Errorf("core: site selection already done (phase %s)", c.phase)
	}
	reports, err := facility.RankSites(candidates, cfg)
	if err != nil {
		return nil, err
	}
	if len(reports) == 0 {
		return nil, fmt.Errorf("core: no candidate sites")
	}
	best := reports[0]
	if !best.Accepted {
		return best, fmt.Errorf("core: no candidate site passes the Table 1 criteria (best: %s with %d failures)",
			best.Site, best.FailureCount())
	}
	c.site = best
	c.phase = PhaseInstallation
	return best, nil
}

// Install starts the cooldown: the multi-day physical installation has
// finished and active cooling begins. Returns an error if the facility
// cannot support cooling.
func (c *Center) Install() error {
	if c.phase != PhaseInstallation {
		return fmt.Errorf("core: cannot install in phase %s", c.phase)
	}
	if !c.Power.Powered() {
		return fmt.Errorf("core: no electrical power")
	}
	if !c.Water.Healthy() || !c.Water.InWindow() {
		return fmt.Errorf("core: cooling water unavailable or out of the 15-25 °C window")
	}
	c.Cryo.SetCooling(cryo.CoolingOn)
	c.phase = PhaseCommissioning
	return nil
}

// Advance moves the whole center forward by dt seconds: facility dynamics,
// cryogenics, drift, scheduler, telemetry. It also executes the
// commissioning transition (base temperature reached → calibrate → online)
// and outage handling (§3.5).
func (c *Center) Advance(dt float64) {
	if dt <= 0 {
		return
	}
	c.simTime += dt
	c.Power.Advance(dt)
	c.Water.Advance(dt)

	coolingOK := c.Power.Powered() && c.Water.Healthy() && c.Water.InWindow()
	if coolingOK && c.phase != PhaseSiteSelection && c.phase != PhaseInstallation {
		c.Cryo.SetCooling(cryo.CoolingOn)
	} else if !coolingOK {
		c.Cryo.SetCooling(cryo.CoolingOff)
	}
	wasSafe := c.Cryo.CalibrationSafe()
	c.Cryo.Advance(dt)
	c.QPU.AdvanceDrift(dt / 3600)
	c.Policy.Advance(dt / 3600)
	c.HPC.Advance(dt)
	c.QRM.SetTime(c.simTime)
	c.Poll.Poll(c.simTime)

	switch c.phase {
	case PhaseCommissioning:
		if c.Cryo.AtBase() {
			// §3.2: full calibration + benchmark verification, then online.
			c.QPU.Recalibrate(true)
			c.Policy.Ran(calib.ProcedureFull)
			c.phase = PhaseOperational
			c.HPC.SetQPUOnline(true)
			c.QRM.SetOnline(true)
		}
	case PhaseOperational:
		if !coolingOK || !c.Cryo.AtBase() {
			c.phase = PhaseOutage
			c.HPC.SetQPUOnline(false)
			c.QRM.SetOnline(false)
		} else {
			proc := c.Policy.Decide(c.QPU.Calibration().AgeHours, nil)
			if proc != calib.ProcedureNone {
				c.QPU.Recalibrate(proc == calib.ProcedureFull)
				c.Policy.Ran(proc)
			}
		}
	case PhaseOutage:
		if coolingOK && c.Cryo.AtBase() {
			// §3.5 recovery: below 1 K the calibration state survives and
			// the automated system restores it; above 1 K a full
			// recalibration is required.
			full := !wasSafe || !c.Cryo.CalibrationSafe()
			c.QPU.Recalibrate(full)
			if full {
				c.Policy.Ran(calib.ProcedureFull)
			}
			c.phase = PhaseOperational
			c.HPC.SetQPUOnline(true)
			c.QRM.SetOnline(true)
		}
	}
}

// Operational reports whether the QPU is serving jobs.
func (c *Center) Operational() bool { return c.phase == PhaseOperational }

// LocalClient returns the in-HPC accelerator client.
func (c *Center) LocalClient() *mqss.Client { return mqss.NewLocalClient(c.QRM) }

// StartPipeline launches the QRM's concurrent dispatch pipeline with
// nWorkers workers, admission-gated on the HPC scheduler's QPU slot so
// concurrent dispatch workers serialize their device round-trips through
// the cluster's single quantum resource.
func (c *Center) StartPipeline(nWorkers int) error {
	c.QRM.SetGate(c.HPC.QPUGate())
	return c.QRM.Start(nWorkers)
}

// StopPipeline shuts the dispatch pipeline down, letting in-flight jobs
// finish. Queued jobs remain queued.
func (c *Center) StopPipeline() { c.QRM.Stop() }

// RESTHandler returns the MQSS REST server exposing this center's stack
// (an http.Handler; keep the concrete type for graceful-shutdown Close).
func (c *Center) RESTHandler() *mqss.Server { return mqss.NewServer(c.QRM, c.QDMI) }

// RunHealthCheck executes the §3.2 GHZ ladder.
func (c *Center) RunHealthCheck(sizes []int, shots int) (*calib.HealthCheck, error) {
	if !c.Operational() {
		return nil, fmt.Errorf("core: center not operational (phase %s)", c.phase)
	}
	return calib.RunHealthCheck(c.QDMI, sizes, shots)
}

// CommissionFast runs the full commissioning sequence with an accelerated
// clock (hourly steps) and returns the days the cooldown took. Intended for
// examples and tests; production advancing happens via Advance.
func (c *Center) CommissionFast(candidates []facility.Site, scfg facility.SurveyConfig) (float64, error) {
	if _, err := c.SelectSite(candidates, scfg); err != nil {
		return 0, err
	}
	if err := c.Install(); err != nil {
		return 0, err
	}
	hours := 0.0
	for !c.Operational() {
		c.Advance(3600)
		hours++
		if hours > 24*14 {
			return hours / 24, fmt.Errorf("core: commissioning did not converge in 14 days")
		}
	}
	return hours / 24, nil
}
