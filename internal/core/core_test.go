package core

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"repro/internal/circuit"
	"repro/internal/facility"
	"repro/internal/qrm"
)

func candidates() []facility.Site {
	return []facility.Site{
		{Name: "street-side", Env: facility.NoisyUrban(), DeliveryWidthCM: 100, FloorLoadKgM2: 1200, CellTowerDistM: 500, FluorescentM: 5},
		{Name: "basement", Env: facility.Quiet(), DeliveryWidthCM: 120, FloorLoadKgM2: 1500, CellTowerDistM: 800, FluorescentM: 6},
	}
}

func commissioned(t *testing.T, cfg Config) *Center {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	days, err := c.CommissionFast(candidates(), facility.SurveyConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if days < 2 || days > 5 {
		t.Errorf("commissioning cooldown took %.1f days, want 2-5 (§3.5)", days)
	}
	return c
}

func TestLifecyclePhases(t *testing.T) {
	c, err := New(Config{Seed: 1, DigitalTwin: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.Phase() != PhaseSiteSelection {
		t.Fatalf("initial phase = %s", c.Phase())
	}
	if err := c.Install(); err == nil {
		t.Error("install before site selection should fail")
	}
	rep, err := c.SelectSite(candidates(), facility.SurveyConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Site != "basement" {
		t.Errorf("selected %s, want basement", rep.Site)
	}
	if c.Phase() != PhaseInstallation {
		t.Errorf("phase after selection = %s", c.Phase())
	}
	if _, err := c.SelectSite(candidates(), facility.SurveyConfig{Seed: 1}); err == nil {
		t.Error("double site selection should fail")
	}
	if err := c.Install(); err != nil {
		t.Fatal(err)
	}
	if c.Phase() != PhaseCommissioning {
		t.Errorf("phase after install = %s", c.Phase())
	}
	// QPU must be offline during commissioning.
	if c.HPC.QPUOnline() || c.QRM.Online() {
		t.Error("QPU online before commissioning finished")
	}
}

func TestSelectSiteFailsWhenNothingPasses(t *testing.T) {
	c, _ := New(Config{Seed: 2})
	bad := []facility.Site{
		{Name: "noisy", Env: facility.NoisyUrban(), DeliveryWidthCM: 100, FloorLoadKgM2: 1200, CellTowerDistM: 500, FluorescentM: 5},
	}
	if _, err := c.SelectSite(bad, facility.SurveyConfig{Seed: 2}); err == nil {
		t.Error("expected failure when no site passes Table 1")
	}
}

func TestCommissionAndRunJobs(t *testing.T) {
	c := commissioned(t, Config{Seed: 3, DigitalTwin: true})
	if !c.Operational() {
		t.Fatal("center not operational")
	}
	client := c.LocalClient()
	job, err := client.Run(context.Background(), qrm.Request{Circuit: circuit.GHZ(5), Shots: 500, User: "early-user"})
	if err != nil {
		t.Fatal(err)
	}
	if job.Status != qrm.StatusDone {
		t.Fatalf("job = %s (%s)", job.Status, job.Error)
	}
	if len(job.Counts) != 2 {
		t.Errorf("twin GHZ outcomes = %d", len(job.Counts))
	}
}

func TestRESTPathThroughCenter(t *testing.T) {
	c := commissioned(t, Config{Seed: 4, DigitalTwin: true})
	srv := httptest.NewServer(c.RESTHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/api/v1/device")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info struct {
		Fidelity1Q float64 `json:"fidelity_1q"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Fidelity1Q < 0.99 {
		t.Errorf("fidelity over REST = %g", info.Fidelity1Q)
	}
}

func TestHealthCheckThroughCenter(t *testing.T) {
	c := commissioned(t, Config{Seed: 5})
	hc, err := c.RunHealthCheck([]int{2, 4}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !hc.Pass {
		t.Errorf("freshly commissioned center failed health check: %+v", hc.Fidelities)
	}
}

func TestOutageTakesQPUOfflineAndRecovers(t *testing.T) {
	c := commissioned(t, Config{Seed: 6, DigitalTwin: true})
	// Kill the only water feed: cooling stops, QPU warms, center -> outage.
	c.Water.Feeds()[0].Fail()
	for i := 0; i < 4; i++ {
		c.Advance(3600)
	}
	if c.Phase() != PhaseOutage {
		t.Fatalf("phase = %s, want outage", c.Phase())
	}
	if c.HPC.QPUOnline() || c.QRM.Online() {
		t.Error("QPU should be offline during outage")
	}
	// Repair; recovery takes hours-days of re-cooling.
	c.Water.Feeds()[0].Restore()
	hours := 0
	for !c.Operational() && hours < 24*7 {
		c.Advance(3600)
		hours++
	}
	if !c.Operational() {
		t.Fatal("center did not recover within a week")
	}
	if !c.HPC.QPUOnline() || !c.QRM.Online() {
		t.Error("QPU should be back online after recovery")
	}
}

func TestRedundantCenterSurvivesSingleFeedFault(t *testing.T) {
	c := commissioned(t, Config{Seed: 7, Redundant: true, DigitalTwin: true})
	c.Water.Feeds()[0].Fail()
	for i := 0; i < 12; i++ {
		c.Advance(3600)
	}
	if c.Phase() != PhaseOperational {
		t.Errorf("redundant center phase = %s, want operational", c.Phase())
	}
}

func TestTelemetryFlowsThroughCenter(t *testing.T) {
	c := commissioned(t, Config{Seed: 8, DigitalTwin: true})
	for i := 0; i < 5; i++ {
		c.Advance(600)
	}
	for _, sensor := range []string{"mxc_temp_k", "power_kw", "fidelity_1q", "ln2_liters"} {
		if c.Store.Count(sensor) == 0 {
			t.Errorf("sensor %s has no samples", sensor)
		}
	}
}

func TestHealthCheckRequiresOperational(t *testing.T) {
	c, _ := New(Config{Seed: 9})
	if _, err := c.RunHealthCheck([]int{2}, 100); err == nil {
		t.Error("health check before commissioning should fail")
	}
}

func TestPhaseStrings(t *testing.T) {
	want := map[Phase]string{
		PhaseSiteSelection: "site-selection",
		PhaseInstallation:  "installation",
		PhaseCommissioning: "commissioning",
		PhaseOperational:   "operational",
		PhaseOutage:        "outage",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("phase %d = %q, want %q", p, p.String(), s)
		}
	}
}
