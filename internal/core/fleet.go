package core

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/mqss"
	"repro/internal/ops"
	"repro/internal/qdmi"
)

// Multi-QPU integration: the paper's MQSS/QDMI split (§2.6) exists so one
// HPC-side scheduler can serve many heterogeneous backends. BuildFleet grows
// the commissioned center into that shape: the center's primary QPU becomes
// fleet device 0 and N-1 simulated siblings with different grid shapes,
// seeds (hence calibration quality), and drift histories join it. The fleet
// registers as a DCDB collector on the center's poller, so per-device
// routing telemetry lands in the same store as cryo and power data.

// FleetConfig parameterizes BuildFleet.
type FleetConfig struct {
	// Devices is the total backend count including the center's primary QPU
	// (minimum 1).
	Devices int
	// WorkersPerDevice sizes each backend's private dispatch pool
	// (default 4).
	WorkersPerDevice int
	// Policy is the routing policy (default best-fidelity).
	Policy fleet.Policy
	// MaintenanceEvery attaches a §3.4 maintenance plan to every device,
	// with windows every N days staggered across the fleet so siblings never
	// drain simultaneously. Zero disables plan attachment.
	MaintenanceEveryDays float64
	// CampaignDays bounds the maintenance plan horizon (default 365).
	CampaignDays int
}

// siblingShapes are the grid geometries the simulated fleet cycles through
// after the primary 4x5 device; heterogeneous widths exercise the router's
// width-fit term.
var siblingShapes = []struct{ rows, cols int }{
	{4, 4}, {3, 4}, {5, 5}, {3, 3}, {4, 5},
}

// BuildFleet assembles a fleet scheduler over the center's QPU plus
// simulated siblings. The center must be commissioned first (the primary
// device joins the fleet online). The returned scheduler owns its device
// pools; call Stop on shutdown.
func (c *Center) BuildFleet(cfg FleetConfig) (*fleet.Scheduler, error) {
	if cfg.Devices < 1 {
		return nil, fmt.Errorf("core: fleet needs >= 1 devices, got %d", cfg.Devices)
	}
	if cfg.WorkersPerDevice == 0 {
		cfg.WorkersPerDevice = 4
	}
	if cfg.Policy == "" {
		cfg.Policy = fleet.PolicyBestFidelity
	}
	if err := cfg.Policy.Validate(); err != nil {
		return nil, err
	}
	if cfg.CampaignDays == 0 {
		cfg.CampaignDays = 365
	}
	f := fleet.New(cfg.Policy, c.Store)
	if err := f.AddDevice(c.QPU.Name(), c.QDMI, cfg.WorkersPerDevice); err != nil {
		return nil, err
	}
	for i := 1; i < cfg.Devices; i++ {
		shape := siblingShapes[(i-1)%len(siblingShapes)]
		name := fmt.Sprintf("sibling-%02d-%dx%d", i, shape.rows, shape.cols)
		qpu, err := device.New(device.Config{
			Name: name, Rows: shape.rows, Cols: shape.cols,
			Seed:        c.cfg.Seed + int64(100*i),
			DigitalTwin: c.cfg.DigitalTwin,
		})
		if err != nil {
			f.Stop()
			return nil, fmt.Errorf("core: building fleet sibling %d: %w", i, err)
		}
		// Distinct drift histories: each sibling has aged a different number
		// of hours since its last full calibration, so the router sees a
		// genuinely heterogeneous calibration landscape.
		qpu.AdvanceDrift(float64(6 * i))
		if err := f.AddDevice(name, qdmi.NewDevice(qpu, c.Store), cfg.WorkersPerDevice); err != nil {
			f.Stop()
			return nil, err
		}
	}
	if cfg.MaintenanceEveryDays > 0 {
		names := f.Devices()
		for i, name := range names {
			plan := ops.MaintenancePlan(cfg.CampaignDays, cfg.MaintenanceEveryDays)
			// Stagger windows so the fleet never fully drains: shift each
			// device's plan by a fraction of the interval.
			shift := cfg.MaintenanceEveryDays * float64(i) / float64(len(names)+1)
			for w := range plan {
				plan[w].StartDay += shift
			}
			// The stagger can push the final window past the nominal horizon
			// by at most one interval; widen the validation bound to match.
			if err := ops.ValidatePlan(plan, cfg.CampaignDays+int(cfg.MaintenanceEveryDays)+2); err != nil {
				f.Stop()
				return nil, fmt.Errorf("core: staggered maintenance plan for %s: %w", name, err)
			}
			if err := f.SetMaintenancePlan(name, plan); err != nil {
				f.Stop()
				return nil, err
			}
		}
	}
	// DCDB integration (Fig. 3): the fleet's gauges ride the center poller.
	c.Poll.Register(f)
	return f, nil
}

// FleetRESTHandler returns an HTTP handler serving the fleet REST API.
func (c *Center) FleetRESTHandler(f *fleet.Scheduler) *mqss.Server {
	return mqss.NewFleetServer(f)
}

// LocalFleetClient returns the in-HPC accelerator client over a fleet.
func (c *Center) LocalFleetClient(f *fleet.Scheduler) *mqss.Client {
	return mqss.NewLocalFleetClient(f)
}
