package core

import (
	"context"
	"testing"

	"repro/internal/circuit"
	"repro/internal/facility"
	"repro/internal/fleet"
	"repro/internal/mqss"
	"repro/internal/qrm"
)

func commissionedCenter(t *testing.T) *Center {
	t.Helper()
	c, err := New(Config{Seed: 5, DigitalTwin: true})
	if err != nil {
		t.Fatal(err)
	}
	sites := []facility.Site{{
		Name: "basement", Env: facility.Quiet(),
		DeliveryWidthCM: 120, FloorLoadKgM2: 1500, CellTowerDistM: 800, FluorescentM: 6,
	}}
	if _, err := c.CommissionFast(sites, facility.SurveyConfig{Seed: 5}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCenterBuildFleet(t *testing.T) {
	c := commissionedCenter(t)
	f, err := c.BuildFleet(FleetConfig{
		Devices: 4, WorkersPerDevice: 2,
		Policy:               fleet.PolicyBestFidelity,
		MaintenanceEveryDays: 90,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()

	names := f.Devices()
	if len(names) != 4 {
		t.Fatalf("fleet has %d devices, want 4", len(names))
	}
	if names[0] != c.QPU.Name() {
		t.Fatalf("primary device %q is not the center QPU %q", names[0], c.QPU.Name())
	}
	// Every device carries a staggered maintenance plan.
	starts := map[float64]bool{}
	for _, name := range names {
		plan, err := f.MaintenancePlan(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan) == 0 {
			t.Fatalf("device %s has no maintenance plan", name)
		}
		starts[plan[0].StartDay] = true
	}
	if len(starts) != len(names) {
		t.Fatalf("maintenance windows not staggered: %v", starts)
	}

	// Work flows end to end through the fleet client.
	client := c.LocalFleetClient(f)
	j, err := client.RunRouted(context.Background(), qrm.Request{Circuit: circuit.GHZ(4), Shots: 20, User: "core"}, mqss.RouteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if j.Status != fleet.JobDone || len(j.Result.Counts) == 0 {
		t.Fatalf("fleet job through center: %+v", j)
	}

	// The fleet collector is registered: polling publishes fleet sensors
	// into the center store.
	c.Poll.Poll(1000)
	if _, ok := c.Store.Latest("fleet_devices"); !ok {
		t.Fatalf("fleet gauges not polled into the center store (have %d sensors)", len(c.Store.Sensors()))
	}
}

func TestCenterBuildFleetValidation(t *testing.T) {
	c := commissionedCenter(t)
	if _, err := c.BuildFleet(FleetConfig{Devices: 0}); err == nil {
		t.Fatal("zero devices should fail")
	}
	if _, err := c.BuildFleet(FleetConfig{Devices: 2, Policy: fleet.Policy("warp")}); err == nil {
		t.Fatal("bad policy should fail")
	}
}
