package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/hybrid"
	"repro/internal/qrm"
)

// End-to-end integration: a VQE loop through the full center stack — the
// tightly-coupled accelerator mode that §2.6 motivates. Every energy
// evaluation is a quantum job that flows client → QRM → JIT transpile →
// device, exactly as a production hybrid workflow would.
func TestVQEThroughCenterStack(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	c := commissioned(t, Config{Seed: 20, DigitalTwin: true})
	runner := hybrid.RunnerFunc(func(cc *circuit.Circuit, shots int) (map[int]int, error) {
		job, err := c.LocalClient().Run(context.Background(), qrm.Request{Circuit: cc, Shots: shots, User: "vqe"})
		if err != nil {
			return nil, err
		}
		// Map physical outcomes back to logical qubits.
		logical := make(map[int]int, len(job.Counts))
		for outcome, count := range job.Counts {
			l := 0
			for i, p := range job.Layout {
				if outcome&(1<<uint(p)) != 0 {
					l |= 1 << uint(i)
				}
			}
			logical[l] += count
		}
		return logical, nil
	})
	ansatz, np := hybrid.HardwareEfficientAnsatz(2, 1)
	v := &hybrid.VQE{
		Hamiltonian: hybrid.H2Molecule(),
		Ansatz:      ansatz,
		Runner:      runner,
		Shots:       2000,
		Optimizer:   hybrid.DefaultSPSA(150, 5),
	}
	initial := make([]float64, np)
	for i := range initial {
		initial[i] = 0.1 * float64(i+1)
	}
	res, err := v.Run(initial)
	if err != nil {
		t.Fatal(err)
	}
	exact := hybrid.H2GroundStateEnergy()
	if math.Abs(res.Value-exact) > 0.15 {
		t.Errorf("stack VQE energy %.4f, want within 0.15 of %.4f", res.Value, exact)
	}
	// The QRM saw every energy evaluation as jobs.
	page, err := c.QRM.History("vqe", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total < res.Evaluations {
		t.Errorf("QRM recorded %d jobs for %d evaluations", page.Total, res.Evaluations)
	}
}

// Hybrid co-scheduling: the batch scheduler runs a classical job and a
// QPU-needing job concurrently, and calibration reservations block the QPU
// resource while classical work continues (§3.2 scheduling control).
func TestHybridCoSchedulingWithCalibrationSlot(t *testing.T) {
	c := commissioned(t, Config{Seed: 21, DigitalTwin: true, Nodes: 8})
	now := c.HPC.Now()
	// Book the 100-minute full-calibration slot an hour from now.
	if _, err := c.HPC.Reserve("weekly-full-calibration", now+3600, 100*60, true, 0); err != nil {
		t.Fatal(err)
	}
	idClassical, err := c.HPC.Submit("cfd-run", 4, false, 4*3600, 0)
	if err != nil {
		t.Fatal(err)
	}
	idHybrid, err := c.HPC.Submit("vqe-sweep", 2, true, 30*60, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.HPC.Advance(60)
	jc, _ := c.HPC.Job(idClassical)
	jh, _ := c.HPC.Job(idHybrid)
	if jc.State != 1 || jh.State != 1 { // JobRunning
		t.Fatalf("both jobs should start immediately: classical=%v hybrid=%v", jc.State, jh.State)
	}
	// A second hybrid job submitted during the calibration window waits.
	c.HPC.Advance(3600) // into the calibration slot; first hybrid done
	idLate, err := c.HPC.Submit("late-hybrid", 1, true, 600, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.HPC.Advance(600)
	late, _ := c.HPC.Job(idLate)
	if late.State != 0 { // JobQueued
		t.Errorf("hybrid job during calibration slot = %v, want queued", late.State)
	}
	c.HPC.Advance(100 * 60)
	late, _ = c.HPC.Job(idLate)
	if late.State == 0 {
		t.Error("hybrid job should start after the calibration slot")
	}
}

// The §4 batch + pagination workflow through the REST layer is covered in
// internal/mqss; here we confirm the center's QRM enforces the offline gate
// during an outage end to end.
func TestJobsRejectedDuringOutage(t *testing.T) {
	c := commissioned(t, Config{Seed: 22, DigitalTwin: true})
	c.Power.Feeds()[0].Fail()
	for i := 0; i < 4; i++ {
		c.Advance(3600)
	}
	if c.Phase() != PhaseOutage {
		t.Fatalf("phase = %s", c.Phase())
	}
	_, err := c.LocalClient().Run(context.Background(), qrm.Request{Circuit: circuit.GHZ(3), Shots: 10, User: "x"})
	if err == nil {
		t.Error("job submission during outage should fail")
	}
}
