// Package cryo models the cryogenic plant of the superconducting quantum
// computer: the dilution-refrigerator cryostat with its tiered temperature
// stages (the "chandelier", Fig. 1), the gas handling system with its turbo
// pumps, the helium compressor, vacuum integrity, liquid-nitrogen
// consumption (§3.3), and the electrical power profile (§2.2).
//
// The model is a lumped-parameter thermal simulation tuned to reproduce the
// operational facts the paper reports: ~10 mK base temperature, roughly two
// minutes from a cooling fault to the QPU exceeding 1 K, cooldowns from warm
// taking two to five days depending on the starting temperature (§3.5), and
// a 30 kW peak electrical draw during cooldown (§2.2).
package cryo

import (
	"fmt"
	"math"
	"sync"
)

// Stage identifies one temperature stage of the chandelier.
type Stage int

const (
	Stage50K   Stage = iota // first pulse-tube stage
	Stage4K                 // second pulse-tube stage
	StageStill              // still, ~800 mK
	StageMXC                // mixing chamber, holds the QPU at ~10 mK
	numStages
)

func (s Stage) String() string {
	switch s {
	case Stage50K:
		return "50K"
	case Stage4K:
		return "4K"
	case StageStill:
		return "still"
	case StageMXC:
		return "MXC"
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// Nominal operating temperatures per stage, kelvin.
var nominalK = [numStages]float64{50, 4, 0.8, 0.010}

// Temperature landmarks from the paper (§3.5).
const (
	BaseTempK          = 0.010 // 10 mK operating point
	CalibSafeTempK     = 1.0   // below this, calibration state survives
	RecalReadyTempK    = 0.100 // below 100 mK recalibration can begin
	AmbientTempK       = 295.0 // warm cryostat
	TimeToExceed1KSecs = 120.0 // ~2 minutes after a cooling fault
)

// CoolingState describes whether active cooling is available to the cryostat.
type CoolingState int

const (
	CoolingOn CoolingState = iota
	CoolingOff
)

// Cryostat is the lumped thermal model. All temperatures in kelvin, time in
// seconds. Methods are safe for concurrent use.
type Cryostat struct {
	mu sync.Mutex

	temps   [numStages]float64
	cooling CoolingState

	// vacuumOK tracks cryostat vacuum integrity. Vacuum survives outages
	// for weeks unless the system is opened (§3.5); we expose an explicit
	// Vent for maintenance scenarios and a slow degradation clock.
	vacuumOK    bool
	ventedSince float64 // simulation time when vented; -1 if sealed
	simTime     float64
	vacuumHoldS float64 // how long the sealed vacuum survives without pumps

	// Liquid nitrogen inventory for the cold trap (§3.3: ~10 L/week).
	ln2Liters   float64
	ln2UseLPS   float64 // litres per second consumption
	ln2Capacity float64
}

// New returns a cryostat cold at base temperature, cooling on, vacuum intact,
// with a full LN2 trap.
func New() *Cryostat {
	c := &Cryostat{
		cooling:     CoolingOn,
		vacuumOK:    true,
		ventedSince: -1,
		vacuumHoldS: 14 * 24 * 3600, // two weeks, "several weeks" lower bound
		ln2Capacity: 20,
		ln2Liters:   20,
		ln2UseLPS:   10.0 / (7 * 24 * 3600), // 10 L/week
	}
	c.temps = nominalK
	return c
}

// NewWarm returns a cryostat at ambient temperature with cooling off, as
// delivered after installation (§2.5) or after a long outage.
func NewWarm() *Cryostat {
	c := New()
	for i := range c.temps {
		c.temps[i] = AmbientTempK
	}
	c.cooling = CoolingOff
	return c
}

// Temperature returns the temperature of a stage in kelvin.
func (c *Cryostat) Temperature(s Stage) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.temps[s]
}

// QPUTemperature returns the mixing-chamber (QPU) temperature in kelvin.
func (c *Cryostat) QPUTemperature() float64 { return c.Temperature(StageMXC) }

// AtBase reports whether the QPU is at its 10 mK operating point (within 20%).
func (c *Cryostat) AtBase() bool {
	return c.QPUTemperature() <= BaseTempK*1.2
}

// CalibrationSafe reports whether the QPU has stayed cold enough (< 1 K) for
// the stored calibration state to remain approximately valid (§3.5).
func (c *Cryostat) CalibrationSafe() bool {
	return c.QPUTemperature() < CalibSafeTempK
}

// SetCooling turns active cooling on or off. Cooling requires the facility to
// provide power and in-window cooling water; the caller (the center model)
// enforces that and calls SetCooling accordingly.
func (c *Cryostat) SetCooling(s CoolingState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cooling = s
}

// Cooling returns the present cooling state.
func (c *Cryostat) Cooling() CoolingState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cooling
}

// VacuumOK reports whether the inner vacuum is intact.
func (c *Cryostat) VacuumOK() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vacuumOK
}

// Vent deliberately breaks the vacuum (system opened or moved, §3.5).
// Recovering requires Seal followed by a full cooldown.
func (c *Cryostat) Vent() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.vacuumOK = false
	c.ventedSince = c.simTime
}

// Seal restores vacuum integrity after maintenance (pump-down is assumed to
// be part of the subsequent cooldown).
func (c *Cryostat) Seal() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.vacuumOK = true
	c.ventedSince = -1
}

// LN2Level returns the cold-trap liquid nitrogen level in litres.
func (c *Cryostat) LN2Level() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ln2Liters
}

// RefillLN2 tops the trap up to capacity and returns the litres added — the
// weekly ~10 L hands-on task from §3.3.
func (c *Cryostat) RefillLN2() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	added := c.ln2Capacity - c.ln2Liters
	c.ln2Liters = c.ln2Capacity
	return added
}

// Thermal time constants, chosen so the paper's operational timelines hold.
//
// Warm-up: after a cooling fault the MXC has tiny heat capacity and parasitic
// heat leaks drive it above 1 K in ~2 minutes; the upper stages warm much
// more slowly (days to reach ambient).
//
// Cooldown: pulling the full thermal mass from 295 K to base takes 2–5 days.
// We model each stage as first-order relaxation toward its target with a
// stage-dependent time constant that grows for colder stages, plus a
// condensation threshold: the MXC cannot drop below 4 K until the 4K stage
// is at temperature (mixture condensation), which produces the long tail.
var (
	// warmupTau: seconds for each stage to relax toward ambient with
	// cooling off.
	// The MXC constant of 200 s puts the 10 mK → 1 K crossing at ~118 s
	// after a cooling fault, matching the paper's "two minutes".
	warmupTau = [numStages]float64{36 * 3600, 18 * 3600, 3600, 200}
	// cooldownTau: seconds for each stage to relax toward nominal with
	// cooling on.
	cooldownTau = [numStages]float64{14 * 3600, 20 * 3600, 8 * 3600, 6 * 3600}
)

// Advance steps the thermal model by dt seconds.
func (c *Cryostat) Advance(dt float64) {
	if dt <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.simTime += dt

	// LN2 boils off continuously while the system is cold.
	if c.temps[Stage4K] < 100 {
		c.ln2Liters -= c.ln2UseLPS * dt
		if c.ln2Liters < 0 {
			c.ln2Liters = 0
		}
	}

	// Vacuum slowly degrades once the cryostat has been vented long enough
	// (or if left warm without pumping for longer than vacuumHoldS we treat
	// the seal as still intact — the paper says weeks of integrity).
	// A vented cryostat stays vented until sealed.

	// Sub-step the integration so the stiff MXC dynamics stay accurate even
	// for large dt (the operations simulation advances in minutes-hours).
	const maxStep = 10.0
	remaining := dt
	for remaining > 0 {
		h := math.Min(maxStep, remaining)
		remaining -= h
		c.step(h)
	}
}

// step advances one small time increment h.
func (c *Cryostat) step(h float64) {
	if c.cooling == CoolingOn && c.vacuumOK {
		for s := Stage(0); s < numStages; s++ {
			target := nominalK[s]
			if s == StageMXC && c.temps[Stage4K] > 5 {
				// Mixture cannot condense until the 4K plate is cold.
				target = math.Max(4.2, nominalK[s])
			}
			if s == StageStill && c.temps[Stage4K] > 5 {
				target = math.Max(4.2, nominalK[s])
			}
			// Exponential approach in log-temperature space for the cold
			// stages, which matches the long 1/T tail of real cooldowns.
			c.temps[s] = relaxLog(c.temps[s], target, h/cooldownTau[s])
		}
		return
	}
	// Cooling off (or vacuum soft): stages drift toward ambient.
	for s := Stage(0); s < numStages; s++ {
		tau := warmupTau[s]
		if !c.vacuumOK {
			tau /= 8 // convective heat load once vacuum is lost
		}
		c.temps[s] = relaxLog(c.temps[s], AmbientTempK, h/tau)
	}
}

// relaxLog relaxes current toward target with normalized step x, operating on
// log-temperature so cooldown curves have the realistic slow tail and warmup
// from 10 mK through 1 K is fast (small heat capacity at low T).
func relaxLog(current, target, x float64) float64 {
	if x <= 0 {
		return current
	}
	if x > 1 {
		x = 1
	}
	lc, lt := math.Log(current), math.Log(target)
	return math.Exp(lc + (lt-lc)*x)
}

// PowerDrawKW returns the present electrical draw of the cryogenic plant plus
// control electronics, in kW (§2.2): ~30 kW peak during cooldown (compressor
// flat out), settling to a lower steady-state figure at base temperature.
func (c *Cryostat) PowerDrawKW() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	const (
		electronicsKW = 4.0  // room-temperature control electronics
		steadyCryoKW  = 12.0 // compressor + GHS at base
		peakCryoKW    = 26.0 // compressor + GHS during cooldown
	)
	if c.cooling == CoolingOff {
		return electronicsKW
	}
	// Interpolate between peak and steady based on how far the 4K stage is
	// from its set point (log scale).
	t := c.temps[Stage4K]
	frac := math.Log(math.Max(t, 4)/4) / math.Log(AmbientTempK/4)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return electronicsKW + steadyCryoKW + (peakCryoKW-steadyCryoKW)*frac
}
