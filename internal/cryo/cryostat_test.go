package cryo

import (
	"math"
	"testing"
)

func TestNewIsAtBase(t *testing.T) {
	c := New()
	if !c.AtBase() {
		t.Errorf("fresh cryostat QPU at %.4f K, want ~0.010 K", c.QPUTemperature())
	}
	if !c.CalibrationSafe() {
		t.Error("cold cryostat should be calibration-safe")
	}
	if !c.VacuumOK() {
		t.Error("fresh cryostat should have vacuum")
	}
	if c.Cooling() != CoolingOn {
		t.Error("fresh cryostat should be cooling")
	}
}

func TestNewWarmStartsAmbient(t *testing.T) {
	c := NewWarm()
	if got := c.QPUTemperature(); math.Abs(got-AmbientTempK) > 1 {
		t.Errorf("warm cryostat at %.1f K, want ~%.0f K", got, AmbientTempK)
	}
	if c.AtBase() || c.CalibrationSafe() {
		t.Error("warm cryostat must not be at base or calibration-safe")
	}
}

// The paper: "it takes two minutes to exceed this temperature [1 K] after a
// fault in the cooling system."
func TestCoolingFaultExceedsOneKelvinInAboutTwoMinutes(t *testing.T) {
	c := New()
	c.SetCooling(CoolingOff)
	elapsed := 0.0
	for c.QPUTemperature() < CalibSafeTempK {
		c.Advance(5)
		elapsed += 5
		if elapsed > 600 {
			t.Fatalf("QPU still below 1 K after 10 min (%.3f K)", c.QPUTemperature())
		}
	}
	if elapsed < 60 || elapsed > 240 {
		t.Errorf("1 K crossing at %.0f s, want within 60-240 s (paper: ~120 s)", elapsed)
	}
}

// The paper: cooldown from warm takes two to five days.
func TestFullCooldownTakesTwoToFiveDays(t *testing.T) {
	c := NewWarm()
	c.SetCooling(CoolingOn)
	const hour = 3600.0
	days := 0.0
	for !c.AtBase() {
		c.Advance(hour)
		days += 1.0 / 24
		if days > 7 {
			t.Fatalf("not at base after 7 days (QPU %.3f K)", c.QPUTemperature())
		}
	}
	if days < 2 || days > 5 {
		t.Errorf("cooldown took %.1f days, want 2-5 (paper)", days)
	}
}

// Recovery from a small excursion (below ~4 K) is hours, not days (§3.5).
func TestSmallExcursionRecoversFast(t *testing.T) {
	c := New()
	c.SetCooling(CoolingOff)
	c.Advance(180) // brief fault: QPU climbs past 1 K but stays cold overall
	tempAfterFault := c.QPUTemperature()
	if tempAfterFault < CalibSafeTempK {
		t.Fatalf("fault too short to be interesting: %.3f K", tempAfterFault)
	}
	c.SetCooling(CoolingOn)
	elapsed := 0.0
	for c.QPUTemperature() > RecalReadyTempK {
		c.Advance(600)
		elapsed += 600
		if elapsed > 48*3600 {
			t.Fatalf("recovery from small excursion took >48 h (%.3f K)", c.QPUTemperature())
		}
	}
	if elapsed > 24*3600 {
		t.Errorf("recovery took %.1f h, want well under a day", elapsed/3600)
	}
}

func TestCalibrationSafetyThreshold(t *testing.T) {
	c := New()
	c.SetCooling(CoolingOff)
	c.Advance(60) // under the ~118 s crossing
	if !c.CalibrationSafe() {
		t.Errorf("at %.3f K (60 s) calibration should still be safe", c.QPUTemperature())
	}
	c.Advance(600)
	if c.CalibrationSafe() {
		t.Errorf("at %.3f K (11 min) calibration should be lost", c.QPUTemperature())
	}
}

func TestVentBreaksVacuumAndWarmsFaster(t *testing.T) {
	a := New()
	b := New()
	a.SetCooling(CoolingOff)
	b.SetCooling(CoolingOff)
	b.Vent()
	if b.VacuumOK() {
		t.Fatal("vented cryostat should report vacuum loss")
	}
	a.Advance(3600)
	b.Advance(3600)
	if b.Temperature(Stage4K) <= a.Temperature(Stage4K) {
		t.Errorf("vented cryostat should warm faster: vented %.1f K vs sealed %.1f K",
			b.Temperature(Stage4K), a.Temperature(Stage4K))
	}
	b.Seal()
	if !b.VacuumOK() {
		t.Error("Seal should restore vacuum")
	}
}

func TestVacuumLossPreventsCooling(t *testing.T) {
	c := New()
	c.Vent()
	// Cooling on but no vacuum: the system must warm, not hold base.
	c.Advance(4 * 3600)
	if c.AtBase() {
		t.Errorf("cryostat without vacuum held base temperature (%.3f K)", c.QPUTemperature())
	}
}

func TestLN2ConsumptionAboutTenLitersPerWeek(t *testing.T) {
	c := New()
	start := c.LN2Level()
	c.Advance(7 * 24 * 3600)
	used := start - c.LN2Level()
	if math.Abs(used-10) > 0.5 {
		t.Errorf("weekly LN2 use = %.2f L, want ~10 L (paper §3.3)", used)
	}
	added := c.RefillLN2()
	if math.Abs(added-used) > 1e-9 {
		t.Errorf("refill added %.2f L, want %.2f", added, used)
	}
	if c.LN2Level() != 20 {
		t.Errorf("refill should return to capacity, got %.2f", c.LN2Level())
	}
}

func TestLN2DoesNotGoNegative(t *testing.T) {
	c := New()
	c.Advance(365 * 24 * 3600)
	if c.LN2Level() < 0 {
		t.Errorf("LN2 level went negative: %g", c.LN2Level())
	}
}

func TestLN2NotConsumedWhenWarm(t *testing.T) {
	c := NewWarm()
	start := c.LN2Level()
	c.Advance(7 * 24 * 3600)
	if c.LN2Level() != start {
		t.Error("warm cryostat should not boil off LN2")
	}
}

// §2.2: peak power ~30 kW during cooldown, lower at steady state.
func TestPowerProfile(t *testing.T) {
	warm := NewWarm()
	warm.SetCooling(CoolingOn)
	peak := warm.PowerDrawKW()
	if peak < 25 || peak > 32 {
		t.Errorf("cooldown power %.1f kW, want ~30", peak)
	}
	cold := New()
	steady := cold.PowerDrawKW()
	if steady >= peak {
		t.Errorf("steady power %.1f kW should be below cooldown peak %.1f kW", steady, peak)
	}
	if steady < 10 || steady > 20 {
		t.Errorf("steady power %.1f kW, want 10-20 kW", steady)
	}
	off := New()
	off.SetCooling(CoolingOff)
	if p := off.PowerDrawKW(); p >= steady {
		t.Errorf("cooling-off power %.1f kW should be below steady %.1f kW", p, steady)
	}
}

func TestPowerStaysUnderHPCCabinetEnvelope(t *testing.T) {
	// §2.2: Cray EX4000 cabinet draws up to ~140 kW; the QC must be far
	// below that for existing centers to host it without electrical work.
	const crayCabinetKW = 140.0
	warm := NewWarm()
	warm.SetCooling(CoolingOn)
	for i := 0; i < 100; i++ {
		if p := warm.PowerDrawKW(); p > crayCabinetKW/4 {
			t.Fatalf("QC power %.1f kW exceeds a quarter of a Cray cabinet", p)
		}
		warm.Advance(3600)
	}
}

func TestAdvanceZeroOrNegativeIsNoop(t *testing.T) {
	c := New()
	before := c.QPUTemperature()
	c.Advance(0)
	c.Advance(-5)
	if c.QPUTemperature() != before {
		t.Error("Advance(<=0) should not change state")
	}
}

func TestStageStringNames(t *testing.T) {
	names := map[Stage]string{Stage50K: "50K", Stage4K: "4K", StageStill: "still", StageMXC: "MXC"}
	for s, want := range names {
		if got := s.String(); got != want {
			t.Errorf("Stage(%d).String() = %q, want %q", s, got, want)
		}
	}
	if got := Stage(99).String(); got != "stage(99)" {
		t.Errorf("unknown stage string = %q", got)
	}
}

func TestMonotonicCooldown(t *testing.T) {
	c := NewWarm()
	c.SetCooling(CoolingOn)
	prev := c.QPUTemperature()
	for i := 0; i < 200; i++ {
		c.Advance(1800)
		cur := c.QPUTemperature()
		if cur > prev+1e-9 {
			t.Fatalf("QPU temperature rose during cooldown: %.4f -> %.4f K", prev, cur)
		}
		prev = cur
	}
}
