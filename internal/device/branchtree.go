package device

import (
	"math/rand"

	"repro/internal/quantum"
)

// This file is the shot-branching trajectory engine: instead of re-evolving
// the statevector once per shot (runShotBlock), a *count* of shots is
// propagated down a trajectory tree. At each compiled noise site the
// subtree's shots are split multinomially across the Kraus branches using
// exact state-dependent weights; only branches that actually receive shots
// fork a pooled copy-on-write state, and every unique leaf state
// bulk-samples its shots through the O(1) Walker alias sampler. At
// realistic calibration error rates nearly every shot rides the dominant
// (near-identity) branch at every site, so a 200-shot job evolves a handful
// of trajectories instead of 200.
//
// Exactness: binning each shot with an independent uniform draw against the
// exact branch weights is literally the per-shot categorical draw of the
// Monte-Carlo wavefunction method — the tree merely groups shots by shared
// Kraus prefix, so the sampled trajectory ensemble (and hence the outcome
// distribution) is identical to runShotBlock's. The equivalence tests pin
// this with chi-square checks against both the per-shot loop and
// ExecuteNaive.

const (
	// branchTreeMinShots is the strategy floor: below it there is no
	// redundancy to amortize and the per-shot loop is cheaper.
	branchTreeMinShots = 8
	// maxBranchEventsPerShot gates the strategy pick on workload shape: the
	// compile-time estimate of off-dominant branch events per shot
	// (compiledJob.branchEst) above which trajectories stop sharing
	// prefixes and the shot-fanout loop wins.
	maxBranchEventsPerShot = 1.0
	// maxKrausBranches is the largest composed-channel fan-out the tree's
	// stack scratch supports (depolarizing × amp-damp × phase-damp = 16).
	// Wider channels fall back to the shot-fanout path via branchEst.
	maxKrausBranches = 16
)

// branchStateBudget caps the live states (root + forks along one DFS path)
// a branch-tree job may hold. Beyond it, branches replay their shots one at
// a time from the checkpoint — exact, just slower. A variable so tests can
// squeeze it to force the fallback.
var branchStateBudget = 32

// branchExec is the per-job state of one branch-tree execution: the scratch
// buffers live here so the recursion allocates nothing per node.
type branchExec struct {
	cj     *compiledJob
	rng    *rand.Rand
	counts map[int]int

	live   int // states currently held (root + outstanding forks)
	leaves int // unique leaf states sampled

	tail    *quantum.State // lazily acquired checkpoint-replay scratch
	samples []int          // leaf bulk-sampling scratch
}

// runBranchTree executes shots noisy trajectory shots by shot-branching and
// returns the histogram plus the number of unique leaf states it sampled
// (the leaves/shots ratio is the engine's redundancy-collapse metric). The
// walk is a single-goroutine DFS drawing from one rng stream, so a fixed
// seed reproduces identical counts on any host.
func (cj *compiledJob) runBranchTree(shots int, rng *rand.Rand) (map[int]int, int, error) {
	b := &branchExec{cj: cj, rng: rng, counts: make(map[int]int, cj.countsHint(shots))}
	st, err := quantum.AcquireState(cj.compactQubits)
	if err != nil {
		return nil, 0, err
	}
	b.live = 1
	err = b.run(st, 0, 0, shots)
	quantum.ReleaseState(st)
	quantum.ReleaseState(b.tail)
	if err != nil {
		return nil, 0, err
	}
	return b.counts, b.leaves, nil
}

// run evolves one subtree: st carries n shots and is positioned at op opIdx,
// noise site noiseIdx within it (the op's unitary has already been applied
// iff noiseIdx > 0). Reaching the end of the program makes st a leaf.
func (b *branchExec) run(st *quantum.State, opIdx, noiseIdx, n int) error {
	ops := b.cj.noisy
	for i := opIdx; i < len(ops); i++ {
		op := &ops[i]
		if i > opIdx || noiseIdx == 0 {
			if err := applyProgOp(st, &op.op); err != nil {
				return err
			}
		}
		j0 := 0
		if i == opIdx {
			j0 = noiseIdx
		}
		for j := j0; j < len(op.noise); j++ {
			na := &op.noise[j]
			if n == 1 {
				// A single shot cannot branch: the split degenerates to the
				// per-shot draw, early exit and all.
				if err := st.ApplyChannel(na.q, na.ch, b.rng); err != nil {
					return err
				}
				continue
			}
			var err error
			if n, err = b.splitAt(st, i, j, n); err != nil {
				return err
			}
		}
	}
	return b.sampleLeaf(st, n)
}

// splitAt distributes the subtree's n shots across the Kraus branches of
// noise site (opIdx, siteIdx) — one independent uniform draw per shot, the
// exact multinomial split — recurses into forked states for the minority
// branches, applies the most-populated branch to st in place, and returns
// the count continuing there. Branch weights are computed lazily:
// the cumulative weight only grows until it covers the largest draw seen,
// so the dominant near-identity branch usually costs one weight pass no
// matter how many operators the composed channel holds.
func (b *branchExec) splitAt(st *quantum.State, opIdx, siteIdx, n int) (int, error) {
	na := &b.cj.noisy[opIdx].noise[siteIdx]
	ks := na.ch.Kraus
	var w [maxKrausBranches]float64
	var bins [maxKrausBranches]int
	computed, acc := 0, 0.0
	for s := 0; s < n; s++ {
		r := b.rng.Float64()
		for acc <= r && computed < len(ks) {
			wt, err := st.KrausWeight(na.q, ks[computed])
			if err != nil {
				return 0, err
			}
			w[computed] = wt
			acc += wt
			computed++
		}
		chosen := -1
		c := 0.0
		for bi := 0; bi < computed; bi++ {
			c += w[bi]
			if r < c {
				chosen = bi
				break
			}
		}
		if chosen < 0 {
			// Rounding pushed r past the total weight; fall back to the
			// heaviest computed branch (the ApplyChannel convention).
			chosen = 0
			for bi := 1; bi < computed; bi++ {
				if w[bi] > w[chosen] {
					chosen = bi
				}
			}
		}
		bins[chosen]++
	}
	// The most-populated branch continues on st in place — forking it
	// instead would grow the DFS depth (and the live-state count) by one at
	// every noise site of the dominant trajectory, when it only needs to
	// grow at actual deviation points.
	keep := 0
	for bi := 1; bi < computed; bi++ {
		if bins[bi] > bins[keep] {
			keep = bi
		}
	}
	for bi := 0; bi < computed; bi++ {
		if bins[bi] == 0 || bi == keep {
			continue
		}
		if b.live >= branchStateBudget {
			if err := b.replayShots(st, opIdx, siteIdx, bi, w[bi], bins[bi]); err != nil {
				return 0, err
			}
			continue
		}
		fork, err := quantum.AcquireStateCopy(st)
		if err != nil {
			return 0, err
		}
		b.live++
		err = fork.ApplyKraus(na.q, ks[bi], w[bi])
		if err == nil {
			err = b.run(fork, opIdx, siteIdx+1, bins[bi])
		}
		quantum.ReleaseState(fork)
		b.live--
		if err != nil {
			return 0, err
		}
	}
	if err := st.ApplyKraus(na.q, ks[keep], w[keep]); err != nil {
		return 0, err
	}
	return bins[keep], nil
}

// replayShots is the state-budget fallback: the branch's shots run one at a
// time from the fork point, each rewinding the shared tail scratch to the
// checkpoint and finishing the program with per-shot Monte-Carlo draws —
// the exactness guarantee costs nothing, only the prefix sharing stops.
func (b *branchExec) replayShots(src *quantum.State, opIdx, siteIdx, branch int, weight float64, n int) error {
	na := &b.cj.noisy[opIdx].noise[siteIdx]
	if b.tail == nil {
		t, err := quantum.AcquireState(src.NumQubits())
		if err != nil {
			return err
		}
		b.tail = t
	}
	ops := b.cj.noisy
	for s := 0; s < n; s++ {
		st := b.tail
		if err := st.Set(src); err != nil {
			return err
		}
		if err := st.ApplyKraus(na.q, na.ch.Kraus[branch], weight); err != nil {
			return err
		}
		for i := opIdx; i < len(ops); i++ {
			op := &ops[i]
			j0 := siteIdx + 1
			if i > opIdx {
				j0 = 0
				if err := applyProgOp(st, &op.op); err != nil {
					return err
				}
			}
			for j := j0; j < len(op.noise); j++ {
				if err := st.ApplyChannel(op.noise[j].q, op.noise[j].ch, b.rng); err != nil {
					return err
				}
			}
		}
		b.leaves++
		b.cj.tally(b.counts, st.SampleBitstring(b.rng), b.rng)
	}
	return nil
}

// sampleLeaf draws the leaf's n shots from its final state: single shots
// take the one-draw linear walk, blocks go through the alias sampler.
func (b *branchExec) sampleLeaf(st *quantum.State, n int) error {
	b.leaves++
	if n == 1 {
		b.cj.tally(b.counts, st.SampleBitstring(b.rng), b.rng)
		return nil
	}
	b.samples = st.SampleBitstringsInto(b.samples, n, b.rng)
	for _, s := range b.samples {
		b.cj.tally(b.counts, s, b.rng)
	}
	return nil
}
