package device

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/circuit"
)

// assertChiSquareEquivalent runs a two-sample chi-square test on two
// histograms with equal totals and fails if they differ at p ≈ 0.001
// (Wilson–Hilferty critical value). Fixed seeds make the check
// deterministic; the loose significance keeps it honest, not flaky.
func assertChiSquareEquivalent(t *testing.T, label string, a, b map[int]int) {
	t.Helper()
	outcomes := map[int]bool{}
	for o := range a {
		outcomes[o] = true
	}
	for o := range b {
		outcomes[o] = true
	}
	chi2, df := 0.0, -1
	for o := range outcomes {
		na, nb := float64(a[o]), float64(b[o])
		if na+nb == 0 {
			continue
		}
		d := na - nb
		chi2 += d * d / (na + nb)
		df++
	}
	if df < 1 {
		return // at most one populated outcome: nothing to compare
	}
	fd := float64(df)
	const z = 3.09 // Φ⁻¹(0.999)
	crit := fd * math.Pow(1-2/(9*fd)+z*math.Sqrt(2/(9*fd)), 3)
	if chi2 > crit {
		t.Errorf("%s: chi-square %.1f > critical %.1f (df %d) — distributions differ", label, chi2, crit, df)
	}
}

// TestBranchTreeChiSquareEquivalence is the acceptance-criteria check: at
// fixed seeds, the shot-branching tree, the per-shot trajectory loop, and
// ExecuteNaive draw from the same outcome distribution.
func TestBranchTreeChiSquareEquivalence(t *testing.T) {
	const shots = 4000
	c := NativeGHZLine(5)

	treeQPU := New20Q(55)
	tree, err := treeQPU.Execute(c, shots)
	if err != nil {
		t.Fatal(err)
	}
	if st := treeQPU.ExecStats(); st.BranchTreeJobs != 1 {
		t.Fatalf("stats = %+v, want the job on the branch tree", st)
	}

	naive, err := New20Q(55).ExecuteNaive(c, shots)
	if err != nil {
		t.Fatal(err)
	}

	// The per-shot loop over the same compiled program, driven directly so
	// the strategy pick cannot reroute it.
	qpu := New20Q(55)
	cj, _, err := qpu.compiledFor(c)
	if err != nil {
		t.Fatal(err)
	}
	perShot, err := cj.runTrajectories(shots, shotFanoutWidth(shots, cj.compactQubits), rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}

	assertChiSquareEquivalent(t, "branch tree vs naive", tree.Counts, naive.Counts)
	assertChiSquareEquivalent(t, "branch tree vs per-shot", tree.Counts, perShot)
	assertChiSquareEquivalent(t, "per-shot vs naive", perShot, naive.Counts)
}

// TestBranchTreeConservesShots is the multinomial-split conservation
// property: over randomized circuits, seeds, and shot counts, every shot
// lands in exactly one leaf and the histogram total never drifts.
func TestBranchTreeConservesShots(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		circ := NativeRandom45(6, 3, seed)
		qpu := New20Q(60 + seed)
		for _, shots := range []int{8, 33, 200, 997} {
			res, err := qpu.Execute(circ, shots)
			if err != nil {
				t.Fatal(err)
			}
			total := 0
			for _, n := range res.Counts {
				total += n
			}
			if total != shots {
				t.Errorf("seed %d: histogram total = %d, want %d", seed, total, shots)
			}
		}
		if st := qpu.ExecStats(); st.BranchTreeJobs == 0 {
			t.Errorf("seed %d: no job took the branch tree (stats %+v)", seed, st)
		}
	}
}

// TestBranchTreeBudgetFallback squeezes the state budget to one so every
// fork goes through the per-shot replay path, then checks the fallback is
// still exact: shots conserved and the distribution unchanged.
func TestBranchTreeBudgetFallback(t *testing.T) {
	old := branchStateBudget
	branchStateBudget = 1
	defer func() { branchStateBudget = old }()
	const shots = 3000
	c := NativeGHZLine(5)
	res, err := New20Q(21).Execute(c, shots)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range res.Counts {
		total += n
	}
	if total != shots {
		t.Fatalf("histogram total = %d, want %d", total, shots)
	}
	naive, err := New20Q(21).ExecuteNaive(c, shots)
	if err != nil {
		t.Fatal(err)
	}
	assertChiSquareEquivalent(t, "budget-1 tree vs naive", res.Counts, naive.Counts)
}

// TestNoisyExecutionDeterministic pins the reproducibility satellite: the
// fan-out width is a pure function of the workload (never the host), and a
// fixed seed yields byte-identical histograms run over run.
func TestNoisyExecutionDeterministic(t *testing.T) {
	// Width function: host-independent by construction, spot-check values.
	for _, tc := range []struct{ shots, qubits, want int }{
		{7, 5, 1}, {32, 5, 1}, {64, 5, 2}, {200, 5, 6}, {10000, 5, 8}, {10000, 14, 1},
	} {
		if got := shotFanoutWidth(tc.shots, tc.qubits); got != tc.want {
			t.Errorf("shotFanoutWidth(%d, %d) = %d, want %d", tc.shots, tc.qubits, got, tc.want)
		}
	}

	c := NativeGHZLine(5)
	run := func() map[int]int {
		res, err := New20Q(70).Execute(c, 200)
		if err != nil {
			t.Fatal(err)
		}
		return res.Counts
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Errorf("same-seed branch-tree runs differ: %v vs %v", a, b)
	}

	// The multi-worker per-shot path, driven directly at a fixed width.
	qpu := New20Q(71)
	cj, _, err := qpu.compiledFor(c)
	if err != nil {
		t.Fatal(err)
	}
	w := shotFanoutWidth(200, cj.compactQubits)
	if w < 2 {
		t.Fatalf("width %d does not exercise the fan-out", w)
	}
	m1, err := cj.runTrajectories(200, w, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := cj.runTrajectories(200, w, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Errorf("same-seed fan-out runs differ: %v vs %v", m1, m2)
	}

	// The width of a fan-out job lands in ExecStats.
	if _, err := qpu.Execute(c, branchTreeMinShots-1); err != nil {
		t.Fatal(err)
	}
	if st := qpu.ExecStats(); st.ShotWorkers != 1 {
		t.Errorf("ShotWorkers = %d, want 1 for a %d-shot job", st.ShotWorkers, branchTreeMinShots-1)
	}
}

// TestNoisyHotPathAllocs gates the zero-alloc property of both noisy
// execution paths with testing.AllocsPerRun so it cannot silently rot: the
// per-shot loop stays within its PR-3 envelope and the branch tree, pooled
// forks and all, stays within a small multiple of it.
func TestNoisyHotPathAllocs(t *testing.T) {
	c := NativeGHZLine(5)
	qpu := New20Q(80)
	cj, _, err := qpu.compiledFor(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := cj.runShotBlock(200, rng); err != nil { // warm the state pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := cj.runShotBlock(200, rng); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 8 {
		t.Errorf("per-shot loop: %.0f allocs per 200-shot job, want <= 8 (measured 4)", allocs)
	}

	if _, _, err := cj.runBranchTree(200, rng); err != nil { // warm forks
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(10, func() {
		if _, _, err := cj.runBranchTree(200, rng); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 16 {
		t.Errorf("branch tree: %.0f allocs per 200-shot job, want <= 16 (measured 7)", allocs)
	}
}

// TestReadoutFlipsBeyondCompactRegister covers the countsHint edge case:
// readout noise on physical qubits outside the compact register pushes
// outcomes past the register dimension, and the histogram (sized by the
// hint) must still count them all.
func TestReadoutFlipsBeyondCompactRegister(t *testing.T) {
	qpu := New20Q(90)
	qpu.mu.Lock()
	for q := range qpu.calib.Qubits {
		qpu.calib.Qubits[q].FReadout = 0.6 // brutal readout so flips are certain
	}
	qpu.mu.Unlock()
	c := circuit.New(12, "narrow")
	c.PRX(0, math.Pi/2, math.Pi/2)
	c.CZ(0, 1)
	const shots = 500
	res, err := qpu.Execute(c, shots)
	if err != nil {
		t.Fatal(err)
	}
	cj, _, err := qpu.compiledFor(c)
	if err != nil {
		t.Fatal(err)
	}
	if cj.compactQubits != 2 {
		t.Fatalf("compact register = %d qubits, want 2", cj.compactQubits)
	}
	if hint := cj.countsHint(shots); hint != 4 {
		t.Errorf("countsHint(%d) = %d, want the register dimension 4", shots, hint)
	}
	total, beyond := 0, 0
	for outcome, n := range res.Counts {
		total += n
		if outcome >= 1<<2 {
			beyond += n
		}
	}
	if total != shots {
		t.Errorf("histogram total = %d, want %d", total, shots)
	}
	if beyond == 0 {
		t.Error("no outcome beyond the compact register dimension despite 40% readout error on 12 qubits")
	}
}

// TestNoiselessDistributionCache checks the pure-sampling path: repeated
// noiseless jobs on one compiled program simulate once, and a calibration
// epoch bump invalidates the cached distribution with the program.
func TestNoiselessDistributionCache(t *testing.T) {
	qpu := NewTwin20Q(91)
	c := NativeGHZLine(4)
	for i := 0; i < 3; i++ {
		res, err := qpu.Execute(c, 500)
		if err != nil {
			t.Fatal(err)
		}
		if res.Counts[0]+res.Counts[15] != 500 {
			t.Fatalf("twin GHZ(4) counts = %v, want all mass on |0000> and |1111>", res.Counts)
		}
	}
	st := qpu.ExecStats()
	if st.DistCacheHits != 2 {
		t.Errorf("dist-cache hits = %d, want 2 (first job builds, two sample)", st.DistCacheHits)
	}
	qpu.AdvanceDrift(1) // epoch bump: fresh compiled job, fresh distribution
	if _, err := qpu.Execute(c, 500); err != nil {
		t.Fatal(err)
	}
	if st = qpu.ExecStats(); st.DistCacheHits != 2 {
		t.Errorf("post-drift dist-cache hits = %d, want still 2", st.DistCacheHits)
	}
}
