package device

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// QubitCalibration holds the calibrated parameters of one transmon.
type QubitCalibration struct {
	T1 float64 `json:"t1_us"` // energy relaxation time, µs
	T2 float64 `json:"t2_us"` // dephasing time, µs (T2 <= 2*T1)
	// F1Q is the single-qubit (PRX) gate fidelity.
	F1Q float64 `json:"f_1q"`
	// FReadout is the readout assignment fidelity.
	FReadout float64 `json:"f_readout"`
}

// CouplerCalibration holds the calibrated parameters of one tunable coupler.
type CouplerCalibration struct {
	FCZ float64 `json:"f_cz"` // CZ gate fidelity
}

// Calibration is the full calibration record of the QPU at a point in time.
// JSON encoding goes through the custom marshaller below: Go cannot encode a
// map keyed on [2]int, so Couplers serialize as an explicit edge list — REST
// calibration responses carry the per-coupler CZ fidelities instead of
// silently dropping them.
type Calibration struct {
	Qubits   []QubitCalibration            `json:"qubits"`
	Couplers map[[2]int]CouplerCalibration `json:"couplers"`
	// AgeHours counts simulated hours since the record was produced.
	AgeHours float64 `json:"age_hours"`
}

// couplerEdgeJSON is the wire form of one coupler: edge endpoints plus its
// calibrated CZ fidelity.
type couplerEdgeJSON struct {
	A   int     `json:"a"`
	B   int     `json:"b"`
	FCZ float64 `json:"f_cz"`
}

// calibrationJSON is the wire form of a Calibration record.
type calibrationJSON struct {
	Qubits   []QubitCalibration `json:"qubits"`
	Couplers []couplerEdgeJSON  `json:"couplers"`
	AgeHours float64            `json:"age_hours"`
}

// MarshalJSON encodes the record with couplers as a sorted edge list.
func (c Calibration) MarshalJSON() ([]byte, error) {
	aux := calibrationJSON{
		Qubits:   c.Qubits,
		Couplers: make([]couplerEdgeJSON, 0, len(c.Couplers)),
		AgeHours: c.AgeHours,
	}
	for _, e := range c.sortedCouplerKeys() {
		aux.Couplers = append(aux.Couplers, couplerEdgeJSON{A: e[0], B: e[1], FCZ: c.Couplers[e].FCZ})
	}
	return json.Marshal(aux)
}

// UnmarshalJSON decodes the edge-list form back into the coupler map.
func (c *Calibration) UnmarshalJSON(data []byte) error {
	var aux calibrationJSON
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	c.Qubits = aux.Qubits
	c.AgeHours = aux.AgeHours
	c.Couplers = make(map[[2]int]CouplerCalibration, len(aux.Couplers))
	for _, e := range aux.Couplers {
		c.Couplers[edgeKey(e.A, e.B)] = CouplerCalibration{FCZ: e.FCZ}
	}
	return nil
}

// Reference values for a freshly fully-calibrated 20-qubit system, matching
// the fidelity band shown in Figure 4 (1q ~99.9%, readout ~98%, CZ ~99%).
const (
	FreshT1Us     = 50.0
	FreshT2Us     = 30.0
	FreshF1Q      = 0.9991
	FreshFReadout = 0.982
	FreshFCZ      = 0.991
	// Quick calibration (40 min) reaches slightly lower fidelities than the
	// full procedure (100 min) — §3.2.
	QuickF1QPenalty  = 0.0009
	QuickFCZPenalty  = 0.004
	QuickReadPenalty = 0.006
)

// NewFreshCalibration returns a fully-calibrated record for a topology, with
// small deterministic per-qubit spread (seeded) reflecting fabrication
// variance.
func NewFreshCalibration(t *Topology, seed int64) *Calibration {
	rng := rand.New(rand.NewSource(seed))
	c := &Calibration{
		Qubits:   make([]QubitCalibration, t.NumQubits()),
		Couplers: make(map[[2]int]CouplerCalibration, len(t.edges)),
	}
	for q := range c.Qubits {
		c.Qubits[q] = QubitCalibration{
			T1:       FreshT1Us * (1 + 0.2*rng.NormFloat64()),
			T2:       FreshT2Us * (1 + 0.2*rng.NormFloat64()),
			F1Q:      clampFid(FreshF1Q + 0.0004*rng.NormFloat64()),
			FReadout: clampFid(FreshFReadout + 0.004*rng.NormFloat64()),
		}
		if c.Qubits[q].T1 < 5 {
			c.Qubits[q].T1 = 5
		}
		if c.Qubits[q].T2 > 2*c.Qubits[q].T1 {
			c.Qubits[q].T2 = 2 * c.Qubits[q].T1
		}
		if c.Qubits[q].T2 < 2 {
			c.Qubits[q].T2 = 2
		}
	}
	for _, e := range t.Edges() {
		c.Couplers[e] = CouplerCalibration{FCZ: clampFid(FreshFCZ + 0.003*rng.NormFloat64())}
	}
	return c
}

func clampFid(f float64) float64 {
	if f < 0.5 {
		return 0.5
	}
	if f > 0.99999 {
		return 0.99999
	}
	return f
}

// Clone returns a deep copy of the record.
func (c *Calibration) Clone() *Calibration {
	out := &Calibration{
		Qubits:   append([]QubitCalibration(nil), c.Qubits...),
		Couplers: make(map[[2]int]CouplerCalibration, len(c.Couplers)),
		AgeHours: c.AgeHours,
	}
	for k, v := range c.Couplers {
		out.Couplers[k] = v
	}
	return out
}

// FCZ returns the CZ fidelity of the coupler between a and b (0 if absent).
func (c *Calibration) FCZ(a, b int) float64 {
	return c.Couplers[edgeKey(a, b)].FCZ
}

// MeanF1Q returns the average single-qubit gate fidelity — one of the three
// Figure 4 series.
func (c *Calibration) MeanF1Q() float64 {
	s := 0.0
	for _, q := range c.Qubits {
		s += q.F1Q
	}
	return s / float64(len(c.Qubits))
}

// MeanFReadout returns the average readout fidelity (Figure 4 series 2).
func (c *Calibration) MeanFReadout() float64 {
	s := 0.0
	for _, q := range c.Qubits {
		s += q.FReadout
	}
	return s / float64(len(c.Qubits))
}

// MeanFCZ returns the average CZ fidelity (Figure 4 series 3). Summation
// runs in sorted edge order so the result is bit-identical across runs.
func (c *Calibration) MeanFCZ() float64 {
	if len(c.Couplers) == 0 {
		return 0
	}
	s := 0.0
	for _, e := range c.sortedCouplerKeys() {
		s += c.Couplers[e].FCZ
	}
	return s / float64(len(c.Couplers))
}

// sortedCouplerKeys returns coupler edges in deterministic order.
func (c *Calibration) sortedCouplerKeys() [][2]int {
	keys := make([][2]int, 0, len(c.Couplers))
	for e := range c.Couplers {
		keys = append(keys, e)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}

// WorstQubits returns qubit indices sorted by ascending F1Q — the "qubit
// health" view operators use to decide whether recalibration is due.
func (c *Calibration) WorstQubits() []int {
	idx := make([]int, len(c.Qubits))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		return c.Qubits[idx[i]].F1Q < c.Qubits[idx[j]].F1Q
	})
	return idx
}

// DriftModel evolves calibration parameters over time. Two processes act,
// both well documented for transmons:
//
//   - Ornstein–Uhlenbeck wander: each fidelity random-walks with a restoring
//     pull toward a degraded asymptote (miscalibration accumulates: control
//     amplitudes, frequencies and readout thresholds slowly go stale).
//   - Poisson TLS events: occasionally a two-level-system defect jumps onto
//     a qubit frequency, knocking down its T1 and gate fidelity sharply
//     (the "deviating results" that §3.2's health checks are built to catch).
type DriftModel struct {
	rng *rand.Rand

	// OU parameters per unit hour.
	ReversionRate float64 // pull toward the degraded asymptote
	Volatility    float64 // diffusion of the fidelity error
	DegradedF1Q   float64 // asymptotic single-qubit fidelity if never recalibrated
	DegradedFCZ   float64
	DegradedFRead float64

	// TLS jump process.
	TLSRatePerQubitHour float64 // Poisson rate per qubit per hour
	TLSF1QHit           float64 // fidelity knocked off on a hit
	TLSRecoveryHours    float64 // mean hours for a TLS to diffuse away

	// active TLS hits: qubit -> remaining hours.
	tls map[int]float64
}

// NewDriftModel returns the default drift model, tuned so that fidelity
// decay over ~24 h is noticeable but recoverable by a quick calibration —
// matching the paper's daily-recalibration operating point.
func NewDriftModel(seed int64) *DriftModel {
	return &DriftModel{
		rng:                 rand.New(rand.NewSource(seed)),
		ReversionRate:       0.01,
		Volatility:          0.00018,
		DegradedF1Q:         0.985,
		DegradedFCZ:         0.94,
		DegradedFRead:       0.93,
		TLSRatePerQubitHour: 1.0 / (40 * 24), // about one hit per qubit per 40 days
		TLSF1QHit:           0.01,
		TLSRecoveryHours:    36,
		tls:                 make(map[int]float64),
	}
}

// ActiveTLSCount returns how many qubits currently host a TLS defect.
func (d *DriftModel) ActiveTLSCount() int { return len(d.tls) }

// Advance evolves the calibration record by dtHours.
func (d *DriftModel) Advance(c *Calibration, dtHours float64) {
	if dtHours <= 0 {
		return
	}
	c.AgeHours += dtHours
	sqrtDt := math.Sqrt(dtHours)
	for q := range c.Qubits {
		qc := &c.Qubits[q]
		qc.F1Q = d.ouStep(qc.F1Q, d.DegradedF1Q, dtHours, sqrtDt)
		qc.FReadout = d.ouStep(qc.FReadout, d.DegradedFRead, dtHours, sqrtDt)
		// T1/T2 wander a few percent per day.
		qc.T1 *= 1 + 0.01*sqrtDt*d.rng.NormFloat64()/5
		qc.T2 *= 1 + 0.01*sqrtDt*d.rng.NormFloat64()/5
		if qc.T2 > 2*qc.T1 {
			qc.T2 = 2 * qc.T1
		}
		if qc.T1 < 1 {
			qc.T1 = 1
		}
		if qc.T2 < 0.5 {
			qc.T2 = 0.5
		}
	}
	// Iterate couplers in sorted order: map order would shuffle the PRNG
	// draw assignment between runs and break campaign determinism.
	for _, e := range c.sortedCouplerKeys() {
		cc := c.Couplers[e]
		cc.FCZ = d.ouStep(cc.FCZ, d.DegradedFCZ, dtHours, sqrtDt)
		c.Couplers[e] = cc
	}

	// TLS arrivals.
	for q := range c.Qubits {
		if _, hit := d.tls[q]; hit {
			continue
		}
		p := 1 - math.Exp(-d.TLSRatePerQubitHour*dtHours)
		if d.rng.Float64() < p {
			d.tls[q] = d.TLSRecoveryHours * (0.5 + d.rng.Float64())
			c.Qubits[q].F1Q = clampFid(c.Qubits[q].F1Q - d.TLSF1QHit)
			c.Qubits[q].T1 *= 0.4
		}
	}
	// TLS recoveries.
	for q, rem := range d.tls {
		rem -= dtHours
		if rem <= 0 {
			delete(d.tls, q)
			// Fidelity does not bounce back on its own; recalibration
			// restores it. T1 partially recovers as the defect detunes.
			c.Qubits[q].T1 *= 1.8
		} else {
			d.tls[q] = rem
		}
	}
}

// ouStep advances one Ornstein–Uhlenbeck increment for a fidelity value.
func (d *DriftModel) ouStep(f, asymptote, dt, sqrtDt float64) float64 {
	f += d.ReversionRate * (asymptote - f) * dt
	f += d.Volatility * sqrtDt * d.rng.NormFloat64()
	return clampFid(f)
}

// Recalibrate restores the record toward fresh values. Full calibration
// resets everything to the fresh band; quick calibration leaves the
// QuickPenalty gaps (§3.2: quick is faster but "generally results in lower
// system performance"). Active TLS defects resist calibration: a hit qubit
// only recovers half its gap (frequency retuning can dodge, not remove, the
// defect).
func (d *DriftModel) Recalibrate(c *Calibration, t *Topology, full bool, seed int64) {
	fresh := NewFreshCalibration(t, seed)
	for q := range c.Qubits {
		target := fresh.Qubits[q]
		if !full {
			target.F1Q = clampFid(target.F1Q - QuickF1QPenalty)
			target.FReadout = clampFid(target.FReadout - QuickReadPenalty)
		}
		if _, hit := d.tls[q]; hit {
			c.Qubits[q].F1Q = clampFid(c.Qubits[q].F1Q + (target.F1Q-c.Qubits[q].F1Q)/2)
			c.Qubits[q].FReadout = target.FReadout
			// T1 stays suppressed while the TLS sits on the qubit.
		} else {
			c.Qubits[q] = target
		}
	}
	for e := range c.Couplers {
		target := fresh.Couplers[e]
		if !full {
			target.FCZ = clampFid(target.FCZ - QuickFCZPenalty)
		}
		c.Couplers[e] = target
	}
	c.AgeHours = 0
}

// String summarises the record.
func (c *Calibration) String() string {
	return fmt.Sprintf("calibration{age %.1f h, F1Q %.4f, Fread %.4f, FCZ %.4f}",
		c.AgeHours, c.MeanF1Q(), c.MeanFReadout(), c.MeanFCZ())
}
