package device

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// The REST calibration endpoints must carry per-coupler CZ fidelities: the
// coupler map (keyed on [2]int) cannot use Go's default JSON encoding, so a
// custom marshaller serializes it as a sorted edge list. These tests pin the
// wire format and the round trip.

func TestCalibrationJSONIncludesCouplers(t *testing.T) {
	topo := SquareGrid(2, 2)
	c := NewFreshCalibration(topo, 7)
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	s := string(data)
	if !strings.Contains(s, `"couplers":[`) {
		t.Fatalf("marshalled calibration has no coupler list: %s", s)
	}
	if !strings.Contains(s, `"f_cz":`) {
		t.Fatalf("marshalled calibration has no CZ fidelities: %s", s)
	}
	// Edge list is sorted: first edge of a 2x2 grid is (0,1).
	if !strings.Contains(s, `{"a":0,"b":1,`) {
		t.Fatalf("coupler list not in sorted edge order: %s", s)
	}
}

func TestCalibrationJSONRoundTrip(t *testing.T) {
	topo := SquareGrid(3, 4)
	orig := NewFreshCalibration(topo, 42)
	orig.AgeHours = 17.5

	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Calibration
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}

	if back.AgeHours != orig.AgeHours {
		t.Errorf("age: got %v, want %v", back.AgeHours, orig.AgeHours)
	}
	if len(back.Qubits) != len(orig.Qubits) {
		t.Fatalf("qubits: got %d, want %d", len(back.Qubits), len(orig.Qubits))
	}
	for q := range orig.Qubits {
		if back.Qubits[q] != orig.Qubits[q] {
			t.Errorf("qubit %d: got %+v, want %+v", q, back.Qubits[q], orig.Qubits[q])
		}
	}
	if len(back.Couplers) != len(orig.Couplers) {
		t.Fatalf("couplers: got %d, want %d", len(back.Couplers), len(orig.Couplers))
	}
	for _, e := range topo.Edges() {
		got, want := back.FCZ(e[0], e[1]), orig.FCZ(e[0], e[1])
		if math.Abs(got-want) > 1e-15 {
			t.Errorf("coupler %v: got %v, want %v", e, got, want)
		}
	}
	// Means survive the trip, so downstream scoring sees identical numbers.
	if math.Abs(back.MeanFCZ()-orig.MeanFCZ()) > 1e-15 {
		t.Errorf("MeanFCZ: got %v, want %v", back.MeanFCZ(), orig.MeanFCZ())
	}
}

func TestCalibrationJSONValueMarshal(t *testing.T) {
	// The REST layer hands *Calibration to the encoder (covered above); a
	// Calibration embedded by value must marshal identically.
	c := NewFreshCalibration(SquareGrid(2, 2), 1)
	data, err := json.Marshal(*c)
	if err != nil {
		t.Fatalf("marshal value: %v", err)
	}
	if !strings.Contains(string(data), `"couplers":[`) {
		t.Fatalf("value marshal dropped couplers: %s", data)
	}
}
