package device

import (
	"math"
	"testing"
)

func TestFreshCalibrationInFigure4Band(t *testing.T) {
	topo := SquareGrid(4, 5)
	c := NewFreshCalibration(topo, 1)
	if got := c.MeanF1Q(); got < 0.998 || got > 0.9999 {
		t.Errorf("fresh F1Q = %.5f, want ~0.999", got)
	}
	if got := c.MeanFReadout(); got < 0.97 || got > 0.995 {
		t.Errorf("fresh Freadout = %.5f, want ~0.98", got)
	}
	if got := c.MeanFCZ(); got < 0.985 || got > 0.998 {
		t.Errorf("fresh FCZ = %.5f, want ~0.99", got)
	}
	if len(c.Qubits) != 20 || len(c.Couplers) != 31 {
		t.Errorf("record sizes: %d qubits, %d couplers", len(c.Qubits), len(c.Couplers))
	}
	for q, qc := range c.Qubits {
		if qc.T2 > 2*qc.T1+1e-9 {
			t.Errorf("qubit %d violates T2 <= 2*T1: T1=%g T2=%g", q, qc.T1, qc.T2)
		}
	}
}

func TestCalibrationCloneIsDeep(t *testing.T) {
	topo := SquareGrid(2, 2)
	c := NewFreshCalibration(topo, 2)
	cl := c.Clone()
	cl.Qubits[0].F1Q = 0.5
	for e := range cl.Couplers {
		cc := cl.Couplers[e]
		cc.FCZ = 0.5
		cl.Couplers[e] = cc
		break
	}
	if c.Qubits[0].F1Q == 0.5 {
		t.Error("clone shares qubit slice")
	}
	bad := 0
	for _, cc := range c.Couplers {
		if cc.FCZ == 0.5 {
			bad++
		}
	}
	if bad != 0 {
		t.Error("clone shares coupler map")
	}
}

func TestDriftDegradesFidelity(t *testing.T) {
	topo := SquareGrid(4, 5)
	c := NewFreshCalibration(topo, 3)
	d := NewDriftModel(4)
	f0 := c.MeanF1Q()
	cz0 := c.MeanFCZ()
	for i := 0; i < 72; i++ { // three days, hourly
		d.Advance(c, 1)
	}
	if c.AgeHours != 72 {
		t.Errorf("age = %g h, want 72", c.AgeHours)
	}
	if c.MeanF1Q() >= f0 {
		t.Errorf("F1Q did not degrade: %.5f -> %.5f", f0, c.MeanF1Q())
	}
	if c.MeanFCZ() >= cz0 {
		t.Errorf("FCZ did not degrade: %.5f -> %.5f", cz0, c.MeanFCZ())
	}
	// Degradation over 3 days should be visible but not catastrophic.
	if c.MeanF1Q() < 0.99 {
		t.Errorf("F1Q collapsed to %.5f after 3 days", c.MeanF1Q())
	}
}

func TestDriftAdvanceZeroIsNoop(t *testing.T) {
	topo := SquareGrid(2, 2)
	c := NewFreshCalibration(topo, 5)
	d := NewDriftModel(6)
	f0 := c.MeanF1Q()
	d.Advance(c, 0)
	d.Advance(c, -1)
	if c.MeanF1Q() != f0 || c.AgeHours != 0 {
		t.Error("zero/negative advance changed the record")
	}
}

func TestFullRecalibrationRestoresFreshBand(t *testing.T) {
	topo := SquareGrid(4, 5)
	c := NewFreshCalibration(topo, 7)
	d := NewDriftModel(8)
	for i := 0; i < 24*14; i++ { // two weeks of drift
		d.Advance(c, 1)
	}
	degraded := c.MeanF1Q()
	d.Recalibrate(c, topo, true, 99)
	if c.MeanF1Q() <= degraded {
		t.Error("full recalibration did not improve F1Q")
	}
	if c.MeanF1Q() < 0.998 {
		t.Errorf("full recalibration reached only %.5f", c.MeanF1Q())
	}
	if c.AgeHours != 0 {
		t.Errorf("age after recalibration = %g", c.AgeHours)
	}
}

func TestQuickRecalibrationIsWorseThanFull(t *testing.T) {
	topo := SquareGrid(4, 5)
	d := NewDriftModel(10)
	cQuick := NewFreshCalibration(topo, 9)
	cFull := NewFreshCalibration(topo, 9)
	for i := 0; i < 48; i++ {
		d.Advance(cQuick, 1)
	}
	d2 := NewDriftModel(10)
	for i := 0; i < 48; i++ {
		d2.Advance(cFull, 1)
	}
	d.Recalibrate(cQuick, topo, false, 42)
	d2.Recalibrate(cFull, topo, true, 42)
	if cQuick.MeanF1Q() >= cFull.MeanF1Q() {
		t.Errorf("quick F1Q %.5f should be below full %.5f", cQuick.MeanF1Q(), cFull.MeanF1Q())
	}
	if cQuick.MeanFCZ() >= cFull.MeanFCZ() {
		t.Errorf("quick FCZ %.5f should be below full %.5f", cQuick.MeanFCZ(), cFull.MeanFCZ())
	}
}

func TestTLSEventsOccurAndRecover(t *testing.T) {
	topo := SquareGrid(4, 5)
	c := NewFreshCalibration(topo, 11)
	d := NewDriftModel(12)
	// At ~1 hit per qubit per 40 days, 20 qubits see ~15 hits in 30 days.
	sawHit := false
	for day := 0; day < 30; day++ {
		d.Advance(c, 24)
		if d.ActiveTLSCount() > 0 {
			sawHit = true
		}
	}
	if !sawHit {
		t.Error("no TLS event in 30 simulated days (rate too low or broken)")
	}
}

func TestWorstQubitsSorted(t *testing.T) {
	topo := SquareGrid(4, 5)
	c := NewFreshCalibration(topo, 13)
	c.Qubits[7].F1Q = 0.9
	order := c.WorstQubits()
	if order[0] != 7 {
		t.Errorf("worst qubit = %d, want 7", order[0])
	}
	for i := 1; i < len(order); i++ {
		if c.Qubits[order[i-1]].F1Q > c.Qubits[order[i]].F1Q {
			t.Fatal("WorstQubits not sorted ascending")
		}
	}
}

func TestFCZUnknownEdgeIsZero(t *testing.T) {
	topo := SquareGrid(2, 2)
	c := NewFreshCalibration(topo, 14)
	if got := c.FCZ(0, 3); got != 0 {
		t.Errorf("diagonal FCZ = %g, want 0", got)
	}
	if got := c.FCZ(0, 1); got <= 0 {
		t.Error("edge FCZ should be positive")
	}
	if c.FCZ(0, 1) != c.FCZ(1, 0) {
		t.Error("FCZ should be symmetric")
	}
}

func TestDriftDeterministicForSeed(t *testing.T) {
	topo := SquareGrid(4, 5)
	run := func() float64 {
		c := NewFreshCalibration(topo, 20)
		d := NewDriftModel(21)
		for i := 0; i < 100; i++ {
			d.Advance(c, 1)
		}
		return c.MeanF1Q()
	}
	if a, b := run(), run(); math.Abs(a-b) > 1e-15 {
		t.Errorf("drift not deterministic: %.10f vs %.10f", a, b)
	}
}
