package device

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/quantum"
	"repro/internal/telemetry/trace"
)

// This file is the compiled-circuit execution engine: Execute lowers a
// native circuit once into a flat program of precomputed matrices and
// calibration-derived noise channels (cached by circuit fingerprint +
// calibration epoch, the PR-1 transpile-cache pattern), then runs shots
// against pooled, reset-in-place states. When the program carries no noise
// channels — the digital twin, or a calibration with zero gate error — the
// state is simulated exactly once and all shots are drawn from it, turning
// an O(shots x gates) loop into O(gates + shots).

// noiseApp is one precomputed Kraus-channel application site: channel
// parameters are a pure function of the calibration snapshot, so the
// exp(-t/T1)-style math runs at compile time, not once per shot per gate.
type noiseApp struct {
	q  int // compact state index
	ch quantum.Channel
}

// noisyOp is one hardware gate of the trajectory program: a precomputed
// unitary plus the noise channels that follow it. Error-free single-qubit
// runs (RZ is virtual) are fused into the next noisy gate's matrix, which
// preserves the trajectory distribution exactly.
type noisyOp struct {
	op    quantum.ProgOp
	noise []noiseApp
}

// compiledJob is a circuit lowered against one calibration snapshot:
// everything shot execution needs, with all per-shot decoding and
// allocation hoisted out of the loop.
type compiledJob struct {
	compactQubits int   // simulated register size; 0 when no qubit is touched
	toPhysical    []int // compact index -> physical qubit

	// unitary is the fully fused pure program (noiseless path).
	unitary *quantum.Program
	// noisy is the trajectory program (per-shot path); empty when the
	// calibration contributes no gate or decoherence error.
	noisy []noisyOp
	// readout is the classical confusion model, nil when every qubit reads
	// out perfectly.
	readout *quantum.ReadoutModel
	// noiseless marks programs with no trajectory channels: one simulation
	// serves every shot (readout corruption, being classical and
	// per-sample, still applies).
	noiseless bool

	// branchEst is the compile-time estimate of off-dominant Kraus branch
	// events per shot, summed over noise sites (quantum.DominantWeight). It
	// is the workload-shape signal of the per-job strategy pick: low values
	// mean shots overwhelmingly share one trajectory and the branch tree
	// collapses the redundancy; +Inf marks programs the tree cannot run.
	branchEst float64

	// distOnce/dist cache the noiseless final outcome distribution as an
	// alias sampler, built on the first execution. Because compiledJob is
	// itself cached per (circuit fingerprint, calibration epoch), a QRM
	// batch of identical noiseless jobs simulates once and every later job
	// is pure O(shots) sampling. Gated to distCacheMaxQubits so a full
	// program cache stays bounded in memory.
	distOnce sync.Once
	dist     *quantum.AliasTable
	distErr  error

	durPerShotUs float64
}

// distCacheMaxQubits bounds the cached distribution: 2^16 outcomes ≈ 1 MiB
// of table, acceptable 256 times over (maxCompiledJobs).
const distCacheMaxQubits = 16

// progKey identifies a compiled job: circuit structure + the calibration it
// was compiled against.
type progKey struct {
	fingerprint uint64
	epoch       uint64
}

// progEntry is a single-flight cache slot: ready closes once cj/err are set.
type progEntry struct {
	ready chan struct{}
	cj    *compiledJob
	err   error
}

// maxCompiledJobs bounds the per-device program cache. Stale-epoch entries
// are evicted first; recompiling is always correct.
const maxCompiledJobs = 256

// ExecStats counts execution-engine activity: program-cache effectiveness
// and which path shots took. Exposed so the QRM pipeline metrics (and
// benches) can see engine behaviour without instrumenting the hot loop.
type ExecStats struct {
	CompileHits     uint64 `json:"compile_hits"`
	CompileMisses   uint64 `json:"compile_misses"`
	FastPathJobs    uint64 `json:"fast_path_jobs"`
	TrajectoryJobs  uint64 `json:"trajectory_jobs"`
	FastPathShots   uint64 `json:"fast_path_shots"`
	TrajectoryShots uint64 `json:"trajectory_shots"`

	// Shot-branching: jobs/shots routed to the trajectory tree, and the
	// unique leaf states those shots collapsed into — leaves/shots is the
	// redundancy the tree removed (1.0 would be per-shot simulation).
	BranchTreeJobs  uint64 `json:"branch_tree_jobs"`
	BranchTreeShots uint64 `json:"branch_tree_shots"`
	BranchLeaves    uint64 `json:"branch_leaves"`
	// DistCacheHits counts noiseless jobs that skipped simulation entirely
	// because the compiled program's outcome distribution was already
	// cached (pure-sampling jobs).
	DistCacheHits uint64 `json:"dist_cache_hits"`
	// ShotWorkers is the fan-out width of the most recent shot-fanout job —
	// a pure function of the workload, recorded so reproducibility issues
	// are visible rather than host-dependent.
	ShotWorkers uint64 `json:"shot_workers"`
}

// LeavesPerShot returns the mean unique-leaf fraction of branch-tree shots:
// the smaller, the more trajectory work the tree amortized (1.0 would mean
// every shot evolved its own state).
func (s ExecStats) LeavesPerShot() float64 {
	if s.BranchTreeShots == 0 {
		return 0
	}
	return float64(s.BranchLeaves) / float64(s.BranchTreeShots)
}

// ExecStats returns a snapshot of the engine counters.
func (d *QPU) ExecStats() ExecStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.execStats
}

// Execute runs a native circuit for the given number of shots through the
// compiled-circuit engine. The circuit must already be transpiled: only
// PRX, RZ, CZ and barriers are accepted (callers go through the QRM, whose
// JIT compiler guarantees this). The noise model is identical to
// ExecuteNaive — the reference per-shot implementation the equivalence
// tests check against:
//   - every PRX applies depolarizing(1-F1Q) on its qubit;
//   - every CZ applies depolarizing((1-FCZ)/2) on both qubits;
//   - RZ is virtual (frame update): error-free and duration-free;
//   - after each gate, the acting qubits accumulate T1/T2 decoherence for
//     the gate duration;
//   - measured bits flip through the per-qubit readout confusion model.
//
// Compilation is cached by circuit fingerprint + calibration epoch, so a
// batch of identical jobs (the VQE measurement loop) compiles once. All
// execution strategies derive their randomness deterministically from the
// seeded device RNG, and any fan-out width is a pure function of the
// workload — a fixed seed reproduces identical counts on any host.
func (d *QPU) Execute(c *circuit.Circuit, shots int) (*Result, error) {
	return d.ExecuteCtx(context.Background(), c, shots)
}

// ExecuteCtx is Execute with a caller context carrying an optional trace
// span: the engine records child spans for its compile lookup, the
// simulation strategy it picked (with strategy/leaves/width attributes),
// and the control-electronics pacing sleep. With no span in ctx the
// overhead is a few nil checks.
func (d *QPU) ExecuteCtx(ctx context.Context, c *circuit.Circuit, shots int) (*Result, error) {
	if err := d.validateExecution(c, shots); err != nil {
		return nil, err
	}
	d.mu.Lock()
	if d.injectedFaults > 0 {
		d.injectedFaults--
		latency := d.execLatency
		d.mu.Unlock()
		// The fault surfaces after the control-electronics round trip, like a
		// real readback failure — so callers see the job in flight first.
		if latency > 0 {
			time.Sleep(latency)
		}
		return nil, fmt.Errorf("device: %s: control electronics fault (injected)", d.name)
	}
	rng := rand.New(rand.NewSource(d.rng.Int63()))
	latency := d.execLatency
	d.mu.Unlock()

	_, compileSpan := trace.StartSpan(ctx, "engine-compile")
	cj, hit, err := d.compiledFor(c)
	if hit {
		compileSpan.End(trace.Str("cache", "hit"))
	} else {
		compileSpan.End(trace.Str("cache", "miss"))
	}
	if err != nil {
		return nil, err
	}

	// Per-job strategy pick, from workload shape rather than a fixed code
	// path: noiseless programs sample a cached distribution; noisy jobs
	// with enough shots and a dominant-trajectory noise profile ride the
	// shot-branching tree; everything else takes the per-shot fan-out.
	var (
		counts   map[int]int
		leaves   int
		distHit  bool
		width    int
		treePath = !cj.noiseless && cj.useBranchTree(shots)
	)
	_, simSpan := trace.StartSpan(ctx, "simulate")
	switch {
	case cj.noiseless:
		counts, distHit, err = cj.runFast(shots, rng)
		simSpan.End(trace.Str("strategy", "fast-path"), trace.Bool("dist_cache", distHit))
	case treePath:
		counts, leaves, err = cj.runBranchTree(shots, rng)
		simSpan.End(trace.Str("strategy", "branch-tree"), trace.Int("leaves", leaves))
	default:
		width = shotFanoutWidth(shots, cj.compactQubits)
		counts, err = cj.runTrajectories(shots, width, rng)
		simSpan.End(trace.Str("strategy", "shot-fanout"), trace.Int("width", width))
	}
	if err != nil {
		return nil, err
	}
	if latency > 0 {
		_, paceSpan := trace.StartSpan(ctx, "pace")
		time.Sleep(latency)
		paceSpan.End()
	}
	d.mu.Lock()
	d.executedJobs++
	d.executedShots += int64(shots)
	if hit {
		d.execStats.CompileHits++
	} else {
		d.execStats.CompileMisses++
	}
	switch {
	case cj.noiseless:
		d.execStats.FastPathJobs++
		d.execStats.FastPathShots += uint64(shots)
		if distHit {
			d.execStats.DistCacheHits++
		}
	case treePath:
		d.execStats.BranchTreeJobs++
		d.execStats.BranchTreeShots += uint64(shots)
		d.execStats.BranchLeaves += uint64(leaves)
	default:
		d.execStats.TrajectoryJobs++
		d.execStats.TrajectoryShots += uint64(shots)
		d.execStats.ShotWorkers = uint64(width)
	}
	d.mu.Unlock()
	return &Result{Counts: counts, Shots: shots, DurationUs: cj.durPerShotUs * float64(shots)}, nil
}

// useBranchTree is the noisy-path strategy pick: shot-branching pays when
// there are shots to amortize and the compile-time branch estimate says
// trajectories will mostly share the dominant Kraus prefix.
func (cj *compiledJob) useBranchTree(shots int) bool {
	return shots >= branchTreeMinShots && cj.branchEst <= maxBranchEventsPerShot
}

// compiledFor returns the compiled job for the circuit against the current
// calibration, compiling at most once across concurrent callers
// (single-flight, like the QRM transpile cache). hit reports whether this
// caller reused an existing compilation, including waiting on another
// caller's in-flight one.
//
// The hit path reads only the epoch (one uint64 under the device lock);
// the miss path takes one consistent (calibration, epoch) snapshot and
// registers the entry under the snapshot's epoch, so a cached program's
// noise always matches the calibration its key names — a drift tick
// landing mid-lookup can at worst cause one redundant compile, never a
// stale-noise hit.
func (d *QPU) compiledFor(c *circuit.Circuit) (cj *compiledJob, hit bool, err error) {
	fp := c.Fingerprint()
	key := progKey{fingerprint: fp, epoch: d.CalibEpoch()}
	d.progMu.Lock()
	if d.progs == nil {
		d.progs = make(map[progKey]*progEntry)
	}
	if e, ok := d.progs[key]; ok {
		d.progMu.Unlock()
		<-e.ready
		return e.cj, true, e.err
	}
	d.progMu.Unlock()

	calib, epoch := d.CalibrationWithEpoch()
	key = progKey{fingerprint: fp, epoch: epoch}
	d.progMu.Lock()
	if e, ok := d.progs[key]; ok {
		// The snapshot's epoch differs from the first read and another
		// caller owns that flight; wait on it.
		d.progMu.Unlock()
		<-e.ready
		return e.cj, true, e.err
	}
	d.evictProgsLocked(epoch)
	e := &progEntry{ready: make(chan struct{})}
	d.progs[key] = e
	d.progMu.Unlock()

	e.cj, e.err = d.compileJob(c, calib)
	close(e.ready)
	if e.err != nil {
		d.progMu.Lock()
		if d.progs[key] == e {
			delete(d.progs, key)
		}
		d.progMu.Unlock()
	}
	return e.cj, false, e.err
}

// evictProgsLocked keeps the program cache bounded: completed entries from
// superseded epochs go first (their calibration no longer exists), then
// any completed entry — in both passes only until the cache is back under
// its bound, so a full current-epoch working set is not flushed wholesale.
// In-flight entries survive — evicting them would break single-flight.
func (d *QPU) evictProgsLocked(currentEpoch uint64) {
	for k, e := range d.progs {
		if len(d.progs) < maxCompiledJobs {
			return
		}
		if k.epoch != currentEpoch && e.completed() {
			delete(d.progs, k)
		}
	}
	for k, e := range d.progs {
		if len(d.progs) < maxCompiledJobs {
			return
		}
		if e.completed() {
			delete(d.progs, k)
		}
	}
}

func (e *progEntry) completed() bool {
	select {
	case <-e.ready:
		return true
	default:
		return false
	}
}

// compileJob lowers a validated native circuit against a calibration
// snapshot into a compiledJob.
func (d *QPU) compileJob(c *circuit.Circuit, calib *Calibration) (*compiledJob, error) {
	compact, toPhysical, err := compactCircuit(c)
	if err != nil {
		return nil, err
	}
	cj := &compiledJob{
		toPhysical:   toPhysical,
		durPerShotUs: d.estimateDurationUs(c, 1),
	}
	if !d.twin {
		cj.readout = nonTrivialReadout(readoutModel(calib, c.NumQubits))
	}
	if compact == nil {
		cj.noiseless = true
		return cj, nil
	}
	cj.compactQubits = compact.NumQubits
	if cj.unitary, err = circuit.Compile(compact); err != nil {
		return nil, err
	}
	if cj.noisy, err = d.compileTrajectoryOps(compact, toPhysical, calib); err != nil {
		return nil, err
	}
	// Sum the off-dominant branch estimate over noise sites — the workload
	// shape the strategy pick reads — and detect the noiseless case.
	noiseSites := 0
	for i := range cj.noisy {
		for _, na := range cj.noisy[i].noise {
			noiseSites++
			if len(na.ch.Kraus) > maxKrausBranches {
				cj.branchEst = math.Inf(1) // too wide for the tree's scratch
				return cj, nil
			}
			if off := 1 - na.ch.DominantWeight(); off > 0 {
				cj.branchEst += off
			}
		}
	}
	if noiseSites > 0 {
		return cj, nil // at least one channel: trajectories needed
	}
	cj.noiseless = true
	cj.noisy = nil
	return cj, nil
}

// compileTrajectoryOps builds the noisy per-shot program: precomputed gate
// matrices with their calibration-derived channels. Virtual RZ runs fuse
// into the following PRX matrix (RZ is error-free, so fusion does not move
// any noise site); runs cut off by a CZ or the circuit end flush as bare
// unitaries.
func (d *QPU) compileTrajectoryOps(compact *circuit.Circuit, toPhysical []int, calib *Calibration) ([]noisyOp, error) {
	ops := make([]noisyOp, 0, len(compact.Gates))
	pending := make([]*quantum.Matrix2, compact.NumQubits)
	fuse := func(q int, m quantum.Matrix2) quantum.Matrix2 {
		if pending[q] != nil {
			m = quantum.Mul2(m, *pending[q])
			pending[q] = nil
		}
		return m
	}
	flush := func(q int) {
		if pending[q] == nil {
			return
		}
		ops = append(ops, noisyOp{op: quantum.ProgOp{Kind: quantum.ProgOp1Q, Q1: q, M2: *pending[q]}})
		pending[q] = nil
	}
	for _, g := range compact.Gates {
		switch g.Name {
		case circuit.OpRZ:
			m := quantum.RZ(g.Params[0])
			q := g.Qubits[0]
			if pending[q] != nil {
				fused := quantum.Mul2(m, *pending[q])
				pending[q] = &fused
			} else {
				pending[q] = &m
			}
		case circuit.OpPRX:
			q := g.Qubits[0]
			pq := toPhysical[q]
			ops = append(ops, noisyOp{
				op:    quantum.ProgOp{Kind: quantum.ProgOp1Q, Q1: q, M2: fuse(q, quantum.PRX(g.Params[0], g.Params[1]))},
				noise: d.gateNoiseChannels(q, pq, 1-calib.Qubits[pq].F1Q, PRXDurationUs, calib),
			})
		case circuit.OpCZ:
			a, b := g.Qubits[0], g.Qubits[1]
			flush(a)
			flush(b)
			pa, pb := toPhysical[a], toPhysical[b]
			errRate := (1 - calib.FCZ(pa, pb)) / 2
			noise := d.gateNoiseChannels(a, pa, errRate, CZDurationUs, calib)
			noise = append(noise, d.gateNoiseChannels(b, pb, errRate, CZDurationUs, calib)...)
			ops = append(ops, noisyOp{
				op:    quantum.ProgOp{Kind: quantum.ProgOp2Q, Q1: a, Q2: b, M4: quantum.CZ},
				noise: noise,
			})
		default:
			return nil, fmt.Errorf("device: non-native gate %q reached executor", g.Name)
		}
	}
	for q := 0; q < compact.NumQubits; q++ {
		flush(q)
	}
	return ops, nil
}

// gateNoiseChannels precomputes the channels applyGateNoise would build per
// shot — depolarizing gate error plus T1/T2 decoherence for the gate
// duration — and composes them into a single channel, so the shot loop
// pays one Kraus selection per gate site instead of three. Channels with
// zero strength are dropped (they are identity). Twin devices get none.
func (d *QPU) gateNoiseChannels(q, physQ int, errRate, durUs float64, calib *Calibration) []noiseApp {
	if d.twin {
		return nil
	}
	var chs []quantum.Channel
	if errRate > 0 {
		chs = append(chs, quantum.Depolarizing(errRate))
	}
	qc := calib.Qubits[physQ]
	if gamma := 1 - math.Exp(-durUs/qc.T1); gamma > 0 {
		chs = append(chs, quantum.AmplitudeDamping(gamma))
	}
	// Pure dephasing rate: 1/Tphi = 1/T2 - 1/(2 T1).
	if tphiInv := 1/qc.T2 - 1/(2*qc.T1); tphiInv > 0 {
		if lambda := 1 - math.Exp(-durUs*tphiInv); lambda > 0 {
			chs = append(chs, quantum.PhaseDamping(lambda))
		}
	}
	if len(chs) == 0 {
		return nil
	}
	composite := chs[0]
	for _, ch := range chs[1:] {
		composite = quantum.Compose(composite, ch)
	}
	return []noiseApp{{q: q, ch: composite}}
}

// nonTrivialReadout returns r, or nil when every qubit's confusion
// probabilities are zero (perfect readout needs no corruption pass).
func nonTrivialReadout(r *quantum.ReadoutModel) *quantum.ReadoutModel {
	for q := range r.P10 {
		if r.P10[q] > 0 || r.P01[q] > 0 {
			return r
		}
	}
	return nil
}

// expand maps a compact-register sample to physical bit positions.
func (cj *compiledJob) expand(sample int) int {
	outcome := 0
	for i, p := range cj.toPhysical {
		if sample&(1<<uint(i)) != 0 {
			outcome |= 1 << uint(p)
		}
	}
	return outcome
}

// countsHint sizes a counts map: outcomes are bounded by both the shot
// count and (ignoring readout flips) the register dimension.
func (cj *compiledJob) countsHint(shots int) int {
	hint := shots
	if cj.compactQubits < 10 && 1<<uint(cj.compactQubits) < hint {
		hint = 1 << uint(cj.compactQubits)
	}
	if hint > 1024 {
		hint = 1024
	}
	return hint
}

// runFast is the noiseless path: simulate the program exactly once per
// compiled job, cache the final outcome distribution as an alias sampler,
// and draw every shot from it — so across a batch of identical jobs only
// the first simulates at all and the rest are pure sampling (distHit).
// Readout corruption, when present, is a classical per-sample map and
// applies after sampling.
func (cj *compiledJob) runFast(shots int, rng *rand.Rand) (counts map[int]int, distHit bool, err error) {
	counts = make(map[int]int, cj.countsHint(shots))
	if cj.compactQubits == 0 {
		// No gates touch any qubit: the register stays |0...0>.
		if cj.readout == nil {
			counts[0] = shots
			return counts, false, nil
		}
		for shot := 0; shot < shots; shot++ {
			counts[cj.readout.Corrupt(0, rng)]++
		}
		return counts, false, nil
	}
	if cj.compactQubits > distCacheMaxQubits {
		// Too wide to pin a 2^n table per cached program: simulate once per
		// job (still amortized over its shots).
		st, err := quantum.AcquireState(cj.compactQubits)
		if err != nil {
			return nil, false, err
		}
		defer quantum.ReleaseState(st)
		if err := cj.unitary.RunOn(st); err != nil {
			return nil, false, err
		}
		for _, sample := range st.SampleBitstrings(shots, rng) {
			cj.tally(counts, sample, rng)
		}
		return counts, false, nil
	}
	first := false
	cj.distOnce.Do(func() {
		first = true
		cj.dist, cj.distErr = cj.buildDist()
	})
	if cj.distErr != nil {
		return nil, false, cj.distErr
	}
	for shot := 0; shot < shots; shot++ {
		cj.tally(counts, cj.dist.Sample(rng), rng)
	}
	return counts, !first, nil
}

// buildDist simulates the noiseless program once and freezes its outcome
// distribution into an alias sampler.
func (cj *compiledJob) buildDist() (*quantum.AliasTable, error) {
	st, err := quantum.AcquireState(cj.compactQubits)
	if err != nil {
		return nil, err
	}
	defer quantum.ReleaseState(st)
	if err := cj.unitary.RunOn(st); err != nil {
		return nil, err
	}
	return quantum.NewAliasTable(st.Probabilities())
}

// tally expands a compact sample, applies readout corruption, and counts it.
func (cj *compiledJob) tally(counts map[int]int, sample int, rng *rand.Rand) {
	outcome := cj.expand(sample)
	if cj.readout != nil {
		outcome = cj.readout.Corrupt(outcome, rng)
	}
	counts[outcome]++
}

// shotFanoutWorkers scales the per-shot fan-out width; ~32 shots per worker
// keep the goroutine and merge overhead negligible.
const (
	shotsPerFanoutWorker = 32
	maxFanoutWorkers     = 8
)

// shotFanoutWidth pins the trajectory fan-out to a pure function of the
// workload, never of the host: the same seed must yield identical counts on
// every machine, which GOMAXPROCS-derived widths broke. Wide registers run
// single-worker because their gate kernels already fan out across cores
// (quantum.parallelThreshold); nesting shot parallelism on top would
// oversubscribe.
func shotFanoutWidth(shots, compactQubits int) int {
	if compactQubits >= 14 {
		return 1
	}
	w := shots / shotsPerFanoutWorker
	if w > maxFanoutWorkers {
		w = maxFanoutWorkers
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runTrajectories is the noisy per-shot path: Monte-Carlo trajectories over
// pooled states, fanned out across workers goroutines (shotFanoutWidth).
// Workers draw their seeds from the job RNG in order, so the fan-out is
// deterministic for a fixed seed.
func (cj *compiledJob) runTrajectories(shots, workers int, rng *rand.Rand) (map[int]int, error) {
	if workers > shots {
		workers = shots
	}
	if workers <= 1 {
		return cj.runShotBlock(shots, rng)
	}
	seeds := make([]int64, workers)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	results := make([]map[int]int, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	base, extra := shots/workers, shots%workers
	for w := 0; w < workers; w++ {
		n := base
		if w < extra {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			results[w], errs[w] = cj.runShotBlock(n, rand.New(rand.NewSource(seeds[w])))
		}(w, n)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := results[0]
	for _, m := range results[1:] {
		for outcome, n := range m {
			merged[outcome] += n
		}
	}
	return merged, nil
}

// runShotBlock executes a block of trajectory shots on one pooled state,
// reset in place between shots. Nothing allocates inside the loop: the
// matrices and channels are precompiled, sampling is single-draw, and the
// counts map is reused across shots.
func (cj *compiledJob) runShotBlock(shots int, rng *rand.Rand) (map[int]int, error) {
	counts := make(map[int]int, cj.countsHint(shots))
	if cj.compactQubits == 0 {
		for shot := 0; shot < shots; shot++ {
			outcome := 0
			if cj.readout != nil {
				outcome = cj.readout.Corrupt(outcome, rng)
			}
			counts[outcome]++
		}
		return counts, nil
	}
	st, err := quantum.AcquireState(cj.compactQubits)
	if err != nil {
		return nil, err
	}
	defer quantum.ReleaseState(st)
	for shot := 0; shot < shots; shot++ {
		st.Reset()
		for i := range cj.noisy {
			op := &cj.noisy[i]
			if err := applyProgOp(st, &op.op); err != nil {
				return nil, err
			}
			for _, na := range op.noise {
				if err := st.ApplyChannel(na.q, na.ch, rng); err != nil {
					return nil, err
				}
			}
		}
		cj.tally(counts, st.SampleBitstring(rng), rng)
	}
	return counts, nil
}

// applyProgOp applies one precompiled trajectory unitary — shared by the
// per-shot loop, the branch tree, and its replay fallback.
func applyProgOp(st *quantum.State, op *quantum.ProgOp) error {
	switch op.Kind {
	case quantum.ProgOp1Q:
		return st.Apply1Q(op.Q1, op.M2)
	case quantum.ProgOp2Q:
		return st.Apply2Q(op.Q1, op.Q2, op.M4)
	default:
		return fmt.Errorf("device: unexpected trajectory op kind %d", op.Kind)
	}
}
