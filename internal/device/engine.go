package device

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/quantum"
)

// This file is the compiled-circuit execution engine: Execute lowers a
// native circuit once into a flat program of precomputed matrices and
// calibration-derived noise channels (cached by circuit fingerprint +
// calibration epoch, the PR-1 transpile-cache pattern), then runs shots
// against pooled, reset-in-place states. When the program carries no noise
// channels — the digital twin, or a calibration with zero gate error — the
// state is simulated exactly once and all shots are drawn from it, turning
// an O(shots x gates) loop into O(gates + shots).

// noiseApp is one precomputed Kraus-channel application site: channel
// parameters are a pure function of the calibration snapshot, so the
// exp(-t/T1)-style math runs at compile time, not once per shot per gate.
type noiseApp struct {
	q  int // compact state index
	ch quantum.Channel
}

// noisyOp is one hardware gate of the trajectory program: a precomputed
// unitary plus the noise channels that follow it. Error-free single-qubit
// runs (RZ is virtual) are fused into the next noisy gate's matrix, which
// preserves the trajectory distribution exactly.
type noisyOp struct {
	op    quantum.ProgOp
	noise []noiseApp
}

// compiledJob is a circuit lowered against one calibration snapshot:
// everything shot execution needs, with all per-shot decoding and
// allocation hoisted out of the loop.
type compiledJob struct {
	compactQubits int   // simulated register size; 0 when no qubit is touched
	toPhysical    []int // compact index -> physical qubit

	// unitary is the fully fused pure program (noiseless path).
	unitary *quantum.Program
	// noisy is the trajectory program (per-shot path); empty when the
	// calibration contributes no gate or decoherence error.
	noisy []noisyOp
	// readout is the classical confusion model, nil when every qubit reads
	// out perfectly.
	readout *quantum.ReadoutModel
	// noiseless marks programs with no trajectory channels: one simulation
	// serves every shot (readout corruption, being classical and
	// per-sample, still applies).
	noiseless bool

	durPerShotUs float64
}

// progKey identifies a compiled job: circuit structure + the calibration it
// was compiled against.
type progKey struct {
	fingerprint uint64
	epoch       uint64
}

// progEntry is a single-flight cache slot: ready closes once cj/err are set.
type progEntry struct {
	ready chan struct{}
	cj    *compiledJob
	err   error
}

// maxCompiledJobs bounds the per-device program cache. Stale-epoch entries
// are evicted first; recompiling is always correct.
const maxCompiledJobs = 256

// ExecStats counts execution-engine activity: program-cache effectiveness
// and which path shots took. Exposed so the QRM pipeline metrics (and
// benches) can see engine behaviour without instrumenting the hot loop.
type ExecStats struct {
	CompileHits     uint64 `json:"compile_hits"`
	CompileMisses   uint64 `json:"compile_misses"`
	FastPathJobs    uint64 `json:"fast_path_jobs"`
	TrajectoryJobs  uint64 `json:"trajectory_jobs"`
	FastPathShots   uint64 `json:"fast_path_shots"`
	TrajectoryShots uint64 `json:"trajectory_shots"`
}

// ExecStats returns a snapshot of the engine counters.
func (d *QPU) ExecStats() ExecStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.execStats
}

// Execute runs a native circuit for the given number of shots through the
// compiled-circuit engine. The circuit must already be transpiled: only
// PRX, RZ, CZ and barriers are accepted (callers go through the QRM, whose
// JIT compiler guarantees this). The noise model is identical to
// ExecuteNaive — the reference per-shot implementation the equivalence
// tests check against:
//   - every PRX applies depolarizing(1-F1Q) on its qubit;
//   - every CZ applies depolarizing((1-FCZ)/2) on both qubits;
//   - RZ is virtual (frame update): error-free and duration-free;
//   - after each gate, the acting qubits accumulate T1/T2 decoherence for
//     the gate duration;
//   - measured bits flip through the per-qubit readout confusion model.
//
// Compilation is cached by circuit fingerprint + calibration epoch, so a
// batch of identical jobs (the VQE measurement loop) compiles once. Noisy
// shots fan out across a worker group; the per-call RNG stream is still
// derived deterministically from the seeded device RNG (worker sub-streams
// are seeded in order, so results are reproducible for a fixed GOMAXPROCS).
func (d *QPU) Execute(c *circuit.Circuit, shots int) (*Result, error) {
	if err := d.validateExecution(c, shots); err != nil {
		return nil, err
	}
	d.mu.Lock()
	if d.injectedFaults > 0 {
		d.injectedFaults--
		latency := d.execLatency
		d.mu.Unlock()
		// The fault surfaces after the control-electronics round trip, like a
		// real readback failure — so callers see the job in flight first.
		if latency > 0 {
			time.Sleep(latency)
		}
		return nil, fmt.Errorf("device: %s: control electronics fault (injected)", d.name)
	}
	rng := rand.New(rand.NewSource(d.rng.Int63()))
	latency := d.execLatency
	d.mu.Unlock()

	cj, hit, err := d.compiledFor(c)
	if err != nil {
		return nil, err
	}

	var counts map[int]int
	if cj.noiseless {
		counts, err = cj.runFast(shots, rng)
	} else {
		counts, err = cj.runTrajectories(shots, rng)
	}
	if err != nil {
		return nil, err
	}
	if latency > 0 {
		time.Sleep(latency)
	}
	d.mu.Lock()
	d.executedJobs++
	d.executedShots += int64(shots)
	if hit {
		d.execStats.CompileHits++
	} else {
		d.execStats.CompileMisses++
	}
	if cj.noiseless {
		d.execStats.FastPathJobs++
		d.execStats.FastPathShots += uint64(shots)
	} else {
		d.execStats.TrajectoryJobs++
		d.execStats.TrajectoryShots += uint64(shots)
	}
	d.mu.Unlock()
	return &Result{Counts: counts, Shots: shots, DurationUs: cj.durPerShotUs * float64(shots)}, nil
}

// compiledFor returns the compiled job for the circuit against the current
// calibration, compiling at most once across concurrent callers
// (single-flight, like the QRM transpile cache). hit reports whether this
// caller reused an existing compilation, including waiting on another
// caller's in-flight one.
//
// The hit path reads only the epoch (one uint64 under the device lock);
// the miss path takes one consistent (calibration, epoch) snapshot and
// registers the entry under the snapshot's epoch, so a cached program's
// noise always matches the calibration its key names — a drift tick
// landing mid-lookup can at worst cause one redundant compile, never a
// stale-noise hit.
func (d *QPU) compiledFor(c *circuit.Circuit) (cj *compiledJob, hit bool, err error) {
	fp := c.Fingerprint()
	key := progKey{fingerprint: fp, epoch: d.CalibEpoch()}
	d.progMu.Lock()
	if d.progs == nil {
		d.progs = make(map[progKey]*progEntry)
	}
	if e, ok := d.progs[key]; ok {
		d.progMu.Unlock()
		<-e.ready
		return e.cj, true, e.err
	}
	d.progMu.Unlock()

	calib, epoch := d.CalibrationWithEpoch()
	key = progKey{fingerprint: fp, epoch: epoch}
	d.progMu.Lock()
	if e, ok := d.progs[key]; ok {
		// The snapshot's epoch differs from the first read and another
		// caller owns that flight; wait on it.
		d.progMu.Unlock()
		<-e.ready
		return e.cj, true, e.err
	}
	d.evictProgsLocked(epoch)
	e := &progEntry{ready: make(chan struct{})}
	d.progs[key] = e
	d.progMu.Unlock()

	e.cj, e.err = d.compileJob(c, calib)
	close(e.ready)
	if e.err != nil {
		d.progMu.Lock()
		if d.progs[key] == e {
			delete(d.progs, key)
		}
		d.progMu.Unlock()
	}
	return e.cj, false, e.err
}

// evictProgsLocked keeps the program cache bounded: completed entries from
// superseded epochs go first (their calibration no longer exists), then
// any completed entry — in both passes only until the cache is back under
// its bound, so a full current-epoch working set is not flushed wholesale.
// In-flight entries survive — evicting them would break single-flight.
func (d *QPU) evictProgsLocked(currentEpoch uint64) {
	for k, e := range d.progs {
		if len(d.progs) < maxCompiledJobs {
			return
		}
		if k.epoch != currentEpoch && e.completed() {
			delete(d.progs, k)
		}
	}
	for k, e := range d.progs {
		if len(d.progs) < maxCompiledJobs {
			return
		}
		if e.completed() {
			delete(d.progs, k)
		}
	}
}

func (e *progEntry) completed() bool {
	select {
	case <-e.ready:
		return true
	default:
		return false
	}
}

// compileJob lowers a validated native circuit against a calibration
// snapshot into a compiledJob.
func (d *QPU) compileJob(c *circuit.Circuit, calib *Calibration) (*compiledJob, error) {
	compact, toPhysical, err := compactCircuit(c)
	if err != nil {
		return nil, err
	}
	cj := &compiledJob{
		toPhysical:   toPhysical,
		durPerShotUs: d.estimateDurationUs(c, 1),
	}
	if !d.twin {
		cj.readout = nonTrivialReadout(readoutModel(calib, c.NumQubits))
	}
	if compact == nil {
		cj.noiseless = true
		return cj, nil
	}
	cj.compactQubits = compact.NumQubits
	if cj.unitary, err = circuit.Compile(compact); err != nil {
		return nil, err
	}
	if cj.noisy, err = d.compileTrajectoryOps(compact, toPhysical, calib); err != nil {
		return nil, err
	}
	for i := range cj.noisy {
		if len(cj.noisy[i].noise) > 0 {
			return cj, nil // at least one channel: per-shot trajectories needed
		}
	}
	cj.noiseless = true
	cj.noisy = nil
	return cj, nil
}

// compileTrajectoryOps builds the noisy per-shot program: precomputed gate
// matrices with their calibration-derived channels. Virtual RZ runs fuse
// into the following PRX matrix (RZ is error-free, so fusion does not move
// any noise site); runs cut off by a CZ or the circuit end flush as bare
// unitaries.
func (d *QPU) compileTrajectoryOps(compact *circuit.Circuit, toPhysical []int, calib *Calibration) ([]noisyOp, error) {
	ops := make([]noisyOp, 0, len(compact.Gates))
	pending := make([]*quantum.Matrix2, compact.NumQubits)
	fuse := func(q int, m quantum.Matrix2) quantum.Matrix2 {
		if pending[q] != nil {
			m = quantum.Mul2(m, *pending[q])
			pending[q] = nil
		}
		return m
	}
	flush := func(q int) {
		if pending[q] == nil {
			return
		}
		ops = append(ops, noisyOp{op: quantum.ProgOp{Kind: quantum.ProgOp1Q, Q1: q, M2: *pending[q]}})
		pending[q] = nil
	}
	for _, g := range compact.Gates {
		switch g.Name {
		case circuit.OpRZ:
			m := quantum.RZ(g.Params[0])
			q := g.Qubits[0]
			if pending[q] != nil {
				fused := quantum.Mul2(m, *pending[q])
				pending[q] = &fused
			} else {
				pending[q] = &m
			}
		case circuit.OpPRX:
			q := g.Qubits[0]
			pq := toPhysical[q]
			ops = append(ops, noisyOp{
				op:    quantum.ProgOp{Kind: quantum.ProgOp1Q, Q1: q, M2: fuse(q, quantum.PRX(g.Params[0], g.Params[1]))},
				noise: d.gateNoiseChannels(q, pq, 1-calib.Qubits[pq].F1Q, PRXDurationUs, calib),
			})
		case circuit.OpCZ:
			a, b := g.Qubits[0], g.Qubits[1]
			flush(a)
			flush(b)
			pa, pb := toPhysical[a], toPhysical[b]
			errRate := (1 - calib.FCZ(pa, pb)) / 2
			noise := d.gateNoiseChannels(a, pa, errRate, CZDurationUs, calib)
			noise = append(noise, d.gateNoiseChannels(b, pb, errRate, CZDurationUs, calib)...)
			ops = append(ops, noisyOp{
				op:    quantum.ProgOp{Kind: quantum.ProgOp2Q, Q1: a, Q2: b, M4: quantum.CZ},
				noise: noise,
			})
		default:
			return nil, fmt.Errorf("device: non-native gate %q reached executor", g.Name)
		}
	}
	for q := 0; q < compact.NumQubits; q++ {
		flush(q)
	}
	return ops, nil
}

// gateNoiseChannels precomputes the channels applyGateNoise would build per
// shot — depolarizing gate error plus T1/T2 decoherence for the gate
// duration — and composes them into a single channel, so the shot loop
// pays one Kraus selection per gate site instead of three. Channels with
// zero strength are dropped (they are identity). Twin devices get none.
func (d *QPU) gateNoiseChannels(q, physQ int, errRate, durUs float64, calib *Calibration) []noiseApp {
	if d.twin {
		return nil
	}
	var chs []quantum.Channel
	if errRate > 0 {
		chs = append(chs, quantum.Depolarizing(errRate))
	}
	qc := calib.Qubits[physQ]
	if gamma := 1 - math.Exp(-durUs/qc.T1); gamma > 0 {
		chs = append(chs, quantum.AmplitudeDamping(gamma))
	}
	// Pure dephasing rate: 1/Tphi = 1/T2 - 1/(2 T1).
	if tphiInv := 1/qc.T2 - 1/(2*qc.T1); tphiInv > 0 {
		if lambda := 1 - math.Exp(-durUs*tphiInv); lambda > 0 {
			chs = append(chs, quantum.PhaseDamping(lambda))
		}
	}
	if len(chs) == 0 {
		return nil
	}
	composite := chs[0]
	for _, ch := range chs[1:] {
		composite = quantum.Compose(composite, ch)
	}
	return []noiseApp{{q: q, ch: composite}}
}

// nonTrivialReadout returns r, or nil when every qubit's confusion
// probabilities are zero (perfect readout needs no corruption pass).
func nonTrivialReadout(r *quantum.ReadoutModel) *quantum.ReadoutModel {
	for q := range r.P10 {
		if r.P10[q] > 0 || r.P01[q] > 0 {
			return r
		}
	}
	return nil
}

// expand maps a compact-register sample to physical bit positions.
func (cj *compiledJob) expand(sample int) int {
	outcome := 0
	for i, p := range cj.toPhysical {
		if sample&(1<<uint(i)) != 0 {
			outcome |= 1 << uint(p)
		}
	}
	return outcome
}

// countsHint sizes a counts map: outcomes are bounded by both the shot
// count and (ignoring readout flips) the register dimension.
func (cj *compiledJob) countsHint(shots int) int {
	hint := shots
	if cj.compactQubits < 10 && 1<<uint(cj.compactQubits) < hint {
		hint = 1 << uint(cj.compactQubits)
	}
	if hint > 1024 {
		hint = 1024
	}
	return hint
}

// runFast is the noiseless path: simulate the program exactly once and draw
// every shot from the final state. Readout corruption, when present, is a
// classical per-sample map and applies after sampling.
func (cj *compiledJob) runFast(shots int, rng *rand.Rand) (map[int]int, error) {
	counts := make(map[int]int, cj.countsHint(shots))
	if cj.compactQubits == 0 {
		// No gates touch any qubit: the register stays |0...0>.
		if cj.readout == nil {
			counts[0] = shots
			return counts, nil
		}
		for shot := 0; shot < shots; shot++ {
			counts[cj.readout.Corrupt(0, rng)]++
		}
		return counts, nil
	}
	st, err := quantum.AcquireState(cj.compactQubits)
	if err != nil {
		return nil, err
	}
	defer quantum.ReleaseState(st)
	if err := cj.unitary.RunOn(st); err != nil {
		return nil, err
	}
	for _, sample := range st.SampleBitstrings(shots, rng) {
		outcome := cj.expand(sample)
		if cj.readout != nil {
			outcome = cj.readout.Corrupt(outcome, rng)
		}
		counts[outcome]++
	}
	return counts, nil
}

// runTrajectories is the noisy path: per-shot Monte-Carlo trajectories over
// pooled states, fanned out across a worker group. Workers draw their seeds
// from the job RNG in order, so the fan-out stays deterministic for a fixed
// worker count.
func (cj *compiledJob) runTrajectories(shots int, rng *rand.Rand) (map[int]int, error) {
	workers := runtime.GOMAXPROCS(0)
	if workers > shots {
		workers = shots
	}
	// Large states already fan their gate kernels out across cores
	// (quantum.parallelThreshold); nesting shot-level parallelism on top
	// would oversubscribe.
	if cj.compactQubits >= 14 {
		workers = 1
	}
	if workers <= 1 {
		return cj.runShotBlock(shots, rng)
	}
	seeds := make([]int64, workers)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	results := make([]map[int]int, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	base, extra := shots/workers, shots%workers
	for w := 0; w < workers; w++ {
		n := base
		if w < extra {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			results[w], errs[w] = cj.runShotBlock(n, rand.New(rand.NewSource(seeds[w])))
		}(w, n)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged := results[0]
	for _, m := range results[1:] {
		for outcome, n := range m {
			merged[outcome] += n
		}
	}
	return merged, nil
}

// runShotBlock executes a block of trajectory shots on one pooled state,
// reset in place between shots. Nothing allocates inside the loop: the
// matrices and channels are precompiled, sampling is single-draw, and the
// counts map is reused across shots.
func (cj *compiledJob) runShotBlock(shots int, rng *rand.Rand) (map[int]int, error) {
	counts := make(map[int]int, cj.countsHint(shots))
	if cj.compactQubits == 0 {
		for shot := 0; shot < shots; shot++ {
			outcome := 0
			if cj.readout != nil {
				outcome = cj.readout.Corrupt(outcome, rng)
			}
			counts[outcome]++
		}
		return counts, nil
	}
	st, err := quantum.AcquireState(cj.compactQubits)
	if err != nil {
		return nil, err
	}
	defer quantum.ReleaseState(st)
	for shot := 0; shot < shots; shot++ {
		st.Reset()
		for i := range cj.noisy {
			op := &cj.noisy[i]
			switch op.op.Kind {
			case quantum.ProgOp1Q:
				err = st.Apply1Q(op.op.Q1, op.op.M2)
			case quantum.ProgOp2Q:
				err = st.Apply2Q(op.op.Q1, op.op.Q2, op.op.M4)
			default:
				err = fmt.Errorf("device: unexpected trajectory op kind %d", op.op.Kind)
			}
			if err != nil {
				return nil, err
			}
			for _, na := range op.noise {
				if err := st.ApplyChannel(na.q, na.ch, rng); err != nil {
					return nil, err
				}
			}
		}
		outcome := cj.expand(st.SampleBitstring(rng))
		if cj.readout != nil {
			outcome = cj.readout.Corrupt(outcome, rng)
		}
		counts[outcome]++
	}
	return counts, nil
}
