package device

import (
	"math"
	"testing"

	"repro/internal/circuit"
)

// TestFastPathDistributionMatchesNaive is the noiseless distribution-
// equivalence check: the fast path now samples the cached alias-table
// distribution while the naive loop binary-searches a cumulative table, so
// the fixed-seed histograms are compared statistically (chi-square) rather
// than draw-for-draw.
func TestFastPathDistributionMatchesNaive(t *testing.T) {
	const shots = 4000
	c := NativeGHZLine(4)
	fast, err := NewTwin20Q(77).Execute(c, shots)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NewTwin20Q(77).ExecuteNaive(c, shots)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Shots != naive.Shots || fast.DurationUs != naive.DurationUs {
		t.Errorf("metadata mismatch: fast %d shots/%.1f us, naive %d shots/%.1f us",
			fast.Shots, fast.DurationUs, naive.Shots, naive.DurationUs)
	}
	assertChiSquareEquivalent(t, "fast vs naive", fast.Counts, naive.Counts)
}

// TestNoisyCompiledMatchesNaiveStatistically checks the trajectory path:
// the compiled program (fused RZ runs, precomputed channels, pooled states,
// shot-parallel workers) realizes the same noise model as the naive loop,
// so aggregate fidelity proxies agree within shot noise.
func TestNoisyCompiledMatchesNaiveStatistically(t *testing.T) {
	const shots = 3000
	c := NativeGHZLine(5)
	compiled, err := New20Q(21).Execute(c, shots)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := New20Q(21).ExecuteNaive(c, shots)
	if err != nil {
		t.Fatal(err)
	}
	fc := GHZPopulationFidelity(compiled, 5)
	fn := GHZPopulationFidelity(naive, 5)
	if math.Abs(fc-fn) > 0.05 {
		t.Errorf("GHZ population fidelity: compiled %.4f vs naive %.4f, want within 0.05", fc, fn)
	}
	total := 0
	for _, n := range compiled.Counts {
		total += n
	}
	if total != shots {
		t.Errorf("compiled histogram total = %d, want %d", total, shots)
	}
}

func TestZeroErrorCalibrationUsesFastPath(t *testing.T) {
	qpu := New20Q(30)
	// A hypothetically perfect calibration: no gate, decoherence, or readout
	// error. The engine must detect it and take the simulate-once path even
	// though the device is not a twin.
	qpu.mu.Lock()
	for q := range qpu.calib.Qubits {
		qpu.calib.Qubits[q].F1Q = 1
		qpu.calib.Qubits[q].FReadout = 1
		qpu.calib.Qubits[q].T1 = math.Inf(1)
		qpu.calib.Qubits[q].T2 = math.Inf(1)
	}
	for e, cc := range qpu.calib.Couplers {
		cc.FCZ = 1
		qpu.calib.Couplers[e] = cc
	}
	qpu.mu.Unlock()
	res, err := qpu.Execute(NativeGHZLine(5), 2000)
	if err != nil {
		t.Fatal(err)
	}
	if f := GHZPopulationFidelity(res, 5); f != 1 {
		t.Errorf("perfect-calibration GHZ fidelity = %g, want exactly 1", f)
	}
	st := qpu.ExecStats()
	if st.FastPathJobs != 1 || st.TrajectoryJobs != 0 {
		t.Errorf("stats = %+v, want the job on the fast path", st)
	}
	if st.FastPathShots != 2000 {
		t.Errorf("fast-path shots = %d, want 2000", st.FastPathShots)
	}
}

func TestNoisyStrategyPick(t *testing.T) {
	qpu := New20Q(31)
	// A dominant-trajectory noisy job with shots to amortize rides the
	// branch tree; a tiny job stays on the per-shot trajectory loop.
	if _, err := qpu.Execute(NativeGHZLine(4), 100); err != nil {
		t.Fatal(err)
	}
	st := qpu.ExecStats()
	if st.BranchTreeJobs != 1 || st.TrajectoryJobs != 0 || st.FastPathJobs != 0 {
		t.Errorf("stats = %+v, want the 100-shot job on the branch tree", st)
	}
	if st.BranchLeaves == 0 || st.BranchLeaves >= st.BranchTreeShots {
		t.Errorf("branch leaves = %d over %d shots, want 0 < leaves < shots", st.BranchLeaves, st.BranchTreeShots)
	}
	if _, err := qpu.Execute(NativeGHZLine(4), branchTreeMinShots-1); err != nil {
		t.Fatal(err)
	}
	st = qpu.ExecStats()
	if st.TrajectoryJobs != 1 || st.BranchTreeJobs != 1 {
		t.Errorf("stats = %+v, want the %d-shot job on the per-shot path", st, branchTreeMinShots-1)
	}
}

func TestCompiledProgramCache(t *testing.T) {
	qpu := NewTwin20Q(32)
	c := NativeGHZLine(4)
	for i := 0; i < 3; i++ {
		if _, err := qpu.Execute(c, 10); err != nil {
			t.Fatal(err)
		}
	}
	st := qpu.ExecStats()
	if st.CompileMisses != 1 || st.CompileHits != 2 {
		t.Errorf("cache stats = %d misses / %d hits, want 1 / 2", st.CompileMisses, st.CompileHits)
	}
	// A calibration-epoch bump must invalidate the cached program.
	qpu.AdvanceDrift(1)
	if _, err := qpu.Execute(c, 10); err != nil {
		t.Fatal(err)
	}
	st = qpu.ExecStats()
	if st.CompileMisses != 2 {
		t.Errorf("post-drift misses = %d, want 2 (epoch invalidation)", st.CompileMisses)
	}
	// A structurally different circuit is its own entry.
	if _, err := qpu.Execute(NativeGHZLine(5), 10); err != nil {
		t.Fatal(err)
	}
	if st = qpu.ExecStats(); st.CompileMisses != 3 {
		t.Errorf("distinct-circuit misses = %d, want 3", st.CompileMisses)
	}
}

func TestExecuteGatelessCircuit(t *testing.T) {
	// Touching no qubits leaves the register in |0...0>; the twin counts all
	// shots there, the noisy device only corrupts through readout.
	c := circuit.New(3, "idle")
	c.Barrier(0, 1, 2)
	res, err := NewTwin20Q(33).Execute(c, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[0] != 500 {
		t.Errorf("twin gateless counts = %v, want all 500 at 0", res.Counts)
	}
	noisy, err := New20Q(34).Execute(c, 500)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range noisy.Counts {
		total += n
	}
	if total != 500 {
		t.Errorf("noisy gateless histogram total = %d, want 500", total)
	}
	if float64(noisy.Counts[0])/500 < 0.8 {
		t.Errorf("noisy gateless P(0) = %.3f, readout error implausibly large", float64(noisy.Counts[0])/500)
	}
}

func TestTrajectoryShotSplitConservesShots(t *testing.T) {
	// An odd shot count exercises the uneven worker split.
	res, err := New20Q(35).Execute(NativeGHZLine(3), 997)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range res.Counts {
		total += n
	}
	if total != 997 {
		t.Errorf("histogram total = %d, want 997", total)
	}
}

func TestNaiveAndCompiledRejectSameInputs(t *testing.T) {
	qpu := New20Q(36)
	bad := circuit.New(20, "bad-cz")
	bad.CZ(0, 19)
	if _, err := qpu.Execute(bad, 10); err == nil {
		t.Error("Execute accepted disconnected CZ")
	}
	if _, err := qpu.ExecuteNaive(bad, 10); err == nil {
		t.Error("ExecuteNaive accepted disconnected CZ")
	}
	if _, err := qpu.Execute(circuit.GHZ(3), 10); err == nil {
		t.Error("Execute accepted non-native circuit")
	}
}
