package device

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/circuit"
	"repro/internal/quantum"
)

// Gate durations of the transmon QPU, microseconds. The 300 µs passive
// reset dominating shot duration is the figure behind the paper's §2.4
// bandwidth estimate.
const (
	PRXDurationUs     = 0.02 // 20 ns single-qubit gate
	CZDurationUs      = 0.04 // 40 ns two-qubit gate
	ReadoutDurationUs = 1.5
	ResetDurationUs   = 300.0
)

// QPU is the device: a topology plus a live calibration record and the
// drift process that ages it. It executes native circuits with
// calibration-derived noise, or noiselessly in digital-twin mode.
type QPU struct {
	mu sync.Mutex

	name  string
	topo  *Topology
	calib *Calibration
	drift *DriftModel
	rng   *rand.Rand

	// twin disables all noise — the emulator used for onboarding (§4).
	twin bool

	// epoch counts calibration-state changes (drift advances and
	// recalibrations). Transpile caches key on it: a compiled circuit is
	// valid exactly as long as the calibration it was placed against.
	epoch uint64

	// execLatency is the wall-clock control-electronics round-trip charged
	// per Execute call (waveform upload + trigger + readback). Zero by
	// default so simulations stay instant; the dispatch benchmarks set it to
	// model the latency-bound pipeline the QRM overlaps.
	execLatency time.Duration

	executedShots int64
	executedJobs  int64

	// injectedFaults makes the next N Execute calls fail with a control-
	// electronics error — the fault-injection hook behind fleet failover and
	// outage tests.
	injectedFaults int

	// execStats counts execution-engine activity (engine.go), guarded by mu.
	execStats ExecStats

	// Compiled-program cache (engine.go): single-flight entries keyed on
	// circuit fingerprint + calibration epoch, under their own lock so
	// compilation never serializes against calibration reads.
	progMu sync.Mutex
	progs  map[progKey]*progEntry
}

// Config configures a QPU.
type Config struct {
	Name       string
	Rows, Cols int
	Seed       int64
	// DigitalTwin makes execution noiseless.
	DigitalTwin bool
}

// New20Q returns the paper's device: a 4x5 square-grid 20-qubit QPU.
func New20Q(seed int64) *QPU {
	q, err := New(Config{Name: "garnet-20", Rows: 4, Cols: 5, Seed: seed})
	if err != nil {
		panic(err) // static configuration cannot fail
	}
	return q
}

// NewTwin20Q returns the noiseless digital twin of the 20-qubit device.
func NewTwin20Q(seed int64) *QPU {
	q, err := New(Config{Name: "garnet-20-twin", Rows: 4, Cols: 5, Seed: seed, DigitalTwin: true})
	if err != nil {
		panic(err)
	}
	return q
}

// New builds a QPU from a config.
func New(cfg Config) (*QPU, error) {
	if cfg.Rows < 1 || cfg.Cols < 1 {
		return nil, fmt.Errorf("device: grid %dx%d invalid", cfg.Rows, cfg.Cols)
	}
	if cfg.Rows*cfg.Cols > quantum.MaxQubits {
		return nil, fmt.Errorf("device: %d qubits exceeds simulator limit %d", cfg.Rows*cfg.Cols, quantum.MaxQubits)
	}
	topo := SquareGrid(cfg.Rows, cfg.Cols)
	return &QPU{
		name:  cfg.Name,
		topo:  topo,
		calib: NewFreshCalibration(topo, cfg.Seed),
		drift: NewDriftModel(cfg.Seed + 1),
		rng:   rand.New(rand.NewSource(cfg.Seed + 2)),
		twin:  cfg.DigitalTwin,
	}, nil
}

// Name returns the device name.
func (d *QPU) Name() string { return d.name }

// NumQubits returns the number of physical qubits.
func (d *QPU) NumQubits() int { return d.topo.NumQubits() }

// Topology returns the coupling graph.
func (d *QPU) Topology() *Topology { return d.topo }

// IsTwin reports whether this device is the noiseless digital twin.
func (d *QPU) IsTwin() bool { return d.twin }

// Calibration returns a snapshot copy of the live calibration record.
func (d *QPU) Calibration() *Calibration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.calib.Clone()
}

// AdvanceDrift ages the device by dtHours of simulated time.
func (d *QPU) AdvanceDrift(dtHours float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.drift.Advance(d.calib, dtHours)
	d.epoch++
}

// CalibEpoch returns a counter that increments whenever the calibration
// record changes (drift or recalibration). Equal epochs guarantee identical
// calibration, so JIT-compilation results can be reused.
func (d *QPU) CalibEpoch() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.epoch
}

// CalibrationWithEpoch returns a calibration snapshot together with the
// epoch it belongs to, read under one lock acquisition — callers keying
// caches on the epoch need the pair to be consistent.
func (d *QPU) CalibrationWithEpoch() (*Calibration, uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.calib.Clone(), d.epoch
}

// SetExecLatency sets the wall-clock control-electronics round-trip charged
// per Execute call, slept outside the device lock so concurrent executions
// overlap (the paced mode used by throughput benchmarks and demos).
func (d *QPU) SetExecLatency(lat time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.execLatency = lat
}

// InjectFaults makes the next n Execute calls fail with a simulated
// control-electronics fault (§3.5 outage semantics at the job level). Used
// by failover and error-path tests; n <= 0 clears pending faults.
func (d *QPU) InjectFaults(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n < 0 {
		n = 0
	}
	d.injectedFaults = n
}

// Recalibrate runs the quick or full calibration procedure (§3.2) and
// returns its duration in minutes: 40 for quick, 100 for full.
func (d *QPU) Recalibrate(full bool) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.drift.Recalibrate(d.calib, d.topo, full, d.rng.Int63())
	d.epoch++
	if full {
		return 100
	}
	return 40
}

// ActiveTLSCount exposes the number of qubits currently degraded by a TLS
// defect (visible to telemetry).
func (d *QPU) ActiveTLSCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.drift.ActiveTLSCount()
}

// Counters returns lifetime executed job and shot counts.
func (d *QPU) Counters() (jobs, shots int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.executedJobs, d.executedShots
}

// Result is the outcome of executing a circuit.
type Result struct {
	// Counts histograms measured bitstrings: basis index -> occurrences
	// (the dominant §2.4 output format).
	Counts map[int]int
	// Shots is the number of repetitions executed.
	Shots int
	// DurationUs is the estimated wall-clock time on the control
	// electronics, dominated by the passive reset (§2.4).
	DurationUs float64
}

// validateExecution checks a circuit/shot pair against the device: shot
// count, gate validity, register fit, native gate set, and CZ connectivity
// (the topology is immutable, so this needs no lock).
func (d *QPU) validateExecution(c *circuit.Circuit, shots int) error {
	if shots < 1 {
		return fmt.Errorf("device: shots must be >= 1, got %d", shots)
	}
	if err := c.Validate(); err != nil {
		return err
	}
	if c.NumQubits > d.topo.NumQubits() {
		return fmt.Errorf("device: circuit needs %d qubits, device has %d", c.NumQubits, d.topo.NumQubits())
	}
	if !c.IsNative() {
		return fmt.Errorf("device: circuit %q contains non-native gates; transpile first", c.Name)
	}
	for i, g := range c.Gates {
		if g.Name == circuit.OpCZ && !d.topo.Connected(g.Qubits[0], g.Qubits[1]) {
			return fmt.Errorf("device: gate %d: no coupler between qubits %d and %d", i, g.Qubits[0], g.Qubits[1])
		}
	}
	return nil
}

// ExecuteNaive is the reference per-shot implementation: it re-simulates
// the whole circuit from scratch for every shot, re-deriving each gate's
// unitary and noise parameters as it goes. The compiled engine (Execute,
// engine.go) implements the identical noise model; this path is kept as
// the ground truth for equivalence tests and as the "before" baseline of
// the sim bench artifact (BENCH_sim.json).
//
// Noise model per shot (trajectory method):
//   - every PRX applies depolarizing(1-F1Q) on its qubit;
//   - every CZ applies depolarizing((1-FCZ)/2) on both qubits — CZ must act
//     on a connected coupler pair;
//   - RZ is virtual (frame update): error-free and duration-free;
//   - after each gate, the acting qubits accumulate T1/T2 decoherence for
//     the gate duration;
//   - measured bits flip through the per-qubit readout confusion model.
func (d *QPU) ExecuteNaive(c *circuit.Circuit, shots int) (*Result, error) {
	if err := d.validateExecution(c, shots); err != nil {
		return nil, err
	}

	// Snapshot the mutable device state under the lock, then simulate
	// outside it. The QPU mutex protects the calibration record and the RNG
	// stream, not the trajectory simulation itself, so independent Execute
	// calls overlap on the wall clock — the property the QRM's concurrent
	// dispatch pipeline relies on. Single-threaded callers still get a
	// deterministic per-call RNG stream derived from the seeded device RNG.
	d.mu.Lock()
	if d.injectedFaults > 0 {
		d.injectedFaults--
		latency := d.execLatency
		d.mu.Unlock()
		// The fault surfaces after the control-electronics round trip, like a
		// real readback failure — so callers see the job in flight first.
		if latency > 0 {
			time.Sleep(latency)
		}
		return nil, fmt.Errorf("device: %s: control electronics fault (injected)", d.name)
	}
	calib := d.calib.Clone()
	rng := rand.New(rand.NewSource(d.rng.Int63()))
	latency := d.execLatency
	d.mu.Unlock()

	// Compact the register: only qubits the circuit touches need amplitudes.
	// A routed 5-qubit GHZ lives on a 20-qubit physical register, but
	// simulating 2^20 amplitudes per shot would be a 4000x waste; untouched
	// qubits stay |0> and only see readout noise. The compact circuit is
	// semantically identical — outcomes are re-expanded to physical bit
	// positions before readout corruption.
	compact, toPhysical, err := compactCircuit(c)
	if err != nil {
		return nil, err
	}

	counts := make(map[int]int)
	var readout *quantum.ReadoutModel
	if !d.twin {
		readout = readoutModel(calib, c.NumQubits)
	}
	for shot := 0; shot < shots; shot++ {
		var outcome int
		if compact != nil {
			st, err := quantum.NewState(compact.NumQubits)
			if err != nil {
				return nil, err
			}
			if err := d.runShot(st, compact, toPhysical, calib, rng); err != nil {
				return nil, err
			}
			sampled := st.SampleBitstrings(1, rng)[0]
			for i, p := range toPhysical {
				if sampled&(1<<uint(i)) != 0 {
					outcome |= 1 << uint(p)
				}
			}
		}
		if readout != nil {
			outcome = readout.Corrupt(outcome, rng)
		}
		counts[outcome]++
	}
	if latency > 0 {
		time.Sleep(latency)
	}
	d.mu.Lock()
	d.executedJobs++
	d.executedShots += int64(shots)
	d.mu.Unlock()
	dur := d.estimateDurationUs(c, shots)
	return &Result{Counts: counts, Shots: shots, DurationUs: dur}, nil
}

// compactCircuit rewrites c onto a register containing only the qubits it
// touches. It returns the compact circuit and the compact→physical index
// map, or (nil, nil) when the circuit touches no qubits.
func compactCircuit(c *circuit.Circuit) (*circuit.Circuit, []int, error) {
	used := map[int]bool{}
	for _, g := range c.Gates {
		if g.Name == circuit.OpBarrier {
			continue
		}
		for _, q := range g.Qubits {
			used[q] = true
		}
	}
	if len(used) == 0 {
		return nil, nil, nil
	}
	toPhysical := make([]int, 0, len(used))
	for q := 0; q < c.NumQubits; q++ {
		if used[q] {
			toPhysical = append(toPhysical, q)
		}
	}
	toCompact := make(map[int]int, len(toPhysical))
	for i, p := range toPhysical {
		toCompact[p] = i
	}
	out := circuit.New(len(toPhysical), c.Name)
	for _, g := range c.Gates {
		if g.Name == circuit.OpBarrier {
			continue // barriers carry no execution semantics here
		}
		ng := g
		ng.Qubits = make([]int, len(g.Qubits))
		for i, q := range g.Qubits {
			ng.Qubits[i] = toCompact[q]
		}
		if err := out.AddGate(ng); err != nil {
			return nil, nil, err
		}
	}
	return out, toPhysical, nil
}

// runShot applies the compact circuit with trajectory noise onto st.
// toPhysical maps compact indices back to physical qubits so calibration
// parameters are looked up for the right hardware elements. calib and rng
// are per-call snapshots so shots run outside the device lock.
func (d *QPU) runShot(st *quantum.State, c *circuit.Circuit, toPhysical []int, calib *Calibration, rng *rand.Rand) error {
	for _, g := range c.Gates {
		switch g.Name {
		case circuit.OpBarrier:
			continue
		case circuit.OpRZ:
			if err := st.Apply1Q(g.Qubits[0], quantum.RZ(g.Params[0])); err != nil {
				return err
			}
			// Virtual: no noise, no duration.
		case circuit.OpPRX:
			q := g.Qubits[0]
			if err := st.Apply1Q(q, quantum.PRX(g.Params[0], g.Params[1])); err != nil {
				return err
			}
			if !d.twin {
				pq := toPhysical[q]
				if err := applyGateNoise(st, q, pq, 1-calib.Qubits[pq].F1Q, PRXDurationUs, calib, rng); err != nil {
					return err
				}
			}
		case circuit.OpCZ:
			a, b := g.Qubits[0], g.Qubits[1]
			if err := st.Apply2Q(a, b, quantum.CZ); err != nil {
				return err
			}
			if !d.twin {
				pa, pb := toPhysical[a], toPhysical[b]
				errRate := (1 - calib.FCZ(pa, pb)) / 2
				if err := applyGateNoise(st, a, pa, errRate, CZDurationUs, calib, rng); err != nil {
					return err
				}
				if err := applyGateNoise(st, b, pb, errRate, CZDurationUs, calib, rng); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("device: non-native gate %q reached executor", g.Name)
		}
	}
	return nil
}

// applyGateNoise adds depolarizing gate error plus T1/T2 decoherence for the
// gate duration: q is the compact state index, physQ the hardware qubit the
// calibration parameters belong to.
func applyGateNoise(st *quantum.State, q, physQ int, errRate, durUs float64, calib *Calibration, rng *rand.Rand) error {
	if errRate > 0 {
		if err := st.ApplyChannel(q, quantum.Depolarizing(errRate), rng); err != nil {
			return err
		}
	}
	qc := calib.Qubits[physQ]
	gamma := 1 - math.Exp(-durUs/qc.T1)
	if err := st.ApplyChannel(q, quantum.AmplitudeDamping(gamma), rng); err != nil {
		return err
	}
	// Pure dephasing rate: 1/Tphi = 1/T2 - 1/(2 T1).
	tphiInv := 1/qc.T2 - 1/(2*qc.T1)
	if tphiInv > 0 {
		lambda := 1 - math.Exp(-durUs*tphiInv)
		if err := st.ApplyChannel(q, quantum.PhaseDamping(lambda), rng); err != nil {
			return err
		}
	}
	return nil
}

// readoutModel builds the classical confusion model from a calibration
// snapshot.
func readoutModel(calib *Calibration, n int) *quantum.ReadoutModel {
	p10 := make([]float64, n)
	p01 := make([]float64, n)
	for q := 0; q < n; q++ {
		eps := 1 - calib.Qubits[q].FReadout
		// Asymmetric split: |1> readout is worse (relaxation during readout).
		p10[q] = eps * 0.8
		p01[q] = eps * 1.2
	}
	return &quantum.ReadoutModel{P10: p10, P01: p01}
}

// estimateDurationUs estimates total execution time: per shot, the passive
// reset dominates (300 µs), plus gate time and readout.
func (d *QPU) estimateDurationUs(c *circuit.Circuit, shots int) float64 {
	gateUs := 0.0
	for _, g := range c.Gates {
		switch g.Name {
		case circuit.OpPRX:
			gateUs += PRXDurationUs
		case circuit.OpCZ:
			gateUs += CZDurationUs
		}
	}
	return float64(shots) * (ResetDurationUs + gateUs + ReadoutDurationUs)
}

// GHZFidelityEstimate executes a transpiled GHZ circuit and returns the
// population-based GHZ fidelity proxy: P(all zeros) + P(all ones). The
// calibration health checks (§3.2) use this as the live benchmark number.
func GHZPopulationFidelity(res *Result, numQubits int) float64 {
	if res.Shots == 0 {
		return 0
	}
	allOnes := (1 << uint(numQubits)) - 1
	good := res.Counts[0] + res.Counts[allOnes]
	return float64(good) / float64(res.Shots)
}
