package device

import (
	"math"
	"testing"

	"repro/internal/circuit"
)

func TestNativeGHZIsCorrectIdeally(t *testing.T) {
	s, err := NativeGHZLine(4).Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if f := s.Probability(0) + s.Probability(15); math.Abs(f-1) > 1e-9 {
		t.Fatalf("native GHZ construction wrong: P(ends) = %g", f)
	}
}

func TestTwinExecutesNoiselessly(t *testing.T) {
	twin := NewTwin20Q(1)
	if !twin.IsTwin() {
		t.Fatal("twin flag lost")
	}
	res, err := twin.Execute(NativeGHZLine(5), 2000)
	if err != nil {
		t.Fatal(err)
	}
	if f := GHZPopulationFidelity(res, 5); f != 1 {
		t.Errorf("twin GHZ population fidelity = %g, want exactly 1", f)
	}
	if len(res.Counts) != 2 {
		t.Errorf("twin GHZ outcomes = %d distinct, want 2", len(res.Counts))
	}
}

func TestNoisyExecutionDegradesGHZ(t *testing.T) {
	qpu := New20Q(2)
	res, err := qpu.Execute(NativeGHZLine(5), 1500)
	if err != nil {
		t.Fatal(err)
	}
	f := GHZPopulationFidelity(res, 5)
	if f >= 1 {
		t.Error("noisy execution should not be perfect")
	}
	if f < 0.75 {
		t.Errorf("fresh calibration GHZ-5 fidelity %.3f unreasonably low", f)
	}
}

func TestDriftedDeviceIsWorse(t *testing.T) {
	fresh := New20Q(3)
	drifted := New20Q(3)
	drifted.AdvanceDrift(24 * 21) // three weeks without recalibration
	shots := 1500
	rf, err := fresh.Execute(NativeGHZLine(5), shots)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := drifted.Execute(NativeGHZLine(5), shots)
	if err != nil {
		t.Fatal(err)
	}
	ff := GHZPopulationFidelity(rf, 5)
	fd := GHZPopulationFidelity(rd, 5)
	if fd >= ff {
		t.Errorf("drifted fidelity %.3f should be below fresh %.3f", fd, ff)
	}
}

func TestRecalibrationRestoresPerformance(t *testing.T) {
	qpu := New20Q(4)
	qpu.AdvanceDrift(24 * 21)
	before := qpu.Calibration().MeanF1Q()
	mins := qpu.Recalibrate(true)
	if mins != 100 {
		t.Errorf("full recalibration duration = %g min, want 100", mins)
	}
	after := qpu.Calibration().MeanF1Q()
	if after <= before {
		t.Errorf("recalibration did not improve F1Q: %.5f -> %.5f", before, after)
	}
	if quick := qpu.Recalibrate(false); quick != 40 {
		t.Errorf("quick recalibration duration = %g min, want 40", quick)
	}
}

func TestExecuteRejectsNonNative(t *testing.T) {
	qpu := New20Q(5)
	if _, err := qpu.Execute(circuit.GHZ(3), 10); err == nil {
		t.Error("expected rejection of non-native circuit")
	}
}

func TestExecuteRejectsDisconnectedCZ(t *testing.T) {
	qpu := New20Q(6)
	c := circuit.New(20, "bad-cz")
	c.CZ(0, 19) // opposite corners: no coupler
	if _, err := qpu.Execute(c, 10); err == nil {
		t.Error("expected rejection of CZ on non-adjacent qubits")
	}
}

func TestExecuteValidation(t *testing.T) {
	qpu := New20Q(7)
	c := circuit.New(2, "ok").PRX(0, 1, 0)
	if _, err := qpu.Execute(c, 0); err == nil {
		t.Error("expected error for 0 shots")
	}
	big := circuit.New(25, "big").PRX(0, 1, 0)
	if _, err := qpu.Execute(big, 10); err == nil {
		t.Error("expected error for oversized circuit")
	}
}

func TestExecuteCountsConserveShots(t *testing.T) {
	qpu := New20Q(8)
	res, err := qpu.Execute(NativeGHZLine(3), 500)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range res.Counts {
		total += n
	}
	if total != 500 {
		t.Errorf("histogram total = %d, want 500", total)
	}
}

func TestDurationDominatedByReset(t *testing.T) {
	qpu := New20Q(9)
	res, err := qpu.Execute(NativeGHZLine(3), 100)
	if err != nil {
		t.Fatal(err)
	}
	perShot := res.DurationUs / 100
	if perShot < ResetDurationUs || perShot > ResetDurationUs*1.1 {
		t.Errorf("per-shot duration %.1f µs, want just above %g µs (reset-dominated, §2.4)",
			perShot, ResetDurationUs)
	}
}

func TestCountersAccumulate(t *testing.T) {
	qpu := New20Q(10)
	qpu.Execute(NativeGHZLine(2), 100)
	qpu.Execute(NativeGHZLine(2), 50)
	jobs, shots := qpu.Counters()
	if jobs != 2 || shots != 150 {
		t.Errorf("counters = %d jobs, %d shots; want 2, 150", jobs, shots)
	}
}

func TestNewConfigValidation(t *testing.T) {
	if _, err := New(Config{Rows: 0, Cols: 5}); err == nil {
		t.Error("expected error for 0 rows")
	}
	if _, err := New(Config{Rows: 6, Cols: 6}); err == nil {
		t.Error("expected error for 36 qubits > simulator limit")
	}
}

func TestRZIsVirtualAndFree(t *testing.T) {
	qpu := New20Q(11)
	c := circuit.New(1, "rz-only")
	for i := 0; i < 50; i++ {
		c.RZ(0, 0.1)
	}
	res, err := qpu.Execute(c, 200)
	if err != nil {
		t.Fatal(err)
	}
	// RZ contributes no duration beyond reset+readout.
	perShot := res.DurationUs / 200
	want := ResetDurationUs + ReadoutDurationUs
	if math.Abs(perShot-want) > 1e-9 {
		t.Errorf("RZ-only per-shot duration = %g, want %g", perShot, want)
	}
	// And the outcome distribution is only readout-limited: P(0) high.
	if frac := float64(res.Counts[0]) / 200; frac < 0.95 {
		t.Errorf("RZ chain corrupted state: P(0) = %.3f", frac)
	}
}
