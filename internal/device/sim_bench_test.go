package device

import (
	"encoding/json"
	"flag"
	"os"
	"testing"
)

var (
	simBench    = flag.Bool("sim.bench", false, "run the execution-engine bench artifact test (writes machine-readable results)")
	simBenchOut = flag.String("sim.bench.out", "BENCH_sim.json", "output path for the sim bench artifact")
)

// TestSimBenchArtifact measures the naive per-shot loop against the
// compiled execution engine and writes BENCH_sim.json. Gated behind
// -sim.bench so the regular test run stays timing-free; CI runs it as the
// sim-bench smoke step and fails loudly if the noiseless fast path drops
// below 3x the naive loop or the noisy shot-branching path below 6x.
func TestSimBenchArtifact(t *testing.T) {
	if !*simBench {
		t.Skip("pass -sim.bench to run the execution-engine bench harness")
	}
	art, err := RunSimBench(SimBenchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range art.Rows {
		t.Logf("%s: naive %.0f jobs/s -> compiled %.0f jobs/s (%.1fx, median of %d, spread %.1f%%); compiled p50 %.3f ms, p95 %.3f ms; leaves/shot %.3f, dist-cache hits %d",
			row.Name, row.NaiveJobsPerSec, row.CompiledJobsPerSec, row.Speedup, row.Reruns, row.SpreadPct,
			row.CompiledP50Ms, row.CompiledP95Ms, row.BranchLeavesPerShot, row.DistCacheHits)
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*simBenchOut, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (noiseless %.1fx, noisy %.1fx)", *simBenchOut, art.SpeedupNoiseless, art.SpeedupNoisy)
	if art.SpeedupNoiseless < 3 {
		t.Fatalf("execution-engine regression: noiseless fast path %.2fx over naive loop, want >= 3x",
			art.SpeedupNoiseless)
	}
	if art.SpeedupNoisy < 6 {
		t.Fatalf("execution-engine regression: noisy shot-branching path %.2fx over naive loop, want >= 6x",
			art.SpeedupNoisy)
	}
}
