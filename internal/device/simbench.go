package device

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/circuit"
	"repro/internal/telemetry"
)

// This file is the execution-engine bench harness behind BENCH_sim.json:
// it runs the same job stream through the naive per-shot loop
// (ExecuteNaive, the pre-engine baseline) and the compiled engine
// (Execute), and reports before/after jobs/s plus compiled-path latency
// quantiles. It is shared by the -sim.bench artifact test (the CI smoke
// gate) and `qhpcctl bench -sim`.

// NativeGHZLine builds a native-gate GHZ preparation along the grid's first
// row, qubits 0..n-1 (line connectivity), without the transpiler:
// H = RZ(pi) then PRX(pi/2, pi/2); CNOT(c,t) = H(t) CZ(c,t) H(t). It is the
// standard workload of the executor benches and equivalence tests.
func NativeGHZLine(n int) *circuit.Circuit {
	c := circuit.New(n, fmt.Sprintf("native-ghz-%d", n))
	h := func(q int) {
		c.RZ(q, math.Pi)
		c.PRX(q, math.Pi/2, math.Pi/2)
	}
	h(0)
	for q := 1; q < n; q++ {
		h(q)
		c.CZ(q-1, q)
		h(q)
	}
	return c
}

// snakePath45 returns the first n qubits of the boustrophedon walk over the
// 4x5 grid (the 20-qubit device): row 0 left-to-right, row 1 right-to-left,
// and so on. Consecutive path entries are always grid neighbours, so CZs
// along the path sit on real couplers at any width up to 20.
func snakePath45(n int) []int {
	const cols = 5
	path := make([]int, 0, n)
	for r := 0; len(path) < n; r++ {
		for c := 0; c < cols && len(path) < n; c++ {
			col := c
			if r%2 == 1 {
				col = cols - 1 - c
			}
			path = append(path, r*cols+col)
		}
	}
	return path
}

// registerFor sizes a circuit register to the highest physical qubit a path
// touches, so narrow workloads keep their readout model narrow.
func registerFor(path []int) int {
	max := 0
	for _, q := range path {
		if q > max {
			max = q
		}
	}
	return max + 1
}

// NativeGHZSnake builds the native GHZ preparation along the snake path of
// the 4x5 grid — the widths-beyond-one-row generalization of NativeGHZLine
// (identical to it for n <= 5).
func NativeGHZSnake(n int) *circuit.Circuit {
	path := snakePath45(n)
	c := circuit.New(registerFor(path), fmt.Sprintf("native-ghz-snake-%d", n))
	h := func(q int) {
		c.RZ(q, math.Pi)
		c.PRX(q, math.Pi/2, math.Pi/2)
	}
	h(path[0])
	for i := 1; i < n; i++ {
		h(path[i])
		c.CZ(path[i-1], path[i])
		h(path[i])
	}
	return c
}

// NativeRandom45 builds a pseudo-random native circuit over the first n
// snake qubits of the 4x5 grid: layers of RZ+PRX rotations on every qubit
// followed by CZ brickwork along the snake path. Deterministic in seed. At
// n = 16 the state crosses quantum's parallel-kernel threshold, so the
// bench measures the fan-out kernels and the branch tree together.
func NativeRandom45(n, layers int, seed int64) *circuit.Circuit {
	path := snakePath45(n)
	rng := rand.New(rand.NewSource(seed))
	c := circuit.New(registerFor(path), fmt.Sprintf("native-rand-%dq-%dl", n, layers))
	for l := 0; l < layers; l++ {
		for _, q := range path {
			c.RZ(q, 2*math.Pi*rng.Float64())
			c.PRX(q, 2*math.Pi*rng.Float64(), 2*math.Pi*rng.Float64())
		}
		for i := l % 2; i+1 < n; i += 2 {
			c.CZ(path[i], path[i+1])
		}
	}
	return c
}

// SimBenchRow is one workload of the artifact: the naive (before) and
// compiled (after) numbers side by side.
type SimBenchRow struct {
	Name   string `json:"name"`
	Noisy  bool   `json:"noisy"`
	Qubits int    `json:"qubits"`
	Shots  int    `json:"shots"`
	Jobs   int    `json:"jobs"`
	// Reruns is how many independent measurements the row's numbers are the
	// median of; SpreadPct is (max-min)/median of the compiled jobs/s
	// samples (0 when Reruns is 1).
	Reruns    int     `json:"reruns"`
	SpreadPct float64 `json:"spread_pct,omitempty"`

	NaiveJobsPerSec float64 `json:"naive_jobs_per_sec"`
	NaiveP50Ms      float64 `json:"naive_p50_ms"`
	NaiveP95Ms      float64 `json:"naive_p95_ms"`

	CompiledJobsPerSec float64 `json:"compiled_jobs_per_sec"`
	CompiledP50Ms      float64 `json:"compiled_p50_ms"`
	CompiledP95Ms      float64 `json:"compiled_p95_ms"`

	Speedup float64 `json:"speedup"`

	// BranchLeavesPerShot is the shot-branching amortization on this row's
	// compiled runs: unique trajectory leaves per shot (0 when the row did
	// not take the branch tree).
	BranchLeavesPerShot float64 `json:"branch_leaves_per_shot,omitempty"`
	// DistCacheHits counts this row's compiled jobs that skipped simulation
	// entirely (noiseless distribution cache).
	DistCacheHits uint64 `json:"dist_cache_hits,omitempty"`
}

// SimBenchArtifact is the BENCH_sim.json schema: the execution-engine perf
// record tracked across PRs. SpeedupNoiseless/SpeedupNoisy refer to the
// baseline GHZ rows (the CI smoke gates).
type SimBenchArtifact struct {
	Harness          string        `json:"harness"`
	Workload         string        `json:"workload"`
	Rows             []SimBenchRow `json:"rows"`
	SpeedupNoiseless float64       `json:"speedup_noiseless"`
	SpeedupNoisy     float64       `json:"speedup_noisy"`
}

// SimBenchConfig sizes the harness. The zero value is replaced by defaults
// (the artifact configuration). Qubits/Shots/jobs size the baseline GHZ
// rows; the wide rows (GHZ(10), random 16-qubit) derive smaller job counts
// from them so the harness stays a smoke-test, not a soak.
type SimBenchConfig struct {
	Qubits        int // GHZ width of the baseline rows (default 5)
	NoiselessJobs int // jobs on the twin workload (default 64)
	NoisyJobs     int // jobs on the noisy workload (default 24)
	Shots         int // shots per job (default 200)
	// Reruns repeats each baseline GHZ row this many times and reports the
	// median (default 3), so the CI speedup gates compare medians instead of
	// single noisy samples. The wide rows always run once: they exist to
	// exercise the wide-state kernels, not to gate.
	Reruns int
}

func (cfg *SimBenchConfig) fill() {
	if cfg.Qubits == 0 {
		cfg.Qubits = 5
	}
	if cfg.NoiselessJobs == 0 {
		cfg.NoiselessJobs = 64
	}
	if cfg.NoisyJobs == 0 {
		cfg.NoisyJobs = 24
	}
	if cfg.Shots == 0 {
		cfg.Shots = 200
	}
	if cfg.Reruns == 0 {
		cfg.Reruns = 3
	}
}

// executeFn abstracts the two paths under measurement.
type executeFn func(c *circuit.Circuit, shots int) (*Result, error)

// measure runs jobs sequential executions and returns throughput and
// latency quantiles (milliseconds).
func measure(fn executeFn, c *circuit.Circuit, shots, jobs int) (jobsPerSec, p50Ms, p95Ms float64, err error) {
	lat := make([]float64, 0, jobs)
	start := time.Now()
	for i := 0; i < jobs; i++ {
		jobStart := time.Now()
		if _, err := fn(c, shots); err != nil {
			return 0, 0, 0, err
		}
		lat = append(lat, float64(time.Since(jobStart).Microseconds())/1000)
	}
	elapsed := time.Since(start)
	sort.Float64s(lat)
	q := func(p float64) float64 { return lat[int(p*float64(len(lat)-1))] }
	return float64(jobs) / elapsed.Seconds(), q(0.50), q(0.95), nil
}

// RunSimBench measures the naive per-shot loop against the compiled engine
// on the baseline GHZ workloads (noiseless twin + noisy device) plus two
// wide noisy workloads — GHZ(10) and a random 16-qubit brickwork circuit —
// where the parallel gate kernels and the shot-branching tree are measured
// at sizes that exercise them. It returns the artifact record.
func RunSimBench(cfg SimBenchConfig) (*SimBenchArtifact, error) {
	cfg.fill()
	wideJobs := cfg.NoisyJobs / 3
	if wideJobs < 1 {
		wideJobs = 1
	}
	// The 16-qubit row exists to exercise the parallel kernels inside the
	// branch tree, not to soak: the naive baseline costs ~300 ms *per shot*
	// there, so the row runs one job at an eighth of the shots.
	randShots := cfg.Shots / 8
	if randShots < 1 {
		randShots = 1
	}
	art := &SimBenchArtifact{
		Harness: "go test ./internal/device -run TestSimBenchArtifact -sim.bench",
		Workload: fmt.Sprintf("GHZ(%d) x %d shots: %d noiseless jobs (twin), %d noisy jobs (fresh calibration), medians over %d reruns; wide rows (1 run): GHZ(10) x %d noisy jobs, rand-16q x %d shots x 1 noisy job",
			cfg.Qubits, cfg.Shots, cfg.NoiselessJobs, cfg.NoisyJobs, cfg.Reruns, wideJobs, randShots),
	}
	workloads := []struct {
		name     string
		noisy    bool
		baseline bool // feeds SpeedupNoiseless/SpeedupNoisy (the CI gates)
		circ     *circuit.Circuit
		qubits   int
		shots    int
		jobs     int
		mk       func(seed int64) *QPU
	}{
		{name: "noiseless-ghz", baseline: true, circ: NativeGHZSnake(cfg.Qubits), qubits: cfg.Qubits, shots: cfg.Shots, jobs: cfg.NoiselessJobs, mk: NewTwin20Q},
		{name: "noisy-ghz", noisy: true, baseline: true, circ: NativeGHZSnake(cfg.Qubits), qubits: cfg.Qubits, shots: cfg.Shots, jobs: cfg.NoisyJobs, mk: New20Q},
		{name: "noisy-ghz10", noisy: true, circ: NativeGHZSnake(10), qubits: 10, shots: cfg.Shots, jobs: wideJobs, mk: New20Q},
		{name: "noisy-rand16", noisy: true, circ: NativeRandom45(16, 4, 7), qubits: 16, shots: randShots, jobs: 1, mk: New20Q},
	}
	for _, w := range workloads {
		reruns := cfg.Reruns
		if !w.baseline {
			reruns = 1 // wide rows exercise kernels; only baselines gate
		}
		row := SimBenchRow{Name: w.name, Noisy: w.noisy, Qubits: w.qubits, Shots: w.shots, Jobs: w.jobs, Reruns: reruns}
		var naiveJPS, naiveP50, naiveP95, compJPS, compP50, compP95 []float64
		for r := 0; r < reruns; r++ {
			// Fresh devices per path and per rerun so cache warmth and RNG
			// draws stay comparable; the same seed keeps calibration
			// identical, so reruns measure timing noise only.
			naive := w.mk(101)
			jps, p50, p95, err := measure(naive.ExecuteNaive, w.circ, w.shots, w.jobs)
			if err != nil {
				return nil, fmt.Errorf("simbench %s naive: %w", w.name, err)
			}
			naiveJPS = append(naiveJPS, jps)
			naiveP50 = append(naiveP50, p50)
			naiveP95 = append(naiveP95, p95)
			compiled := w.mk(101)
			if jps, p50, p95, err = measure(compiled.Execute, w.circ, w.shots, w.jobs); err != nil {
				return nil, fmt.Errorf("simbench %s compiled: %w", w.name, err)
			}
			compJPS = append(compJPS, jps)
			compP50 = append(compP50, p50)
			compP95 = append(compP95, p95)
			// Engine counters are deterministic per rerun (same seed, same
			// jobs), so the last rerun's stats describe them all.
			es := compiled.ExecStats()
			row.BranchLeavesPerShot = es.LeavesPerShot()
			row.DistCacheHits = es.DistCacheHits
		}
		row.NaiveJobsPerSec = telemetry.Median(naiveJPS)
		row.NaiveP50Ms = telemetry.Median(naiveP50)
		row.NaiveP95Ms = telemetry.Median(naiveP95)
		row.CompiledJobsPerSec = telemetry.Median(compJPS)
		row.CompiledP50Ms = telemetry.Median(compP50)
		row.CompiledP95Ms = telemetry.Median(compP95)
		row.Speedup = row.CompiledJobsPerSec / row.NaiveJobsPerSec
		row.SpreadPct = telemetry.SpreadPct(compJPS)
		art.Rows = append(art.Rows, row)
		if w.baseline {
			if w.noisy {
				art.SpeedupNoisy = row.Speedup
			} else {
				art.SpeedupNoiseless = row.Speedup
			}
		}
	}
	return art, nil
}
