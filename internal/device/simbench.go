package device

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/circuit"
)

// This file is the execution-engine bench harness behind BENCH_sim.json:
// it runs the same job stream through the naive per-shot loop
// (ExecuteNaive, the pre-engine baseline) and the compiled engine
// (Execute), and reports before/after jobs/s plus compiled-path latency
// quantiles. It is shared by the -sim.bench artifact test (the CI smoke
// gate) and `qhpcctl bench -sim`.

// NativeGHZLine builds a native-gate GHZ preparation along the grid's first
// row, qubits 0..n-1 (line connectivity), without the transpiler:
// H = RZ(pi) then PRX(pi/2, pi/2); CNOT(c,t) = H(t) CZ(c,t) H(t). It is the
// standard workload of the executor benches and equivalence tests.
func NativeGHZLine(n int) *circuit.Circuit {
	c := circuit.New(n, fmt.Sprintf("native-ghz-%d", n))
	h := func(q int) {
		c.RZ(q, math.Pi)
		c.PRX(q, math.Pi/2, math.Pi/2)
	}
	h(0)
	for q := 1; q < n; q++ {
		h(q)
		c.CZ(q-1, q)
		h(q)
	}
	return c
}

// SimBenchRow is one workload of the artifact: the naive (before) and
// compiled (after) numbers side by side.
type SimBenchRow struct {
	Name   string `json:"name"`
	Noisy  bool   `json:"noisy"`
	Qubits int    `json:"qubits"`
	Shots  int    `json:"shots"`
	Jobs   int    `json:"jobs"`

	NaiveJobsPerSec float64 `json:"naive_jobs_per_sec"`
	NaiveP50Ms      float64 `json:"naive_p50_ms"`
	NaiveP95Ms      float64 `json:"naive_p95_ms"`

	CompiledJobsPerSec float64 `json:"compiled_jobs_per_sec"`
	CompiledP50Ms      float64 `json:"compiled_p50_ms"`
	CompiledP95Ms      float64 `json:"compiled_p95_ms"`

	Speedup float64 `json:"speedup"`
}

// SimBenchArtifact is the BENCH_sim.json schema: the execution-engine perf
// record tracked across PRs.
type SimBenchArtifact struct {
	Harness          string        `json:"harness"`
	Workload         string        `json:"workload"`
	Rows             []SimBenchRow `json:"rows"`
	SpeedupNoiseless float64       `json:"speedup_noiseless"`
	SpeedupNoisy     float64       `json:"speedup_noisy"`
}

// SimBenchConfig sizes the harness. The zero value is replaced by defaults
// (the artifact configuration).
type SimBenchConfig struct {
	Qubits        int // GHZ width (default 5)
	NoiselessJobs int // jobs on the twin workload (default 64)
	NoisyJobs     int // jobs on the noisy workload (default 24)
	Shots         int // shots per job (default 200)
}

func (cfg *SimBenchConfig) fill() {
	if cfg.Qubits == 0 {
		cfg.Qubits = 5
	}
	if cfg.NoiselessJobs == 0 {
		cfg.NoiselessJobs = 64
	}
	if cfg.NoisyJobs == 0 {
		cfg.NoisyJobs = 24
	}
	if cfg.Shots == 0 {
		cfg.Shots = 200
	}
}

// executeFn abstracts the two paths under measurement.
type executeFn func(c *circuit.Circuit, shots int) (*Result, error)

// measure runs jobs sequential executions and returns throughput and
// latency quantiles (milliseconds).
func measure(fn executeFn, c *circuit.Circuit, shots, jobs int) (jobsPerSec, p50Ms, p95Ms float64, err error) {
	lat := make([]float64, 0, jobs)
	start := time.Now()
	for i := 0; i < jobs; i++ {
		jobStart := time.Now()
		if _, err := fn(c, shots); err != nil {
			return 0, 0, 0, err
		}
		lat = append(lat, float64(time.Since(jobStart).Microseconds())/1000)
	}
	elapsed := time.Since(start)
	sort.Float64s(lat)
	q := func(p float64) float64 { return lat[int(p*float64(len(lat)-1))] }
	return float64(jobs) / elapsed.Seconds(), q(0.50), q(0.95), nil
}

// RunSimBench measures the naive per-shot loop against the compiled engine
// on a noiseless (digital twin) and a noisy GHZ workload, and returns the
// artifact record.
func RunSimBench(cfg SimBenchConfig) (*SimBenchArtifact, error) {
	cfg.fill()
	ghz := NativeGHZLine(cfg.Qubits)
	art := &SimBenchArtifact{
		Harness: "go test ./internal/device -run TestSimBenchArtifact -sim.bench",
		Workload: fmt.Sprintf("GHZ(%d) x %d shots: %d noiseless jobs (twin), %d noisy jobs (fresh calibration)",
			cfg.Qubits, cfg.Shots, cfg.NoiselessJobs, cfg.NoisyJobs),
	}
	workloads := []struct {
		name  string
		noisy bool
		jobs  int
		mk    func(seed int64) *QPU
	}{
		{name: "noiseless-ghz", noisy: false, jobs: cfg.NoiselessJobs, mk: NewTwin20Q},
		{name: "noisy-ghz", noisy: true, jobs: cfg.NoisyJobs, mk: New20Q},
	}
	for _, w := range workloads {
		row := SimBenchRow{Name: w.name, Noisy: w.noisy, Qubits: cfg.Qubits, Shots: cfg.Shots, Jobs: w.jobs}
		var err error
		// Fresh devices per path so cache warmth and RNG draws stay
		// comparable; the same seed keeps the calibration identical.
		naive := w.mk(101)
		if row.NaiveJobsPerSec, row.NaiveP50Ms, row.NaiveP95Ms, err = measure(naive.ExecuteNaive, ghz, cfg.Shots, w.jobs); err != nil {
			return nil, fmt.Errorf("simbench %s naive: %w", w.name, err)
		}
		compiled := w.mk(101)
		if row.CompiledJobsPerSec, row.CompiledP50Ms, row.CompiledP95Ms, err = measure(compiled.Execute, ghz, cfg.Shots, w.jobs); err != nil {
			return nil, fmt.Errorf("simbench %s compiled: %w", w.name, err)
		}
		row.Speedup = row.CompiledJobsPerSec / row.NaiveJobsPerSec
		art.Rows = append(art.Rows, row)
		if w.noisy {
			art.SpeedupNoisy = row.Speedup
		} else {
			art.SpeedupNoiseless = row.Speedup
		}
	}
	return art, nil
}
