// Package device models the 20-qubit superconducting QPU: its square-grid
// topology with tunable couplers, the per-qubit and per-coupler calibration
// record, physically-motivated parameter drift (the reason quantum computers
// need regular recalibration, lesson 2 of the paper), and a circuit executor
// that turns the calibration record into gate noise on the state-vector
// simulator. A "digital twin" mode executes noiselessly, matching the
// emulator LRZ used for user onboarding (§4).
package device

import (
	"fmt"
	"sort"
)

// Topology is an undirected coupling graph over physical qubits.
type Topology struct {
	n     int
	edges map[[2]int]bool
	adj   map[int][]int
}

// NewTopology builds a topology over n qubits with the given edges.
func NewTopology(n int, edges [][2]int) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("device: topology needs at least one qubit")
	}
	t := &Topology{n: n, edges: make(map[[2]int]bool), adj: make(map[int][]int)}
	for _, e := range edges {
		a, b := e[0], e[1]
		if a < 0 || a >= n || b < 0 || b >= n {
			return nil, fmt.Errorf("device: edge (%d,%d) out of range [0,%d)", a, b, n)
		}
		if a == b {
			return nil, fmt.Errorf("device: self-loop on qubit %d", a)
		}
		key := edgeKey(a, b)
		if t.edges[key] {
			continue
		}
		t.edges[key] = true
		t.adj[a] = append(t.adj[a], b)
		t.adj[b] = append(t.adj[b], a)
	}
	for q := range t.adj {
		sort.Ints(t.adj[q])
	}
	return t, nil
}

// SquareGrid returns the rows x cols nearest-neighbour grid — the paper's
// QPU is 20 transmons "in a square grid topology, where tunable couplers
// mediate the connection between each qubit pair".
func SquareGrid(rows, cols int) *Topology {
	var edges [][2]int
	idx := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, [2]int{idx(r, c), idx(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, [2]int{idx(r, c), idx(r+1, c)})
			}
		}
	}
	t, err := NewTopology(rows*cols, edges)
	if err != nil {
		panic(err) // impossible for a well-formed grid
	}
	return t
}

func edgeKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// NumQubits returns the number of physical qubits.
func (t *Topology) NumQubits() int { return t.n }

// Connected reports whether qubits a and b share a coupler.
func (t *Topology) Connected(a, b int) bool { return t.edges[edgeKey(a, b)] }

// Neighbors returns the sorted neighbour list of q.
func (t *Topology) Neighbors(q int) []int { return t.adj[q] }

// Edges returns all coupler edges in deterministic order.
func (t *Topology) Edges() [][2]int {
	out := make([][2]int, 0, len(t.edges))
	for e := range t.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// ShortestPath returns a minimal-hop qubit path from a to b (inclusive), or
// an error if none exists. BFS with deterministic neighbour order.
func (t *Topology) ShortestPath(a, b int) ([]int, error) {
	if a < 0 || a >= t.n || b < 0 || b >= t.n {
		return nil, fmt.Errorf("device: path endpoints (%d,%d) out of range", a, b)
	}
	if a == b {
		return []int{a}, nil
	}
	prev := make(map[int]int, t.n)
	prev[a] = a
	queue := []int{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range t.adj[cur] {
			if _, seen := prev[nb]; seen {
				continue
			}
			prev[nb] = cur
			if nb == b {
				// Reconstruct.
				path := []int{b}
				for p := cur; ; p = prev[p] {
					path = append(path, p)
					if p == a {
						break
					}
				}
				// Reverse.
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path, nil
			}
			queue = append(queue, nb)
		}
	}
	return nil, fmt.Errorf("device: qubits %d and %d are not connected", a, b)
}

// Distance returns the hop count between a and b, or -1 if disconnected.
func (t *Topology) Distance(a, b int) int {
	p, err := t.ShortestPath(a, b)
	if err != nil {
		return -1
	}
	return len(p) - 1
}

// CouplingMap renders the topology in the per-qubit adjacency format users
// asked for during onboarding ("access to qubit coupling maps", §4).
func (t *Topology) CouplingMap() map[int][]int {
	out := make(map[int][]int, t.n)
	for q := 0; q < t.n; q++ {
		out[q] = append([]int(nil), t.adj[q]...)
	}
	return out
}
