package device

import (
	"testing"
	"testing/quick"
)

func TestSquareGrid4x5(t *testing.T) {
	g := SquareGrid(4, 5)
	if g.NumQubits() != 20 {
		t.Fatalf("qubits = %d, want 20", g.NumQubits())
	}
	// Grid edge count: rows*(cols-1) + (rows-1)*cols = 4*4 + 3*5 = 31.
	if got := len(g.Edges()); got != 31 {
		t.Errorf("edges = %d, want 31", got)
	}
	// Corner has 2 neighbours, centre has 4.
	if got := len(g.Neighbors(0)); got != 2 {
		t.Errorf("corner degree = %d, want 2", got)
	}
	if got := len(g.Neighbors(6)); got != 4 {
		t.Errorf("interior degree = %d, want 4", got)
	}
	if !g.Connected(0, 1) || !g.Connected(0, 5) {
		t.Error("expected corner connections (0,1) and (0,5)")
	}
	if g.Connected(0, 6) {
		t.Error("diagonal (0,6) should not be connected")
	}
	if g.Connected(4, 5) {
		t.Error("row wrap (4,5) should not be connected")
	}
}

func TestNewTopologyValidation(t *testing.T) {
	if _, err := NewTopology(0, nil); err == nil {
		t.Error("expected error for 0 qubits")
	}
	if _, err := NewTopology(3, [][2]int{{0, 3}}); err == nil {
		t.Error("expected error for out-of-range edge")
	}
	if _, err := NewTopology(3, [][2]int{{1, 1}}); err == nil {
		t.Error("expected error for self-loop")
	}
	// Duplicate edges collapse.
	topo, err := NewTopology(3, [][2]int{{0, 1}, {1, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(topo.Edges()); got != 1 {
		t.Errorf("duplicate edges not collapsed: %d", got)
	}
}

func TestShortestPath(t *testing.T) {
	g := SquareGrid(4, 5)
	p, err := g.ShortestPath(0, 19)
	if err != nil {
		t.Fatal(err)
	}
	// Manhattan distance from (0,0) to (3,4) is 7 -> path length 8.
	if len(p) != 8 {
		t.Errorf("path length = %d, want 8 (%v)", len(p), p)
	}
	if p[0] != 0 || p[len(p)-1] != 19 {
		t.Errorf("path endpoints wrong: %v", p)
	}
	for i := 1; i < len(p); i++ {
		if !g.Connected(p[i-1], p[i]) {
			t.Errorf("path step %d-%d not an edge", p[i-1], p[i])
		}
	}
	self, err := g.ShortestPath(7, 7)
	if err != nil || len(self) != 1 {
		t.Errorf("self path = %v, %v", self, err)
	}
	if _, err := g.ShortestPath(-1, 5); err == nil {
		t.Error("expected range error")
	}
}

func TestShortestPathDisconnected(t *testing.T) {
	topo, err := NewTopology(4, [][2]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.ShortestPath(0, 3); err == nil {
		t.Error("expected error for disconnected components")
	}
	if d := topo.Distance(0, 3); d != -1 {
		t.Errorf("disconnected distance = %d, want -1", d)
	}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	g := SquareGrid(4, 5)
	f := func(a, b uint8) bool {
		x, y := int(a)%20, int(b)%20
		return g.Distance(x, y) == g.Distance(y, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceMatchesManhattanOnGrid(t *testing.T) {
	g := SquareGrid(4, 5)
	abs := func(x int) int {
		if x < 0 {
			return -x
		}
		return x
	}
	for a := 0; a < 20; a++ {
		for b := 0; b < 20; b++ {
			ra, ca := a/5, a%5
			rb, cb := b/5, b%5
			want := abs(ra-rb) + abs(ca-cb)
			if got := g.Distance(a, b); got != want {
				t.Fatalf("distance(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestCouplingMap(t *testing.T) {
	g := SquareGrid(2, 2)
	cm := g.CouplingMap()
	if len(cm) != 4 {
		t.Fatalf("coupling map size = %d", len(cm))
	}
	if len(cm[0]) != 2 {
		t.Errorf("qubit 0 neighbours = %v", cm[0])
	}
	// Mutating the returned map must not affect the topology.
	cm[0][0] = 99
	if g.Neighbors(0)[0] == 99 {
		t.Error("CouplingMap leaks internal slices")
	}
}
