package dsp

import "math"

// Acoustic reference pressure in pascal: 20 µPa, the standard 0 dB SPL point.
const RefPressurePa = 20e-6

// AWeight returns the A-weighting gain (linear, not dB) at frequency f in
// hertz, per IEC 61672-1. A-weighting models the ear's reduced sensitivity at
// low and very high frequencies; the Table 1 sound-pressure criterion
// (< 80 dBA over 20 Hz – 20 kHz) is expressed in A-weighted decibels.
func AWeight(f float64) float64 {
	if f <= 0 {
		return 0
	}
	f2 := f * f
	num := 12194.0 * 12194.0 * f2 * f2
	den := (f2 + 20.6*20.6) *
		math.Sqrt((f2+107.7*107.7)*(f2+737.9*737.9)) *
		(f2 + 12194.0*12194.0)
	ra := num / den
	// Normalize so the gain is exactly 1 (0 dB) at 1 kHz.
	return ra / aWeightRef
}

// aWeightRef is R_A(1000 Hz), computed once so AWeight(1000) == 1.
var aWeightRef = func() float64 {
	f := 1000.0
	f2 := f * f
	num := 12194.0 * 12194.0 * f2 * f2
	den := (f2 + 20.6*20.6) *
		math.Sqrt((f2+107.7*107.7)*(f2+737.9*737.9)) *
		(f2 + 12194.0*12194.0)
	return num / den
}()

// AWeightDB returns the A-weighting in decibels at frequency f.
func AWeightDB(f float64) float64 {
	w := AWeight(f)
	if w <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(w)
}

// SoundLevelDBA computes the A-weighted sound pressure level, in dBA, of a
// pressure signal (in pascal) sampled at sampleRate Hz, integrated over
// [loHz, hiHz]. Each spectral bin is weighted by the A-curve and the weighted
// RMS pressure is referenced to 20 µPa.
func SoundLevelDBA(pressure []float64, sampleRate, loHz, hiHz float64) (float64, error) {
	spec, err := AmplitudeSpectrum(pressure, sampleRate, Hann)
	if err != nil {
		return 0, err
	}
	if hiHz < loHz {
		loHz, hiHz = hiHz, loHz
	}
	sumSq := 0.0
	for i, f := range spec.Freqs {
		if f < loHz || f > hiHz {
			continue
		}
		rms := spec.Amplitude[i] / math.Sqrt2 * AWeight(f)
		sumSq += rms * rms
	}
	sumSq /= spec.ENBW()
	if sumSq == 0 {
		return math.Inf(-1), nil
	}
	return 20 * math.Log10(math.Sqrt(sumSq)/RefPressurePa), nil
}

// SPLToPa converts an (unweighted) sound pressure level in dB SPL to an RMS
// pressure amplitude in pascal. Useful for synthesizing acoustic test
// signals with known levels.
func SPLToPa(db float64) float64 {
	return RefPressurePa * math.Pow(10, db/20)
}

// PaToSPL converts an RMS pressure in pascal to dB SPL.
func PaToSPL(pa float64) float64 {
	if pa <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(pa/RefPressurePa)
}
