package dsp

import (
	"math"
	"testing"
)

func TestAWeightUnityAt1kHz(t *testing.T) {
	if got := AWeight(1000); math.Abs(got-1) > 1e-12 {
		t.Errorf("AWeight(1000) = %g, want 1", got)
	}
	if got := AWeightDB(1000); math.Abs(got) > 1e-10 {
		t.Errorf("AWeightDB(1000) = %g, want 0", got)
	}
}

// Published IEC 61672-1 A-weighting values at standard frequencies.
func TestAWeightMatchesStandardTable(t *testing.T) {
	cases := map[float64]float64{
		31.5:  -39.4,
		63:    -26.2,
		125:   -16.1,
		250:   -8.6,
		500:   -3.2,
		2000:  1.2,
		4000:  1.0,
		8000:  -1.1,
		16000: -6.6,
	}
	for f, wantDB := range cases {
		got := AWeightDB(f)
		if math.Abs(got-wantDB) > 0.3 {
			t.Errorf("AWeightDB(%g) = %.2f dB, want %.1f ± 0.3", f, got, wantDB)
		}
	}
}

func TestAWeightNonPositiveFrequency(t *testing.T) {
	if AWeight(0) != 0 {
		t.Error("AWeight(0) should be 0")
	}
	if AWeight(-100) != 0 {
		t.Error("AWeight(-100) should be 0")
	}
	if !math.IsInf(AWeightDB(0), -1) {
		t.Error("AWeightDB(0) should be -Inf")
	}
}

func TestSPLRoundTrip(t *testing.T) {
	for _, db := range []float64{0, 40, 80, 94, 120} {
		pa := SPLToPa(db)
		back := PaToSPL(pa)
		if math.Abs(back-db) > 1e-9 {
			t.Errorf("SPL round trip %g -> %g", db, back)
		}
	}
	if !math.IsInf(PaToSPL(0), -1) {
		t.Error("PaToSPL(0) should be -Inf")
	}
}

func TestSoundLevelDBAOf1kHzTone(t *testing.T) {
	// A 1 kHz tone's dBA equals its dB SPL since A-weighting is 0 dB there.
	const (
		rate = 48000.0
		n    = 1 << 16
		spl  = 70.0
	)
	rms := SPLToPa(spl)
	amp := rms * math.Sqrt2
	sig := makeTone(n, rate, 1000, amp)
	got, err := SoundLevelDBA(sig, rate, 20, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-spl) > 0.5 {
		t.Errorf("1 kHz tone dBA = %.2f, want ~%.1f", got, spl)
	}
}

func TestSoundLevelDBADiscountsLowFrequency(t *testing.T) {
	// A 63 Hz tone should read ~26 dB below its SPL after A-weighting.
	const (
		rate = 8192.0
		n    = 1 << 16
		spl  = 80.0
	)
	amp := SPLToPa(spl) * math.Sqrt2
	sig := makeTone(n, rate, 63, amp)
	got, err := SoundLevelDBA(sig, rate, 20, 4000)
	if err != nil {
		t.Fatal(err)
	}
	want := spl - 26.2
	if math.Abs(got-want) > 1.5 {
		t.Errorf("63 Hz tone dBA = %.2f, want ~%.1f", got, want)
	}
}

func TestSoundLevelDBASilence(t *testing.T) {
	sig := make([]float64, 4096)
	got, err := SoundLevelDBA(sig, 8000, 20, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, -1) {
		t.Errorf("silence should be -Inf dBA, got %g", got)
	}
}
