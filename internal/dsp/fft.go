// Package dsp provides the signal-processing primitives used by the site
// survey toolkit: FFT, amplitude/power spectra, window functions, band-limited
// RMS integration, A-weighting for acoustic measurements, and Welch PSD
// estimation. Everything is stdlib-only and allocation-conscious so the
// survey analyses and their benchmarks stay cheap.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// NextPowerOfTwo returns the smallest power of two >= n. It panics for n <= 0.
func NextPowerOfTwo(n int) int {
	if n <= 0 {
		panic("dsp: NextPowerOfTwo requires n > 0")
	}
	if IsPowerOfTwo(n) {
		return n
	}
	return 1 << bits.Len(uint(n))
}

// FFT computes the in-place radix-2 decimation-in-time fast Fourier transform
// of x. len(x) must be a power of two. The transform is unnormalized: applying
// FFT followed by IFFT returns the original sequence.
func FFT(x []complex128) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if !IsPowerOfTwo(n) {
		return fmt.Errorf("dsp: FFT length %d is not a power of two", n)
	}
	bitReverse(x)
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := -2 * math.Pi / float64(size)
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				angle := step * float64(k)
				w := cmplx.Rect(1, angle)
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
	return nil
}

// IFFT computes the inverse FFT of x in place, including the 1/n
// normalization. len(x) must be a power of two.
func IFFT(x []complex128) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	if err := FFT(x); err != nil {
		return err
	}
	inv := complex(1/float64(n), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * inv
	}
	return nil
}

// bitReverse permutes x into bit-reversed index order.
func bitReverse(x []complex128) {
	n := len(x)
	shift := 64 - uint(bits.Len(uint(n-1)))
	if n < 2 {
		return
	}
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
}

// FFTReal transforms a real-valued signal, zero-padding it to the next power
// of two, and returns the complex spectrum. The input slice is not modified.
func FFTReal(signal []float64) ([]complex128, error) {
	if len(signal) == 0 {
		return nil, nil
	}
	n := NextPowerOfTwo(len(signal))
	buf := make([]complex128, n)
	for i, v := range signal {
		buf[i] = complex(v, 0)
	}
	if err := FFT(buf); err != nil {
		return nil, err
	}
	return buf, nil
}
