package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsPowerOfTwo(t *testing.T) {
	cases := map[int]bool{
		-4: false, 0: false, 1: true, 2: true, 3: false,
		4: true, 1024: true, 1023: false, 1 << 20: true,
	}
	for n, want := range cases {
		if got := IsPowerOfTwo(n); got != want {
			t.Errorf("IsPowerOfTwo(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 8: 8, 1000: 1024}
	for n, want := range cases {
		if got := NextPowerOfTwo(n); got != want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestNextPowerOfTwoPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n <= 0")
		}
	}()
	NextPowerOfTwo(0)
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	x := make([]complex128, 3)
	if err := FFT(x); err == nil {
		t.Fatal("expected error for length-3 FFT")
	}
}

func TestFFTKnownDC(t *testing.T) {
	x := []complex128{1, 1, 1, 1}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	want := []complex128{4, 0, 0, 0}
	for i := range x {
		if cmplx.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("bin %d = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestFFTKnownImpulse(t *testing.T) {
	x := make([]complex128, 8)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-1) > 1e-12 {
			t.Errorf("impulse spectrum bin %d = %v, want 1", i, x[i])
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	const n = 256
	x := make([]complex128, n)
	k := 17 // bin index of the tone
	for i := 0; i < n; i++ {
		x[i] = complex(math.Cos(2*math.Pi*float64(k)*float64(i)/n), 0)
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	// Cosine splits into bins k and n-k, each with magnitude n/2.
	for i := 0; i < n; i++ {
		mag := cmplx.Abs(x[i])
		if i == k || i == n-k {
			if math.Abs(mag-n/2) > 1e-9 {
				t.Errorf("bin %d magnitude %g, want %g", i, mag, float64(n/2))
			}
		} else if mag > 1e-9 {
			t.Errorf("bin %d magnitude %g, want ~0", i, mag)
		}
	}
}

func TestFFTIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 64, 1024} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		if err := FFT(x); err != nil {
			t.Fatal(err)
		}
		if err := IFFT(x); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				t.Fatalf("n=%d round trip mismatch at %d: %v vs %v", n, i, x[i], orig[i])
			}
		}
	}
}

// Parseval's theorem is an invariant of any correct DFT: signal energy equals
// spectrum energy / n.
func TestFFTParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(9)) // 2..1024
		x := make([]complex128, n)
		timeEnergy := 0.0
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			timeEnergy += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		if err := FFT(x); err != nil {
			return false
		}
		freqEnergy := 0.0
		for i := range x {
			freqEnergy += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		freqEnergy /= float64(n)
		return math.Abs(timeEnergy-freqEnergy) < 1e-6*math.Max(1, timeEnergy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// FFT linearity: FFT(a*x + b*y) == a*FFT(x) + b*FFT(y).
func TestFFTLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64
		a := complex(rng.NormFloat64(), 0)
		b := complex(rng.NormFloat64(), 0)
		x := make([]complex128, n)
		y := make([]complex128, n)
		sum := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			y[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			sum[i] = a*x[i] + b*y[i]
		}
		if FFT(x) != nil || FFT(y) != nil || FFT(sum) != nil {
			return false
		}
		for i := range sum {
			if cmplx.Abs(sum[i]-(a*x[i]+b*y[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTRealPadsToPowerOfTwo(t *testing.T) {
	sig := make([]float64, 100)
	spec, err := FFTReal(sig)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec) != 128 {
		t.Fatalf("got length %d, want 128", len(spec))
	}
}

func TestFFTEmptyIsNoop(t *testing.T) {
	if err := FFT(nil); err != nil {
		t.Fatal(err)
	}
	if err := IFFT(nil); err != nil {
		t.Fatal(err)
	}
	spec, err := FFTReal(nil)
	if err != nil || spec != nil {
		t.Fatalf("FFTReal(nil) = %v, %v; want nil, nil", spec, err)
	}
}

func BenchmarkFFT1024(b *testing.B) {
	x := make([]complex128, 1024)
	rng := rand.New(rand.NewSource(7))
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FFT(x)
	}
}
