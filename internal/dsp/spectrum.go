package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Spectrum is a one-sided amplitude spectrum of a real signal: Amplitude[i]
// is the peak amplitude of the sinusoidal component at Freqs[i] hertz.
type Spectrum struct {
	Freqs     []float64 // bin center frequencies, Hz
	Amplitude []float64 // peak amplitude per bin, signal units
	df        float64   // bin width, Hz
	enbw      float64   // window equivalent noise bandwidth, bins
}

// BinWidth returns the frequency resolution of the spectrum in hertz.
func (s *Spectrum) BinWidth() float64 { return s.df }

// ENBW returns the equivalent noise bandwidth of the analysis window in
// bins (1.0 for rectangular, 1.5 for Hann). Band-power sums across bins must
// be divided by this factor to avoid double-counting spectral leakage.
func (s *Spectrum) ENBW() float64 { return s.enbw }

// AmplitudeSpectrum computes the one-sided amplitude spectrum of signal
// sampled at sampleRate Hz, using the supplied window (nil means rectangular).
// Amplitudes are corrected for the window's coherent gain so that a pure
// sinusoid of amplitude A reports approximately A at its bin.
func AmplitudeSpectrum(signal []float64, sampleRate float64, w Window) (*Spectrum, error) {
	if len(signal) == 0 {
		return nil, fmt.Errorf("dsp: empty signal")
	}
	if sampleRate <= 0 {
		return nil, fmt.Errorf("dsp: sample rate must be positive, got %g", sampleRate)
	}
	n := len(signal)
	work := make([]float64, n)
	copy(work, signal)
	gain, enbw := 1.0, 1.0
	if w != nil {
		gain, enbw = applyWindow(work, w)
	}
	spec, err := FFTReal(work)
	if err != nil {
		return nil, err
	}
	m := len(spec)
	half := m/2 + 1
	out := &Spectrum{
		Freqs:     make([]float64, half),
		Amplitude: make([]float64, half),
		df:        sampleRate / float64(m),
		enbw:      enbw,
	}
	for i := 0; i < half; i++ {
		out.Freqs[i] = float64(i) * out.df
		mag := cmplx.Abs(spec[i]) / float64(n) / gain
		if i != 0 && i != m/2 {
			mag *= 2 // fold negative frequencies into the one-sided spectrum
		}
		out.Amplitude[i] = mag
	}
	return out, nil
}

// BandRMS integrates the spectrum between loHz and hiHz (inclusive) and
// returns the RMS value of the signal content in that band. Peak amplitudes
// are converted to RMS per-bin (A/sqrt2) and combined in quadrature.
func (s *Spectrum) BandRMS(loHz, hiHz float64) float64 {
	if hiHz < loHz {
		loHz, hiHz = hiHz, loHz
	}
	sumSq := 0.0
	for i, f := range s.Freqs {
		if f < loHz || f > hiHz {
			continue
		}
		rms := s.Amplitude[i] / math.Sqrt2
		sumSq += rms * rms
	}
	return math.Sqrt(sumSq / s.enbwOr1())
}

func (s *Spectrum) enbwOr1() float64 {
	if s.enbw > 0 {
		return s.enbw
	}
	return 1
}

// PeakInBand returns the largest per-bin peak amplitude between loHz and hiHz
// and the frequency at which it occurs. If the band contains no bins it
// returns (0, 0).
func (s *Spectrum) PeakInBand(loHz, hiHz float64) (amp, freq float64) {
	if hiHz < loHz {
		loHz, hiHz = hiHz, loHz
	}
	for i, f := range s.Freqs {
		if f < loHz || f > hiHz {
			continue
		}
		if s.Amplitude[i] > amp {
			amp = s.Amplitude[i]
			freq = f
		}
	}
	return amp, freq
}

// PeakToPeakInBand returns the worst-case peak-to-peak amplitude (2x the
// largest bin peak) in the band, matching the "peak-to-peak spectrum
// amplitude" acceptance criterion used for AC magnetic fields in Table 1.
func (s *Spectrum) PeakToPeakInBand(loHz, hiHz float64) float64 {
	amp, _ := s.PeakInBand(loHz, hiHz)
	return 2 * amp
}

// WelchPSD estimates the power spectral density of signal using Welch's
// method: the signal is split into segments of segLen samples with 50%
// overlap, each segment is windowed, and the squared spectra are averaged.
// The returned PSD has units of signal²/Hz. segLen is rounded up to a power
// of two.
func WelchPSD(signal []float64, sampleRate float64, segLen int, w Window) (freqs, psd []float64, err error) {
	if len(signal) == 0 {
		return nil, nil, fmt.Errorf("dsp: empty signal")
	}
	if segLen <= 1 {
		return nil, nil, fmt.Errorf("dsp: segment length must be > 1, got %d", segLen)
	}
	if sampleRate <= 0 {
		return nil, nil, fmt.Errorf("dsp: sample rate must be positive, got %g", sampleRate)
	}
	segLen = NextPowerOfTwo(segLen)
	if segLen > len(signal) {
		segLen = NextPowerOfTwo(len(signal)) / 2
		if segLen < 2 {
			segLen = 2
		}
	}
	hop := segLen / 2
	half := segLen/2 + 1
	freqs = make([]float64, half)
	psd = make([]float64, half)
	df := sampleRate / float64(segLen)
	for i := range freqs {
		freqs[i] = float64(i) * df
	}

	// Window energy term for PSD normalization: sum of w[k]^2.
	winSq := 0.0
	wvals := make([]float64, segLen)
	for k := 0; k < segLen; k++ {
		v := 1.0
		if w != nil {
			v = w(k, segLen)
		}
		wvals[k] = v
		winSq += v * v
	}

	seg := make([]complex128, segLen)
	count := 0
	for start := 0; start+segLen <= len(signal); start += hop {
		for k := 0; k < segLen; k++ {
			seg[k] = complex(signal[start+k]*wvals[k], 0)
		}
		if err := FFT(seg); err != nil {
			return nil, nil, err
		}
		for i := 0; i < half; i++ {
			mag2 := real(seg[i])*real(seg[i]) + imag(seg[i])*imag(seg[i])
			scale := 1.0
			if i != 0 && i != segLen/2 {
				scale = 2
			}
			psd[i] += scale * mag2 / (sampleRate * winSq)
		}
		count++
	}
	if count == 0 {
		return nil, nil, fmt.Errorf("dsp: signal shorter than one segment (%d < %d)", len(signal), segLen)
	}
	for i := range psd {
		psd[i] /= float64(count)
	}
	return freqs, psd, nil
}
