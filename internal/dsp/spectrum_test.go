package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// makeTone returns n samples of amplitude*sin(2π f t) sampled at rate Hz.
func makeTone(n int, rate, freq, amplitude float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = amplitude * math.Sin(2*math.Pi*freq*float64(i)/rate)
	}
	return out
}

func TestAmplitudeSpectrumRecoversToneAmplitude(t *testing.T) {
	const (
		rate = 1024.0
		n    = 4096
		freq = 64.0 // exactly on a bin
		amp  = 2.5
	)
	sig := makeTone(n, rate, freq, amp)
	spec, err := AmplitudeSpectrum(sig, rate, Hann)
	if err != nil {
		t.Fatal(err)
	}
	got, f := spec.PeakInBand(freq-2, freq+2)
	if math.Abs(f-freq) > spec.BinWidth() {
		t.Errorf("peak at %g Hz, want %g", f, freq)
	}
	if math.Abs(got-amp) > 0.05*amp {
		t.Errorf("peak amplitude %g, want ~%g", got, amp)
	}
}

func TestAmplitudeSpectrumRectangularWindow(t *testing.T) {
	const (
		rate = 512.0
		n    = 512
		freq = 32.0
		amp  = 1.0
	)
	sig := makeTone(n, rate, freq, amp)
	spec, err := AmplitudeSpectrum(sig, rate, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := spec.PeakInBand(freq-1, freq+1)
	if math.Abs(got-amp) > 1e-6 {
		t.Errorf("on-bin rectangular amplitude %g, want %g", got, amp)
	}
}

func TestAmplitudeSpectrumErrors(t *testing.T) {
	if _, err := AmplitudeSpectrum(nil, 100, nil); err == nil {
		t.Error("expected error for empty signal")
	}
	if _, err := AmplitudeSpectrum([]float64{1}, 0, nil); err == nil {
		t.Error("expected error for zero sample rate")
	}
	if _, err := AmplitudeSpectrum([]float64{1}, -5, nil); err == nil {
		t.Error("expected error for negative sample rate")
	}
}

func TestBandRMSMatchesTimeDomainRMS(t *testing.T) {
	const (
		rate = 2048.0
		n    = 8192
		freq = 100.0
		amp  = 3.0
	)
	sig := makeTone(n, rate, freq, amp)
	spec, err := AmplitudeSpectrum(sig, rate, Hann)
	if err != nil {
		t.Fatal(err)
	}
	wantRMS := amp / math.Sqrt2
	got := spec.BandRMS(1, rate/2)
	if math.Abs(got-wantRMS) > 0.05*wantRMS {
		t.Errorf("band RMS %g, want ~%g", got, wantRMS)
	}
	// The band excluding the tone should hold almost nothing.
	if out := spec.BandRMS(200, 500); out > 0.05*wantRMS {
		t.Errorf("out-of-band RMS %g, want ~0", out)
	}
}

func TestBandRMSSwapsBounds(t *testing.T) {
	sig := makeTone(2048, 1024, 64, 1)
	spec, err := AmplitudeSpectrum(sig, 1024, Hann)
	if err != nil {
		t.Fatal(err)
	}
	a := spec.BandRMS(10, 500)
	b := spec.BandRMS(500, 10)
	if a != b {
		t.Errorf("BandRMS not symmetric in bounds: %g vs %g", a, b)
	}
}

func TestPeakToPeakInBand(t *testing.T) {
	sig := makeTone(4096, 1024, 50, 0.7)
	spec, err := AmplitudeSpectrum(sig, 1024, Hann)
	if err != nil {
		t.Fatal(err)
	}
	pp := spec.PeakToPeakInBand(5, 1000)
	if math.Abs(pp-1.4) > 0.1 {
		t.Errorf("peak-to-peak %g, want ~1.4", pp)
	}
}

func TestMultiToneSeparation(t *testing.T) {
	const rate, n = 4096.0, 16384
	sig := make([]float64, n)
	tones := map[float64]float64{50: 1.0, 150: 0.5, 1000: 0.25}
	for f, a := range tones {
		for i := range sig {
			sig[i] += a * math.Sin(2*math.Pi*f*float64(i)/rate)
		}
	}
	spec, err := AmplitudeSpectrum(sig, rate, Hann)
	if err != nil {
		t.Fatal(err)
	}
	for f, a := range tones {
		got, _ := spec.PeakInBand(f-5, f+5)
		if math.Abs(got-a) > 0.05*a {
			t.Errorf("tone %g Hz amplitude %g, want ~%g", f, got, a)
		}
	}
}

func TestWelchPSDWhiteNoiseIsFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const rate = 1000.0
	sig := make([]float64, 65536)
	sigma := 1.0
	for i := range sig {
		sig[i] = rng.NormFloat64() * sigma
	}
	freqs, psd, err := WelchPSD(sig, rate, 1024, Hann)
	if err != nil {
		t.Fatal(err)
	}
	// White noise PSD should be ~ sigma^2 / (rate/2) per Hz (one-sided).
	want := sigma * sigma / (rate / 2)
	// Average over the mid-band to avoid DC/Nyquist edge effects.
	sum, count := 0.0, 0
	for i, f := range freqs {
		if f < 50 || f > 450 {
			continue
		}
		sum += psd[i]
		count++
	}
	got := sum / float64(count)
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("white-noise PSD level %g, want ~%g", got, want)
	}
}

func TestWelchPSDErrors(t *testing.T) {
	if _, _, err := WelchPSD(nil, 100, 64, Hann); err == nil {
		t.Error("expected error for empty signal")
	}
	if _, _, err := WelchPSD([]float64{1, 2}, 100, 1, Hann); err == nil {
		t.Error("expected error for segLen <= 1")
	}
	if _, _, err := WelchPSD([]float64{1, 2, 3}, 0, 64, Hann); err == nil {
		t.Error("expected error for bad sample rate")
	}
}

func TestWindowsAreBoundedAndSymmetric(t *testing.T) {
	for name, w := range map[string]Window{
		"rect": Rectangular, "hann": Hann, "hamming": Hamming, "blackman": Blackman,
	} {
		const n = 129
		for k := 0; k < n; k++ {
			v := w(k, n)
			if v < -1e-12 || v > 1+1e-12 {
				t.Errorf("%s window value %g at %d out of [0,1]", name, v, k)
			}
			mirror := w(n-1-k, n)
			if math.Abs(v-mirror) > 1e-12 {
				t.Errorf("%s window asymmetric at %d: %g vs %g", name, k, v, mirror)
			}
		}
		if w(0, 1) != 1 {
			t.Errorf("%s window degenerate n=1 should be 1", name)
		}
	}
}
