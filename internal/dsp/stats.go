package dsp

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// RMS returns the root-mean-square of x, or 0 for an empty slice.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s / float64(len(x)))
}

// StdDev returns the population standard deviation of x.
func StdDev(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	s := 0.0
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)))
}

// MinMax returns the smallest and largest values in x. It returns (0, 0) for
// an empty slice.
func MinMax(x []float64) (min, max float64) {
	if len(x) == 0 {
		return 0, 0
	}
	min, max = x[0], x[0]
	for _, v := range x[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// PeakToPeak returns max(x) - min(x).
func PeakToPeak(x []float64) float64 {
	min, max := MinMax(x)
	return max - min
}

// Percentile returns the p-th percentile (0 <= p <= 100) of x using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(x []float64, p float64) float64 {
	if len(x) == 0 {
		return 0
	}
	sorted := make([]float64, len(x))
	copy(sorted, x)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MaxExcursionWithin returns the largest |x[i] - ref| observed in x.
// Used for the ΔT < ±1 °C around a set point criterion.
func MaxExcursionWithin(x []float64, ref float64) float64 {
	worst := 0.0
	for _, v := range x {
		if d := math.Abs(v - ref); d > worst {
			worst = d
		}
	}
	return worst
}

// MaxDriftOverWindow returns the largest peak-to-peak change of x within any
// sliding window of w samples. Used for the ΔT < 1 °C per 24 h ambient
// stability requirement (§2.3). If w >= len(x) the whole-series peak-to-peak
// is returned.
func MaxDriftOverWindow(x []float64, w int) float64 {
	if len(x) == 0 || w <= 1 {
		return 0
	}
	if w >= len(x) {
		return PeakToPeak(x)
	}
	// Monotonic deques for sliding-window min and max in O(n).
	worst := 0.0
	maxDQ := make([]int, 0, w)
	minDQ := make([]int, 0, w)
	for i := range x {
		for len(maxDQ) > 0 && x[maxDQ[len(maxDQ)-1]] <= x[i] {
			maxDQ = maxDQ[:len(maxDQ)-1]
		}
		maxDQ = append(maxDQ, i)
		for len(minDQ) > 0 && x[minDQ[len(minDQ)-1]] >= x[i] {
			minDQ = minDQ[:len(minDQ)-1]
		}
		minDQ = append(minDQ, i)
		if maxDQ[0] <= i-w {
			maxDQ = maxDQ[1:]
		}
		if minDQ[0] <= i-w {
			minDQ = minDQ[1:]
		}
		if i >= w-1 {
			if span := x[maxDQ[0]] - x[minDQ[0]]; span > worst {
				worst = span
			}
		}
	}
	return worst
}
