package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanRMSStdDev(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := Mean(x); got != 2.5 {
		t.Errorf("Mean = %g, want 2.5", got)
	}
	wantRMS := math.Sqrt((1 + 4 + 9 + 16) / 4.0)
	if got := RMS(x); math.Abs(got-wantRMS) > 1e-12 {
		t.Errorf("RMS = %g, want %g", got, wantRMS)
	}
	wantSD := math.Sqrt(1.25)
	if got := StdDev(x); math.Abs(got-wantSD) > 1e-12 {
		t.Errorf("StdDev = %g, want %g", got, wantSD)
	}
}

func TestEmptyStats(t *testing.T) {
	if Mean(nil) != 0 || RMS(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty-slice stats should be 0")
	}
	min, max := MinMax(nil)
	if min != 0 || max != 0 {
		t.Error("MinMax(nil) should be (0,0)")
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) should be 0")
	}
}

func TestMinMaxPeakToPeak(t *testing.T) {
	x := []float64{3, -1, 4, 1, 5, -9, 2, 6}
	min, max := MinMax(x)
	if min != -9 || max != 6 {
		t.Errorf("MinMax = (%g, %g), want (-9, 6)", min, max)
	}
	if got := PeakToPeak(x); got != 15 {
		t.Errorf("PeakToPeak = %g, want 15", got)
	}
}

func TestPercentile(t *testing.T) {
	x := []float64{10, 20, 30, 40, 50}
	cases := map[float64]float64{0: 10, 25: 20, 50: 30, 75: 40, 100: 50, 110: 50, -5: 10}
	for p, want := range cases {
		if got := Percentile(x, p); math.Abs(got-want) > 1e-12 {
			t.Errorf("Percentile(%g) = %g, want %g", p, got, want)
		}
	}
	// interpolation between ranks
	if got := Percentile([]float64{0, 10}, 50); got != 5 {
		t.Errorf("interpolated median = %g, want 5", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	x := []float64{5, 1, 3}
	Percentile(x, 50)
	if x[0] != 5 || x[1] != 1 || x[2] != 3 {
		t.Errorf("input mutated: %v", x)
	}
}

func TestMaxExcursionWithin(t *testing.T) {
	x := []float64{21.0, 21.5, 20.2, 22.3}
	if got := MaxExcursionWithin(x, 21.0); math.Abs(got-1.3) > 1e-12 {
		t.Errorf("excursion = %g, want 1.3", got)
	}
	if MaxExcursionWithin(nil, 0) != 0 {
		t.Error("empty excursion should be 0")
	}
}

func TestMaxDriftOverWindow(t *testing.T) {
	// Slow ramp: within any 3-sample window drift is 2 units.
	x := []float64{0, 1, 2, 3, 4, 5}
	if got := MaxDriftOverWindow(x, 3); got != 2 {
		t.Errorf("window drift = %g, want 2", got)
	}
	// Window larger than series -> global peak-to-peak.
	if got := MaxDriftOverWindow(x, 100); got != 5 {
		t.Errorf("oversized window drift = %g, want 5", got)
	}
	if MaxDriftOverWindow(x, 1) != 0 {
		t.Error("window of 1 should be 0 drift")
	}
	if MaxDriftOverWindow(nil, 5) != 0 {
		t.Error("empty series should be 0 drift")
	}
}

func TestMaxDriftOverWindowSpike(t *testing.T) {
	x := make([]float64, 100)
	x[50] = 10 // spike
	if got := MaxDriftOverWindow(x, 24); got != 10 {
		t.Errorf("spike drift = %g, want 10", got)
	}
}

// MaxDriftOverWindow must agree with a brute-force computation.
func TestMaxDriftOverWindowMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(200)
		w := 2 + rng.Intn(30)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := MaxDriftOverWindow(x, w)
		brute := 0.0
		for start := 0; start+w <= n; start++ {
			span := PeakToPeak(x[start : start+w])
			if span > brute {
				brute = span
			}
		}
		if w >= n {
			brute = PeakToPeak(x)
		}
		return math.Abs(got-brute) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// RMS^2 = Mean^2 + StdDev^2 (population) is a basic identity.
func TestRMSIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		lhs := RMS(x) * RMS(x)
		rhs := Mean(x)*Mean(x) + StdDev(x)*StdDev(x)
		return math.Abs(lhs-rhs) < 1e-8*math.Max(1, lhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
