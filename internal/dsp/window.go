package dsp

import "math"

// Window is a window function: it returns the weight for sample k of an
// n-sample window. Implementations must be symmetric and bounded by [0, 1].
type Window func(k, n int) float64

// Rectangular is the identity window (no tapering).
func Rectangular(k, n int) float64 { return 1 }

// Hann is the raised-cosine window, the default choice for spectral survey
// analysis: good sidelobe suppression with modest main-lobe widening.
func Hann(k, n int) float64 {
	if n <= 1 {
		return 1
	}
	return 0.5 * (1 - math.Cos(2*math.Pi*float64(k)/float64(n-1)))
}

// Hamming is the classic Hamming window.
func Hamming(k, n int) float64 {
	if n <= 1 {
		return 1
	}
	return 0.54 - 0.46*math.Cos(2*math.Pi*float64(k)/float64(n-1))
}

// Blackman is the three-term Blackman window with strong sidelobe rejection.
func Blackman(k, n int) float64 {
	if n <= 1 {
		return 1
	}
	x := 2 * math.Pi * float64(k) / float64(n-1)
	return 0.42 - 0.5*math.Cos(x) + 0.08*math.Cos(2*x)
}

// applyWindow multiplies x by the window in place and returns the coherent
// gain (mean window value, used to correct amplitude spectra) and the
// equivalent noise bandwidth in bins (n·Σw² / (Σw)², used to correct
// band-power sums).
func applyWindow(x []float64, w Window) (gain, enbw float64) {
	n := len(x)
	sum, sumSq := 0.0, 0.0
	for k := range x {
		v := w(k, n)
		x[k] *= v
		sum += v
		sumSq += v * v
	}
	if n == 0 || sum <= 0 {
		return 1, 1
	}
	gain = sum / float64(n)
	enbw = float64(n) * sumSq / (sum * sum)
	return gain, enbw
}
