package durable

// The durability cost harness: the fleet bench's single-device workload
// (GHZ jobs, 2 ms control-electronics round trip, 4 workers) run once
// without a store and once per WAL sync mode, interleaved so machine drift
// hits both sides equally. The "durability" section lands in
// BENCH_fleet.json next to the throughput rows, and the group-commit ratio
// is a release gate: if journaling every transition costs more than 10% of
// single-device throughput, the group-commit path has regressed.

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/qdmi"
	"repro/internal/qrm"
	"repro/internal/telemetry"
)

var (
	durableBench    = flag.Bool("durable.bench", false, "run the WAL cost bench and merge its section into the fleet artifact")
	durableBenchOut = flag.String("durable.bench.out", "BENCH_fleet.json", "fleet bench artifact to merge the durability section into")
)

type durabilityRow struct {
	Mode       string  `json:"mode"`
	Reruns     int     `json:"reruns"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	SpreadPct  float64 `json:"spread_pct"`
	// RatioToBaseline is this mode's median throughput over the storeless
	// baseline's; the group row gates the release at >= 0.90.
	RatioToBaseline float64 `json:"ratio_to_baseline"`
}

type durabilitySection struct {
	Harness string          `json:"harness"`
	Jobs    int             `json:"jobs"`
	Workers int             `json:"workers_per_device"`
	Rows    []durabilityRow `json:"rows"`
}

func TestDurabilityBenchArtifact(t *testing.T) {
	if !*durableBench {
		t.Skip("pass -durable.bench to run the WAL cost harness")
	}
	const (
		jobs        = 200
		workers     = 4
		execLatency = 2 * time.Millisecond
		reruns      = 3
	)
	circs := []*circuit.Circuit{circuit.GHZ(3), circuit.GHZ(4), circuit.GHZ(5), circuit.GHZ(6)}

	// One timed load against a fresh manager; mode "" means no store.
	runLoad := func(mode SyncMode) float64 {
		qpu, err := device.New(device.Config{Name: "bench-wal", Rows: 4, Cols: 5, Seed: 1, DigitalTwin: true})
		if err != nil {
			t.Fatal(err)
		}
		qpu.SetExecLatency(execLatency)
		m := qrm.NewManager(qdmi.NewDevice(qpu, nil))
		if mode != "" {
			st, _, err := Open(t.TempDir(), Options{Sync: mode})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			m.AttachStore(st)
		}
		if err := m.Start(workers); err != nil {
			t.Fatal(err)
		}
		defer m.Stop()

		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		start := time.Now()
		ids := make([]int, jobs)
		for i := 0; i < jobs; i++ {
			id, err := m.Submit(qrm.Request{Circuit: circs[i%len(circs)], Shots: 10, User: "bench-wal"})
			if err != nil {
				t.Fatal(err)
			}
			ids[i] = id
		}
		for _, id := range ids {
			j, err := m.AwaitTerminal(ctx, id)
			if err != nil {
				t.Fatal(err)
			}
			if j.Status != qrm.StatusDone {
				t.Fatalf("job %d ended %s: %s", id, j.Status, j.Error)
			}
		}
		return float64(jobs) / time.Since(start).Seconds()
	}

	modes := []SyncMode{"", SyncGroup, SyncAlways, SyncOff}
	samples := map[SyncMode][]float64{}
	for r := 0; r < reruns; r++ {
		for _, mode := range modes {
			samples[mode] = append(samples[mode], runLoad(mode))
		}
	}
	baseline := telemetry.Median(samples[""])
	label := func(mode SyncMode) string {
		if mode == "" {
			return "none (baseline)"
		}
		return string(mode)
	}
	section := durabilitySection{
		Harness: "go test ./internal/durable -run TestDurabilityBenchArtifact -durable.bench",
		Jobs:    jobs,
		Workers: workers,
	}
	var groupRatio float64
	for _, mode := range modes {
		row := durabilityRow{
			Mode:            label(mode),
			Reruns:          reruns,
			JobsPerSec:      telemetry.Median(samples[mode]),
			SpreadPct:       telemetry.SpreadPct(samples[mode]),
			RatioToBaseline: telemetry.Median(samples[mode]) / baseline,
		}
		if mode == SyncGroup {
			groupRatio = row.RatioToBaseline
		}
		section.Rows = append(section.Rows, row)
		t.Logf("wal=%-16s median %7.0f jobs/s over %d runs (spread %4.1f%%, %.2fx baseline)",
			row.Mode, row.JobsPerSec, reruns, row.SpreadPct, row.RatioToBaseline)
	}

	// Merge into the fleet artifact without disturbing its rows.
	art := map[string]interface{}{}
	if data, err := os.ReadFile(*durableBenchOut); err == nil {
		if err := json.Unmarshal(data, &art); err != nil {
			t.Fatalf("parsing %s: %v", *durableBenchOut, err)
		}
	}
	art["durability"] = section
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*durableBenchOut, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("merged durability section into %s", *durableBenchOut)

	// The release gate: group commit must keep >= 90% of storeless
	// throughput. (SyncAlways is allowed to cost more — that is its deal.)
	if groupRatio < 0.90 {
		t.Fatalf("wal-sync=group costs too much: %.2fx baseline, gate >= 0.90x", groupRatio)
	}
}
