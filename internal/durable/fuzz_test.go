package durable

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/qrm"
)

// FuzzWALReplay throws arbitrary bytes at the replay path as a journal
// segment: Open must never panic and must always come back writable,
// whatever garbage a crash (or a hostile disk) left behind. CI runs a
// short -fuzz smoke on top of the checked-in corpus below.
func FuzzWALReplay(f *testing.F) {
	// Seed corpus: a clean segment, its torn and bit-flipped variants, and
	// the degenerate shapes the frame reader branches on.
	var clean []byte
	clean = appendFrame(clean, 1, []byte(`Q{"job":{"id":1,"status":"queued"}}`))
	clean = appendFrame(clean, 2, []byte(`I{"key":"k","job_id":1}`))
	clean = appendFrame(clean, 3, []byte(`M{"snapshot_lsn":2}`))
	f.Add(clean)
	f.Add(clean[:len(clean)-5])
	flipped := append([]byte(nil), clean...)
	flipped[9] ^= 0xFF
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F}) // huge declared length, no body
	f.Add(appendFrame(nil, 7, nil))       // empty payload (no kind byte)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, rec, err := Open(dir, Options{Sync: SyncOff})
		if err != nil {
			// I/O errors are legal; panics and hangs are the bug class.
			return
		}
		for _, j := range rec.QRMJobs {
			if j == nil {
				t.Fatal("replay surfaced a nil job")
			}
		}
		// The store must stay writable after swallowing garbage.
		st.JournalQRMJob(&qrm.Job{ID: 999, Status: qrm.StatusQueued})
		if err := st.Close(); err != nil {
			t.Fatalf("close after garbage replay: %v", err)
		}
	})
}
