package durable

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/qrm"
)

// Record kinds: the first payload byte tags how the JSON body decodes.
const (
	recQRMJob   = 'Q' // qrmJobRecord — single-device manager job upsert
	recFleetJob = 'F' // fleetJobRecord — fleet scheduler job upsert
	recIdem     = 'I' // idemRecord — idempotency-key → job-ID binding
	recMeta     = 'M' // metaRecord — snapshot header
)

// qrmJobRecord wraps a manager job for the journal. SubmitUnixMs rides
// outside the job because the v1 wire shape excludes it (json:"-"): the
// dispatch deadline must keep its original budget across a restart without
// changing what GET /api/v1/jobs returns.
type qrmJobRecord struct {
	SubmitUnixMs int64    `json:"submit_unix_ms,omitempty"`
	Job          *qrm.Job `json:"job"`
}

type fleetJobRecord struct {
	SubmitUnixMs int64      `json:"submit_unix_ms,omitempty"`
	Job          *fleet.Job `json:"job"`
}

type idemRecord struct {
	Key   string `json:"key"`
	JobID int    `json:"job_id"`
}

type metaRecord struct {
	SnapshotLSN uint64 `json:"snapshot_lsn"`
	SavedUnixMs int64  `json:"saved_unix_ms"`
}

// Options parameterizes Open.
type Options struct {
	// Sync selects the fsync policy; empty defaults to SyncGroup.
	Sync SyncMode
}

// ReplayStats describes what startup recovery read from disk.
type ReplayStats struct {
	Records      int           `json:"records"`
	SkippedBytes int64         `json:"skipped_bytes,omitempty"` // torn/corrupt tail bytes ignored
	SnapshotLSN  uint64        `json:"snapshot_lsn"`
	Segments     int           `json:"segments"`
	Duration     time.Duration `json:"-"`
	DurationMs   float64       `json:"duration_ms"`
}

// RestoreOutcome is what the schedulers did with the recovered jobs; the
// store only learns it via NoteRestore (replay hands jobs over, the
// managers decide requeue vs. expire).
type RestoreOutcome struct {
	Terminal int `json:"terminal"`
	Requeued int `json:"requeued"`
	Expired  int `json:"expired"`
}

// Recovery is the materialized state Open rebuilt from snapshot + WAL,
// ready to hand to qrm.Manager.Restore / fleet.Scheduler.Restore and the
// mqss idempotency cache.
type Recovery struct {
	QRMJobs   []*qrm.Job
	FleetJobs []*fleet.Job
	Idem      map[string]int
	Stats     ReplayStats
}

// Stats is a point-in-time snapshot of store health for the admin endpoint
// and the qhpc_wal_* Prometheus families.
type Stats struct {
	Dir      string
	Mode     SyncMode
	LastLSN  uint64
	Durable  uint64
	Appends  uint64
	Fsyncs   uint64
	Bytes    uint64 // journal bytes written since open
	Segments int    // journal segment files on disk
	WALBytes int64  // journal + snapshot bytes on disk

	SnapshotLSN    uint64
	Compactions    uint64
	LastCompaction time.Time

	Replay   ReplayStats
	Restored RestoreOutcome
}

// Store is the crash-durable job store: a WAL of job-record upserts plus a
// last-write-wins materialized view that periodic compaction snapshots.
// One Store serves at most one scheduler (single-device manager or fleet)
// plus the mqss idempotency cache.
type Store struct {
	dir string
	w   *wal

	mu          sync.Mutex
	qrmJobs     map[int][]byte // latest journal payload per job, kind byte included
	fleetJobs   map[int][]byte
	idem        map[string]int
	abandoned   bool
	snapshotLSN uint64
	compactions uint64
	lastCompact time.Time
	replay      ReplayStats
	restored    RestoreOutcome
	dropped     uint64 // records lost to marshal failures (should be zero)
}

// Open replays snapshot-then-WAL from dir (creating it when missing) and
// returns the store with a fresh active segment plus everything the
// schedulers need to restore. Torn-tail handling: replay stops cleanly at
// the first short or corrupt record of a segment and continues with the
// next segment — new records always land in a fresh segment, so bytes after
// a torn tail can only be pre-crash garbage.
func Open(dir string, opts Options) (*Store, *Recovery, error) {
	mode := opts.Sync
	if mode == "" {
		mode = SyncGroup
	}
	if _, err := ParseSyncMode(string(mode)); err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durable: creating data dir: %w", err)
	}
	start := time.Now()
	s := &Store{
		dir:       dir,
		qrmJobs:   make(map[int][]byte),
		fleetJobs: make(map[int][]byte),
		idem:      make(map[string]int),
	}
	var lastLSN uint64
	apply := func(lsn uint64, payload []byte) {
		if lsn > lastLSN {
			lastLSN = lsn
		}
		s.replay.Records++
		s.applyPayload(payload)
	}
	if data, err := os.ReadFile(filepath.Join(dir, snapshotName)); err == nil {
		s.replay.SkippedBytes += readFrames(data, apply)
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("durable: reading snapshot: %w", err)
	}
	seqs, err := listSegments(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: listing WAL segments: %w", err)
	}
	s.replay.Segments = len(seqs)
	var maxSeq uint64
	for _, seq := range seqs {
		if seq > maxSeq {
			maxSeq = seq
		}
		data, err := os.ReadFile(filepath.Join(dir, segmentName(seq)))
		if err != nil {
			return nil, nil, fmt.Errorf("durable: reading WAL segment %d: %w", seq, err)
		}
		s.replay.SkippedBytes += readFrames(data, apply)
	}
	s.replay.SnapshotLSN = s.snapshotLSN
	s.replay.Duration = time.Since(start)
	s.replay.DurationMs = float64(s.replay.Duration.Microseconds()) / 1000

	w, err := openWAL(dir, mode, maxSeq+1, lastLSN)
	if err != nil {
		return nil, nil, err
	}
	s.w = w

	rec := &Recovery{Idem: make(map[string]int, len(s.idem)), Stats: s.replay}
	for k, v := range s.idem {
		rec.Idem[k] = v
	}
	for _, payload := range s.qrmJobs {
		var r qrmJobRecord
		if json.Unmarshal(payload[1:], &r) == nil && r.Job != nil {
			r.Job.SubmitUnixMs = r.SubmitUnixMs
			rec.QRMJobs = append(rec.QRMJobs, r.Job)
		}
	}
	for _, payload := range s.fleetJobs {
		var r fleetJobRecord
		if json.Unmarshal(payload[1:], &r) == nil && r.Job != nil {
			r.Job.SubmitUnixMs = r.SubmitUnixMs
			rec.FleetJobs = append(rec.FleetJobs, r.Job)
		}
	}
	return s, rec, nil
}

// applyPayload folds one journal record into the materialized view.
// Unknown kinds and undecodable bodies are skipped — replay never errors on
// record content, only framing decides where a segment ends.
func (s *Store) applyPayload(payload []byte) {
	if len(payload) == 0 {
		return
	}
	body := payload[1:]
	switch payload[0] {
	case recQRMJob:
		var r qrmJobRecord
		if json.Unmarshal(body, &r) == nil && r.Job != nil {
			s.qrmJobs[r.Job.ID] = append([]byte(nil), payload...)
		}
	case recFleetJob:
		var r fleetJobRecord
		if json.Unmarshal(body, &r) == nil && r.Job != nil {
			s.fleetJobs[r.Job.ID] = append([]byte(nil), payload...)
		}
	case recIdem:
		var r idemRecord
		if json.Unmarshal(body, &r) == nil && r.Key != "" {
			s.idem[r.Key] = r.JobID
		}
	case recMeta:
		var r metaRecord
		if json.Unmarshal(body, &r) == nil && r.SnapshotLSN > s.snapshotLSN {
			s.snapshotLSN = r.SnapshotLSN
		}
	}
}

// journal marshals, appends, and materializes one record under the store
// lock (LSN order therefore matches state order), returning the record's
// LSN for WaitDurable.
func (s *Store) journal(kind byte, rec interface{}, upsert func(payload []byte)) uint64 {
	body, err := json.Marshal(rec)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		// Every journaled type is plain data; a marshal failure is a bug,
		// not an operational condition. Count it and keep serving.
		s.dropped++
		if s.dropped == 1 {
			log.Printf("durable: dropping journal record: %v", err)
		}
		return s.w.lastLSNSnapshot()
	}
	if s.abandoned {
		return s.w.lastLSNSnapshot()
	}
	payload := make([]byte, 0, len(body)+1)
	payload = append(payload, kind)
	payload = append(payload, body...)
	lsn := s.w.append(payload)
	if upsert != nil {
		upsert(payload)
	}
	return lsn
}

// JournalQRMJob journals the current state of a single-device manager job.
// Implements qrm.JobStore.
func (s *Store) JournalQRMJob(j *qrm.Job) uint64 {
	return s.journal(recQRMJob, qrmJobRecord{SubmitUnixMs: j.SubmitUnixMs, Job: j},
		func(payload []byte) { s.qrmJobs[j.ID] = payload })
}

// JournalFleetJob journals the current state of a fleet job — placement,
// migrations, parking, and terminal results all flow through here.
// Implements fleet.JobStore.
func (s *Store) JournalFleetJob(j *fleet.Job) uint64 {
	return s.journal(recFleetJob, fleetJobRecord{SubmitUnixMs: j.SubmitUnixMs, Job: j},
		func(payload []byte) { s.fleetJobs[j.ID] = payload })
}

// JournalIdem journals an idempotency-key binding so replayed submissions
// dedup across a restart.
func (s *Store) JournalIdem(key string, jobID int) uint64 {
	return s.journal(recIdem, idemRecord{Key: key, JobID: jobID},
		func([]byte) { s.idem[key] = jobID })
}

// WaitDurable blocks until the record at lsn is on stable storage per the
// configured sync mode. The submission paths call it after releasing their
// scheduler lock and before acking the client.
func (s *Store) WaitDurable(lsn uint64) {
	if err := s.w.waitDurable(lsn); err != nil {
		log.Printf("durable: WAL write error; submissions are no longer durable: %v", err)
	}
}

// NoteRestore records what the schedulers did with the recovered jobs, for
// the admin endpoint and metrics.
func (s *Store) NoteRestore(terminal, requeued, expired int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.restored.Terminal += terminal
	s.restored.Requeued += requeued
	s.restored.Expired += expired
}

// Compact quiesces the WAL, writes the materialized view as an atomic
// fsync'd snapshot, and deletes the sealed journal segments it supersedes.
// Journaling is blocked for the duration (one file write + three fsyncs);
// with compaction on a minutes cadence that pause is noise.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.abandoned {
		return fmt.Errorf("durable: store abandoned")
	}
	if err := s.w.syncAll(); err != nil {
		return fmt.Errorf("durable: pre-compaction sync: %w", err)
	}
	snapLSN := s.w.lastLSNSnapshot()
	sealed, err := s.w.rotate()
	if err != nil {
		return err
	}

	buf := appendFrame(nil, snapLSN, metaPayload(snapLSN))
	for _, payload := range s.qrmJobs {
		buf = appendFrame(buf, snapLSN, payload)
	}
	for _, payload := range s.fleetJobs {
		buf = appendFrame(buf, snapLSN, payload)
	}
	for key, id := range s.idem {
		body, merr := json.Marshal(idemRecord{Key: key, JobID: id})
		if merr != nil {
			continue
		}
		buf = appendFrame(buf, snapLSN, append([]byte{recIdem}, body...))
	}
	if err := writeFileDurable(s.dir, snapshotName, buf); err != nil {
		return fmt.Errorf("durable: writing snapshot: %w", err)
	}

	// The snapshot now covers everything up to and including the sealed
	// segment; drop the journal prefix.
	seqs, err := listSegments(s.dir)
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		if seq <= sealed {
			if err := os.Remove(filepath.Join(s.dir, segmentName(seq))); err != nil {
				return err
			}
		}
	}
	if err := fsyncDir(s.dir); err != nil {
		return err
	}
	s.snapshotLSN = snapLSN
	s.compactions++
	s.lastCompact = time.Now()
	return nil
}

func metaPayload(snapLSN uint64) []byte {
	body, err := json.Marshal(metaRecord{SnapshotLSN: snapLSN, SavedUnixMs: time.Now().UnixMilli()})
	if err != nil {
		panic(err) // static struct of integers cannot fail
	}
	return append([]byte{recMeta}, body...)
}

// writeFileDurable is the power-loss-safe file write: temp file in the same
// directory, fsync the file, atomic rename, fsync the directory.
func writeFileDurable(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return err
	}
	return fsyncDir(dir)
}

// Abandon simulates kill -9 for the fault-scenario lab and crash tests:
// unflushed records are dropped, no final fsync happens, and every
// subsequent journal call is swallowed. The on-disk state is exactly what a
// SIGKILL at this instant would leave.
func (s *Store) Abandon() {
	s.mu.Lock()
	s.abandoned = true
	s.mu.Unlock()
	s.w.abandon()
}

// Close flushes and fsyncs the journal — graceful shutdown.
func (s *Store) Close() error {
	return s.w.close()
}

// Dir returns the data directory the store persists into.
func (s *Store) Dir() string { return s.dir }

// Stats snapshots store health. The on-disk sizes are computed by scanning
// the data dir; callers are the admin endpoint and metrics scrapes, not hot
// paths.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Dir:            s.dir,
		SnapshotLSN:    s.snapshotLSN,
		Compactions:    s.compactions,
		LastCompaction: s.lastCompact,
		Replay:         s.replay,
		Restored:       s.restored,
	}
	s.mu.Unlock()

	s.w.mu.Lock()
	st.Mode = s.w.mode
	st.LastLSN = s.w.lastLSN
	st.Durable = s.w.durable
	st.Appends = s.w.appends
	st.Fsyncs = s.w.fsyncs
	st.Bytes = s.w.bytes
	s.w.mu.Unlock()

	if entries, err := os.ReadDir(s.dir); err == nil {
		for _, e := range entries {
			info, ierr := e.Info()
			if ierr != nil {
				continue
			}
			if _, ok := parseSegmentName(e.Name()); ok {
				st.Segments++
				st.WALBytes += info.Size()
			} else if e.Name() == snapshotName {
				st.WALBytes += info.Size()
			}
		}
	}
	return st
}
