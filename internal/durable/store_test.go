package durable

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/qdmi"
	"repro/internal/qrm"
)

// TestStoreRoundtrip journals all three record kinds, closes, and reopens:
// Recovery must hand back exactly the latest upsert of each.
func TestStoreRoundtrip(t *testing.T) {
	dir := t.TempDir()
	st, rec, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.QRMJobs) != 0 || len(rec.FleetJobs) != 0 || len(rec.Idem) != 0 {
		t.Fatalf("fresh dir recovered state: %+v", rec)
	}
	st.JournalQRMJob(&qrm.Job{ID: 1, Status: qrm.StatusQueued, SubmitUnixMs: 1111})
	st.JournalQRMJob(&qrm.Job{ID: 2, Status: qrm.StatusQueued})
	lsn := st.JournalQRMJob(&qrm.Job{ID: 1, Status: qrm.StatusDone, SubmitUnixMs: 1111})
	st.JournalFleetJob(&fleet.Job{ID: 7, Status: fleet.JobRouted, Device: "dev-0"})
	st.JournalIdem("key-a", 1)
	st.WaitDurable(lsn)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec2, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.QRMJobs) != 2 {
		t.Fatalf("recovered %d qrm jobs, want 2", len(rec2.QRMJobs))
	}
	byID := map[int]*qrm.Job{}
	for _, j := range rec2.QRMJobs {
		byID[j.ID] = j
	}
	// Last-write-wins: job 1's terminal upsert shadows the queued one, and
	// the out-of-band SubmitUnixMs survives the json:"-" tag via the wrapper.
	if j := byID[1]; j == nil || j.Status != qrm.StatusDone || j.SubmitUnixMs != 1111 {
		t.Fatalf("job 1 recovered wrong: %+v", byID[1])
	}
	if j := byID[2]; j == nil || j.Status != qrm.StatusQueued {
		t.Fatalf("job 2 recovered wrong: %+v", byID[2])
	}
	if len(rec2.FleetJobs) != 1 || rec2.FleetJobs[0].ID != 7 || rec2.FleetJobs[0].Device != "dev-0" {
		t.Fatalf("fleet jobs recovered wrong: %+v", rec2.FleetJobs)
	}
	if rec2.Idem["key-a"] != 1 {
		t.Fatalf("idem recovered wrong: %+v", rec2.Idem)
	}
	if rec2.Stats.Records == 0 || rec2.Stats.SkippedBytes != 0 {
		t.Fatalf("replay stats wrong: %+v", rec2.Stats)
	}
}

// TestStoreCompact pins compaction: the materialized view lands in
// snapshot.wal, sealed journal segments are deleted, and a reopen recovers
// the same state from snapshot + fresh WAL.
func TestStoreCompact(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		st.JournalQRMJob(&qrm.Job{ID: i, Status: qrm.StatusDone})
	}
	st.JournalIdem("k", 3)
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("no snapshot after compact: %v", err)
	}
	stats := st.Stats()
	if stats.Compactions != 1 || stats.SnapshotLSN == 0 {
		t.Fatalf("compact stats wrong: %+v", stats)
	}
	// A post-compaction record must land in the fresh segment and survive.
	st.JournalQRMJob(&qrm.Job{ID: 11, Status: qrm.StatusQueued})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err := Open(dir, Options{Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.QRMJobs) != 11 {
		t.Fatalf("recovered %d jobs after compact+reopen, want 11", len(rec.QRMJobs))
	}
	if rec.Idem["k"] != 3 {
		t.Fatalf("idem lost across compaction: %+v", rec.Idem)
	}
	if rec.Stats.SnapshotLSN == 0 {
		t.Fatalf("reopen did not see the snapshot: %+v", rec.Stats)
	}
}

// copyDir clones the store directory so each truncation trial replays a
// pristine copy of the crashed state.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestCrashPointProperty is the crash-point property test: run a real
// single-device manager against the store, abandon it mid-flight (kill -9),
// then truncate the WAL at EVERY byte offset inside the final record and
// replay each truncation. At every cut: replay must not panic, every acked
// job must be recovered exactly once (conservation — the submit ack waited
// for durability, and only the final record is cut), jobs whose terminal
// record survived must restore as terminal (never double-run), and a fresh
// manager must accept the restore. Runs under -race in the regular suite.
func TestCrashPointProperty(t *testing.T) {
	dir := t.TempDir()
	qpu, err := device.New(device.Config{Name: "crash-0", Rows: 4, Cols: 5, Seed: 11, DigitalTwin: true})
	if err != nil {
		t.Fatal(err)
	}
	dev := qdmi.NewDevice(qpu, nil)
	m := qrm.NewManager(dev)
	st, _, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	m.AttachStore(st)
	if err := m.Start(2); err != nil {
		t.Fatal(err)
	}

	const jobs = 8
	var ids []int
	for i := 0; i < jobs; i++ {
		id, err := m.Submit(qrm.Request{Circuit: circuit.GHZ(3), Shots: 4, User: "crash"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Let roughly half the batch finish so the WAL holds a mix of queued,
	// running, and terminal records when the axe falls.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	awaited := map[int]bool{}
	for _, id := range ids[:jobs/2] {
		if _, err := m.AwaitTerminal(ctx, id); err != nil {
			t.Fatal(err)
		}
		awaited[id] = true
	}
	st.Abandon() // the kill: nothing from here reaches disk
	m.Stop()
	st.Close()

	// Locate the final frame of the last journal segment.
	seqs, err := listSegments(dir)
	if err != nil || len(seqs) == 0 {
		t.Fatalf("no segments after crash: %v %v", seqs, err)
	}
	lastSeg := segmentName(seqs[len(seqs)-1])
	data, err := os.ReadFile(filepath.Join(dir, lastSeg))
	if err != nil {
		t.Fatal(err)
	}
	frames := 0
	lastStart := 0
	readFrames(data, func(lsn uint64, payload []byte) {
		frames++
		if off := lastStart + frameHeader + len(payload); off < len(data) {
			lastStart = off
		}
	})
	if frames < 2 {
		t.Fatalf("final segment has only %d frames; crash left too little to truncate", frames)
	}

	submitted := map[int]bool{}
	for _, id := range ids {
		submitted[id] = true
	}
	for cut := lastStart; cut <= len(data); cut++ {
		trial := copyDir(t, dir)
		if err := os.Truncate(filepath.Join(trial, lastSeg), int64(cut)); err != nil {
			t.Fatal(err)
		}
		st2, rec, err := Open(trial, Options{Sync: SyncOff})
		if err != nil {
			t.Fatalf("cut at %d: open failed: %v", cut, err)
		}
		seen := map[int]bool{}
		for _, j := range rec.QRMJobs {
			if seen[j.ID] {
				t.Fatalf("cut at %d: job %d recovered twice", cut, j.ID)
			}
			seen[j.ID] = true
			if !submitted[j.ID] {
				t.Fatalf("cut at %d: recovered unknown job %d", cut, j.ID)
			}
		}
		// Conservation: every submit was acked only after its record was
		// fsynced, and the cut only ever removes the final record — so all
		// acked jobs must survive every truncation.
		if len(seen) != jobs {
			t.Fatalf("cut at %d: recovered %d jobs, want %d", cut, len(seen), jobs)
		}
		m2 := qrm.NewManager(dev)
		rs, err := m2.Restore(rec.QRMJobs)
		if err != nil {
			t.Fatalf("cut at %d: restore failed: %v", cut, err)
		}
		if rs.Terminal+rs.Requeued+rs.Expired != jobs {
			t.Fatalf("cut at %d: restore stats %+v do not conserve %d jobs", cut, rs, jobs)
		}
		// Never double-run: a job whose terminal record survived the cut must
		// restore as terminal, not re-enter the queue.
		terminalRecovered := 0
		for _, j := range rec.QRMJobs {
			switch j.Status {
			case qrm.StatusDone, qrm.StatusFailed, qrm.StatusCancelled, qrm.StatusInterrupted:
				terminalRecovered++
			}
		}
		if rs.Terminal != terminalRecovered {
			t.Fatalf("cut at %d: %d terminal records but %d terminal restores", cut, terminalRecovered, rs.Terminal)
		}
		if rs.Terminal < len(awaited)-1 {
			// At most the single truncated record can demote an awaited job
			// back to requeued (at-least-once, not at-most-once).
			t.Fatalf("cut at %d: %d terminal restores, want >= %d", cut, rs.Terminal, len(awaited)-1)
		}
		st2.Close()
	}

	// Untruncated replay: every awaited job restores terminal.
	st3, rec, err := Open(copyDir(t, dir), Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	for _, j := range rec.QRMJobs {
		if awaited[j.ID] && j.Status != qrm.StatusDone {
			t.Errorf("awaited job %d recovered as %s, want done", j.ID, j.Status)
		}
	}
}

// TestStoreAbandonSwallowsJournal pins the post-kill contract: journals are
// swallowed (stable LSN), WaitDurable returns, Close is safe.
func TestStoreAbandonSwallowsJournal(t *testing.T) {
	st, _, err := Open(t.TempDir(), Options{Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	lsn := st.JournalQRMJob(&qrm.Job{ID: 1, Status: qrm.StatusQueued})
	st.Abandon()
	if got := st.JournalQRMJob(&qrm.Job{ID: 2, Status: qrm.StatusQueued}); got != lsn {
		t.Fatalf("journal after abandon advanced the lsn: %d -> %d", lsn, got)
	}
	st.WaitDurable(lsn + 50) // must not hang
	if err := st.Close(); err != nil {
		t.Fatalf("close after abandon: %v", err)
	}
}
