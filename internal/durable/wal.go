// Package durable is the crash-durable job store behind the QRM and fleet
// schedulers: an append-only write-ahead log of job-lifecycle records plus
// periodic snapshot compaction. Every transition the event bus publishes
// (submit, claim, running, terminal, park, migrate, idempotency-key binding)
// is journaled as a full upsert of the job's record, so replay is a trivial
// last-write-wins fold and a snapshot/journal overlap is harmless. The §4
// user request behind it — "more robust job restart tools after system
// outages" — needs submission durability above all: Submit acks only after
// the job's first record is fsync'd (see WaitDurable), so a 202 implies the
// job survives kill -9.
package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// SyncMode selects when appended records are fsync'd.
type SyncMode string

const (
	// SyncAlways fsyncs inline on every append: strongest guarantee,
	// one fsync per record.
	SyncAlways SyncMode = "always"
	// SyncGroup batches appends behind a background flusher that fsyncs
	// once per batch (group commit): submissions still block until their
	// record is durable, but concurrent submitters share one fsync.
	SyncGroup SyncMode = "group"
	// SyncOff never fsyncs: records are written to the OS immediately but
	// survive only process crashes, not power loss.
	SyncOff SyncMode = "off"
)

// ParseSyncMode validates a -wal-sync flag value.
func ParseSyncMode(s string) (SyncMode, error) {
	switch SyncMode(s) {
	case SyncAlways, SyncGroup, SyncOff:
		return SyncMode(s), nil
	}
	return "", fmt.Errorf("durable: unknown WAL sync mode %q (want always, group, or off)", s)
}

// Record framing: [length uint32][crc32 uint32][lsn uint64][payload], all
// little-endian. The CRC covers lsn+payload, so a frame whose tail was torn
// by a crash — or whose header bytes survived but whose body did not — fails
// the checksum and replay stops cleanly at the previous record.
const (
	frameHeader   = 16
	maxFrameBytes = 64 << 20 // sanity bound; a corrupt length field cannot ask for GBs

	segmentPrefix = "journal-"
	segmentSuffix = ".wal"
	snapshotName  = "snapshot.wal"
)

func segmentName(seq uint64) string {
	return fmt.Sprintf("%s%08d%s", segmentPrefix, seq, segmentSuffix)
}

func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix), 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// appendFrame encodes one record frame onto buf and returns the extended
// slice.
func appendFrame(buf []byte, lsn uint64, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], lsn)
	crc := crc32.NewIEEE()
	crc.Write(hdr[8:16])
	crc.Write(payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc.Sum32())
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// readFrames folds fn over every intact frame in data, stopping at the
// first short or corrupt one (the torn tail kill -9 leaves behind). It
// returns how many bytes of data were unreadable; 0 means the segment was
// clean.
func readFrames(data []byte, fn func(lsn uint64, payload []byte)) (skipped int64) {
	off := 0
	for {
		rest := data[off:]
		if len(rest) < frameHeader {
			return int64(len(rest))
		}
		n := int(binary.LittleEndian.Uint32(rest[0:4]))
		if n < 0 || n > maxFrameBytes || len(rest) < frameHeader+n {
			return int64(len(rest))
		}
		lsn := binary.LittleEndian.Uint64(rest[8:16])
		payload := rest[frameHeader : frameHeader+n]
		crc := crc32.NewIEEE()
		crc.Write(rest[8:16])
		crc.Write(payload)
		if crc.Sum32() != binary.LittleEndian.Uint32(rest[4:8]) {
			return int64(len(rest))
		}
		fn(lsn, payload)
		off += frameHeader + n
	}
}

// fsyncDir flushes a directory's entry table so a just-created, renamed, or
// deleted file survives power loss. Satellite fix shared with
// qrm.SaveSnapshotFile: rename is atomic against torn writes but not
// durable until the directory itself is synced.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// wal is the append-only journal: one active segment file, an in-memory
// frame buffer, and a durability watermark that WaitDurable blocks on.
type wal struct {
	dir  string
	mode SyncMode

	mu   sync.Mutex
	cond *sync.Cond // broadcasts durable-watermark advances and state flips

	f         *os.File
	seq       uint64 // active segment sequence number
	buf       []byte // frames appended but not yet handed to the OS
	lastLSN   uint64 // last assigned LSN
	durable   uint64 // highest LSN guaranteed on stable storage
	abandoned bool   // simulated kill -9: unflushed buffer dropped
	closed    bool
	err       error // sticky first write/sync error

	appends uint64
	fsyncs  uint64
	bytes   uint64

	flusherWG sync.WaitGroup
}

// openWAL creates the next journal segment (never appending to an old one:
// a torn tail in segment k is harmless exactly because post-recovery records
// land in k+1) and starts the group-commit flusher when the mode needs it.
func openWAL(dir string, mode SyncMode, nextSeq, lastLSN uint64) (*wal, error) {
	f, err := os.OpenFile(filepath.Join(dir, segmentName(nextSeq)),
		os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: creating WAL segment: %w", err)
	}
	if mode != SyncOff {
		if err := fsyncDir(dir); err != nil {
			f.Close()
			return nil, fmt.Errorf("durable: syncing WAL dir: %w", err)
		}
	}
	w := &wal{dir: dir, mode: mode, f: f, seq: nextSeq, lastLSN: lastLSN, durable: lastLSN}
	w.cond = sync.NewCond(&w.mu)
	if mode == SyncGroup {
		w.flusherWG.Add(1)
		go w.flusher()
	}
	return w, nil
}

// append journals one payload and returns its LSN. Appends on an abandoned
// or closed WAL are swallowed (the process is "dead"); the returned LSN is
// then the last assigned one, and WaitDurable on it returns immediately.
func (w *wal) append(payload []byte) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.abandoned || w.closed || w.err != nil {
		return w.lastLSN
	}
	w.lastLSN++
	lsn := w.lastLSN
	w.buf = appendFrame(w.buf, lsn, payload)
	w.appends++
	switch w.mode {
	case SyncAlways:
		w.flushLocked(true)
	case SyncOff:
		w.flushLocked(false)
	default: // group: hand the buffer to the flusher
		w.cond.Broadcast()
	}
	return lsn
}

// flushLocked writes the pending buffer to the segment (and optionally
// fsyncs) inline, advancing the durable watermark. Caller holds w.mu. Used
// by the always/off modes, where no flusher goroutine owns the file.
func (w *wal) flushLocked(sync bool) {
	if len(w.buf) == 0 {
		return
	}
	upto := w.lastLSN
	n, err := w.f.Write(w.buf)
	w.bytes += uint64(n)
	w.buf = w.buf[:0]
	if err == nil && sync {
		err = w.f.Sync()
		w.fsyncs++
	}
	if err != nil {
		if w.err == nil {
			w.err = err
		}
	} else if upto > w.durable {
		w.durable = upto
	}
	w.cond.Broadcast()
}

// flusher is the group-commit loop: it swaps the pending buffer out under
// the lock, writes and fsyncs outside it (appenders keep queuing frames
// meanwhile — that batching is the group commit), then publishes the new
// durable watermark.
func (w *wal) flusher() {
	defer w.flusherWG.Done()
	w.mu.Lock()
	for {
		for !w.closed && !w.abandoned && w.err == nil && len(w.buf) == 0 {
			w.cond.Wait()
		}
		if w.abandoned || w.err != nil || (w.closed && len(w.buf) == 0) {
			w.mu.Unlock()
			return
		}
		batch := w.buf
		w.buf = nil
		upto := w.lastLSN
		f := w.f
		w.mu.Unlock()

		n, werr := f.Write(batch)
		serr := f.Sync()

		w.mu.Lock()
		w.bytes += uint64(n)
		w.fsyncs++
		switch {
		case werr != nil || serr != nil:
			if w.err == nil {
				if werr != nil {
					w.err = werr
				} else {
					w.err = serr
				}
			}
		case upto > w.durable:
			w.durable = upto
		}
		w.cond.Broadcast()
	}
}

// lastLSNSnapshot returns the most recently assigned LSN.
func (w *wal) lastLSNSnapshot() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastLSN
}

// waitDurable blocks until lsn is on stable storage (or the WAL died). It
// returns the sticky error so the submission path can refuse to ack a job
// whose record never made it down.
func (w *wal) waitDurable(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.durable < lsn && !w.abandoned && !w.closed && w.err == nil {
		w.cond.Wait()
	}
	return w.err
}

// syncAll drains everything appended so far to stable storage — the
// pre-compaction quiescence barrier.
func (w *wal) syncAll() error {
	w.mu.Lock()
	if w.mode != SyncGroup {
		w.flushLocked(w.mode == SyncAlways)
	}
	target := w.lastLSN
	w.cond.Broadcast()
	for w.durable < target && !w.abandoned && !w.closed && w.err == nil {
		w.cond.Wait()
	}
	err := w.err
	w.mu.Unlock()
	return err
}

// rotate seals the active segment and opens the next one, returning the
// sealed segment's sequence number. Callers must have quiesced the WAL
// (syncAll) first so no flusher write is in flight against the old file.
func (w *wal) rotate() (sealed uint64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.abandoned || w.closed {
		return w.seq, fmt.Errorf("durable: WAL is closed")
	}
	sealed = w.seq
	if cerr := w.f.Close(); cerr != nil && w.err == nil {
		w.err = cerr
	}
	w.seq++
	f, ferr := os.OpenFile(filepath.Join(w.dir, segmentName(w.seq)),
		os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if ferr != nil {
		w.err = ferr
		return sealed, fmt.Errorf("durable: rotating WAL segment: %w", ferr)
	}
	w.f = f
	return sealed, nil
}

// abandon simulates kill -9: the unflushed buffer is dropped on the floor,
// no final fsync happens, and every waiter is released. What was already
// handed to the OS stays readable on replay — exactly the state a real
// SIGKILL leaves behind (minus the page cache, which the torn-tail
// truncation tests cover byte by byte).
func (w *wal) abandon() {
	w.mu.Lock()
	if w.abandoned || w.closed {
		w.mu.Unlock()
		return
	}
	w.abandoned = true
	w.buf = nil
	w.cond.Broadcast()
	w.mu.Unlock()
	w.flusherWG.Wait()
	w.mu.Lock()
	w.f.Close()
	w.mu.Unlock()
}

// close flushes, fsyncs, and closes the active segment — graceful shutdown.
func (w *wal) close() error {
	w.mu.Lock()
	if w.abandoned || w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
	w.flusherWG.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.buf) > 0 {
		upto := w.lastLSN
		n, err := w.f.Write(w.buf)
		w.bytes += uint64(n)
		w.buf = nil
		if err == nil && upto > w.durable {
			w.durable = upto
		} else if err != nil && w.err == nil {
			w.err = err
		}
	}
	if err := w.f.Sync(); err == nil {
		w.fsyncs++
	} else if w.err == nil {
		w.err = err
	}
	if err := w.f.Close(); err != nil && w.err == nil {
		w.err = err
	}
	return w.err
}

// listSegments returns the journal segment sequence numbers present in dir,
// ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseSegmentName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}
