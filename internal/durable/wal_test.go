package durable

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestFrameRoundtrip pins the record framing: frames written by appendFrame
// come back byte-identical from readFrames, in order, with their LSNs.
func TestFrameRoundtrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("a"), []byte(""), []byte("some longer payload with bytes \x00\xff"),
		bytes.Repeat([]byte{0xAB}, 4096),
	}
	var buf []byte
	for i, p := range payloads {
		buf = appendFrame(buf, uint64(i+1), p)
	}
	var gotLSN []uint64
	var got [][]byte
	skipped := readFrames(buf, func(lsn uint64, payload []byte) {
		gotLSN = append(gotLSN, lsn)
		got = append(got, append([]byte(nil), payload...))
	})
	if skipped != 0 {
		t.Fatalf("clean buffer reported %d skipped bytes", skipped)
	}
	if len(got) != len(payloads) {
		t.Fatalf("read %d frames, wrote %d", len(got), len(payloads))
	}
	for i := range payloads {
		if gotLSN[i] != uint64(i+1) {
			t.Errorf("frame %d: lsn %d, want %d", i, gotLSN[i], i+1)
		}
		if !bytes.Equal(got[i], payloads[i]) {
			t.Errorf("frame %d: payload mismatch", i)
		}
	}
}

// TestTornTailEveryOffset is the byte-by-byte torn-tail property: truncating
// the buffer at EVERY offset inside the final record must yield exactly the
// preceding frames — never a panic, never a corrupt record surfaced.
func TestTornTailEveryOffset(t *testing.T) {
	var buf []byte
	const frames = 5
	for i := 1; i <= frames; i++ {
		buf = appendFrame(buf, uint64(i), []byte(fmt.Sprintf("record-%d-%s", i, bytes.Repeat([]byte{'x'}, 50*i))))
	}
	lastStart := 0
	readFrames(buf[:], func(lsn uint64, payload []byte) {
		if lsn == frames {
			return
		}
		lastStart += frameHeader + len(payload)
	})
	if lastStart <= 0 || lastStart >= len(buf) {
		t.Fatalf("bad last-frame offset %d (buf %d)", lastStart, len(buf))
	}
	for cut := lastStart; cut < len(buf); cut++ {
		n := 0
		skipped := readFrames(buf[:cut], func(lsn uint64, payload []byte) { n++ })
		if n != frames-1 {
			t.Fatalf("cut at %d: read %d frames, want %d", cut, n, frames-1)
		}
		if skipped != int64(cut-lastStart) {
			t.Fatalf("cut at %d: skipped %d bytes, want %d", cut, skipped, cut-lastStart)
		}
	}
	// Flip one byte anywhere in the last frame: CRC must reject it.
	for _, flip := range []int{lastStart, lastStart + 4, lastStart + frameHeader, len(buf) - 1} {
		mut := append([]byte(nil), buf...)
		mut[flip] ^= 0x01
		n := 0
		readFrames(mut, func(lsn uint64, payload []byte) { n++ })
		// A flipped length byte may still parse earlier frames only; a
		// flipped payload byte fails the CRC. Either way the corrupt final
		// frame must not surface.
		if n > frames-1 {
			t.Fatalf("flip at %d: corrupt frame surfaced (%d frames)", flip, n)
		}
	}
}

// TestWALSyncModes drives each sync mode through append → waitDurable →
// close and replays the segment from disk.
func TestWALSyncModes(t *testing.T) {
	for _, mode := range []SyncMode{SyncAlways, SyncGroup, SyncOff} {
		t.Run(string(mode), func(t *testing.T) {
			dir := t.TempDir()
			w, err := openWAL(dir, mode, 1, 0)
			if err != nil {
				t.Fatal(err)
			}
			var last uint64
			for i := 0; i < 20; i++ {
				last = w.append([]byte(fmt.Sprintf("payload-%d", i)))
			}
			if last != 20 {
				t.Fatalf("last lsn %d, want 20", last)
			}
			if err := w.waitDurable(last); err != nil {
				t.Fatalf("waitDurable: %v", err)
			}
			if err := w.close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			data, err := os.ReadFile(filepath.Join(dir, segmentName(1)))
			if err != nil {
				t.Fatal(err)
			}
			n := 0
			if skipped := readFrames(data, func(uint64, []byte) { n++ }); skipped != 0 {
				t.Fatalf("segment has %d skipped bytes", skipped)
			}
			if n != 20 {
				t.Fatalf("replayed %d frames, want 20", n)
			}
		})
	}
}

// TestWALAbandon pins the kill -9 semantics: appends after abandon are
// swallowed (returning the last LSN), waiters are released, and close is a
// no-op.
func TestWALAbandon(t *testing.T) {
	w, err := openWAL(t.TempDir(), SyncGroup, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	lsn := w.append([]byte("pre"))
	w.abandon()
	if got := w.append([]byte("post")); got != lsn {
		t.Fatalf("append after abandon returned %d, want swallowed at %d", got, lsn)
	}
	done := make(chan struct{})
	go func() {
		w.waitDurable(lsn + 100) // must not block forever
		close(done)
	}()
	<-done
	if err := w.close(); err != nil {
		t.Fatalf("close after abandon: %v", err)
	}
}

// TestWALRotate checks segment sealing: records straddling a rotation all
// replay, and listSegments sees both files.
func TestWALRotate(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, SyncAlways, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.append([]byte("one"))
	if err := w.syncAll(); err != nil {
		t.Fatal(err)
	}
	sealed, err := w.rotate()
	if err != nil {
		t.Fatal(err)
	}
	if sealed != 1 {
		t.Fatalf("sealed segment %d, want 1", sealed)
	}
	w.append([]byte("two"))
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
		t.Fatalf("segments %v, want [1 2]", seqs)
	}
	total := 0
	for _, seq := range seqs {
		data, err := os.ReadFile(filepath.Join(dir, segmentName(seq)))
		if err != nil {
			t.Fatal(err)
		}
		readFrames(data, func(uint64, []byte) { total++ })
	}
	if total != 2 {
		t.Fatalf("replayed %d frames across segments, want 2", total)
	}
}

// TestParseSegmentName pins the file-name grammar Open's directory scan
// relies on.
func TestParseSegmentName(t *testing.T) {
	seq, ok := parseSegmentName(segmentName(42))
	if !ok || seq != 42 {
		t.Fatalf("roundtrip failed: %d %v", seq, ok)
	}
	for _, bad := range []string{"snapshot.wal", "journal-.wal", "journal-xx.wal", "other-00000001.wal", "journal-00000001.tmp"} {
		if _, ok := parseSegmentName(bad); ok {
			t.Errorf("%q parsed as a segment", bad)
		}
	}
}
