package facility

import (
	"fmt"
	"strings"
)

// Installation planning (§2.5): quantum computers arrive in large wooden
// crates and are assembled on site over days to weeks — the delivery path
// must admit every crate, and the assembly schedule includes testing the
// hundreds of factory-connected microwave lines before commissioning.

// Crate is one shipping unit.
type Crate struct {
	Name     string
	WidthCM  float64
	HeightCM float64
	WeightKG float64
}

// StandardShipment returns the crate manifest of the 20-qubit system: the
// cryostat (~750 kg, §2.5), the control-electronics rack, the gas handling
// system, compressors, and the cable set.
func StandardShipment() []Crate {
	return []Crate{
		{Name: "cryostat", WidthCM: 126, HeightCM: 290, WeightKG: 750},
		{Name: "control-electronics-rack", WidthCM: 80, HeightCM: 210, WeightKG: 350},
		{Name: "gas-handling-system", WidthCM: 85, HeightCM: 180, WeightKG: 280},
		{Name: "helium-compressor", WidthCM: 75, HeightCM: 120, WeightKG: 220},
		{Name: "air-compressor", WidthCM: 60, HeightCM: 100, WeightKG: 90},
		{Name: "microwave-cable-set", WidthCM: 60, HeightCM: 80, WeightKG: 40},
	}
}

// PathSegment is one leg of the delivery route (dock, elevator, hallway,
// doorway, staging area).
type PathSegment struct {
	Name      string
	WidthCM   float64
	HeightCM  float64
	MaxLoadKG float64 // 0 = unconstrained (ground slab)
}

// CheckDeliveryPath verifies every crate fits every segment; it returns
// one error per obstruction found, or nil when the route works.
func CheckDeliveryPath(crates []Crate, path []PathSegment) []error {
	var problems []error
	for _, seg := range path {
		for _, cr := range crates {
			if cr.WidthCM > seg.WidthCM {
				problems = append(problems, fmt.Errorf(
					"facility: crate %q (%.0f cm wide) does not fit %q (%.0f cm)",
					cr.Name, cr.WidthCM, seg.Name, seg.WidthCM))
			}
			if seg.HeightCM > 0 && cr.HeightCM > seg.HeightCM {
				problems = append(problems, fmt.Errorf(
					"facility: crate %q (%.0f cm tall) does not clear %q (%.0f cm)",
					cr.Name, cr.HeightCM, seg.Name, seg.HeightCM))
			}
			if seg.MaxLoadKG > 0 && cr.WeightKG > seg.MaxLoadKG {
				problems = append(problems, fmt.Errorf(
					"facility: crate %q (%.0f kg) exceeds %q load limit (%.0f kg)",
					cr.Name, cr.WeightKG, seg.Name, seg.MaxLoadKG))
			}
		}
	}
	return problems
}

// AssemblyTask is one step of the on-site build.
type AssemblyTask struct {
	Name      string
	Days      float64
	DependsOn []string
}

// AssemblyPlan returns the §2.5 build sequence for a system with the given
// number of microwave signal lines (the 20-qubit system carries hundreds;
// each must be tested after transport).
func AssemblyPlan(signalLines int) []AssemblyTask {
	lineTestDays := float64(signalLines) / 80 // a technician tests ~80 lines/day
	return []AssemblyTask{
		{Name: "uncrate-and-position", Days: 1},
		{Name: "erect-cryostat-frame", Days: 2, DependsOn: []string{"uncrate-and-position"}},
		{Name: "mount-chandelier-stages", Days: 3, DependsOn: []string{"erect-cryostat-frame"}},
		{Name: "connect-gas-handling", Days: 2, DependsOn: []string{"erect-cryostat-frame"}},
		{Name: "plumb-cooling-water", Days: 1, DependsOn: []string{"connect-gas-handling"}},
		{Name: "install-control-rack", Days: 1, DependsOn: []string{"uncrate-and-position"}},
		{Name: "route-microwave-lines", Days: 2, DependsOn: []string{"mount-chandelier-stages", "install-control-rack"}},
		{Name: "test-signal-lines", Days: lineTestDays, DependsOn: []string{"route-microwave-lines"}},
		{Name: "leak-check-and-pump-down", Days: 2, DependsOn: []string{"connect-gas-handling", "test-signal-lines"}},
	}
}

// CriticalPathDays computes the end-to-end duration of a task graph via
// longest-path traversal. It returns an error on unknown dependencies or
// cycles.
func CriticalPathDays(tasks []AssemblyTask) (float64, error) {
	byName := make(map[string]AssemblyTask, len(tasks))
	for _, t := range tasks {
		if _, dup := byName[t.Name]; dup {
			return 0, fmt.Errorf("facility: duplicate task %q", t.Name)
		}
		byName[t.Name] = t
	}
	memo := make(map[string]float64, len(tasks))
	visiting := make(map[string]bool)
	var finish func(name string) (float64, error)
	finish = func(name string) (float64, error) {
		if v, ok := memo[name]; ok {
			return v, nil
		}
		if visiting[name] {
			return 0, fmt.Errorf("facility: dependency cycle through %q", name)
		}
		t, ok := byName[name]
		if !ok {
			return 0, fmt.Errorf("facility: unknown dependency %q", name)
		}
		visiting[name] = true
		start := 0.0
		for _, dep := range t.DependsOn {
			d, err := finish(dep)
			if err != nil {
				return 0, err
			}
			if d > start {
				start = d
			}
		}
		delete(visiting, name)
		memo[name] = start + t.Days
		return memo[name], nil
	}
	total := 0.0
	for _, t := range tasks {
		d, err := finish(t.Name)
		if err != nil {
			return 0, err
		}
		if d > total {
			total = d
		}
	}
	return total, nil
}

// InstallationReport renders the plan summary.
func InstallationReport(crates []Crate, path []PathSegment, lines int) string {
	var b strings.Builder
	problems := CheckDeliveryPath(crates, path)
	if len(problems) == 0 {
		fmt.Fprintf(&b, "delivery path: OK for %d crates over %d segments\n", len(crates), len(path))
	} else {
		fmt.Fprintf(&b, "delivery path: %d obstructions\n", len(problems))
		for _, p := range problems {
			fmt.Fprintf(&b, "  - %v\n", p)
		}
	}
	plan := AssemblyPlan(lines)
	days, err := CriticalPathDays(plan)
	if err != nil {
		fmt.Fprintf(&b, "assembly plan invalid: %v\n", err)
	} else {
		fmt.Fprintf(&b, "assembly: %d tasks, critical path %.1f days (multi-day to multi-week, §2.5)\n",
			len(plan), days)
	}
	return b.String()
}
