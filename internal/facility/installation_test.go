package facility

import (
	"strings"
	"testing"
)

func widePath() []PathSegment {
	return []PathSegment{
		{Name: "loading-dock", WidthCM: 300, HeightCM: 400},
		{Name: "freight-elevator", WidthCM: 180, HeightCM: 300, MaxLoadKG: 2000},
		{Name: "hallway", WidthCM: 200, HeightCM: 320},
		{Name: "machine-room-door", WidthCM: 140, HeightCM: 300},
	}
}

func TestStandardShipmentFitsWidePath(t *testing.T) {
	problems := CheckDeliveryPath(StandardShipment(), widePath())
	if len(problems) != 0 {
		t.Fatalf("wide path obstructed: %v", problems)
	}
}

func TestNarrowDoorBlocksCryostat(t *testing.T) {
	path := widePath()
	path[3].WidthCM = 90 // the paper's minimum — but the cryostat is 126 cm
	problems := CheckDeliveryPath(StandardShipment(), path)
	if len(problems) == 0 {
		t.Fatal("126 cm cryostat should not fit a 90 cm door")
	}
	found := false
	for _, p := range problems {
		if strings.Contains(p.Error(), "cryostat") && strings.Contains(p.Error(), "machine-room-door") {
			found = true
		}
	}
	if !found {
		t.Errorf("obstruction list missing the cryostat/door conflict: %v", problems)
	}
}

func TestLowCeilingBlocksTallCrates(t *testing.T) {
	path := []PathSegment{{Name: "basement-hall", WidthCM: 200, HeightCM: 250}}
	problems := CheckDeliveryPath(StandardShipment(), path)
	if len(problems) == 0 {
		t.Fatal("290 cm cryostat should not clear a 250 cm ceiling")
	}
}

func TestElevatorLoadLimit(t *testing.T) {
	path := []PathSegment{{Name: "small-lift", WidthCM: 200, HeightCM: 300, MaxLoadKG: 500}}
	problems := CheckDeliveryPath(StandardShipment(), path)
	if len(problems) == 0 {
		t.Fatal("750 kg cryostat should exceed a 500 kg lift")
	}
}

func TestAssemblyPlanCriticalPath(t *testing.T) {
	// 400 signal lines ("hundreds"): 5 days of line testing.
	plan := AssemblyPlan(400)
	days, err := CriticalPathDays(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Critical path: uncrate(1) → frame(2) → chandelier(3) → route(2) →
	// test(5) → leak-check(2) = 15 days — "multi-day (or multi-week)".
	if days < 10 || days > 30 {
		t.Errorf("critical path = %.1f days, want multi-day-to-multi-week", days)
	}
	// More signal lines stretch the schedule.
	bigger, err := CriticalPathDays(AssemblyPlan(800))
	if err != nil {
		t.Fatal(err)
	}
	if bigger <= days {
		t.Error("doubling signal lines should lengthen the critical path")
	}
}

func TestCriticalPathDetectsCycles(t *testing.T) {
	cyclic := []AssemblyTask{
		{Name: "a", Days: 1, DependsOn: []string{"b"}},
		{Name: "b", Days: 1, DependsOn: []string{"a"}},
	}
	if _, err := CriticalPathDays(cyclic); err == nil {
		t.Error("cycle should be detected")
	}
	dangling := []AssemblyTask{{Name: "a", Days: 1, DependsOn: []string{"ghost"}}}
	if _, err := CriticalPathDays(dangling); err == nil {
		t.Error("unknown dependency should be detected")
	}
	dup := []AssemblyTask{{Name: "a", Days: 1}, {Name: "a", Days: 2}}
	if _, err := CriticalPathDays(dup); err == nil {
		t.Error("duplicate task should be detected")
	}
}

func TestInstallationReport(t *testing.T) {
	rep := InstallationReport(StandardShipment(), widePath(), 400)
	if !strings.Contains(rep, "delivery path: OK") {
		t.Errorf("report missing path verdict:\n%s", rep)
	}
	if !strings.Contains(rep, "critical path") {
		t.Errorf("report missing schedule:\n%s", rep)
	}
	blocked := InstallationReport(StandardShipment(), []PathSegment{
		{Name: "door", WidthCM: 80, HeightCM: 200},
	}, 400)
	if !strings.Contains(blocked, "obstructions") {
		t.Errorf("report missing obstructions:\n%s", blocked)
	}
}
