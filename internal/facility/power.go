package facility

import (
	"fmt"
	"math"
	"sync"
)

// FeedState describes whether a utility feed is delivering.
type FeedState int

const (
	FeedUp FeedState = iota
	FeedDown
)

func (s FeedState) String() string {
	if s == FeedUp {
		return "up"
	}
	return "down"
}

// Feed is a single utility feed (one power circuit or one cooling-water
// loop). Feeds fail and recover under external control (outage injection).
type Feed struct {
	Name  string
	state FeedState
}

// NewFeed returns a feed that starts up.
func NewFeed(name string) *Feed { return &Feed{Name: name, state: FeedUp} }

// State returns the current feed state.
func (f *Feed) State() FeedState { return f.state }

// Fail marks the feed down.
func (f *Feed) Fail() { f.state = FeedDown }

// Restore marks the feed up.
func (f *Feed) Restore() { f.state = FeedUp }

// PowerSystem models the electrical supply to the quantum computer: one or
// two grid feeds plus an optional UPS with finite runtime (§3.4 mentions UPS
// battery checks; lesson 3 is the necessity of redundant infrastructure).
type PowerSystem struct {
	mu sync.Mutex

	feeds       []*Feed
	ups         bool
	upsRuntimeS float64 // full-charge runtime at nominal load, seconds
	upsChargeS  float64 // remaining runtime
	loadKW      float64
}

// PowerOption configures a PowerSystem.
type PowerOption func(*PowerSystem)

// WithRedundantFeed adds a second independent grid feed.
func WithRedundantFeed() PowerOption {
	return func(p *PowerSystem) {
		p.feeds = append(p.feeds, NewFeed(fmt.Sprintf("grid-%c", 'A'+len(p.feeds))))
	}
}

// WithUPS adds an uninterruptible power supply with the given runtime.
func WithUPS(runtimeSeconds float64) PowerOption {
	return func(p *PowerSystem) {
		p.ups = true
		p.upsRuntimeS = runtimeSeconds
		p.upsChargeS = runtimeSeconds
	}
}

// NewPowerSystem builds a power system with one grid feed plus options.
func NewPowerSystem(opts ...PowerOption) *PowerSystem {
	p := &PowerSystem{feeds: []*Feed{NewFeed("grid-A")}}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Feeds returns the grid feeds (for outage injection).
func (p *PowerSystem) Feeds() []*Feed {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Feed, len(p.feeds))
	copy(out, p.feeds)
	return out
}

// HasUPS reports whether a UPS is installed.
func (p *PowerSystem) HasUPS() bool { return p.ups }

// SetLoad records the present electrical draw in kW.
func (p *PowerSystem) SetLoad(kw float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.loadKW = kw
}

// Load returns the present electrical draw in kW.
func (p *PowerSystem) Load() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.loadKW
}

// gridUp reports whether at least one grid feed is delivering.
func (p *PowerSystem) gridUp() bool {
	for _, f := range p.feeds {
		if f.State() == FeedUp {
			return true
		}
	}
	return false
}

// Powered reports whether the load is currently energized (grid or UPS).
func (p *PowerSystem) Powered() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gridUp() || (p.ups && p.upsChargeS > 0)
}

// OnGrid reports whether the grid (any feed) is up, ignoring the UPS.
func (p *PowerSystem) OnGrid() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gridUp()
}

// UPSRemaining returns the remaining UPS runtime in seconds (0 if no UPS).
func (p *PowerSystem) UPSRemaining() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.upsChargeS
}

// Advance moves the power system forward by dt seconds: the UPS discharges
// while carrying the load and recharges (at 10% of discharge rate) on grid.
func (p *PowerSystem) Advance(dt float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.ups {
		return
	}
	if p.gridUp() {
		p.upsChargeS += dt * 0.1
		if p.upsChargeS > p.upsRuntimeS {
			p.upsChargeS = p.upsRuntimeS
		}
		return
	}
	p.upsChargeS -= dt
	if p.upsChargeS < 0 {
		p.upsChargeS = 0
	}
}

// CoolingWater models the facility cooling-water loop feeding the cryogenic
// compressors and turbo pumps. The cryostat vendor requires 15–25 °C inlet
// water (§2.3); exceeding the upper limit trips the cryogenic pumps (§3.5).
type CoolingWater struct {
	mu        sync.Mutex
	feeds     []*Feed
	supplyC   float64 // inlet temperature when healthy
	driftRate float64 // °C/s warming when the loop is down
	currentC  float64
}

// Cooling-water acceptance window (§2.3).
const (
	WaterMinC = 15.0
	WaterMaxC = 25.0
)

// NewCoolingWater builds a loop at supplyC with optional feed redundancy.
func NewCoolingWater(supplyC float64, redundant bool) *CoolingWater {
	c := &CoolingWater{
		feeds:     []*Feed{NewFeed("water-A")},
		supplyC:   supplyC,
		driftRate: 0.01, // ~0.6 °C/min warming when circulation stops
		currentC:  supplyC,
	}
	if redundant {
		c.feeds = append(c.feeds, NewFeed("water-B"))
	}
	return c
}

// Feeds returns the water feeds for outage injection.
func (c *CoolingWater) Feeds() []*Feed {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Feed, len(c.feeds))
	copy(out, c.feeds)
	return out
}

// Healthy reports whether at least one loop feed is circulating.
func (c *CoolingWater) Healthy() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.anyUp()
}

func (c *CoolingWater) anyUp() bool {
	for _, f := range c.feeds {
		if f.State() == FeedUp {
			return true
		}
	}
	return false
}

// Temperature returns the present inlet water temperature, °C.
func (c *CoolingWater) Temperature() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.currentC
}

// InWindow reports whether the water temperature satisfies the vendor
// window of 15–25 °C.
func (c *CoolingWater) InWindow() bool {
	t := c.Temperature()
	return t >= WaterMinC && t <= WaterMaxC
}

// Advance moves the loop forward dt seconds: warming toward ambient when
// down, relaxing back to the supply temperature when up.
func (c *CoolingWater) Advance(dt float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.anyUp() {
		// First-order relaxation back to set point.
		c.currentC += (c.supplyC - c.currentC) * math.Min(1, dt/120)
		return
	}
	c.currentC += c.driftRate * dt
	const ambient = 35.0 // machine-room return air near the heat exchanger
	if c.currentC > ambient {
		c.currentC = ambient
	}
}
