package facility

import (
	"math"
	"testing"
)

func TestPowerSingleFeedFailure(t *testing.T) {
	p := NewPowerSystem()
	if !p.Powered() {
		t.Fatal("fresh system should be powered")
	}
	p.Feeds()[0].Fail()
	if p.Powered() {
		t.Error("single-feed system without UPS should lose power")
	}
	p.Feeds()[0].Restore()
	if !p.Powered() {
		t.Error("restored feed should re-energize the load")
	}
}

func TestPowerRedundantFeedSurvivesSingleFailure(t *testing.T) {
	p := NewPowerSystem(WithRedundantFeed())
	feeds := p.Feeds()
	if len(feeds) != 2 {
		t.Fatalf("want 2 feeds, got %d", len(feeds))
	}
	feeds[0].Fail()
	if !p.Powered() {
		t.Error("redundant system should survive one feed failure")
	}
	feeds[1].Fail()
	if p.Powered() {
		t.Error("both feeds down should kill power")
	}
}

func TestUPSCarriesLoadThenExpires(t *testing.T) {
	p := NewPowerSystem(WithUPS(600)) // 10 minutes
	p.Feeds()[0].Fail()
	if !p.Powered() {
		t.Fatal("UPS should carry the load immediately")
	}
	p.Advance(300)
	if !p.Powered() {
		t.Error("UPS should still be carrying at 5 minutes")
	}
	if rem := p.UPSRemaining(); math.Abs(rem-300) > 1e-9 {
		t.Errorf("UPS remaining = %g s, want 300", rem)
	}
	p.Advance(400)
	if p.Powered() {
		t.Error("UPS exhausted, should be dark")
	}
	if p.UPSRemaining() != 0 {
		t.Errorf("UPS remaining should clamp at 0, got %g", p.UPSRemaining())
	}
}

func TestUPSRecharges(t *testing.T) {
	p := NewPowerSystem(WithUPS(600))
	p.Feeds()[0].Fail()
	p.Advance(600) // drain fully
	p.Feeds()[0].Restore()
	p.Advance(1000) // recharge at 10% rate -> +100 s
	if rem := p.UPSRemaining(); math.Abs(rem-100) > 1e-9 {
		t.Errorf("UPS recharge = %g s, want 100", rem)
	}
	p.Advance(1e6) // cap at full
	if rem := p.UPSRemaining(); rem != 600 {
		t.Errorf("UPS should cap at 600 s, got %g", rem)
	}
}

func TestOnGridIgnoresUPS(t *testing.T) {
	p := NewPowerSystem(WithUPS(600))
	p.Feeds()[0].Fail()
	if p.OnGrid() {
		t.Error("OnGrid should be false with grid down even if UPS is up")
	}
	if !p.Powered() {
		t.Error("Powered should be true on UPS")
	}
}

func TestPowerLoadAccounting(t *testing.T) {
	p := NewPowerSystem()
	p.SetLoad(30)
	if p.Load() != 30 {
		t.Errorf("load = %g, want 30", p.Load())
	}
}

func TestCoolingWaterWarmsWhenDown(t *testing.T) {
	c := NewCoolingWater(18, false)
	if !c.Healthy() || !c.InWindow() {
		t.Fatal("fresh loop should be healthy and in window")
	}
	c.Feeds()[0].Fail()
	if c.Healthy() {
		t.Error("loop with failed feed should be unhealthy")
	}
	// 0.01 °C/s: 1000 s raises 18 °C to 28 °C, out of the 15-25 window.
	c.Advance(1000)
	if c.InWindow() {
		t.Errorf("water at %.1f °C should be out of window", c.Temperature())
	}
	if c.Temperature() <= 25 {
		t.Errorf("water should exceed 25 °C, got %.1f", c.Temperature())
	}
}

func TestCoolingWaterClampsAtAmbient(t *testing.T) {
	c := NewCoolingWater(18, false)
	c.Feeds()[0].Fail()
	c.Advance(1e7)
	if c.Temperature() > 35 {
		t.Errorf("water should clamp at ambient 35 °C, got %.1f", c.Temperature())
	}
}

func TestCoolingWaterRecovers(t *testing.T) {
	c := NewCoolingWater(18, false)
	c.Feeds()[0].Fail()
	c.Advance(1000)
	c.Feeds()[0].Restore()
	for i := 0; i < 100; i++ {
		c.Advance(60)
	}
	if math.Abs(c.Temperature()-18) > 0.5 {
		t.Errorf("restored loop should relax to 18 °C, got %.1f", c.Temperature())
	}
}

func TestCoolingWaterRedundancy(t *testing.T) {
	c := NewCoolingWater(20, true)
	feeds := c.Feeds()
	if len(feeds) != 2 {
		t.Fatalf("want 2 water feeds, got %d", len(feeds))
	}
	feeds[0].Fail()
	if !c.Healthy() {
		t.Error("redundant loop should survive one feed failure")
	}
	c.Advance(5000)
	if !c.InWindow() {
		t.Errorf("redundant loop should hold temperature, got %.1f °C", c.Temperature())
	}
}

func TestFeedStateString(t *testing.T) {
	if FeedUp.String() != "up" || FeedDown.String() != "down" {
		t.Error("FeedState string values wrong")
	}
}
