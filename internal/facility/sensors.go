// Package facility models the data-center environment around the quantum
// computer: the environmental conditions a site survey must measure (§2.1,
// Table 1), the power and cooling infrastructure with optional redundancy
// (§2.2, §2.3, lesson 3), and the physical access constraints (§2.5).
//
// Real survey instruments (3-axis fluxgate magnetometers, vibration sensors,
// omnidirectional microphones, thermometers, hygrometers) are replaced by
// synthetic signal generators that produce physically-plausible time series
// for a configurable environment, so the measurement → spectral analysis →
// acceptance pipeline is exercised end to end.
package facility

import (
	"math"
	"math/rand"
)

// Environment describes the disturbance sources present at a candidate site.
// All values describe amplitudes at the planned cryostat location, i.e. after
// whatever attenuation distance provides.
type Environment struct {
	// DC magnetic field per axis, tesla. Earth's field is ~50 µT; steel
	// structures and DC rail systems shift it.
	DCFieldT [3]float64

	// Mains interference: 50 Hz AC magnetic field amplitude per axis, tesla.
	MainsFieldT [3]float64

	// TramLine injects low-frequency vibration bursts and quasi-DC magnetic
	// transients, the classic streetcar signature (§2.1).
	TramLine *TramLine

	// HVAC contributes a fixed-frequency vibration and acoustic hum.
	HVAC *HVAC

	// AmbientSoundDBA is the broadband background noise level.
	AmbientSoundDBA float64

	// MusicEvents models impulsive loud broadband noise ("Finnish death
	// metal played at high volume", §2.1): occasional loud wideband bursts.
	MusicEvents *MusicEvents

	// BaseVibration is the broadband floor vibration RMS, m/s.
	BaseVibration float64

	// Temperature control quality at the electronics cabinet location.
	TempSetpointC  float64 // nominal room temperature
	TempDailySwing float64 // peak amplitude of the 24 h cycle, °C
	TempNoiseC     float64 // fast fluctuation sigma, °C

	// Relative humidity behaviour, percent.
	HumidityMean  float64
	HumiditySwing float64 // daily cycle amplitude
	HumidityNoise float64
}

// TramLine models a nearby streetcar/metro line.
type TramLine struct {
	DistanceM    float64 // distance from the site, metres
	PassInterval float64 // mean seconds between tram passes
	// Reference amplitudes at 10 m, attenuated as 1/r for vibration
	// (surface waves) and 1/r^2 for the magnetic transient.
	VibAt10m   float64 // m/s RMS during a pass
	FieldAt10m float64 // tesla quasi-DC magnetic swing during a pass
}

// vibAmplitude returns the vibration velocity amplitude at the site.
func (t *TramLine) vibAmplitude() float64 {
	if t == nil || t.DistanceM <= 0 {
		return 0
	}
	return t.VibAt10m * 10 / t.DistanceM
}

func (t *TramLine) fieldAmplitude() float64 {
	if t == nil || t.DistanceM <= 0 {
		return 0
	}
	return t.FieldAt10m * 100 / (t.DistanceM * t.DistanceM)
}

// HVAC models the building air-handling plant.
type HVAC struct {
	FrequencyHz float64 // blower rotation frequency, typically 20-60 Hz
	VibRMS      float64 // vibration contribution, m/s RMS
	SoundDBA    float64 // acoustic contribution at the cryostat location
}

// MusicEvents models impulsive wideband acoustic events.
type MusicEvents struct {
	MeanInterval float64 // seconds between events
	Duration     float64 // event length, seconds
	LevelDBA     float64 // level during an event
}

// Quiet returns an environment comfortably inside every Table 1 limit —
// the profile of a well-chosen basement lab.
func Quiet() Environment {
	return Environment{
		DCFieldT:        [3]float64{48e-6, 5e-6, 12e-6}, // Earth field dominated
		MainsFieldT:     [3]float64{0.05e-6, 0.04e-6, 0.08e-6},
		AmbientSoundDBA: 52,
		BaseVibration:   40e-6,
		TempSetpointC:   21,
		TempDailySwing:  0.25,
		TempNoiseC:      0.05,
		HumidityMean:    42,
		HumiditySwing:   4,
		HumidityNoise:   0.8,
	}
}

// NoisyUrban returns an environment with a close tram line and weak HVAC
// isolation — the profile that fails the survey.
func NoisyUrban() Environment {
	env := Quiet()
	env.TramLine = &TramLine{
		DistanceM:    20,
		PassInterval: 300,
		VibAt10m:     2500e-6,
		FieldAt10m:   80e-6,
	}
	env.HVAC = &HVAC{FrequencyHz: 48, VibRMS: 250e-6, SoundDBA: 74}
	env.AmbientSoundDBA = 68
	env.MainsFieldT = [3]float64{1.6e-6, 0.9e-6, 2.1e-6}
	env.TempDailySwing = 1.6
	env.HumidityMean = 55
	env.HumiditySwing = 12
	return env
}

// Borderline returns an environment near the acceptance limits: passable
// after mitigation, the profile that makes survey quantification worthwhile.
func Borderline() Environment {
	env := Quiet()
	env.TramLine = &TramLine{
		DistanceM:    220,
		PassInterval: 240,
		VibAt10m:     2500e-6,
		FieldAt10m:   80e-6,
	}
	env.HVAC = &HVAC{FrequencyHz: 32, VibRMS: 120e-6, SoundDBA: 66}
	env.AmbientSoundDBA = 61
	env.MainsFieldT = [3]float64{0.5e-6, 0.3e-6, 0.7e-6}
	env.TempDailySwing = 0.8
	return env
}

// SensorSuite generates the synthetic instrument recordings for an
// environment. It is deterministic for a given seed.
type SensorSuite struct {
	Env  Environment
	Seed int64
}

// MagneticSample is one 3-axis fluxgate reading in tesla.
type MagneticSample [3]float64

// RecordDCField samples the 3-axis fluxgate at rate Hz for dur seconds and
// returns per-axis time series (tesla), including slow tram-induced swings.
func (s *SensorSuite) RecordDCField(rate, dur float64) [3][]float64 {
	n := int(rate * dur)
	rng := rand.New(rand.NewSource(s.Seed ^ 0x1))
	var out [3][]float64
	for a := 0; a < 3; a++ {
		out[a] = make([]float64, n)
	}
	tram := s.Env.TramLine
	tramAmp := tram.fieldAmplitude()
	for i := 0; i < n; i++ {
		t := float64(i) / rate
		tramSwing := 0.0
		if tram != nil && tramAmp > 0 {
			// Quasi-periodic passes: raised-cosine bumps of ~20 s.
			phase := math.Mod(t, tram.PassInterval)
			if phase < 20 {
				tramSwing = tramAmp * 0.5 * (1 - math.Cos(2*math.Pi*phase/20))
			}
		}
		for a := 0; a < 3; a++ {
			out[a][i] = s.Env.DCFieldT[a] + tramSwing + rng.NormFloat64()*5e-9
		}
	}
	return out
}

// RecordACField samples the AC (5 Hz – 1 kHz) magnetic environment at rate Hz
// for dur seconds. The dominant term is mains hum at 50 Hz plus harmonics.
func (s *SensorSuite) RecordACField(rate, dur float64) [3][]float64 {
	n := int(rate * dur)
	rng := rand.New(rand.NewSource(s.Seed ^ 0x2))
	var out [3][]float64
	for a := 0; a < 3; a++ {
		out[a] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		t := float64(i) / rate
		for a := 0; a < 3; a++ {
			amp := s.Env.MainsFieldT[a]
			v := amp * math.Sin(2*math.Pi*50*t)
			v += 0.3 * amp * math.Sin(2*math.Pi*150*t) // 3rd harmonic
			v += 0.1 * amp * math.Sin(2*math.Pi*250*t) // 5th harmonic
			v += rng.NormFloat64() * 2e-9
			out[a][i] = v
		}
	}
	return out
}

// RecordVibration samples the single-axis floor vibration sensor (velocity,
// m/s) at rate Hz for dur seconds.
func (s *SensorSuite) RecordVibration(rate, dur float64) []float64 {
	n := int(rate * dur)
	rng := rand.New(rand.NewSource(s.Seed ^ 0x3))
	out := make([]float64, n)
	env := s.Env
	tramAmp := env.TramLine.vibAmplitude()
	for i := 0; i < n; i++ {
		t := float64(i) / rate
		v := rng.NormFloat64() * env.BaseVibration
		if env.HVAC != nil {
			v += env.HVAC.VibRMS * math.Sqrt2 * math.Sin(2*math.Pi*env.HVAC.FrequencyHz*t)
		}
		if env.TramLine != nil && tramAmp > 0 {
			phase := math.Mod(t, env.TramLine.PassInterval)
			if phase < 20 {
				envlp := 0.5 * (1 - math.Cos(2*math.Pi*phase/20))
				// Tram energy concentrates around 5-25 Hz.
				v += tramAmp * envlp * (math.Sin(2*math.Pi*8*t) + 0.6*math.Sin(2*math.Pi*16*t))
			}
		}
		out[i] = v
	}
	return out
}

// RecordSound samples the omnidirectional microphone (pressure, pascal) at
// rate Hz for dur seconds. The background is shaped broadband noise; HVAC
// adds a tonal hum; music events add loud wideband bursts.
func (s *SensorSuite) RecordSound(rate, dur float64) []float64 {
	n := int(rate * dur)
	rng := rand.New(rand.NewSource(s.Seed ^ 0x4))
	out := make([]float64, n)
	basePa := splToRMSPa(s.Env.AmbientSoundDBA)
	hvacPa := 0.0
	hvacFreq := 0.0
	if s.Env.HVAC != nil {
		hvacPa = splToRMSPa(s.Env.HVAC.SoundDBA)
		hvacFreq = s.Env.HVAC.FrequencyHz * 4 // blade-pass tone
	}
	musicPa := 0.0
	if s.Env.MusicEvents != nil {
		musicPa = splToRMSPa(s.Env.MusicEvents.LevelDBA)
	}
	for i := 0; i < n; i++ {
		t := float64(i) / rate
		v := rng.NormFloat64() * basePa
		if hvacPa > 0 {
			v += hvacPa * math.Sqrt2 * math.Sin(2*math.Pi*hvacFreq*t)
		}
		if me := s.Env.MusicEvents; me != nil && musicPa > 0 {
			phase := math.Mod(t, me.MeanInterval)
			if phase < me.Duration {
				v += rng.NormFloat64() * musicPa
			}
		}
		out[i] = v
	}
	return out
}

// RecordTemperature samples the thermometer at the electronics cabinet
// (°C) at rate Hz for dur seconds (dur must cover >= 25 h for a valid survey,
// per §2.1). The series contains a 24 h cycle plus fast noise.
func (s *SensorSuite) RecordTemperature(rate, dur float64) []float64 {
	n := int(rate * dur)
	rng := rand.New(rand.NewSource(s.Seed ^ 0x5))
	out := make([]float64, n)
	const day = 86400.0
	for i := 0; i < n; i++ {
		t := float64(i) / rate
		out[i] = s.Env.TempSetpointC +
			s.Env.TempDailySwing*math.Sin(2*math.Pi*t/day) +
			rng.NormFloat64()*s.Env.TempNoiseC
	}
	return out
}

// RecordHumidity samples the hygrometer (percent RH) at rate Hz for dur
// seconds.
func (s *SensorSuite) RecordHumidity(rate, dur float64) []float64 {
	n := int(rate * dur)
	rng := rand.New(rand.NewSource(s.Seed ^ 0x6))
	out := make([]float64, n)
	const day = 86400.0
	for i := 0; i < n; i++ {
		t := float64(i) / rate
		v := s.Env.HumidityMean +
			s.Env.HumiditySwing*math.Sin(2*math.Pi*t/day+1.3) +
			rng.NormFloat64()*s.Env.HumidityNoise
		if v < 0 {
			v = 0
		}
		if v > 100 {
			v = 100
		}
		out[i] = v
	}
	return out
}

// splToRMSPa converts a dBA-ish broadband level into an RMS pascal figure for
// synthesis. For broadband noise we treat dBA ≈ dB SPL, which is adequate for
// generating test signals whose analyzed level lands near the target.
func splToRMSPa(db float64) float64 {
	return 20e-6 * math.Pow(10, db/20)
}
