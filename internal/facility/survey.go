package facility

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/dsp"
)

// Acceptance limits from Table 1 of the paper.
const (
	DCFieldLimitT          = 100e-6 // <100 µT per axis
	ACFieldLimitT          = 1e-6   // <1 µT peak-to-peak, 5 Hz – 1 kHz
	ACFieldLoHz            = 5.0
	ACFieldHiHz            = 1000.0
	VibrationLimitRMS      = 400e-6 // <400 µm/s RMS, 1–200 Hz
	VibrationLoHz          = 1.0
	VibrationHiHz          = 200.0
	SoundLimitDBA          = 80.0 // <80 dBA over 20 Hz – 20 kHz
	SoundLoHz              = 20.0
	SoundHiHz              = 20000.0
	TempExcursionLimitC    = 1.0 // ΔT < ±1 °C within 12 h around set point
	TempSetpointLoC        = 20.0
	TempSetpointHiC        = 25.0
	HumidityLoPct          = 25.0
	HumidityHiPct          = 60.0
	MinSurveyHours         = 25.0 // temp/humidity must cover a full day cycle
	MinDeliveryPathWidthCM = 90.0
	MaxFloorLoadKgM2       = 1000.0
	MinCellTowerDistanceM  = 100.0
	MinFluorescentDistM    = 2.0
)

// Criterion identifies one Table 1 measurement.
type Criterion string

const (
	CritDCField     Criterion = "dc-magnetic-field"
	CritACField     Criterion = "ac-magnetic-field"
	CritVibration   Criterion = "floor-vibration"
	CritSound       Criterion = "sound-pressure"
	CritTemperature Criterion = "temperature"
	CritHumidity    Criterion = "humidity"
)

// Result is the outcome of evaluating one criterion at one site.
type Result struct {
	Criterion Criterion
	Measured  float64 // worst-case measured value, in criterion units
	Limit     float64
	Unit      string
	Pass      bool
	Detail    string
}

func (r Result) String() string {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%-20s %-5s measured %-12.4g limit %-12.4g %s  %s",
		r.Criterion, verdict, r.Measured, r.Limit, r.Unit, r.Detail)
}

// Site is a candidate location inside the HPC facility.
type Site struct {
	Name            string
	Env             Environment
	DeliveryWidthCM float64 // narrowest point on the delivery path (§2.1)
	FloorLoadKgM2   float64 // floor load rating
	CellTowerDistM  float64 // distance to nearest cellular base station
	FluorescentM    float64 // distance to nearest fluorescent lighting
}

// SurveyConfig controls the synthetic measurement campaign.
type SurveyConfig struct {
	Seed int64
	// Sample rates (Hz) and durations (s) per instrument. Zero values take
	// the defaults below.
	MagRate, MagDur     float64
	VibRate, VibDur     float64
	SoundRate, SoundDur float64
	SlowRate, SlowDur   float64 // temperature & humidity
}

func (c *SurveyConfig) defaults() {
	if c.MagRate == 0 {
		c.MagRate = 4096
	}
	if c.MagDur == 0 {
		c.MagDur = 8
	}
	if c.VibRate == 0 {
		c.VibRate = 1024
	}
	if c.VibDur == 0 {
		c.VibDur = 32
	}
	if c.SoundRate == 0 {
		c.SoundRate = 48000
	}
	if c.SoundDur == 0 {
		c.SoundDur = 2
	}
	if c.SlowRate == 0 {
		c.SlowRate = 1.0 / 60 // one sample a minute
	}
	if c.SlowDur == 0 {
		c.SlowDur = 26 * 3600 // 26 h, above the 25 h minimum
	}
}

// Report is the full survey outcome for one site.
type Report struct {
	Site       string
	Results    []Result
	Structural []Result // delivery path, floor load, distances
	Accepted   bool
}

// FailureCount returns how many criteria (environmental + structural) failed.
func (r *Report) FailureCount() int {
	n := 0
	for _, res := range r.Results {
		if !res.Pass {
			n++
		}
	}
	for _, res := range r.Structural {
		if !res.Pass {
			n++
		}
	}
	return n
}

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Site survey: %s\n", r.Site)
	for _, res := range r.Results {
		fmt.Fprintf(&b, "  %s\n", res)
	}
	for _, res := range r.Structural {
		fmt.Fprintf(&b, "  %s\n", res)
	}
	verdict := "ACCEPTED"
	if !r.Accepted {
		verdict = "REJECTED"
	}
	fmt.Fprintf(&b, "  => %s (%d failing criteria)\n", verdict, r.FailureCount())
	return b.String()
}

// Survey runs the full Table 1 measurement campaign against a site and
// evaluates every acceptance criterion.
func Survey(site Site, cfg SurveyConfig) (*Report, error) {
	cfg.defaults()
	if cfg.SlowDur < MinSurveyHours*3600 {
		return nil, fmt.Errorf("facility: temperature/humidity measurement must cover at least %.0f h to capture a full building cycle, got %.1f h",
			MinSurveyHours, cfg.SlowDur/3600)
	}
	suite := &SensorSuite{Env: site.Env, Seed: cfg.Seed}
	rep := &Report{Site: site.Name}

	// --- DC magnetic field: worst per-axis mean must stay under 100 µT.
	dc := suite.RecordDCField(cfg.MagRate, cfg.MagDur)
	worstDC := 0.0
	axis := 0
	for a := 0; a < 3; a++ {
		_, maxV := dsp.MinMax(dc[a])
		if v := math.Abs(maxV); v > worstDC {
			worstDC, axis = v, a
		}
	}
	rep.Results = append(rep.Results, Result{
		Criterion: CritDCField, Measured: worstDC, Limit: DCFieldLimitT, Unit: "T",
		Pass:   worstDC < DCFieldLimitT,
		Detail: fmt.Sprintf("worst axis %d", axis),
	})

	// --- AC magnetic field: peak-to-peak spectrum amplitude in 5 Hz–1 kHz.
	ac := suite.RecordACField(cfg.MagRate, cfg.MagDur)
	worstAC := 0.0
	worstFreq := 0.0
	for a := 0; a < 3; a++ {
		spec, err := dsp.AmplitudeSpectrum(ac[a], cfg.MagRate, dsp.Hann)
		if err != nil {
			return nil, fmt.Errorf("facility: AC field spectrum: %w", err)
		}
		pp := spec.PeakToPeakInBand(ACFieldLoHz, ACFieldHiHz)
		if pp > worstAC {
			worstAC = pp
			_, worstFreq = spec.PeakInBand(ACFieldLoHz, ACFieldHiHz)
		}
	}
	rep.Results = append(rep.Results, Result{
		Criterion: CritACField, Measured: worstAC, Limit: ACFieldLimitT, Unit: "T p-p",
		Pass:   worstAC < ACFieldLimitT,
		Detail: fmt.Sprintf("dominant component at %.0f Hz", worstFreq),
	})

	// --- Floor vibration: RMS spectrum amplitude in 1–200 Hz.
	vib := suite.RecordVibration(cfg.VibRate, cfg.VibDur)
	vibSpec, err := dsp.AmplitudeSpectrum(vib, cfg.VibRate, dsp.Hann)
	if err != nil {
		return nil, fmt.Errorf("facility: vibration spectrum: %w", err)
	}
	vibRMS := vibSpec.BandRMS(VibrationLoHz, VibrationHiHz)
	_, vibPeakFreq := vibSpec.PeakInBand(VibrationLoHz, VibrationHiHz)
	rep.Results = append(rep.Results, Result{
		Criterion: CritVibration, Measured: vibRMS, Limit: VibrationLimitRMS, Unit: "m/s RMS",
		Pass:   vibRMS < VibrationLimitRMS,
		Detail: fmt.Sprintf("strongest line at %.0f Hz (ISO office limit)", vibPeakFreq),
	})

	// --- Sound pressure: integrated dBA over 20 Hz – 20 kHz.
	snd := suite.RecordSound(cfg.SoundRate, cfg.SoundDur)
	dba, err := dsp.SoundLevelDBA(snd, cfg.SoundRate, SoundLoHz, SoundHiHz)
	if err != nil {
		return nil, fmt.Errorf("facility: sound analysis: %w", err)
	}
	rep.Results = append(rep.Results, Result{
		Criterion: CritSound, Measured: dba, Limit: SoundLimitDBA, Unit: "dBA",
		Pass:   dba < SoundLimitDBA,
		Detail: "integrated 20 Hz – 20 kHz",
	})

	// --- Temperature: ΔT < ±1 °C within any 12 h window around a set point
	// in 20–25 °C. We use the series median as the achieved set point.
	temp := suite.RecordTemperature(cfg.SlowRate, cfg.SlowDur)
	setpoint := dsp.Percentile(temp, 50)
	window := int(12 * 3600 * cfg.SlowRate)
	worstDrift := dsp.MaxDriftOverWindow(temp, window) / 2 // ± excursion
	tempOK := worstDrift < TempExcursionLimitC &&
		setpoint >= TempSetpointLoC && setpoint <= TempSetpointHiC
	rep.Results = append(rep.Results, Result{
		Criterion: CritTemperature, Measured: worstDrift, Limit: TempExcursionLimitC, Unit: "°C ±",
		Pass:   tempOK,
		Detail: fmt.Sprintf("set point %.1f °C over %.0f h", setpoint, cfg.SlowDur/3600),
	})

	// --- Humidity: 25–60 % non-condensing over the whole campaign.
	hum := suite.RecordHumidity(cfg.SlowRate, cfg.SlowDur)
	minH, maxH := dsp.MinMax(hum)
	humOK := minH >= HumidityLoPct && maxH <= HumidityHiPct
	measuredH := maxH
	if HumidityLoPct-minH > maxH-HumidityHiPct {
		measuredH = minH
	}
	rep.Results = append(rep.Results, Result{
		Criterion: CritHumidity, Measured: measuredH, Limit: HumidityHiPct, Unit: "%RH",
		Pass:   humOK,
		Detail: fmt.Sprintf("range %.1f–%.1f %%", minH, maxH),
	})

	// --- Structural criteria (§2.1, §2.5).
	rep.Structural = append(rep.Structural,
		Result{
			Criterion: "delivery-path-width", Measured: site.DeliveryWidthCM,
			Limit: MinDeliveryPathWidthCM, Unit: "cm",
			Pass:   site.DeliveryWidthCM >= MinDeliveryPathWidthCM,
			Detail: "narrowest point dock→staging",
		},
		Result{
			Criterion: "floor-load", Measured: site.FloorLoadKgM2,
			Limit: MaxFloorLoadKgM2, Unit: "kg/m²",
			Pass:   site.FloorLoadKgM2 >= MaxFloorLoadKgM2,
			Detail: "system requires 1000 kg/m²",
		},
		Result{
			Criterion: "cell-tower-distance", Measured: site.CellTowerDistM,
			Limit: MinCellTowerDistanceM, Unit: "m",
			Pass:   site.CellTowerDistM >= MinCellTowerDistanceM,
			Detail: "non-ionizing radiation sources",
		},
		Result{
			Criterion: "fluorescent-distance", Measured: site.FluorescentM,
			Limit: MinFluorescentDistM, Unit: "m",
			Pass:   site.FluorescentM >= MinFluorescentDistM,
			Detail: "fluorescent lighting",
		},
	)

	rep.Accepted = rep.FailureCount() == 0
	return rep, nil
}

// RankSites surveys every candidate and returns reports sorted best-first
// (fewest failures, then name for determinism). This mirrors the three-
// candidate selection process described in §2.1.
func RankSites(sites []Site, cfg SurveyConfig) ([]*Report, error) {
	reports := make([]*Report, 0, len(sites))
	for _, s := range sites {
		rep, err := Survey(s, cfg)
		if err != nil {
			return nil, fmt.Errorf("facility: surveying %s: %w", s.Name, err)
		}
		reports = append(reports, rep)
	}
	sort.SliceStable(reports, func(i, j int) bool {
		fi, fj := reports[i].FailureCount(), reports[j].FailureCount()
		if fi != fj {
			return fi < fj
		}
		return reports[i].Site < reports[j].Site
	})
	return reports, nil
}
