package facility

import (
	"strings"
	"testing"
)

func goodSite() Site {
	return Site{
		Name:            "basement-lab",
		Env:             Quiet(),
		DeliveryWidthCM: 120,
		FloorLoadKgM2:   1500,
		CellTowerDistM:  800,
		FluorescentM:    6,
	}
}

func TestSurveyAcceptsQuietSite(t *testing.T) {
	rep, err := Survey(goodSite(), SurveyConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatalf("quiet site rejected:\n%s", rep)
	}
	if got := rep.FailureCount(); got != 0 {
		t.Errorf("failure count = %d, want 0", got)
	}
	if len(rep.Results) != 6 {
		t.Errorf("want 6 Table 1 criteria, got %d", len(rep.Results))
	}
	if len(rep.Structural) != 4 {
		t.Errorf("want 4 structural criteria, got %d", len(rep.Structural))
	}
}

func TestSurveyRejectsNoisyUrbanSite(t *testing.T) {
	site := goodSite()
	site.Name = "street-side"
	site.Env = NoisyUrban()
	rep, err := Survey(site, SurveyConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatalf("noisy urban site accepted:\n%s", rep)
	}
	// The tram line and weak HVAC isolation must show up in vibration and
	// AC-field criteria specifically.
	failed := map[Criterion]bool{}
	for _, r := range rep.Results {
		if !r.Pass {
			failed[r.Criterion] = true
		}
	}
	if !failed[CritVibration] {
		t.Error("expected vibration criterion to fail at noisy site")
	}
	if !failed[CritACField] {
		t.Error("expected AC magnetic field criterion to fail at noisy site")
	}
}

func TestSurveyRejectsTooShortCampaign(t *testing.T) {
	_, err := Survey(goodSite(), SurveyConfig{Seed: 1, SlowDur: 10 * 3600})
	if err == nil {
		t.Fatal("expected error for <25 h temperature campaign")
	}
	if !strings.Contains(err.Error(), "25") {
		t.Errorf("error should mention the 25 h minimum: %v", err)
	}
}

func TestSurveyStructuralFailures(t *testing.T) {
	site := goodSite()
	site.DeliveryWidthCM = 80 // narrower than the 90 cm minimum
	site.FloorLoadKgM2 = 500
	site.CellTowerDistM = 30
	site.FluorescentM = 1
	rep, err := Survey(site, SurveyConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatal("site with failing structural criteria accepted")
	}
	failures := 0
	for _, r := range rep.Structural {
		if !r.Pass {
			failures++
		}
	}
	if failures != 4 {
		t.Errorf("want 4 structural failures, got %d", failures)
	}
}

func TestSurveyDetectsMusicEvents(t *testing.T) {
	site := goodSite()
	env := Quiet()
	env.MusicEvents = &MusicEvents{MeanInterval: 1, Duration: 0.8, LevelDBA: 95}
	site.Env = env
	rep, err := Survey(site, SurveyConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var sound *Result
	for i := range rep.Results {
		if rep.Results[i].Criterion == CritSound {
			sound = &rep.Results[i]
		}
	}
	if sound == nil {
		t.Fatal("no sound criterion in report")
	}
	if sound.Pass {
		t.Errorf("95 dBA music should fail the 80 dBA limit, measured %.1f dBA", sound.Measured)
	}
}

func TestSurveyTemperatureInstabilityFails(t *testing.T) {
	site := goodSite()
	env := Quiet()
	env.TempDailySwing = 2.5 // ±2.5 °C swing busts the ±1 °C criterion
	site.Env = env
	rep, err := Survey(site, SurveyConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.Criterion == CritTemperature && r.Pass {
			t.Errorf("unstable temperature passed: measured ±%.2f °C", r.Measured)
		}
	}
}

func TestSurveyHumidityOutOfRangeFails(t *testing.T) {
	site := goodSite()
	env := Quiet()
	env.HumidityMean = 70 // above the 60% ceiling
	site.Env = env
	rep, err := Survey(site, SurveyConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.Criterion == CritHumidity && r.Pass {
			t.Errorf("70%% RH should fail the 25-60%% window")
		}
	}
}

func TestSurveyIsDeterministicForSeed(t *testing.T) {
	a, err := Survey(goodSite(), SurveyConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Survey(goodSite(), SurveyConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Results {
		if a.Results[i].Measured != b.Results[i].Measured {
			t.Errorf("criterion %s not deterministic: %g vs %g",
				a.Results[i].Criterion, a.Results[i].Measured, b.Results[i].Measured)
		}
	}
}

func TestRankSitesOrdersBestFirst(t *testing.T) {
	sites := []Site{
		{Name: "street-side", Env: NoisyUrban(), DeliveryWidthCM: 100, FloorLoadKgM2: 1200, CellTowerDistM: 500, FluorescentM: 5},
		{Name: "basement", Env: Quiet(), DeliveryWidthCM: 100, FloorLoadKgM2: 1200, CellTowerDistM: 500, FluorescentM: 5},
		{Name: "mezzanine", Env: Borderline(), DeliveryWidthCM: 100, FloorLoadKgM2: 1200, CellTowerDistM: 500, FluorescentM: 5},
	}
	reports, err := RankSites(sites, SurveyConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("want 3 reports, got %d", len(reports))
	}
	if reports[0].Site != "basement" {
		t.Errorf("best site = %s, want basement", reports[0].Site)
	}
	if reports[len(reports)-1].Site != "street-side" {
		t.Errorf("worst site = %s, want street-side", reports[len(reports)-1].Site)
	}
	for i := 1; i < len(reports); i++ {
		if reports[i-1].FailureCount() > reports[i].FailureCount() {
			t.Error("reports not sorted by failure count")
		}
	}
}

func TestReportStringContainsVerdict(t *testing.T) {
	rep, err := Survey(goodSite(), SurveyConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	if !strings.Contains(s, "ACCEPTED") {
		t.Errorf("report string missing verdict:\n%s", s)
	}
	if !strings.Contains(s, "dc-magnetic-field") {
		t.Errorf("report string missing criteria:\n%s", s)
	}
}
