package federation_test

// Federation throughput harness: the fleet bench's paced-twin workload
// (GHZ jobs, 2 ms control-electronics round trip, 4 workers/device)
// driven through a federation of full qhpcd-style nodes over real HTTP —
// placement forwarding, owner proxying, and per-node worker pools all on
// the path. The "federation" section lands in BENCH_fleet.json next to
// the in-process fleet rows, so the artifact answers "what does sharding
// the fleet across nodes buy" across PRs. The release gate requires the
// 3-node federation to clear 2.2x a single node's throughput.
//
// Run order matters for the artifact: TestFleetBenchArtifact (internal/
// fleet) rewrites BENCH_fleet.json from scratch; this test then merges
// its section in. CI runs them in that order.

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/federation"
	"repro/internal/fleet"
	"repro/internal/mqss"
	"repro/internal/qdmi"
	"repro/internal/telemetry"
)

var (
	fedBench    = flag.Bool("fed.bench", false, "run the federation scaling bench and merge its section into the fleet artifact")
	fedBenchOut = flag.String("fed.bench.out", "BENCH_fleet.json", "fleet bench artifact to merge the federation section into")
)

const (
	// The per-node capacity is deliberately small (devices x workers /
	// exec latency = 200 jobs/s) so the measurement is bound by device
	// capacity, not by loopback HTTP: adding nodes then adds capacity,
	// and the proxy hops must cost less than the capacity they unlock.
	fedBenchWorkers = 2
	fedBenchDevices = 2 // per node
	fedBenchLatency = 20 * time.Millisecond
	fedBenchJobs    = 192
	fedBenchReruns  = 3
	// fedBenchLanes parallelizes submission so the client side never
	// becomes the bottleneck the devices should be: 3 nodes offer
	// 600 jobs/s, and at ~40 ms per submit+watch round trip that needs
	// at least ~24 jobs in flight to saturate.
	fedBenchLanes = 32
)

// fedBenchRow is one node-count row of the federation section.
type fedBenchRow struct {
	Nodes      int     `json:"nodes"`
	Devices    int     `json:"devices_per_node"`
	Workers    int     `json:"workers_per_device"`
	Jobs       int     `json:"jobs"`
	Reruns     int     `json:"reruns"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	P50Ms      float64 `json:"p50_ms"`
	P95Ms      float64 `json:"p95_ms"`
	SpreadPct  float64 `json:"spread_pct"`
}

// fedBenchSection is the artifact schema recorded under "federation".
type fedBenchSection struct {
	Harness string        `json:"harness"`
	Rows    []fedBenchRow `json:"rows"`
	// Speedup3v1 is 3-node over 1-node median throughput; the release gate
	// requires >= 2.2x (cross-node proxying may cost at most ~27% of
	// perfect 3x scaling).
	Speedup3v1 float64 `json:"speedup_3_nodes_over_1"`
}

// fedBenchNode is one federation member of the bench stack.
type fedBenchNode struct {
	name   string
	server *mqss.Server
	hs     *httptest.Server
	fed    *federation.Node
	fleet  *fleet.Scheduler
	client *mqss.Client
}

// buildFedBenchStack assembles n federated nodes, each a fleet of paced
// twin devices behind a live v2 listener. Caller must close().
func buildFedBenchStack(t *testing.T, n int) []*fedBenchNode {
	t.Helper()
	nodes := make([]*fedBenchNode, n)
	urls := map[string]string{}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("bench-node-%d", i)
		f := fleet.New(fleet.PolicyLeastLoaded, nil)
		for d := 0; d < fedBenchDevices; d++ {
			devName := fmt.Sprintf("%s-dev-%d", name, d)
			qpu, err := device.New(device.Config{
				Name: devName, Rows: 4, Cols: 5,
				Seed: int64(100*i + d + 1), DigitalTwin: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			qpu.SetExecLatency(fedBenchLatency)
			if err := f.AddDevice(devName, qdmi.NewDevice(qpu, nil), fedBenchWorkers); err != nil {
				t.Fatal(err)
			}
		}
		server := mqss.NewFleetServer(f)
		hs := httptest.NewServer(server)
		hs.Client().Transport.(*http.Transport).MaxIdleConnsPerHost = fedBenchJobs
		urls[name] = hs.URL
		nodes[i] = &fedBenchNode{name: name, server: server, hs: hs, fleet: f}
	}
	for _, nd := range nodes {
		peers := map[string]string{}
		for id, u := range urls {
			if id != nd.name {
				peers[id] = u
			}
		}
		fed, err := federation.New(federation.Config{
			NodeID: nd.name, SelfURL: urls[nd.name], Peers: peers,
		})
		if err != nil {
			t.Fatal(err)
		}
		nd.fed = fed
		nd.fleet.SetIDBase(fed.SelfBase())
		nd.fleet.SetIDLimit(fed.SelfLimit())
		nd.fleet.SetNodeID(nd.name)
		nd.server.AttachFederation(fed)
		nd.client = mqss.NewRemoteClient(nd.hs.URL, nd.hs.Client())
	}
	return nodes
}

func closeFedBenchStack(nodes []*fedBenchNode) {
	for _, nd := range nodes {
		nd.fed.Close()
		nd.server.Close()
		nd.hs.Close()
		nd.fleet.Stop()
	}
}

// runFedLoad drives the workload through an n-node federation: submissions
// enter round-robin across every member (as a load balancer would spread
// clients), placement forwards each to its owner, and one watch stream per
// job rides a proxy whenever the entry node is not the owner.
func runFedLoad(t *testing.T, n int) (jps, p50, p95 float64) {
	t.Helper()
	nodes := buildFedBenchStack(t, n)
	defer closeFedBenchStack(nodes)
	circs := []*circuit.Circuit{circuit.GHZ(3), circuit.GHZ(4), circuit.GHZ(5), circuit.GHZ(6)}
	ctx := t.Context()

	start := time.Now()
	latencies := make([]float64, fedBenchJobs)
	var wg sync.WaitGroup
	var mu sync.Mutex
	failures := 0
	for lane := 0; lane < fedBenchLanes; lane++ {
		lane := lane
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := lane; i < fedBenchJobs; i += fedBenchLanes {
				entry := nodes[i%len(nodes)]
				submitted := time.Now()
				h, err := entry.client.Submit(ctx, mqss.SubmitRequest{
					Circuit: circs[i%len(circs)], Shots: 10,
					User: fmt.Sprintf("bench-%02d", i%8),
				}, "")
				if err != nil {
					t.Error(err)
					return
				}
				job, err := h.Watch(ctx, nil)
				lat := float64(time.Since(submitted).Microseconds()) / 1000
				mu.Lock()
				latencies[i] = lat
				if err != nil || job.State != mqss.StateDone {
					failures++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if failures > 0 {
		t.Fatalf("%d/%d federated jobs failed", failures, fedBenchJobs)
	}
	if n > 1 {
		crossed := uint64(0)
		for _, nd := range nodes {
			crossed += nd.fed.Metrics().ForwardedSubmits
		}
		if crossed == 0 {
			t.Fatal("no submission ever crossed nodes: the bench measured nothing federated")
		}
	}
	sort.Float64s(latencies)
	return float64(fedBenchJobs) / elapsed.Seconds(),
		latencies[fedBenchJobs/2], latencies[fedBenchJobs*95/100]
}

// TestFederationBenchArtifact measures federated jobs/s at 1 and 3 nodes
// and merges the "federation" section into BENCH_fleet.json. Gated behind
// -fed.bench so the regular test run stays timing-free; CI runs it in the
// federation-lab job and fails loudly if cross-node scaling collapses.
func TestFederationBenchArtifact(t *testing.T) {
	if !*fedBench {
		t.Skip("pass -fed.bench to run the federation scaling harness")
	}
	section := fedBenchSection{
		Harness: "go test ./internal/federation -run TestFederationBenchArtifact -fed.bench",
	}
	for _, n := range []int{1, 3} {
		var jpsRuns, p50Runs, p95Runs []float64
		for r := 0; r < fedBenchReruns; r++ {
			jps, p50, p95 := runFedLoad(t, n)
			jpsRuns = append(jpsRuns, jps)
			p50Runs = append(p50Runs, p50)
			p95Runs = append(p95Runs, p95)
		}
		row := fedBenchRow{
			Nodes: n, Devices: fedBenchDevices, Workers: fedBenchWorkers,
			Jobs: fedBenchJobs, Reruns: fedBenchReruns,
			JobsPerSec: telemetry.Median(jpsRuns),
			P50Ms:      telemetry.Median(p50Runs),
			P95Ms:      telemetry.Median(p95Runs),
			SpreadPct:  telemetry.SpreadPct(jpsRuns),
		}
		section.Rows = append(section.Rows, row)
		t.Logf("%d node(s): median %.0f jobs/s over %d runs (spread %.1f%%), p50 %.2f ms, p95 %.2f ms",
			n, row.JobsPerSec, fedBenchReruns, row.SpreadPct, row.P50Ms, row.P95Ms)
	}
	section.Speedup3v1 = section.Rows[1].JobsPerSec / section.Rows[0].JobsPerSec

	// Merge into the fleet artifact without disturbing its other sections.
	art := map[string]interface{}{}
	if data, err := os.ReadFile(*fedBenchOut); err == nil {
		if err := json.Unmarshal(data, &art); err != nil {
			t.Fatalf("parsing %s: %v", *fedBenchOut, err)
		}
	}
	art["federation"] = section
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*fedBenchOut, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("merged federation section into %s (3-vs-1 node speedup: %.2fx)", *fedBenchOut, section.Speedup3v1)
	if section.Speedup3v1 < 2.2 {
		t.Fatalf("federation scaling regression: 3 nodes gave %.2fx over 1, want >= 2.2x", section.Speedup3v1)
	}
}
