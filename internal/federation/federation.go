// Package federation glues N qhpcd nodes — each with its own fleet,
// qrm pipelines, and durable store — into one logical control plane.
//
// Placement: new jobs are placed on a node by rendezvous (highest-random-
// weight) hashing over (tenant, idempotency-key). Retries carrying the
// same idempotency key therefore land on the same owner regardless of
// which node they entered through, so idempotent replay keeps working
// across the federation. Submissions without a key are spread by a
// per-entry-node counter.
//
// Directory: job IDs are globally unique because the ID space is
// partitioned — the i-th node (in sorted node-ID order) mints IDs in
// (i*IDStride, (i+1)*IDStride]. Owner lookup for an existing job is a
// pure function of its ID, so the rendezvous directory needs no
// replication and survives any subset of nodes crashing.
//
// Liveness: every node heartbeats every peer. A peer is considered dead
// once DeadAfter elapses without a successful exchange in either
// direction. Jobs owned by a dead peer are NOT re-placed: the peer's
// durable store is the single source of truth for them, and re-placing
// would risk double execution when it restarts and replays its WAL.
// Submissions hashed to a dead owner fail with a retryable 503 instead.
package federation

import (
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// IDStride partitions the global job-ID space between nodes: the
	// node at sorted index i mints IDs in (i*IDStride, (i+1)*IDStride].
	IDStride = 10_000_000

	// HeaderNode carries the sending node's ID on heartbeats and
	// proxied requests.
	HeaderNode = "X-QHPC-Node"
	// HeaderForwardedFrom marks a request that was already proxied once.
	// A node receiving it must not proxy again; doing so would mean the
	// directory views disagree, which is a hard error, not a retry.
	HeaderForwardedFrom = "X-QHPC-Forwarded-From"
)

// Config describes one node's view of the federation.
type Config struct {
	// NodeID names this node; must be unique across the federation.
	NodeID string
	// SelfURL is the base URL peers can reach this node at.
	SelfURL string
	// Peers maps peer node IDs to their base URLs. It must not contain
	// NodeID; the full member list is Peers ∪ {NodeID}.
	Peers map[string]string
	// HeartbeatEvery is the heartbeat period (default 1s).
	HeartbeatEvery time.Duration
	// DeadAfter is how long a peer may be silent before it is declared
	// dead (default 3×HeartbeatEvery).
	DeadAfter time.Duration
	// Client is the HTTP client used for heartbeats (default: 2s timeout).
	Client *http.Client
}

// PeerStatus is one row of the federation membership table.
type PeerStatus struct {
	ID       string `json:"id"`
	URL      string `json:"url"`
	Self     bool   `json:"self,omitempty"`
	Alive    bool   `json:"alive"`
	IDBase   int    `json:"id_base"`
	LastSeen int64  `json:"last_seen_ms"` // ms since last contact; -1 if never, 0 for self
}

// Status is the snapshot served by GET /api/v2/federation/status.
type Status struct {
	NodeID string       `json:"node_id"`
	Nodes  int          `json:"nodes"`
	Alive  int          `json:"alive"`
	Peers  []PeerStatus `json:"peers"`
}

// Metrics is a counter snapshot for the qhpc_fed_* telemetry families.
type Metrics struct {
	PeersAlive       int
	PeersDead        int
	HeartbeatsSent   uint64
	HeartbeatsFailed uint64
	ForwardedSubmits uint64
	ProxiedReads     uint64
	ProxiedStreams   uint64
	ProxyErrors      uint64
}

// Node is one member of the federation. All methods are safe for
// concurrent use.
type Node struct {
	cfg   Config
	ids   []string       // all member IDs, sorted; index defines the ID base
	base  map[string]int // node ID -> first job ID minus one
	httpc *http.Client

	mu        sync.Mutex
	lastSeen  map[string]time.Time // peer ID -> last successful contact
	started   bool
	startedAt time.Time // when the heartbeat loop began
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	spread           atomic.Uint64 // keyless-submission spread counter
	heartbeatsSent   atomic.Uint64
	heartbeatsFailed atomic.Uint64
	forwardedSubmits atomic.Uint64
	proxiedReads     atomic.Uint64
	proxiedStreams   atomic.Uint64
	proxyErrors      atomic.Uint64
}

// New validates cfg and builds the node. The member list (and therefore
// the ID-space partition) is fixed at construction; every node in the
// federation must be configured with the same membership.
func New(cfg Config) (*Node, error) {
	if cfg.NodeID == "" {
		return nil, fmt.Errorf("federation: NodeID is required")
	}
	if _, ok := cfg.Peers[cfg.NodeID]; ok {
		return nil, fmt.Errorf("federation: peers must not include self %q", cfg.NodeID)
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = time.Second
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 3 * cfg.HeartbeatEvery
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 2 * time.Second}
	}
	ids := make([]string, 0, len(cfg.Peers)+1)
	ids = append(ids, cfg.NodeID)
	for id, url := range cfg.Peers {
		if id == "" || url == "" {
			return nil, fmt.Errorf("federation: peer entries need both id and url (got %q=%q)", id, url)
		}
		ids = append(ids, id)
	}
	sort.Strings(ids)
	base := make(map[string]int, len(ids))
	for i, id := range ids {
		base[id] = i * IDStride
	}
	return &Node{
		cfg:      cfg,
		ids:      ids,
		base:     base,
		httpc:    cfg.Client,
		lastSeen: make(map[string]time.Time, len(cfg.Peers)),
		stop:     make(chan struct{}),
	}, nil
}

// Self returns this node's ID.
func (n *Node) Self() string { return n.cfg.NodeID }

// SelfURL returns the base URL peers use to reach this node.
func (n *Node) SelfURL() string { return n.cfg.SelfURL }

// Members returns all member IDs in sorted (ID-base) order.
func (n *Node) Members() []string { return append([]string(nil), n.ids...) }

// SelfBase returns the job-ID base for this node: local schedulers must
// mint IDs strictly greater than it.
func (n *Node) SelfBase() int { return n.base[n.cfg.NodeID] }

// SelfLimit returns the last job ID this node may mint (inclusive). An
// ID past it falls into the next sorted member's block and OwnerOfJobID
// would silently misroute it, so local schedulers must refuse at the
// boundary rather than spill over (see the SetIDLimit wiring in qhpcd).
func (n *Node) SelfLimit() int { return n.base[n.cfg.NodeID] + IDStride }

// BaseOf returns the job-ID base for any member.
func (n *Node) BaseOf(id string) (int, bool) {
	b, ok := n.base[id]
	return b, ok
}

// OwnerOfJobID maps a job ID to the member that owns it, or "" if the
// ID is outside every member's range.
func (n *Node) OwnerOfJobID(id int) string {
	if id <= 0 {
		return ""
	}
	idx := (id - 1) / IDStride
	if idx < 0 || idx >= len(n.ids) {
		return ""
	}
	return n.ids[idx]
}

// PlaceJob picks the owner for a new submission. With an idempotency
// key the choice is rendezvous-hashed on (tenant, key) so every node
// agrees; without one, placement spreads deterministically per entry
// node but needs no cross-node agreement (the job has no identity until
// its owner mints an ID).
func (n *Node) PlaceJob(tenant, idemKey string) string {
	if idemKey == "" {
		idemKey = fmt.Sprintf("\x00spread:%s:%d", n.cfg.NodeID, n.spread.Add(1))
	}
	best := ""
	var bestScore uint64
	for _, id := range n.ids {
		h := fnv.New64a()
		io.WriteString(h, id)
		h.Write([]byte{0})
		io.WriteString(h, tenant)
		h.Write([]byte{0})
		io.WriteString(h, idemKey)
		// Raw FNV barely avalanches on short trailing differences — the
		// high bits (and so the rendezvous ordering) would be decided by
		// the node-ID prefix alone. The fmix64 finalizer spreads every
		// input bit across the digest.
		if s := fmix64(h.Sum64()); best == "" || s > bestScore || (s == bestScore && id < best) {
			best, bestScore = id, s
		}
	}
	return best
}

// fmix64 is the MurmurHash3 64-bit finalizer: a bijective avalanche mix.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// PeerURL returns the base URL of a member, or "" for self/unknown.
func (n *Node) PeerURL(id string) string {
	return strings.TrimSuffix(n.cfg.Peers[id], "/")
}

// Alive reports whether a member is currently considered alive. Self is
// always alive. Before the heartbeat loop starts every peer is presumed
// alive (static topologies, tests, benches).
func (n *Node) Alive(id string) bool {
	if id == n.cfg.NodeID {
		return true
	}
	if _, ok := n.cfg.Peers[id]; !ok {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.started {
		return true
	}
	last, ok := n.lastSeen[id]
	if !ok {
		// Never reached since the loop started: give it one full
		// DeadAfter window from loop start before declaring death.
		// (Start pre-seeds lastSeen for every configured peer, so today
		// this only triggers if that seeding is ever refactored away.)
		return time.Since(n.startedAt) <= n.cfg.DeadAfter
	}
	return time.Since(last) <= n.cfg.DeadAfter
}

// MarkSeen records a successful contact with a peer (an inbound
// heartbeat, or any successful proxied exchange).
func (n *Node) MarkSeen(id string) {
	if id == "" || id == n.cfg.NodeID {
		return
	}
	if _, ok := n.cfg.Peers[id]; !ok {
		return
	}
	n.mu.Lock()
	n.lastSeen[id] = time.Now()
	n.mu.Unlock()
}

// Start launches the heartbeat loop. It is a no-op when the node has no
// peers or was already started.
func (n *Node) Start() {
	n.mu.Lock()
	if n.started || len(n.cfg.Peers) == 0 {
		n.mu.Unlock()
		return
	}
	n.started = true
	now := time.Now()
	n.startedAt = now
	for id := range n.cfg.Peers {
		// Presume peers alive at start; death requires DeadAfter of
		// silence, not a slow first round-trip.
		if _, ok := n.lastSeen[id]; !ok {
			n.lastSeen[id] = now
		}
	}
	n.mu.Unlock()
	n.wg.Add(1)
	go n.heartbeatLoop()
}

// Close stops the heartbeat loop and waits for it to exit.
func (n *Node) Close() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.wg.Wait()
}

func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.HeartbeatEvery)
	defer t.Stop()
	n.beatAll()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.beatAll()
		}
	}
}

func (n *Node) beatAll() {
	var wg sync.WaitGroup
	for id, url := range n.cfg.Peers {
		wg.Add(1)
		go func(id, url string) {
			defer wg.Done()
			n.beatOne(id, url)
		}(id, url)
	}
	wg.Wait()
}

func (n *Node) beatOne(id, url string) {
	n.heartbeatsSent.Add(1)
	req, err := http.NewRequest(http.MethodPost, strings.TrimSuffix(url, "/")+"/api/v2/federation/heartbeat", nil)
	if err != nil {
		n.heartbeatsFailed.Add(1)
		return
	}
	req.Header.Set(HeaderNode, n.cfg.NodeID)
	resp, err := n.httpc.Do(req)
	if err != nil {
		n.heartbeatsFailed.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		n.heartbeatsFailed.Add(1)
		return
	}
	n.MarkSeen(id)
}

// Status snapshots the membership table.
func (n *Node) Status() Status {
	n.mu.Lock()
	started, startedAt := n.started, n.startedAt
	seen := make(map[string]time.Time, len(n.lastSeen))
	for id, t := range n.lastSeen {
		seen[id] = t
	}
	n.mu.Unlock()
	st := Status{NodeID: n.cfg.NodeID, Nodes: len(n.ids)}
	now := time.Now()
	for _, id := range n.ids {
		p := PeerStatus{ID: id, IDBase: n.base[id]}
		if id == n.cfg.NodeID {
			p.Self, p.Alive, p.URL = true, true, n.cfg.SelfURL
		} else {
			p.URL = n.cfg.Peers[id]
			last, ok := seen[id]
			switch {
			case !started:
				p.Alive, p.LastSeen = true, -1
			case !ok:
				// Same grace window as Alive(): unreachable while Start
				// pre-seeds lastSeen, kept consistent in case it stops.
				p.Alive, p.LastSeen = now.Sub(startedAt) <= n.cfg.DeadAfter, -1
			default:
				p.Alive = now.Sub(last) <= n.cfg.DeadAfter
				p.LastSeen = now.Sub(last).Milliseconds()
			}
		}
		if p.Alive {
			st.Alive++
		}
		st.Peers = append(st.Peers, p)
	}
	return st
}

// Metrics snapshots the qhpc_fed_* counters.
func (n *Node) Metrics() Metrics {
	st := n.Status()
	return Metrics{
		PeersAlive:       st.Alive,
		PeersDead:        st.Nodes - st.Alive,
		HeartbeatsSent:   n.heartbeatsSent.Load(),
		HeartbeatsFailed: n.heartbeatsFailed.Load(),
		ForwardedSubmits: n.forwardedSubmits.Load(),
		ProxiedReads:     n.proxiedReads.Load(),
		ProxiedStreams:   n.proxiedStreams.Load(),
		ProxyErrors:      n.proxyErrors.Load(),
	}
}

// NoteForwardedSubmit counts a submission forwarded to its hash-owner.
func (n *Node) NoteForwardedSubmit() { n.forwardedSubmits.Add(1) }

// NoteProxiedRead counts a unary GET/DELETE proxied to the owner.
func (n *Node) NoteProxiedRead() { n.proxiedReads.Add(1) }

// NoteProxiedStream counts a watch stream proxied to the owner.
func (n *Node) NoteProxiedStream() { n.proxiedStreams.Add(1) }

// NoteProxyError counts a proxy attempt that failed.
func (n *Node) NoteProxyError() { n.proxyErrors.Add(1) }
