package federation

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func mkNode(t *testing.T, self string, urls map[string]string, hb, dead time.Duration) *Node {
	t.Helper()
	peers := make(map[string]string)
	for id, u := range urls {
		if id != self {
			peers[id] = u
		}
	}
	n, err := New(Config{
		NodeID:         self,
		SelfURL:        urls[self],
		Peers:          peers,
		HeartbeatEvery: hb,
		DeadAfter:      dead,
	})
	if err != nil {
		t.Fatalf("New(%s): %v", self, err)
	}
	return n
}

func TestPlacementAgreesAcrossMembers(t *testing.T) {
	urls := map[string]string{"a": "http://a", "b": "http://b", "c": "http://c"}
	var nodes []*Node
	for id := range urls {
		nodes = append(nodes, mkNode(t, id, urls, time.Second, 3*time.Second))
	}
	owners := map[string]int{}
	for i := 0; i < 200; i++ {
		tenant := fmt.Sprintf("tenant-%d", i%7)
		key := fmt.Sprintf("key-%d", i)
		want := nodes[0].PlaceJob(tenant, key)
		for _, n := range nodes[1:] {
			if got := n.PlaceJob(tenant, key); got != want {
				t.Fatalf("placement disagrees for (%s,%s): %s vs %s (node %s)", tenant, key, want, got, n.Self())
			}
		}
		owners[want]++
	}
	if len(owners) != 3 {
		t.Fatalf("rendezvous hash parked everything on %d/3 nodes: %v", len(owners), owners)
	}
	// Same key twice must land on the same owner (idempotent replay).
	if a, b := nodes[1].PlaceJob("t", "idem-1"), nodes[2].PlaceJob("t", "idem-1"); a != b {
		t.Fatalf("same key placed differently: %s vs %s", a, b)
	}
	// Keyless placement spreads rather than pinning one owner.
	spread := map[string]bool{}
	for i := 0; i < 64; i++ {
		spread[nodes[0].PlaceJob("t", "")] = true
	}
	if len(spread) < 2 {
		t.Fatalf("keyless placement never spread: %v", spread)
	}
}

func TestIDSpacePartition(t *testing.T) {
	urls := map[string]string{"a": "http://a", "b": "http://b", "c": "http://c"}
	n := mkNode(t, "b", urls, time.Second, 3*time.Second)
	if got := n.SelfBase(); got != IDStride {
		t.Fatalf("node b base = %d, want %d", got, IDStride)
	}
	cases := []struct {
		id   int
		want string
	}{
		{1, "a"},
		{IDStride, "a"},
		{IDStride + 1, "b"},
		{2 * IDStride, "b"},
		{2*IDStride + 1, "c"},
		{3 * IDStride, "c"},
		{3*IDStride + 1, ""},
		{0, ""},
		{-5, ""},
	}
	for _, c := range cases {
		if got := n.OwnerOfJobID(c.id); got != c.want {
			t.Fatalf("OwnerOfJobID(%d) = %q, want %q", c.id, got, c.want)
		}
	}
	info, ok := n.Owner(IDStride + 7)
	if !ok || info.Node != "b" || !info.Self {
		t.Fatalf("Owner(IDStride+7) = %+v, %v", info, ok)
	}
	if _, ok := n.Owner(99 * IDStride); ok {
		t.Fatalf("Owner far out of range should not resolve")
	}
}

func TestHeartbeatLivenessAndDeath(t *testing.T) {
	// Peer "b" is a real HTTP server wired to a federation handler.
	var b *Node
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b.HandleHeartbeat(w, r)
	}))
	defer hs.Close()

	urls := map[string]string{"a": "http://unused", "b": hs.URL}
	a := mkNode(t, "a", urls, 20*time.Millisecond, 120*time.Millisecond)
	b = mkNode(t, "b", urls, 20*time.Millisecond, 120*time.Millisecond)
	defer a.Close()

	if !a.Alive("b") {
		t.Fatalf("peer should be presumed alive before the loop starts")
	}
	a.Start()
	deadline := time.Now().Add(2 * time.Second)
	for a.Metrics().HeartbeatsSent == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !a.Alive("b") {
		t.Fatalf("peer b should be alive while its server answers")
	}
	// The exchange must mark the sender alive on the receiving side too.
	if !b.Alive("a") {
		t.Fatalf("receiver should have marked sender a alive")
	}

	hs.Close()
	for a.Alive("b") && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if a.Alive("b") {
		t.Fatalf("peer b should be declared dead after DeadAfter of silence")
	}
	st := a.Status()
	if st.Alive != 1 || st.Nodes != 2 {
		t.Fatalf("status after death = %+v", st)
	}
	if m := a.Metrics(); m.HeartbeatsFailed == 0 {
		t.Fatalf("expected failed heartbeats after server close, got %+v", m)
	}

	// A received heartbeat revives the peer without a successful send.
	a.MarkSeen("b")
	if !a.Alive("b") {
		t.Fatalf("MarkSeen should revive peer b")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatalf("empty NodeID should fail")
	}
	if _, err := New(Config{NodeID: "a", Peers: map[string]string{"a": "http://a"}}); err == nil {
		t.Fatalf("self in peers should fail")
	}
	if _, err := New(Config{NodeID: "a", Peers: map[string]string{"": "http://x"}}); err == nil {
		t.Fatalf("empty peer id should fail")
	}
}
