package federation

import (
	"encoding/json"
	"net/http"
)

// OwnerInfo answers GET /api/v2/federation/owner?id=N: which member
// owns job ID N and where to reach it.
type OwnerInfo struct {
	JobID int    `json:"job_id"`
	Node  string `json:"node"`
	URL   string `json:"url,omitempty"`
	Self  bool   `json:"self,omitempty"`
	Alive bool   `json:"alive"`
}

// Owner resolves the directory entry for a job ID. ok is false when the
// ID falls outside every member's range.
func (n *Node) Owner(jobID int) (OwnerInfo, bool) {
	owner := n.OwnerOfJobID(jobID)
	if owner == "" {
		return OwnerInfo{}, false
	}
	return OwnerInfo{
		JobID: jobID,
		Node:  owner,
		URL:   n.PeerURL(owner),
		Self:  owner == n.cfg.NodeID,
		Alive: n.Alive(owner),
	}, true
}

// HandleHeartbeat serves POST /api/v2/federation/heartbeat. The sender
// names itself in the X-QHPC-Node header; a successful exchange marks
// it alive in this node's table too.
func (n *Node) HandleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	n.MarkSeen(r.Header.Get(HeaderNode))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"node": n.cfg.NodeID})
}

// HandleStatus serves GET /api/v2/federation/status.
func (n *Node) HandleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		w.WriteHeader(http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(n.Status())
}
