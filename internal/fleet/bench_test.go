package fleet

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/qrm"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// Fleet throughput harness: the workload is a stream of GHZ jobs against
// twin devices paced at a 2 ms control-electronics round trip — the same
// latency-bound regime as the single-device dispatch benchmarks (E13), so
// jobs/s scaling from 1 to N devices measures exactly what the fleet layer
// adds: device-level parallelism on top of per-device worker pools.

var (
	fleetBench    = flag.Bool("fleet.bench", false, "run the fleet bench artifact test (writes machine-readable results)")
	fleetBenchOut = flag.String("fleet.bench.out", "BENCH_fleet.json", "output path for the fleet bench artifact")
)

const (
	benchWorkersPer = 4
	benchLatency    = 2 * time.Millisecond
	// benchReruns repeats each measured configuration and gates on the
	// median, so one noisy CI run cannot flip the scaling verdict.
	benchReruns = 3
)

// runFleetLoad drives jobs GHZ submissions through a fleet of n paced twin
// devices and returns throughput plus client-observed latency quantiles.
func runFleetLoad(tb testing.TB, devices, jobs int) (jobsPerSec, p50Ms, p95Ms float64) {
	return runFleetLoadTenants(tb, devices, jobs, 1)
}

// runFleetLoadTenants is runFleetLoad with the submissions striped across
// distinct users, exercising the per-tenant WFQ claim path under contention.
func runFleetLoadTenants(tb testing.TB, devices, jobs, tenants int) (jobsPerSec, p50Ms, p95Ms float64) {
	tb.Helper()
	s := New(PolicyLeastLoaded, nil)
	defer s.Stop()
	for i := 0; i < devices; i++ {
		name := fmt.Sprintf("bench-%d", i)
		if err := s.AddDevice(name, mkdev(tb, name, 4, 5, int64(i+1), benchLatency), benchWorkersPer); err != nil {
			tb.Fatal(err)
		}
	}
	circs := []*circuit.Circuit{circuit.GHZ(3), circuit.GHZ(4), circuit.GHZ(5), circuit.GHZ(6)}
	ids := make([]int, 0, jobs)
	starts := make(map[int]time.Time, jobs)
	start := time.Now()
	for i := 0; i < jobs; i++ {
		user := "bench"
		if tenants > 1 {
			user = fmt.Sprintf("bench-%02d", i%tenants)
		}
		id, err := s.Submit(qrm.Request{Circuit: circs[i%len(circs)], Shots: 10, User: user}, SubmitOptions{})
		if err != nil {
			tb.Fatal(err)
		}
		starts[id] = time.Now()
		ids = append(ids, id)
	}
	latencies := make([]float64, 0, jobs)
	s.WaitEach(ids, func(id int, j *Job, err error) {
		if err != nil {
			tb.Errorf("job %d: %v", id, err)
			return
		}
		if j.Status != JobDone {
			tb.Errorf("job %d: %s (%s)", id, j.Status, j.Error)
			return
		}
		latencies = append(latencies, float64(time.Since(starts[id]).Microseconds())/1000)
	})
	elapsed := time.Since(start)
	sort.Float64s(latencies)
	q := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		return latencies[int(p*float64(len(latencies)-1))]
	}
	return float64(jobs) / elapsed.Seconds(), q(0.50), q(0.95)
}

func benchmarkFleetThroughput(b *testing.B, devices int) {
	const jobsPerRound = 128
	var jps, p50, p95 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jps, p50, p95 = runFleetLoad(b, devices, jobsPerRound)
	}
	b.ReportMetric(jps, "jobs/s")
	b.ReportMetric(p50, "p50-ms")
	b.ReportMetric(p95, "p95-ms")
}

func BenchmarkFleetThroughput1Device(b *testing.B)  { benchmarkFleetThroughput(b, 1) }
func BenchmarkFleetThroughput2Devices(b *testing.B) { benchmarkFleetThroughput(b, 2) }
func BenchmarkFleetThroughput4Devices(b *testing.B) { benchmarkFleetThroughput(b, 4) }

// benchResult is one row of the machine-readable artifact. Throughput and
// latency quantiles are medians over `reruns` independent loads; spread_pct
// records (max-min)/median of the throughput samples as a noise figure.
type benchResult struct {
	Devices    int     `json:"devices"`
	Workers    int     `json:"workers_per_device"`
	Jobs       int     `json:"jobs"`
	Reruns     int     `json:"reruns"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	P50Ms      float64 `json:"p50_ms"`
	P95Ms      float64 `json:"p95_ms"`
	SpreadPct  float64 `json:"spread_pct"`
}

// tracingResult is the tracing-overhead row: the 4-device workload rerun
// with span recording globally disabled, proving the observability plane
// stays within its throughput budget (docs/OBSERVABILITY.md).
type tracingResult struct {
	TracedJobsPerSec   float64 `json:"traced_jobs_per_sec"`
	UntracedJobsPerSec float64 `json:"untraced_jobs_per_sec"`
	// Ratio is traced/untraced; the release gate requires >= 0.95 (tracing
	// may cost at most 5% of throughput).
	Ratio float64 `json:"ratio"`
}

// tenantsResult is the many-tenant contention row: the 4-device workload
// striped across N distinct users vs the single-user baseline. Weighted-fair
// claiming runs on the hot claim path, so the gate requires the default
// (no rate limit, no shedding) config to keep >= 0.95x of single-tenant
// throughput even with the per-tenant heaps fully fanned out.
type tenantsResult struct {
	Tenants         int     `json:"tenants"`
	SingleTenantJPS float64 `json:"single_tenant_jobs_per_sec"`
	ManyTenantJPS   float64 `json:"many_tenant_jobs_per_sec"`
	// Ratio is many-tenant/single-tenant; the release gate requires >= 0.95.
	Ratio float64 `json:"ratio"`
}

// benchArtifact is the BENCH_fleet.json schema: the perf trajectory record
// tracked across PRs.
type benchArtifact struct {
	Harness       string         `json:"harness"`
	Workload      string         `json:"workload"`
	ExecLatencyMs float64        `json:"exec_latency_ms"`
	Results       []benchResult  `json:"results"`
	Speedup4v1    float64        `json:"speedup_4_devices_over_1"`
	Tracing       *tracingResult `json:"tracing,omitempty"`
	Tenants       *tenantsResult `json:"tenants,omitempty"`
}

// TestFleetBenchArtifact measures jobs/s at 1/2/4 devices and writes
// BENCH_fleet.json. Gated behind -fleet.bench so the regular test run stays
// timing-free; CI runs it as the fleet-bench smoke step and fails loudly if
// device-level scaling collapses below 2x.
func TestFleetBenchArtifact(t *testing.T) {
	if !*fleetBench {
		t.Skip("pass -fleet.bench to run the fleet bench harness")
	}
	const jobs = 256
	art := benchArtifact{
		Harness: "go test ./internal/fleet -run TestFleetBenchArtifact -fleet.bench",
		Workload: fmt.Sprintf("%d GHZ(3..6) jobs x 10 shots, twin devices, %d workers/device",
			jobs, benchWorkersPer),
		ExecLatencyMs: float64(benchLatency.Microseconds()) / 1000,
	}
	for _, n := range []int{1, 2, 4} {
		var jpsRuns, p50Runs, p95Runs []float64
		for r := 0; r < benchReruns; r++ {
			jps, p50, p95 := runFleetLoad(t, n, jobs)
			jpsRuns = append(jpsRuns, jps)
			p50Runs = append(p50Runs, p50)
			p95Runs = append(p95Runs, p95)
		}
		row := benchResult{
			Devices: n, Workers: benchWorkersPer, Jobs: jobs, Reruns: benchReruns,
			JobsPerSec: telemetry.Median(jpsRuns),
			P50Ms:      telemetry.Median(p50Runs),
			P95Ms:      telemetry.Median(p95Runs),
			SpreadPct:  telemetry.SpreadPct(jpsRuns),
		}
		art.Results = append(art.Results, row)
		t.Logf("%d device(s): median %.0f jobs/s over %d runs (spread %.1f%%), p50 %.2f ms, p95 %.2f ms",
			n, row.JobsPerSec, benchReruns, row.SpreadPct, row.P50Ms, row.P95Ms)
	}
	art.Speedup4v1 = art.Results[2].JobsPerSec / art.Results[0].JobsPerSec

	// Tracing-overhead row: the 4-device workload with span recording on vs
	// globally off. Runs are interleaved (traced, untraced, traced, ...) so
	// warmup and thermal drift land on both sides equally — comparing two
	// sequential blocks makes the ratio drift-biased.
	const tracingReruns = 5
	var tracedRuns, untracedRuns, ratios []float64
	defer trace.SetEnabled(true)
	for r := 0; r < tracingReruns; r++ {
		trace.SetEnabled(true)
		traced, _, _ := runFleetLoad(t, 4, jobs)
		tracedRuns = append(tracedRuns, traced)
		trace.SetEnabled(false)
		untraced, _, _ := runFleetLoad(t, 4, jobs)
		untracedRuns = append(untracedRuns, untraced)
		ratios = append(ratios, traced/untraced)
	}
	trace.SetEnabled(true)
	tr := &tracingResult{
		TracedJobsPerSec:   telemetry.Median(tracedRuns),
		UntracedJobsPerSec: telemetry.Median(untracedRuns),
		// Median of per-pair ratios, not ratio of medians: each pair ran
		// back to back, so machine drift cancels within the pair.
		Ratio: telemetry.Median(ratios),
	}
	art.Tracing = tr
	t.Logf("tracing overhead: traced %.0f vs untraced %.0f jobs/s (ratio %.3f)",
		tr.TracedJobsPerSec, tr.UntracedJobsPerSec, tr.Ratio)

	// Many-tenant contention row: the same 4-device workload striped across
	// 64 users vs one. Pairs are interleaved like the tracing row so machine
	// drift cancels within each pair.
	const benchTenants = 64
	var singleRuns, manyRuns, tenantRatios []float64
	for r := 0; r < tracingReruns; r++ {
		many, _, _ := runFleetLoadTenants(t, 4, jobs, benchTenants)
		manyRuns = append(manyRuns, many)
		single, _, _ := runFleetLoadTenants(t, 4, jobs, 1)
		singleRuns = append(singleRuns, single)
		tenantRatios = append(tenantRatios, many/single)
	}
	tn := &tenantsResult{
		Tenants:         benchTenants,
		SingleTenantJPS: telemetry.Median(singleRuns),
		ManyTenantJPS:   telemetry.Median(manyRuns),
		Ratio:           telemetry.Median(tenantRatios),
	}
	art.Tenants = tn
	t.Logf("many-tenant contention: %d tenants %.0f vs single %.0f jobs/s (ratio %.3f)",
		tn.Tenants, tn.ManyTenantJPS, tn.SingleTenantJPS, tn.Ratio)

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*fleetBenchOut, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (4-vs-1 device speedup: %.2fx)", *fleetBenchOut, art.Speedup4v1)
	if art.Speedup4v1 < 2 {
		t.Fatalf("fleet scaling regression: 4 devices gave %.2fx over 1, want >= 2x", art.Speedup4v1)
	}
	if tr.Ratio < 0.95 {
		t.Fatalf("tracing overhead regression: traced throughput is %.3fx of untraced, want >= 0.95x", tr.Ratio)
	}
	if tn.Ratio < 0.95 {
		t.Fatalf("WFQ contention regression: %d-tenant throughput is %.3fx of single-tenant, want >= 0.95x",
			tn.Tenants, tn.Ratio)
	}
}
