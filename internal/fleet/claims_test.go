package fleet

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/qrm"
)

// TestNoDoubleClaimUnderFailoverAndDrain is the claim-conservation
// property test: across concurrent submission, drain/resume cycles and
// fail/recover cycles (with injected execution faults), no fleet job may
// ever be claimed by two devices at once. A double-claim is invisible in
// the happy-path record but shows up in conservation laws, which are
// checked exactly:
//
//  1. every fleet job reaches exactly one terminal state, and the fleet's
//     terminal counters partition the submissions;
//  2. the device managers' completed-job counts sum to the fleet's —
//     a double-claimed job would complete twice below while counting once
//     above;
//  3. the event stream carries exactly one terminal event per job and
//     nothing after it.
//
// Three seeded chaos schedules run as subtests (CI runs this under -race
// in the scenario-lab job).
func TestNoDoubleClaimUnderFailoverAndDrain(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			runClaimChaos(t, seed)
		})
	}
}

func runClaimChaos(t *testing.T, seed int64) {
	const (
		devices    = 4
		workers    = 3
		submitters = 6
		jobsPer    = 40
		latency    = time.Millisecond
	)
	s := New(PolicyLeastLoaded, nil)
	defer s.Stop()
	names := []string{"a", "b", "c", "d"}
	qpus := map[string]interface{ InjectFaults(int) }{}
	for i, name := range names {
		d := mkdev(t, name, 4, 5, seed*10+int64(i), latency)
		if err := s.AddDevice(name, d, workers); err != nil {
			t.Fatal(err)
		}
		qpus[name] = d.QPU()
	}

	sub := s.Events().Subscribe(0, 1<<14)
	var events []qrm.Event
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		for ev := range sub.Events() {
			events = append(events, ev)
		}
	}()

	// Concurrent submitters.
	var (
		mu  sync.Mutex
		ids []int
		wg  sync.WaitGroup
	)
	submitDone := make(chan struct{})
	for c := 0; c < submitters; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < jobsPer; i++ {
				id, err := s.Submit(req(3+(c+i)%4, 5), SubmitOptions{})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				mu.Lock()
				ids = append(ids, id)
				mu.Unlock()
				time.Sleep(200 * time.Microsecond)
			}
		}(c)
	}
	go func() { wg.Wait(); close(submitDone) }()

	// Chaos schedule: "b" drains and resumes, "c" faults and fails, "a"
	// and "d" stay up so nothing needs to park. Deterministic in seed.
	rng := rand.New(rand.NewSource(seed))
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		for {
			select {
			case <-submitDone:
				return
			default:
			}
			switch rng.Intn(4) {
			case 0:
				s.Drain("b")
			case 1:
				s.Resume("b")
			case 2:
				qpus["c"].InjectFaults(3)
				s.Fail("c")
			case 3:
				qpus["c"].InjectFaults(0)
				s.Recover("c")
			}
			time.Sleep(time.Duration(1+rng.Intn(4)) * time.Millisecond)
		}
	}()
	<-submitDone
	<-chaosDone
	s.Resume("b")
	qpus["c"].InjectFaults(0)
	s.Recover("c")

	// Every job must reach exactly one terminal state.
	counts := map[JobStatus]int{}
	for _, id := range ids {
		j, err := s.Wait(id)
		if err != nil {
			t.Fatalf("job %d: %v", id, err)
		}
		if !terminal(j.Status) {
			t.Fatalf("job %d non-terminal after Wait: %s", id, j.Status)
		}
		counts[j.Status]++
	}
	s.WaitSettled()

	total := submitters * jobsPer
	m := s.Metrics()
	if int(m.Submitted) != total {
		t.Errorf("submitted %d, want %d", m.Submitted, total)
	}
	if int(m.Completed+m.Failed+m.Cancelled) != total {
		t.Errorf("terminal counters %d+%d+%d don't partition %d submissions",
			m.Completed, m.Failed, m.Cancelled, total)
	}
	if int(m.Completed) != counts[JobDone] || int(m.Failed) != counts[JobFailed] {
		t.Errorf("metrics done/failed %d/%d disagree with records %d/%d",
			m.Completed, m.Failed, counts[JobDone], counts[JobFailed])
	}

	// Conservation law 2: completed jobs across device managers must sum
	// to the fleet's completed count. A double-claim completes twice at
	// the device layer.
	var deviceDone uint64
	for _, dm := range m.Devices {
		deviceDone += dm.QRM.Completed
	}
	if deviceDone != m.Completed {
		t.Errorf("device managers completed %d jobs, fleet completed %d — a job ran on two devices",
			deviceDone, m.Completed)
	}

	// Conservation law 3: the event stream.
	sub.Close()
	<-collectorDone
	if n := sub.Dropped(); n != 0 {
		t.Fatalf("event collector dropped %d; widen the buffer (accounting needs every event)", n)
	}
	terminalSeq := map[int]uint64{}
	for _, ev := range events {
		if at, seen := terminalSeq[ev.JobID]; seen && ev.Seq > at {
			t.Errorf("job %d: event %q→%q (seq %d) after its terminal event (seq %d)",
				ev.JobID, ev.From, ev.To, ev.Seq, at)
		}
		switch JobStatus(ev.To) {
		case JobDone, JobFailed, JobCancelled:
			if _, dup := terminalSeq[ev.JobID]; dup {
				t.Errorf("job %d: second terminal event %q→%q", ev.JobID, ev.From, ev.To)
			}
			terminalSeq[ev.JobID] = ev.Seq
		}
	}
	if len(terminalSeq) != total {
		t.Errorf("terminal events for %d jobs, want %d", len(terminalSeq), total)
	}
	t.Logf("seed %d: %d done, %d failed, %d migrations, %d events",
		seed, m.Completed, m.Failed, m.Migrated, len(events))
}
