// Package fleet is the multi-QPU scheduler the MQSS/QDMI architecture
// (§2.6, Fig. 2) was designed to enable: one HPC-side scheduler serving N
// heterogeneous backends. Each registered device carries its own qrm.Manager
// worker pool; submitted circuits are scored against every eligible device —
// estimated fidelity from the live calibration snapshot, topology/width fit,
// current queue depth — and routed to the best one under the configured
// policy (best-fidelity, least-loaded, round-robin).
//
// The scheduler owns the paper's operational realities at fleet scale:
// calibration slots and §3.4 maintenance windows drain a device and
// transparently migrate its pending jobs to siblings, device faults trigger
// failover with the failed device excluded from routing, and jobs with no
// eligible backend park until one returns — no submission is ever lost.
// Per-device telemetry (queue depth, routed/migrated/failed counters,
// fidelity-score histograms) publishes into telemetry.Store and the REST
// metrics endpoint.
package fleet

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/ops"
	"repro/internal/qdmi"
	"repro/internal/qrm"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
	"repro/internal/tenant"
)

// DeviceState tracks a backend through the fleet lifecycle.
type DeviceState string

const (
	// DeviceActive devices accept routed work.
	DeviceActive DeviceState = "active"
	// DeviceDraining devices were drained by an operator; queued jobs have
	// migrated to siblings and no new work routes here until Resume.
	DeviceDraining DeviceState = "draining"
	// DeviceMaintenance devices are inside a §3.4 maintenance (or
	// calibration) window; AdvanceTo restores them when the window closes.
	DeviceMaintenance DeviceState = "maintenance"
	// DeviceFailed devices faulted; failover excluded them from routing
	// until Recover.
	DeviceFailed DeviceState = "failed"
)

// JobStatus tracks a fleet job. A job is terminal in done/failed/cancelled;
// pending jobs are parked waiting for an eligible device, routed jobs sit on
// some device's QRM queue (or are executing there).
type JobStatus string

const (
	JobPending   JobStatus = "pending"
	JobRouted    JobStatus = "routed"
	JobDone      JobStatus = "done"
	JobFailed    JobStatus = "failed"
	JobCancelled JobStatus = "cancelled"
)

func terminal(s JobStatus) bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// Job is the fleet's record of one submission: the routing envelope plus,
// once terminal, the device-level record under Result.
type Job struct {
	ID     int       `json:"id"`
	Status JobStatus `json:"status"`
	// Device is the backend currently (or finally) holding the job.
	Device string `json:"device,omitempty"`
	// LocalID is the job's ID in that device's QRM.
	LocalID int `json:"local_id,omitempty"`
	// Migrations counts drain/failover re-routes this job survived.
	Migrations int `json:"migrations,omitempty"`
	// Score is the fidelity estimate the router computed for the chosen
	// device at the last routing decision.
	Score   float64     `json:"score,omitempty"`
	BatchID int         `json:"batch_id,omitempty"`
	Pinned  string      `json:"pinned,omitempty"`
	Request qrm.Request `json:"request"`
	// Result is the terminal device-level record (counts, layout, timings).
	Result *qrm.Job `json:"result,omitempty"`
	Error  string   `json:"error,omitempty"`

	// SubmitUnixMs is the wall-clock submission instant in Unix
	// milliseconds, excluded from the wire shape; the durable store
	// persists it so dispatch deadlines keep their budget across restarts.
	SubmitUnixMs int64 `json:"-"`
	// Recovered marks a job restored from the durable store after a restart.
	Recovered bool `json:"recovered,omitempty"`
	// Node is the federation ownership stamp: the node that minted this
	// job's ID and whose durable store is authoritative for it. Empty on
	// standalone deployments and in pre-federation WAL records — replay
	// treats the missing field as "".
	Node string `json:"node,omitempty"`

	policy Policy
	done   chan struct{}

	// tr is the job's span tree, owned (and retained at terminal) by the
	// scheduler. rootSpan is its root; parkSpan covers a parked interval.
	// Each routing attempt opens an "on-device" leg span that the device's
	// QRM closes at the device-level terminal state, so migrations show up
	// as successive legs under one root. All nil with tracing disabled.
	tr       *trace.Trace
	rootSpan *trace.Span
	parkSpan *trace.Span
}

// SubmitOptions tune one submission.
type SubmitOptions struct {
	// Device pins the job to one backend; it parks rather than migrate to a
	// sibling when that backend is unavailable.
	Device string
	// Policy overrides the scheduler default for this job.
	Policy Policy
}

// deviceEntry is one registered backend.
type deviceEntry struct {
	name    string
	dev     *qdmi.Device
	mgr     *qrm.Manager
	workers int
	state   DeviceState

	// Routing counters (guarded by Scheduler.mu).
	routed      uint64
	migratedOut uint64
	completed   uint64
	failed      uint64
	shed        uint64

	scoreHist *telemetry.Histogram

	// Calibration means memoized per epoch (score.go).
	calibEpoch  uint64
	calibValid  bool
	meanF1Q     float64
	meanFCZ     float64
	meanFRead   float64
	calibAgeH   float64
	regionMemo  map[int]float64 // width -> mean pairwise region distance
	maintenance []ops.MaintenanceWindow
}

// Scheduler is the fleet: registry + router + migration machinery.
type Scheduler struct {
	mu   sync.Mutex
	cond *sync.Cond // signalled on job finalization (WaitSettled)

	policy  Policy
	devices map[string]*deviceEntry
	order   []string // registration order; round-robin walks it
	rr      int

	nextID    int
	idLimit   int // last mintable ID, inclusive (0 = unbounded; federation block end)
	nextBatch int
	nodeID    string // federation ownership stamp for new jobs ("" standalone)
	jobs      map[int]*Job
	jobOrder  []int
	parked    map[int]*Job
	nowDay    float64 // maintenance clock, last AdvanceTo day

	store     *telemetry.Store
	scoreHist *telemetry.Histogram
	bus       *qrm.EventBus // fleet-scoped lifecycle events (routing, migrations)

	submitted uint64
	routed    uint64
	migrated  uint64
	parkEvts  uint64
	completed uint64
	failures  uint64
	cancelled uint64
	shed      uint64

	// admission is forwarded to every device manager (current and future);
	// zero values = unbounded, the default.
	admission tenant.Admission

	closed bool
	wg     sync.WaitGroup // per-job monitor goroutines

	// Durable job store (nil = in-memory only). walTail is the LSN of the
	// most recent record journaled under s.mu; Submit waits on it after
	// unlocking so a returned ID implies the submission is on disk.
	jstore  JobStore
	walTail uint64

	// Trace retention ring for terminal fleet jobs (see qrm.Manager's —
	// same FIFO-eviction scheme, fleet-scoped IDs).
	traceRing     []int
	traceCap      int
	traceSpanDrop uint64
}

// New builds an empty fleet under the given default policy. store may be nil
// (no telemetry publication).
func New(policy Policy, store *telemetry.Store) *Scheduler {
	s := &Scheduler{
		policy:    policy,
		devices:   make(map[string]*deviceEntry),
		jobs:      make(map[int]*Job),
		parked:    make(map[int]*Job),
		store:     store,
		scoreHist: scoreHistogram(),
		bus:       qrm.NewEventBus(),
		traceCap:  qrm.DefaultTraceRetention,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Events returns the fleet's job event bus: fleet-scoped job IDs, with
// routing decisions, parking, migrations, and terminal states republished
// as transitions — the feed the v2 watch endpoint serves in fleet mode.
func (s *Scheduler) Events() *qrm.EventBus { return s.bus }

// JobStore is the durability boundary behind the fleet scheduler (declared
// locally so fleet stays free of a durable import; qrm.JobStore is the
// single-device twin). Every fleet transition — submission, placement,
// parking, migration, terminal — is journaled as an upsert of the job's
// full record; internal/durable's WAL-backed Store implements it.
type JobStore interface {
	JournalFleetJob(j *Job) (lsn uint64)
	WaitDurable(lsn uint64)
}

// AttachStore installs the durable job store: subsequent transitions are
// journaled and Submit acks only after its record is durable. Pass nil to
// detach. Attach before the first submission; replayed history comes in
// through Restore.
func (s *Scheduler) AttachStore(st JobStore) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jstore = st
}

// publishLocked emits one fleet lifecycle event, stamped with the fleet's
// maintenance clock (simulation seconds; 0 until AdvanceTo first ticks).
// Caller holds s.mu. With a store attached the transition is journaled
// first — placement and migration records survive a crash because exactly
// the stream the bus publishes is what the WAL replays.
func (s *Scheduler) publishLocked(j *Job, from JobStatus, reason string) {
	if s.jstore != nil {
		s.walTail = s.jstore.JournalFleetJob(j)
	}
	s.bus.Publish(qrm.Event{
		JobID:  j.ID,
		From:   string(from),
		To:     string(j.Status),
		Device: j.Device,
		Reason: reason,
		Time:   s.nowDay * 86400,
	})
}

// AddDevice registers a backend under a unique name and starts its private
// dispatch pool with the given worker count. Parked jobs that fit the new
// device are dispatched immediately.
func (s *Scheduler) AddDevice(name string, dev *qdmi.Device, workers int) error {
	if name == "" {
		return fmt.Errorf("fleet: device name must be non-empty")
	}
	if workers < 1 {
		return fmt.Errorf("fleet: device %q needs >= 1 workers, got %d", name, workers)
	}
	mgr := qrm.NewManager(dev)
	if err := mgr.Start(workers); err != nil {
		return fmt.Errorf("fleet: starting %q pool: %w", name, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	mgr.SetAdmission(s.admission)
	if s.closed {
		mgr.Stop()
		return fmt.Errorf("fleet: scheduler stopped")
	}
	if _, dup := s.devices[name]; dup {
		mgr.Stop()
		return fmt.Errorf("fleet: device %q already registered", name)
	}
	s.devices[name] = &deviceEntry{
		name: name, dev: dev, mgr: mgr, workers: workers,
		state:      DeviceActive,
		scoreHist:  scoreHistogram(),
		regionMemo: make(map[int]float64),
	}
	s.order = append(s.order, name)
	s.dispatchParkedLocked()
	return nil
}

// Store returns the telemetry store attached at New (may be nil).
func (s *Scheduler) Store() *telemetry.Store { return s.store }

// ActiveDevices counts backends currently accepting routed work — the cheap
// health signal (Metrics snapshots every per-device histogram).
func (s *Scheduler) ActiveDevices() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.devices {
		if e.state == DeviceActive {
			n++
		}
	}
	return n
}

// Devices returns registered device names in registration order.
func (s *Scheduler) Devices() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// Policy returns the default routing policy.
func (s *Scheduler) Policy() Policy {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.policy
}

// SetIDBase raises the ID counter so every future fleet job ID is > base.
// Federated deployments partition the global ID space between nodes this
// way; like Restore, the call only ever raises the counter, so composing
// the two in either order is safe.
func (s *Scheduler) SetIDBase(base int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if base > s.nextID {
		s.nextID = base
	}
}

// SetIDLimit caps the ID counter: submissions are refused once every ID
// up to limit (inclusive) has been minted. Federated deployments set it
// to the end of this node's ID block — spilling past it would land IDs
// in the next member's block and silently misroute owner lookups, so
// exhaustion is a hard refusal, not a wrap. Zero means unbounded.
func (s *Scheduler) SetIDLimit(limit int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.idLimit = limit
}

// SetNodeID stamps every future job record with the owning federation
// node. Empty (the default) means standalone.
func (s *Scheduler) SetNodeID(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nodeID = id
}

// NodeID returns the federation ownership stamp set by SetNodeID.
func (s *Scheduler) NodeID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nodeID
}

// SetAdmission applies queue-depth bounds fleet-wide: the config is stored
// for devices added later and pushed to every registered device manager,
// where shedding is actually enforced (each device bounds its own queue).
func (s *Scheduler) SetAdmission(a tenant.Admission) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.admission = a
	for _, e := range s.devices {
		e.mgr.SetAdmission(a)
	}
}

// Admission returns the fleet-wide admission config.
func (s *Scheduler) Admission() tenant.Admission {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.admission
}

// TenantUsage merges per-tenant accounting across every device manager.
// A job that migrated between devices is counted once per terminal
// outcome (the migration source never terminated it), so the merged rows
// still conserve: submitted == completed + failed + cancelled + shed +
// interrupted + queued once the fleet settles.
func (s *Scheduler) TenantUsage() []tenant.Usage {
	s.mu.Lock()
	mgrs := make([]*qrm.Manager, 0, len(s.order))
	for _, name := range s.order {
		mgrs = append(mgrs, s.devices[name].mgr)
	}
	s.mu.Unlock()
	rows := make([][]tenant.Usage, 0, len(mgrs))
	for _, m := range mgrs {
		rows = append(rows, m.TenantUsage())
	}
	return tenant.MergeUsage(rows...)
}

// maxWidthLocked is the widest registered backend.
func (s *Scheduler) maxWidthLocked() int {
	w := 0
	for _, e := range s.devices {
		if n := e.dev.Properties().NumQubits; n > w {
			w = n
		}
	}
	return w
}

// Submit validates and accepts one job, routing it to the best eligible
// device (or parking it when none is). The job ID is fleet-scoped.
func (s *Scheduler) Submit(req qrm.Request, opts SubmitOptions) (int, error) {
	if req.Circuit == nil {
		return 0, fmt.Errorf("fleet: request has no circuit")
	}
	if err := req.Circuit.Validate(); err != nil {
		return 0, fmt.Errorf("fleet: invalid circuit: %w", err)
	}
	if req.Shots < 1 {
		return 0, fmt.Errorf("fleet: shots must be >= 1, got %d", req.Shots)
	}
	policy := s.policy
	if opts.Policy != "" {
		if err := opts.Policy.Validate(); err != nil {
			return 0, err
		}
		policy = opts.Policy
	}
	s.mu.Lock()
	if s.idLimit > 0 && s.nextID >= s.idLimit {
		s.mu.Unlock()
		return 0, fmt.Errorf("fleet: job-ID space exhausted: this node's federation ID block ends at %d; minting past it would misroute owner lookups", s.idLimit)
	}
	if err := s.admitLocked(req, opts); err != nil {
		s.mu.Unlock()
		return 0, err
	}
	s.nextID++
	j := &Job{
		ID: s.nextID, Status: JobPending, Request: req,
		Pinned: opts.Device, policy: policy, done: make(chan struct{}),
		SubmitUnixMs: time.Now().UnixMilli(), Node: s.nodeID,
	}
	j.tr = trace.New("job",
		trace.Int("job_id", j.ID), trace.Str("user", req.User))
	j.rootSpan = j.tr.Root()
	s.jobs[j.ID] = j
	s.jobOrder = append(s.jobOrder, j.ID)
	s.submitted++
	s.publishLocked(j, "", "")
	s.routeLocked(j, nil, "")
	st, lsn := s.jstore, s.walTail
	s.mu.Unlock()
	if st != nil {
		// Ack-after-durable (see qrm.Manager.submit): the routing decision
		// above already journaled, so waiting on the tail LSN covers both
		// the submission and its first placement.
		st.WaitDurable(lsn)
	}
	return j.ID, nil
}

// admitLocked runs Submit's validation against the registry. Caller holds
// s.mu.
func (s *Scheduler) admitLocked(req qrm.Request, opts SubmitOptions) error {
	if s.closed {
		return fmt.Errorf("fleet: scheduler stopped")
	}
	if len(s.devices) == 0 {
		return fmt.Errorf("fleet: no devices registered")
	}
	if opts.Device != "" {
		e, ok := s.devices[opts.Device]
		if !ok {
			return fmt.Errorf("fleet: unknown device %q", opts.Device)
		}
		if req.Circuit.NumQubits > e.dev.Properties().NumQubits {
			return fmt.Errorf("fleet: circuit needs %d qubits, pinned device %q has %d",
				req.Circuit.NumQubits, opts.Device, e.dev.Properties().NumQubits)
		}
	} else if w := s.maxWidthLocked(); req.Circuit.NumQubits > w {
		return fmt.Errorf("fleet: circuit needs %d qubits, widest device has %d",
			req.Circuit.NumQubits, w)
	}
	return nil
}

// SubmitBatch accepts several requests under one fleet batch ID; each job is
// routed independently (the batch may span devices).
func (s *Scheduler) SubmitBatch(reqs []qrm.Request, opts SubmitOptions) (int, []int, error) {
	if len(reqs) == 0 {
		return 0, nil, fmt.Errorf("fleet: empty batch")
	}
	s.mu.Lock()
	s.nextBatch++
	batch := s.nextBatch
	s.mu.Unlock()
	ids := make([]int, 0, len(reqs))
	for i := range reqs {
		reqs[i].BatchID = batch
		id, err := s.Submit(reqs[i], opts)
		if err != nil {
			return batch, ids, fmt.Errorf("fleet: batch item %d: %w", i, err)
		}
		s.mu.Lock()
		s.jobs[id].BatchID = batch
		s.mu.Unlock()
		ids = append(ids, id)
	}
	return batch, ids, nil
}

// routeLocked places j on the best eligible device, excluding the listed
// names for this attempt; reason annotates the published event ("" for a
// fresh submission, "migrated" for drain/failover re-routes, "unparked"
// when a parked job gets another chance). With no eligible device the job
// parks; it is re-dispatched when a device resumes (with a clean slate — a
// previously excluded device may have recovered by then).
func (s *Scheduler) routeLocked(j *Job, exclude map[string]bool, reason string) {
	if s.closed {
		s.finalizeLocked(j, JobFailed, nil, "fleet: scheduler stopped before the job could run")
		return
	}
	// A re-route of a parked job closes its parked interval first.
	j.parkSpan.End()
	j.parkSpan = nil
	routeSpan := j.rootSpan.StartChild("route")
	for {
		e, score, ok := s.pickLocked(j, exclude)
		if !ok {
			from := j.Status
			j.Status = JobPending
			j.Device = ""
			j.LocalID = 0
			s.parked[j.ID] = j
			s.parkEvts++
			routeSpan.End(trace.Str("outcome", "parked"))
			j.parkSpan = j.rootSpan.StartChild("parked")
			s.publishLocked(j, from, "parked")
			return
		}
		req := j.Request
		// The on-device leg nests the device QRM's queue-wait/compile/
		// execute spans; its QRM ends it at the device-terminal state.
		leg := j.rootSpan.StartChild("on-device", trace.Str("device", e.name))
		localID, err := e.mgr.SubmitObserved(req, leg)
		if err != nil {
			// The device flipped offline between scoring and submission;
			// exclude it for this attempt and retry.
			leg.End(trace.Str("outcome", "rejected"))
			if exclude == nil {
				exclude = make(map[string]bool)
			}
			exclude[e.name] = true
			continue
		}
		routeSpan.End(trace.Str("device", e.name))
		from := j.Status
		j.Status = JobRouted
		j.Device = e.name
		j.LocalID = localID
		j.Score = score
		s.publishLocked(j, from, reason)
		e.routed++
		s.routed++
		e.scoreHist.Observe(score)
		s.scoreHist.Observe(score)
		s.wg.Add(1)
		go s.monitor(j, e, localID)
		return
	}
}

// monitor follows one routed job to its device-level terminal state and
// decides the fleet-level outcome: finalize, or migrate to a sibling when
// the device was drained or failed out from under it.
func (s *Scheduler) monitor(j *Job, e *deviceEntry, localID int) {
	defer s.wg.Done()
	rec, err := e.mgr.WaitJob(localID)
	s.mu.Lock()
	defer s.mu.Unlock()
	if terminal(j.Status) {
		return // fleet-level Cancel or Stop already settled it
	}
	if err != nil {
		// The device pool stopped with the job still queued (teardown).
		if s.closed {
			s.finalizeLocked(j, JobFailed, nil, "fleet: stopped with job queued: "+err.Error())
			return
		}
		s.migrateLocked(j, e)
		return
	}
	switch rec.Status {
	case qrm.StatusDone:
		e.completed++
		s.finalizeLocked(j, JobDone, rec, "")
	case qrm.StatusFailed:
		if rec.Error == qrm.ErrShedMsg {
			// Admission control evicted it under overload: a deliberate,
			// retryable refusal — attributed to shedding, not device failure,
			// and never migrated (a sibling under the same storm would only
			// shed it again).
			e.shed++
			s.finalizeLocked(j, JobFailed, rec, rec.Error)
			return
		}
		if e.state == DeviceFailed {
			// The backend faulted mid-job: failover, not a job defect.
			s.migrateLocked(j, e)
			return
		}
		e.failed++
		s.finalizeLocked(j, JobFailed, rec, rec.Error)
	case qrm.StatusInterrupted:
		// Drain, maintenance window, or outage: requeue on a sibling.
		s.migrateLocked(j, e)
	case qrm.StatusCancelled:
		s.finalizeLocked(j, JobCancelled, rec, "")
	default:
		s.finalizeLocked(j, JobFailed, rec, fmt.Sprintf("fleet: unexpected device status %q", rec.Status))
	}
}

// migrateLocked re-routes a displaced job, excluding the device it came from
// for this attempt.
func (s *Scheduler) migrateLocked(j *Job, from *deviceEntry) {
	j.Migrations++
	from.migratedOut++
	s.migrated++
	s.routeLocked(j, map[string]bool{from.name: true}, "migrated")
}

// finalizeLocked settles a fleet job exactly once.
func (s *Scheduler) finalizeLocked(j *Job, st JobStatus, rec *qrm.Job, errMsg string) {
	if terminal(j.Status) {
		return
	}
	delete(s.parked, j.ID)
	from := j.Status
	j.Status = st
	j.Result = rec
	j.Error = errMsg
	j.parkSpan.End()
	if errMsg != "" {
		j.rootSpan.End(trace.Str("outcome", string(st)), trace.Str("error", errMsg))
	} else {
		j.rootSpan.End(trace.Str("outcome", string(st)))
	}
	if j.tr != nil {
		s.retainTraceLocked(j)
	}
	s.publishLocked(j, from, "")
	switch st {
	case JobDone:
		s.completed++
	case JobFailed:
		if errMsg == qrm.ErrShedMsg {
			s.shed++
		} else {
			s.failures++
		}
	case JobCancelled:
		s.cancelled++
	}
	close(j.done)
	s.cond.Broadcast()
}

// retainTraceLocked pushes a terminal job's trace into the retention ring,
// evicting the oldest when full. Caller holds s.mu.
func (s *Scheduler) retainTraceLocked(j *Job) {
	s.traceSpanDrop += j.tr.Dropped()
	if s.traceCap < 1 {
		j.tr, j.rootSpan, j.parkSpan = nil, nil, nil
		return
	}
	if len(s.traceRing) >= s.traceCap {
		old := s.traceRing[0]
		s.traceRing = s.traceRing[1:]
		if oj, ok := s.jobs[old]; ok {
			oj.tr, oj.rootSpan, oj.parkSpan = nil, nil, nil
		}
	}
	s.traceRing = append(s.traceRing, j.ID)
}

// SetTraceRetention resizes the terminal-trace ring (0 disables retention),
// evicting oldest-first when shrinking.
func (s *Scheduler) SetTraceRetention(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.traceCap = n
	for len(s.traceRing) > n {
		old := s.traceRing[0]
		s.traceRing = s.traceRing[1:]
		if oj, ok := s.jobs[old]; ok {
			oj.tr, oj.rootSpan, oj.parkSpan = nil, nil, nil
		}
	}
}

// Trace returns a fleet job's span tree, or nil when unknown, untraced, or
// evicted from retention. Safe to snapshot concurrently with eviction.
func (s *Scheduler) Trace(id int) *trace.Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return j.tr
	}
	return nil
}

// TraceStats reports retained-trace count and spans lost to per-job slab
// exhaustion across terminal jobs.
func (s *Scheduler) TraceStats() (retained int, spanDrops uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.traceRing), s.traceSpanDrop
}

// dispatchParkedLocked retries every parked job; jobs with still no eligible
// device simply park again.
func (s *Scheduler) dispatchParkedLocked() {
	if len(s.parked) == 0 {
		return
	}
	ids := make([]int, 0, len(s.parked))
	for id := range s.parked {
		ids = append(ids, id)
	}
	// Oldest first: parking must not reorder a backlog indefinitely.
	sort.Ints(ids)
	for _, id := range ids {
		j := s.parked[id]
		delete(s.parked, id)
		s.routeLocked(j, nil, "unparked")
	}
}

// Job returns a copy of the fleet job record.
func (s *Scheduler) Job(id int) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("fleet: no job %d", id)
	}
	cp := *j
	return &cp, nil
}

// Wait blocks until the job settles (done, failed, or cancelled — possibly
// after migrations) and returns its record.
func (s *Scheduler) Wait(id int) (*Job, error) {
	return s.WaitContext(context.Background(), id)
}

// WaitContext is Wait with caller-controlled cancellation: it returns the
// context's error as soon as ctx is done, leaving the job in flight.
func (s *Scheduler) WaitContext(ctx context.Context, id int) (*Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("fleet: no job %d", id)
	}
	ch := j.done
	s.mu.Unlock()
	select {
	case <-ch:
		return s.Job(id)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// DeviceRecord returns the live device-level record behind a routed fleet
// job — the refinement the v2 API uses to report "running" instead of just
// "routed" while the device pool works the job. Errors when the job is not
// currently routed to a device.
func (s *Scheduler) DeviceRecord(id int) (*qrm.Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("fleet: no job %d", id)
	}
	e := s.devices[j.Device]
	localID := j.LocalID
	s.mu.Unlock()
	if e == nil || localID == 0 {
		return nil, fmt.Errorf("fleet: job %d not routed to a device", id)
	}
	return e.mgr.Job(localID)
}

// ListJobs returns up to limit fleet job copies with ID strictly below
// beforeID (0 = newest first), filtered by user and status set (nil = any);
// more reports whether older matches remain. The cursor primitive behind
// the v2 paginated listing.
func (s *Scheduler) ListJobs(user string, states map[JobStatus]bool, beforeID, limit int) (jobs []*Job, more bool) {
	if limit < 1 {
		limit = 20
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.jobOrder) - 1; i >= 0; i-- {
		j := s.jobs[s.jobOrder[i]]
		if beforeID > 0 && j.ID >= beforeID {
			continue
		}
		if user != "" && j.Request.User != user {
			continue
		}
		if states != nil && !states[j.Status] {
			continue
		}
		if len(jobs) == limit {
			return jobs, true
		}
		cp := *j
		jobs = append(jobs, &cp)
	}
	return jobs, false
}

// WaitEach waits for every listed job concurrently and invokes fn once per
// job in completion order — the streaming primitive the fleet REST endpoints
// build on. fn runs on the caller's goroutine.
func (s *Scheduler) WaitEach(ids []int, fn func(id int, j *Job, err error)) {
	type waited struct {
		id  int
		j   *Job
		err error
	}
	ch := make(chan waited, len(ids))
	for _, id := range ids {
		go func(id int) {
			j, err := s.Wait(id)
			ch <- waited{id: id, j: j, err: err}
		}(id)
	}
	for range ids {
		w := <-ch
		fn(w.id, w.j, w.err)
	}
}

// Cancel cancels a parked job immediately, and propagates cancellation of a
// routed job into its device's dispatch pipeline: still-queued device jobs
// cancel at once, in-flight ones are flagged and terminate cancelled at the
// next stage boundary (qrm.Manager.Cancel semantics). The fleet record
// settles as cancelled either way.
func (s *Scheduler) Cancel(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("fleet: no job %d", id)
	}
	if terminal(j.Status) {
		return fmt.Errorf("fleet: job %d already %s", id, j.Status)
	}
	if j.Status == JobPending {
		s.finalizeLocked(j, JobCancelled, nil, "")
		return nil
	}
	e := s.devices[j.Device]
	if e == nil {
		return fmt.Errorf("fleet: job %d routed to unknown device %q", id, j.Device)
	}
	if err := e.mgr.Cancel(j.LocalID); err != nil {
		return fmt.Errorf("fleet: job %d: %w", id, err)
	}
	// The monitor will observe the device-level cancellation, but settle the
	// fleet record now so the caller sees it immediately.
	s.finalizeLocked(j, JobCancelled, nil, "")
	return nil
}

// Drain takes a device out of routing: its queued jobs migrate to siblings
// (in-flight circuits finish — the control electronics complete what is on
// the wire) and no new work routes to it until Resume.
func (s *Scheduler) Drain(name string) error {
	return s.drainAs(name, DeviceDraining)
}

// Fail marks a device faulted: same drain semantics, but jobs that fail on
// it mid-flight are failed over to siblings instead of being reported as
// job errors, and the device stays excluded until Recover.
func (s *Scheduler) Fail(name string) error {
	return s.drainAs(name, DeviceFailed)
}

func (s *Scheduler) drainAs(name string, st DeviceState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.devices[name]
	if !ok {
		return fmt.Errorf("fleet: unknown device %q", name)
	}
	e.state = st
	// SetOnline(false) interrupts the device's queued jobs; their monitors
	// pick the interruptions up and migrate them as soon as we release the
	// fleet lock.
	e.mgr.SetOnline(false)
	return nil
}

// Resume returns a drained (or recovered) device to routing and dispatches
// any parked jobs that now fit.
func (s *Scheduler) Resume(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resumeLocked(name)
}

// Recover is Resume for a failed device (semantic alias, kept separate so
// call sites read correctly).
func (s *Scheduler) Recover(name string) error { return s.Resume(name) }

func (s *Scheduler) resumeLocked(name string) error {
	e, ok := s.devices[name]
	if !ok {
		return fmt.Errorf("fleet: unknown device %q", name)
	}
	e.state = DeviceActive
	e.mgr.SetOnline(true)
	s.dispatchParkedLocked()
	return nil
}

// DeviceManager exposes a registered device's QRM (tests and local HPC-path
// clients).
func (s *Scheduler) DeviceManager(name string) (*qrm.Manager, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.devices[name]
	if !ok {
		return nil, fmt.Errorf("fleet: unknown device %q", name)
	}
	return e.mgr, nil
}

// DeviceHandle exposes a registered device's QDMI handle.
func (s *Scheduler) DeviceHandle(name string) (*qdmi.Device, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.devices[name]
	if !ok {
		return nil, fmt.Errorf("fleet: unknown device %q", name)
	}
	return e.dev, nil
}

// WaitSettled blocks until no job is pending or routed — the fleet analogue
// of qrm.Manager.WaitIdle.
func (s *Scheduler) WaitSettled() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		busy := false
		for _, j := range s.jobs {
			if !terminal(j.Status) {
				busy = true
				break
			}
		}
		if !busy {
			return
		}
		s.cond.Wait()
	}
}

// Stop shuts the fleet down: parked jobs fail, device pools drain their
// in-flight work and stop, and every monitor goroutine exits. Stop is
// idempotent.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	entries := make([]*deviceEntry, 0, len(s.devices))
	for _, name := range s.order {
		entries = append(entries, s.devices[name])
	}
	for id, j := range s.parked {
		delete(s.parked, id)
		s.finalizeLocked(j, JobFailed, nil, "fleet: scheduler stopped")
	}
	s.mu.Unlock()
	for _, e := range entries {
		// Interrupt queued jobs (monitors finalize them as failed under the
		// closed flag), then stop the pool, letting in-flight jobs finish.
		e.mgr.SetOnline(false)
		e.mgr.Stop()
	}
	s.wg.Wait()
	// Every job is settled and its terminal event published; release watch
	// subscribers.
	s.bus.Close()
}
