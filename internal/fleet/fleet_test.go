package fleet

import (
	"strings"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/ops"
	"repro/internal/qdmi"
	"repro/internal/qrm"
	"repro/internal/telemetry"
)

// mkdev builds a twin QPU grid wrapped in a QDMI handle, with an optional
// paced control-electronics latency.
func mkdev(t testing.TB, name string, rows, cols int, seed int64, latency time.Duration) *qdmi.Device {
	t.Helper()
	qpu, err := device.New(device.Config{Name: name, Rows: rows, Cols: cols, Seed: seed, DigitalTwin: true})
	if err != nil {
		t.Fatal(err)
	}
	if latency > 0 {
		qpu.SetExecLatency(latency)
	}
	return qdmi.NewDevice(qpu, nil)
}

func req(n, shots int) qrm.Request {
	return qrm.Request{Circuit: circuit.GHZ(n), Shots: shots, User: "test"}
}

func TestSubmitValidation(t *testing.T) {
	s := New(PolicyBestFidelity, nil)
	defer s.Stop()
	if _, err := s.Submit(req(2, 10), SubmitOptions{}); err == nil {
		t.Fatal("submit with no devices should fail")
	}
	if err := s.AddDevice("a", mkdev(t, "a", 2, 2, 1, 0), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(qrm.Request{Shots: 10}, SubmitOptions{}); err == nil {
		t.Fatal("submit with no circuit should fail")
	}
	if _, err := s.Submit(qrm.Request{Circuit: circuit.GHZ(2)}, SubmitOptions{}); err == nil {
		t.Fatal("submit with zero shots should fail")
	}
	if _, err := s.Submit(req(10, 10), SubmitOptions{}); err == nil {
		t.Fatal("10-qubit circuit should not fit a 4-qubit fleet")
	}
	if _, err := s.Submit(req(2, 10), SubmitOptions{Device: "nope"}); err == nil {
		t.Fatal("pin to unknown device should fail")
	}
	if _, err := s.Submit(req(2, 10), SubmitOptions{Policy: Policy("bogus")}); err == nil {
		t.Fatal("unknown policy should fail")
	}
	if err := s.AddDevice("a", mkdev(t, "a2", 2, 2, 2, 0), 1); err == nil {
		t.Fatal("duplicate device name should fail")
	}
}

func TestBestFidelityPrefersHealthierDevice(t *testing.T) {
	// Two same-shape devices; one has drifted uncalibrated for two weeks.
	// Drift acts on noisy and twin devices alike (the record is the same);
	// the router must prefer the fresh one.
	fresh := mkdev(t, "fresh", 4, 5, 1, 0)
	stale := mkdev(t, "stale", 4, 5, 2, 0)
	stale.QPU().AdvanceDrift(24 * 14)

	s := New(PolicyBestFidelity, nil)
	defer s.Stop()
	if err := s.AddDevice("stale", stale, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDevice("fresh", fresh, 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		id, err := s.Submit(req(4, 5), SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		j, err := s.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		if j.Status != JobDone {
			t.Fatalf("job %d: %s (%s)", id, j.Status, j.Error)
		}
		if j.Device != "fresh" {
			t.Fatalf("job %d routed to %q, want the fresh device", id, j.Device)
		}
		if j.Score <= 0 || j.Score > 1 {
			t.Fatalf("job %d: score %v outside (0,1]", id, j.Score)
		}
	}
}

func TestWidthFitRouting(t *testing.T) {
	small := mkdev(t, "small", 3, 3, 1, 0) // 9 qubits
	big := mkdev(t, "big", 5, 5, 2, 0)     // 25 qubits
	s := New(PolicyBestFidelity, nil)
	defer s.Stop()
	if err := s.AddDevice("small", small, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDevice("big", big, 1); err != nil {
		t.Fatal(err)
	}
	id, err := s.Submit(req(16, 5), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if j.Status != JobDone || j.Device != "big" {
		t.Fatalf("16q job: status %s on %q, want done on big", j.Status, j.Device)
	}
	if _, err := s.Submit(req(26, 5), SubmitOptions{}); err == nil {
		t.Fatal("26q circuit should not fit a 25q fleet")
	}
}

func TestRoundRobinSpreadsLoad(t *testing.T) {
	s := New(PolicyRoundRobin, nil)
	defer s.Stop()
	for _, name := range []string{"a", "b", "c"} {
		if err := s.AddDevice(name, mkdev(t, name, 2, 2, 1, 0), 1); err != nil {
			t.Fatal(err)
		}
	}
	var ids []int
	for i := 0; i < 9; i++ {
		id, err := s.Submit(req(3, 5), SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if j, err := s.Wait(id); err != nil || j.Status != JobDone {
			t.Fatalf("job %d did not complete: %+v %v", id, j, err)
		}
	}
	m := s.Metrics()
	for _, d := range m.Devices {
		if d.Routed != 3 {
			t.Fatalf("round-robin: device %s got %d jobs, want 3", d.Name, d.Routed)
		}
	}
}

func TestLeastLoadedAvoidsBusyDevice(t *testing.T) {
	busy := mkdev(t, "busy", 2, 2, 1, 50*time.Millisecond)
	idle := mkdev(t, "idle", 2, 2, 2, 0)
	s := New(PolicyLeastLoaded, nil)
	defer s.Stop()
	if err := s.AddDevice("busy", busy, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDevice("idle", idle, 1); err != nil {
		t.Fatal(err)
	}
	// Fill the busy device's queue via pinning.
	var pinned []int
	for i := 0; i < 4; i++ {
		id, err := s.Submit(req(2, 5), SubmitOptions{Device: "busy"})
		if err != nil {
			t.Fatal(err)
		}
		pinned = append(pinned, id)
	}
	id, err := s.Submit(req(2, 5), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if j.Device != "idle" {
		t.Fatalf("least-loaded routed to %q with a busy sibling queue", j.Device)
	}
	for _, id := range pinned {
		if j, err := s.Wait(id); err != nil || j.Status != JobDone {
			t.Fatalf("pinned job %d: %+v %v", id, j, err)
		}
	}
}

func TestDrainMigratesQueuedJobs(t *testing.T) {
	a := mkdev(t, "a", 2, 2, 1, 20*time.Millisecond)
	b := mkdev(t, "b", 2, 2, 2, 0)
	s := New(PolicyBestFidelity, nil)
	defer s.Stop()
	if err := s.AddDevice("a", a, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDevice("b", b, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain("b"); err != nil {
		t.Fatal(err)
	}
	// All jobs land on a (b is draining); a's single paced worker queues them.
	var ids []int
	for i := 0; i < 8; i++ {
		id, err := s.Submit(req(3, 5), SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := s.Drain("a"); err != nil {
		t.Fatal(err)
	}
	if st, _ := s.StateOf("a"); st != DeviceDraining {
		t.Fatalf("a state %s, want draining", st)
	}
	if err := s.Resume("b"); err != nil {
		t.Fatal(err)
	}
	migrated := 0
	for _, id := range ids {
		j, err := s.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		if j.Status != JobDone {
			t.Fatalf("job %d lost to the drain: %s (%s)", id, j.Status, j.Error)
		}
		if j.Migrations > 0 {
			migrated++
			if j.Device != "b" {
				t.Fatalf("migrated job %d finished on %q, want b", id, j.Device)
			}
		}
	}
	if migrated == 0 {
		t.Fatal("draining a loaded device migrated no jobs")
	}
	if m := s.Metrics(); m.Migrated == 0 || m.Failed != 0 {
		t.Fatalf("metrics after drain: migrated=%d failed=%d", m.Migrated, m.Failed)
	}
}

func TestFailoverForInFlightFault(t *testing.T) {
	a := mkdev(t, "a", 2, 2, 1, 150*time.Millisecond)
	b := mkdev(t, "b", 2, 2, 2, 0)
	s := New(PolicyBestFidelity, nil)
	defer s.Stop()
	if err := s.AddDevice("a", a, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDevice("b", b, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain("b"); err != nil {
		t.Fatal(err)
	}
	// The next execution on a faults after its 150 ms round trip; Fail(a)
	// lands inside that window, so the job error is attributed to the device
	// and failed over rather than reported as a job defect.
	a.QPU().InjectFaults(1)
	id, err := s.Submit(req(2, 5), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // let the worker claim it
	if err := s.Fail("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Resume("b"); err != nil {
		t.Fatal(err)
	}
	j, err := s.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if j.Status != JobDone {
		t.Fatalf("failover lost the job: %s (%s)", j.Status, j.Error)
	}
	if j.Device != "b" || j.Migrations == 0 {
		t.Fatalf("job finished on %q with %d migrations, want b with >= 1", j.Device, j.Migrations)
	}
}

func TestGenuineJobFailureIsNotFailedOver(t *testing.T) {
	a := mkdev(t, "a", 2, 2, 1, 0)
	s := New(PolicyBestFidelity, nil)
	defer s.Stop()
	if err := s.AddDevice("a", a, 1); err != nil {
		t.Fatal(err)
	}
	// A fault on an otherwise healthy (active) device is a job error: it
	// must surface to the submitter, not bounce around the fleet.
	a.QPU().InjectFaults(1)
	id, err := s.Submit(req(2, 5), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if j.Status != JobFailed || j.Error == "" {
		t.Fatalf("want failed job with error, got %s (%q)", j.Status, j.Error)
	}
	if j.Result == nil || j.Result.Status != qrm.StatusFailed {
		t.Fatalf("device-level record missing or not failed: %+v", j.Result)
	}
}

func TestParkedJobsDispatchOnResume(t *testing.T) {
	a := mkdev(t, "a", 2, 2, 1, 0)
	s := New(PolicyBestFidelity, nil)
	defer s.Stop()
	if err := s.AddDevice("a", a, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain("a"); err != nil {
		t.Fatal(err)
	}
	id, err := s.Submit(req(2, 5), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Job(id)
	if err != nil {
		t.Fatal(err)
	}
	if j.Status != JobPending {
		t.Fatalf("job on a fully drained fleet should park, got %s", j.Status)
	}
	if m := s.Metrics(); m.ParkedNow != 1 {
		t.Fatalf("parked_now = %d, want 1", m.ParkedNow)
	}
	if err := s.Resume("a"); err != nil {
		t.Fatal(err)
	}
	if j, err = s.Wait(id); err != nil || j.Status != JobDone {
		t.Fatalf("parked job did not run after resume: %+v %v", j, err)
	}
}

func TestPinnedJobWaitsForItsDevice(t *testing.T) {
	a := mkdev(t, "a", 2, 2, 1, 0)
	b := mkdev(t, "b", 2, 2, 2, 0)
	s := New(PolicyBestFidelity, nil)
	defer s.Stop()
	if err := s.AddDevice("a", a, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDevice("b", b, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain("a"); err != nil {
		t.Fatal(err)
	}
	id, err := s.Submit(req(2, 5), SubmitOptions{Device: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if j, _ := s.Job(id); j.Status != JobPending {
		t.Fatalf("pinned job should park while its device drains, got %s", j.Status)
	}
	if err := s.Resume("a"); err != nil {
		t.Fatal(err)
	}
	j, err := s.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if j.Status != JobDone || j.Device != "a" {
		t.Fatalf("pinned job: %s on %q, want done on a", j.Status, j.Device)
	}
}

func TestMaintenanceWindowDrainsAndRestores(t *testing.T) {
	a := mkdev(t, "a", 2, 2, 1, 0)
	b := mkdev(t, "b", 2, 2, 2, 0)
	s := New(PolicyBestFidelity, nil)
	defer s.Stop()
	if err := s.AddDevice("a", a, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDevice("b", b, 1); err != nil {
		t.Fatal(err)
	}
	plan := ops.MaintenancePlan(400, 100) // windows at days 100, 200, 300
	if err := s.SetMaintenancePlan("a", plan); err != nil {
		t.Fatal(err)
	}
	s.AdvanceTo(50)
	if st, _ := s.StateOf("a"); st != DeviceActive {
		t.Fatalf("day 50: a is %s, want active", st)
	}
	s.AdvanceTo(100.5)
	if st, _ := s.StateOf("a"); st != DeviceMaintenance {
		t.Fatalf("day 100.5: a is %s, want maintenance", st)
	}
	// Work submitted during the window routes to the sibling.
	id, err := s.Submit(req(3, 5), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if j, err := s.Wait(id); err != nil || j.Device != "b" {
		t.Fatalf("job during maintenance window: %+v %v, want device b", j, err)
	}
	s.AdvanceTo(101.5)
	if st, _ := s.StateOf("a"); st != DeviceActive {
		t.Fatalf("day 101.5: a is %s, want active again", st)
	}
	// Manual states survive AdvanceTo.
	if err := s.Fail("a"); err != nil {
		t.Fatal(err)
	}
	s.AdvanceTo(102)
	if st, _ := s.StateOf("a"); st != DeviceFailed {
		t.Fatalf("AdvanceTo overrode a manual failure state: %s", st)
	}
}

func TestCancelParkedAndQueued(t *testing.T) {
	a := mkdev(t, "a", 2, 2, 1, 50*time.Millisecond)
	s := New(PolicyBestFidelity, nil)
	defer s.Stop()
	if err := s.AddDevice("a", a, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain("a"); err != nil {
		t.Fatal(err)
	}
	parked, err := s.Submit(req(2, 5), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(parked); err != nil {
		t.Fatal(err)
	}
	if j, _ := s.Job(parked); j.Status != JobCancelled {
		t.Fatalf("parked job after cancel: %s", j.Status)
	}
	if err := s.Resume("a"); err != nil {
		t.Fatal(err)
	}
	// Queue two; the second sits behind the 50 ms first and is cancellable.
	first, err := s.Submit(req(2, 5), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Submit(req(2, 5), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(second); err != nil {
		t.Fatalf("cancelling a queued routed job: %v", err)
	}
	if j, _ := s.Job(second); j.Status != JobCancelled {
		t.Fatalf("queued job after cancel: %s", j.Status)
	}
	if j, err := s.Wait(first); err != nil || j.Status != JobDone {
		t.Fatalf("first job: %+v %v", j, err)
	}
	if m := s.Metrics(); m.Cancelled != 2 {
		t.Fatalf("cancelled counter = %d, want 2", m.Cancelled)
	}
}

func TestTelemetryPublishing(t *testing.T) {
	store := telemetry.NewStore(0)
	s := New(PolicyBestFidelity, store)
	defer s.Stop()
	if err := s.AddDevice("a", mkdev(t, "a", 2, 2, 1, 0), 1); err != nil {
		t.Fatal(err)
	}
	id, err := s.Submit(req(2, 5), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(id); err != nil {
		t.Fatal(err)
	}
	s.PublishMetrics(nil, 10)
	for _, sensor := range []string{"fleet_routed", "fleet_completed", "fleet_a_queue_depth", "fleet_a_fidelity_cz"} {
		if _, ok := store.Latest(sensor); !ok {
			t.Fatalf("sensor %q not published (have %v)", sensor, store.Sensors())
		}
	}
	if v, _ := store.Latest("fleet_completed"); v.Value != 1 {
		t.Fatalf("fleet_completed = %v, want 1", v.Value)
	}
	// The fleet is also a DCDB collector plugin.
	if s.CollectorName() != "fleet" {
		t.Fatalf("collector name %q", s.CollectorName())
	}
	if g := s.Collect(); g["fleet_devices"] != 1 {
		t.Fatalf("collector gauges: %v", g)
	}
}

func TestHistoryPagination(t *testing.T) {
	s := New(PolicyBestFidelity, nil)
	defer s.Stop()
	if err := s.AddDevice("a", mkdev(t, "a", 2, 2, 1, 0), 2); err != nil {
		t.Fatal(err)
	}
	var ids []int
	for i := 0; i < 5; i++ {
		id, err := s.Submit(req(2, 5), SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if _, err := s.Wait(id); err != nil {
			t.Fatal(err)
		}
	}
	page, err := s.History("", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 5 || len(page.Jobs) != 3 || !page.HasMore {
		t.Fatalf("page: total=%d len=%d more=%v", page.Total, len(page.Jobs), page.HasMore)
	}
	if page.Jobs[0].ID != ids[4] {
		t.Fatalf("history not most-recent-first: first is %d", page.Jobs[0].ID)
	}
	if p2, _ := s.History("nobody", 0, 3); p2.Total != 0 {
		t.Fatalf("user filter leaked %d jobs", p2.Total)
	}
}

func TestStopFailsOutstandingWork(t *testing.T) {
	a := mkdev(t, "a", 2, 2, 1, 30*time.Millisecond)
	s := New(PolicyBestFidelity, nil)
	if err := s.AddDevice("a", a, 1); err != nil {
		t.Fatal(err)
	}
	var ids []int
	for i := 0; i < 5; i++ {
		id, err := s.Submit(req(2, 5), SubmitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	s.Stop()
	s.Stop() // idempotent
	for _, id := range ids {
		j, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if !terminal(j.Status) {
			t.Fatalf("job %d left non-terminal after Stop: %s", id, j.Status)
		}
	}
	if _, err := s.Submit(req(2, 5), SubmitOptions{}); err == nil {
		t.Fatal("submit after Stop should fail")
	}
}

// TestSetIDLimitRefusesAtBlockEnd pins the federation ID-stride
// spillover guard at the fleet layer: once every ID up to the limit has
// been minted, submission is refused instead of silently minting into
// the next member's block (which would misroute owner lookups).
func TestSetIDLimitRefusesAtBlockEnd(t *testing.T) {
	s := New(PolicyBestFidelity, nil)
	defer s.Stop()
	if err := s.AddDevice("a", mkdev(t, "a", 2, 2, 1, 0), 1); err != nil {
		t.Fatal(err)
	}
	s.SetIDBase(40)
	s.SetIDLimit(42) // block (40, 42]: exactly two mintable IDs
	for want := 41; want <= 42; want++ {
		id, err := s.Submit(req(2, 1), SubmitOptions{})
		if err != nil {
			t.Fatalf("submit inside the block: %v", err)
		}
		if id != want {
			t.Fatalf("minted id %d, want %d", id, want)
		}
	}
	if _, err := s.Submit(req(2, 1), SubmitOptions{}); err == nil || !strings.Contains(err.Error(), "job-ID space exhausted") {
		t.Fatalf("submit past the block end: err = %v, want job-ID space exhausted", err)
	}
}
