package fleet

import (
	"fmt"

	"repro/internal/ops"
)

// Maintenance-window draining: each device can carry a §3.4 maintenance
// plan (ops.MaintenancePlan output, or hand-built windows for calibration
// slots). AdvanceTo drives the fleet clock in simulated days: entering a
// window drains the device (queued jobs migrate to siblings, in-flight work
// finishes, routing excludes it), and leaving the window restores it and
// re-dispatches parked work. Manual Drain/Fail states are never overridden —
// the operator owns those.

// SetMaintenancePlan attaches (or replaces) a device's maintenance windows.
func (s *Scheduler) SetMaintenancePlan(name string, plan []ops.MaintenanceWindow) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.devices[name]
	if !ok {
		return fmt.Errorf("fleet: unknown device %q", name)
	}
	e.maintenance = append([]ops.MaintenanceWindow(nil), plan...)
	return nil
}

// MaintenancePlan returns a copy of a device's attached windows.
func (s *Scheduler) MaintenancePlan(name string) ([]ops.MaintenanceWindow, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.devices[name]
	if !ok {
		return nil, fmt.Errorf("fleet: unknown device %q", name)
	}
	return append([]ops.MaintenanceWindow(nil), e.maintenance...), nil
}

// inWindow reports whether day falls inside any window of the plan.
func inWindow(plan []ops.MaintenanceWindow, day float64) bool {
	for _, w := range plan {
		if day >= w.StartDay && day < w.StartDay+w.Days {
			return true
		}
	}
	return false
}

// AdvanceTo moves the fleet's maintenance clock to the given simulation day:
// devices entering a window drain into DeviceMaintenance, devices whose
// window has closed return to routing (and parked jobs re-dispatch). It is
// idempotent — call it as often as the simulation ticks.
func (s *Scheduler) AdvanceTo(day float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nowDay = day
	for _, name := range s.order {
		e := s.devices[name]
		if len(e.maintenance) == 0 {
			continue
		}
		in := inWindow(e.maintenance, day)
		switch {
		case in && e.state == DeviceActive:
			e.state = DeviceMaintenance
			e.mgr.SetOnline(false) // queued jobs interrupt → monitors migrate
		case !in && e.state == DeviceMaintenance:
			// resumeLocked also re-dispatches parked jobs.
			_ = s.resumeLocked(name)
		}
	}
}
