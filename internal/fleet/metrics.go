package fleet

import (
	"fmt"

	"repro/internal/qrm"
	"repro/internal/telemetry"
)

// DeviceMetrics is one backend's slice of the fleet snapshot.
type DeviceMetrics struct {
	Name    string      `json:"name"`
	State   DeviceState `json:"state"`
	Qubits  int         `json:"qubits"`
	Workers int         `json:"workers"`

	QueueDepth int `json:"queue_depth"`
	Inflight   int `json:"inflight"`

	Routed      uint64 `json:"routed"`
	MigratedOut uint64 `json:"migrated_out"`
	Completed   uint64 `json:"completed"`
	Failed      uint64 `json:"failed"`
	Shed        uint64 `json:"shed"`

	MeanF1Q   float64 `json:"fidelity_1q"`
	MeanFCZ   float64 `json:"fidelity_cz"`
	MeanFRead float64 `json:"fidelity_readout"`
	CalibAgeH float64 `json:"calibration_age_h"`

	// ScoreHist buckets the fidelity estimates of jobs routed here.
	ScoreHist telemetry.HistogramSnapshot `json:"score_hist"`
	// QRM is the device's full dispatch-pipeline snapshot.
	QRM qrm.Metrics `json:"qrm"`
}

// Metrics is a point-in-time snapshot of fleet health.
type Metrics struct {
	Policy  Policy          `json:"policy"`
	Devices []DeviceMetrics `json:"devices"`

	Submitted  uint64 `json:"submitted"`
	Routed     uint64 `json:"routed"`
	Migrated   uint64 `json:"migrated"`
	ParkEvents uint64 `json:"park_events"`
	ParkedNow  int    `json:"parked_now"`
	Completed  uint64 `json:"completed"`
	Failed     uint64 `json:"failed"`
	Cancelled  uint64 `json:"cancelled"`
	Shed       uint64 `json:"shed"`

	// ScoreHist buckets fidelity estimates across all routing decisions.
	ScoreHist telemetry.HistogramSnapshot `json:"score_hist"`
}

// Metrics returns the fleet snapshot.
func (s *Scheduler) Metrics() Metrics {
	s.mu.Lock()
	out := Metrics{
		Policy:     s.policy,
		Submitted:  s.submitted,
		Routed:     s.routed,
		Migrated:   s.migrated,
		ParkEvents: s.parkEvts,
		ParkedNow:  len(s.parked),
		Completed:  s.completed,
		Failed:     s.failures,
		Cancelled:  s.cancelled,
		Shed:       s.shed,
	}
	type pending struct {
		e *deviceEntry
		d DeviceMetrics
	}
	devs := make([]pending, 0, len(s.order))
	for _, name := range s.order {
		e := s.devices[name]
		e.refreshCalibMeans()
		devs = append(devs, pending{e: e, d: DeviceMetrics{
			Name: e.name, State: e.state,
			Qubits:  e.dev.Properties().NumQubits,
			Workers: e.workers,
			Routed:  e.routed, MigratedOut: e.migratedOut,
			Completed: e.completed, Failed: e.failed, Shed: e.shed,
			MeanF1Q: e.meanF1Q, MeanFCZ: e.meanFCZ, MeanFRead: e.meanFRead,
			CalibAgeH: e.calibAgeH,
		}})
	}
	s.mu.Unlock()
	// Histograms and QRM snapshots are internally synchronized; read them
	// outside the fleet lock.
	out.ScoreHist = s.scoreHist.Snapshot()
	for _, p := range devs {
		d := p.d
		d.ScoreHist = p.e.scoreHist.Snapshot()
		d.QRM = p.e.mgr.Metrics()
		d.QueueDepth = d.QRM.QueueDepth
		d.Inflight = d.QRM.Inflight
		out.Devices = append(out.Devices, d)
	}
	return out
}

// Gauges flattens the snapshot into telemetry sensors: fleet totals plus
// per-device series (queue depth, counters, mean fidelity, p95 score).
func (m Metrics) Gauges() map[string]float64 {
	out := map[string]float64{
		"fleet_devices":    float64(len(m.Devices)),
		"fleet_routed":     float64(m.Routed),
		"fleet_migrated":   float64(m.Migrated),
		"fleet_parked_now": float64(m.ParkedNow),
		"fleet_completed":  float64(m.Completed),
		"fleet_failed":     float64(m.Failed),
		"fleet_shed":       float64(m.Shed),
		"fleet_score_p50":  m.ScoreHist.Quantile(0.50),
	}
	for _, d := range m.Devices {
		p := "fleet_" + d.Name + "_"
		out[p+"queue_depth"] = float64(d.QueueDepth)
		out[p+"inflight"] = float64(d.Inflight)
		out[p+"routed"] = float64(d.Routed)
		out[p+"migrated_out"] = float64(d.MigratedOut)
		out[p+"completed"] = float64(d.Completed)
		out[p+"failed"] = float64(d.Failed)
		out[p+"fidelity_1q"] = d.MeanF1Q
		out[p+"fidelity_cz"] = d.MeanFCZ
		active := 0.0
		if d.State == DeviceActive {
			active = 1
		}
		out[p+"active"] = active
	}
	return out
}

// PublishMetrics appends the fleet gauges to a telemetry store at simulation
// time t (the DCDB integration for the fleet layer). With a store attached
// at New, callers may pass nil to use it.
func (s *Scheduler) PublishMetrics(store *telemetry.Store, t float64) {
	if store == nil {
		store = s.store
	}
	if store == nil {
		return
	}
	for sensor, v := range s.Metrics().Gauges() {
		store.Append(sensor, t, v)
	}
}

// CollectorName implements telemetry.Collector: the fleet doubles as a DCDB
// plugin so a poller picks its gauges up with the rest of the center.
func (s *Scheduler) CollectorName() string { return "fleet" }

// Collect implements telemetry.Collector.
func (s *Scheduler) Collect() map[string]float64 { return s.Metrics().Gauges() }

var _ telemetry.Collector = (*Scheduler)(nil)

// StateOf returns a device's current lifecycle state.
func (s *Scheduler) StateOf(name string) (DeviceState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.devices[name]
	if !ok {
		return "", fmt.Errorf("fleet: unknown device %q", name)
	}
	return e.state, nil
}

// Page is a paginated slice of fleet job history (most recent first).
type Page struct {
	Jobs    []*Job `json:"jobs"`
	Total   int    `json:"total"`
	Offset  int    `json:"offset"`
	Limit   int    `json:"limit"`
	HasMore bool   `json:"has_more"`
}

// History pages through fleet jobs (most recent first), optionally filtered
// by submitting user.
func (s *Scheduler) History(user string, offset, limit int) (*Page, error) {
	if offset < 0 || limit < 1 {
		return nil, fmt.Errorf("fleet: bad pagination offset=%d limit=%d", offset, limit)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var ids []int
	for i := len(s.jobOrder) - 1; i >= 0; i-- {
		j := s.jobs[s.jobOrder[i]]
		if user == "" || j.Request.User == user {
			ids = append(ids, j.ID)
		}
	}
	total := len(ids)
	if offset >= total {
		return &Page{Total: total, Offset: offset, Limit: limit}, nil
	}
	end := offset + limit
	if end > total {
		end = total
	}
	page := &Page{Total: total, Offset: offset, Limit: limit, HasMore: end < total}
	for _, id := range ids[offset:end] {
		cp := *s.jobs[id]
		page.Jobs = append(page.Jobs, &cp)
	}
	return page, nil
}
