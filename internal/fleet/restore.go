package fleet

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/qrm"
	"repro/internal/telemetry/trace"
)

// RestoreStats reports what Restore did with the recovered fleet records.
type RestoreStats struct {
	Terminal int // re-entered history untouched
	Requeued int // re-routed (or parked) under their original IDs
	Expired  int // past deadline while down; failed with the interrupted error
}

// Restore loads recovered fleet job records into an empty scheduler.
// Terminal jobs become history; jobs that were pending or routed when the
// process died are re-routed from scratch under their *original* IDs — the
// pre-crash device placement is only a hint that died with the device
// pools, so recovery reruns the scoring loop, and a job whose terminal
// record missed its fsync runs again (at-least-once semantics). Jobs past
// their dispatch deadline fail with the retryable interrupted error
// instead. Every restored job is marked Recovered and republished (reason
// "recovered"), so re-attached watch streams and the fresh WAL segment see
// the post-restart state. Devices must be registered (AddDevice) before
// calling, otherwise everything recovered parks.
func (s *Scheduler) Restore(jobs []*Job) (RestoreStats, error) {
	var stats RestoreStats
	sorted := make([]*Job, len(jobs))
	copy(sorted, jobs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return stats, fmt.Errorf("fleet: scheduler stopped")
	}
	if len(s.jobs) > 0 {
		return stats, fmt.Errorf("fleet: restore into a non-empty scheduler (%d jobs present)", len(s.jobs))
	}
	nowMs := time.Now().UnixMilli()
	for _, src := range sorted {
		if src == nil || src.ID <= 0 {
			continue
		}
		cp := *src
		j := &cp
		j.done = make(chan struct{})
		j.Recovered = true
		// The job's routing preference survives through Pinned (serialized);
		// the per-job policy override died with the process, so recovered
		// jobs route under the scheduler default.
		j.policy = s.policy
		j.tr, j.rootSpan, j.parkSpan = nil, nil, nil
		if j.SubmitUnixMs <= 0 {
			j.SubmitUnixMs = nowMs
		}

		if j.ID > s.nextID {
			s.nextID = j.ID
		}
		if j.BatchID > s.nextBatch {
			s.nextBatch = j.BatchID
		}
		s.jobs[j.ID] = j
		s.jobOrder = append(s.jobOrder, j.ID)

		if terminal(j.Status) {
			close(j.done)
			stats.Terminal++
			continue
		}

		from := j.Status
		j.Status = JobPending
		j.Device = ""
		j.LocalID = 0
		j.Result = nil
		j.Error = ""
		s.submitted++
		if j.Request.DeadlineMs > 0 &&
			float64(nowMs-j.SubmitUnixMs) > j.Request.DeadlineMs {
			s.finalizeLocked(j, JobFailed, nil, qrm.ErrInterruptedMsg)
			stats.Expired++
			continue
		}
		j.tr = trace.New("job",
			trace.Int("job_id", j.ID), trace.Str("user", j.Request.User))
		j.rootSpan = j.tr.Root()
		s.publishLocked(j, from, "recovered")
		s.routeLocked(j, nil, "recovered")
		stats.Requeued++
	}
	s.cond.Broadcast()
	return stats, nil
}
