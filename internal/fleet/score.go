package fleet

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/telemetry"
)

// Policy selects how the router ranks eligible devices.
type Policy string

const (
	// PolicyBestFidelity routes to the device with the highest estimated
	// fidelity for this circuit (queue depth breaks ties). The default.
	PolicyBestFidelity Policy = "best-fidelity"
	// PolicyLeastLoaded routes to the device with the lowest per-worker load
	// (fidelity estimate breaks ties).
	PolicyLeastLoaded Policy = "least-loaded"
	// PolicyRoundRobin cycles through eligible devices in registration
	// order.
	PolicyRoundRobin Policy = "round-robin"
)

// Validate rejects unknown policies.
func (p Policy) Validate() error {
	switch p {
	case PolicyBestFidelity, PolicyLeastLoaded, PolicyRoundRobin:
		return nil
	}
	return fmt.Errorf("fleet: unknown routing policy %q (want %s, %s or %s)",
		string(p), PolicyBestFidelity, PolicyLeastLoaded, PolicyRoundRobin)
}

// ParsePolicy parses a policy name ("" means the default, best-fidelity).
func ParsePolicy(s string) (Policy, error) {
	if s == "" {
		return PolicyBestFidelity, nil
	}
	p := Policy(s)
	if err := p.Validate(); err != nil {
		return "", err
	}
	return p, nil
}

// scoreHistogram buckets fidelity estimates: linear bins over (0, 1].
func scoreHistogram() *telemetry.Histogram {
	bounds := make([]float64, 20)
	for i := range bounds {
		bounds[i] = 0.05 * float64(i+1)
	}
	h, err := telemetry.NewHistogram(bounds)
	if err != nil {
		panic(err) // static bounds cannot fail
	}
	return h
}

// eligibleLocked reports whether a device can accept this job right now.
func (s *Scheduler) eligibleLocked(e *deviceEntry, j *Job, exclude map[string]bool) bool {
	if exclude[e.name] {
		return false
	}
	if j.Pinned != "" && e.name != j.Pinned {
		return false
	}
	if e.state != DeviceActive {
		return false
	}
	if j.Request.Circuit.NumQubits > e.dev.Properties().NumQubits {
		return false
	}
	return e.mgr.Online()
}

// pickLocked selects the best eligible device for j under its policy,
// returning the fidelity estimate the router computed for it.
func (s *Scheduler) pickLocked(j *Job, exclude map[string]bool) (*deviceEntry, float64, bool) {
	var eligible []*deviceEntry
	for _, name := range s.order {
		if e := s.devices[name]; s.eligibleLocked(e, j, exclude) {
			eligible = append(eligible, e)
		}
	}
	if len(eligible) == 0 {
		return nil, 0, false
	}
	switch j.policy {
	case PolicyRoundRobin:
		e := eligible[s.rr%len(eligible)]
		s.rr++
		return e, e.estimateFidelity(j.Request.Circuit), true
	case PolicyLeastLoaded:
		best, bestLoad, bestFid := eligible[0], math.Inf(1), 0.0
		for _, e := range eligible {
			load := e.loadPerWorker()
			fid := e.estimateFidelity(j.Request.Circuit)
			if load < bestLoad || (load == bestLoad && fid > bestFid) {
				best, bestLoad, bestFid = e, load, fid
			}
		}
		return best, bestFid, true
	default: // PolicyBestFidelity
		best, bestScore, bestFid := eligible[0], math.Inf(-1), 0.0
		for _, e := range eligible {
			fid := e.estimateFidelity(j.Request.Circuit)
			// A small load penalty keeps a hot device from absorbing every
			// job when a near-equal sibling sits idle.
			score := fid - 0.002*e.loadPerWorker()
			if score > bestScore {
				best, bestScore, bestFid = e, score, fid
			}
		}
		return best, bestFid, true
	}
}

// loadPerWorker is queued + in-flight jobs normalized by pool size.
func (e *deviceEntry) loadPerWorker() float64 {
	queued, inflight := e.mgr.Load()
	return float64(queued+inflight) / float64(e.workers)
}

// estimateFidelity is the router's deterministic fidelity model for running
// this circuit on this device, from the live calibration snapshot:
//
//	F ≈ f1q^(g1) · fcz^(g2·(1+3·overhead)) · fread^(width)
//
// where g1/g2 are the circuit's single-/two-qubit gate counts, and overhead
// is the expected SWAP insertions per two-qubit gate given the topology —
// computed from the mean pairwise coupler distance of the width-sized
// best-connected region of the device (the topology/width fit term: a
// circuit that fits snugly into a dense region routes with fewer SWAPs than
// one smeared across a sparse graph). The calibration means are memoized per
// calibration epoch so routing 200 jobs does not clone 200 records.
func (e *deviceEntry) estimateFidelity(c *circuit.Circuit) float64 {
	e.refreshCalibMeans()
	g2 := c.TwoQubitCount()
	g1 := 0
	for _, g := range c.Gates {
		if len(g.Qubits) == 1 && g.Name != circuit.OpBarrier {
			g1++
		}
	}
	overhead := 0.5 * math.Max(0, e.regionMeanDistance(c.NumQubits)-1)
	effCZ := float64(g2) * (1 + 3*overhead)
	f := math.Pow(e.meanF1Q, float64(g1)) *
		math.Pow(e.meanFCZ, effCZ) *
		math.Pow(e.meanFRead, float64(c.NumQubits))
	if f < 0 {
		return 0
	}
	return f
}

// refreshCalibMeans memoizes the calibration means per epoch.
func (e *deviceEntry) refreshCalibMeans() {
	epoch := e.dev.CalibrationEpoch()
	if e.calibValid && epoch == e.calibEpoch {
		return
	}
	calib := e.dev.Calibration()
	e.meanF1Q = calib.MeanF1Q()
	e.meanFCZ = calib.MeanFCZ()
	e.meanFRead = calib.MeanFReadout()
	e.calibAgeH = calib.AgeHours
	e.calibEpoch = epoch
	e.calibValid = true
}

// regionMeanDistance is the mean pairwise coupler distance among the w
// best-connected qubits of the device (a BFS ball grown from the
// highest-degree qubit), memoized per width. It is the topology/width fit
// signal: 1.0 means every pair in the region is adjacent (no routing), and
// it grows as circuits outgrow the dense core of the device.
func (e *deviceEntry) regionMeanDistance(w int) float64 {
	if w < 2 {
		return 1
	}
	if d, ok := e.regionMemo[w]; ok {
		return d
	}
	topo := e.dev.QPU().Topology()
	n := topo.NumQubits()
	if w > n {
		w = n
	}
	center, bestDeg := 0, -1
	for q := 0; q < n; q++ {
		if deg := len(topo.Neighbors(q)); deg > bestDeg {
			center, bestDeg = q, deg
		}
	}
	// BFS ball of w qubits around the center.
	region := make([]int, 0, w)
	seen := map[int]bool{center: true}
	frontier := []int{center}
	region = append(region, center)
	for len(region) < w && len(frontier) > 0 {
		var next []int
		for _, q := range frontier {
			for _, nb := range topo.Neighbors(q) {
				if !seen[nb] {
					seen[nb] = true
					next = append(next, nb)
					region = append(region, nb)
					if len(region) == w {
						break
					}
				}
			}
			if len(region) == w {
				break
			}
		}
		frontier = next
	}
	sum, pairs := 0.0, 0
	for i := 0; i < len(region); i++ {
		for k := i + 1; k < len(region); k++ {
			if d := topo.Distance(region[i], region[k]); d > 0 {
				sum += float64(d)
				pairs++
			}
		}
	}
	mean := 1.0
	if pairs > 0 {
		mean = sum / float64(pairs)
	}
	e.regionMemo[w] = mean
	return mean
}
