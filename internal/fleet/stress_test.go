package fleet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/qrm"
)

// TestFleetStressDrainFailoverNoLostJobs is the acceptance stress test: 4
// heterogeneous devices, 240 jobs submitted from concurrent clients while a
// drain/resume cycle, a maintenance window, and a device fault with injected
// execution errors all land mid-run. Every job must settle as done — zero
// lost, zero failed — with migrations doing the bookkeeping. Run under
// -race.
func TestFleetStressDrainFailoverNoLostJobs(t *testing.T) {
	const (
		clients    = 8
		perClient  = 30 // 240 jobs total
		workersPer = 4
	)
	s := New(PolicyBestFidelity, nil)
	defer s.Stop()
	// Heterogeneous roster: different sizes, seeds, and pacing.
	// Per-job control-electronics pacing of a few ms guarantees a real
	// backlog exists when the chaos hits: 240 jobs x ~3 ms over 16 workers
	// is ~45 ms of service time, while submission takes well under 1 ms.
	shapes := []struct {
		name       string
		rows, cols int
		latency    time.Duration
	}{
		{"garnet-a", 4, 5, 3 * time.Millisecond},
		{"garnet-b", 3, 4, 2 * time.Millisecond},
		{"garnet-c", 4, 4, 4 * time.Millisecond},
		{"garnet-d", 3, 3, 2 * time.Millisecond},
	}
	faulty := mkdev(t, shapes[2].name, shapes[2].rows, shapes[2].cols, 3, shapes[2].latency)
	for i, sh := range shapes {
		dev := faulty
		if i != 2 {
			dev = mkdev(t, sh.name, sh.rows, sh.cols, int64(i+1), sh.latency)
		}
		if err := s.AddDevice(sh.name, dev, workersPer); err != nil {
			t.Fatal(err)
		}
	}

	circs := []*circuit.Circuit{circuit.GHZ(2), circuit.GHZ(3), circuit.GHZ(5), circuit.GHZ(8)}
	ids := make(chan int, clients*perClient)
	var submitCount int32
	halfway := make(chan struct{})
	var halfOnce sync.Once
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				id, err := s.Submit(qrm.Request{
					Circuit: circs[(c+i)%len(circs)],
					Shots:   5,
					User:    fmt.Sprintf("stress-%d", c),
				}, SubmitOptions{})
				if err != nil {
					t.Errorf("client %d submit %d: %v", c, i, err)
					return
				}
				ids <- id
				if atomic.AddInt32(&submitCount, 1) == clients*perClient/2 {
					halfOnce.Do(func() { close(halfway) })
				}
			}
		}(c)
	}

	// Operational chaos, concurrent with the submitters, gated on half the
	// jobs being in (so the drained devices provably hold a backlog): drain
	// one device, fault another with real injected execution errors (so
	// in-flight jobs fail on it and fail over), then restore everything.
	var ops sync.WaitGroup
	ops.Add(1)
	go func() {
		defer ops.Done()
		<-halfway
		if err := s.Drain("garnet-a"); err != nil {
			t.Error(err)
		}
		faulty.QPU().InjectFaults(20)
		if err := s.Fail("garnet-c"); err != nil {
			t.Error(err)
		}
		time.Sleep(10 * time.Millisecond)
		if err := s.Drain("garnet-b"); err != nil {
			t.Error(err)
		}
		time.Sleep(10 * time.Millisecond)
		if err := s.Resume("garnet-a"); err != nil {
			t.Error(err)
		}
		if err := s.Resume("garnet-b"); err != nil {
			t.Error(err)
		}
		faulty.QPU().InjectFaults(0)
		if err := s.Recover("garnet-c"); err != nil {
			t.Error(err)
		}
	}()

	wg.Wait()
	close(ids)
	ops.Wait()

	submitted := 0
	for id := range ids {
		j, err := s.Wait(id)
		if err != nil {
			t.Fatalf("wait %d: %v", id, err)
		}
		if j.Status != JobDone {
			t.Fatalf("job %d lost: %s on %q (%s), %d migrations",
				id, j.Status, j.Device, j.Error, j.Migrations)
		}
		if j.Result == nil || len(j.Result.Counts) == 0 {
			t.Fatalf("job %d done without results", id)
		}
		submitted++
	}
	if submitted != clients*perClient {
		t.Fatalf("submitted %d, want %d", submitted, clients*perClient)
	}

	m := s.Metrics()
	if m.Completed != uint64(submitted) {
		t.Fatalf("completed=%d, want %d", m.Completed, submitted)
	}
	if m.Failed != 0 || m.Cancelled != 0 {
		t.Fatalf("failed=%d cancelled=%d, want 0/0", m.Failed, m.Cancelled)
	}
	if m.ParkedNow != 0 {
		t.Fatalf("parked_now=%d after settle", m.ParkedNow)
	}
	// The chaos window must actually have exercised migration; with 240
	// paced jobs against drains of loaded devices this is structural, not
	// timing luck.
	if m.Migrated == 0 {
		t.Fatal("stress run migrated no jobs — the drain/failover path was not exercised")
	}
	total := uint64(0)
	for _, d := range m.Devices {
		total += d.Completed
		if d.State != DeviceActive {
			t.Fatalf("device %s ended %s, want active", d.Name, d.State)
		}
	}
	if total != uint64(submitted) {
		t.Fatalf("per-device completions sum to %d, want %d", total, submitted)
	}
	t.Logf("stress: %d jobs, %d migrations, %d park events across %d devices",
		submitted, m.Migrated, m.ParkEvents, len(m.Devices))
}
