package hpc

import "fmt"

// Gate is the QPU-slot admission gate for co-scheduling: the HPC resource
// manager owns the quantum resource (§3.2), so concurrent dispatch pipelines
// must acquire a slot before occupying the device. Capacity 1 models the
// paper's single 20-qubit QPU; larger capacities model multi-QPU or
// time-multiplexed control electronics.
type Gate struct {
	slots chan struct{}
}

// NewGate builds an admission gate with the given slot capacity.
func NewGate(capacity int) (*Gate, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("hpc: gate needs >= 1 slot, got %d", capacity)
	}
	return &Gate{slots: make(chan struct{}, capacity)}, nil
}

// Acquire blocks until a QPU slot is free and claims it.
func (g *Gate) Acquire() {
	g.slots <- struct{}{}
}

// TryAcquire claims a slot without blocking, reporting success.
func (g *Gate) TryAcquire() bool {
	select {
	case g.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release frees a previously acquired slot.
func (g *Gate) Release() {
	select {
	case <-g.slots:
	default:
		panic("hpc: Gate.Release without matching Acquire")
	}
}

// InUse reports how many slots are currently held.
func (g *Gate) InUse() int { return len(g.slots) }

// Capacity reports the total slot count.
func (g *Gate) Capacity() int { return cap(g.slots) }
