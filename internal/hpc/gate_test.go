package hpc

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestGateValidation(t *testing.T) {
	if _, err := NewGate(0); err == nil {
		t.Error("zero-capacity gate should fail")
	}
}

func TestGateAdmission(t *testing.T) {
	g, err := NewGate(2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Capacity() != 2 || g.InUse() != 0 {
		t.Fatalf("fresh gate: capacity %d, in use %d", g.Capacity(), g.InUse())
	}
	g.Acquire()
	if !g.TryAcquire() {
		t.Error("second slot should be free")
	}
	if g.TryAcquire() {
		t.Error("third acquire should fail")
	}
	if g.InUse() != 2 {
		t.Errorf("in use = %d, want 2", g.InUse())
	}
	g.Release()
	g.Release()
	if g.InUse() != 0 {
		t.Errorf("in use after releases = %d, want 0", g.InUse())
	}
}

func TestGateReleaseWithoutAcquirePanics(t *testing.T) {
	g, _ := NewGate(1)
	defer func() {
		if recover() == nil {
			t.Error("unbalanced release should panic")
		}
	}()
	g.Release()
}

func TestGateBoundsConcurrency(t *testing.T) {
	g, _ := NewGate(3)
	var inside, peak int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Acquire()
			n := atomic.AddInt64(&inside, 1)
			for {
				p := atomic.LoadInt64(&peak)
				if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
					break
				}
			}
			atomic.AddInt64(&inside, -1)
			g.Release()
		}()
	}
	wg.Wait()
	if peak > 3 {
		t.Errorf("peak concurrent holders = %d, want <= 3", peak)
	}
}

func TestSchedulerOwnsQPUGate(t *testing.T) {
	s, err := NewScheduler(4)
	if err != nil {
		t.Fatal(err)
	}
	g := s.QPUGate()
	if g == nil || g.Capacity() != 1 {
		t.Fatalf("scheduler gate = %+v, want capacity-1 gate", g)
	}
}
