// Package hpc models the classical resource-management framework the
// quantum computer integrates into: a batch scheduler over CPU nodes with
// the QPU as a schedulable resource, FIFO dispatch with backfill,
// and maintenance reservations through which the HPC center controls
// calibration slots (§3.2: "the center retains full control over scheduling
// these maintenance and calibration slots").
//
// Time is simulation seconds driven by Advance, never the wall clock.
package hpc

import (
	"fmt"
	"sort"
	"sync"
)

// JobState tracks a job through its lifecycle.
type JobState int

const (
	JobQueued JobState = iota
	JobRunning
	JobCompleted
	JobCancelled
)

func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobCompleted:
		return "completed"
	case JobCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Job is a batch job requesting CPU nodes and optionally the QPU.
type Job struct {
	ID       int
	Name     string
	Nodes    int     // CPU nodes requested
	NeedsQPU bool    // hybrid job co-allocating the quantum resource
	Duration float64 // seconds of runtime once started
	Priority int     // higher runs earlier

	State      JobState
	SubmitTime float64
	StartTime  float64
	EndTime    float64
}

// WaitTime returns the queue wait of a started job.
func (j *Job) WaitTime() float64 {
	if j.State == JobQueued || j.State == JobCancelled {
		return 0
	}
	return j.StartTime - j.SubmitTime
}

// Reservation blocks the QPU (and optionally nodes) for maintenance or
// calibration during [Start, Start+Duration).
type Reservation struct {
	ID       int
	Name     string
	Start    float64
	Duration float64
	QPU      bool // reserves the quantum resource
	Nodes    int  // CPU nodes withheld from scheduling
}

func (r Reservation) covers(t float64) bool {
	return t >= r.Start && t < r.Start+r.Duration
}

// Scheduler is the cluster state.
type Scheduler struct {
	mu sync.Mutex

	totalNodes int
	qpuPresent bool

	now          float64
	nextJobID    int
	nextResID    int
	queue        []*Job
	running      []*Job
	done         []*Job
	reservations []Reservation

	// qpuOnline mirrors device availability: outages and calibration take
	// the QPU resource offline (§3).
	qpuOnline bool

	// qpuGate admits concurrent runtime pipelines (the QRM workers) onto
	// the quantum resource this scheduler owns.
	qpuGate *Gate

	// accounting
	nodeSecondsUsed float64
	qpuSecondsUsed  float64
	qpuSecondsCal   float64
}

// NewScheduler builds a cluster with the given CPU node count and one QPU.
func NewScheduler(nodes int) (*Scheduler, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("hpc: cluster needs at least one node")
	}
	gate, err := NewGate(1) // one physical QPU
	if err != nil {
		return nil, err
	}
	return &Scheduler{totalNodes: nodes, qpuPresent: true, qpuOnline: true, qpuGate: gate}, nil
}

// QPUGate returns the admission gate for runtime access to this cluster's
// quantum resource: QRM dispatch workers acquire a slot around each device
// round-trip, so concurrent pipelines never oversubscribe the QPU. The
// batch scheduler's own simulated-time co-allocation (NeedsQPU jobs,
// reservations) is accounted separately in freeResources — the gate
// serializes the real execution path, not the simulation.
func (s *Scheduler) QPUGate() *Gate { return s.qpuGate }

// Now returns the scheduler's simulation time.
func (s *Scheduler) Now() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// SetQPUOnline marks the quantum resource available or unavailable.
func (s *Scheduler) SetQPUOnline(online bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.qpuOnline = online
}

// QPUOnline reports quantum-resource availability.
func (s *Scheduler) QPUOnline() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.qpuOnline
}

// Submit enqueues a job and returns its ID.
func (s *Scheduler) Submit(name string, nodes int, needsQPU bool, duration float64, priority int) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if nodes < 0 || nodes > s.totalNodes {
		return 0, fmt.Errorf("hpc: job wants %d nodes, cluster has %d", nodes, s.totalNodes)
	}
	if nodes == 0 && !needsQPU {
		return 0, fmt.Errorf("hpc: job requests no resources")
	}
	if duration <= 0 {
		return 0, fmt.Errorf("hpc: job duration must be positive")
	}
	s.nextJobID++
	j := &Job{
		ID: s.nextJobID, Name: name, Nodes: nodes, NeedsQPU: needsQPU,
		Duration: duration, Priority: priority,
		State: JobQueued, SubmitTime: s.now,
	}
	s.queue = append(s.queue, j)
	return j.ID, nil
}

// Cancel removes a queued job.
func (s *Scheduler) Cancel(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, j := range s.queue {
		if j.ID == id {
			j.State = JobCancelled
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.done = append(s.done, j)
			return nil
		}
	}
	return fmt.Errorf("hpc: job %d not in queue", id)
}

// Reserve books a maintenance/calibration window. Overlapping QPU
// reservations are rejected.
func (s *Scheduler) Reserve(name string, start, duration float64, qpu bool, nodes int) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if start < s.now {
		return 0, fmt.Errorf("hpc: reservation starts in the past (%g < %g)", start, s.now)
	}
	if duration <= 0 {
		return 0, fmt.Errorf("hpc: reservation duration must be positive")
	}
	if qpu {
		for _, r := range s.reservations {
			if r.QPU && start < r.Start+r.Duration && r.Start < start+duration {
				return 0, fmt.Errorf("hpc: QPU reservation overlaps %q", r.Name)
			}
		}
	}
	s.nextResID++
	s.reservations = append(s.reservations, Reservation{
		ID: s.nextResID, Name: name, Start: start, Duration: duration, QPU: qpu, Nodes: nodes,
	})
	return s.nextResID, nil
}

// Reservations returns a copy of the reservation list.
func (s *Scheduler) Reservations() []Reservation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Reservation(nil), s.reservations...)
}

// freeResources computes available nodes and QPU at time t given running
// jobs and reservations.
func (s *Scheduler) freeResources(t float64) (nodes int, qpuFree bool) {
	nodes = s.totalNodes
	for _, j := range s.running {
		nodes -= j.Nodes
	}
	qpuFree = s.qpuOnline
	for _, j := range s.running {
		if j.NeedsQPU {
			qpuFree = false
		}
	}
	for _, r := range s.reservations {
		if r.covers(t) {
			nodes -= r.Nodes
			if r.QPU {
				qpuFree = false
			}
		}
	}
	return nodes, qpuFree
}

// dispatch starts every queued job that fits, in priority order with FIFO
// tie-break; jobs that don't fit are skipped (backfill).
func (s *Scheduler) dispatch() {
	sort.SliceStable(s.queue, func(i, j int) bool {
		if s.queue[i].Priority != s.queue[j].Priority {
			return s.queue[i].Priority > s.queue[j].Priority
		}
		return s.queue[i].SubmitTime < s.queue[j].SubmitTime
	})
	remaining := s.queue[:0]
	for _, j := range s.queue {
		freeNodes, qpuFree := s.freeResources(s.now)
		if j.Nodes <= freeNodes && (!j.NeedsQPU || qpuFree) {
			j.State = JobRunning
			j.StartTime = s.now
			j.EndTime = s.now + j.Duration
			s.running = append(s.running, j)
		} else {
			remaining = append(remaining, j)
		}
	}
	s.queue = remaining
}

// Advance moves simulation time forward by dt seconds, completing and
// starting jobs. It processes completions in event order so short jobs free
// resources for queued work within the same Advance call.
func (s *Scheduler) Advance(dt float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if dt <= 0 {
		return
	}
	end := s.now + dt
	s.dispatch() // start anything submitted since the last advance
	for {
		// Find the earliest completion before `end`.
		next := end
		for _, j := range s.running {
			if j.EndTime < next {
				next = j.EndTime
			}
		}
		s.accumulateUsage(next - s.now)
		s.now = next
		// Complete everything due.
		still := s.running[:0]
		for _, j := range s.running {
			if j.EndTime <= s.now {
				j.State = JobCompleted
				s.done = append(s.done, j)
			} else {
				still = append(still, j)
			}
		}
		s.running = still
		s.dispatch()
		if s.now >= end {
			return
		}
	}
}

// accumulateUsage adds node- and qpu-seconds for a span where the running
// set is constant.
func (s *Scheduler) accumulateUsage(span float64) {
	if span <= 0 {
		return
	}
	for _, j := range s.running {
		s.nodeSecondsUsed += span * float64(j.Nodes)
		if j.NeedsQPU {
			s.qpuSecondsUsed += span
		}
	}
	for _, r := range s.reservations {
		if r.QPU && r.covers(s.now) {
			s.qpuSecondsCal += span
		}
	}
}

// Stats summarizes cluster accounting.
type Stats struct {
	Now             float64
	Queued, Running int
	Completed       int
	NodeSecondsUsed float64
	QPUSecondsUsed  float64
	QPUSecondsCal   float64
	NodeUtilization float64 // node-seconds used / (nodes * elapsed)
	MeanWaitSeconds float64 // over completed jobs
}

// Stats returns current accounting.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Now:             s.now,
		Queued:          len(s.queue),
		Running:         len(s.running),
		NodeSecondsUsed: s.nodeSecondsUsed,
		QPUSecondsUsed:  s.qpuSecondsUsed,
		QPUSecondsCal:   s.qpuSecondsCal,
	}
	wait, n := 0.0, 0
	for _, j := range s.done {
		if j.State == JobCompleted {
			st.Completed++
			wait += j.WaitTime()
			n++
		}
	}
	if n > 0 {
		st.MeanWaitSeconds = wait / float64(n)
	}
	if s.now > 0 {
		st.NodeUtilization = s.nodeSecondsUsed / (float64(s.totalNodes) * s.now)
	}
	return st
}

// Job returns a job by ID (queued, running or finished).
func (s *Scheduler) Job(id int) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, set := range [][]*Job{s.queue, s.running, s.done} {
		for _, j := range set {
			if j.ID == id {
				cp := *j
				return &cp, nil
			}
		}
	}
	return nil, fmt.Errorf("hpc: no job %d", id)
}
