package hpc

import (
	"math"
	"testing"
)

func mustSched(t *testing.T, nodes int) *Scheduler {
	t.Helper()
	s, err := NewScheduler(nodes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchedulerValidation(t *testing.T) {
	if _, err := NewScheduler(0); err == nil {
		t.Error("expected error for 0 nodes")
	}
}

func TestSubmitValidation(t *testing.T) {
	s := mustSched(t, 4)
	if _, err := s.Submit("too-big", 5, false, 10, 0); err == nil {
		t.Error("expected error for oversubscription")
	}
	if _, err := s.Submit("nothing", 0, false, 10, 0); err == nil {
		t.Error("expected error for no resources")
	}
	if _, err := s.Submit("zero-dur", 1, false, 0, 0); err == nil {
		t.Error("expected error for zero duration")
	}
	if _, err := s.Submit("qpu-only", 0, true, 10, 0); err != nil {
		t.Errorf("QPU-only job rejected: %v", err)
	}
}

func TestFIFOCompletion(t *testing.T) {
	s := mustSched(t, 2)
	id1, _ := s.Submit("a", 2, false, 100, 0)
	id2, _ := s.Submit("b", 2, false, 100, 0)
	s.Advance(1)
	j1, _ := s.Job(id1)
	j2, _ := s.Job(id2)
	if j1.State != JobRunning {
		t.Errorf("job1 state = %v", j1.State)
	}
	if j2.State != JobQueued {
		t.Errorf("job2 state = %v, want queued (no nodes free)", j2.State)
	}
	s.Advance(100)
	j1, _ = s.Job(id1)
	j2, _ = s.Job(id2)
	if j1.State != JobCompleted {
		t.Errorf("job1 state = %v, want completed", j1.State)
	}
	if j2.State != JobRunning {
		t.Errorf("job2 state = %v, want running after job1 freed nodes", j2.State)
	}
	if j2.WaitTime() < 99 {
		t.Errorf("job2 wait = %g, want ~100", j2.WaitTime())
	}
}

func TestBackfillSkipsBlockedJob(t *testing.T) {
	s := mustSched(t, 4)
	s.Submit("big", 4, false, 1000, 0)
	s.Advance(1) // big starts, takes everything
	idSmall, _ := s.Submit("small-later", 4, false, 10, 0)
	idTiny, _ := s.Submit("tiny", 0, true, 10, 0) // QPU-only: can backfill
	s.Advance(1)
	small, _ := s.Job(idSmall)
	tiny, _ := s.Job(idTiny)
	if small.State != JobQueued {
		t.Errorf("small = %v, want queued", small.State)
	}
	if tiny.State != JobRunning {
		t.Errorf("tiny = %v, want running (backfilled)", tiny.State)
	}
}

func TestPriorityOrdering(t *testing.T) {
	s := mustSched(t, 2)
	s.Submit("burner", 2, false, 50, 0)
	s.Advance(1)
	idLow, _ := s.Submit("low", 2, false, 10, 0)
	idHigh, _ := s.Submit("high", 2, false, 10, 5)
	s.Advance(50) // burner done; high should start first
	low, _ := s.Job(idLow)
	high, _ := s.Job(idHigh)
	if high.State != JobRunning {
		t.Errorf("high-priority = %v, want running", high.State)
	}
	if low.State != JobQueued {
		t.Errorf("low-priority = %v, want queued", low.State)
	}
}

func TestQPUExclusive(t *testing.T) {
	s := mustSched(t, 8)
	id1, _ := s.Submit("hybrid-1", 2, true, 100, 0)
	id2, _ := s.Submit("hybrid-2", 2, true, 100, 0)
	s.Advance(1)
	j1, _ := s.Job(id1)
	j2, _ := s.Job(id2)
	if j1.State != JobRunning || j2.State != JobQueued {
		t.Errorf("QPU should be exclusive: %v, %v", j1.State, j2.State)
	}
	// Plenty of nodes free: a classical job coexists.
	id3, _ := s.Submit("classical", 2, false, 100, 0)
	s.Advance(1)
	j3, _ := s.Job(id3)
	if j3.State != JobRunning {
		t.Errorf("classical job = %v, want running alongside hybrid", j3.State)
	}
}

func TestQPUOfflineBlocksHybridJobs(t *testing.T) {
	s := mustSched(t, 4)
	s.SetQPUOnline(false)
	id, _ := s.Submit("hybrid", 1, true, 10, 0)
	s.Advance(5)
	j, _ := s.Job(id)
	if j.State != JobQueued {
		t.Errorf("hybrid with QPU offline = %v, want queued", j.State)
	}
	s.SetQPUOnline(true)
	s.Advance(1)
	j, _ = s.Job(id)
	if j.State != JobRunning {
		t.Errorf("hybrid after QPU restore = %v, want running", j.State)
	}
}

func TestCalibrationReservationBlocksQPU(t *testing.T) {
	s := mustSched(t, 4)
	// Reserve the QPU for a 100-minute full calibration at t=100.
	if _, err := s.Reserve("full-calibration", 100, 6000, true, 0); err != nil {
		t.Fatal(err)
	}
	s.Advance(150) // inside the calibration window
	id, _ := s.Submit("hybrid", 1, true, 10, 0)
	s.Advance(10)
	j, _ := s.Job(id)
	if j.State != JobQueued {
		t.Errorf("hybrid during calibration = %v, want queued", j.State)
	}
	s.Advance(6000) // window over
	j, _ = s.Job(id)
	if j.State != JobRunning && j.State != JobCompleted {
		t.Errorf("hybrid after calibration = %v, want started", j.State)
	}
}

func TestReservationValidation(t *testing.T) {
	s := mustSched(t, 2)
	s.Advance(100)
	if _, err := s.Reserve("past", 50, 10, true, 0); err == nil {
		t.Error("expected error for past reservation")
	}
	if _, err := s.Reserve("zero", 200, 0, true, 0); err == nil {
		t.Error("expected error for zero duration")
	}
	if _, err := s.Reserve("a", 200, 100, true, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reserve("overlap", 250, 100, true, 0); err == nil {
		t.Error("expected error for overlapping QPU reservation")
	}
	if _, err := s.Reserve("later", 301, 100, true, 0); err != nil {
		t.Errorf("non-overlapping reservation rejected: %v", err)
	}
	if got := len(s.Reservations()); got != 2 {
		t.Errorf("reservations = %d, want 2", got)
	}
}

func TestNodeReservationShrinksCluster(t *testing.T) {
	s := mustSched(t, 4)
	s.Reserve("maintenance", 0, 1000, false, 3)
	id, _ := s.Submit("wide", 2, false, 10, 0)
	s.Advance(1)
	j, _ := s.Job(id)
	if j.State != JobQueued {
		t.Errorf("2-node job with 3 nodes reserved = %v, want queued", j.State)
	}
}

func TestCancel(t *testing.T) {
	s := mustSched(t, 1)
	s.Submit("runner", 1, false, 100, 0)
	id, _ := s.Submit("victim", 1, false, 100, 0)
	s.Advance(1)
	if err := s.Cancel(id); err != nil {
		t.Fatal(err)
	}
	j, _ := s.Job(id)
	if j.State != JobCancelled {
		t.Errorf("state = %v, want cancelled", j.State)
	}
	if err := s.Cancel(id); err == nil {
		t.Error("double cancel should fail")
	}
	if err := s.Cancel(999); err == nil {
		t.Error("cancelling unknown job should fail")
	}
}

func TestStatsAccounting(t *testing.T) {
	s := mustSched(t, 4)
	s.Submit("j1", 2, true, 100, 0)
	s.Advance(200)
	st := s.Stats()
	if st.Completed != 1 {
		t.Errorf("completed = %d", st.Completed)
	}
	if math.Abs(st.NodeSecondsUsed-200) > 1e-9 {
		t.Errorf("node-seconds = %g, want 200 (2 nodes x 100 s)", st.NodeSecondsUsed)
	}
	if math.Abs(st.QPUSecondsUsed-100) > 1e-9 {
		t.Errorf("qpu-seconds = %g, want 100", st.QPUSecondsUsed)
	}
	wantUtil := 200.0 / (4 * 200)
	if math.Abs(st.NodeUtilization-wantUtil) > 1e-9 {
		t.Errorf("utilization = %g, want %g", st.NodeUtilization, wantUtil)
	}
}

func TestEventOrderWithinAdvance(t *testing.T) {
	// Two 10s jobs on a 1-node cluster, one Advance(25): both must finish,
	// because completion events are processed in order.
	s := mustSched(t, 1)
	id1, _ := s.Submit("a", 1, false, 10, 0)
	id2, _ := s.Submit("b", 1, false, 10, 0)
	s.Advance(25)
	j1, _ := s.Job(id1)
	j2, _ := s.Job(id2)
	if j1.State != JobCompleted || j2.State != JobCompleted {
		t.Errorf("states = %v, %v; want both completed", j1.State, j2.State)
	}
	if j2.StartTime != 10 {
		t.Errorf("job2 start = %g, want 10", j2.StartTime)
	}
}

func TestJobLookupErrors(t *testing.T) {
	s := mustSched(t, 1)
	if _, err := s.Job(42); err == nil {
		t.Error("expected error for unknown job")
	}
}

func TestAdvanceZeroNoop(t *testing.T) {
	s := mustSched(t, 1)
	s.Advance(0)
	s.Advance(-10)
	if s.Now() != 0 {
		t.Error("time moved on zero advance")
	}
}

func TestJobStateString(t *testing.T) {
	for st, want := range map[JobState]string{
		JobQueued: "queued", JobRunning: "running", JobCompleted: "completed", JobCancelled: "cancelled",
	} {
		if st.String() != want {
			t.Errorf("%d string = %q", st, st.String())
		}
	}
}
