package hybrid

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

func TestPauliStringBasics(t *testing.T) {
	p := ZZ(0.5, 0, 2)
	if !p.IsDiagonal() {
		t.Error("ZZ should be diagonal")
	}
	if p.MaxQubit() != 2 {
		t.Errorf("max qubit = %d", p.MaxQubit())
	}
	x := X(1.0, 1)
	if x.IsDiagonal() {
		t.Error("X should not be diagonal")
	}
	id := Identity(3)
	if id.MaxQubit() != -1 {
		t.Errorf("identity max qubit = %d", id.MaxQubit())
	}
	if id.String() == "" || p.String() == "" {
		t.Error("empty string rendering")
	}
}

func TestNewPauliStringValidation(t *testing.T) {
	if _, err := NewPauliString(1, map[int]PauliOp{-1: PauliZ}); err == nil {
		t.Error("negative qubit should fail")
	}
	if _, err := NewPauliString(1, map[int]PauliOp{0: 'Q'}); err == nil {
		t.Error("unknown op should fail")
	}
	ps, err := NewPauliString(1, map[int]PauliOp{0: PauliI, 1: PauliZ})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Ops) != 1 {
		t.Error("identity factors should be dropped")
	}
}

func TestEigenvalueParity(t *testing.T) {
	zz := ZZ(1, 0, 1)
	cases := map[int]float64{0b00: 1, 0b01: -1, 0b10: -1, 0b11: 1}
	for bits, want := range cases {
		if got := zz.EigenvalueFor(bits); got != want {
			t.Errorf("ZZ eigenvalue for %02b = %g, want %g", bits, got, want)
		}
	}
	z := Z(1, 1)
	if z.EigenvalueFor(0b10) != -1 || z.EigenvalueFor(0b01) != 1 {
		t.Error("Z1 eigenvalues wrong")
	}
}

func TestEigenvaluePanicsOnNonDiagonal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	X(1, 0).EigenvalueFor(0)
}

func TestDiagonalEnergyAndCounts(t *testing.T) {
	h := &Hamiltonian{Terms: []PauliString{ZZ(1, 0, 1), Z(0.5, 0), Identity(2)}}
	if !h.IsDiagonal() || h.NumQubits() != 2 {
		t.Fatal("hamiltonian shape wrong")
	}
	e, err := h.DiagonalEnergy(0b01)
	if err != nil {
		t.Fatal(err)
	}
	// ZZ: -1, Z0: -0.5, I: 2 -> 0.5.
	if math.Abs(e-0.5) > 1e-12 {
		t.Errorf("energy = %g, want 0.5", e)
	}
	counts := map[int]int{0b00: 50, 0b01: 50}
	// E(00) = 1+0.5+2 = 3.5; E(01) = 0.5; mean = 2.
	est, err := h.ExpectationFromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-2) > 1e-12 {
		t.Errorf("expectation = %g, want 2", est)
	}
	if _, err := h.ExpectationFromCounts(map[int]int{}); err == nil {
		t.Error("empty histogram should fail")
	}
	nh := &Hamiltonian{Terms: []PauliString{X(1, 0)}}
	if _, err := nh.ExpectationFromCounts(counts); err == nil {
		t.Error("non-diagonal expectation from counts should fail")
	}
}

func TestExactExpectationGroundStates(t *testing.T) {
	// <00|Z0|00> = 1, <+|X|+> = 1.
	c := circuit.New(2, "")
	s, _ := c.Simulate()
	h := &Hamiltonian{Terms: []PauliString{Z(1, 0)}}
	if e, _ := ExactExpectation(h, s); math.Abs(e-1) > 1e-12 {
		t.Errorf("<Z0> = %g", e)
	}
	cp := circuit.New(1, "").H(0)
	sp, _ := cp.Simulate()
	hx := &Hamiltonian{Terms: []PauliString{X(1, 0)}}
	if e, _ := ExactExpectation(hx, sp); math.Abs(e-1) > 1e-12 {
		t.Errorf("<X> on |+> = %g", e)
	}
}

func TestMeasureExpectationMatchesExact(t *testing.T) {
	// Prepare a nontrivial state and compare measured vs exact <H>.
	prep := circuit.New(2, "").RY(0, 0.8).CNOT(0, 1).RY(1, 0.3)
	h := H2Molecule()
	s, err := prep.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactExpectation(h, s)
	if err != nil {
		t.Fatal(err)
	}
	runner := &ExactRunner{Seed: 7}
	measured, err := MeasureExpectation(h, prep, runner, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(measured-exact) > 0.03 {
		t.Errorf("measured %g vs exact %g", measured, exact)
	}
}

func TestH2GroundStateEnergyKnownValue(t *testing.T) {
	// Literature value for this parameterization: ≈ -1.851 Hartree.
	e := H2GroundStateEnergy()
	if math.Abs(e-(-1.8512)) > 0.01 {
		t.Errorf("H2 ground energy = %g, want ≈ -1.851", e)
	}
}

func TestVQEFindsH2GroundState(t *testing.T) {
	ansatz, np := HardwareEfficientAnsatz(2, 1)
	v := &VQE{
		Hamiltonian: H2Molecule(),
		Ansatz:      ansatz,
		Runner:      &ExactRunner{Seed: 3},
		Shots:       4000,
		Optimizer:   DefaultSPSA(300, 5),
	}
	initial := make([]float64, np)
	for i := range initial {
		initial[i] = 0.1 * float64(i+1)
	}
	res, err := v.Run(initial)
	if err != nil {
		t.Fatal(err)
	}
	want := H2GroundStateEnergy()
	if res.Value > want+0.1 {
		t.Errorf("VQE energy %.4f, want within 0.1 of %.4f", res.Value, want)
	}
	if res.Evaluations < 100 {
		t.Errorf("SPSA evaluations = %d, want ~2 per iteration", res.Evaluations)
	}
}

func TestVQEValidation(t *testing.T) {
	v := &VQE{}
	if _, err := v.Run(nil); err == nil {
		t.Error("missing components should fail")
	}
	ansatz, np := HardwareEfficientAnsatz(2, 0)
	v = &VQE{Hamiltonian: H2Molecule(), Ansatz: ansatz, Runner: &ExactRunner{}, Shots: 0, Optimizer: DefaultSPSA(5, 1)}
	if _, err := v.Run(make([]float64, np)); err == nil {
		t.Error("0 shots should fail")
	}
}

func TestHardwareEfficientAnsatzShape(t *testing.T) {
	ansatz, np := HardwareEfficientAnsatz(4, 2)
	if np != 12 {
		t.Errorf("params = %d, want 12", np)
	}
	c, err := ansatz(make([]float64, np))
	if err != nil {
		t.Fatal(err)
	}
	if c.CountOp(circuit.OpRY) != 12 || c.CountOp(circuit.OpCZ) != 6 {
		t.Errorf("ansatz ops: ry=%d cz=%d", c.CountOp(circuit.OpRY), c.CountOp(circuit.OpCZ))
	}
	if _, err := ansatz(make([]float64, 3)); err == nil {
		t.Error("wrong param count should fail")
	}
}

func TestSPSAQuadratic(t *testing.T) {
	obj := func(p []float64) (float64, error) {
		return (p[0]-2)*(p[0]-2) + (p[1]+1)*(p[1]+1), nil
	}
	res, err := DefaultSPSA(400, 11).Minimize(obj, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value > 0.05 {
		t.Errorf("SPSA minimum = %g at %v", res.Value, res.Params)
	}
}

func TestNelderMeadQuadratic(t *testing.T) {
	obj := func(p []float64) (float64, error) {
		return (p[0]-3)*(p[0]-3) + 2*(p[1]-1)*(p[1]-1) + 0.5, nil
	}
	res, err := DefaultNelderMead(500).Minimize(obj, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-0.5) > 1e-5 {
		t.Errorf("NM minimum = %g, want 0.5", res.Value)
	}
	if math.Abs(res.Params[0]-3) > 1e-3 || math.Abs(res.Params[1]-1) > 1e-3 {
		t.Errorf("NM argmin = %v", res.Params)
	}
	if !res.Converged {
		t.Error("NM should converge on a smooth quadratic")
	}
}

func TestOptimizerValidation(t *testing.T) {
	obj := func(p []float64) (float64, error) { return 0, nil }
	if _, err := DefaultSPSA(10, 1).Minimize(obj, nil); err == nil {
		t.Error("SPSA with no params should fail")
	}
	if _, err := (&SPSA{}).Minimize(obj, []float64{1}); err == nil {
		t.Error("SPSA with 0 iterations should fail")
	}
	if _, err := DefaultNelderMead(10).Minimize(obj, nil); err == nil {
		t.Error("NM with no params should fail")
	}
}

func TestQUBOToIsingEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := newSeededRand(seed)
		n := 2 + rng.Intn(5)
		q := NewQUBO(n)
		for k := 0; k < 8; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if err := q.Add(i, j, rng.NormFloat64()*3); err != nil {
				return false
			}
		}
		q.Constant = rng.NormFloat64()
		h := q.ToIsing()
		for bits := 0; bits < 1<<uint(n); bits++ {
			// Ising convention: qubit bit set = x=1 means Z eigenvalue -1.
			e, err := h.DiagonalEnergy(bits)
			if err != nil {
				return false
			}
			if math.Abs(e-q.Evaluate(bits)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxCutQAOA(t *testing.T) {
	// 4-cycle: max cut = 4 (alternating partition).
	g := NewGraph(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		if err := g.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	q := &QAOA{
		Cost:      g.MaxCutHamiltonian(),
		Layers:    2,
		Runner:    &ExactRunner{Seed: 17},
		Shots:     2000,
		Optimizer: DefaultSPSA(80, 23),
	}
	res, err := q.Run([]float64{0.4, 0.2, 0.6, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.CutValue(res.BestBits); got != 4 {
		t.Errorf("best sampled cut = %g, want 4 (bits %04b)", got, res.BestBits)
	}
	// Cost of the max cut is -4 (each cut edge contributes -1).
	if res.BestCost != -4 {
		t.Errorf("best cost = %g, want -4", res.BestCost)
	}
}

func TestQAOAValidation(t *testing.T) {
	q := &QAOA{Cost: &Hamiltonian{Terms: []PauliString{X(1, 0)}}, Layers: 1}
	if _, err := q.Circuit([]float64{1, 2}); err == nil {
		t.Error("non-diagonal cost should fail")
	}
	q2 := &QAOA{Cost: &Hamiltonian{Terms: []PauliString{Z(1, 0)}}, Layers: 1}
	if _, err := q2.Circuit([]float64{1}); err == nil {
		t.Error("wrong param count should fail")
	}
	if _, err := q2.Run([]float64{1, 2}); err == nil {
		t.Error("missing runner should fail")
	}
}

func TestTSPQUBOEncodesTours(t *testing.T) {
	dist := [][]float64{
		{0, 1, 2},
		{1, 0, 1},
		{2, 1, 0},
	}
	tsp, err := NewTSP(dist)
	if err != nil {
		t.Fatal(err)
	}
	if tsp.NumQubits() != 9 {
		t.Errorf("qubits = %d", tsp.NumQubits())
	}
	q, err := tsp.QUBO()
	if err != nil {
		t.Fatal(err)
	}
	// Brute-force the QUBO; the minimizer must be a valid tour.
	bits, val, err := q.BruteForceMin()
	if err != nil {
		t.Fatal(err)
	}
	tour, err := tsp.DecodeTour(bits)
	if err != nil {
		t.Fatalf("QUBO minimum is not a valid tour: %v", err)
	}
	tourLen, err := tsp.TourLength(tour)
	if err != nil {
		t.Fatal(err)
	}
	_, bestLen, err := tsp.BruteForceBestTour()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tourLen-bestLen) > 1e-9 {
		t.Errorf("QUBO optimal tour length %g, brute force %g", tourLen, bestLen)
	}
	// The QUBO value at the optimum = tour length (constraints satisfied).
	if math.Abs(val-bestLen) > 1e-9 {
		t.Errorf("QUBO value %g, want tour length %g", val, bestLen)
	}
}

func TestTSPValidation(t *testing.T) {
	if _, err := NewTSP([][]float64{{0}}); err == nil {
		t.Error("1-city TSP should fail")
	}
	if _, err := NewTSP([][]float64{{0, 1}, {2, 0}}); err == nil {
		t.Error("asymmetric matrix should fail")
	}
	if _, err := NewTSP([][]float64{{0, 1}, {1, 0}, {1, 1}}); err == nil {
		t.Error("ragged matrix should fail")
	}
}

func TestDecodeTourRejectsInvalid(t *testing.T) {
	tsp, _ := NewTSP([][]float64{{0, 1}, {1, 0}})
	if _, err := tsp.DecodeTour(0); err == nil {
		t.Error("empty assignment should fail decoding")
	}
	// Valid 2-city tour: city 0 at pos 0 (qubit 0), city 1 at pos 1 (qubit 3).
	tour, err := tsp.DecodeTour(0b1001)
	if err != nil {
		t.Fatal(err)
	}
	if tour[0] != 0 || tour[1] != 1 {
		t.Errorf("tour = %v", tour)
	}
}

func TestGraphValidation(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddEdge(0, 0, 1); err == nil {
		t.Error("self-loop should fail")
	}
	if err := g.AddEdge(0, 5, 1); err == nil {
		t.Error("out-of-range edge should fail")
	}
}

func TestTransverseFieldIsingShape(t *testing.T) {
	h := TransverseFieldIsing(4, 1, 0.5)
	if h.NumQubits() != 4 {
		t.Errorf("qubits = %d", h.NumQubits())
	}
	// 3 ZZ bonds + 4 X fields.
	if len(h.Terms) != 7 {
		t.Errorf("terms = %d, want 7", len(h.Terms))
	}
	if h.IsDiagonal() {
		t.Error("TFIM should not be diagonal")
	}
}
