package hybrid

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Objective is a (possibly noisy) scalar function of parameters.
type Objective func(params []float64) (float64, error)

// OptResult is the outcome of a classical optimization run.
type OptResult struct {
	Params      []float64
	Value       float64
	Evaluations int
	Converged   bool
}

// SPSA implements simultaneous perturbation stochastic approximation — the
// standard optimizer for shot-noisy quantum objectives: two evaluations per
// iteration regardless of dimension.
type SPSA struct {
	Iterations int
	// Gain sequences (Spall's standard parameterization).
	A, C, Alpha, Gamma float64
	Seed               int64
}

// DefaultSPSA returns sane defaults for maxIter iterations.
func DefaultSPSA(maxIter int, seed int64) *SPSA {
	return &SPSA{Iterations: maxIter, A: 0.5, C: 0.15, Alpha: 0.602, Gamma: 0.101, Seed: seed}
}

// Minimize runs SPSA from the initial point.
func (s *SPSA) Minimize(obj Objective, initial []float64) (*OptResult, error) {
	if len(initial) == 0 {
		return nil, fmt.Errorf("hybrid: SPSA needs at least one parameter")
	}
	if s.Iterations < 1 {
		return nil, fmt.Errorf("hybrid: SPSA needs at least one iteration")
	}
	rng := rand.New(rand.NewSource(s.Seed))
	theta := append([]float64(nil), initial...)
	best := append([]float64(nil), initial...)
	bestVal := math.Inf(1)
	evals := 0
	delta := make([]float64, len(theta))
	plus := make([]float64, len(theta))
	minus := make([]float64, len(theta))
	for k := 0; k < s.Iterations; k++ {
		ak := s.A / math.Pow(float64(k+1)+10, s.Alpha)
		ck := s.C / math.Pow(float64(k+1), s.Gamma)
		for i := range delta {
			if rng.Float64() < 0.5 {
				delta[i] = 1
			} else {
				delta[i] = -1
			}
			plus[i] = theta[i] + ck*delta[i]
			minus[i] = theta[i] - ck*delta[i]
		}
		fp, err := obj(plus)
		if err != nil {
			return nil, fmt.Errorf("hybrid: SPSA iteration %d (+): %w", k, err)
		}
		fm, err := obj(minus)
		if err != nil {
			return nil, fmt.Errorf("hybrid: SPSA iteration %d (-): %w", k, err)
		}
		evals += 2
		for i := range theta {
			theta[i] -= ak * (fp - fm) / (2 * ck * delta[i])
		}
		if v := math.Min(fp, fm); v < bestVal {
			bestVal = v
			src := plus
			if fm < fp {
				src = minus
			}
			copy(best, src)
		}
	}
	// Final evaluation at the accumulated point; keep whichever is best.
	fv, err := obj(theta)
	if err != nil {
		return nil, err
	}
	evals++
	if fv < bestVal {
		bestVal = fv
		copy(best, theta)
	}
	return &OptResult{Params: best, Value: bestVal, Evaluations: evals, Converged: true}, nil
}

// NelderMead is a derivative-free simplex optimizer for smooth (low-noise)
// objectives — e.g. VQE against the digital twin.
type NelderMead struct {
	MaxIter int
	// Tol terminates when the simplex value spread falls below it.
	Tol float64
	// InitialStep sets the simplex size around the start point.
	InitialStep float64
}

// DefaultNelderMead returns standard settings.
func DefaultNelderMead(maxIter int) *NelderMead {
	return &NelderMead{MaxIter: maxIter, Tol: 1e-8, InitialStep: 0.5}
}

// Minimize runs the Nelder-Mead algorithm with standard coefficients
// (reflection 1, expansion 2, contraction 0.5, shrink 0.5).
func (nm *NelderMead) Minimize(obj Objective, initial []float64) (*OptResult, error) {
	n := len(initial)
	if n == 0 {
		return nil, fmt.Errorf("hybrid: Nelder-Mead needs at least one parameter")
	}
	if nm.MaxIter < 1 {
		return nil, fmt.Errorf("hybrid: Nelder-Mead needs at least one iteration")
	}
	step := nm.InitialStep
	if step == 0 {
		step = 0.5
	}
	type vertex struct {
		x []float64
		f float64
	}
	evals := 0
	eval := func(x []float64) (float64, error) {
		evals++
		return obj(x)
	}
	simplex := make([]vertex, n+1)
	for i := range simplex {
		x := append([]float64(nil), initial...)
		if i > 0 {
			x[i-1] += step
		}
		f, err := eval(x)
		if err != nil {
			return nil, err
		}
		simplex[i] = vertex{x: x, f: f}
	}
	converged := false
	for iter := 0; iter < nm.MaxIter; iter++ {
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
		if math.Abs(simplex[n].f-simplex[0].f) < nm.Tol {
			converged = true
			break
		}
		// Centroid of all but worst.
		centroid := make([]float64, n)
		for _, v := range simplex[:n] {
			for i := range centroid {
				centroid[i] += v.x[i] / float64(n)
			}
		}
		worst := simplex[n]
		reflect := make([]float64, n)
		for i := range reflect {
			reflect[i] = centroid[i] + (centroid[i] - worst.x[i])
		}
		fr, err := eval(reflect)
		if err != nil {
			return nil, err
		}
		switch {
		case fr < simplex[0].f:
			// Try expansion.
			expand := make([]float64, n)
			for i := range expand {
				expand[i] = centroid[i] + 2*(centroid[i]-worst.x[i])
			}
			fe, err := eval(expand)
			if err != nil {
				return nil, err
			}
			if fe < fr {
				simplex[n] = vertex{expand, fe}
			} else {
				simplex[n] = vertex{reflect, fr}
			}
		case fr < simplex[n-1].f:
			simplex[n] = vertex{reflect, fr}
		default:
			// Contraction.
			contract := make([]float64, n)
			for i := range contract {
				contract[i] = centroid[i] + 0.5*(worst.x[i]-centroid[i])
			}
			fc, err := eval(contract)
			if err != nil {
				return nil, err
			}
			if fc < worst.f {
				simplex[n] = vertex{contract, fc}
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= n; i++ {
					for j := range simplex[i].x {
						simplex[i].x[j] = simplex[0].x[j] + 0.5*(simplex[i].x[j]-simplex[0].x[j])
					}
					f, err := eval(simplex[i].x)
					if err != nil {
						return nil, err
					}
					simplex[i].f = f
				}
			}
		}
	}
	sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
	return &OptResult{
		Params:      simplex[0].x,
		Value:       simplex[0].f,
		Evaluations: evals,
		Converged:   converged,
	}, nil
}
