// Package hybrid implements the hybrid quantum-classical workloads the
// paper's users ran: the Variational Quantum Eigensolver (§2.6 names VQE as
// the canonical tightly-coupled algorithm) and QAOA applied to combinatorial
// problems — MaxCut and the Traveling Salesperson Problem, the subject of
// the early-user publication the paper cites ([4], Bentellis et al.,
// "Application-Driven Benchmarking of the Traveling Salesperson Problem").
package hybrid

import (
	"fmt"
	"sort"
	"strings"
)

// PauliOp is a single-qubit Pauli operator.
type PauliOp byte

const (
	PauliI PauliOp = 'I'
	PauliX PauliOp = 'X'
	PauliY PauliOp = 'Y'
	PauliZ PauliOp = 'Z'
)

// PauliString is a tensor product of single-qubit Paulis with a real
// coefficient, e.g. 0.5 * Z0⊗Z1.
type PauliString struct {
	Coeff float64
	Ops   map[int]PauliOp // qubit -> non-identity operator
}

// NewPauliString parses compact notation like "ZZ" (qubits 0,1), or builds
// from explicit placements via WithOp.
func NewPauliString(coeff float64, ops map[int]PauliOp) (PauliString, error) {
	for q, op := range ops {
		if q < 0 {
			return PauliString{}, fmt.Errorf("hybrid: negative qubit %d", q)
		}
		switch op {
		case PauliX, PauliY, PauliZ:
		case PauliI:
			delete(ops, q) // identity carries no information
		default:
			return PauliString{}, fmt.Errorf("hybrid: unknown Pauli %q", op)
		}
	}
	return PauliString{Coeff: coeff, Ops: ops}, nil
}

// Z returns coeff·Z_q.
func Z(coeff float64, q int) PauliString {
	return PauliString{Coeff: coeff, Ops: map[int]PauliOp{q: PauliZ}}
}

// ZZ returns coeff·Z_a Z_b.
func ZZ(coeff float64, a, b int) PauliString {
	return PauliString{Coeff: coeff, Ops: map[int]PauliOp{a: PauliZ, b: PauliZ}}
}

// X returns coeff·X_q.
func X(coeff float64, q int) PauliString {
	return PauliString{Coeff: coeff, Ops: map[int]PauliOp{q: PauliX}}
}

// Identity returns the constant term coeff·I.
func Identity(coeff float64) PauliString {
	return PauliString{Coeff: coeff, Ops: map[int]PauliOp{}}
}

// IsDiagonal reports whether the string contains only Z and I factors, i.e.
// is measurable in the computational basis.
func (p PauliString) IsDiagonal() bool {
	for _, op := range p.Ops {
		if op != PauliZ {
			return false
		}
	}
	return true
}

// MaxQubit returns the highest qubit index used (-1 for the identity).
func (p PauliString) MaxQubit() int {
	max := -1
	for q := range p.Ops {
		if q > max {
			max = q
		}
	}
	return max
}

func (p PauliString) String() string {
	if len(p.Ops) == 0 {
		return fmt.Sprintf("%+g·I", p.Coeff)
	}
	qs := make([]int, 0, len(p.Ops))
	for q := range p.Ops {
		qs = append(qs, q)
	}
	sort.Ints(qs)
	var b strings.Builder
	fmt.Fprintf(&b, "%+g·", p.Coeff)
	for i, q := range qs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%c%d", p.Ops[q], q)
	}
	return b.String()
}

// EigenvalueFor returns the ±1 eigenvalue of the (diagonal) Pauli string for
// computational-basis outcome `bits`: the parity of the measured bits at Z
// positions. Panics if called on a non-diagonal string (internal misuse).
func (p PauliString) EigenvalueFor(bits int) float64 {
	parity := 0
	for q, op := range p.Ops {
		if op != PauliZ {
			panic("hybrid: EigenvalueFor on non-diagonal Pauli string")
		}
		if bits&(1<<uint(q)) != 0 {
			parity ^= 1
		}
	}
	if parity == 1 {
		return -1
	}
	return 1
}

// Hamiltonian is a weighted sum of Pauli strings.
type Hamiltonian struct {
	Terms []PauliString
}

// NumQubits returns the qubit count implied by the highest index used.
func (h *Hamiltonian) NumQubits() int {
	max := -1
	for _, t := range h.Terms {
		if m := t.MaxQubit(); m > max {
			max = m
		}
	}
	return max + 1
}

// IsDiagonal reports whether all terms are diagonal.
func (h *Hamiltonian) IsDiagonal() bool {
	for _, t := range h.Terms {
		if !t.IsDiagonal() {
			return false
		}
	}
	return true
}

func (h *Hamiltonian) String() string {
	parts := make([]string, len(h.Terms))
	for i, t := range h.Terms {
		parts[i] = t.String()
	}
	return strings.Join(parts, " ")
}

// DiagonalEnergy evaluates a fully diagonal Hamiltonian for one basis state.
func (h *Hamiltonian) DiagonalEnergy(bits int) (float64, error) {
	if !h.IsDiagonal() {
		return 0, fmt.Errorf("hybrid: Hamiltonian has non-diagonal terms")
	}
	e := 0.0
	for _, t := range h.Terms {
		e += t.Coeff * t.EigenvalueFor(bits)
	}
	return e, nil
}

// ExpectationFromCounts estimates <H> for a diagonal Hamiltonian from a
// measured histogram — the §2.4 output format feeding the classical
// optimizer in a hybrid loop.
func (h *Hamiltonian) ExpectationFromCounts(counts map[int]int) (float64, error) {
	if !h.IsDiagonal() {
		return 0, fmt.Errorf("hybrid: use basis-rotated measurement for non-diagonal terms")
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0, fmt.Errorf("hybrid: empty histogram")
	}
	e := 0.0
	for bits, c := range counts {
		v, err := h.DiagonalEnergy(bits)
		if err != nil {
			return 0, err
		}
		e += v * float64(c)
	}
	return e / float64(total), nil
}

// TransverseFieldIsing builds H = -J Σ Z_i Z_{i+1} - g Σ X_i on a chain of n
// qubits — the standard first Hamiltonian for VQE studies.
func TransverseFieldIsing(n int, j, g float64) *Hamiltonian {
	h := &Hamiltonian{}
	for i := 0; i+1 < n; i++ {
		h.Terms = append(h.Terms, ZZ(-j, i, i+1))
	}
	for i := 0; i < n; i++ {
		h.Terms = append(h.Terms, X(-g, i))
	}
	return h
}

// H2Molecule returns the 2-qubit hydrogen-molecule Hamiltonian at bond
// distance 0.735 Å in the Bravyi-Kitaev-reduced form widely used for
// 2-qubit VQE demonstrations (O'Malley et al. / Qiskit textbook constants):
//
//	H = c0·I + c1·Z0 + c2·Z1 + c3·Z0Z1 + c4·X0X1
//
// Ground-state energy ≈ -1.851 Hartree (electronic part, without nuclear
// repulsion).
func H2Molecule() *Hamiltonian {
	return &Hamiltonian{Terms: []PauliString{
		Identity(-1.052373245772859),
		Z(0.39793742484318045, 0),
		Z(-0.39793742484318045, 1),
		ZZ(-0.01128010425623538, 0, 1),
		{Coeff: 0.18093119978423156, Ops: map[int]PauliOp{0: PauliX, 1: PauliX}},
	}}
}
