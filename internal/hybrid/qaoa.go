package hybrid

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/circuit"
)

// newSeededRand returns a deterministic PRNG for the given seed.
func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// QAOA implements the quantum approximate optimization algorithm for a
// diagonal cost Hamiltonian: p alternating layers of cost evolution
// exp(-iγC) and mixer evolution exp(-iβ Σ X).
type QAOA struct {
	Cost      *Hamiltonian
	Layers    int
	Runner    Runner
	Shots     int
	Optimizer Minimizer
}

// Circuit builds the QAOA ansatz for parameters [γ1..γp, β1..βp].
func (q *QAOA) Circuit(params []float64) (*circuit.Circuit, error) {
	if !q.Cost.IsDiagonal() {
		return nil, fmt.Errorf("hybrid: QAOA requires a diagonal cost Hamiltonian")
	}
	if len(params) != 2*q.Layers {
		return nil, fmt.Errorf("hybrid: QAOA with %d layers wants %d params, got %d",
			q.Layers, 2*q.Layers, len(params))
	}
	n := q.Cost.NumQubits()
	if n < 1 {
		return nil, fmt.Errorf("hybrid: cost Hamiltonian uses no qubits")
	}
	c := circuit.New(n, fmt.Sprintf("qaoa-p%d", q.Layers))
	for i := 0; i < n; i++ {
		c.H(i)
	}
	for l := 0; l < q.Layers; l++ {
		gamma, beta := params[l], params[q.Layers+l]
		for _, term := range q.Cost.Terms {
			switch len(term.Ops) {
			case 0:
				// Constant: global phase, no gate.
			case 1:
				for qb := range term.Ops {
					c.RZ(qb, 2*gamma*term.Coeff)
				}
			case 2:
				qs := make([]int, 0, 2)
				for qb := range term.Ops {
					qs = append(qs, qb)
				}
				if qs[0] > qs[1] {
					qs[0], qs[1] = qs[1], qs[0]
				}
				// exp(-iγ w Z_a Z_b) = CNOT(a,b) RZ_b(2γw) CNOT(a,b).
				c.CNOT(qs[0], qs[1])
				c.RZ(qs[1], 2*gamma*term.Coeff)
				c.CNOT(qs[0], qs[1])
			default:
				return nil, fmt.Errorf("hybrid: QAOA supports terms of weight <= 2, got %s", term)
			}
		}
		for i := 0; i < n; i++ {
			c.RX(i, 2*beta)
		}
	}
	return c, nil
}

// CostFromCounts returns the histogram-averaged cost and the best sampled
// basis state with its cost.
func (q *QAOA) CostFromCounts(counts map[int]int) (mean float64, bestBits int, bestCost float64, err error) {
	total := 0
	bestCost = math.Inf(1)
	sum := 0.0
	for bits, c := range counts {
		e, derr := q.Cost.DiagonalEnergy(bits)
		if derr != nil {
			return 0, 0, 0, derr
		}
		sum += e * float64(c)
		total += c
		if e < bestCost {
			bestCost, bestBits = e, bits
		}
	}
	if total == 0 {
		return 0, 0, 0, fmt.Errorf("hybrid: empty histogram")
	}
	return sum / float64(total), bestBits, bestCost, nil
}

// Objective returns the measured-mean-cost objective for the optimizer.
func (q *QAOA) Objective() Objective {
	return func(params []float64) (float64, error) {
		c, err := q.Circuit(params)
		if err != nil {
			return 0, err
		}
		counts, err := q.Runner.Run(c, q.Shots)
		if err != nil {
			return 0, err
		}
		mean, _, _, err := q.CostFromCounts(counts)
		return mean, err
	}
}

// Result is a full QAOA run outcome.
type QAOAResult struct {
	Opt      *OptResult
	BestBits int
	BestCost float64
	MeanCost float64
}

// Run optimizes the angles and reports the best sampled solution at the
// optimum.
func (q *QAOA) Run(initial []float64) (*QAOAResult, error) {
	if q.Runner == nil || q.Optimizer == nil {
		return nil, fmt.Errorf("hybrid: QAOA missing runner or optimizer")
	}
	if q.Shots < 1 {
		return nil, fmt.Errorf("hybrid: QAOA shots must be >= 1")
	}
	opt, err := q.Optimizer.Minimize(q.Objective(), initial)
	if err != nil {
		return nil, err
	}
	c, err := q.Circuit(opt.Params)
	if err != nil {
		return nil, err
	}
	counts, err := q.Runner.Run(c, q.Shots)
	if err != nil {
		return nil, err
	}
	mean, bits, cost, err := q.CostFromCounts(counts)
	if err != nil {
		return nil, err
	}
	return &QAOAResult{Opt: opt, BestBits: bits, BestCost: cost, MeanCost: mean}, nil
}
