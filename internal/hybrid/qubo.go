package hybrid

import (
	"fmt"
	"math"
)

// QUBO is a quadratic unconstrained binary optimization problem:
// minimize x^T Q x + c over x ∈ {0,1}^n, with Q upper-triangular.
type QUBO struct {
	N         int
	Quadratic map[[2]int]float64 // (i<=j) -> coefficient
	Constant  float64
}

// NewQUBO returns an empty problem over n binary variables.
func NewQUBO(n int) *QUBO {
	return &QUBO{N: n, Quadratic: make(map[[2]int]float64)}
}

// Add accumulates a term x_i x_j (or linear x_i when i == j).
func (q *QUBO) Add(i, j int, w float64) error {
	if i < 0 || i >= q.N || j < 0 || j >= q.N {
		return fmt.Errorf("hybrid: QUBO index (%d,%d) out of range [0,%d)", i, j, q.N)
	}
	if i > j {
		i, j = j, i
	}
	q.Quadratic[[2]int{i, j}] += w
	return nil
}

// Evaluate computes the objective for assignment bits (bit i = x_i).
func (q *QUBO) Evaluate(bits int) float64 {
	v := q.Constant
	for ij, w := range q.Quadratic {
		xi := (bits >> uint(ij[0])) & 1
		xj := (bits >> uint(ij[1])) & 1
		v += w * float64(xi*xj)
	}
	return v
}

// ToIsing converts the QUBO to a diagonal Ising Hamiltonian via
// x_i = (1 - Z_i)/2; its DiagonalEnergy matches Evaluate exactly.
func (q *QUBO) ToIsing() *Hamiltonian {
	h := &Hamiltonian{}
	constant := q.Constant
	linear := make([]float64, q.N)
	quad := make(map[[2]int]float64)
	for ij, w := range q.Quadratic {
		i, j := ij[0], ij[1]
		if i == j {
			// x_i = (1 - Z_i)/2.
			constant += w / 2
			linear[i] -= w / 2
			continue
		}
		// x_i x_j = (1 - Z_i - Z_j + Z_i Z_j)/4.
		constant += w / 4
		linear[i] -= w / 4
		linear[j] -= w / 4
		quad[ij] += w / 4
	}
	if constant != 0 {
		h.Terms = append(h.Terms, Identity(constant))
	}
	for i, c := range linear {
		if c != 0 {
			h.Terms = append(h.Terms, Z(c, i))
		}
	}
	for ij, c := range quad {
		if c != 0 {
			h.Terms = append(h.Terms, ZZ(c, ij[0], ij[1]))
		}
	}
	return h
}

// BruteForceMin exhaustively minimizes the QUBO (for validation; N <= 24).
func (q *QUBO) BruteForceMin() (bits int, value float64, err error) {
	if q.N > 24 {
		return 0, 0, fmt.Errorf("hybrid: brute force limited to 24 variables, got %d", q.N)
	}
	best, bestV := 0, math.Inf(1)
	for b := 0; b < 1<<uint(q.N); b++ {
		if v := q.Evaluate(b); v < bestV {
			best, bestV = b, v
		}
	}
	return best, bestV, nil
}

// Graph is a weighted undirected graph for MaxCut.
type Graph struct {
	N     int
	Edges map[[2]int]float64
}

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph { return &Graph{N: n, Edges: make(map[[2]int]float64)} }

// AddEdge adds an undirected weighted edge.
func (g *Graph) AddEdge(a, b int, w float64) error {
	if a < 0 || a >= g.N || b < 0 || b >= g.N || a == b {
		return fmt.Errorf("hybrid: bad edge (%d,%d) on %d vertices", a, b, g.N)
	}
	if a > b {
		a, b = b, a
	}
	g.Edges[[2]int{a, b}] = w
	return nil
}

// MaxCutHamiltonian returns the diagonal cost whose minimum corresponds to
// the maximum cut: C = Σ w_ij (Z_i Z_j - 1)/2, so each cut edge contributes
// -w and each uncut edge 0.
func (g *Graph) MaxCutHamiltonian() *Hamiltonian {
	h := &Hamiltonian{}
	wTotal := 0.0
	for ij, w := range g.Edges {
		h.Terms = append(h.Terms, ZZ(w/2, ij[0], ij[1]))
		wTotal += w
	}
	h.Terms = append(h.Terms, Identity(-wTotal/2))
	return h
}

// CutValue returns the weight of the cut induced by the bit assignment.
func (g *Graph) CutValue(bits int) float64 {
	cut := 0.0
	for ij, w := range g.Edges {
		si := (bits >> uint(ij[0])) & 1
		sj := (bits >> uint(ij[1])) & 1
		if si != sj {
			cut += w
		}
	}
	return cut
}

// TSP encodes a traveling-salesperson instance over a distance matrix —
// the application of the early-user project the paper cites ([4]).
// Variable x_{c,p} (qubit c*N+p) means city c is visited at position p.
type TSP struct {
	N         int
	Distances [][]float64
	// Penalty weights the permutation constraints; it must exceed the
	// largest tour-cost gain from violating one (a safe default is
	// 2 * max distance * N).
	Penalty float64
}

// NewTSP builds an instance from a symmetric distance matrix.
func NewTSP(dist [][]float64) (*TSP, error) {
	n := len(dist)
	if n < 2 {
		return nil, fmt.Errorf("hybrid: TSP needs >= 2 cities")
	}
	maxD := 0.0
	for i := range dist {
		if len(dist[i]) != n {
			return nil, fmt.Errorf("hybrid: distance matrix row %d has %d entries, want %d", i, len(dist[i]), n)
		}
		for j := range dist[i] {
			if math.Abs(dist[i][j]-dist[j][i]) > 1e-12 {
				return nil, fmt.Errorf("hybrid: distance matrix not symmetric at (%d,%d)", i, j)
			}
			if dist[i][j] > maxD {
				maxD = dist[i][j]
			}
		}
	}
	return &TSP{N: n, Distances: dist, Penalty: 2 * maxD * float64(n)}, nil
}

// NumQubits returns N².
func (t *TSP) NumQubits() int { return t.N * t.N }

// qubit maps (city, position) to a variable index.
func (t *TSP) qubit(city, pos int) int { return city*t.N + pos }

// QUBO builds the standard TSP QUBO: tour cost + penalties forcing each city
// to appear exactly once and each position to hold exactly one city.
func (t *TSP) QUBO() (*QUBO, error) {
	q := NewQUBO(t.NumQubits())
	n := t.N
	// Tour cost: d(c1,c2) if c1 at position p and c2 at position p+1 (cyclic).
	for c1 := 0; c1 < n; c1++ {
		for c2 := 0; c2 < n; c2++ {
			if c1 == c2 {
				continue
			}
			for p := 0; p < n; p++ {
				pn := (p + 1) % n
				if err := q.Add(t.qubit(c1, p), t.qubit(c2, pn), t.Distances[c1][c2]); err != nil {
					return nil, err
				}
			}
		}
	}
	// Constraint (Σ_p x_{c,p} - 1)² for each city c.
	for c := 0; c < n; c++ {
		if err := addOneHotPenalty(q, t.Penalty, func(p int) int { return t.qubit(c, p) }, n); err != nil {
			return nil, err
		}
	}
	// Constraint (Σ_c x_{c,p} - 1)² for each position p.
	for p := 0; p < n; p++ {
		if err := addOneHotPenalty(q, t.Penalty, func(c int) int { return t.qubit(c, p) }, n); err != nil {
			return nil, err
		}
	}
	return q, nil
}

// addOneHotPenalty accumulates P(Σ x_i - 1)² = P(Σx_i² + 2Σ_{i<j}x_ix_j
// - 2Σx_i + 1); with x² = x the linear part is -P·x_i.
func addOneHotPenalty(q *QUBO, penalty float64, idx func(int) int, n int) error {
	for i := 0; i < n; i++ {
		if err := q.Add(idx(i), idx(i), -penalty); err != nil {
			return err
		}
		for j := i + 1; j < n; j++ {
			if err := q.Add(idx(i), idx(j), 2*penalty); err != nil {
				return err
			}
		}
	}
	q.Constant += penalty
	return nil
}

// DecodeTour extracts the visiting order from a bit assignment, or an error
// if the assignment violates the one-hot constraints.
func (t *TSP) DecodeTour(bits int) ([]int, error) {
	tour := make([]int, t.N)
	for p := range tour {
		tour[p] = -1
	}
	for c := 0; c < t.N; c++ {
		count := 0
		for p := 0; p < t.N; p++ {
			if bits&(1<<uint(t.qubit(c, p))) != 0 {
				count++
				if tour[p] != -1 {
					return nil, fmt.Errorf("hybrid: position %d doubly occupied", p)
				}
				tour[p] = c
			}
		}
		if count != 1 {
			return nil, fmt.Errorf("hybrid: city %d appears %d times", c, count)
		}
	}
	return tour, nil
}

// TourLength returns the cyclic tour length.
func (t *TSP) TourLength(tour []int) (float64, error) {
	if len(tour) != t.N {
		return 0, fmt.Errorf("hybrid: tour has %d cities, want %d", len(tour), t.N)
	}
	total := 0.0
	for p := 0; p < t.N; p++ {
		a, b := tour[p], tour[(p+1)%t.N]
		if a < 0 || a >= t.N || b < 0 || b >= t.N {
			return 0, fmt.Errorf("hybrid: tour city out of range")
		}
		total += t.Distances[a][b]
	}
	return total, nil
}

// BruteForceBestTour exhaustively finds the optimal tour (N <= 8).
func (t *TSP) BruteForceBestTour() ([]int, float64, error) {
	if t.N > 8 {
		return nil, 0, fmt.Errorf("hybrid: brute force limited to 8 cities")
	}
	perm := make([]int, t.N)
	for i := range perm {
		perm[i] = i
	}
	var best []int
	bestLen := math.Inf(1)
	var recurse func(k int)
	recurse = func(k int) {
		if k == t.N {
			l, err := t.TourLength(perm)
			if err == nil && l < bestLen {
				bestLen = l
				best = append([]int(nil), perm...)
			}
			return
		}
		for i := k; i < t.N; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			recurse(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	recurse(1) // fix city 0 at position 0: tours are cyclic
	return best, bestLen, nil
}
