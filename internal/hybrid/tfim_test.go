package hybrid

import (
	"math"
	"testing"

	"repro/internal/circuit"
)

func TestTFIMExpectationOnProductStates(t *testing.T) {
	h := TransverseFieldIsing(3, 1.0, 0.5)
	// |000>: both ZZ bonds give +1, <X> = 0 -> E = -2J = -2.
	ground := circuit.New(3, "")
	s, err := ground.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	e, err := ExactExpectation(h, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-(-2)) > 1e-12 {
		t.Errorf("<H> on |000> = %g, want -2", e)
	}
	// |+++>: ZZ terms vanish, each X gives 1 -> E = -3g = -1.5.
	plus := circuit.New(3, "").H(0).H(1).H(2)
	sp, err := plus.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	e, err = ExactExpectation(h, sp)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-(-1.5)) > 1e-12 {
		t.Errorf("<H> on |+++> = %g, want -1.5", e)
	}
}

func TestVQEOnTFIMBeatsProductStates(t *testing.T) {
	// The true ground state of the 3-site TFIM at J=1, g=0.5 lies below
	// both product-state energies; VQE must find something better than -2.
	h := TransverseFieldIsing(3, 1.0, 0.5)
	ansatz, np := HardwareEfficientAnsatz(3, 2)
	v := &VQE{
		Hamiltonian: h,
		Ansatz:      ansatz,
		Runner:      &ExactRunner{Seed: 41},
		Shots:       3000,
		Optimizer:   DefaultSPSA(250, 43),
	}
	initial := make([]float64, np)
	for i := range initial {
		initial[i] = 0.05 * float64(i+1)
	}
	res, err := v.Run(initial)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value >= -2.0 {
		t.Errorf("VQE TFIM energy %.4f should beat the classical product state (-2)", res.Value)
	}
	// Exact ground state for these parameters is ≈ -2.226 (3-site open
	// TFIM, J=1, g=0.5); allow shot noise and optimizer slack.
	if res.Value < -2.4 {
		t.Errorf("VQE energy %.4f below any physical value (shot-noise artefact too large)", res.Value)
	}
}

func TestMeasureExpectationMixedTerms(t *testing.T) {
	// TFIM has diagonal (ZZ) and non-diagonal (X) terms: MeasureExpectation
	// must combine both measurement settings correctly.
	h := TransverseFieldIsing(2, 1.0, 0.7)
	prep := circuit.New(2, "").RY(0, 0.9).CNOT(0, 1)
	s, err := prep.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactExpectation(h, s)
	if err != nil {
		t.Fatal(err)
	}
	measured, err := MeasureExpectation(h, prep, &ExactRunner{Seed: 47}, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(measured-exact) > 0.04 {
		t.Errorf("measured %.4f vs exact %.4f", measured, exact)
	}
}
