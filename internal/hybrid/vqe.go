package hybrid

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/quantum"
)

// Runner executes circuits and returns measured histograms. The MQSS client,
// the bare device, and the ideal simulator all satisfy it, so a VQE loop is
// oblivious to whether it talks to the twin, the QPU, or a remote API — the
// paper's "no code modifications" property carried into the algorithm layer.
type Runner interface {
	Run(c *circuit.Circuit, shots int) (map[int]int, error)
}

// RunnerFunc adapts a function to Runner.
type RunnerFunc func(c *circuit.Circuit, shots int) (map[int]int, error)

// Run implements Runner.
func (f RunnerFunc) Run(c *circuit.Circuit, shots int) (map[int]int, error) { return f(c, shots) }

// ExactRunner samples from the ideal statevector — the digital-twin path.
type ExactRunner struct {
	Seed int64
	seq  int64
}

// Run implements Runner by noiseless simulation and multinomial sampling.
func (e *ExactRunner) Run(c *circuit.Circuit, shots int) (map[int]int, error) {
	s, err := c.Simulate()
	if err != nil {
		return nil, err
	}
	e.seq++
	rng := newSeededRand(e.Seed + e.seq)
	return quantum.Histogram(s.SampleBitstrings(shots, rng)), nil
}

// ExactExpectation computes <ψ|H|ψ> exactly for a state — the ground truth
// tests verify measured estimates against.
func ExactExpectation(h *Hamiltonian, s *quantum.State) (float64, error) {
	total := 0.0
	for _, term := range h.Terms {
		phi := s.Clone()
		for q, op := range term.Ops {
			var m quantum.Matrix2
			switch op {
			case PauliX:
				m = quantum.X
			case PauliY:
				m = quantum.Y
			case PauliZ:
				m = quantum.Z
			default:
				return 0, fmt.Errorf("hybrid: unexpected op %q", op)
			}
			if err := phi.Apply1Q(q, m); err != nil {
				return 0, err
			}
		}
		ip, err := s.InnerProduct(phi)
		if err != nil {
			return 0, err
		}
		total += term.Coeff * real(ip)
	}
	return total, nil
}

// measurementCircuit appends the basis rotation that diagonalizes one Pauli
// string: H for X factors, S†·H for Y factors.
func measurementCircuit(base *circuit.Circuit, term PauliString) (*circuit.Circuit, PauliString, error) {
	mc := base.Clone()
	diag := PauliString{Coeff: term.Coeff, Ops: make(map[int]PauliOp, len(term.Ops))}
	for q, op := range term.Ops {
		if q >= base.NumQubits {
			return nil, PauliString{}, fmt.Errorf("hybrid: term qubit %d exceeds circuit register %d", q, base.NumQubits)
		}
		switch op {
		case PauliZ:
		case PauliX:
			mc.H(q)
		case PauliY:
			mc.Sdag(q)
			mc.H(q)
		default:
			return nil, PauliString{}, fmt.Errorf("hybrid: unexpected op %q", op)
		}
		diag.Ops[q] = PauliZ
	}
	return mc, diag, nil
}

// MeasureExpectation estimates <H> for the state prepared by `prep` using
// the runner: diagonal terms share one measurement setting; every
// non-diagonal term gets its own basis-rotated circuit.
func MeasureExpectation(h *Hamiltonian, prep *circuit.Circuit, r Runner, shots int) (float64, error) {
	if shots < 1 {
		return 0, fmt.Errorf("hybrid: shots must be >= 1")
	}
	total := 0.0
	var diagTerms []PauliString
	for _, term := range h.Terms {
		if len(term.Ops) == 0 {
			total += term.Coeff // constant term needs no measurement
			continue
		}
		if term.IsDiagonal() {
			diagTerms = append(diagTerms, term)
			continue
		}
		mc, diag, err := measurementCircuit(prep, term)
		if err != nil {
			return 0, err
		}
		counts, err := r.Run(mc, shots)
		if err != nil {
			return 0, fmt.Errorf("hybrid: measuring %s: %w", term, err)
		}
		est, err := (&Hamiltonian{Terms: []PauliString{diag}}).ExpectationFromCounts(counts)
		if err != nil {
			return 0, err
		}
		total += est
	}
	if len(diagTerms) > 0 {
		counts, err := r.Run(prep, shots)
		if err != nil {
			return 0, fmt.Errorf("hybrid: measuring diagonal terms: %w", err)
		}
		est, err := (&Hamiltonian{Terms: diagTerms}).ExpectationFromCounts(counts)
		if err != nil {
			return 0, err
		}
		total += est
	}
	return total, nil
}

// Ansatz builds a parameterized state-preparation circuit.
type Ansatz func(params []float64) (*circuit.Circuit, error)

// HardwareEfficientAnsatz returns the standard RY + CZ-ladder ansatz over n
// qubits with `layers` entangling layers; it takes n*(layers+1) parameters.
func HardwareEfficientAnsatz(n, layers int) (Ansatz, int) {
	numParams := n * (layers + 1)
	return func(params []float64) (*circuit.Circuit, error) {
		if len(params) != numParams {
			return nil, fmt.Errorf("hybrid: ansatz wants %d params, got %d", numParams, len(params))
		}
		c := circuit.New(n, "hw-efficient")
		p := 0
		for q := 0; q < n; q++ {
			c.RY(q, params[p])
			p++
		}
		for l := 0; l < layers; l++ {
			for q := 0; q+1 < n; q++ {
				c.CZ(q, q+1)
			}
			for q := 0; q < n; q++ {
				c.RY(q, params[p])
				p++
			}
		}
		return c, nil
	}, numParams
}

// Minimizer abstracts SPSA / Nelder-Mead.
type Minimizer interface {
	Minimize(obj Objective, initial []float64) (*OptResult, error)
}

// VQE couples an ansatz, a Hamiltonian, a runner and an optimizer — the
// tightly-coupled low-latency loop §2.6 motivates the accelerator access
// mode with.
type VQE struct {
	Hamiltonian *Hamiltonian
	Ansatz      Ansatz
	Runner      Runner
	Shots       int
	Optimizer   Minimizer
}

// Energy evaluates the measured energy at one parameter point.
func (v *VQE) Energy(params []float64) (float64, error) {
	prep, err := v.Ansatz(params)
	if err != nil {
		return 0, err
	}
	return MeasureExpectation(v.Hamiltonian, prep, v.Runner, v.Shots)
}

// Run minimizes the energy from the initial parameters.
func (v *VQE) Run(initial []float64) (*OptResult, error) {
	if v.Hamiltonian == nil || v.Ansatz == nil || v.Runner == nil || v.Optimizer == nil {
		return nil, fmt.Errorf("hybrid: VQE is missing a component")
	}
	if v.Shots < 1 {
		return nil, fmt.Errorf("hybrid: VQE shots must be >= 1")
	}
	return v.Optimizer.Minimize(v.Energy, initial)
}

// H2GroundStateEnergy is the exact ground energy of the H2Molecule()
// Hamiltonian, for comparisons: ≈ -1.8512 Hartree. Computed by exact
// diagonalization of the 2-qubit operator.
func H2GroundStateEnergy() float64 {
	// The Hamiltonian acts on span{|00>,|01>,|10>,|11>}. With only
	// Z0, Z1, Z0Z1 and X0X1 terms it block-diagonalizes over {|00>,|11>}
	// and {|01>,|10>}. Diagonalize both 2x2 blocks.
	h := H2Molecule()
	var c0, cz0, cz1, czz, cxx float64
	for _, t := range h.Terms {
		switch {
		case len(t.Ops) == 0:
			c0 = t.Coeff
		case len(t.Ops) == 2 && t.Ops[0] == PauliZ:
			czz = t.Coeff
		case len(t.Ops) == 2 && t.Ops[0] == PauliX:
			cxx = t.Coeff
		case t.Ops[0] == PauliZ:
			cz0 = t.Coeff
		case t.Ops[1] == PauliZ:
			cz1 = t.Coeff
		}
	}
	// Block {|00>, |11>}: diagonal c0±(cz0+cz1)+czz, off-diagonal cxx.
	d00 := c0 + cz0 + cz1 + czz
	d11 := c0 - cz0 - cz1 + czz
	e1 := 0.5*(d00+d11) - math.Sqrt(0.25*(d00-d11)*(d00-d11)+cxx*cxx)
	// Block {|01>, |10>}: diagonal c0 ± (cz0 - cz1) - czz, off-diag cxx.
	d01 := c0 + cz0 - cz1 - czz
	d10 := c0 - cz0 + cz1 - czz
	e2 := 0.5*(d01+d10) - math.Sqrt(0.25*(d01-d10)*(d01-d10)+cxx*cxx)
	return math.Min(e1, e2)
}
