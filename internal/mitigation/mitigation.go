// Package mitigation implements measurement error mitigation — one of the
// device-specific techniques the §4 training program taught early users
// ("how to implement error mitigation methods tailored to the machine").
//
// The method is tensor-product readout calibration: for each qubit the
// 2x2 confusion matrix
//
//	M_q = [ P(read 0|true 0)  P(read 0|true 1) ]
//	      [ P(read 1|true 0)  P(read 1|true 1) ]
//
// is estimated from calibration circuits preparing |0..0> and |1..1>, and
// measured histograms are corrected by applying each inverse M_q⁻¹ along
// its qubit axis. Negative corrected quasi-probabilities are clipped and
// renormalized (the standard M3-style projection).
package mitigation

import (
	"fmt"
	"math"

	"repro/internal/circuit"
)

// Runner matches hybrid.Runner: anything that can execute circuits.
type Runner interface {
	Run(c *circuit.Circuit, shots int) (map[int]int, error)
}

// ConfusionMatrix holds per-qubit readout confusion.
type ConfusionMatrix struct {
	N int
	// M[q] = [[p00, p01], [p10, p11]]: p_rt = P(read r | true t).
	M [][2][2]float64
}

// Calibrate estimates the confusion matrices by running the two calibration
// circuits (all-zeros and all-ones) with the given shot budget each.
func Calibrate(r Runner, n, shots int) (*ConfusionMatrix, error) {
	if n < 1 {
		return nil, fmt.Errorf("mitigation: need >= 1 qubit")
	}
	if shots < 100 {
		return nil, fmt.Errorf("mitigation: calibration needs >= 100 shots, got %d", shots)
	}
	zeros := circuit.New(n, "readout-cal-0")
	ones := circuit.New(n, "readout-cal-1")
	for q := 0; q < n; q++ {
		ones.X(q)
	}
	countsZero, err := r.Run(zeros, shots)
	if err != nil {
		return nil, fmt.Errorf("mitigation: calibrating |0..0>: %w", err)
	}
	countsOne, err := r.Run(ones, shots)
	if err != nil {
		return nil, fmt.Errorf("mitigation: calibrating |1..1>: %w", err)
	}
	cm := &ConfusionMatrix{N: n, M: make([][2][2]float64, n)}
	for q := 0; q < n; q++ {
		bit := 1 << uint(q)
		read1GivenTrue0 := marginalOnes(countsZero, bit, shots)
		read0GivenTrue1 := 1 - marginalOnes(countsOne, bit, shots)
		cm.M[q] = [2][2]float64{
			{1 - read1GivenTrue0, read0GivenTrue1},
			{read1GivenTrue0, 1 - read0GivenTrue1},
		}
	}
	return cm, nil
}

// marginalOnes returns the fraction of shots where the given bit read 1.
func marginalOnes(counts map[int]int, bit, shots int) float64 {
	ones := 0
	for outcome, c := range counts {
		if outcome&bit != 0 {
			ones += c
		}
	}
	return float64(ones) / float64(shots)
}

// AssignmentFidelity returns the mean per-qubit assignment fidelity
// (1 - (p10 + p01)/2) implied by the calibration.
func (cm *ConfusionMatrix) AssignmentFidelity(q int) (float64, error) {
	if q < 0 || q >= cm.N {
		return 0, fmt.Errorf("mitigation: qubit %d out of range [0,%d)", q, cm.N)
	}
	m := cm.M[q]
	return 1 - (m[1][0]+m[0][1])/2, nil
}

// invert2 returns the inverse of a 2x2 matrix.
func invert2(m [2][2]float64) ([2][2]float64, error) {
	det := m[0][0]*m[1][1] - m[0][1]*m[1][0]
	if math.Abs(det) < 1e-12 {
		return [2][2]float64{}, fmt.Errorf("mitigation: singular confusion matrix (det %g)", det)
	}
	inv := [2][2]float64{
		{m[1][1] / det, -m[0][1] / det},
		{-m[1][0] / det, m[0][0] / det},
	}
	return inv, nil
}

// Apply corrects a measured histogram, returning mitigated pseudo-counts
// that sum to the original shot count. The correction applies M_q⁻¹ along
// each qubit axis of the sparse distribution, then clips negatives and
// renormalizes.
func (cm *ConfusionMatrix) Apply(counts map[int]int) (map[int]float64, error) {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return nil, fmt.Errorf("mitigation: empty histogram")
	}
	// Sparse quasi-probability vector.
	quasi := make(map[int]float64, len(counts))
	for outcome, c := range counts {
		quasi[outcome] = float64(c) / float64(total)
	}
	for q := 0; q < cm.N; q++ {
		inv, err := invert2(cm.M[q])
		if err != nil {
			return nil, fmt.Errorf("mitigation: qubit %d: %w", q, err)
		}
		bit := 1 << uint(q)
		next := make(map[int]float64, len(quasi))
		for outcome, p := range quasi {
			if p == 0 {
				continue
			}
			base := outcome &^ bit
			r := (outcome >> uint(q)) & 1
			// p contributes to true-bit values t=0 and t=1 via inv[t][r].
			next[base] += inv[0][r] * p
			next[base|bit] += inv[1][r] * p
		}
		quasi = next
	}
	// Clip negatives, renormalize, rescale to counts.
	sum := 0.0
	for outcome, p := range quasi {
		if p < 0 {
			delete(quasi, outcome)
			continue
		}
		sum += p
	}
	if sum <= 0 {
		return nil, fmt.Errorf("mitigation: correction annihilated the distribution")
	}
	out := make(map[int]float64, len(quasi))
	for outcome, p := range quasi {
		out[outcome] = p / sum * float64(total)
	}
	return out, nil
}

// ExpectationZ computes <Z_q> from a (possibly mitigated) histogram of
// float pseudo-counts.
func ExpectationZ(counts map[int]float64, q int) float64 {
	bit := 1 << uint(q)
	num, den := 0.0, 0.0
	for outcome, c := range counts {
		den += c
		if outcome&bit == 0 {
			num += c
		} else {
			num -= c
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// RawExpectationZ is ExpectationZ over integer counts.
func RawExpectationZ(counts map[int]int, q int) float64 {
	f := make(map[int]float64, len(counts))
	for k, v := range counts {
		f[k] = float64(v)
	}
	return ExpectationZ(f, q)
}
