package mitigation

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/qdmi"
	"repro/internal/transpile"
)

// deviceRunner adapts a QPU to the Runner interface, JIT-transpiling with
// static placement so calibration circuits hit the same physical qubits as
// the payload circuits.
type deviceRunner struct {
	qpu *device.QPU
	dev *qdmi.Device
}

func newDeviceRunner(seed int64) *deviceRunner {
	qpu := device.New20Q(seed)
	return &deviceRunner{qpu: qpu, dev: qdmi.NewDevice(qpu, nil)}
}

func (r *deviceRunner) Run(c *circuit.Circuit, shots int) (map[int]int, error) {
	res, err := transpile.Transpile(c, r.dev.Target(), transpile.Options{
		Placement: transpile.PlaceStatic,
	})
	if err != nil {
		return nil, err
	}
	out, err := r.qpu.Execute(res.Circuit, shots)
	if err != nil {
		return nil, err
	}
	return out.Counts, nil
}

func TestCalibrateValidation(t *testing.T) {
	r := newDeviceRunner(1)
	if _, err := Calibrate(r, 0, 1000); err == nil {
		t.Error("0 qubits should fail")
	}
	if _, err := Calibrate(r, 2, 10); err == nil {
		t.Error("tiny shot budget should fail")
	}
}

func TestCalibrationRecoversReadoutError(t *testing.T) {
	r := newDeviceRunner(2)
	cm, err := Calibrate(r, 3, 4000)
	if err != nil {
		t.Fatal(err)
	}
	// The device's readout fidelity is ~0.98; the measured confusion
	// matrix should reflect errors of a few percent on each qubit.
	for q := 0; q < 3; q++ {
		f, err := cm.AssignmentFidelity(q)
		if err != nil {
			t.Fatal(err)
		}
		if f < 0.94 || f > 0.999 {
			t.Errorf("qubit %d assignment fidelity %.4f outside the expected band", q, f)
		}
	}
	if _, err := cm.AssignmentFidelity(99); err == nil {
		t.Error("out-of-range fidelity lookup should fail")
	}
}

func TestMitigationImprovesExpectationValue(t *testing.T) {
	r := newDeviceRunner(3)
	const n = 2
	cm, err := Calibrate(r, n, 6000)
	if err != nil {
		t.Fatal(err)
	}
	// Prepare |00>: ideal <Z0> = 1. Readout error biases it low; mitigation
	// should pull it back up.
	idle := circuit.New(n, "idle")
	idle.RZ(0, 0) // keep one (virtual) gate so the circuit is non-empty
	counts, err := r.Run(idle, 6000)
	if err != nil {
		t.Fatal(err)
	}
	raw := RawExpectationZ(counts, 0)
	mitigated, err := cm.Apply(counts)
	if err != nil {
		t.Fatal(err)
	}
	mit := ExpectationZ(mitigated, 0)
	if raw >= 0.999 {
		t.Fatalf("raw <Z0> = %.4f already perfect; noise model broken?", raw)
	}
	if mit <= raw {
		t.Errorf("mitigation did not improve <Z0>: raw %.4f -> mitigated %.4f", raw, mit)
	}
	if math.Abs(mit-1) > math.Abs(raw-1) {
		t.Errorf("mitigated error |%.4f| larger than raw |%.4f|", mit-1, raw-1)
	}
}

func TestMitigationPreservesTotalCounts(t *testing.T) {
	r := newDeviceRunner(4)
	cm, err := Calibrate(r, 2, 4000)
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New(2, "x0")
	c.X(0)
	counts, err := r.Run(c, 2000)
	if err != nil {
		t.Fatal(err)
	}
	mitigated, err := cm.Apply(counts)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range mitigated {
		if v < 0 {
			t.Errorf("negative mitigated count %g", v)
		}
		sum += v
	}
	if math.Abs(sum-2000) > 1e-6 {
		t.Errorf("mitigated total = %g, want 2000", sum)
	}
}

func TestApplyValidation(t *testing.T) {
	cm := &ConfusionMatrix{N: 1, M: [][2][2]float64{{{1, 0}, {0, 1}}}}
	if _, err := cm.Apply(map[int]int{}); err == nil {
		t.Error("empty histogram should fail")
	}
	singular := &ConfusionMatrix{N: 1, M: [][2][2]float64{{{0.5, 0.5}, {0.5, 0.5}}}}
	if _, err := singular.Apply(map[int]int{0: 10}); err == nil {
		t.Error("singular confusion matrix should fail")
	}
}

func TestIdentityConfusionIsNoop(t *testing.T) {
	cm := &ConfusionMatrix{N: 2, M: [][2][2]float64{
		{{1, 0}, {0, 1}},
		{{1, 0}, {0, 1}},
	}}
	counts := map[int]int{0b00: 600, 0b11: 400}
	out, err := cm.Apply(counts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0b00]-600) > 1e-9 || math.Abs(out[0b11]-400) > 1e-9 {
		t.Errorf("identity mitigation changed counts: %v", out)
	}
}

func TestExpectationZHelpers(t *testing.T) {
	counts := map[int]float64{0b0: 75, 0b1: 25}
	if got := ExpectationZ(counts, 0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("<Z> = %g, want 0.5", got)
	}
	if ExpectationZ(nil, 0) != 0 {
		t.Error("empty counts should give 0")
	}
	raw := map[int]int{0b0: 75, 0b1: 25}
	if got := RawExpectationZ(raw, 0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("raw <Z> = %g", got)
	}
}

// Synthetic exactness check: with a known confusion matrix and an exactly
// corrupted distribution, mitigation recovers the true one.
func TestMitigationInvertsKnownCorruption(t *testing.T) {
	// Single qubit, 5% symmetric flip; true distribution 100% |0>.
	eps := 0.05
	cm := &ConfusionMatrix{N: 1, M: [][2][2]float64{{{1 - eps, eps}, {eps, 1 - eps}}}}
	shots := 100000
	// Corrupted: P(read 1) = eps.
	counts := map[int]int{
		0: int(float64(shots) * (1 - eps)),
		1: int(float64(shots) * eps),
	}
	out, err := cm.Apply(counts)
	if err != nil {
		t.Fatal(err)
	}
	frac0 := out[0] / (out[0] + out[1])
	if math.Abs(frac0-1) > 1e-6 {
		t.Errorf("mitigated P(0) = %.6f, want 1", frac0)
	}
}
