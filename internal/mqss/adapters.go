package mqss

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/circuit"
)

// Adapter converts a frontend framework's program representation into the
// common circuit IR — Fig. 2's "modular Adapters for frameworks such as
// CUDAQ, Qiskit, Pennylane, and its own Quantum Programming Interface".
type Adapter interface {
	// AdapterName identifies the frontend.
	AdapterName() string
	// Build converts a frontend program (as text) into the IR.
	Build(program string) (*circuit.Circuit, error)
}

// QASMAdapter accepts OpenQASM 2 text — the interchange format of
// Qiskit-style frontends.
type QASMAdapter struct{}

// AdapterName implements Adapter.
func (QASMAdapter) AdapterName() string { return "qasm" }

// Build implements Adapter.
func (QASMAdapter) Build(program string) (*circuit.Circuit, error) {
	c, err := circuit.ParseQASM(strings.NewReader(program))
	if err != nil {
		return nil, fmt.Errorf("mqss: qasm adapter: %w", err)
	}
	return c, nil
}

// QPIBuilder is the native Quantum Programming Interface adapter: a typed
// Go builder (the paper's QPI is a C API; the Go analogue is a fluent
// builder over the IR).
type QPIBuilder struct {
	c   *circuit.Circuit
	err error
}

// NewQPI starts a QPI program over n qubits.
func NewQPI(n int, name string) *QPIBuilder {
	if n < 1 {
		return &QPIBuilder{err: fmt.Errorf("mqss: qpi program needs >= 1 qubit")}
	}
	return &QPIBuilder{c: circuit.New(n, name)}
}

// Gate appends an arbitrary IR gate.
func (b *QPIBuilder) Gate(name string, qubits []int, params ...float64) *QPIBuilder {
	if b.err != nil {
		return b
	}
	if err := b.c.AddGate(circuit.Gate{Name: name, Qubits: qubits, Params: params}); err != nil {
		b.err = err
	}
	return b
}

// H, CNOT, RY, RZ, CZ are the common QPI shortcuts.
func (b *QPIBuilder) H(q int) *QPIBuilder { return b.Gate(circuit.OpH, []int{q}) }
func (b *QPIBuilder) X(q int) *QPIBuilder { return b.Gate(circuit.OpX, []int{q}) }
func (b *QPIBuilder) CNOT(c, t int) *QPIBuilder {
	return b.Gate(circuit.OpCNOT, []int{c, t})
}
func (b *QPIBuilder) CZ(a, q int) *QPIBuilder { return b.Gate(circuit.OpCZ, []int{a, q}) }
func (b *QPIBuilder) RY(q int, theta float64) *QPIBuilder {
	return b.Gate(circuit.OpRY, []int{q}, theta)
}
func (b *QPIBuilder) RZ(q int, theta float64) *QPIBuilder {
	return b.Gate(circuit.OpRZ, []int{q}, theta)
}

// Circuit finalizes the program.
func (b *QPIBuilder) Circuit() (*circuit.Circuit, error) {
	if b.err != nil {
		return nil, b.err
	}
	return b.c, nil
}

// PulseProgram is the pulse-level access path some §4 users requested,
// "enabling them to move beyond circuit-based programming and design
// hardware-specific control sequences". The simulator cannot integrate
// microwave envelopes, so a pulse program is a calibrated-rotation schedule:
// each pulse is an explicit PRX rotation with amplitude- and duration-derived
// angle, lowered onto the IR directly (bypassing gate decomposition).
type PulseProgram struct {
	NumQubits int
	Pulses    []Pulse
}

// Pulse is one microwave drive segment on one qubit.
type Pulse struct {
	Qubit        int
	AmplitudeMHz float64 // Rabi frequency
	DurationUs   float64
	PhaseRad     float64
}

// Compile lowers the pulse schedule to the IR: rotation angle =
// 2π · f_Rabi · duration, axis = pulse phase.
func (p *PulseProgram) Compile(name string) (*circuit.Circuit, error) {
	if p.NumQubits < 1 {
		return nil, fmt.Errorf("mqss: pulse program needs >= 1 qubit")
	}
	c := circuit.New(p.NumQubits, name)
	for i, pl := range p.Pulses {
		if pl.Qubit < 0 || pl.Qubit >= p.NumQubits {
			return nil, fmt.Errorf("mqss: pulse %d on qubit %d out of range", i, pl.Qubit)
		}
		if pl.DurationUs <= 0 || pl.AmplitudeMHz <= 0 {
			return nil, fmt.Errorf("mqss: pulse %d needs positive amplitude and duration", i)
		}
		theta := 2 * math.Pi * pl.AmplitudeMHz * pl.DurationUs
		if err := c.AddGate(circuit.Gate{
			Name:   circuit.OpPRX,
			Qubits: []int{pl.Qubit},
			Params: []float64{theta, pl.PhaseRad},
		}); err != nil {
			return nil, err
		}
	}
	return c, nil
}
