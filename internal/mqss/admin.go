package mqss

import (
	"net/http"
	"time"

	"repro/internal/durable"
)

// pathV2AdminStore exposes durable-store health: WAL position, sync mode,
// segment footprint, compaction history, and what the last restart
// recovered. Operators hit it through `qhpcctl store status`.
const pathV2AdminStore = "/api/v2/admin/store"

// StoreStatus is the wire shape of GET /api/v2/admin/store. When the
// daemon runs without -data-dir the endpoint still answers 200 with
// attached=false so tooling can distinguish "no durability configured"
// from "endpoint missing".
type StoreStatus struct {
	Attached bool   `json:"attached"`
	Dir      string `json:"dir,omitempty"`
	SyncMode string `json:"sync_mode,omitempty"`

	LastLSN    uint64 `json:"last_lsn,omitempty"`
	DurableLSN uint64 `json:"durable_lsn,omitempty"`
	Appends    uint64 `json:"appends,omitempty"`
	Fsyncs     uint64 `json:"fsyncs,omitempty"`
	Bytes      uint64 `json:"bytes_written,omitempty"`
	Segments   int    `json:"segments,omitempty"`
	WALBytes   int64  `json:"wal_bytes,omitempty"`

	SnapshotLSN    uint64 `json:"snapshot_lsn,omitempty"`
	Compactions    uint64 `json:"compactions,omitempty"`
	LastCompaction string `json:"last_compaction,omitempty"` // RFC 3339; empty when never

	Replay   *StoreReplayStatus   `json:"replay,omitempty"`
	Restored *StoreRestoredStatus `json:"restored,omitempty"`
}

// StoreReplayStatus describes the startup replay that built the current
// process's materialized view.
type StoreReplayStatus struct {
	Records      int     `json:"records"`
	SkippedBytes int64   `json:"skipped_bytes,omitempty"`
	SnapshotLSN  uint64  `json:"snapshot_lsn"`
	Segments     int     `json:"segments"`
	DurationMs   float64 `json:"duration_ms"`
}

// StoreRestoredStatus is the scheduler's disposition of recovered jobs.
type StoreRestoredStatus struct {
	Terminal int `json:"terminal"`
	Requeued int `json:"requeued"`
	Expired  int `json:"expired"`
}

// AttachStore wires the durable job store into the HTTP layer: the admin
// endpoint and qhpc_wal_* metric families start reporting, and the v2
// idempotency cache journals new key bindings (and is seeded with the
// bindings recovered at startup, so a retry that straddles the restart
// replays its original job instead of re-executing). The scheduler side
// (qrm/fleet AttachStore + Restore) is wired separately by the daemon.
func (s *Server) AttachStore(st *durable.Store, recoveredIdem map[string]int) {
	s.store = st
	if st == nil {
		s.idem.setJournal(nil)
		return
	}
	s.idem.seed(recoveredIdem)
	s.idem.setJournal(func(key string, jobID int) { st.JournalIdem(key, jobID) })
}

func (s *Server) handleV2AdminStore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeV2Error(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			"method not allowed; use GET", false)
		return
	}
	if s.store == nil {
		writeJSON(w, http.StatusOK, StoreStatus{Attached: false})
		return
	}
	st := s.store.Stats()
	out := StoreStatus{
		Attached:    true,
		Dir:         st.Dir,
		SyncMode:    string(st.Mode),
		LastLSN:     st.LastLSN,
		DurableLSN:  st.Durable,
		Appends:     st.Appends,
		Fsyncs:      st.Fsyncs,
		Bytes:       st.Bytes,
		Segments:    st.Segments,
		WALBytes:    st.WALBytes,
		SnapshotLSN: st.SnapshotLSN,
		Compactions: st.Compactions,
		Replay: &StoreReplayStatus{
			Records:      st.Replay.Records,
			SkippedBytes: st.Replay.SkippedBytes,
			SnapshotLSN:  st.Replay.SnapshotLSN,
			Segments:     st.Replay.Segments,
			DurationMs:   st.Replay.DurationMs,
		},
		Restored: &StoreRestoredStatus{
			Terminal: st.Restored.Terminal,
			Requeued: st.Restored.Requeued,
			Expired:  st.Restored.Expired,
		},
	}
	if !st.LastCompaction.IsZero() {
		out.LastCompaction = st.LastCompaction.UTC().Format(time.RFC3339)
	}
	writeJSON(w, http.StatusOK, out)
}
