package mqss

// This file defines the v2 API surface: one unified job resource replacing
// the two incompatible v1 shapes (qrm.Job for single-device servers,
// fleet.Job envelopes for fleets). A v2 job has an opaque string ID, a
// six-state lifecycle (queued → routed → running → done/failed/cancelled),
// device placement, timing, counts, and a structured error envelope — the
// same record whether the backend is one QRM or a multi-QPU fleet. The v1
// endpoints remain as byte-compatible shims over the same submission core.

import (
	"encoding/base64"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/circuit"
	"repro/internal/fleet"
	"repro/internal/qrm"
	"repro/internal/transpile"
)

// JobState is the v2 lifecycle state machine. Transitions only move
// rightward: queued → routed → running → one of done/failed/cancelled
// (migrations may bounce a fleet job from routed back to queued while it
// parks, which the watch stream reports with reason "parked").
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRouted    JobState = "routed"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// ParseJobState validates a user-supplied state filter.
func ParseJobState(v string) (JobState, error) {
	switch s := JobState(v); s {
	case StateQueued, StateRouted, StateRunning, StateDone, StateFailed, StateCancelled:
		return s, nil
	}
	return "", fmt.Errorf("unknown job state %q", v)
}

// Error codes of the structured envelope. Retryability is part of the
// contract: clients retry `retryable` errors with backoff and surface the
// rest to the user.
const (
	CodeInvalidRequest   = "invalid_request" // malformed body, ID, or query
	CodeNotFound         = "not_found"       // no such resource
	CodeMethodNotAllowed = "method_not_allowed"
	CodeConflict         = "conflict"          // e.g. cancelling a terminal job
	CodeUnprocessable    = "unprocessable"     // well-formed but unrunnable submission
	CodeUnavailable      = "unavailable"       // transient capacity loss; retryable
	CodeDeadlineExceeded = "deadline_exceeded" // expired before dispatch; retryable
	CodeExecutionFailed  = "execution_failed"  // the device rejected or failed the job
	CodeInterrupted      = "interrupted"       // lost to a crash/restart; retryable
	CodeRateLimited      = "rate_limited"      // over the tenant's token bucket; retryable
	CodeShed             = "shed"              // evicted by overload shedding; retryable
	CodeInternal         = "internal"
)

// APIError is the structured error envelope every v2 error response (and
// terminal failed job) carries.
type APIError struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`

	// Quota transparency on rate_limited refusals: the tenant's remaining
	// token balance and the whole seconds until one token accrues (the
	// same value as the Retry-After header, but machine-readable in the
	// body). Absent on every other error code.
	TokensLeft    *float64 `json:"tokens_left,omitempty"`
	RetryAfterSec int      `json:"retry_after,omitempty"`

	// RetryAfter is the server's Retry-After hint on 429 responses —
	// client-side decoration, not part of the wire envelope.
	RetryAfter time.Duration `json:"-"`
}

// Error implements the error interface.
func (e *APIError) Error() string {
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// Job is the unified v2 job resource.
type Job struct {
	// ID is the opaque job handle ("j-…"); treat it as a string.
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Device is the backend the job is (or was) placed on.
	Device string `json:"device,omitempty"`
	User   string `json:"user,omitempty"`
	Shots  int    `json:"shots,omitempty"`
	// Priority orders the dispatch queue (higher first); Deadline is the
	// dispatch budget in wall-clock ms from submission.
	Priority   int     `json:"priority,omitempty"`
	DeadlineMs float64 `json:"deadline_ms,omitempty"`
	// Migrations counts drain/failover re-routes (fleet backends).
	Migrations int `json:"migrations,omitempty"`
	// Score is the router's fidelity estimate at placement (fleet backends).
	Score float64 `json:"score,omitempty"`
	// Pinned names the backend the submission was pinned to, if any.
	Pinned string `json:"pinned,omitempty"`

	// Compilation artefacts, present once the job was dispatched.
	CompiledGates int              `json:"compiled_gates,omitempty"`
	CZCount       int              `json:"cz_count,omitempty"`
	Layout        transpile.Layout `json:"layout,omitempty"`
	CompileStats  string           `json:"compile_stats,omitempty"`

	// Results, present on done jobs.
	Counts     map[int]int `json:"counts,omitempty"`
	DurationUs float64     `json:"duration_us,omitempty"`

	// Timing on the backend's simulation clock.
	SubmitTime float64 `json:"submit_time"`
	EndTime    float64 `json:"end_time,omitempty"`

	// Recovered marks a job restored from the durable store after a
	// restart; absent on jobs submitted to the current process.
	Recovered bool `json:"recovered,omitempty"`

	// Node is the federation member that owns this job (minted its ID,
	// holds its durable record). Absent on standalone deployments, and
	// identical no matter which node served the response — proxied reads
	// pass the owner's record through unchanged.
	Node string `json:"node,omitempty"`

	// Error is the structured envelope for failed jobs.
	Error *APIError `json:"error,omitempty"`

	// Request echoes the full submission on single-job responses; list
	// pages omit it to keep pages light.
	Request *qrm.Request `json:"request,omitempty"`
}

// SubmitRequest is the v2 submission body.
type SubmitRequest struct {
	Circuit    *circuit.Circuit `json:"circuit"`
	Shots      int              `json:"shots"`
	User       string           `json:"user,omitempty"`
	Priority   int              `json:"priority,omitempty"`
	DeadlineMs float64          `json:"deadline_ms,omitempty"`
	// StaticPlacement selects static over fidelity-aware JIT placement.
	StaticPlacement bool `json:"static_placement,omitempty"`
	// Device pins the job to one fleet backend; Policy overrides the fleet
	// routing policy. Both are rejected on single-device servers.
	Device string `json:"device,omitempty"`
	Policy string `json:"policy,omitempty"`
}

// qrmRequest lowers the v2 submission onto the QRM request shape.
func (r SubmitRequest) qrmRequest() qrm.Request {
	return qrm.Request{
		Circuit:         r.Circuit,
		Shots:           r.Shots,
		User:            r.User,
		Priority:        r.Priority,
		DeadlineMs:      r.DeadlineMs,
		StaticPlacement: r.StaticPlacement,
	}
}

// JobEvent is one line of a v2 watch stream: the job entered State (on
// Device, when known). Reason annotates routing decisions ("migrated",
// "parked", "unparked") and cancellation requests ("cancel-requested",
// which reports the *current* state, not a transition).
type JobEvent struct {
	Seq    uint64   `json:"seq,omitempty"`
	JobID  string   `json:"job_id"`
	State  JobState `json:"state"`
	Device string   `json:"device,omitempty"`
	Reason string   `json:"reason,omitempty"`
}

// JobPage is one cursor-paginated slice of the v2 job listing, newest
// first. NextCursor is present while older matches remain; thread it back
// via ?cursor= to continue.
type JobPage struct {
	Jobs       []*Job `json:"jobs"`
	NextCursor string `json:"next_cursor,omitempty"`
}

// --- Opaque identifiers -------------------------------------------------

const jobIDPrefix = "j-"

// FormatJobID renders a backend-scoped numeric ID as the opaque v2 handle.
func FormatJobID(n int) string { return fmt.Sprintf("%s%d", jobIDPrefix, n) }

// ParseJobID recovers the numeric ID behind a v2 handle.
func ParseJobID(s string) (int, error) {
	raw, ok := strings.CutPrefix(s, jobIDPrefix)
	if !ok {
		return 0, fmt.Errorf("malformed job id %q", s)
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("malformed job id %q", s)
	}
	return n, nil
}

// encodeCursor packs the last-seen job ID into an opaque page cursor.
func encodeCursor(id int) string {
	return base64.RawURLEncoding.EncodeToString([]byte("v2:" + strconv.Itoa(id)))
}

// decodeCursor unpacks a page cursor.
func decodeCursor(s string) (int, error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return 0, fmt.Errorf("malformed cursor %q", s)
	}
	v, ok := strings.CutPrefix(string(raw), "v2:")
	if !ok {
		return 0, fmt.Errorf("malformed cursor %q", s)
	}
	id, err := strconv.Atoi(v)
	if err != nil || id < 1 {
		return 0, fmt.Errorf("malformed cursor %q", s)
	}
	return id, nil
}

// --- Lifecycle mappings -------------------------------------------------

// stateFromQRM maps the QRM's internal statuses onto the v2 machine:
// "compiling" means a worker claimed the job (routed), "interrupted" is a
// retryable failure.
func stateFromQRM(s qrm.JobStatus) JobState {
	switch s {
	case qrm.StatusQueued:
		return StateQueued
	case qrm.StatusCompiling:
		return StateRouted
	case qrm.StatusRunning:
		return StateRunning
	case qrm.StatusDone:
		return StateDone
	case qrm.StatusCancelled:
		return StateCancelled
	default: // failed, interrupted
		return StateFailed
	}
}

// stateFromFleet maps fleet statuses; a routed job's refinement to
// "running" comes from the device-level record when available.
func stateFromFleet(s fleet.JobStatus) JobState {
	switch s {
	case fleet.JobPending:
		return StateQueued
	case fleet.JobRouted:
		return StateRouted
	case fleet.JobDone:
		return StateDone
	case fleet.JobCancelled:
		return StateCancelled
	default:
		return StateFailed
	}
}

// stateFromEvent maps a bus status string (qrm or fleet vocabulary) onto
// the v2 machine for watch streams.
func stateFromEvent(to string) JobState {
	switch to {
	case string(qrm.StatusQueued), string(fleet.JobPending):
		return StateQueued
	case string(qrm.StatusCompiling), string(fleet.JobRouted):
		return StateRouted
	case string(qrm.StatusRunning):
		return StateRunning
	case string(qrm.StatusDone):
		return StateDone
	case string(qrm.StatusCancelled):
		return StateCancelled
	default:
		return StateFailed
	}
}

// jobErrorEnvelope classifies a failed backend record into the envelope.
func jobErrorEnvelope(status qrm.JobStatus, msg string) *APIError {
	// Crash-recovery expiry is keyed on the message, not the status: the
	// qrm path surfaces it as interrupted, the fleet path as failed, and
	// both must yield the same retryable "interrupted" code.
	if msg == qrm.ErrInterruptedMsg {
		return &APIError{Code: CodeInterrupted, Message: msg, Retryable: true}
	}
	// Load shedding is keyed the same way: the queue surfaces the job as
	// failed on both backends, and the envelope tells clients to back off
	// and resubmit.
	if msg == qrm.ErrShedMsg {
		return &APIError{Code: CodeShed, Message: msg, Retryable: true}
	}
	switch status {
	case qrm.StatusInterrupted:
		if msg == "" {
			msg = "job interrupted by an outage or drain"
		}
		return &APIError{Code: CodeUnavailable, Message: msg, Retryable: true}
	case qrm.StatusFailed:
		if msg == qrm.ErrDeadlineMsg {
			return &APIError{Code: CodeDeadlineExceeded, Message: msg, Retryable: true}
		}
		return &APIError{Code: CodeExecutionFailed, Message: msg}
	}
	return nil
}

// v2FromQRM lifts a single-device record into the unified resource.
func v2FromQRM(j *qrm.Job, device string, withRequest bool) *Job {
	out := &Job{
		ID:            FormatJobID(j.ID),
		State:         stateFromQRM(j.Status),
		Device:        device,
		User:          j.Request.User,
		Shots:         j.Request.Shots,
		Priority:      j.Request.Priority,
		DeadlineMs:    j.Request.DeadlineMs,
		CompiledGates: j.CompiledGates,
		CZCount:       j.CZCount,
		Layout:        j.Layout,
		CompileStats:  j.CompileStats,
		Counts:        j.Counts,
		DurationUs:    j.DurationUs,
		SubmitTime:    j.SubmitTime,
		EndTime:       j.EndTime,
		Recovered:     j.Recovered,
		Node:          j.Node,
	}
	if j.Status == qrm.StatusFailed || j.Status == qrm.StatusInterrupted {
		out.Error = jobErrorEnvelope(j.Status, j.Error)
	}
	if withRequest {
		req := j.Request
		out.Request = &req
	}
	return out
}

// v2FromFleet lifts a fleet envelope into the unified resource. devRec is
// the optional live device-level record for a routed job (refines the
// state to running and carries compile artefacts before the job settles).
func v2FromFleet(j *fleet.Job, devRec *qrm.Job, withRequest bool) *Job {
	out := &Job{
		ID:         FormatJobID(j.ID),
		State:      stateFromFleet(j.Status),
		Device:     j.Device,
		User:       j.Request.User,
		Shots:      j.Request.Shots,
		Priority:   j.Request.Priority,
		DeadlineMs: j.Request.DeadlineMs,
		Migrations: j.Migrations,
		Score:      j.Score,
		Pinned:     j.Pinned,
		Recovered:  j.Recovered,
		Node:       j.Node,
	}
	rec := j.Result
	if rec == nil && devRec != nil {
		rec = devRec
		if !out.State.Terminal() {
			// Refine routed → running/queued from the device pipeline's view.
			switch devRec.Status {
			case qrm.StatusRunning:
				out.State = StateRunning
			case qrm.StatusCompiling:
				out.State = StateRouted
			}
		}
	}
	if rec != nil {
		out.CompiledGates = rec.CompiledGates
		out.CZCount = rec.CZCount
		out.Layout = rec.Layout
		out.CompileStats = rec.CompileStats
		out.Counts = rec.Counts
		out.DurationUs = rec.DurationUs
		out.SubmitTime = rec.SubmitTime
		out.EndTime = rec.EndTime
	}
	if out.State == StateFailed {
		status := qrm.StatusFailed
		msg := j.Error
		if rec != nil && rec.Status == qrm.StatusInterrupted {
			status = qrm.StatusInterrupted
		}
		if msg == "" && rec != nil {
			msg = rec.Error
		}
		out.Error = jobErrorEnvelope(status, msg)
	}
	if withRequest {
		req := j.Request
		out.Request = &req
	}
	return out
}

// toQRMJob lowers a v2 job back onto the legacy single-device record — the
// client-side compat shim behind Run against a v2 server.
func (j *Job) toQRMJob() *qrm.Job {
	id, _ := ParseJobID(j.ID)
	out := &qrm.Job{
		ID:            id,
		Status:        j.qrmStatus(),
		CompiledGates: j.CompiledGates,
		CZCount:       j.CZCount,
		Layout:        j.Layout,
		CompileStats:  j.CompileStats,
		Counts:        j.Counts,
		DurationUs:    j.DurationUs,
		SubmitTime:    j.SubmitTime,
		EndTime:       j.EndTime,
	}
	if j.Error != nil {
		out.Error = j.Error.Message
	}
	if j.Request != nil {
		out.Request = *j.Request
	} else {
		out.Request = qrm.Request{
			Shots: j.Shots, User: j.User,
			Priority: j.Priority, DeadlineMs: j.DeadlineMs,
		}
	}
	return out
}

// qrmStatus maps the v2 state back onto the legacy status vocabulary.
func (j *Job) qrmStatus() qrm.JobStatus {
	switch j.State {
	case StateQueued:
		return qrm.StatusQueued
	case StateRouted:
		return qrm.StatusCompiling
	case StateRunning:
		return qrm.StatusRunning
	case StateDone:
		return qrm.StatusDone
	case StateCancelled:
		return qrm.StatusCancelled
	default:
		if j.Error != nil && j.Error.Code == CodeUnavailable {
			return qrm.StatusInterrupted
		}
		return qrm.StatusFailed
	}
}

// toFleetJob lowers a v2 job back onto the legacy fleet envelope — the
// compat shim behind RunRouted against a v2 server.
func (j *Job) toFleetJob() *fleet.Job {
	id, _ := ParseJobID(j.ID)
	out := &fleet.Job{
		ID:         id,
		Status:     j.fleetStatus(),
		Device:     j.Device,
		Migrations: j.Migrations,
		Score:      j.Score,
		Pinned:     j.Pinned,
	}
	if j.Error != nil {
		out.Error = j.Error.Message
	}
	if j.Request != nil {
		out.Request = *j.Request
	}
	if j.State.Terminal() && j.State != StateCancelled {
		rec := j.toQRMJob()
		out.Result = rec
	}
	return out
}

// fleetStatus maps the v2 state back onto the fleet status vocabulary.
func (j *Job) fleetStatus() fleet.JobStatus {
	switch j.State {
	case StateQueued:
		return fleet.JobPending
	case StateRouted, StateRunning:
		return fleet.JobRouted
	case StateDone:
		return fleet.JobDone
	case StateCancelled:
		return fleet.JobCancelled
	default:
		return fleet.JobFailed
	}
}
