package mqss

// The v2 API throughput harness: the same paced-twin workload as the fleet
// bench's single-device row (256 GHZ jobs, 2 ms control-electronics round
// trip, 4 workers), but driven through the v2 async surface — POST
// /api/v2/jobs (202) for every job up front, then one watch stream per job
// until its terminal event. The row lands in BENCH_fleet.json next to the
// in-process fleet rows, so the artifact answers "what does the remote
// async access model cost on top of routed dispatch" across PRs.
//
// Run order matters for the artifact: TestFleetBenchArtifact (internal/
// fleet) rewrites BENCH_fleet.json from scratch; this test then merges its
// row in. CI runs them in that order.

import (
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/qdmi"
	"repro/internal/telemetry"
)

var (
	v2Bench    = flag.Bool("v2.bench", false, "run the v2 submit+watch bench and merge its row into the fleet artifact")
	v2BenchOut = flag.String("v2.bench.out", "BENCH_fleet.json", "fleet bench artifact to merge the v2 row into")
)

// v2BenchRow is the artifact row recorded under "v2_submit_watch". The
// numbers are medians over Reruns independent loads; SpreadPct is
// (max-min)/median of the throughput samples.
type v2BenchRow struct {
	Harness    string  `json:"harness"`
	Jobs       int     `json:"jobs"`
	Workers    int     `json:"workers_per_device"`
	Reruns     int     `json:"reruns"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	P50Ms      float64 `json:"p50_ms"`
	P95Ms      float64 `json:"p95_ms"`
	SpreadPct  float64 `json:"spread_pct"`
}

func TestV2SubmitWatchBenchArtifact(t *testing.T) {
	if !*v2Bench {
		t.Skip("pass -v2.bench to run the v2 submit+watch harness")
	}
	const (
		jobs        = 256
		workers     = 4
		execLatency = 2 * time.Millisecond
		// Median of 3 loads, matching the fleet artifact's rerun policy so
		// the v2-vs-routed ratio below compares medians on both sides.
		reruns = 3
	)
	qpu, err := device.New(device.Config{Name: "bench-v2", Rows: 4, Cols: 5, Seed: 1, DigitalTwin: true})
	if err != nil {
		t.Fatal(err)
	}
	qpu.SetExecLatency(execLatency)
	f := fleet.New(fleet.PolicyLeastLoaded, nil)
	defer f.Stop()
	if err := f.AddDevice("bench-v2", qdmi.NewDevice(qpu, nil), workers); err != nil {
		t.Fatal(err)
	}
	server := NewFleetServer(f)
	server.AutoRun = false
	srv := httptest.NewServer(server)
	defer srv.Close()
	// One watch stream per in-flight job needs more conns than the default
	// two per host.
	srv.Client().Transport.(*http.Transport).MaxIdleConnsPerHost = jobs

	circs := []*circuit.Circuit{circuit.GHZ(3), circuit.GHZ(4), circuit.GHZ(5), circuit.GHZ(6)}
	c := NewRemoteClient(srv.URL, srv.Client())
	ctx := t.Context()

	runLoad := func() (jps, p50, p95 float64) {
		start := time.Now()
		handles := make([]*JobHandle, jobs)
		starts := make([]time.Time, jobs)
		for i := 0; i < jobs; i++ {
			h, err := c.Submit(ctx, SubmitRequest{
				Circuit: circs[i%len(circs)], Shots: 10, User: "bench-v2",
			}, "")
			if err != nil {
				t.Fatal(err)
			}
			handles[i] = h
			starts[i] = time.Now()
		}
		latencies := make([]float64, jobs)
		var wg sync.WaitGroup
		var mu sync.Mutex
		failures := 0
		for i, h := range handles {
			wg.Add(1)
			go func(i int, h *JobHandle) {
				defer wg.Done()
				job, err := h.Watch(ctx, nil)
				lat := float64(time.Since(starts[i]).Microseconds()) / 1000
				mu.Lock()
				defer mu.Unlock()
				latencies[i] = lat
				if err != nil || job.State != StateDone {
					failures++
				}
			}(i, h)
		}
		wg.Wait()
		elapsed := time.Since(start)
		if failures > 0 {
			t.Fatalf("%d/%d v2 jobs failed", failures, jobs)
		}
		sort.Float64s(latencies)
		return float64(jobs) / elapsed.Seconds(), latencies[jobs/2], latencies[jobs*95/100]
	}
	var jpsRuns, p50Runs, p95Runs []float64
	for r := 0; r < reruns; r++ {
		jps, p50, p95 := runLoad()
		jpsRuns = append(jpsRuns, jps)
		p50Runs = append(p50Runs, p50)
		p95Runs = append(p95Runs, p95)
	}
	row := v2BenchRow{
		Harness:    "go test ./internal/mqss -run TestV2SubmitWatchBenchArtifact -v2.bench",
		Jobs:       jobs,
		Workers:    workers,
		Reruns:     reruns,
		JobsPerSec: telemetry.Median(jpsRuns),
		P50Ms:      telemetry.Median(p50Runs),
		P95Ms:      telemetry.Median(p95Runs),
		SpreadPct:  telemetry.SpreadPct(jpsRuns),
	}
	t.Logf("v2 submit+watch: median %.0f jobs/s over %d runs (spread %.1f%%), p50 %.2f ms, p95 %.2f ms",
		row.JobsPerSec, reruns, row.SpreadPct, row.P50Ms, row.P95Ms)

	// Merge into the fleet artifact without disturbing its rows.
	art := map[string]interface{}{}
	if data, err := os.ReadFile(*v2BenchOut); err == nil {
		if err := json.Unmarshal(data, &art); err != nil {
			t.Fatalf("parsing %s: %v", *v2BenchOut, err)
		}
	}
	art["v2_submit_watch"] = row
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*v2BenchOut, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("merged v2 row into %s", *v2BenchOut)

	// Smoke gate: the async surface must stay in the same league as the
	// in-process single-device dispatch (watch streams + HTTP cost real
	// work; below half the routed throughput something structural broke).
	if results, ok := art["results"].([]interface{}); ok && len(results) > 0 {
		if first, ok := results[0].(map[string]interface{}); ok {
			if base, ok := first["jobs_per_sec"].(float64); ok && base > 0 {
				ratio := row.JobsPerSec / base
				t.Logf("v2-vs-routed single-device ratio: %.2fx", ratio)
				if ratio < 0.5 {
					t.Fatalf("v2 submit+watch throughput regression: %.0f jobs/s vs %.0f routed (%.2fx < 0.5x)",
						row.JobsPerSec, base, ratio)
				}
			}
		}
	}
}
