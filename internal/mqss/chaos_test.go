package mqss

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/qdmi"
)

// TestIdempotentReplayOfJobFailedMidMigration pins the idempotency cache's
// behavior on the ugliest terminal path: a job that was interrupted by a
// device failure, migrated, and then failed for real on the failover
// target. Replaying the same Idempotency-Key must return that same failed
// job — not resubmit it — because the client cannot distinguish "failed
// after migration" from "response lost in flight", and a blind retry would
// double-run on a healthy fleet.
func TestIdempotentReplayOfJobFailedMidMigration(t *testing.T) {
	devA := twinDev(t, "a", 4, 5, 1)
	devB := twinDev(t, "b", 4, 5, 2)
	// Both backends are poisoned: "a" so the in-flight job faults when the
	// device dies, "b" so the migrated attempt fails terminally.
	devA.QPU().SetExecLatency(50 * time.Millisecond)
	devA.QPU().InjectFaults(1000)
	devB.QPU().InjectFaults(1000)
	f := newTestFleet(t, map[string]*qdmi.Device{"a": devA, "b": devB}, 2)
	if err := f.Drain("b"); err != nil { // force routing onto "a"
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewFleetServer(f))
	t.Cleanup(srv.Close)
	client := NewRemoteClient(srv.URL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const key = "replay-after-migration"
	req := SubmitRequest{Circuit: circuit.GHZ(4), Shots: 20, User: "chaos"}
	h, err := client.Submit(ctx, req, key)
	if err != nil {
		t.Fatal(err)
	}

	// Let the job reach "a"'s executor (50ms round trip), then kill "a"
	// with "b" back in rotation: interrupt -> migrate -> fail on "b".
	deadline := time.Now().Add(5 * time.Second)
	for {
		j, perr := h.Poll(ctx)
		if perr == nil && (j.State == StateRunning || j.State.Terminal()) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started executing on device a")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := f.Resume("b"); err != nil {
		t.Fatal(err)
	}
	if err := f.Fail("a"); err != nil {
		t.Fatal(err)
	}

	j, err := h.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateFailed {
		t.Fatalf("job ended %s, want failed (both backends poisoned)", j.State)
	}
	if j.Migrations < 1 {
		t.Fatalf("job failed with %d migrations — the mid-migration path was not exercised", j.Migrations)
	}
	submittedOnce := f.Metrics().Submitted

	// The replay: same key, same payload. Must return the same failed job
	// without a new fleet submission.
	h2, err := client.Submit(ctx, req, key)
	if err != nil {
		t.Fatalf("replaying the key of a failed job must succeed: %v", err)
	}
	if h2.ID != h.ID {
		t.Fatalf("replay returned job %s, want the original %s", h2.ID, h.ID)
	}
	j2, err := h2.Poll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if j2.State != StateFailed || j2.Migrations != j.Migrations {
		t.Errorf("replayed record diverged: state %s migrations %d, want failed/%d",
			j2.State, j2.Migrations, j.Migrations)
	}
	if got := f.Metrics().Submitted; got != submittedOnce {
		t.Errorf("replay created a new fleet submission (%d -> %d)", submittedOnce, got)
	}

	// A different key is a different job.
	h3, err := client.Submit(ctx, req, "fresh-key")
	if err != nil {
		t.Fatal(err)
	}
	if h3.ID == h.ID {
		t.Error("a fresh idempotency key must not replay the failed job")
	}
	if _, err := h3.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}
