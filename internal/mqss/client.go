package mqss

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/qdmi"
	"repro/internal/qrm"
)

// AccessPath describes how a job reached the QRM.
type AccessPath string

const (
	// PathHPC is the tightly-coupled in-process accelerator path.
	PathHPC AccessPath = "hpc"
	// PathREST is the remote asynchronous API path.
	PathREST AccessPath = "rest"
)

// Client is the MQSS client of Fig. 2: "without requiring any code
// modifications from the user, the client automatically detects whether a
// job originates inside or outside an HPC environment and routes it
// accordingly". Inside the HPC environment the client holds a direct QRM
// handle; outside, it holds only a REST endpoint.
type Client struct {
	// Direct QRM handle; non-nil when running inside the HPC environment.
	local *qrm.Manager
	// REST endpoint for remote access.
	baseURL string
	httpc   *http.Client
}

// NewLocalClient returns a client wired for in-HPC accelerator-style
// submission.
func NewLocalClient(m *qrm.Manager) *Client {
	return &Client{local: m}
}

// NewRemoteClient returns a client that reaches the stack over HTTP.
func NewRemoteClient(baseURL string, httpc *http.Client) *Client {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	return &Client{baseURL: baseURL, httpc: httpc}
}

// NewAutoClient performs the routing decision: if a local QRM is reachable
// (non-nil), the HPC path is used; otherwise the REST path. This mirrors the
// client-side auto-detection the paper describes.
func NewAutoClient(local *qrm.Manager, baseURL string, httpc *http.Client) *Client {
	if local != nil {
		return NewLocalClient(local)
	}
	return NewRemoteClient(baseURL, httpc)
}

// Path reports which access path this client uses.
func (c *Client) Path() AccessPath {
	if c.local != nil {
		return PathHPC
	}
	return PathREST
}

// Run submits a job and waits for completion, whichever path is in use.
func (c *Client) Run(req qrm.Request) (*qrm.Job, error) {
	if c.local != nil {
		return c.runLocal(req)
	}
	return c.runRemote(req)
}

func (c *Client) runLocal(req qrm.Request) (*qrm.Job, error) {
	id, err := c.local.Submit(req)
	if err != nil {
		return nil, err
	}
	// Tightly-coupled loop: drive the QRM synchronously until our job is
	// done (low-latency accelerator semantics).
	for {
		j, err := c.local.Step()
		if err != nil {
			return nil, err
		}
		if j == nil {
			break
		}
		if j.ID == id {
			return c.local.Job(id)
		}
	}
	return nil, fmt.Errorf("mqss: job %d vanished from the queue", id)
}

func (c *Client) runRemote(req qrm.Request) (*qrm.Job, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("mqss: encoding request: %w", err)
	}
	resp, err := c.httpc.Post(c.baseURL+pathJobs, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("mqss: POST %s: %w", pathJobs, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return nil, decodeError(resp)
	}
	var job qrm.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		return nil, fmt.Errorf("mqss: decoding job: %w", err)
	}
	return &job, nil
}

// RunBatch submits several circuits as one batch and returns the completed
// jobs.
func (c *Client) RunBatch(reqs []qrm.Request) ([]*qrm.Job, error) {
	if c.local != nil {
		_, ids, err := c.local.SubmitBatch(reqs)
		if err != nil {
			return nil, err
		}
		if _, err := c.local.Drain(); err != nil {
			return nil, err
		}
		out := make([]*qrm.Job, 0, len(ids))
		for _, id := range ids {
			j, err := c.local.Job(id)
			if err != nil {
				return nil, err
			}
			out = append(out, j)
		}
		return out, nil
	}
	body, err := json.Marshal(reqs)
	if err != nil {
		return nil, fmt.Errorf("mqss: encoding batch: %w", err)
	}
	resp, err := c.httpc.Post(c.baseURL+pathJobsBatch, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("mqss: POST %s: %w", pathJobsBatch, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return nil, decodeError(resp)
	}
	var created struct {
		JobIDs []int `json:"job_ids"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		return nil, fmt.Errorf("mqss: decoding batch response: %w", err)
	}
	out := make([]*qrm.Job, 0, len(created.JobIDs))
	for _, id := range created.JobIDs {
		j, err := c.Job(id)
		if err != nil {
			return nil, err
		}
		out = append(out, j)
	}
	return out, nil
}

// Job fetches a job record by ID.
func (c *Client) Job(id int) (*qrm.Job, error) {
	if c.local != nil {
		return c.local.Job(id)
	}
	resp, err := c.httpc.Get(fmt.Sprintf("%s%s/%d", c.baseURL, pathJobs, id))
	if err != nil {
		return nil, fmt.Errorf("mqss: GET job %d: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var job qrm.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		return nil, fmt.Errorf("mqss: decoding job: %w", err)
	}
	return &job, nil
}

// History fetches a page of job history.
func (c *Client) History(user string, offset, limit int) (*qrm.Page, error) {
	if c.local != nil {
		return c.local.History(user, offset, limit)
	}
	url := fmt.Sprintf("%s%s?offset=%d&limit=%d&user=%s", c.baseURL, pathJobs, offset, limit, user)
	resp, err := c.httpc.Get(url)
	if err != nil {
		return nil, fmt.Errorf("mqss: GET history: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var page qrm.Page
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return nil, fmt.Errorf("mqss: decoding page: %w", err)
	}
	return &page, nil
}

// DeviceInfo is the REST device summary.
type DeviceInfo struct {
	Properties      qdmi.Properties `json:"properties"`
	Fidelity1Q      float64         `json:"fidelity_1q"`
	FidelityReadout float64         `json:"fidelity_readout"`
	FidelityCZ      float64         `json:"fidelity_cz"`
	CalibrationAgeH float64         `json:"calibration_age_h"`
}

// Device fetches device properties over REST. (Local clients should use
// their QDMI handle directly.)
func (c *Client) Device() (*DeviceInfo, error) {
	if c.local != nil {
		return nil, fmt.Errorf("mqss: local clients query QDMI directly")
	}
	resp, err := c.httpc.Get(c.baseURL + pathDevice)
	if err != nil {
		return nil, fmt.Errorf("mqss: GET device: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var info DeviceInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("mqss: decoding device info: %w", err)
	}
	return &info, nil
}

func decodeError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return fmt.Errorf("mqss: server %d: %s", resp.StatusCode, e.Error)
	}
	return fmt.Errorf("mqss: server returned %d", resp.StatusCode)
}
