package mqss

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/qdmi"
	"repro/internal/qrm"
)

// AccessPath describes how a job reached the QRM.
type AccessPath string

const (
	// PathHPC is the tightly-coupled in-process accelerator path.
	PathHPC AccessPath = "hpc"
	// PathREST is the remote asynchronous API path.
	PathREST AccessPath = "rest"
)

// Client is the MQSS client of Fig. 2: "without requiring any code
// modifications from the user, the client automatically detects whether a
// job originates inside or outside an HPC environment and routes it
// accordingly". Inside the HPC environment the client holds a direct QRM
// handle; outside, it holds only a REST endpoint.
type Client struct {
	// Direct QRM handle; non-nil when running inside the HPC environment.
	local *qrm.Manager
	// Direct fleet handle; non-nil for in-HPC access to a multi-QPU fleet.
	localFleet *fleet.Scheduler
	// REST endpoint for remote access.
	baseURL string
	httpc   *http.Client
}

// NewLocalClient returns a client wired for in-HPC accelerator-style
// submission.
func NewLocalClient(m *qrm.Manager) *Client {
	return &Client{local: m}
}

// NewLocalFleetClient returns an in-HPC client over a multi-QPU fleet
// scheduler: submissions go through calibration-aware routing instead of a
// single QRM.
func NewLocalFleetClient(f *fleet.Scheduler) *Client {
	return &Client{localFleet: f}
}

// NewRemoteClient returns a client that reaches the stack over HTTP.
func NewRemoteClient(baseURL string, httpc *http.Client) *Client {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	return &Client{baseURL: baseURL, httpc: httpc}
}

// NewAutoClient performs the routing decision: if a local QRM is reachable
// (non-nil), the HPC path is used; otherwise the REST path. This mirrors the
// client-side auto-detection the paper describes.
func NewAutoClient(local *qrm.Manager, baseURL string, httpc *http.Client) *Client {
	if local != nil {
		return NewLocalClient(local)
	}
	return NewRemoteClient(baseURL, httpc)
}

// Path reports which access path this client uses.
func (c *Client) Path() AccessPath {
	if c.local != nil || c.localFleet != nil {
		return PathHPC
	}
	return PathREST
}

// Run submits a job and waits for completion, whichever path is in use. On
// a fleet client the job goes through calibration-aware routing with the
// scheduler's default policy and the result comes back in the legacy
// single-device shape (device record keyed by the fleet job ID) — "without
// requiring any code modifications from the user". Use RunRouted for the
// full routing envelope.
func (c *Client) Run(req qrm.Request) (*qrm.Job, error) {
	if c.localFleet != nil {
		j, err := c.RunRouted(req, RouteOptions{})
		if err != nil {
			return nil, err
		}
		return flattenFleetJob(j), nil
	}
	if c.local != nil {
		return c.runLocal(req)
	}
	return c.runRemote(req)
}

func (c *Client) runLocal(req qrm.Request) (*qrm.Job, error) {
	id, err := c.local.Submit(req)
	if err != nil {
		return nil, err
	}
	// With the dispatch pipeline running, the workers own execution: block
	// until they complete our job.
	if c.local.Running() {
		return c.local.WaitJob(id)
	}
	// Tightly-coupled loop: drive the QRM synchronously until our job is
	// done (low-latency accelerator semantics).
	for {
		j, err := c.local.Step()
		if err != nil {
			return nil, err
		}
		if j == nil {
			break
		}
		if j.ID == id {
			return c.local.Job(id)
		}
	}
	return nil, fmt.Errorf("mqss: job %d vanished from the queue", id)
}

func (c *Client) runRemote(req qrm.Request) (*qrm.Job, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("mqss: encoding request: %w", err)
	}
	resp, err := c.httpc.Post(c.baseURL+pathJobs, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("mqss: POST %s: %w", pathJobs, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return nil, decodeError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("mqss: reading job response: %w", err)
	}
	return decodeJobPayload(data)
}

// decodeJobPayload decodes a job record that may be either the single-device
// shape (qrm.Job) or a fleet envelope (fleet.Job, carrying the device record
// under "result") — a legacy client pointed at a fleet server transparently
// gets the flattened device record, keeping "no code modifications from the
// user" true across deployment shapes.
func decodeJobPayload(data []byte) (*qrm.Job, error) {
	var probe struct {
		Device string          `json:"device"`
		Result json.RawMessage `json:"result"`
		Status string          `json:"status"`
	}
	// A fleet envelope carries a device/result, or — for a job parked with
	// no eligible backend, which has neither — one of the fleet-only status
	// values ("pending"/"routed" are not qrm statuses). Probe errors fall
	// through to the strict qrm.Job decode below.
	if json.Unmarshal(data, &probe) == nil &&
		(probe.Device != "" || len(probe.Result) > 0 ||
			probe.Status == string(fleet.JobPending) || probe.Status == string(fleet.JobRouted)) {
		var fj fleet.Job
		if err := json.Unmarshal(data, &fj); err != nil {
			return nil, fmt.Errorf("mqss: decoding fleet job: %w", err)
		}
		return flattenFleetJob(&fj), nil
	}
	var job qrm.Job
	if err := json.Unmarshal(data, &job); err != nil {
		return nil, fmt.Errorf("mqss: decoding job: %w", err)
	}
	return &job, nil
}

// RunBatch submits several circuits as one batch and returns the completed
// jobs in submission order. Results are consumed as they complete (streamed
// per-job over the HPC path's WaitJob or the REST path's NDJSON endpoint).
func (c *Client) RunBatch(reqs []qrm.Request) ([]*qrm.Job, error) {
	return c.StreamBatch(reqs, nil)
}

// StreamBatch submits a batch and invokes onJob for every job *as it
// completes* — the per-job completion streaming of the dispatch pipeline.
// It returns all completed jobs in submission order. onJob may be nil.
func (c *Client) StreamBatch(reqs []qrm.Request, onJob func(*qrm.Job)) ([]*qrm.Job, error) {
	if c.localFleet != nil {
		var flatOn func(*fleet.Job)
		if onJob != nil {
			flatOn = func(j *fleet.Job) { onJob(flattenFleetJob(j)) }
		}
		jobs, err := c.StreamBatchRouted(reqs, RouteOptions{}, flatOn)
		if err != nil {
			return nil, err
		}
		out := make([]*qrm.Job, len(jobs))
		for i, j := range jobs {
			out[i] = flattenFleetJob(j)
		}
		return out, nil
	}
	if c.local != nil {
		return c.streamBatchLocal(reqs, onJob)
	}
	return c.streamBatchRemote(reqs, onJob)
}

func (c *Client) streamBatchLocal(reqs []qrm.Request, onJob func(*qrm.Job)) ([]*qrm.Job, error) {
	_, ids, err := c.local.SubmitBatch(reqs)
	if err != nil {
		return nil, err
	}
	byID := make(map[int]*qrm.Job, len(ids))
	if c.local.Running() {
		// Pipeline mode: deliver jobs in completion order.
		var firstErr error
		c.local.WaitEach(ids, func(id int, j *qrm.Job, err error) {
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			if onJob != nil {
				onJob(j)
			}
			byID[id] = j
		})
		if firstErr != nil {
			return nil, firstErr
		}
	} else {
		if _, err := c.local.Drain(); err != nil {
			return nil, err
		}
		for _, id := range ids {
			j, err := c.local.Job(id)
			if err != nil {
				return nil, err
			}
			if onJob != nil {
				onJob(j)
			}
			byID[id] = j
		}
	}
	out := make([]*qrm.Job, 0, len(ids))
	for _, id := range ids {
		out = append(out, byID[id])
	}
	return out, nil
}

func (c *Client) streamBatchRemote(reqs []qrm.Request, onJob func(*qrm.Job)) ([]*qrm.Job, error) {
	body, err := json.Marshal(reqs)
	if err != nil {
		return nil, fmt.Errorf("mqss: encoding batch: %w", err)
	}
	resp, err := c.httpc.Post(c.baseURL+pathJobsBatch+"?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("mqss: POST %s: %w", pathJobsBatch, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return nil, decodeError(resp)
	}
	dec := json.NewDecoder(resp.Body)
	var header struct {
		BatchID int   `json:"batch_id"`
		JobIDs  []int `json:"job_ids"`
	}
	if err := dec.Decode(&header); err != nil {
		return nil, fmt.Errorf("mqss: decoding batch header: %w", err)
	}
	byID := make(map[int]*qrm.Job, len(header.JobIDs))
	for range header.JobIDs {
		var line json.RawMessage
		if err := dec.Decode(&line); err != nil {
			return nil, fmt.Errorf("mqss: decoding streamed job: %w", err)
		}
		job, err := decodeJobPayload(line)
		if err != nil {
			return nil, err
		}
		if onJob != nil {
			onJob(job)
		}
		byID[job.ID] = job
	}
	out := make([]*qrm.Job, 0, len(header.JobIDs))
	for _, id := range header.JobIDs {
		j, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("mqss: job %d missing from batch stream", id)
		}
		out = append(out, j)
	}
	return out, nil
}

// Metrics fetches the server's dispatch-pipeline metrics snapshot over REST.
// Fleet clients/servers expose a fleet-shaped snapshot instead: use
// FleetMetrics.
func (c *Client) Metrics() (*qrm.Metrics, error) {
	if c.localFleet != nil {
		return nil, fmt.Errorf("mqss: fleet client; use FleetMetrics")
	}
	if c.local != nil {
		snap := c.local.Metrics()
		return &snap, nil
	}
	resp, err := c.httpc.Get(c.baseURL + pathMetrics)
	if err != nil {
		return nil, fmt.Errorf("mqss: GET metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var snap qrm.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("mqss: decoding metrics: %w", err)
	}
	return &snap, nil
}

// Job fetches a job record by ID.
func (c *Client) Job(id int) (*qrm.Job, error) {
	if c.localFleet != nil {
		j, err := c.localFleet.Job(id)
		if err != nil {
			return nil, err
		}
		return flattenFleetJob(j), nil
	}
	if c.local != nil {
		return c.local.Job(id)
	}
	resp, err := c.httpc.Get(fmt.Sprintf("%s%s/%d", c.baseURL, pathJobs, id))
	if err != nil {
		return nil, fmt.Errorf("mqss: GET job %d: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("mqss: reading job %d: %w", id, err)
	}
	return decodeJobPayload(data)
}

// History fetches a page of job history.
func (c *Client) History(user string, offset, limit int) (*qrm.Page, error) {
	if c.localFleet != nil {
		fp, err := c.localFleet.History(user, offset, limit)
		if err != nil {
			return nil, err
		}
		page := &qrm.Page{Total: fp.Total, Offset: fp.Offset, Limit: fp.Limit, HasMore: fp.HasMore}
		for _, j := range fp.Jobs {
			page.Jobs = append(page.Jobs, flattenFleetJob(j))
		}
		return page, nil
	}
	if c.local != nil {
		return c.local.History(user, offset, limit)
	}
	u := fmt.Sprintf("%s%s?offset=%d&limit=%d&user=%s", c.baseURL, pathJobs, offset, limit, url.QueryEscape(user))
	resp, err := c.httpc.Get(u)
	if err != nil {
		return nil, fmt.Errorf("mqss: GET history: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	// Decode with raw job entries so a fleet server's envelope records can
	// be flattened per job (see decodeJobPayload).
	var raw struct {
		Jobs    []json.RawMessage `json:"jobs"`
		Total   int               `json:"total"`
		Offset  int               `json:"offset"`
		Limit   int               `json:"limit"`
		HasMore bool              `json:"has_more"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		return nil, fmt.Errorf("mqss: decoding page: %w", err)
	}
	page := &qrm.Page{Total: raw.Total, Offset: raw.Offset, Limit: raw.Limit, HasMore: raw.HasMore}
	for _, data := range raw.Jobs {
		j, err := decodeJobPayload(data)
		if err != nil {
			return nil, err
		}
		page.Jobs = append(page.Jobs, j)
	}
	return page, nil
}

// DeviceInfo is the REST device summary. Calibration carries the full
// record — per-qubit parameters and the per-coupler CZ fidelities (via the
// device.Calibration edge-list JSON encoding).
type DeviceInfo struct {
	Properties      qdmi.Properties     `json:"properties"`
	Fidelity1Q      float64             `json:"fidelity_1q"`
	FidelityReadout float64             `json:"fidelity_readout"`
	FidelityCZ      float64             `json:"fidelity_cz"`
	CalibrationAgeH float64             `json:"calibration_age_h"`
	Calibration     *device.Calibration `json:"calibration,omitempty"`
}

// Device fetches device properties over REST. (Local clients should use
// their QDMI handle directly.)
func (c *Client) Device() (*DeviceInfo, error) {
	if c.local != nil {
		return nil, fmt.Errorf("mqss: local clients query QDMI directly")
	}
	resp, err := c.httpc.Get(c.baseURL + pathDevice)
	if err != nil {
		return nil, fmt.Errorf("mqss: GET device: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var info DeviceInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("mqss: decoding device info: %w", err)
	}
	return &info, nil
}

// RouteOptions tune a fleet submission: pin a device and/or override the
// routing policy for this call.
type RouteOptions struct {
	Device string
	Policy string
}

func (o RouteOptions) query() string {
	v := url.Values{}
	if o.Device != "" {
		v.Set("device", o.Device)
	}
	if o.Policy != "" {
		v.Set("policy", o.Policy)
	}
	if len(v) == 0 {
		return ""
	}
	return "?" + v.Encode()
}

func (o RouteOptions) submitOptions() (fleet.SubmitOptions, error) {
	opts := fleet.SubmitOptions{Device: o.Device}
	if o.Policy != "" {
		p := fleet.Policy(o.Policy)
		if err := p.Validate(); err != nil {
			return opts, err
		}
		opts.Policy = p
	}
	return opts, nil
}

// flattenFleetJob converts a fleet job into the legacy single-device record
// shape: the device-level result re-keyed under the fleet job ID, so
// single-device call sites work unchanged against a fleet.
func flattenFleetJob(j *fleet.Job) *qrm.Job {
	if j == nil {
		return nil
	}
	if j.Result != nil {
		cp := *j.Result
		cp.ID = j.ID
		return &cp
	}
	status := qrm.StatusQueued
	switch j.Status {
	case fleet.JobDone:
		status = qrm.StatusDone
	case fleet.JobFailed:
		status = qrm.StatusFailed
	case fleet.JobCancelled:
		status = qrm.StatusCancelled
	}
	return &qrm.Job{ID: j.ID, Status: status, Request: j.Request, Error: j.Error}
}

// RunRouted submits a job through the fleet scheduler and waits for it to
// settle (including any drain/failover migrations), returning the full
// fleet record: which device ran it, the routing score, migration count,
// and the device-level result. Valid against a fleet client or server.
func (c *Client) RunRouted(req qrm.Request, opts RouteOptions) (*fleet.Job, error) {
	if c.localFleet != nil {
		so, err := opts.submitOptions()
		if err != nil {
			return nil, err
		}
		id, err := c.localFleet.Submit(req, so)
		if err != nil {
			return nil, err
		}
		return c.localFleet.Wait(id)
	}
	if c.local != nil {
		return nil, fmt.Errorf("mqss: single-device client; use Run")
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("mqss: encoding request: %w", err)
	}
	resp, err := c.httpc.Post(c.baseURL+pathJobs+opts.query(), "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("mqss: POST %s: %w", pathJobs, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return nil, decodeError(resp)
	}
	var job fleet.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		return nil, fmt.Errorf("mqss: decoding fleet job: %w", err)
	}
	return &job, nil
}

// StreamBatchRouted submits a batch through the fleet and invokes onJob for
// every job as it settles, in completion order; the batch may span devices.
// It returns all fleet records in submission order. onJob may be nil.
func (c *Client) StreamBatchRouted(reqs []qrm.Request, opts RouteOptions, onJob func(*fleet.Job)) ([]*fleet.Job, error) {
	if c.localFleet != nil {
		so, err := opts.submitOptions()
		if err != nil {
			return nil, err
		}
		_, ids, err := c.localFleet.SubmitBatch(reqs, so)
		if err != nil {
			return nil, err
		}
		byID := make(map[int]*fleet.Job, len(ids))
		var firstErr error
		c.localFleet.WaitEach(ids, func(id int, j *fleet.Job, err error) {
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			if onJob != nil {
				onJob(j)
			}
			byID[id] = j
		})
		if firstErr != nil {
			return nil, firstErr
		}
		out := make([]*fleet.Job, 0, len(ids))
		for _, id := range ids {
			out = append(out, byID[id])
		}
		return out, nil
	}
	if c.local != nil {
		return nil, fmt.Errorf("mqss: single-device client; use StreamBatch")
	}
	body, err := json.Marshal(reqs)
	if err != nil {
		return nil, fmt.Errorf("mqss: encoding batch: %w", err)
	}
	q := url.Values{"stream": {"1"}}
	if opts.Device != "" {
		q.Set("device", opts.Device)
	}
	if opts.Policy != "" {
		q.Set("policy", opts.Policy)
	}
	resp, err := c.httpc.Post(c.baseURL+pathJobsBatch+"?"+q.Encode(), "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("mqss: POST %s: %w", pathJobsBatch, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return nil, decodeError(resp)
	}
	dec := json.NewDecoder(resp.Body)
	var header struct {
		BatchID int   `json:"batch_id"`
		JobIDs  []int `json:"job_ids"`
	}
	if err := dec.Decode(&header); err != nil {
		return nil, fmt.Errorf("mqss: decoding batch header: %w", err)
	}
	byID := make(map[int]*fleet.Job, len(header.JobIDs))
	for range header.JobIDs {
		var job fleet.Job
		if err := dec.Decode(&job); err != nil {
			return nil, fmt.Errorf("mqss: decoding streamed fleet job: %w", err)
		}
		if onJob != nil {
			onJob(&job)
		}
		byID[job.ID] = &job
	}
	out := make([]*fleet.Job, 0, len(header.JobIDs))
	for _, id := range header.JobIDs {
		j, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("mqss: job %d missing from batch stream", id)
		}
		out = append(out, j)
	}
	return out, nil
}

// FleetMetrics fetches the fleet status/metrics snapshot (GET
// /api/v1/fleet): per-device state, queue depths, routed/migrated/failed
// counters, fidelity means, and score histograms.
func (c *Client) FleetMetrics() (*fleet.Metrics, error) {
	if c.localFleet != nil {
		m := c.localFleet.Metrics()
		return &m, nil
	}
	if c.local != nil {
		return nil, fmt.Errorf("mqss: single-device client has no fleet")
	}
	resp, err := c.httpc.Get(c.baseURL + pathFleet)
	if err != nil {
		return nil, fmt.Errorf("mqss: GET fleet: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var m fleet.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("mqss: decoding fleet metrics: %w", err)
	}
	return &m, nil
}

// FleetDevice fetches one fleet backend's device info (properties plus the
// full calibration record including couplers).
func (c *Client) FleetDevice(name string) (*DeviceInfo, error) {
	if c.local != nil || c.localFleet != nil {
		return nil, fmt.Errorf("mqss: local clients query QDMI directly")
	}
	resp, err := c.httpc.Get(c.baseURL + pathDevice + "?device=" + url.QueryEscape(name))
	if err != nil {
		return nil, fmt.Errorf("mqss: GET device %q: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var info DeviceInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("mqss: decoding device info: %w", err)
	}
	return &info, nil
}

func decodeError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return fmt.Errorf("mqss: server %d: %s", resp.StatusCode, e.Error)
	}
	return fmt.Errorf("mqss: server returned %d", resp.StatusCode)
}
