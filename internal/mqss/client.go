package mqss

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/qdmi"
	"repro/internal/qrm"
	"repro/internal/telemetry/trace"
)

// AccessPath describes how a job reached the QRM.
type AccessPath string

const (
	// PathHPC is the tightly-coupled in-process accelerator path.
	PathHPC AccessPath = "hpc"
	// PathREST is the remote asynchronous API path.
	PathREST AccessPath = "rest"
)

// Client is the MQSS client of Fig. 2: "without requiring any code
// modifications from the user, the client automatically detects whether a
// job originates inside or outside an HPC environment and routes it
// accordingly". Inside the HPC environment the client holds a direct QRM
// handle; outside, it holds only a REST endpoint.
//
// Every method takes a context.Context: cancellation and deadlines
// propagate into HTTP round-trips, long-polls, watch streams, and local
// pipeline waits alike. Submit is the v2 entry point — async submission
// returning a JobHandle with Wait/Poll/Watch/Cancel — while Run, RunRouted
// and the batch helpers remain as compatibility shims built on the same
// machinery.
type Client struct {
	// Direct QRM handle; non-nil when running inside the HPC environment.
	local *qrm.Manager
	// Direct fleet handle; non-nil for in-HPC access to a multi-QPU fleet.
	localFleet *fleet.Scheduler
	// REST endpoint for remote access.
	baseURL string
	httpc   *http.Client
}

// NewLocalClient returns a client wired for in-HPC accelerator-style
// submission.
func NewLocalClient(m *qrm.Manager) *Client {
	return &Client{local: m}
}

// NewLocalFleetClient returns an in-HPC client over a multi-QPU fleet
// scheduler: submissions go through calibration-aware routing instead of a
// single QRM.
func NewLocalFleetClient(f *fleet.Scheduler) *Client {
	return &Client{localFleet: f}
}

// NewRemoteClient returns a client that reaches the stack over HTTP.
func NewRemoteClient(baseURL string, httpc *http.Client) *Client {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	return &Client{baseURL: baseURL, httpc: httpc}
}

// NewAutoClient performs the routing decision: if a local QRM is reachable
// (non-nil), the HPC path is used; otherwise the REST path. This mirrors the
// client-side auto-detection the paper describes.
func NewAutoClient(local *qrm.Manager, baseURL string, httpc *http.Client) *Client {
	if local != nil {
		return NewLocalClient(local)
	}
	return NewRemoteClient(baseURL, httpc)
}

// Path reports which access path this client uses.
func (c *Client) Path() AccessPath {
	if c.local != nil || c.localFleet != nil {
		return PathHPC
	}
	return PathREST
}

// --- HTTP plumbing ------------------------------------------------------

// doJSON issues one request with an optional JSON body and decodes the
// response into out (ignored when out is nil). wantStatus lists acceptable
// status codes; anything else decodes as an API error.
func (c *Client) doJSON(ctx context.Context, method, path string, body, out interface{}, header http.Header, wantStatus ...int) (int, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return 0, fmt.Errorf("mqss: encoding request: %w", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, rd)
	if err != nil {
		return 0, fmt.Errorf("mqss: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return 0, fmt.Errorf("mqss: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	ok := false
	for _, s := range wantStatus {
		if resp.StatusCode == s {
			ok = true
			break
		}
	}
	if !ok {
		return resp.StatusCode, decodeError(resp)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("mqss: decoding %s response: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}

// --- v2: async submission and the job handle ----------------------------

// Client-side retry policy. Retryable refusals — 429 rate_limited, 503
// offline, shed/interrupted job outcomes — are absorbed by the client so
// the caller sees one slow submission, not an error. Backoff is capped
// exponential with full jitter; a server Retry-After is honored as the
// floor of each sleep.
const (
	// submitRetryAttempts bounds pre-admission retries (429/503): the
	// request never created a job, so retrying is always safe.
	submitRetryAttempts = 8
	// resubmitAttempts bounds post-admission resubmissions of jobs that
	// terminated with a retryable envelope (shed, interrupted).
	resubmitAttempts = 5
	submitBackoffMin = 50 * time.Millisecond
	submitBackoffMax = 5 * time.Second
)

// backoffSleep sleeps for the attempt's jittered backoff (full jitter over
// an exponentially growing cap), never less than floor (the server's
// Retry-After, when present). Returns early with ctx.Err() on cancellation.
func backoffSleep(ctx context.Context, attempt int, floor time.Duration) error {
	max := submitBackoffMin << uint(attempt)
	if max > submitBackoffMax || max <= 0 {
		max = submitBackoffMax
	}
	d := time.Duration(rand.Int63n(int64(max) + 1))
	if d < floor {
		d = floor
	}
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryableAPIError extracts a retryable *APIError from err (nil when the
// error is not an API error or not retryable).
func retryableAPIError(err error) *APIError {
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.Retryable {
		return apiErr
	}
	return nil
}

// Submit accepts one job for asynchronous execution and returns its handle
// immediately — the v2 access model: submit, then Wait, Poll, Watch, or
// Cancel. idempotencyKey may be empty; a non-empty key makes remote retries
// safe (the server replays the original submission instead of duplicating
// it).
func (c *Client) Submit(ctx context.Context, req SubmitRequest, idempotencyKey string) (*JobHandle, error) {
	if c.localFleet != nil {
		opts := fleet.SubmitOptions{Device: req.Device}
		if req.Policy != "" {
			pol := fleet.Policy(req.Policy)
			if err := pol.Validate(); err != nil {
				return nil, err
			}
			opts.Policy = pol
		}
		id, err := c.localFleet.Submit(req.qrmRequest(), opts)
		if err != nil {
			return nil, err
		}
		return &JobHandle{c: c, ID: FormatJobID(id), id: id, req: &req, idemKey: idempotencyKey}, nil
	}
	if c.local != nil {
		if req.Device != "" || req.Policy != "" {
			return nil, fmt.Errorf("mqss: device/policy routing requires a fleet client")
		}
		id, err := c.local.Submit(req.qrmRequest())
		if err != nil {
			return nil, err
		}
		return &JobHandle{c: c, ID: FormatJobID(id), id: id, req: &req, idemKey: idempotencyKey}, nil
	}
	var hdr http.Header
	if idempotencyKey != "" {
		hdr = http.Header{"Idempotency-Key": {idempotencyKey}}
	}
	var job Job
	for attempt := 0; ; attempt++ {
		_, err := c.doJSON(ctx, http.MethodPost, pathV2Jobs, req, &job, hdr,
			http.StatusAccepted, http.StatusOK)
		if err == nil {
			break
		}
		// 429 rate_limited and 503 offline arrive before a job exists, so a
		// same-key retry can never duplicate work. Everything else (and
		// exhausted budgets) surfaces to the caller.
		apiErr := retryableAPIError(err)
		if apiErr == nil || attempt >= submitRetryAttempts {
			return nil, err
		}
		if serr := backoffSleep(ctx, attempt, apiErr.RetryAfter); serr != nil {
			return nil, serr
		}
	}
	id, err := ParseJobID(job.ID)
	if err != nil {
		return nil, fmt.Errorf("mqss: server returned %w", err)
	}
	return &JobHandle{c: c, ID: job.ID, id: id, last: &job, req: &req, idemKey: idempotencyKey}, nil
}

// Handle rebuilds a JobHandle from an opaque job ID (as returned by Submit,
// carried in a Location header, or listed by ListJobs) — the re-attach
// primitive: a process that crashed after submitting can resume watching.
func (c *Client) Handle(id string) (*JobHandle, error) {
	n, err := ParseJobID(id)
	if err != nil {
		return nil, err
	}
	return &JobHandle{c: c, ID: id, id: n}, nil
}

// JobHandle is a submitted job's remote control.
type JobHandle struct {
	c  *Client
	ID string // opaque v2 job ID
	id int    // backend-scoped numeric ID

	// last is the most recent record an operation observed (may be nil).
	last *Job

	// req/idemKey echo the original submission when the handle came from
	// Submit (nil/"" on handles rebuilt via Handle). They power transparent
	// resubmission: a job terminating with a retryable envelope — shed by
	// admission control, or interrupted by a restart — is resubmitted by
	// Wait/Watch instead of surfacing as a failure.
	req     *SubmitRequest
	idemKey string
	// resubmits counts transparent resubmissions already spent.
	resubmits int
}

// resubmit transparently re-enters the job when its terminal record is a
// retryable refusal (shed, interrupted). It reports whether the handle now
// points at a fresh submission the caller should keep waiting on. Handles
// without the original request (rebuilt via Handle) never resubmit, and the
// attempt budget bounds pathological loops against a permanently
// overloaded server.
func (h *JobHandle) resubmit(ctx context.Context, job *Job) (bool, error) {
	if h.req == nil || job == nil || job.Error == nil || !job.Error.Retryable {
		return false, nil
	}
	if h.resubmits >= resubmitAttempts {
		return false, nil
	}
	h.resubmits++
	if err := backoffSleep(ctx, h.resubmits, job.Error.RetryAfter); err != nil {
		return false, err
	}
	// The original idempotency key is bound to the job that just failed;
	// replaying it would return that same record forever. Derive a fresh,
	// deterministic-per-attempt key instead so the resubmission itself
	// stays safe to retry.
	key := h.idemKey
	if key != "" {
		key += "-r" + strconv.Itoa(h.resubmits)
	}
	nh, err := h.c.Submit(ctx, *h.req, key)
	if err != nil {
		return false, err
	}
	h.ID, h.id, h.last = nh.ID, nh.id, nh.last
	return true, nil
}

// Poll fetches the job's current record without blocking on completion.
func (h *JobHandle) Poll(ctx context.Context) (*Job, error) {
	j, err := h.c.V2Job(ctx, h.ID)
	if err == nil {
		h.last = j
	}
	return j, err
}

// waitPollInterval is the long-poll budget per round trip while waiting.
const waitPollInterval = 30 * time.Second

// Wait blocks until the job reaches a terminal state (or ctx ends) and
// returns the terminal record. Remotely it long-polls; locally it rides the
// pipeline's completion signal, falling back to synchronously driving the
// QRM when no dispatch workers are running (the tightly-coupled
// accelerator mode). Jobs that terminate with a retryable envelope (shed
// by admission control, interrupted by a restart) are transparently
// resubmitted — the caller sees one slow wait, not an error.
func (h *JobHandle) Wait(ctx context.Context) (*Job, error) {
	for {
		job, err := h.waitOnce(ctx)
		if err != nil {
			return nil, err
		}
		again, err := h.resubmit(ctx, job)
		if err != nil {
			return nil, err
		}
		if !again {
			return job, nil
		}
	}
}

// waitOnce brings the handle's current submission to a terminal record.
func (h *JobHandle) waitOnce(ctx context.Context) (*Job, error) {
	c := h.c
	switch {
	case c.localFleet != nil:
		fj, err := c.localFleet.WaitContext(ctx, h.id)
		if err != nil {
			return nil, err
		}
		j := v2FromFleet(fj, nil, true)
		h.last = j
		return j, nil
	case c.local != nil:
		rec, err := c.waitLocal(ctx, h.id)
		if err != nil {
			return nil, err
		}
		j := v2FromQRM(rec, "", true)
		h.last = j
		return j, nil
	}
	for {
		var job Job
		path := fmt.Sprintf("%s/%s?wait=%s", pathV2Jobs, h.ID, waitPollInterval)
		if _, err := c.doJSON(ctx, http.MethodGet, path, nil, &job, nil, http.StatusOK); err != nil {
			return nil, err
		}
		h.last = &job
		if job.State.Terminal() {
			return &job, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
}

// waitLocal brings a local QRM job to a terminal state: pipeline wait when
// workers run, synchronous Step-driving otherwise.
func (c *Client) waitLocal(ctx context.Context, id int) (*qrm.Job, error) {
	if c.local.Running() {
		return c.local.WaitJobContext(ctx, id)
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		j, err := c.local.Step()
		if err != nil {
			return nil, err
		}
		if j == nil {
			break
		}
		if j.ID == id {
			return c.local.Job(id)
		}
	}
	// The queue drained without dispatching our job (e.g. cancelled or
	// already terminal); report whatever record exists.
	j, err := c.local.Job(id)
	if err != nil {
		return nil, err
	}
	if !qrmTerminal(j.Status) {
		return nil, fmt.Errorf("mqss: job %d left non-terminal (%s) with no dispatch workers", id, j.Status)
	}
	return j, nil
}

func qrmTerminal(s qrm.JobStatus) bool {
	switch s {
	case qrm.StatusDone, qrm.StatusFailed, qrm.StatusInterrupted, qrm.StatusCancelled:
		return true
	}
	return false
}

// Cancel requests cancellation: queued/parked jobs cancel immediately,
// in-flight jobs settle cancelled at the pipeline's next stage boundary.
func (h *JobHandle) Cancel(ctx context.Context) error {
	c := h.c
	switch {
	case c.localFleet != nil:
		return c.localFleet.Cancel(h.id)
	case c.local != nil:
		return c.local.Cancel(h.id)
	}
	_, err := c.doJSON(ctx, http.MethodDelete, pathV2Jobs+"/"+h.ID, nil, nil, nil,
		http.StatusAccepted)
	return err
}

// Watch streams the job's lifecycle events — server push over the v2
// events endpoint (or the local event bus on the HPC path) — invoking fn
// for each (fn may be nil), and returns the terminal record. The first
// event is always a "snapshot" of the current state. Like Wait, terminal
// records carrying a retryable envelope are transparently resubmitted and
// the watch follows the fresh job.
func (h *JobHandle) Watch(ctx context.Context, fn func(JobEvent)) (*Job, error) {
	for {
		job, err := h.watchOnce(ctx, fn)
		if err != nil {
			return nil, err
		}
		again, err := h.resubmit(ctx, job)
		if err != nil {
			return nil, err
		}
		if !again {
			return job, nil
		}
	}
}

func (h *JobHandle) watchOnce(ctx context.Context, fn func(JobEvent)) (*Job, error) {
	c := h.c
	if c.local != nil || c.localFleet != nil {
		return h.watchLocal(ctx, fn)
	}
	for {
		terminal, err := h.watchStreamOnce(ctx, fn)
		if err != nil {
			return nil, err
		}
		if terminal {
			return h.Poll(ctx)
		}
		// The stream ended without a terminal event (server restart or
		// graceful shutdown of the watch). Back off before re-establishing:
		// a server mid-shutdown keeps accepting connections until its
		// listener closes, and an instant retry loop would spin against it.
		select {
		case <-time.After(watchReconnectDelay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// watchReconnectDelay paces Watch's stream re-establishment.
const watchReconnectDelay = 500 * time.Millisecond

// watchStreamOnce consumes one NDJSON events stream; terminal reports
// whether a terminal-state event arrived before the stream ended.
func (h *JobHandle) watchStreamOnce(ctx context.Context, fn func(JobEvent)) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		h.c.baseURL+pathV2Jobs+"/"+h.ID+"/events", nil)
	if err != nil {
		return false, fmt.Errorf("mqss: building watch request: %w", err)
	}
	resp, err := h.c.httpc.Do(req)
	if err != nil {
		return false, fmt.Errorf("mqss: GET events: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev JobEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return false, fmt.Errorf("mqss: decoding event: %w", err)
		}
		if ev.Reason == "server-closing" {
			return false, nil
		}
		if fn != nil {
			fn(ev)
		}
		if ev.State.Terminal() && ev.Reason != "cancel-requested" {
			return true, nil
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return false, fmt.Errorf("mqss: reading event stream: %w", err)
	}
	return false, ctx.Err()
}

// watchLocal follows the in-process event bus.
func (h *JobHandle) watchLocal(ctx context.Context, fn func(JobEvent)) (*Job, error) {
	c := h.c
	var bus *qrm.EventBus
	if c.localFleet != nil {
		bus = c.localFleet.Events()
	} else {
		bus = c.local.Events()
	}
	sub := bus.Subscribe(h.id, 32)
	defer sub.Close()

	job, err := h.Poll(ctx)
	if err != nil {
		return nil, err
	}
	if fn != nil {
		fn(JobEvent{JobID: job.ID, State: job.State, Device: job.Device, Reason: "snapshot"})
	}
	if job.State.Terminal() {
		return job, nil
	}
	if c.local != nil && !c.local.Running() {
		// No dispatch workers: drive the queue ourselves so the watch can
		// ever terminate (accelerator-mode semantics, same as Wait).
		go func() {
			for {
				j, err := c.local.Step()
				if err != nil || j == nil {
					return
				}
			}
		}()
	}
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				return nil, fmt.Errorf("mqss: event bus closed while watching job %s", h.ID)
			}
			state := stateFromEvent(ev.To)
			if fn != nil {
				fn(JobEvent{
					Seq: ev.Seq, JobID: FormatJobID(ev.JobID),
					State: state, Device: ev.Device, Reason: ev.Reason,
				})
			}
			if state.Terminal() && ev.Reason != "cancel-requested" {
				return h.Poll(ctx)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// V2Job fetches one unified job record by its opaque ID.
func (c *Client) V2Job(ctx context.Context, id string) (*Job, error) {
	n, err := ParseJobID(id)
	if err != nil {
		return nil, err
	}
	if c.localFleet != nil {
		fj, err := c.localFleet.Job(n)
		if err != nil {
			return nil, err
		}
		var devRec *qrm.Job
		if fj.Status == fleet.JobRouted {
			devRec, _ = c.localFleet.DeviceRecord(n)
		}
		return v2FromFleet(fj, devRec, true), nil
	}
	if c.local != nil {
		j, err := c.local.Job(n)
		if err != nil {
			return nil, err
		}
		return v2FromQRM(j, "", true), nil
	}
	var job Job
	if _, err := c.doJSON(ctx, http.MethodGet, pathV2Jobs+"/"+id, nil, &job, nil, http.StatusOK); err != nil {
		return nil, err
	}
	return &job, nil
}

// V2JobTrace fetches a job's span tree (GET /api/v2/jobs/{id}/trace).
// Local clients read the backend's retention ring directly. Returns an
// error when the trace was never recorded or has been evicted.
func (c *Client) V2JobTrace(ctx context.Context, id string) (*JobTrace, error) {
	n, err := ParseJobID(id)
	if err != nil {
		return nil, err
	}
	if c.local != nil || c.localFleet != nil {
		var tr *trace.Trace
		var state JobState
		if c.localFleet != nil {
			fj, err := c.localFleet.Job(n)
			if err != nil {
				return nil, err
			}
			state = v2FromFleet(fj, nil, false).State
			tr = c.localFleet.Trace(n)
		} else {
			j, err := c.local.Job(n)
			if err != nil {
				return nil, err
			}
			state = v2FromQRM(j, "", false).State
			tr = c.local.Trace(n)
		}
		snap := tr.Snapshot()
		if snap == nil {
			return nil, fmt.Errorf("mqss: no trace retained for job %s", id)
		}
		return &JobTrace{JobID: id, State: state, Snapshot: *snap}, nil
	}
	var jt JobTrace
	if _, err := c.doJSON(ctx, http.MethodGet, pathV2Jobs+"/"+id+"/trace", nil, &jt, nil, http.StatusOK); err != nil {
		return nil, err
	}
	return &jt, nil
}

// StoreStatus reads durable-store health from a v2 server
// (GET /api/v2/admin/store). Local clients talk straight to the scheduler
// and bypass the HTTP layer that owns the store, so this is remote-only.
func (c *Client) StoreStatus(ctx context.Context) (*StoreStatus, error) {
	if c.local != nil || c.localFleet != nil {
		return nil, fmt.Errorf("mqss: StoreStatus requires a remote client (the durable store is owned by the server process)")
	}
	var st StoreStatus
	if _, err := c.doJSON(ctx, http.MethodGet, pathV2AdminStore, nil, &st, nil, http.StatusOK); err != nil {
		return nil, err
	}
	return &st, nil
}

// TenantsStatus reads the multi-tenant admission snapshot from a v2 server
// (GET /api/v2/admin/tenants): per-tenant queue accounting, throttle
// counters, and the configured limits. Remote-only, like StoreStatus — the
// limiter lives in the HTTP layer.
func (c *Client) TenantsStatus(ctx context.Context) (*TenantsStatus, error) {
	if c.local != nil || c.localFleet != nil {
		return nil, fmt.Errorf("mqss: TenantsStatus requires a remote client (the rate limiter is owned by the server process)")
	}
	var ts TenantsStatus
	if _, err := c.doJSON(ctx, http.MethodGet, pathV2AdminTenants, nil, &ts, nil, http.StatusOK); err != nil {
		return nil, err
	}
	return &ts, nil
}

// ListOptions filter the v2 job listing.
type ListOptions struct {
	User   string
	States []JobState
	Cursor string
	Limit  int
}

// ListJobs pages through the v2 job listing, newest first; thread the
// returned NextCursor back in to continue.
func (c *Client) ListJobs(ctx context.Context, opts ListOptions) (*JobPage, error) {
	if c.local != nil || c.localFleet != nil {
		return nil, fmt.Errorf("mqss: local clients page the scheduler directly (ListJobs)")
	}
	q := url.Values{}
	if opts.User != "" {
		q.Set("user", opts.User)
	}
	if len(opts.States) > 0 {
		parts := make([]string, len(opts.States))
		for i, s := range opts.States {
			parts[i] = string(s)
		}
		q.Set("state", strings.Join(parts, ","))
	}
	if opts.Cursor != "" {
		q.Set("cursor", opts.Cursor)
	}
	if opts.Limit > 0 {
		q.Set("limit", fmt.Sprint(opts.Limit))
	}
	path := pathV2Jobs
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var page JobPage
	if _, err := c.doJSON(ctx, http.MethodGet, path, nil, &page, nil, http.StatusOK); err != nil {
		return nil, err
	}
	return &page, nil
}

// --- v1 compatibility shims ---------------------------------------------

// Run submits a job and waits for completion, whichever path is in use —
// the synchronous convenience call, now a shim over the async Submit/Wait
// machinery. On a fleet client the job goes through calibration-aware
// routing and the result comes back in the legacy single-device shape
// (device record keyed by the fleet job ID) — "without requiring any code
// modifications from the user". Use RunRouted for the full routing
// envelope.
func (c *Client) Run(ctx context.Context, req qrm.Request) (*qrm.Job, error) {
	if c.localFleet != nil {
		j, err := c.RunRouted(ctx, req, RouteOptions{})
		if err != nil {
			return nil, err
		}
		return flattenFleetJob(j), nil
	}
	h, err := c.Submit(ctx, submitFromRequest(req), "")
	if err != nil {
		return nil, err
	}
	job, err := h.Wait(ctx)
	if err != nil {
		return nil, err
	}
	out := job.toQRMJob()
	if out.Request.Circuit == nil {
		out.Request.Circuit = req.Circuit
	}
	return out, nil
}

// submitFromRequest lifts a legacy request onto the v2 submission shape.
func submitFromRequest(req qrm.Request) SubmitRequest {
	return SubmitRequest{
		Circuit:         req.Circuit,
		Shots:           req.Shots,
		User:            req.User,
		Priority:        req.Priority,
		DeadlineMs:      req.DeadlineMs,
		StaticPlacement: req.StaticPlacement,
	}
}

// decodeJobPayload decodes a job record that may be either the single-device
// shape (qrm.Job) or a fleet envelope (fleet.Job, carrying the device record
// under "result") — a legacy client pointed at a fleet server transparently
// gets the flattened device record, keeping "no code modifications from the
// user" true across deployment shapes.
func decodeJobPayload(data []byte) (*qrm.Job, error) {
	var probe struct {
		Device string          `json:"device"`
		Result json.RawMessage `json:"result"`
		Status string          `json:"status"`
	}
	// A fleet envelope carries a device/result, or — for a job parked with
	// no eligible backend, which has neither — one of the fleet-only status
	// values ("pending"/"routed" are not qrm statuses). Probe errors fall
	// through to the strict qrm.Job decode below.
	if json.Unmarshal(data, &probe) == nil &&
		(probe.Device != "" || len(probe.Result) > 0 ||
			probe.Status == string(fleet.JobPending) || probe.Status == string(fleet.JobRouted)) {
		var fj fleet.Job
		if err := json.Unmarshal(data, &fj); err != nil {
			return nil, fmt.Errorf("mqss: decoding fleet job: %w", err)
		}
		return flattenFleetJob(&fj), nil
	}
	var job qrm.Job
	if err := json.Unmarshal(data, &job); err != nil {
		return nil, fmt.Errorf("mqss: decoding job: %w", err)
	}
	return &job, nil
}

// RunBatch submits several circuits as one batch and returns the completed
// jobs in submission order. Results are consumed as they complete (streamed
// per-job over the HPC path's WaitJob or the REST path's NDJSON endpoint).
func (c *Client) RunBatch(ctx context.Context, reqs []qrm.Request) ([]*qrm.Job, error) {
	return c.StreamBatch(ctx, reqs, nil)
}

// StreamBatch submits a batch and invokes onJob for every job *as it
// completes* — the per-job completion streaming of the dispatch pipeline.
// It returns all completed jobs in submission order. onJob may be nil.
func (c *Client) StreamBatch(ctx context.Context, reqs []qrm.Request, onJob func(*qrm.Job)) ([]*qrm.Job, error) {
	if c.localFleet != nil {
		var flatOn func(*fleet.Job)
		if onJob != nil {
			flatOn = func(j *fleet.Job) { onJob(flattenFleetJob(j)) }
		}
		jobs, err := c.StreamBatchRouted(ctx, reqs, RouteOptions{}, flatOn)
		if err != nil {
			return nil, err
		}
		out := make([]*qrm.Job, len(jobs))
		for i, j := range jobs {
			out[i] = flattenFleetJob(j)
		}
		return out, nil
	}
	if c.local != nil {
		return c.streamBatchLocal(reqs, onJob)
	}
	return c.streamBatchRemote(ctx, reqs, onJob)
}

func (c *Client) streamBatchLocal(reqs []qrm.Request, onJob func(*qrm.Job)) ([]*qrm.Job, error) {
	_, ids, err := c.local.SubmitBatch(reqs)
	if err != nil {
		return nil, err
	}
	byID := make(map[int]*qrm.Job, len(ids))
	if c.local.Running() {
		// Pipeline mode: deliver jobs in completion order.
		var firstErr error
		c.local.WaitEach(ids, func(id int, j *qrm.Job, err error) {
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			if onJob != nil {
				onJob(j)
			}
			byID[id] = j
		})
		if firstErr != nil {
			return nil, firstErr
		}
	} else {
		if _, err := c.local.Drain(); err != nil {
			return nil, err
		}
		for _, id := range ids {
			j, err := c.local.Job(id)
			if err != nil {
				return nil, err
			}
			if onJob != nil {
				onJob(j)
			}
			byID[id] = j
		}
	}
	out := make([]*qrm.Job, 0, len(ids))
	for _, id := range ids {
		out = append(out, byID[id])
	}
	return out, nil
}

func (c *Client) streamBatchRemote(ctx context.Context, reqs []qrm.Request, onJob func(*qrm.Job)) ([]*qrm.Job, error) {
	body, err := json.Marshal(reqs)
	if err != nil {
		return nil, fmt.Errorf("mqss: encoding batch: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.baseURL+pathJobsBatch+"?stream=1", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("mqss: building batch request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("mqss: POST %s: %w", pathJobsBatch, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return nil, decodeError(resp)
	}
	dec := json.NewDecoder(resp.Body)
	var header struct {
		BatchID int   `json:"batch_id"`
		JobIDs  []int `json:"job_ids"`
	}
	if err := dec.Decode(&header); err != nil {
		return nil, fmt.Errorf("mqss: decoding batch header: %w", err)
	}
	byID := make(map[int]*qrm.Job, len(header.JobIDs))
	for range header.JobIDs {
		var line json.RawMessage
		if err := dec.Decode(&line); err != nil {
			return nil, fmt.Errorf("mqss: decoding streamed job: %w", err)
		}
		job, err := decodeJobPayload(line)
		if err != nil {
			return nil, err
		}
		if onJob != nil {
			onJob(job)
		}
		byID[job.ID] = job
	}
	out := make([]*qrm.Job, 0, len(header.JobIDs))
	for _, id := range header.JobIDs {
		j, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("mqss: job %d missing from batch stream", id)
		}
		out = append(out, j)
	}
	return out, nil
}

// Metrics fetches the server's dispatch-pipeline metrics snapshot over REST.
// Fleet clients/servers expose a fleet-shaped snapshot instead: use
// FleetMetrics.
func (c *Client) Metrics(ctx context.Context) (*qrm.Metrics, error) {
	if c.localFleet != nil {
		return nil, fmt.Errorf("mqss: fleet client; use FleetMetrics")
	}
	if c.local != nil {
		snap := c.local.Metrics()
		return &snap, nil
	}
	var snap qrm.Metrics
	if _, err := c.doJSON(ctx, http.MethodGet, pathMetrics, nil, &snap, nil, http.StatusOK); err != nil {
		return nil, err
	}
	return &snap, nil
}

// Job fetches a job record by ID (legacy v1 shape; see V2Job for the
// unified resource).
func (c *Client) Job(ctx context.Context, id int) (*qrm.Job, error) {
	if c.localFleet != nil {
		j, err := c.localFleet.Job(id)
		if err != nil {
			return nil, err
		}
		return flattenFleetJob(j), nil
	}
	if c.local != nil {
		return c.local.Job(id)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s%s/%d", c.baseURL, pathJobs, id), nil)
	if err != nil {
		return nil, fmt.Errorf("mqss: building job request: %w", err)
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("mqss: GET job %d: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("mqss: reading job %d: %w", id, err)
	}
	return decodeJobPayload(data)
}

// History fetches a page of job history.
func (c *Client) History(ctx context.Context, user string, offset, limit int) (*qrm.Page, error) {
	if c.localFleet != nil {
		fp, err := c.localFleet.History(user, offset, limit)
		if err != nil {
			return nil, err
		}
		page := &qrm.Page{Total: fp.Total, Offset: fp.Offset, Limit: fp.Limit, HasMore: fp.HasMore}
		for _, j := range fp.Jobs {
			page.Jobs = append(page.Jobs, flattenFleetJob(j))
		}
		return page, nil
	}
	if c.local != nil {
		return c.local.History(user, offset, limit)
	}
	path := fmt.Sprintf("%s?offset=%d&limit=%d&user=%s", pathJobs, offset, limit, url.QueryEscape(user))
	// Decode with raw job entries so a fleet server's envelope records can
	// be flattened per job (see decodeJobPayload).
	var raw struct {
		Jobs    []json.RawMessage `json:"jobs"`
		Total   int               `json:"total"`
		Offset  int               `json:"offset"`
		Limit   int               `json:"limit"`
		HasMore bool              `json:"has_more"`
	}
	if _, err := c.doJSON(ctx, http.MethodGet, path, nil, &raw, nil, http.StatusOK); err != nil {
		return nil, err
	}
	page := &qrm.Page{Total: raw.Total, Offset: raw.Offset, Limit: raw.Limit, HasMore: raw.HasMore}
	for _, data := range raw.Jobs {
		j, err := decodeJobPayload(data)
		if err != nil {
			return nil, err
		}
		page.Jobs = append(page.Jobs, j)
	}
	return page, nil
}

// DeviceInfo is the REST device summary. Calibration carries the full
// record — per-qubit parameters and the per-coupler CZ fidelities (via the
// device.Calibration edge-list JSON encoding).
type DeviceInfo struct {
	Properties      qdmi.Properties     `json:"properties"`
	Fidelity1Q      float64             `json:"fidelity_1q"`
	FidelityReadout float64             `json:"fidelity_readout"`
	FidelityCZ      float64             `json:"fidelity_cz"`
	CalibrationAgeH float64             `json:"calibration_age_h"`
	Calibration     *device.Calibration `json:"calibration,omitempty"`
}

// Device fetches device properties over REST. (Local clients should use
// their QDMI handle directly.)
func (c *Client) Device(ctx context.Context) (*DeviceInfo, error) {
	if c.local != nil {
		return nil, fmt.Errorf("mqss: local clients query QDMI directly")
	}
	var info DeviceInfo
	if _, err := c.doJSON(ctx, http.MethodGet, pathDevice, nil, &info, nil, http.StatusOK); err != nil {
		return nil, err
	}
	return &info, nil
}

// RouteOptions tune a fleet submission: pin a device and/or override the
// routing policy for this call.
type RouteOptions struct {
	Device string
	Policy string
}

func (o RouteOptions) submitOptions() (fleet.SubmitOptions, error) {
	opts := fleet.SubmitOptions{Device: o.Device}
	if o.Policy != "" {
		p := fleet.Policy(o.Policy)
		if err := p.Validate(); err != nil {
			return opts, err
		}
		opts.Policy = p
	}
	return opts, nil
}

// flattenFleetJob converts a fleet job into the legacy single-device record
// shape: the device-level result re-keyed under the fleet job ID, so
// single-device call sites work unchanged against a fleet.
func flattenFleetJob(j *fleet.Job) *qrm.Job {
	if j == nil {
		return nil
	}
	if j.Result != nil {
		cp := *j.Result
		cp.ID = j.ID
		return &cp
	}
	status := qrm.StatusQueued
	switch j.Status {
	case fleet.JobDone:
		status = qrm.StatusDone
	case fleet.JobFailed:
		status = qrm.StatusFailed
	case fleet.JobCancelled:
		status = qrm.StatusCancelled
	}
	return &qrm.Job{ID: j.ID, Status: status, Request: j.Request, Error: j.Error}
}

// RunRouted submits a job through the fleet scheduler and waits for it to
// settle (including any drain/failover migrations), returning the full
// fleet record: which device ran it, the routing score, migration count,
// and the device-level result. Valid against a fleet client or server —
// remotely it is a shim over the v2 submit/wait machinery.
func (c *Client) RunRouted(ctx context.Context, req qrm.Request, opts RouteOptions) (*fleet.Job, error) {
	if c.localFleet != nil {
		so, err := opts.submitOptions()
		if err != nil {
			return nil, err
		}
		id, err := c.localFleet.Submit(req, so)
		if err != nil {
			return nil, err
		}
		return c.localFleet.WaitContext(ctx, id)
	}
	if c.local != nil {
		return nil, fmt.Errorf("mqss: single-device client; use Run")
	}
	sreq := submitFromRequest(req)
	sreq.Device = opts.Device
	sreq.Policy = opts.Policy
	h, err := c.Submit(ctx, sreq, "")
	if err != nil {
		return nil, err
	}
	job, err := h.Wait(ctx)
	if err != nil {
		return nil, err
	}
	out := job.toFleetJob()
	if out.Request.Circuit == nil {
		out.Request.Circuit = req.Circuit
	}
	return out, nil
}

// StreamBatchRouted submits a batch through the fleet and invokes onJob for
// every job as it settles, in completion order; the batch may span devices.
// It returns all fleet records in submission order. onJob may be nil.
func (c *Client) StreamBatchRouted(ctx context.Context, reqs []qrm.Request, opts RouteOptions, onJob func(*fleet.Job)) ([]*fleet.Job, error) {
	if c.localFleet != nil {
		so, err := opts.submitOptions()
		if err != nil {
			return nil, err
		}
		_, ids, err := c.localFleet.SubmitBatch(reqs, so)
		if err != nil {
			return nil, err
		}
		byID := make(map[int]*fleet.Job, len(ids))
		var firstErr error
		c.localFleet.WaitEach(ids, func(id int, j *fleet.Job, err error) {
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			if onJob != nil {
				onJob(j)
			}
			byID[id] = j
		})
		if firstErr != nil {
			return nil, firstErr
		}
		out := make([]*fleet.Job, 0, len(ids))
		for _, id := range ids {
			out = append(out, byID[id])
		}
		return out, nil
	}
	if c.local != nil {
		return nil, fmt.Errorf("mqss: single-device client; use StreamBatch")
	}
	body, err := json.Marshal(reqs)
	if err != nil {
		return nil, fmt.Errorf("mqss: encoding batch: %w", err)
	}
	q := url.Values{"stream": {"1"}}
	if opts.Device != "" {
		q.Set("device", opts.Device)
	}
	if opts.Policy != "" {
		q.Set("policy", opts.Policy)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.baseURL+pathJobsBatch+"?"+q.Encode(), bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("mqss: building batch request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("mqss: POST %s: %w", pathJobsBatch, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return nil, decodeError(resp)
	}
	dec := json.NewDecoder(resp.Body)
	var header struct {
		BatchID int   `json:"batch_id"`
		JobIDs  []int `json:"job_ids"`
	}
	if err := dec.Decode(&header); err != nil {
		return nil, fmt.Errorf("mqss: decoding batch header: %w", err)
	}
	byID := make(map[int]*fleet.Job, len(header.JobIDs))
	for range header.JobIDs {
		var job fleet.Job
		if err := dec.Decode(&job); err != nil {
			return nil, fmt.Errorf("mqss: decoding streamed fleet job: %w", err)
		}
		if onJob != nil {
			onJob(&job)
		}
		byID[job.ID] = &job
	}
	out := make([]*fleet.Job, 0, len(header.JobIDs))
	for _, id := range header.JobIDs {
		j, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("mqss: job %d missing from batch stream", id)
		}
		out = append(out, j)
	}
	return out, nil
}

// FleetMetrics fetches the fleet status/metrics snapshot (GET
// /api/v1/fleet): per-device state, queue depths, routed/migrated/failed
// counters, fidelity means, and score histograms.
func (c *Client) FleetMetrics(ctx context.Context) (*fleet.Metrics, error) {
	if c.localFleet != nil {
		m := c.localFleet.Metrics()
		return &m, nil
	}
	if c.local != nil {
		return nil, fmt.Errorf("mqss: single-device client has no fleet")
	}
	var m fleet.Metrics
	if _, err := c.doJSON(ctx, http.MethodGet, pathFleet, nil, &m, nil, http.StatusOK); err != nil {
		return nil, err
	}
	return &m, nil
}

// FleetDevice fetches one fleet backend's device info (properties plus the
// full calibration record including couplers).
func (c *Client) FleetDevice(ctx context.Context, name string) (*DeviceInfo, error) {
	if c.local != nil || c.localFleet != nil {
		return nil, fmt.Errorf("mqss: local clients query QDMI directly")
	}
	var info DeviceInfo
	path := pathDevice + "?device=" + url.QueryEscape(name)
	if _, err := c.doJSON(ctx, http.MethodGet, path, nil, &info, nil, http.StatusOK); err != nil {
		return nil, err
	}
	return &info, nil
}

// decodeError reads an error response in either wire shape: the v1
// `{"error"}` body or the v2 structured envelope (returned as *APIError so
// callers can branch on Code/Retryable).
func decodeError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var v2 APIError
	if json.Unmarshal(data, &v2) == nil && v2.Code != "" {
		// Surface the server's pacing hint so retry loops can honor it.
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
				v2.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return &v2
	}
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return fmt.Errorf("mqss: server %d: %s", resp.StatusCode, e.Error)
	}
	return fmt.Errorf("mqss: server returned %d", resp.StatusCode)
}
