package mqss

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/qdmi"
	"repro/internal/qrm"
)

// AccessPath describes how a job reached the QRM.
type AccessPath string

const (
	// PathHPC is the tightly-coupled in-process accelerator path.
	PathHPC AccessPath = "hpc"
	// PathREST is the remote asynchronous API path.
	PathREST AccessPath = "rest"
)

// Client is the MQSS client of Fig. 2: "without requiring any code
// modifications from the user, the client automatically detects whether a
// job originates inside or outside an HPC environment and routes it
// accordingly". Inside the HPC environment the client holds a direct QRM
// handle; outside, it holds only a REST endpoint.
type Client struct {
	// Direct QRM handle; non-nil when running inside the HPC environment.
	local *qrm.Manager
	// REST endpoint for remote access.
	baseURL string
	httpc   *http.Client
}

// NewLocalClient returns a client wired for in-HPC accelerator-style
// submission.
func NewLocalClient(m *qrm.Manager) *Client {
	return &Client{local: m}
}

// NewRemoteClient returns a client that reaches the stack over HTTP.
func NewRemoteClient(baseURL string, httpc *http.Client) *Client {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	return &Client{baseURL: baseURL, httpc: httpc}
}

// NewAutoClient performs the routing decision: if a local QRM is reachable
// (non-nil), the HPC path is used; otherwise the REST path. This mirrors the
// client-side auto-detection the paper describes.
func NewAutoClient(local *qrm.Manager, baseURL string, httpc *http.Client) *Client {
	if local != nil {
		return NewLocalClient(local)
	}
	return NewRemoteClient(baseURL, httpc)
}

// Path reports which access path this client uses.
func (c *Client) Path() AccessPath {
	if c.local != nil {
		return PathHPC
	}
	return PathREST
}

// Run submits a job and waits for completion, whichever path is in use.
func (c *Client) Run(req qrm.Request) (*qrm.Job, error) {
	if c.local != nil {
		return c.runLocal(req)
	}
	return c.runRemote(req)
}

func (c *Client) runLocal(req qrm.Request) (*qrm.Job, error) {
	id, err := c.local.Submit(req)
	if err != nil {
		return nil, err
	}
	// With the dispatch pipeline running, the workers own execution: block
	// until they complete our job.
	if c.local.Running() {
		return c.local.WaitJob(id)
	}
	// Tightly-coupled loop: drive the QRM synchronously until our job is
	// done (low-latency accelerator semantics).
	for {
		j, err := c.local.Step()
		if err != nil {
			return nil, err
		}
		if j == nil {
			break
		}
		if j.ID == id {
			return c.local.Job(id)
		}
	}
	return nil, fmt.Errorf("mqss: job %d vanished from the queue", id)
}

func (c *Client) runRemote(req qrm.Request) (*qrm.Job, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("mqss: encoding request: %w", err)
	}
	resp, err := c.httpc.Post(c.baseURL+pathJobs, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("mqss: POST %s: %w", pathJobs, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return nil, decodeError(resp)
	}
	var job qrm.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		return nil, fmt.Errorf("mqss: decoding job: %w", err)
	}
	return &job, nil
}

// RunBatch submits several circuits as one batch and returns the completed
// jobs in submission order. Results are consumed as they complete (streamed
// per-job over the HPC path's WaitJob or the REST path's NDJSON endpoint).
func (c *Client) RunBatch(reqs []qrm.Request) ([]*qrm.Job, error) {
	return c.StreamBatch(reqs, nil)
}

// StreamBatch submits a batch and invokes onJob for every job *as it
// completes* — the per-job completion streaming of the dispatch pipeline.
// It returns all completed jobs in submission order. onJob may be nil.
func (c *Client) StreamBatch(reqs []qrm.Request, onJob func(*qrm.Job)) ([]*qrm.Job, error) {
	if c.local != nil {
		return c.streamBatchLocal(reqs, onJob)
	}
	return c.streamBatchRemote(reqs, onJob)
}

func (c *Client) streamBatchLocal(reqs []qrm.Request, onJob func(*qrm.Job)) ([]*qrm.Job, error) {
	_, ids, err := c.local.SubmitBatch(reqs)
	if err != nil {
		return nil, err
	}
	byID := make(map[int]*qrm.Job, len(ids))
	if c.local.Running() {
		// Pipeline mode: deliver jobs in completion order.
		var firstErr error
		c.local.WaitEach(ids, func(id int, j *qrm.Job, err error) {
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			if onJob != nil {
				onJob(j)
			}
			byID[id] = j
		})
		if firstErr != nil {
			return nil, firstErr
		}
	} else {
		if _, err := c.local.Drain(); err != nil {
			return nil, err
		}
		for _, id := range ids {
			j, err := c.local.Job(id)
			if err != nil {
				return nil, err
			}
			if onJob != nil {
				onJob(j)
			}
			byID[id] = j
		}
	}
	out := make([]*qrm.Job, 0, len(ids))
	for _, id := range ids {
		out = append(out, byID[id])
	}
	return out, nil
}

func (c *Client) streamBatchRemote(reqs []qrm.Request, onJob func(*qrm.Job)) ([]*qrm.Job, error) {
	body, err := json.Marshal(reqs)
	if err != nil {
		return nil, fmt.Errorf("mqss: encoding batch: %w", err)
	}
	resp, err := c.httpc.Post(c.baseURL+pathJobsBatch+"?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("mqss: POST %s: %w", pathJobsBatch, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return nil, decodeError(resp)
	}
	dec := json.NewDecoder(resp.Body)
	var header struct {
		BatchID int   `json:"batch_id"`
		JobIDs  []int `json:"job_ids"`
	}
	if err := dec.Decode(&header); err != nil {
		return nil, fmt.Errorf("mqss: decoding batch header: %w", err)
	}
	byID := make(map[int]*qrm.Job, len(header.JobIDs))
	for range header.JobIDs {
		var job qrm.Job
		if err := dec.Decode(&job); err != nil {
			return nil, fmt.Errorf("mqss: decoding streamed job: %w", err)
		}
		if onJob != nil {
			onJob(&job)
		}
		byID[job.ID] = &job
	}
	out := make([]*qrm.Job, 0, len(header.JobIDs))
	for _, id := range header.JobIDs {
		j, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("mqss: job %d missing from batch stream", id)
		}
		out = append(out, j)
	}
	return out, nil
}

// Metrics fetches the server's dispatch-pipeline metrics snapshot over REST.
func (c *Client) Metrics() (*qrm.Metrics, error) {
	if c.local != nil {
		snap := c.local.Metrics()
		return &snap, nil
	}
	resp, err := c.httpc.Get(c.baseURL + pathMetrics)
	if err != nil {
		return nil, fmt.Errorf("mqss: GET metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var snap qrm.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("mqss: decoding metrics: %w", err)
	}
	return &snap, nil
}

// Job fetches a job record by ID.
func (c *Client) Job(id int) (*qrm.Job, error) {
	if c.local != nil {
		return c.local.Job(id)
	}
	resp, err := c.httpc.Get(fmt.Sprintf("%s%s/%d", c.baseURL, pathJobs, id))
	if err != nil {
		return nil, fmt.Errorf("mqss: GET job %d: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var job qrm.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		return nil, fmt.Errorf("mqss: decoding job: %w", err)
	}
	return &job, nil
}

// History fetches a page of job history.
func (c *Client) History(user string, offset, limit int) (*qrm.Page, error) {
	if c.local != nil {
		return c.local.History(user, offset, limit)
	}
	url := fmt.Sprintf("%s%s?offset=%d&limit=%d&user=%s", c.baseURL, pathJobs, offset, limit, user)
	resp, err := c.httpc.Get(url)
	if err != nil {
		return nil, fmt.Errorf("mqss: GET history: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var page qrm.Page
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return nil, fmt.Errorf("mqss: decoding page: %w", err)
	}
	return &page, nil
}

// DeviceInfo is the REST device summary.
type DeviceInfo struct {
	Properties      qdmi.Properties `json:"properties"`
	Fidelity1Q      float64         `json:"fidelity_1q"`
	FidelityReadout float64         `json:"fidelity_readout"`
	FidelityCZ      float64         `json:"fidelity_cz"`
	CalibrationAgeH float64         `json:"calibration_age_h"`
}

// Device fetches device properties over REST. (Local clients should use
// their QDMI handle directly.)
func (c *Client) Device() (*DeviceInfo, error) {
	if c.local != nil {
		return nil, fmt.Errorf("mqss: local clients query QDMI directly")
	}
	resp, err := c.httpc.Get(c.baseURL + pathDevice)
	if err != nil {
		return nil, fmt.Errorf("mqss: GET device: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var info DeviceInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("mqss: decoding device info: %w", err)
	}
	return &info, nil
}

func decodeError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return fmt.Errorf("mqss: server %d: %s", resp.StatusCode, e.Error)
	}
	return fmt.Errorf("mqss: server returned %d", resp.StatusCode)
}
