package mqss

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/circuit"
	"repro/internal/qrm"
)

// newRunningStack builds a stack with the dispatch pipeline started.
func newRunningStack(t *testing.T, seed int64, workers int) (*qrm.Manager, *httptest.Server) {
	t.Helper()
	m, dev := newStack(seed)
	if err := m.Start(workers); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	srv := httptest.NewServer(NewServer(m, dev))
	t.Cleanup(srv.Close)
	return m, srv
}

func TestServerFallsBackWhenPipelineStops(t *testing.T) {
	// The pipeline/synchronous choice is per request: a server built while
	// the pipeline ran must still execute jobs after the pipeline stops.
	m, dev := newStack(40)
	if err := m.Start(1); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(m, dev))
	defer srv.Close()
	c := NewRemoteClient(srv.URL, srv.Client())
	if j, err := c.Run(context.Background(), qrm.Request{Circuit: circuit.GHZ(2), Shots: 5}); err != nil || j.Status != qrm.StatusDone {
		t.Fatalf("pipeline-mode job = %+v, %v", j, err)
	}
	m.Stop()
	j, err := c.Run(context.Background(), qrm.Request{Circuit: circuit.GHZ(2), Shots: 5})
	if err != nil {
		t.Fatal(err)
	}
	if j.Status != qrm.StatusDone {
		t.Errorf("post-stop job = %s, want done via AutoRun fallback", j.Status)
	}
}

func TestWaitJobUnblocksOnStop(t *testing.T) {
	m, _ := newStack(46)
	if err := m.Start(1); err != nil {
		t.Fatal(err)
	}
	// Flood the single worker so at least one job is still queued when we
	// stop, then verify a blocked WaitJob returns an error instead of
	// hanging.
	var ids []int
	for i := 0; i < 30; i++ {
		id, err := m.Submit(qrm.Request{Circuit: circuit.GHZ(4), Shots: 50})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	waited := make(chan error, len(ids))
	for _, id := range ids {
		go func(id int) {
			_, err := m.WaitJob(id)
			waited <- err
		}(id)
	}
	m.Stop()
	for range ids {
		<-waited // must all return, error or not — a hang fails the test timeout
	}
}

func TestSubmitAgainstRunningPipeline(t *testing.T) {
	_, srv := newRunningStack(t, 41, 2)
	c := NewRemoteClient(srv.URL, srv.Client())
	job, err := c.Run(context.Background(), qrm.Request{Circuit: circuit.GHZ(4), Shots: 50, User: "async"})
	if err != nil {
		t.Fatal(err)
	}
	if job.Status != qrm.StatusDone {
		t.Fatalf("status = %s (%s)", job.Status, job.Error)
	}
}

func TestBatchStreamDeliversPerJobCompletions(t *testing.T) {
	_, srv := newRunningStack(t, 42, 4)
	c := NewRemoteClient(srv.URL, srv.Client())
	reqs := make([]qrm.Request, 8)
	for i := range reqs {
		reqs[i] = qrm.Request{Circuit: circuit.GHZ(2 + i%3), Shots: 10, User: "stream"}
	}
	var streamed int32
	jobs, err := c.StreamBatch(context.Background(), reqs, func(j *qrm.Job) {
		atomic.AddInt32(&streamed, 1)
		if j.Status != qrm.StatusDone {
			t.Errorf("streamed job %d status %s", j.ID, j.Status)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 8 || streamed != 8 {
		t.Fatalf("jobs = %d, streamed = %d, want 8/8", len(jobs), streamed)
	}
	// Returned order is submission order even though delivery was
	// completion-ordered.
	for i := 1; i < len(jobs); i++ {
		if jobs[i].ID <= jobs[i-1].ID {
			t.Errorf("jobs not in submission order: %d after %d", jobs[i].ID, jobs[i-1].ID)
		}
	}
	for _, j := range jobs {
		if j.Request.BatchID == 0 {
			t.Error("batch ID missing on streamed job")
		}
	}
}

func TestBatchStreamFalseValuesDisableStreaming(t *testing.T) {
	_, srv := newRunningStack(t, 47, 2)
	body := `[{"circuit":{"num_qubits":2,"gates":[{"name":"h","qubits":[0]}]},"shots":5}]`
	for _, v := range []string{"0", "false"} {
		resp, err := srv.Client().Post(srv.URL+"/api/v1/jobs/batch?stream="+v,
			"application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var created struct {
			BatchID int   `json:"batch_id"`
			JobIDs  []int `json:"job_ids"`
		}
		err = json.NewDecoder(resp.Body).Decode(&created)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("stream=%s: %v", v, err)
		}
		if created.BatchID == 0 || len(created.JobIDs) != 1 {
			t.Errorf("stream=%s: plain batch response = %+v", v, created)
		}
	}
}

func TestBatchStreamWithoutPipelineFallsBack(t *testing.T) {
	m, dev := newStack(43)
	srv := httptest.NewServer(NewServer(m, dev))
	defer srv.Close()
	c := NewRemoteClient(srv.URL, srv.Client())
	jobs, err := c.RunBatch(context.Background(), []qrm.Request{
		{Circuit: circuit.GHZ(2), Shots: 10},
		{Circuit: circuit.GHZ(3), Shots: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.Status != qrm.StatusDone {
			t.Errorf("fallback job %d = %s", j.ID, j.Status)
		}
	}
}

// TestBatchEndpointConcurrentClients is the mqss half of the -race
// workout: many clients hammer the batch endpoint of one running pipeline.
func TestBatchEndpointConcurrentClients(t *testing.T) {
	m, srv := newRunningStack(t, 44, 8)
	const clients = 6
	const perBatch = 5
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewRemoteClient(srv.URL, srv.Client())
			reqs := make([]qrm.Request, perBatch)
			for k := range reqs {
				reqs[k] = qrm.Request{Circuit: circuit.GHZ(2 + (i+k)%3), Shots: 5, User: "swarm"}
			}
			jobs, err := c.RunBatch(context.Background(), reqs)
			if err != nil {
				errs <- err
				return
			}
			for _, j := range jobs {
				if j.Status != qrm.StatusDone {
					t.Errorf("client %d job %d = %s (%s)", i, j.ID, j.Status, j.Error)
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	snap := m.Metrics()
	if snap.Completed != clients*perBatch {
		t.Errorf("completed = %d, want %d", snap.Completed, clients*perBatch)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, srv := newRunningStack(t, 45, 2)
	c := NewRemoteClient(srv.URL, srv.Client())
	if _, err := c.Run(context.Background(), qrm.Request{Circuit: circuit.GHZ(3), Shots: 10, User: "m"}); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Workers != 2 || snap.Completed != 1 || snap.Submitted != 1 {
		t.Errorf("metrics = %+v", snap)
	}
	if snap.E2EMs.Count != 1 {
		t.Errorf("e2e histogram count = %d, want 1", snap.E2EMs.Count)
	}
}
