package mqss

// Golden-fixture contract tests: the JSON wire shapes of the v1 and v2
// APIs are pinned under testdata/ and any drift fails the fast CI job —
// renaming a field, dropping one, or changing an error body is loud and
// deliberate (regenerate with -update) instead of silent.
//
// Responses are canonicalized before comparison: every numeric leaf is
// zeroed (timings, counts, ids vary run to run; the *fields* are the
// contract) and the outcome-keyed "counts" histogram — whose keys
// themselves are samples — collapses to {}. Strings and booleans stay, so
// lifecycle states, error codes and messages are all pinned byte-for-byte.

import (
	"bytes"
	"encoding/json"
	"flag"

	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/qdmi"
)

var updateGolden = flag.Bool("update", false, "rewrite contract golden files")

// canonicalize normalizes a JSON body for golden comparison.
func canonicalize(t *testing.T, data []byte) string {
	t.Helper()
	var v interface{}
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, data)
	}
	v = normalizeJSON(v, "")
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(out) + "\n"
}

func normalizeJSON(v interface{}, key string) interface{} {
	switch x := v.(type) {
	case map[string]interface{}:
		if key == "counts" {
			// Outcome-keyed histogram: the keys are samples, not schema.
			return map[string]interface{}{}
		}
		for k, val := range x {
			x[k] = normalizeJSON(val, k)
		}
		return x
	case []interface{}:
		for i := range x {
			x[i] = normalizeJSON(x[i], key)
		}
		return x
	case float64:
		return 0
	case string:
		if key == "compile_stats" || key == "next_cursor" {
			// Free-text stats and opaque cursors vary with content.
			return "<opaque>"
		}
		return x
	default:
		return v
	}
}

// checkGolden compares a canonicalized body against testdata/<name>.golden.json.
func checkGolden(t *testing.T, name string, body []byte) {
	t.Helper()
	got := canonicalize(t, body)
	path := filepath.Join("testdata", name+".golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (regenerate with `go test ./internal/mqss -run TestContract -update`): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("wire-format drift against %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// contractDo issues a request and returns status + body.
func contractDo(t *testing.T, srv *httptest.Server, method, path string, body interface{}, header map[string]string) (int, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, srv.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func TestContractV1(t *testing.T) {
	_, server := pacedStack(t, 80, 0, 0) // synchronous AutoRun: deterministic shapes
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)

	req := map[string]interface{}{
		"circuit": circuit.GHZ(3), "shots": 20, "user": "contract",
	}
	status, body := contractDo(t, srv, http.MethodPost, "/api/v1/jobs", req, nil)
	if status != http.StatusCreated {
		t.Fatalf("v1 submit = %d\n%s", status, body)
	}
	checkGolden(t, "v1_submit", body)

	_, body = contractDo(t, srv, http.MethodGet, "/api/v1/jobs/1", nil, nil)
	checkGolden(t, "v1_job", body)

	_, body = contractDo(t, srv, http.MethodGet, "/api/v1/jobs?limit=2", nil, nil)
	checkGolden(t, "v1_history", body)

	status, body = contractDo(t, srv, http.MethodGet, "/api/v1/jobs/424242", nil, nil)
	if status != http.StatusNotFound {
		t.Errorf("unknown job = %d", status)
	}
	checkGolden(t, "v1_error_not_found", body)

	status, body = contractDo(t, srv, http.MethodGet, "/api/v1/jobs/zzz", nil, nil)
	if status != http.StatusBadRequest {
		t.Errorf("bad id = %d", status)
	}
	checkGolden(t, "v1_error_bad_id", body)

	status, body = contractDo(t, srv, http.MethodDelete, "/api/v1/jobs", nil, nil)
	if status != http.StatusMethodNotAllowed {
		t.Errorf("bad method = %d", status)
	}
	checkGolden(t, "v1_error_method", body)

	_, body = contractDo(t, srv, http.MethodGet, "/api/v1/metrics", nil, nil)
	checkGolden(t, "v1_metrics", body)

	_, body = contractDo(t, srv, http.MethodGet, "/healthz", nil, nil)
	checkGolden(t, "v1_healthz", body)
}

func TestContractV2(t *testing.T) {
	_, server := pacedStack(t, 81, 0, 0)
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)

	sreq := SubmitRequest{Circuit: circuit.GHZ(3), Shots: 20, User: "contract", Priority: 1}

	// Async accept: 202 + Location + non-terminal body.
	server.AutoRun = false
	status, body := contractDo(t, srv, http.MethodPost, "/api/v2/jobs", sreq, nil)
	if status != http.StatusAccepted {
		t.Fatalf("v2 submit = %d\n%s", status, body)
	}
	checkGolden(t, "v2_submit_accepted", body)

	// Completed record via wait long-poll (AutoRun drains).
	server.AutoRun = true
	status, body = contractDo(t, srv, http.MethodPost, "/api/v2/jobs?wait=10s", sreq, nil)
	if status != http.StatusOK {
		t.Fatalf("v2 submit?wait = %d\n%s", status, body)
	}
	checkGolden(t, "v2_job_done", body)

	_, body = contractDo(t, srv, http.MethodGet, "/api/v2/jobs?limit=1", nil, nil)
	checkGolden(t, "v2_list", body)

	status, body = contractDo(t, srv, http.MethodGet, "/api/v2/jobs/j-424242", nil, nil)
	if status != http.StatusNotFound {
		t.Errorf("v2 unknown job = %d", status)
	}
	checkGolden(t, "v2_error_not_found", body)

	status, body = contractDo(t, srv, http.MethodGet, "/api/v2/jobs/zzz", nil, nil)
	if status != http.StatusBadRequest {
		t.Errorf("v2 bad id = %d", status)
	}
	checkGolden(t, "v2_error_bad_id", body)

	status, body = contractDo(t, srv, http.MethodPut, "/api/v2/jobs", nil, nil)
	if status != http.StatusMethodNotAllowed {
		t.Errorf("v2 bad method = %d", status)
	}
	checkGolden(t, "v2_error_method", body)

	// Cancel of a terminal job: the conflict envelope.
	status, body = contractDo(t, srv, http.MethodDelete, "/api/v2/jobs/j-2", nil, nil)
	if status != http.StatusConflict {
		t.Errorf("v2 cancel terminal = %d\n%s", status, body)
	}
	checkGolden(t, "v2_error_conflict", body)

	// Watch stream of a terminal job: exactly the snapshot event line.
	_, body = contractDo(t, srv, http.MethodGet, "/api/v2/jobs/j-2/events", nil, nil)
	checkGolden(t, "v2_events_snapshot", body)
}

// TestContractV2Trace pins the span-tree wire shape: span names, nesting,
// and attribute keys are API surface (qhpcctl trace and dashboards parse
// them); timings are zeroed by canonicalization like every other numeric.
func TestContractV2Trace(t *testing.T) {
	_, server := pacedStack(t, 83, 0, 0)
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)

	sreq := SubmitRequest{Circuit: circuit.GHZ(3), Shots: 20, User: "contract"}
	// A fixed client request id keeps the root span's request_id attr
	// deterministic for the golden.
	status, body := contractDo(t, srv, http.MethodPost, "/api/v2/jobs?wait=10s", sreq,
		map[string]string{"X-Request-ID": "req-contract-1"})
	if status != http.StatusOK {
		t.Fatalf("v2 submit?wait = %d\n%s", status, body)
	}

	status, body = contractDo(t, srv, http.MethodGet, "/api/v2/jobs/j-1/trace", nil, nil)
	if status != http.StatusOK {
		t.Fatalf("v2 trace = %d\n%s", status, body)
	}
	checkGolden(t, "v2_trace", body)
}

func TestContractV2Fleet(t *testing.T) {
	f := newTestFleet(t, map[string]*qdmi.Device{
		"alpha": twinDev(t, "alpha", 4, 5, 82),
	}, 1)
	srv := httptest.NewServer(NewFleetServer(f))
	t.Cleanup(srv.Close)

	sreq := SubmitRequest{Circuit: circuit.GHZ(3), Shots: 10, User: "contract", Device: "alpha"}
	status, body := contractDo(t, srv, http.MethodPost, "/api/v2/jobs?wait=10s", sreq, nil)
	if status != http.StatusOK {
		t.Fatalf("v2 fleet submit = %d\n%s", status, body)
	}
	checkGolden(t, "v2_fleet_job_done", body)

	// v1 fleet envelope stays intact for legacy clients.
	req := map[string]interface{}{"circuit": circuit.GHZ(3), "shots": 10, "user": "contract"}
	status, body = contractDo(t, srv, http.MethodPost, "/api/v1/jobs?device=alpha", req, nil)
	if status != http.StatusCreated {
		t.Fatalf("v1 fleet submit = %d\n%s", status, body)
	}
	checkGolden(t, "v1_fleet_submit", body)
}

// TestContractV2Admission pins the admission-control wire surface: the
// uniform envelopes for malformed query parameters, the 429 rate-limit
// refusal (with its Retry-After header), and the admin tenants snapshot.
func TestContractV2Admission(t *testing.T) {
	_, server := pacedStack(t, 84, 0, 0)
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)

	sreq := SubmitRequest{Circuit: circuit.GHZ(3), Shots: 20, User: "contract"}

	// Malformed ?wait= / ?cursor=: structured invalid_request envelopes,
	// never a bare-text 400.
	status, body := contractDo(t, srv, http.MethodPost, "/api/v2/jobs?wait=bogus", sreq, nil)
	if status != http.StatusBadRequest {
		t.Errorf("bad wait = %d\n%s", status, body)
	}
	checkGolden(t, "v2_error_bad_wait", body)

	status, body = contractDo(t, srv, http.MethodGet, "/api/v2/jobs?cursor=%21%21", nil, nil)
	if status != http.StatusBadRequest {
		t.Errorf("bad cursor = %d\n%s", status, body)
	}
	checkGolden(t, "v2_error_bad_cursor", body)

	// Token bucket of one: the second immediate submission is refused 429
	// with a Retry-After hint and a retryable envelope.
	server.SetTenantLimits(0.5, 1)
	if status, body := contractDo(t, srv, http.MethodPost, "/api/v2/jobs?wait=10s", sreq, nil); status != http.StatusOK {
		t.Fatalf("first submit = %d\n%s", status, body)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/api/v2/jobs", bytes.NewReader(mustJSON(t, sreq)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("throttled submit = %d\n%s", resp.StatusCode, buf.Bytes())
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 missing Retry-After header")
	}
	checkGolden(t, "v2_error_rate_limited", buf.Bytes())

	_, body = contractDo(t, srv, http.MethodGet, "/api/v2/admin/tenants", nil, nil)
	checkGolden(t, "v2_admin_tenants", body)
}

func mustJSON(t *testing.T, v interface{}) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestContractGoldensPresent fails fast (with a helpful message) when the
// fixture directory is missing entirely — e.g. a fresh checkout that lost
// testdata.
func TestContractGoldensPresent(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating")
	}
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatalf("testdata missing: %v (regenerate with -update)", err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".golden.json") {
			n++
		}
	}
	if n < 10 {
		t.Fatalf("only %d golden fixtures present; expected the full contract set", n)
	}
}
