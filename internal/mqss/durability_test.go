package mqss

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/durable"
	"repro/internal/fleet"
	"repro/internal/qdmi"
)

// durableStack builds a fleet server backed by a crash-durable store in
// dir, restoring whatever a previous incarnation left there (cold start on
// an empty dir).
func durableStack(t *testing.T, dir string) (*fleet.Scheduler, *Server, *httptest.Server, *durable.Store) {
	t.Helper()
	st, opened, err := durable.Open(dir, durable.Options{Sync: durable.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	f := fleet.New(fleet.PolicyBestFidelity, nil)
	for name, seed := range map[string]int64{"alpha": 1, "beta": 2} {
		if err := f.AddDevice(name, twinDev(t, name, 4, 5, seed), 2); err != nil {
			t.Fatal(err)
		}
	}
	f.AttachStore(st)
	rs, err := f.Restore(opened.FleetJobs)
	if err != nil {
		t.Fatal(err)
	}
	st.NoteRestore(rs.Terminal, rs.Requeued, rs.Expired)
	server := NewFleetServer(f)
	server.AttachStore(st, opened.Idem)
	hs := httptest.NewServer(server)
	return f, server, hs, st
}

// TestIdempotencyAcrossRestart is the chaos regression for the durability
// contract clients actually depend on: submit with an Idempotency-Key, kill
// the node (store abandoned mid-flight), reboot from the same data dir, and
// re-submit the same key. The replay must return the SAME v2 job ID with
// the Idempotency-Replayed header, the completed work must not run again,
// and the recovered job must still carry its terminal result.
func TestIdempotencyAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	f1, server1, hs1, st1 := durableStack(t, dir)

	req := SubmitRequest{Circuit: circuit.GHZ(3), Shots: 10, User: "chaos"}
	hdr := map[string]string{"Idempotency-Key": "chaos-key"}
	resp := postV2(t, hs1, "/api/v2/jobs?wait=10s", req, hdr)
	first := decodeV2Job(t, resp.Body)
	resp.Body.Close()
	if !first.State.Terminal() || first.State != StateDone {
		t.Fatalf("pre-crash job did not finish: %+v", first)
	}

	// kill -9: the store loses anything unflushed, the process vanishes.
	st1.Abandon()
	server1.Close()
	hs1.Close()
	f1.Stop()

	// Reboot from the same directory.
	f2, server2, hs2, _ := durableStack(t, dir)
	defer func() { server2.Close(); hs2.Close(); f2.Stop() }()

	// Same key after the restart: same ID, marked replayed, no re-execution.
	resp = postV2(t, hs2, "/api/v2/jobs", req, hdr)
	replayed := decodeV2Job(t, resp.Body)
	if resp.Header.Get("Idempotency-Replayed") != "true" {
		t.Error("post-restart replay missing Idempotency-Replayed header")
	}
	resp.Body.Close()
	if replayed.ID != first.ID {
		t.Fatalf("idempotency broke across restart: got %s, want %s", replayed.ID, first.ID)
	}
	if replayed.State != StateDone || !replayed.Recovered {
		t.Fatalf("replayed job should be the recovered terminal record: %+v", replayed)
	}
	if len(replayed.Counts) == 0 {
		t.Error("recovered job lost its measurement counts")
	}

	// The dedup must have bound to the restored job, not created a second
	// one: the job list still holds exactly one job.
	list, err := httpGetJSON(hs2.URL + "/api/v2/jobs")
	if err != nil {
		t.Fatal(err)
	}
	if jobs, ok := list["jobs"].([]interface{}); !ok || len(jobs) != 1 {
		t.Fatalf("restart+replay changed the job count: %v", list["jobs"])
	}

	// A different key is still a fresh job on the rebooted node.
	resp = postV2(t, hs2, "/api/v2/jobs?wait=10s", req, map[string]string{"Idempotency-Key": "other-key"})
	other := decodeV2Job(t, resp.Body)
	resp.Body.Close()
	if other.ID == first.ID {
		t.Error("distinct key deduped against the recovered job")
	}
}

// TestInterruptedEnvelope pins the wire contract for jobs the restart could
// not save: the v2 error envelope must be {code:"interrupted"} and
// retryable, keyed off the qrm restore error message.
func TestInterruptedEnvelope(t *testing.T) {
	env := jobErrorEnvelope("failed", "interrupted by restart: dispatch deadline passed during recovery")
	if env == nil || env.Code != CodeInterrupted || !env.Retryable {
		t.Fatalf("interrupted envelope wrong: %+v", env)
	}
}

// TestAdminStoreEndpoint covers /api/v2/admin/store in both states: a
// storeless server reports attached=false, an attached one reports live WAL
// counters, and writes are rejected.
func TestAdminStoreEndpoint(t *testing.T) {
	// Storeless server.
	f := newTestFleet(t, map[string]*qdmi.Device{"solo": twinDev(t, "solo", 4, 5, 3)}, 2)
	hs := httptest.NewServer(NewFleetServer(f))
	t.Cleanup(hs.Close)
	body, err := httpGetJSON(hs.URL + "/api/v2/admin/store")
	if err != nil {
		t.Fatal(err)
	}
	if attached, _ := body["attached"].(bool); attached {
		t.Fatalf("storeless server claims a store: %v", body)
	}

	// Attached server, after real traffic.
	f2, server2, hs2, _ := durableStack(t, t.TempDir())
	t.Cleanup(func() { server2.Close(); hs2.Close(); f2.Stop() })
	resp := postV2(t, hs2, "/api/v2/jobs?wait=10s", SubmitRequest{Circuit: circuit.GHZ(2), Shots: 5, User: "admin"}, nil)
	decodeV2Job(t, resp.Body)
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	status, err := NewRemoteClient(hs2.URL, hs2.Client()).StoreStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !status.Attached || status.SyncMode != string(durable.SyncAlways) {
		t.Fatalf("store status wrong: %+v", status)
	}
	if status.LastLSN == 0 || status.DurableLSN < status.LastLSN || status.Appends == 0 || status.Fsyncs == 0 {
		t.Fatalf("store counters did not move: %+v", status)
	}

	// Writes are not part of the surface.
	req, _ := http.NewRequest(http.MethodPost, hs2.URL+"/api/v2/admin/store", nil)
	wresp, err := hs2.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	wresp.Body.Close()
	if wresp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST admin/store = %d, want 405", wresp.StatusCode)
	}

	// The local client has no store plumbing — it must say so, not lie.
	if _, err := NewLocalFleetClient(f2).StoreStatus(ctx); err == nil {
		t.Error("local client StoreStatus should error")
	}
}
