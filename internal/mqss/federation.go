package mqss

// Federation glue: any member of a qhpcd federation serves the whole v2
// job API. Submissions are placed by rendezvous hash on (tenant,
// idempotency-key) and forwarded to their owner; reads, cancels, watch
// streams, and traces on jobs another node owns are transparently
// proxied there (the job ID names its owner — see internal/federation).
// X-Request-ID and the federation headers ride along, so the owner's
// trace gains a cross-node leg and the client's request id correlates
// end to end.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/federation"
)

const pathV2Federation = "/api/v2/federation"

// fedUnaryTimeout bounds unary proxied calls (reads, cancels, forwarded
// submits) so a wedged owner that accepts TCP but never answers cannot
// hold the proxying handler open forever. It must exceed maxWait: a
// proxied ?wait= long-poll is still a unary exchange. Watch streams are
// exempt — they are legitimately unbounded and rely on the inbound
// request context instead.
const fedUnaryTimeout = maxWait + 10*time.Second

// fedProxyHeaders are the request headers a proxied call carries to the
// owner node verbatim.
var fedProxyHeaders = []string{
	"X-Request-ID", "Accept", "Content-Type", "Idempotency-Key",
}

// fedResponseHeaders are the owner's response headers passed back to the
// client unchanged.
var fedResponseHeaders = []string{
	"Content-Type", "Location", "Retry-After", "Idempotency-Replayed", "Cache-Control",
}

// AttachFederation joins this server to a federation: it registers the
// /api/v2/federation/* endpoints and turns on transparent ownership
// routing for the v2 job API. Call it before the server starts serving
// (it mutates the mux), and after AttachStore on restarting nodes so
// recovered jobs are already in place when peers start proxying.
func (s *Server) AttachFederation(f *federation.Node) {
	s.fed = f
	s.fedClient = &http.Client{} // no global timeout: watch streams are long-lived
	s.mux.HandleFunc(pathV2Federation+"/", withRequestID(s.handleV2Federation))
}

// Federation returns the attached federation node (nil standalone).
func (s *Server) Federation() *federation.Node { return s.fed }

// handleV2Federation routes /api/v2/federation/{status,heartbeat,owner}.
func (s *Server) handleV2Federation(w http.ResponseWriter, r *http.Request) {
	sub := strings.TrimPrefix(r.URL.Path, pathV2Federation+"/")
	switch sub {
	case "status":
		if r.Method != http.MethodGet {
			writeV2Error(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
				fmt.Sprintf("method %s not allowed", r.Method), false)
			return
		}
		writeJSON(w, http.StatusOK, s.fed.Status())
	case "heartbeat":
		s.fed.HandleHeartbeat(w, r)
	case "owner":
		if r.Method != http.MethodGet {
			writeV2Error(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
				fmt.Sprintf("method %s not allowed", r.Method), false)
			return
		}
		id, err := ParseJobID(r.URL.Query().Get("id"))
		if err != nil {
			writeV2Error(w, http.StatusBadRequest, CodeInvalidRequest, err.Error(), false)
			return
		}
		info, ok := s.fed.Owner(id)
		if !ok {
			writeV2Error(w, http.StatusNotFound, CodeNotFound,
				fmt.Sprintf("job id %s is outside every member's range", FormatJobID(id)), false)
			return
		}
		writeJSON(w, http.StatusOK, info)
	default:
		writeV2Error(w, http.StatusNotFound, CodeNotFound,
			fmt.Sprintf("no federation resource %q", sub), false)
	}
}

// FederationStatus reads the membership table from a v2 server
// (GET /api/v2/federation/status). Remote-only, like StoreStatus — the
// federation layer lives in the server process.
func (c *Client) FederationStatus(ctx context.Context) (*federation.Status, error) {
	if c.local != nil || c.localFleet != nil {
		return nil, fmt.Errorf("mqss: FederationStatus requires a remote client (federation is owned by the server process)")
	}
	var st federation.Status
	if _, err := c.doJSON(ctx, http.MethodGet, pathV2Federation+"/status", nil, &st, nil, http.StatusOK); err != nil {
		return nil, err
	}
	return &st, nil
}

// fedJobOwner resolves which remote member owns a job ID. proxied is
// false when the job is local (or the server is not federated), in which
// case the caller serves it as usual.
func (s *Server) fedJobOwner(id int) (owner string, proxied bool) {
	if s.fed == nil {
		return "", false
	}
	owner = s.fed.OwnerOfJobID(id)
	if owner == "" || owner == s.fed.Self() {
		return "", false
	}
	return owner, true
}

// fedProxy relays the current request to owner and streams the response
// back. body overrides the request body (forwarded submits re-send the
// decoded request); nil means no body. stream selects flush-per-chunk
// pass-through for watch streams.
//
// Two refusal paths, both deliberate:
//   - A request that was already proxied once must not hop again — the
//     two nodes disagree about ownership, which is a configuration error
//     (mismatched member lists), not a transient.
//   - A dead owner is answered 503 retryable instead of re-placing the
//     job: the owner's durable store is authoritative and will recover
//     it on restart, and re-placing risks double execution.
func (s *Server) fedProxy(w http.ResponseWriter, r *http.Request, owner string, body io.Reader, stream bool) {
	if from := r.Header.Get(federation.HeaderForwardedFrom); from != "" {
		s.fed.NoteProxyError()
		writeV2Error(w, http.StatusBadGateway, CodeInternal,
			fmt.Sprintf("federation directory inconsistency: node %s does not own this job but the request was already proxied from %s (member lists disagree)",
				s.fed.Self(), from), false)
		return
	}
	if !s.fed.Alive(owner) {
		s.fed.NoteProxyError()
		w.Header().Set("Retry-After", "1")
		writeV2Error(w, http.StatusServiceUnavailable, CodeUnavailable,
			fmt.Sprintf("owner node %q is down; retry — its durable store recovers the job when it restarts", owner), true)
		return
	}
	url := s.fed.PeerURL(owner) + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	ctx := r.Context()
	if !stream {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, fedUnaryTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, url, body)
	if err != nil {
		writeV2Error(w, http.StatusInternalServerError, CodeInternal, err.Error(), false)
		return
	}
	for _, h := range fedProxyHeaders {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	req.Header.Set(federation.HeaderNode, s.fed.Self())
	req.Header.Set(federation.HeaderForwardedFrom, s.fed.Self())
	resp, err := s.fedClient.Do(req)
	if err != nil {
		s.fed.NoteProxyError()
		w.Header().Set("Retry-After", "1")
		writeV2Error(w, http.StatusServiceUnavailable, CodeUnavailable,
			fmt.Sprintf("proxy to owner node %q failed: %v", owner, err), true)
		return
	}
	defer resp.Body.Close()
	s.fed.MarkSeen(owner)
	for _, h := range fedResponseHeaders {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(federation.HeaderNode, owner)
	w.WriteHeader(resp.StatusCode)
	if !stream {
		_, _ = io.Copy(w, resp.Body)
		return
	}
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}
