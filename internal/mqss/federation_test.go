package mqss

// End-to-end federation tests: N in-process fleet servers joined into one
// federation over real HTTP, exercising hash placement with forwarded
// submits, owner proxying for reads/cancels/watch streams, the loop
// guard, dead-owner refusals, and the qhpc_fed_* exposition.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/federation"
	"repro/internal/qdmi"
)

type fedMember struct {
	name   string
	server *Server
	hs     *httptest.Server
	fed    *federation.Node
}

// fedStack builds n federated fleet servers (one device each) with
// heartbeats running at hb. Returned members are cleaned up by t.
func fedStack(t *testing.T, n int, hb, dead time.Duration) []*fedMember {
	t.Helper()
	members := make([]*fedMember, n)
	urls := map[string]string{}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("node-%c", 'a'+i)
		f := newTestFleet(t, map[string]*qdmi.Device{
			"dev-" + name: twinDev(t, "dev-"+name, 4, 5, int64(40+i)),
		}, 2)
		server := NewFleetServer(f)
		hs := httptest.NewServer(server)
		t.Cleanup(func() { server.Close(); hs.Close() })
		urls[name] = hs.URL
		members[i] = &fedMember{name: name, server: server, hs: hs}
	}
	for _, m := range members {
		peers := map[string]string{}
		for id, u := range urls {
			if id != m.name {
				peers[id] = u
			}
		}
		fed, err := federation.New(federation.Config{
			NodeID: m.name, SelfURL: urls[m.name], Peers: peers,
			HeartbeatEvery: hb, DeadAfter: dead,
		})
		if err != nil {
			t.Fatal(err)
		}
		m.fed = fed
		m.server.fleet.SetIDBase(fed.SelfBase())
		m.server.fleet.SetIDLimit(fed.SelfLimit())
		m.server.fleet.SetNodeID(m.name)
		m.server.AttachFederation(fed)
		t.Cleanup(fed.Close)
	}
	if hb > 0 {
		for _, m := range members {
			m.fed.Start()
		}
	}
	return members
}

func byName(members []*fedMember, name string) *fedMember {
	for _, m := range members {
		if m.name == name {
			return m
		}
	}
	return nil
}

// other returns any member that is not name.
func other(members []*fedMember, name string) *fedMember {
	for _, m := range members {
		if m.name != name {
			return m
		}
	}
	return nil
}

func TestFederationForwardedSubmitAndProxy(t *testing.T) {
	members := fedStack(t, 3, 0, 0)
	entry := members[0]

	req := SubmitRequest{Circuit: circuit.GHZ(3), Shots: 10, User: "fed-tenant"}
	hdr := map[string]string{"Idempotency-Key": "fed-key-1"}
	resp := postV2(t, entry.hs, "/api/v2/jobs?wait=10s", req, hdr)
	job := decodeV2Job(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || job.State != StateDone {
		t.Fatalf("federated submit = %d, state %s", resp.StatusCode, job.State)
	}
	wantOwner := entry.fed.PlaceJob("fed-tenant", "fed-key-1")
	if job.Node != wantOwner {
		t.Fatalf("job landed on %q, rendezvous owner is %q", job.Node, wantOwner)
	}
	if job.Device != "dev-"+wantOwner {
		t.Fatalf("job executed on %q, want the owner's device", job.Device)
	}
	if owner := entry.fed.OwnerOfJobID(mustParseJobID(t, job.ID)); owner != wantOwner {
		t.Fatalf("ID %s maps to owner %q, want %q", job.ID, owner, wantOwner)
	}
	if wantOwner != entry.name {
		if m := entry.fed.Metrics(); m.ForwardedSubmits == 0 {
			t.Fatalf("submit crossed nodes but forwarded counter = %+v", m)
		}
	}

	// The job reads identically through every member.
	for _, m := range members {
		status, body := contractDo(t, m.hs, http.MethodGet, "/api/v2/jobs/"+job.ID, nil, nil)
		if status != http.StatusOK {
			t.Fatalf("GET via %s = %d\n%s", m.name, status, body)
		}
		var got Job
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if got.Node != wantOwner || got.State != StateDone || got.ID != job.ID {
			t.Fatalf("via %s: got node=%q state=%s id=%s", m.name, got.Node, got.State, got.ID)
		}
	}

	// Same key through a DIFFERENT entry node replays the original
	// submission instead of executing twice.
	resp = postV2(t, other(members, wantOwner).hs, "/api/v2/jobs", req, hdr)
	replayed := decodeV2Job(t, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("Idempotency-Replayed") != "true" {
		t.Fatalf("cross-node replay missing Idempotency-Replayed header (status %d)", resp.StatusCode)
	}
	if replayed.ID != job.ID {
		t.Fatalf("cross-node replay returned %s, want %s", replayed.ID, job.ID)
	}

	// The proxied trace shows the cross-node leg when the submit hopped.
	if wantOwner != entry.name {
		status, body := contractDo(t, entry.hs, http.MethodGet, "/api/v2/jobs/"+job.ID+"/trace", nil, nil)
		if status != http.StatusOK {
			t.Fatalf("proxied trace = %d\n%s", status, body)
		}
		if !bytes.Contains(body, []byte("fed-forward")) || !bytes.Contains(body, []byte(entry.name)) {
			t.Fatalf("trace lacks the fed-forward leg from %s:\n%s", entry.name, body)
		}
	}

	// The federation status and owner directory answer on every node.
	var st federation.Status
	status, body := contractDo(t, entry.hs, http.MethodGet, "/api/v2/federation/status", nil, nil)
	if status != http.StatusOK {
		t.Fatalf("federation status = %d", status)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Nodes != 3 || st.Alive != 3 {
		t.Fatalf("status = %+v", st)
	}
	var info federation.OwnerInfo
	status, body = contractDo(t, other(members, wantOwner).hs, http.MethodGet,
		"/api/v2/federation/owner?id="+job.ID, nil, nil)
	if status != http.StatusOK {
		t.Fatalf("owner lookup = %d\n%s", status, body)
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Node != wantOwner {
		t.Fatalf("owner lookup = %+v, want node %q", info, wantOwner)
	}
}

func TestFederationCrossNodeWatchAndCancel(t *testing.T) {
	members := fedStack(t, 2, 0, 0)
	entry := members[0]

	// Find a key owned by the OTHER node so the watch must proxy.
	key, owner := "", ""
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("watch-key-%d", i)
		if o := entry.fed.PlaceJob("watcher", k); o != entry.name {
			key, owner = k, o
			break
		}
	}
	if key == "" {
		t.Fatal("no key hashed to the peer in 64 tries")
	}

	req := SubmitRequest{Circuit: circuit.GHZ(4), Shots: 10, User: "watcher"}
	resp := postV2(t, entry.hs, "/api/v2/jobs", req, map[string]string{"Idempotency-Key": key})
	job := decodeV2Job(t, resp.Body)
	resp.Body.Close()
	if job.Node != owner {
		t.Fatalf("job on %q, want %q", job.Node, owner)
	}

	// Watch via the NON-owner node: the stream proxies to the owner and
	// must deliver a terminal event.
	wresp, err := http.Get(entry.hs.URL + "/api/v2/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	if ct := wresp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Fatalf("proxied watch content-type = %q", ct)
	}
	sawTerminal := false
	sc := bufio.NewScanner(wresp.Body)
	for sc.Scan() {
		var ev JobEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		if ev.State.Terminal() {
			sawTerminal = true
			break
		}
	}
	if !sawTerminal {
		t.Fatal("proxied watch stream ended without a terminal event")
	}
	if m := entry.fed.Metrics(); m.ProxiedStreams == 0 {
		t.Fatalf("watch crossed nodes but stream counter = %+v", m)
	}

	// Cancel through the non-owner: a fresh queued job on the peer.
	key2 := ""
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("cancel-key-%d", i)
		if entry.fed.PlaceJob("watcher", k) != entry.name {
			key2 = k
			break
		}
	}
	resp = postV2(t, entry.hs, "/api/v2/jobs", req, map[string]string{"Idempotency-Key": key2})
	job2 := decodeV2Job(t, resp.Body)
	resp.Body.Close()
	dreq, _ := http.NewRequest(http.MethodDelete, entry.hs.URL+"/api/v2/jobs/"+job2.ID, nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	// Accepted (202) when the cancel landed in time, conflict (409) when
	// the 2-worker pool already finished it; both prove the proxy path.
	if dresp.StatusCode != http.StatusAccepted && dresp.StatusCode != http.StatusConflict {
		t.Fatalf("proxied cancel = %d", dresp.StatusCode)
	}
}

func TestFederationLoopGuardAndDeadOwner(t *testing.T) {
	members := fedStack(t, 2, 15*time.Millisecond, 90*time.Millisecond)
	a, b := members[0], members[1]

	// Loop guard: a request claiming it was already proxied, sent to a
	// node that does not own the job, is a membership misconfiguration
	// and must fail loudly rather than hop again.
	foreign := FormatJobID(b.fed.SelfBase() + 1) // owned by b
	greq, _ := http.NewRequest(http.MethodGet, a.hs.URL+"/api/v2/jobs/"+foreign, nil)
	greq.Header.Set(federation.HeaderForwardedFrom, "node-x")
	gresp, err := http.DefaultClient.Do(greq)
	if err != nil {
		t.Fatal(err)
	}
	defer gresp.Body.Close()
	if gresp.StatusCode != http.StatusBadGateway {
		t.Fatalf("double-proxied request = %d, want 502", gresp.StatusCode)
	}

	// Dead owner: kill b — its heartbeater first (a real crash takes both),
	// wait for the verdict, then ask a for a job b owns — a retryable 503,
	// never a silent re-placement.
	b.fed.Close()
	b.server.Close()
	b.hs.Close()
	deadline := time.Now().Add(3 * time.Second)
	for a.fed.Alive(b.name) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if a.fed.Alive(b.name) {
		t.Fatal("peer never declared dead")
	}
	status, body := contractDo(t, a.hs, http.MethodGet, "/api/v2/jobs/"+foreign, nil, nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("read of dead owner's job = %d\n%s", status, body)
	}
	var apiErr APIError
	if err := json.Unmarshal(body, &apiErr); err != nil {
		t.Fatal(err)
	}
	if apiErr.Code != CodeUnavailable || !apiErr.Retryable {
		t.Fatalf("dead-owner envelope = %+v, want retryable unavailable", apiErr)
	}
}

func TestFederationMetricsExposition(t *testing.T) {
	members := fedStack(t, 2, 0, 0)
	entry := members[0]
	req := SubmitRequest{Circuit: circuit.GHZ(3), Shots: 5, User: "prom-fed"}
	if status, body := contractDo(t, entry.hs, http.MethodPost, "/api/v2/jobs?wait=10s", req, nil); status != http.StatusOK {
		t.Fatalf("submit = %d\n%s", status, body)
	}
	families := checkExposition(t, scrapeMetrics(t, entry.hs))
	for _, want := range []string{
		"qhpc_fed_peers_alive", "qhpc_fed_peers_dead",
		"qhpc_fed_heartbeats_sent_total", "qhpc_fed_heartbeats_failed_total",
		"qhpc_fed_forwarded_submits_total", "qhpc_fed_proxied_reads_total",
		"qhpc_fed_proxied_streams_total", "qhpc_fed_proxy_errors_total",
	} {
		if !families[want] {
			t.Errorf("federated /metrics lacks %s", want)
		}
	}
}

func mustParseJobID(t *testing.T, s string) int {
	t.Helper()
	id, err := ParseJobID(s)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// TestStandaloneIgnoresForwardedHeader pins the nil-federation guard in
// v2Submit: a server that is not a federation member must serve a
// submission carrying X-QHPC-Forwarded-From (a stray or misdirected
// proxy header) normally instead of panicking in the fed-forward trace
// leg — the panic would land after the job was already accepted, so the
// client would lose the job ID for a committed side effect.
func TestStandaloneIgnoresForwardedHeader(t *testing.T) {
	f := newTestFleet(t, map[string]*qdmi.Device{
		"dev-solo": twinDev(t, "dev-solo", 4, 5, 99),
	}, 2)
	server := NewFleetServer(f)
	hs := httptest.NewServer(server)
	t.Cleanup(func() { server.Close(); hs.Close() })

	req := SubmitRequest{Circuit: circuit.GHZ(3), Shots: 5, User: "solo"}
	resp := postV2(t, hs, "/api/v2/jobs?wait=10s", req, map[string]string{
		federation.HeaderForwardedFrom: "node-ghost",
	})
	job := decodeV2Job(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || job.State != StateDone {
		t.Fatalf("standalone submit with forwarded header = %d, state %s", resp.StatusCode, job.State)
	}
}
