package mqss

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/fleet"
	"repro/internal/qdmi"
	"repro/internal/qrm"
)

// httpGetJSON fetches a URL and decodes the JSON object response.
func httpGetJSON(url string) (map[string]interface{}, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// newTestFleet builds a fleet scheduler over the given named devices.
func newTestFleet(t *testing.T, devs map[string]*qdmi.Device, workers int) *fleet.Scheduler {
	t.Helper()
	f := fleet.New(fleet.PolicyBestFidelity, nil)
	for name, dev := range devs {
		if err := f.AddDevice(name, dev, workers); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(f.Stop)
	return f
}

func twinDev(t *testing.T, name string, rows, cols int, seed int64) *qdmi.Device {
	t.Helper()
	qpu, err := device.New(device.Config{Name: name, Rows: rows, Cols: cols, Seed: seed, DigitalTwin: true})
	if err != nil {
		t.Fatal(err)
	}
	return qdmi.NewDevice(qpu, nil)
}

func TestFleetServerEndToEnd(t *testing.T) {
	f := newTestFleet(t, map[string]*qdmi.Device{
		"alpha": twinDev(t, "alpha", 4, 5, 1),
		"beta":  twinDev(t, "beta", 3, 3, 2),
	}, 2)
	srv := httptest.NewServer(NewFleetServer(f))
	t.Cleanup(srv.Close)
	client := NewRemoteClient(srv.URL, nil)

	// Routed submit with the policy knob.
	j, err := client.RunRouted(context.Background(), qrm.Request{Circuit: circuit.GHZ(3), Shots: 10, User: "u"},
		RouteOptions{Policy: "least-loaded"})
	if err != nil {
		t.Fatal(err)
	}
	if j.Status != "done" || j.Device == "" || j.Result == nil {
		t.Fatalf("routed job: %+v", j)
	}
	if len(j.Result.Counts) == 0 {
		t.Fatal("routed job has no counts")
	}

	// Device pin: a 16-qubit circuit fits alpha (20q) only; pin it anyway
	// and check the envelope honours it.
	j2, err := client.RunRouted(context.Background(), qrm.Request{Circuit: circuit.GHZ(16), Shots: 5, User: "u"},
		RouteOptions{Device: "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	if j2.Device != "alpha" || j2.Pinned != "alpha" {
		t.Fatalf("pin ignored: device=%q pinned=%q", j2.Device, j2.Pinned)
	}

	// Pinning a too-small device is a 422.
	if _, err := client.RunRouted(context.Background(), qrm.Request{Circuit: circuit.GHZ(16), Shots: 5, User: "u"},
		RouteOptions{Device: "beta"}); err == nil {
		t.Fatal("pinning a 16q circuit to a 9q device should fail")
	}
	// Unknown policy is a 400.
	if _, err := client.RunRouted(context.Background(), qrm.Request{Circuit: circuit.GHZ(2), Shots: 5, User: "u"},
		RouteOptions{Policy: "fastest"}); err == nil {
		t.Fatal("unknown policy should fail")
	}

	// Batch stream across the fleet.
	reqs := make([]qrm.Request, 6)
	for i := range reqs {
		reqs[i] = qrm.Request{Circuit: circuit.GHZ(3), Shots: 5, User: "u"}
	}
	order := make([]int, 0, len(reqs))
	jobs, err := client.StreamBatchRouted(context.Background(), reqs, RouteOptions{Policy: "round-robin"}, func(j *fleet.Job) {
		order = append(order, j.ID)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 6 || len(order) != 6 {
		t.Fatalf("batch: %d jobs, %d streamed", len(jobs), len(order))
	}
	seen := map[string]int{}
	for _, j := range jobs {
		if j.Status != "done" {
			t.Fatalf("batch job %d: %s (%s)", j.ID, j.Status, j.Error)
		}
		seen[j.Device]++
	}
	if len(seen) != 2 {
		t.Fatalf("round-robin batch used %v, want both devices", seen)
	}

	// Fleet metrics snapshot over REST.
	m, err := client.FleetMetrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Devices) != 2 || m.Completed < 8 {
		t.Fatalf("fleet metrics: %d devices, %d completed", len(m.Devices), m.Completed)
	}

	// Per-device info carries the full calibration record with couplers.
	info, err := client.FleetDevice(context.Background(), "beta")
	if err != nil {
		t.Fatal(err)
	}
	if info.Properties.NumQubits != 9 {
		t.Fatalf("beta has %d qubits", info.Properties.NumQubits)
	}
	if info.Calibration == nil || len(info.Calibration.Couplers) == 0 {
		t.Fatalf("device info lost coupler calibration: %+v", info.Calibration)
	}
	if info.Calibration.FCZ(0, 1) <= 0 {
		t.Fatal("coupler CZ fidelity missing after the REST round trip")
	}

	// The legacy polling endpoint resolves fleet job IDs.
	legacy, err := client.Job(context.Background(), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.ID != j.ID || legacy.Status != qrm.StatusDone {
		t.Fatalf("legacy lookup of fleet job: %+v", legacy)
	}
}

func TestFleetServerDrainDuringStream(t *testing.T) {
	alpha := twinDev(t, "alpha", 4, 5, 1)
	alpha.QPU().SetExecLatency(4 * time.Millisecond)
	beta := twinDev(t, "beta", 4, 5, 2)
	f := newTestFleet(t, map[string]*qdmi.Device{"alpha": alpha, "beta": beta}, 1)
	srv := httptest.NewServer(NewFleetServer(f))
	t.Cleanup(srv.Close)
	client := NewRemoteClient(srv.URL, nil)

	if err := f.Drain("beta"); err != nil {
		t.Fatal(err)
	}
	reqs := make([]qrm.Request, 10)
	for i := range reqs {
		reqs[i] = qrm.Request{Circuit: circuit.GHZ(3), Shots: 5, User: "u"}
	}
	errCh := make(chan error, 1)
	jobsCh := make(chan []*fleet.Job, 1)
	go func() {
		jobs, err := client.StreamBatchRouted(context.Background(), reqs, RouteOptions{}, nil)
		jobsCh <- jobs
		errCh <- err
	}()
	// Mid-stream: drain the loaded device and bring its sibling up.
	time.Sleep(8 * time.Millisecond)
	if err := f.Drain("alpha"); err != nil {
		t.Fatal(err)
	}
	if err := f.Resume("beta"); err != nil {
		t.Fatal(err)
	}
	jobs := <-jobsCh
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	migrated := 0
	for _, j := range jobs {
		if j.Status != "done" {
			t.Fatalf("job %d lost across the drain: %s (%s)", j.ID, j.Status, j.Error)
		}
		if j.Migrations > 0 {
			migrated++
		}
	}
	if migrated == 0 {
		t.Fatal("no job migrated during the mid-stream drain")
	}
	// The local fleet client sees the same stack.
	local := NewLocalFleetClient(f)
	if local.Path() != PathHPC {
		t.Fatalf("local fleet client path %s", local.Path())
	}
	j, err := local.Run(context.Background(), qrm.Request{Circuit: circuit.GHZ(2), Shots: 5, User: "u"})
	if err != nil {
		t.Fatal(err)
	}
	if j.Status != qrm.StatusDone || len(j.Counts) == 0 {
		t.Fatalf("local fleet Run: %+v", j)
	}
}

func TestLegacyClientAgainstFleetServer(t *testing.T) {
	// "Without requiring any code modifications from the user": a client
	// written for the single-device API must work unchanged against a fleet
	// server — Run, StreamBatch, Job, and History all flatten the fleet
	// envelope into device-level records keyed by the fleet job ID.
	f := newTestFleet(t, map[string]*qdmi.Device{
		"alpha": twinDev(t, "alpha", 4, 5, 1),
		"beta":  twinDev(t, "beta", 3, 3, 2),
	}, 2)
	srv := httptest.NewServer(NewFleetServer(f))
	t.Cleanup(srv.Close)
	client := NewRemoteClient(srv.URL, nil)

	j, err := client.Run(context.Background(), qrm.Request{Circuit: circuit.GHZ(3), Shots: 20, User: "legacy"})
	if err != nil {
		t.Fatal(err)
	}
	if j.Status != qrm.StatusDone || len(j.Counts) == 0 || j.CompiledGates == 0 {
		t.Fatalf("legacy Run against fleet lost the device record: %+v", j)
	}
	got, err := client.Job(context.Background(), j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != j.ID || len(got.Counts) == 0 {
		t.Fatalf("legacy Job lookup: %+v", got)
	}
	reqs := []qrm.Request{
		{Circuit: circuit.GHZ(2), Shots: 10, User: "legacy"},
		{Circuit: circuit.GHZ(4), Shots: 10, User: "legacy"},
	}
	jobs, err := client.StreamBatch(context.Background(), reqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, bj := range jobs {
		if bj.Status != qrm.StatusDone || len(bj.Counts) == 0 {
			t.Fatalf("legacy StreamBatch job: %+v", bj)
		}
	}
	page, err := client.History(context.Background(), "legacy", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 3 {
		t.Fatalf("history total %d, want 3", page.Total)
	}
	for _, hj := range page.Jobs {
		if len(hj.Counts) == 0 {
			t.Fatalf("history entry lost counts: %+v", hj)
		}
	}
}

func TestFleetHealthz(t *testing.T) {
	f := newTestFleet(t, map[string]*qdmi.Device{"solo": twinDev(t, "solo", 2, 2, 1)}, 1)
	srv := httptest.NewServer(NewFleetServer(f))
	t.Cleanup(srv.Close)

	get := func() string {
		r, err := httpGetJSON(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		return r["status"].(string)
	}
	if st := get(); st != "ok" {
		t.Fatalf("healthz: %q", st)
	}
	if err := f.Drain("solo"); err != nil {
		t.Fatal(err)
	}
	if st := get(); st != "fleet-offline" {
		t.Fatalf("healthz with all devices drained: %q", st)
	}
}
