package mqss

import "sync"

// idemCache is the bounded Idempotency-Key dedup table behind v2
// submission: the first request under a key runs the real submit and the
// result (job ID or submission error) is replayed to every later request
// carrying the same key — a client retrying a POST whose response was lost
// gets its original job back instead of a duplicate execution.
//
// The submit callback runs while the cache lock is held. That is deliberate:
// two concurrent requests with the same key must not both reach the
// scheduler, and enqueueing (validation + heap push) is microseconds — the
// serialization cost is noise next to an HTTP round-trip. Entries are
// evicted FIFO past the bound; a key older than the window simply submits
// fresh, which is the documented contract ("at-most-once within the dedup
// window").
type idemCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]idemEntry
	order   []string // insertion order for FIFO eviction
	// journal, when set, records each new successful binding in the durable
	// store so replays dedup across a process restart. Called under c.mu —
	// the binding must hit the WAL before a concurrent retry can observe it.
	journal func(key string, jobID int)
}

type idemEntry struct {
	jobID int
}

// defaultIdemCacheSize bounds the dedup window. At production submission
// rates this is a few minutes of keys; memory stays O(bound) forever.
const defaultIdemCacheSize = 1024

func newIdemCache(max int) *idemCache {
	if max < 1 {
		max = defaultIdemCacheSize
	}
	return &idemCache{max: max, entries: make(map[string]idemEntry)}
}

// do runs submit under key exactly once within the dedup window. replayed
// reports whether a cached outcome was returned instead of running submit.
// Keyless calls (key == "") always submit. Only *successful* submissions
// are cached: a failed submit created no job, so there is nothing to
// protect from duplication — and caching a transient error (QPU offline)
// would turn the retryable response into a permanently replayed failure.
func (c *idemCache) do(key string, submit func() (int, error)) (jobID int, replayed bool, err error) {
	if key == "" {
		id, err := submit()
		return id, false, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		return e.jobID, true, nil
	}
	id, err := submit()
	if err != nil {
		return id, false, err
	}
	c.entries[key] = idemEntry{jobID: id}
	c.order = append(c.order, key)
	if c.journal != nil {
		c.journal(key, id)
	}
	for len(c.order) > c.max {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
	return id, false, nil
}

// setJournal installs (or clears) the durable-store hook for new bindings.
func (c *idemCache) setJournal(fn func(key string, jobID int)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.journal = fn
}

// seed preloads recovered bindings (startup replay). Iteration order of the
// map is arbitrary, which is fine: recovered keys share one eviction epoch.
func (c *idemCache) seed(bindings map[string]int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, id := range bindings {
		if key == "" {
			continue
		}
		if _, ok := c.entries[key]; ok {
			continue
		}
		c.entries[key] = idemEntry{jobID: id}
		c.order = append(c.order, key)
	}
	for len(c.order) > c.max {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
}

// len reports the live entry count (tests).
func (c *idemCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
