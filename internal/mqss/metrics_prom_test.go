package mqss

// Exposition lint for GET /metrics, run by the CI lint job: every line
// must parse as Prometheus text format, every family needs HELP and TYPE
// before its samples, and every family name must be documented in
// docs/OBSERVABILITY.md — adding a metric without documenting it fails
// here, not in a dashboard review six weeks later.

import (
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/qdmi"
)

var promSampleRe = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\])*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\])*")*\})? (NaN|[+-]Inf|[-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)$`)

// checkExposition parses one /metrics body and returns the family names.
func checkExposition(t *testing.T, body string) map[string]bool {
	t.Helper()
	families := map[string]bool{} // family -> samples seen
	typed := map[string]string{}
	helped := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Errorf("malformed HELP line: %q", line)
				continue
			}
			helped[parts[0]] = true
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Errorf("malformed TYPE line: %q", line)
				continue
			}
			name, kind := parts[0], parts[1]
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Errorf("unknown metric type %q in %q", kind, line)
			}
			if !helped[name] {
				t.Errorf("TYPE before HELP for %s", name)
			}
			typed[name] = kind
			families[name] = false
		case line == "":
			t.Error("blank line in exposition")
		default:
			m := promSampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Errorf("unparseable sample line: %q", line)
				continue
			}
			family := m[1]
			// Histogram samples carry the family name plus a series suffix.
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(family, suffix)
				if base != family && typed[base] == "histogram" {
					family = base
					break
				}
			}
			if _, ok := typed[family]; !ok {
				t.Errorf("sample without TYPE: %q", line)
				continue
			}
			families[family] = true
		}
	}
	for name, sampled := range families {
		if !sampled {
			t.Errorf("family %s declared but emitted no samples", name)
		}
	}
	return families
}

func scrapeMetrics(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	status, body := contractDo(t, srv, http.MethodGet, "/metrics", nil, nil)
	if status != http.StatusOK {
		t.Fatalf("GET /metrics = %d\n%s", status, body)
	}
	return string(body)
}

func TestMetricsExposition(t *testing.T) {
	doc, err := os.ReadFile("../../docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("every exported metric must be documented: %v", err)
	}

	// Single-device stack, one job through it so pipeline counters move.
	// A (generous) rate limit is attached so the tenant throttle families
	// are exercised too.
	_, server := pacedStack(t, 92, 0, 0)
	server.SetTenantLimits(1000, 100)
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)
	sreq := SubmitRequest{Circuit: circuit.GHZ(3), Shots: 10, User: "prom"}
	if status, body := contractDo(t, srv, http.MethodPost, "/api/v2/jobs?wait=10s", sreq, nil); status != http.StatusOK {
		t.Fatalf("submit = %d\n%s", status, body)
	}
	families := checkExposition(t, scrapeMetrics(t, srv))

	// Fleet stack: adds the fleet/device families over the same pipeline.
	f := newTestFleet(t, map[string]*qdmi.Device{
		"alpha": twinDev(t, "alpha", 4, 5, 93),
		"beta":  twinDev(t, "beta", 4, 5, 94),
	}, 1)
	fsrv := httptest.NewServer(NewFleetServer(f))
	t.Cleanup(fsrv.Close)
	if status, body := contractDo(t, fsrv, http.MethodPost, "/api/v2/jobs?wait=10s", sreq, nil); status != http.StatusOK {
		t.Fatalf("fleet submit = %d\n%s", status, body)
	}
	for name := range checkExposition(t, scrapeMetrics(t, fsrv)) {
		families[name] = true
	}

	// Store-backed fleet stack: adds the qhpc_wal_* families.
	df, dserver, dsrv, _ := durableStack(t, t.TempDir())
	t.Cleanup(func() { dserver.Close(); dsrv.Close(); df.Stop() })
	if status, body := contractDo(t, dsrv, http.MethodPost, "/api/v2/jobs?wait=10s", sreq, nil); status != http.StatusOK {
		t.Fatalf("durable submit = %d\n%s", status, body)
	}
	durableFamilies := checkExposition(t, scrapeMetrics(t, dsrv))
	if !durableFamilies["qhpc_wal_appends_total"] {
		t.Error("store-backed server exported no qhpc_wal_appends_total samples")
	}
	for name := range durableFamilies {
		families[name] = true
	}

	if len(families) == 0 {
		t.Fatal("no metric families scraped")
	}
	for name := range families {
		if !strings.Contains(string(doc), "`"+name+"`") {
			t.Errorf("metric %s is exported but not documented in docs/OBSERVABILITY.md", name)
		}
	}
}
