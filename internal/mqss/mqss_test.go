package mqss

import (
	"context"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/qdmi"
	"repro/internal/qrm"
	"repro/internal/telemetry"
)

// newStack builds a full twin-device stack and returns the pieces.
func newStack(seed int64) (*qrm.Manager, *qdmi.Device) {
	store := telemetry.NewStore(0)
	dev := qdmi.NewDevice(device.NewTwin20Q(seed), store)
	store.Append("fidelity_1q", 0, 0.999)
	return qrm.NewManager(dev), dev
}

func TestLocalClientPath(t *testing.T) {
	m, _ := newStack(1)
	c := NewLocalClient(m)
	if c.Path() != PathHPC {
		t.Errorf("path = %s, want hpc", c.Path())
	}
	job, err := c.Run(context.Background(), qrm.Request{Circuit: circuit.GHZ(4), Shots: 100, User: "local"})
	if err != nil {
		t.Fatal(err)
	}
	if job.Status != qrm.StatusDone {
		t.Fatalf("status = %s (%s)", job.Status, job.Error)
	}
	if len(job.Counts) != 2 {
		t.Errorf("twin GHZ outcomes = %d", len(job.Counts))
	}
}

func TestRemoteClientPath(t *testing.T) {
	m, dev := newStack(2)
	srv := httptest.NewServer(NewServer(m, dev))
	defer srv.Close()
	c := NewRemoteClient(srv.URL, srv.Client())
	if c.Path() != PathREST {
		t.Errorf("path = %s, want rest", c.Path())
	}
	job, err := c.Run(context.Background(), qrm.Request{Circuit: circuit.GHZ(3), Shots: 50, User: "remote"})
	if err != nil {
		t.Fatal(err)
	}
	if job.Status != qrm.StatusDone {
		t.Fatalf("status = %s (%s)", job.Status, job.Error)
	}
	total := 0
	for _, n := range job.Counts {
		total += n
	}
	if total != 50 {
		t.Errorf("shots = %d, want 50", total)
	}
	// Fetch the same job by ID.
	again, err := c.Job(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != job.ID || again.Status != qrm.StatusDone {
		t.Errorf("refetched job = %+v", again)
	}
}

func TestAutoClientRouting(t *testing.T) {
	m, _ := newStack(3)
	if NewAutoClient(m, "", nil).Path() != PathHPC {
		t.Error("auto client with local QRM should pick the HPC path")
	}
	if NewAutoClient(nil, "http://example", nil).Path() != PathREST {
		t.Error("auto client without local QRM should pick the REST path")
	}
}

func TestBothPathsProduceSameDistribution(t *testing.T) {
	// The same job via HPC path and REST path on identical twin devices
	// must produce identical histograms up to sampling noise — the "no
	// code modifications" promise of the client.
	mLocal, _ := newStack(4)
	mRemote, devRemote := newStack(4)
	srv := httptest.NewServer(NewServer(mRemote, devRemote))
	defer srv.Close()

	local := NewLocalClient(mLocal)
	remote := NewRemoteClient(srv.URL, srv.Client())
	req := qrm.Request{Circuit: circuit.GHZ(5), Shots: 2000, User: "x"}
	jl, err := local.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	jr, err := remote.Run(context.Background(), qrm.Request{Circuit: circuit.GHZ(5), Shots: 2000, User: "x"})
	if err != nil {
		t.Fatal(err)
	}
	fl := float64(jl.Counts[0]) / 2000
	fr := float64(jr.Counts[0]) / 2000
	if math.Abs(fl-0.5) > 0.05 || math.Abs(fr-0.5) > 0.05 {
		t.Errorf("GHZ P(0) local %.3f remote %.3f, want ~0.5 each", fl, fr)
	}
}

func TestRemoteBatch(t *testing.T) {
	m, dev := newStack(5)
	srv := httptest.NewServer(NewServer(m, dev))
	defer srv.Close()
	c := NewRemoteClient(srv.URL, srv.Client())
	jobs, err := c.RunBatch(context.Background(), []qrm.Request{
		{Circuit: circuit.GHZ(2), Shots: 10, User: "b"},
		{Circuit: circuit.GHZ(3), Shots: 10, User: "b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	for _, j := range jobs {
		if j.Status != qrm.StatusDone {
			t.Errorf("job %d status %s", j.ID, j.Status)
		}
		if j.Request.BatchID == 0 {
			t.Error("batch ID not set")
		}
	}
}

func TestLocalBatch(t *testing.T) {
	m, _ := newStack(6)
	c := NewLocalClient(m)
	jobs, err := c.RunBatch(context.Background(), []qrm.Request{
		{Circuit: circuit.GHZ(2), Shots: 10},
		{Circuit: circuit.GHZ(2), Shots: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[0].Status != qrm.StatusDone {
		t.Errorf("local batch = %+v", jobs)
	}
}

func TestRemoteHistoryPagination(t *testing.T) {
	m, dev := newStack(7)
	srv := httptest.NewServer(NewServer(m, dev))
	defer srv.Close()
	c := NewRemoteClient(srv.URL, srv.Client())
	for i := 0; i < 7; i++ {
		if _, err := c.Run(context.Background(), qrm.Request{Circuit: circuit.GHZ(2), Shots: 5, User: "pag"}); err != nil {
			t.Fatal(err)
		}
	}
	page, err := c.History(context.Background(), "pag", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if page.Total != 7 || len(page.Jobs) != 3 || !page.HasMore {
		t.Errorf("page = %+v", page)
	}
}

func TestRemoteDeviceInfo(t *testing.T) {
	m, dev := newStack(8)
	srv := httptest.NewServer(NewServer(m, dev))
	defer srv.Close()
	c := NewRemoteClient(srv.URL, srv.Client())
	info, err := c.Device(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Properties.NumQubits != 20 {
		t.Errorf("device qubits = %d", info.Properties.NumQubits)
	}
	if info.Fidelity1Q < 0.99 {
		t.Errorf("fidelity_1q = %g", info.Fidelity1Q)
	}
	if len(info.Properties.CouplingMap) != 20 {
		t.Error("coupling map missing")
	}
	// Local clients don't implement Device().
	if _, err := NewLocalClient(m).Device(context.Background()); err == nil {
		t.Error("local Device() should direct users to QDMI")
	}
}

func TestServerErrorPaths(t *testing.T) {
	m, dev := newStack(9)
	srv := httptest.NewServer(NewServer(m, dev))
	defer srv.Close()
	c := srv.Client()

	// Bad JSON submit.
	resp, err := c.Post(srv.URL+"/api/v1/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad JSON status = %d, want 400", resp.StatusCode)
	}
	// Unknown job.
	resp, err = c.Get(srv.URL + "/api/v1/jobs/424242")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}
	// Bad job id.
	resp, err = c.Get(srv.URL + "/api/v1/jobs/not-a-number")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("bad id status = %d, want 400", resp.StatusCode)
	}
	// Wrong method.
	resp, err = c.Head(srv.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("HEAD status = %d, want 405", resp.StatusCode)
	}
}

func TestTelemetryEndpoint(t *testing.T) {
	m, dev := newStack(10)
	srv := httptest.NewServer(NewServer(m, dev))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/api/v1/telemetry/fidelity_1q")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("telemetry status = %d", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	m, dev := newStack(11)
	srv := httptest.NewServer(NewServer(m, dev))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
}

func TestQASMAdapter(t *testing.T) {
	a := QASMAdapter{}
	if a.AdapterName() != "qasm" {
		t.Error("adapter name")
	}
	c, err := a.Build("qreg q[2];\nh q[0];\ncx q[0],q[1];\n")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 2 || len(c.Gates) != 2 {
		t.Errorf("adapted circuit: %d qubits, %d gates", c.NumQubits, len(c.Gates))
	}
	if _, err := a.Build("garbage"); err == nil {
		t.Error("expected parse error")
	}
}

func TestQPIBuilder(t *testing.T) {
	c, err := NewQPI(3, "qpi-demo").H(0).CNOT(0, 1).RY(2, 0.5).RZ(2, 0.25).CZ(1, 2).X(0).Circuit()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 6 {
		t.Errorf("gates = %d", len(c.Gates))
	}
	if _, err := NewQPI(0, "bad").Circuit(); err == nil {
		t.Error("expected error for 0 qubits")
	}
	if _, err := NewQPI(2, "bad").H(7).Circuit(); err == nil {
		t.Error("expected error for out-of-range qubit")
	}
	// Error sticks: further calls do not panic.
	if _, err := NewQPI(2, "bad").H(7).CNOT(0, 1).Circuit(); err == nil {
		t.Error("builder error should persist")
	}
}

func TestPulseProgramCompilesToPRX(t *testing.T) {
	// A pi-pulse: Rabi 10 MHz for 0.05 µs -> theta = 2π·0.5 = π.
	p := &PulseProgram{
		NumQubits: 1,
		Pulses:    []Pulse{{Qubit: 0, AmplitudeMHz: 10, DurationUs: 0.05, PhaseRad: 0}},
	}
	c, err := p.Compile("pi-pulse")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 1 || c.Gates[0].Name != circuit.OpPRX {
		t.Fatalf("compiled = %+v", c.Gates)
	}
	if math.Abs(c.Gates[0].Params[0]-math.Pi) > 1e-12 {
		t.Errorf("theta = %g, want pi", c.Gates[0].Params[0])
	}
	// Ideal simulation flips |0> to |1>.
	s, err := c.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if pr := s.Probability(1); math.Abs(pr-1) > 1e-9 {
		t.Errorf("pi-pulse P(1) = %g", pr)
	}
}

func TestPulseProgramValidation(t *testing.T) {
	if _, err := (&PulseProgram{NumQubits: 0}).Compile("x"); err == nil {
		t.Error("expected error for 0 qubits")
	}
	bad := &PulseProgram{NumQubits: 1, Pulses: []Pulse{{Qubit: 5, AmplitudeMHz: 1, DurationUs: 1}}}
	if _, err := bad.Compile("x"); err == nil {
		t.Error("expected error for out-of-range qubit")
	}
	bad2 := &PulseProgram{NumQubits: 1, Pulses: []Pulse{{Qubit: 0, AmplitudeMHz: 0, DurationUs: 1}}}
	if _, err := bad2.Compile("x"); err == nil {
		t.Error("expected error for zero amplitude")
	}
}
