package mqss

// The unified observability plane (docs/OBSERVABILITY.md): a Prometheus
// text exposition at GET /metrics unifying qrm/fleet/engine counters with
// per-stage latency histograms, the per-job span-tree endpoint at
// GET /api/v2/jobs/{id}/trace, and the X-Request-ID middleware that lets
// client-side errors correlate to server traces.

import (
	"context"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/federation"
	"repro/internal/qrm"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// pathMetricsProm is the Prometheus-style scrape endpoint. The JSON
// snapshot stays at /api/v1/metrics; this is the text exposition.
const pathMetricsProm = "/metrics"

// Request-ID plumbing. Every v2 response carries an X-Request-ID header —
// the client's, when it sent one, or a generated id — and submissions
// stamp it into the job's trace root span.

type ridCtxKey struct{}

var (
	ridCounter atomic.Uint64
	// ridBase distinguishes ids across server processes without needing a
	// random source on the request path.
	ridBase = fmt.Sprintf("%x", time.Now().UnixNano()&0xffffff)
)

// withRequestID wraps a v2 handler: it ensures a request id exists, echoes
// it on the response, and threads it through the request context for trace
// stamping.
func withRequestID(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get("X-Request-ID")
		if rid == "" {
			rid = fmt.Sprintf("req-%s-%d", ridBase, ridCounter.Add(1))
		}
		w.Header().Set("X-Request-ID", rid)
		h(w, r.WithContext(context.WithValue(r.Context(), ridCtxKey{}, rid)))
	}
}

// requestIDFrom returns the request id installed by withRequestID ("" when
// the handler was reached without the middleware).
func requestIDFrom(r *http.Request) string {
	v, _ := r.Context().Value(ridCtxKey{}).(string)
	return v
}

// jobTrace returns the backend's retained trace for a job id (nil when
// unknown, untraced, or evicted).
func (s *Server) jobTrace(id int) *trace.Trace {
	if s.fleet != nil {
		return s.fleet.Trace(id)
	}
	return s.qrm.Trace(id)
}

// JobTrace is the GET /api/v2/jobs/{id}/trace resource: the job identity
// plus its span tree.
type JobTrace struct {
	JobID string   `json:"job_id"`
	State JobState `json:"state"`
	trace.Snapshot
}

// v2Trace: GET /api/v2/jobs/{id}/trace — the job's span tree. Traces are
// retained for the last N terminal jobs (plus every job still in flight);
// older jobs 404 with the job record intact.
func (s *Server) v2Trace(w http.ResponseWriter, r *http.Request, id int) {
	if r.Method != http.MethodGet {
		writeV2Error(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			fmt.Sprintf("method %s not allowed", r.Method), false)
		return
	}
	job, err := s.v2JobRecord(id, false)
	if err != nil {
		writeV2Error(w, http.StatusNotFound, CodeNotFound, err.Error(), false)
		return
	}
	snap := s.jobTrace(id).Snapshot()
	if snap == nil {
		writeV2Error(w, http.StatusNotFound, CodeNotFound,
			fmt.Sprintf("no trace retained for job %s (tracing off, or evicted from the retention ring)", job.ID), false)
		return
	}
	writeJSON(w, http.StatusOK, &JobTrace{JobID: job.ID, State: job.State, Snapshot: *snap})
}

// handleMetricsProm: GET /metrics — the text exposition. Metric families
// and their meanings are documented in docs/OBSERVABILITY.md; the CI
// metrics-doc test fails when the two drift apart.
func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		v1MethodNotAllowed(w, r.Method)
		return
	}
	pw := telemetry.NewPromWriter()
	if s.fleet != nil {
		fm := s.fleet.Metrics()
		pw.Counter("qhpc_fleet_jobs_submitted_total", "Jobs accepted by the fleet scheduler.", nil, float64(fm.Submitted))
		pw.Counter("qhpc_fleet_jobs_routed_total", "Routing decisions that placed a job on a device.", nil, float64(fm.Routed))
		pw.Counter("qhpc_fleet_jobs_migrated_total", "Drain/failover re-routes.", nil, float64(fm.Migrated))
		pw.Counter("qhpc_fleet_park_events_total", "Times a job parked waiting for an eligible device.", nil, float64(fm.ParkEvents))
		pw.Gauge("qhpc_fleet_parked_now", "Jobs currently parked.", nil, float64(fm.ParkedNow))
		pw.Counter("qhpc_fleet_jobs_completed_total", "Fleet jobs settled done.", nil, float64(fm.Completed))
		pw.Counter("qhpc_fleet_jobs_failed_total", "Fleet jobs settled failed.", nil, float64(fm.Failed))
		pw.Counter("qhpc_fleet_jobs_cancelled_total", "Fleet jobs settled cancelled.", nil, float64(fm.Cancelled))
		pw.Counter("qhpc_fleet_jobs_shed_total", "Fleet jobs evicted by admission control under overload.", nil, float64(fm.Shed))
		pw.Histogram("qhpc_fleet_route_score", "Fidelity estimate of each routing decision.", nil, fm.ScoreHist)
		promBus(pw, "fleet", s.fleet.Events().Stats())
		retained, drops := s.fleet.TraceStats()
		promTraces(pw, "fleet", retained, drops)
		for _, d := range fm.Devices {
			labels := telemetry.Labels{{"device", d.Name}}
			pw.Gauge("qhpc_device_active", "1 when the device accepts routed work.", labels, boolGauge(d.State == "active"))
			pw.Counter("qhpc_device_jobs_routed_total", "Jobs routed to this device.", labels, float64(d.Routed))
			pw.Counter("qhpc_device_jobs_migrated_out_total", "Jobs migrated off this device.", labels, float64(d.MigratedOut))
			pw.Gauge("qhpc_device_fidelity_1q", "Mean single-qubit gate fidelity (live calibration).", labels, d.MeanF1Q)
			pw.Gauge("qhpc_device_fidelity_cz", "Mean CZ gate fidelity (live calibration).", labels, d.MeanFCZ)
			promQRM(pw, d.Name, d.QRM)
			if mgr, err := s.fleet.DeviceManager(d.Name); err == nil {
				promBus(pw, d.Name, mgr.Events().Stats())
				ret, dr := mgr.TraceStats()
				promTraces(pw, d.Name, ret, dr)
			}
		}
	} else {
		name := s.deviceName()
		promQRM(pw, name, s.qrm.Metrics())
		promBus(pw, name, s.qrm.Events().Stats())
		retained, drops := s.qrm.TraceStats()
		promTraces(pw, name, retained, drops)
	}
	promTenants(pw, s.tenantsStatus(), s.limiter != nil)
	if s.store != nil {
		promStore(pw, s.store.Stats())
	}
	if s.fed != nil {
		promFed(pw, s.fed.Self(), s.fed.Metrics())
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = pw.WriteTo(w)
}

// promStore renders durable-store health (only on servers with -data-dir).
func promStore(pw *telemetry.PromWriter, st durable.Stats) {
	l := telemetry.Labels{{"mode", string(st.Mode)}}
	pw.Counter("qhpc_wal_appends_total", "Records appended to the job WAL.", l, float64(st.Appends))
	pw.Counter("qhpc_wal_fsyncs_total", "fsync calls issued by the WAL.", l, float64(st.Fsyncs))
	pw.Counter("qhpc_wal_bytes_written_total", "Journal bytes written since process start.", l, float64(st.Bytes))
	pw.Gauge("qhpc_wal_segments", "Journal segment files on disk.", l, float64(st.Segments))
	pw.Gauge("qhpc_wal_disk_bytes", "Journal plus snapshot bytes on disk.", l, float64(st.WALBytes))
	pw.Gauge("qhpc_wal_last_lsn", "LSN of the most recently appended record.", l, float64(st.LastLSN))
	pw.Gauge("qhpc_wal_durable_lsn", "Highest LSN known to be on stable storage.", l, float64(st.Durable))
	pw.Gauge("qhpc_wal_snapshot_lsn", "LSN covered by the last compaction snapshot.", l, float64(st.SnapshotLSN))
	pw.Counter("qhpc_wal_compactions_total", "Snapshot compactions completed.", l, float64(st.Compactions))
	pw.Gauge("qhpc_wal_replay_duration_ms", "Startup snapshot+WAL replay time in milliseconds.", l, st.Replay.DurationMs)
	pw.Gauge("qhpc_wal_replay_skipped_bytes", "Torn/corrupt tail bytes ignored during startup replay.", l, float64(st.Replay.SkippedBytes))
	rl := func(outcome string) telemetry.Labels {
		return telemetry.Labels{{"mode", string(st.Mode)}, {"outcome", outcome}}
	}
	pw.Counter("qhpc_wal_recovered_jobs_total", "Jobs recovered at startup by disposition (outcome: terminal, requeued, expired).", rl("terminal"), float64(st.Restored.Terminal))
	pw.Counter("qhpc_wal_recovered_jobs_total", "", rl("requeued"), float64(st.Restored.Requeued))
	pw.Counter("qhpc_wal_recovered_jobs_total", "", rl("expired"), float64(st.Restored.Expired))
}

// promFed renders the federation plane (only on servers that joined a
// federation via AttachFederation); node labels every family with this
// member's ID.
func promFed(pw *telemetry.PromWriter, node string, m federation.Metrics) {
	l := telemetry.Labels{{"node", node}}
	pw.Gauge("qhpc_fed_peers_alive", "Federation members currently considered alive (self included).", l, float64(m.PeersAlive))
	pw.Gauge("qhpc_fed_peers_dead", "Federation members currently considered dead by heartbeat.", l, float64(m.PeersDead))
	pw.Counter("qhpc_fed_heartbeats_sent_total", "Heartbeats sent to peers.", l, float64(m.HeartbeatsSent))
	pw.Counter("qhpc_fed_heartbeats_failed_total", "Heartbeats that failed to reach a peer.", l, float64(m.HeartbeatsFailed))
	pw.Counter("qhpc_fed_forwarded_submits_total", "Submissions forwarded to their hash-owner node.", l, float64(m.ForwardedSubmits))
	pw.Counter("qhpc_fed_proxied_reads_total", "Unary job requests (GET/DELETE/trace) proxied to the owner node.", l, float64(m.ProxiedReads))
	pw.Counter("qhpc_fed_proxied_streams_total", "Watch streams proxied to the owner node.", l, float64(m.ProxiedStreams))
	pw.Counter("qhpc_fed_proxy_errors_total", "Proxy attempts refused or failed (dead owner, network error, directory inconsistency).", l, float64(m.ProxyErrors))
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// promQRM renders one dispatch pipeline's snapshot under a device label.
func promQRM(pw *telemetry.PromWriter, device string, m qrm.Metrics) {
	l := telemetry.Labels{{"device", device}}
	pw.Counter("qhpc_qrm_jobs_submitted_total", "Jobs accepted by the QRM queue.", l, float64(m.Submitted))
	pw.Counter("qhpc_qrm_jobs_completed_total", "Jobs finished done.", l, float64(m.Completed))
	pw.Counter("qhpc_qrm_jobs_failed_total", "Jobs finished failed (includes expired).", l, float64(m.Failed))
	pw.Counter("qhpc_qrm_jobs_cancelled_total", "Jobs cancelled.", l, float64(m.Cancelled))
	pw.Counter("qhpc_qrm_jobs_interrupted_total", "Jobs interrupted by outages.", l, float64(m.Interrupted))
	pw.Counter("qhpc_qrm_jobs_expired_total", "Jobs that hit their dispatch deadline while queued.", l, float64(m.Expired))
	pw.Counter("qhpc_qrm_jobs_shed_total", "Jobs evicted by admission control (queue over bounds).", l, float64(m.Shed))
	pw.Gauge("qhpc_qrm_queue_depth", "Jobs currently queued.", l, float64(m.QueueDepth))
	pw.Gauge("qhpc_qrm_inflight", "Jobs currently held by dispatch workers.", l, float64(m.Inflight))
	pw.Gauge("qhpc_qrm_workers", "Dispatch workers configured.", l, float64(m.Workers))
	pw.Counter("qhpc_transpile_cache_hits_total", "Transpile-cache hits.", l, float64(m.CacheHits))
	pw.Counter("qhpc_transpile_cache_misses_total", "Transpile-cache misses.", l, float64(m.CacheMisses))
	pw.Counter("qhpc_engine_compile_hits_total", "Compiled-program cache hits in the execution engine.", l, float64(m.SimCompileHits))
	pw.Counter("qhpc_engine_compile_misses_total", "Compiled-program cache misses in the execution engine.", l, float64(m.SimCompileMisses))
	pw.Counter("qhpc_engine_fast_path_jobs_total", "Noiseless jobs served by the distribution fast path.", l, float64(m.SimFastPathJobs))
	pw.Counter("qhpc_engine_branch_tree_jobs_total", "Noisy jobs executed on the shot-branching tree.", l, float64(m.SimBranchTreeJobs))
	pw.Counter("qhpc_engine_branch_leaves_total", "Unique leaf states across branch-tree jobs.", l, float64(m.SimBranchLeaves))
	pw.Counter("qhpc_engine_dist_cache_hits_total", "Noiseless jobs served from a cached outcome distribution.", l, float64(m.SimDistCacheHits))
	stage := func(st string, h telemetry.HistogramSnapshot) {
		pw.Histogram("qhpc_stage_latency_ms",
			"Per-stage job latency in milliseconds (stage: queue-wait, compile, execute, e2e).",
			telemetry.Labels{{"device", device}, {"stage", st}}, h)
	}
	stage("queue-wait", m.QueueWaitMs)
	stage("compile", m.CompileMs)
	stage("execute", m.ExecMs)
	stage("e2e", m.E2EMs)
}

// promTenants renders the multi-tenant admission plane: per-tenant queue
// accounting for every user ever seen, plus token-bucket counters when a
// limiter is attached. Families appear once the first tenant submits.
func promTenants(pw *telemetry.PromWriter, ts TenantsStatus, limited bool) {
	for _, row := range ts.Tenants {
		l := telemetry.Labels{{"tenant", row.User}}
		pw.Counter("qhpc_tenant_jobs_submitted_total", "Jobs accepted into a dispatch queue, by submitting tenant.", l, float64(row.Submitted))
		pw.Counter("qhpc_tenant_jobs_completed_total", "Jobs finished done, by tenant.", l, float64(row.Completed))
		pw.Counter("qhpc_tenant_jobs_failed_total", "Jobs finished failed (excluding shed), by tenant.", l, float64(row.Failed))
		pw.Counter("qhpc_tenant_jobs_cancelled_total", "Jobs cancelled, by tenant.", l, float64(row.Cancelled))
		pw.Counter("qhpc_tenant_jobs_interrupted_total", "Jobs interrupted by outages, by tenant.", l, float64(row.Interrupted))
		pw.Counter("qhpc_tenant_jobs_shed_total", "Jobs evicted by admission control, by tenant.", l, float64(row.Shed))
		pw.Gauge("qhpc_tenant_queue_depth", "Jobs currently queued, by tenant.", l, float64(row.Queued))
		if limited {
			pw.Counter("qhpc_tenant_submits_allowed_total", "Submissions that passed the token-bucket rate limiter, by tenant.", l, float64(row.Allowed))
			pw.Counter("qhpc_tenant_submits_throttled_total", "Submissions rejected 429 by the token-bucket rate limiter, by tenant.", l, float64(row.Throttled))
		}
	}
}

// promBus renders one event bus's health; bus is "fleet" or a device name.
func promBus(pw *telemetry.PromWriter, bus string, st qrm.BusStats) {
	l := telemetry.Labels{{"bus", bus}}
	pw.Counter("qhpc_bus_events_published_total", "Lifecycle events published on the job event bus.", l, float64(st.Published))
	pw.Counter("qhpc_bus_events_dropped_total", "Event deliveries dropped on full subscriber buffers (summed across subscribers, including closed ones).", l, float64(st.DroppedTotal))
	pw.Gauge("qhpc_bus_subscribers", "Currently attached bus subscriptions.", l, float64(st.Subscribers))
}

// promTraces renders trace-retention health; scope is "fleet" or a device.
func promTraces(pw *telemetry.PromWriter, scope string, retained int, spanDrops uint64) {
	l := telemetry.Labels{{"scope", scope}}
	pw.Gauge("qhpc_traces_retained", "Terminal-job traces currently held in the retention ring.", l, float64(retained))
	pw.Counter("qhpc_trace_spans_dropped_total", "Spans lost to per-job slab exhaustion, summed at terminal.", l, float64(spanDrops))
}
