// Package mqss reproduces the Munich Quantum Software Stack architecture of
// Fig. 2: frontend adapters submit circuits to a client, which automatically
// detects whether the job originates inside or outside the HPC environment
// and routes it to the appropriate interface — the in-process HPC path for
// tightly-coupled accelerator-style loops (VQE), or the REST API for remote
// asynchronous access. Both paths land in the same QRM.
package mqss

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/qdmi"
	"repro/internal/qrm"
)

// API paths.
const (
	pathJobs      = "/api/v1/jobs"
	pathJobsBatch = "/api/v1/jobs/batch"
	pathDevice    = "/api/v1/device"
	pathTelemetry = "/api/v1/telemetry/"
	pathMetrics   = "/api/v1/metrics"
	pathHealthz   = "/healthz"
)

// Server exposes the QRM over HTTP — the REST access mode of Fig. 2.
type Server struct {
	qrm *qrm.Manager
	dev *qdmi.Device
	mux *http.ServeMux
	// AutoRun executes jobs synchronously on submission whenever the QRM's
	// dispatch pipeline is not running, which keeps the remote path
	// self-contained in tests and examples. With the pipeline started
	// (qrm.Manager.Start), handlers instead submit and wait on the shared
	// worker pool — the pipeline/fallback choice is made per request, so a
	// pipeline stopped after the server was built degrades to synchronous
	// execution instead of leaving jobs queued forever. Set AutoRun false
	// only for a deliberately asynchronous submit-and-poll server.
	AutoRun bool
}

// NewServer builds the REST front end.
func NewServer(m *qrm.Manager, dev *qdmi.Device) *Server {
	s := &Server{qrm: m, dev: dev, mux: http.NewServeMux(), AutoRun: true}
	s.mux.HandleFunc(pathJobs, s.handleJobs)
	s.mux.HandleFunc(pathJobs+"/", s.handleJobByID)
	s.mux.HandleFunc(pathJobsBatch, s.handleBatch)
	s.mux.HandleFunc(pathDevice, s.handleDevice)
	s.mux.HandleFunc(pathTelemetry, s.handleTelemetry)
	s.mux.HandleFunc(pathMetrics, s.handleMetrics)
	s.mux.HandleFunc(pathHealthz, s.handleHealthz)
	return s
}

// complete brings a submitted job to a terminal state using whichever
// dispatch mode is active: WaitJob against the running pipeline, or a
// synchronous Drain when AutoRun covers for the missing workers. If the
// pipeline stops out from under a wait, the job fell back to the queue and
// the Drain fallback picks it up (Drain waits out an in-progress shutdown).
// With AutoRun disabled the server is deliberately asynchronous: the
// handler returns the queued record immediately and the client polls.
func (s *Server) complete(id int) error {
	if !s.AutoRun {
		return nil
	}
	if s.qrm.Running() {
		if _, err := s.qrm.WaitJob(id); err == nil {
			return nil
		}
	}
	_, err := s.qrm.Drain()
	return err
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors after the header is out can only be logged; there is
	// nothing else to send the client.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// handleJobs: POST = submit, GET = paginated history.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req qrm.Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		id, err := s.qrm.Submit(req)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		if err := s.complete(id); err != nil {
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		job, err := s.qrm.Job(id)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusCreated, job)
	case http.MethodGet:
		offset := queryInt(r, "offset", 0)
		limit := queryInt(r, "limit", 20)
		user := r.URL.Query().Get("user")
		page, err := s.qrm.History(user, offset, limit)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, page)
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	}
}

// handleJobByID: GET /api/v1/jobs/{id}.
func (s *Server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, pathJobs+"/")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job id %q", idStr))
		return
	}
	job, err := s.qrm.Job(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleBatch: POST a list of requests as one batch. With ?stream=1 the
// response is NDJSON: a header line {"batch_id","job_ids"} followed by one
// completed job record per line *in completion order* — against a running
// dispatch pipeline, clients see results as the workers finish them instead
// of waiting for the slowest job in the batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	var reqs []qrm.Request
	if err := json.NewDecoder(r.Body).Decode(&reqs); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding batch: %w", err))
		return
	}
	batch, ids, err := s.qrm.SubmitBatch(reqs)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if v := r.URL.Query().Get("stream"); v != "" && v != "0" && v != "false" {
		s.streamBatch(w, batch, ids)
		return
	}
	for _, id := range ids {
		if err := s.complete(id); err != nil {
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
	}
	writeJSON(w, http.StatusCreated, map[string]interface{}{
		"batch_id": batch,
		"job_ids":  ids,
	})
}

// streamBatch writes the NDJSON batch response, flushing each completed job
// as it lands.
func (s *Server) streamBatch(w http.ResponseWriter, batch int, ids []int) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusCreated)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	_ = enc.Encode(map[string]interface{}{"batch_id": batch, "job_ids": ids})
	flush()

	emit := func(j *qrm.Job) {
		if j == nil {
			return
		}
		_ = enc.Encode(j)
		flush()
	}
	if s.qrm.Running() {
		s.qrm.WaitEach(ids, func(id int, j *qrm.Job, err error) {
			if err != nil {
				// Degraded path (e.g. pipeline stopped mid-batch): report
				// whatever record exists.
				j, _ = s.qrm.Job(id)
			}
			emit(j)
		})
		return
	}
	if s.AutoRun {
		_, _ = s.qrm.Drain()
	}
	for _, id := range ids {
		j, _ := s.qrm.Job(id)
		emit(j)
	}
}

// handleMetrics: GET the dispatch-pipeline metrics snapshot (queue depth,
// outcome counters, cache effectiveness, stage latency histograms).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	writeJSON(w, http.StatusOK, s.qrm.Metrics())
}

// handleDevice: GET device properties + live calibration summary (QDMI
// pass-through; §4 users asked for coupling maps and transparency).
func (s *Server) handleDevice(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	calib := s.dev.Calibration()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"properties":        s.dev.Properties(),
		"fidelity_1q":       calib.MeanF1Q(),
		"fidelity_readout":  calib.MeanFReadout(),
		"fidelity_cz":       calib.MeanFCZ(),
		"calibration_age_h": calib.AgeHours,
	})
}

// handleTelemetry: GET /api/v1/telemetry/{sensor} — transparent telemetry
// dissemination (§3.1).
func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	store := s.dev.Store()
	if store == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("telemetry store not attached"))
		return
	}
	sensor := strings.TrimPrefix(r.URL.Path, pathTelemetry)
	if sensor == "" {
		writeJSON(w, http.StatusOK, map[string]interface{}{"sensors": store.Sensors()})
		return
	}
	data, err := store.MarshalSeriesJSON(sensor)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if !s.qrm.Online() {
		status = "qpu-offline"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}

func queryInt(r *http.Request, key string, def int) int {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}
