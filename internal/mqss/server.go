// Package mqss reproduces the Munich Quantum Software Stack architecture of
// Fig. 2: frontend adapters submit circuits to a client, which automatically
// detects whether a job originates inside or outside the HPC environment
// and routes it to the appropriate interface — the in-process HPC path for
// tightly-coupled accelerator-style loops (VQE), or the REST API for remote
// asynchronous access. Both paths land in the same QRM — or, in fleet mode,
// in the multi-QPU fleet scheduler, which routes each job to the best
// backend (calibration-aware) and migrates work around maintenance windows
// and device faults.
package mqss

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/durable"
	"repro/internal/federation"
	"repro/internal/fleet"
	"repro/internal/qdmi"
	"repro/internal/qrm"
	"repro/internal/telemetry"
	"repro/internal/tenant"
)

// API paths.
const (
	pathJobs      = "/api/v1/jobs"
	pathJobsBatch = "/api/v1/jobs/batch"
	pathDevice    = "/api/v1/device"
	pathFleet     = "/api/v1/fleet"
	pathTelemetry = "/api/v1/telemetry/"
	pathMetrics   = "/api/v1/metrics"
	pathHealthz   = "/healthz"
)

// Server exposes the stack over HTTP — the REST access mode of Fig. 2. It
// serves either a single QRM (NewServer) or a multi-QPU fleet scheduler
// (NewFleetServer); the API surface is the same, with fleet mode adding
// `?device=` pinning, a `?policy=` routing knob, and GET /api/v1/fleet.
type Server struct {
	qrm   *qrm.Manager
	dev   *qdmi.Device
	fleet *fleet.Scheduler
	mux   *http.ServeMux

	// closing is closed by Close; active v2 watch streams end on it so a
	// graceful http.Server.Shutdown can drain their handlers.
	closing   chan struct{}
	closeOnce sync.Once
	// idem is the bounded Idempotency-Key dedup cache behind v2 submission.
	idem *idemCache
	// limiter is the per-tenant token-bucket admission gate in front of v2
	// submission (nil = unlimited, the default). Refusals answer 429 with
	// Retry-After and the retryable rate_limited envelope.
	limiter *tenant.Limiter
	// store is the durable job store attached via AttachStore (nil =
	// in-memory only); it backs /api/v2/admin/store, the qhpc_wal_* metric
	// families, and idempotency-key journaling.
	store *durable.Store
	// fed is the federation membership attached via AttachFederation
	// (nil = standalone). fedClient carries proxied requests to owner
	// nodes; it has no global timeout because watch streams are
	// long-lived (per-request cancellation rides the inbound context).
	fed       *federation.Node
	fedClient *http.Client
	// AutoRun executes jobs synchronously on submission whenever the QRM's
	// dispatch pipeline is not running, which keeps the remote path
	// self-contained in tests and examples. With the pipeline started
	// (qrm.Manager.Start), handlers instead submit and wait on the shared
	// worker pool — the pipeline/fallback choice is made per request, so a
	// pipeline stopped after the server was built degrades to synchronous
	// execution instead of leaving jobs queued forever. Set AutoRun false
	// only for a deliberately asynchronous submit-and-poll server. Fleet
	// mode always has live worker pools; there AutoRun only selects between
	// wait-for-result (true) and submit-and-poll (false) responses.
	AutoRun bool
}

// NewServer builds the single-device REST front end.
func NewServer(m *qrm.Manager, dev *qdmi.Device) *Server {
	s := &Server{qrm: m, dev: dev, AutoRun: true,
		closing: make(chan struct{}), idem: newIdemCache(0)}
	s.routes()
	return s
}

// NewFleetServer builds the fleet REST front end over a multi-QPU scheduler.
func NewFleetServer(f *fleet.Scheduler) *Server {
	s := &Server{fleet: f, AutoRun: true,
		closing: make(chan struct{}), idem: newIdemCache(0)}
	s.routes()
	return s
}

// Close begins a graceful wind-down of the server's long-lived responses:
// every active v2 watch stream emits a final "server-closing" event and
// returns, so an enclosing http.Server.Shutdown stops blocking on them.
// Close is idempotent and does not touch the backend (stop the QRM
// pipeline or fleet separately).
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.closing) })
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc(pathJobs, s.handleJobs)
	s.mux.HandleFunc(pathJobs+"/", s.handleJobByID)
	s.mux.HandleFunc(pathJobsBatch, s.handleBatch)
	s.mux.HandleFunc(pathDevice, s.handleDevice)
	s.mux.HandleFunc(pathFleet, s.handleFleet)
	s.mux.HandleFunc(pathTelemetry, s.handleTelemetry)
	s.mux.HandleFunc(pathMetrics, s.handleMetrics)
	s.mux.HandleFunc(pathHealthz, s.handleHealthz)
	s.mux.HandleFunc(pathMetricsProm, s.handleMetricsProm)
	s.mux.HandleFunc(pathV2Jobs, withRequestID(s.handleV2Jobs))
	s.mux.HandleFunc(pathV2Jobs+"/", withRequestID(s.handleV2JobByID))
	s.mux.HandleFunc(pathV2AdminStore, withRequestID(s.handleV2AdminStore))
	s.mux.HandleFunc(pathV2AdminTenants, withRequestID(s.handleV2AdminTenants))
}

// SetTenantLimits installs per-user token-bucket rate limiting on v2
// submission: each user accrues rate jobs/second up to burst. rate <= 0
// removes the limiter (the default: everything admitted).
func (s *Server) SetTenantLimits(rate float64, burst int) {
	s.limiter = tenant.NewLimiter(rate, burst)
}

// complete brings a submitted job to a terminal state using whichever
// dispatch mode is active: WaitJob against the running pipeline, or a
// synchronous Drain when AutoRun covers for the missing workers. If the
// pipeline stops out from under a wait, the job fell back to the queue and
// the Drain fallback picks it up (Drain waits out an in-progress shutdown).
// With AutoRun disabled the server is deliberately asynchronous: the
// handler returns the queued record immediately and the client polls.
func (s *Server) complete(id int) error {
	if !s.AutoRun {
		return nil
	}
	if s.qrm.Running() {
		if _, err := s.qrm.WaitJob(id); err == nil {
			return nil
		}
	}
	_, err := s.qrm.Drain()
	return err
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors after the header is out can only be logged; there is
	// nothing else to send the client.
	_ = json.NewEncoder(w).Encode(v)
}

// Error rendering. Both API versions share one classification (status,
// code, message, retryability) but render different wire shapes: v1 keeps
// its original byte-compatible `{"error": "..."}` body, v2 sends the
// structured envelope `{"code", "message", "retryable"}`. The golden
// contract tests pin both shapes.

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeV2Error(w http.ResponseWriter, status int, code, msg string, retryable bool) {
	writeJSON(w, status, &APIError{Code: code, Message: msg, Retryable: retryable})
}

// v1MethodNotAllowed is the single 405 path for every v1 handler — HEAD,
// PUT, DELETE and friends all get the same body, not per-handler ad-hoc
// strings.
func v1MethodNotAllowed(w http.ResponseWriter, method string) {
	writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", method))
}

// v1BadID is the single malformed-job-ID path for v1 handlers.
func v1BadID(w http.ResponseWriter, idStr string) {
	writeError(w, http.StatusBadRequest, fmt.Errorf("bad job id %q", idStr))
}

// submitCore is the one submission entry point both API versions share:
// the v2 handler reaches it through the idempotency cache, the v1 handlers
// call it directly — v1 is a shim over the same core, not a second path.
func (s *Server) submitCore(req qrm.Request, opts fleet.SubmitOptions) (int, error) {
	if s.fleet != nil {
		return s.fleet.Submit(req, opts)
	}
	return s.qrm.Submit(req)
}

// submitOptions extracts the fleet routing controls from the query string:
// `?device=` pins a backend, `?policy=` overrides the routing policy.
func submitOptions(r *http.Request) (fleet.SubmitOptions, error) {
	opts := fleet.SubmitOptions{Device: r.URL.Query().Get("device")}
	if p := r.URL.Query().Get("policy"); p != "" {
		pol := fleet.Policy(p)
		if err := pol.Validate(); err != nil {
			return opts, err
		}
		opts.Policy = pol
	}
	return opts, nil
}

// handleJobs: POST = submit, GET = paginated history.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req qrm.Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		if s.fleet != nil {
			s.submitFleetJob(w, r, req)
			return
		}
		id, err := s.submitCore(req, fleet.SubmitOptions{})
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		if err := s.complete(id); err != nil {
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		job, err := s.qrm.Job(id)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusCreated, job)
	case http.MethodGet:
		offset := queryInt(r, "offset", 0)
		limit := queryInt(r, "limit", 20)
		user := r.URL.Query().Get("user")
		if s.fleet != nil {
			page, err := s.fleet.History(user, offset, limit)
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			writeJSON(w, http.StatusOK, page)
			return
		}
		page, err := s.qrm.History(user, offset, limit)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, page)
	default:
		v1MethodNotAllowed(w, r.Method)
	}
}

// submitFleetJob routes one POSTed job through the fleet scheduler.
func (s *Server) submitFleetJob(w http.ResponseWriter, r *http.Request, req qrm.Request) {
	opts, err := submitOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.submitCore(req, opts)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if s.AutoRun {
		job, err := s.fleet.Wait(id)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusCreated, job)
		return
	}
	job, err := s.fleet.Job(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusCreated, job)
}

// handleJobByID: GET /api/v1/jobs/{id}.
func (s *Server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		v1MethodNotAllowed(w, r.Method)
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, pathJobs+"/")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		v1BadID(w, idStr)
		return
	}
	if s.fleet != nil {
		job, err := s.fleet.Job(id)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, job)
		return
	}
	job, err := s.qrm.Job(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleBatch: POST a list of requests as one batch. With ?stream=1 the
// response is NDJSON: a header line {"batch_id","job_ids"} followed by one
// completed job record per line *in completion order* — against a running
// dispatch pipeline, clients see results as the workers finish them instead
// of waiting for the slowest job in the batch. In fleet mode the batch is
// routed job-by-job (it may span devices) and honours ?device= / ?policy=.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		v1MethodNotAllowed(w, r.Method)
		return
	}
	var reqs []qrm.Request
	if err := json.NewDecoder(r.Body).Decode(&reqs); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding batch: %w", err))
		return
	}
	stream := false
	if v := r.URL.Query().Get("stream"); v != "" && v != "0" && v != "false" {
		stream = true
	}
	if s.fleet != nil {
		opts, err := submitOptions(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		batch, ids, err := s.fleet.SubmitBatch(reqs, opts)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		if stream {
			s.streamFleetBatch(w, batch, ids)
			return
		}
		for _, id := range ids {
			if _, err := s.fleet.Wait(id); err != nil {
				writeError(w, http.StatusServiceUnavailable, err)
				return
			}
		}
		writeJSON(w, http.StatusCreated, map[string]interface{}{
			"batch_id": batch,
			"job_ids":  ids,
		})
		return
	}
	batch, ids, err := s.qrm.SubmitBatch(reqs)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if stream {
		s.streamBatch(w, batch, ids)
		return
	}
	for _, id := range ids {
		if err := s.complete(id); err != nil {
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
	}
	writeJSON(w, http.StatusCreated, map[string]interface{}{
		"batch_id": batch,
		"job_ids":  ids,
	})
}

// ndjsonWriter prepares an NDJSON streaming response.
func ndjsonWriter(w http.ResponseWriter) (*json.Encoder, func()) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusCreated)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	return enc, func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// streamBatch writes the NDJSON batch response, flushing each completed job
// as it lands. A client that disconnects mid-stream only loses its copy of
// the results: encodes onto the dead connection fail silently, the
// remaining jobs still complete server-side, and the handler returns once
// every job has settled.
func (s *Server) streamBatch(w http.ResponseWriter, batch int, ids []int) {
	enc, flush := ndjsonWriter(w)
	_ = enc.Encode(map[string]interface{}{"batch_id": batch, "job_ids": ids})
	flush()

	emit := func(j *qrm.Job) {
		if j == nil {
			return
		}
		_ = enc.Encode(j)
		flush()
	}
	if s.qrm.Running() {
		s.qrm.WaitEach(ids, func(id int, j *qrm.Job, err error) {
			if err != nil {
				// Degraded path (e.g. pipeline stopped mid-batch): report
				// whatever record exists.
				j, _ = s.qrm.Job(id)
			}
			emit(j)
		})
		return
	}
	if s.AutoRun {
		_, _ = s.qrm.Drain()
	}
	for _, id := range ids {
		j, _ := s.qrm.Job(id)
		emit(j)
	}
}

// streamFleetBatch is the fleet-mode NDJSON stream: one fleet job record per
// line in completion order, each carrying its routing envelope (device,
// migrations, score) plus the device-level result.
func (s *Server) streamFleetBatch(w http.ResponseWriter, batch int, ids []int) {
	enc, flush := ndjsonWriter(w)
	_ = enc.Encode(map[string]interface{}{"batch_id": batch, "job_ids": ids})
	flush()
	s.fleet.WaitEach(ids, func(id int, j *fleet.Job, err error) {
		if err != nil {
			j, _ = s.fleet.Job(id)
		}
		if j == nil {
			return
		}
		_ = enc.Encode(j)
		flush()
	})
}

// handleMetrics: GET the dispatch-pipeline metrics snapshot (queue depth,
// outcome counters, cache effectiveness, stage latency histograms) — or, in
// fleet mode, the fleet snapshot with per-device breakdowns.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		v1MethodNotAllowed(w, r.Method)
		return
	}
	if s.fleet != nil {
		writeJSON(w, http.StatusOK, s.fleet.Metrics())
		return
	}
	writeJSON(w, http.StatusOK, s.qrm.Metrics())
}

// handleFleet: GET /api/v1/fleet — the fleet status snapshot (404 on a
// single-device server).
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		v1MethodNotAllowed(w, r.Method)
		return
	}
	if s.fleet == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("not a fleet server"))
		return
	}
	writeJSON(w, http.StatusOK, s.fleet.Metrics())
}

// deviceInfoJSON renders one device's properties + live calibration. The
// full calibration record rides along (couplers included, via the custom
// Calibration marshaller) — §4 users asked for per-element transparency,
// not just means.
func deviceInfoJSON(dev *qdmi.Device) map[string]interface{} {
	calib := dev.Calibration()
	return map[string]interface{}{
		"properties":        dev.Properties(),
		"fidelity_1q":       calib.MeanF1Q(),
		"fidelity_readout":  calib.MeanFReadout(),
		"fidelity_cz":       calib.MeanFCZ(),
		"calibration_age_h": calib.AgeHours,
		"calibration":       calib,
	}
}

// handleDevice: GET device properties + live calibration (QDMI
// pass-through; §4 users asked for coupling maps and transparency). Fleet
// mode: `?device=` selects one backend; without it, every backend is
// returned keyed by name.
func (s *Server) handleDevice(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		v1MethodNotAllowed(w, r.Method)
		return
	}
	if s.fleet == nil {
		writeJSON(w, http.StatusOK, deviceInfoJSON(s.dev))
		return
	}
	if name := r.URL.Query().Get("device"); name != "" {
		dev, err := s.fleet.DeviceHandle(name)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, deviceInfoJSON(dev))
		return
	}
	out := make(map[string]interface{})
	for _, name := range s.fleet.Devices() {
		dev, err := s.fleet.DeviceHandle(name)
		if err != nil {
			continue // removed between listing and lookup
		}
		out[name] = deviceInfoJSON(dev)
	}
	writeJSON(w, http.StatusOK, out)
}

// telemetryStore returns whichever store backs this server.
func (s *Server) telemetryStore() *telemetry.Store {
	if s.fleet != nil {
		return s.fleet.Store()
	}
	return s.dev.Store()
}

// handleTelemetry: GET /api/v1/telemetry/{sensor} — transparent telemetry
// dissemination (§3.1).
func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		v1MethodNotAllowed(w, r.Method)
		return
	}
	store := s.telemetryStore()
	if store == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("telemetry store not attached"))
		return
	}
	sensor := strings.TrimPrefix(r.URL.Path, pathTelemetry)
	if sensor == "" {
		writeJSON(w, http.StatusOK, map[string]interface{}{"sensors": store.Sensors()})
		return
	}
	data, err := store.MarshalSeriesJSON(sensor)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.fleet != nil {
		active := s.fleet.ActiveDevices()
		status := "ok"
		if active == 0 {
			status = "fleet-offline"
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"status": status, "active_devices": active,
		})
		return
	}
	status := "ok"
	if !s.qrm.Online() {
		status = "qpu-offline"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}

func queryInt(r *http.Request, key string, def int) int {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}
