package mqss

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/qdmi"
	"repro/internal/qrm"
)

// Streaming edge cases: a client that walks away mid-NDJSON-stream must not
// wedge the server or lose the batch, and a server-side job failure must
// surface through StreamBatch as a failed record, not a broken stream.

func newPacedStack(t *testing.T, latency time.Duration, workers int) (*qrm.Manager, *device.QPU, *httptest.Server) {
	t.Helper()
	qpu := device.NewTwin20Q(7)
	if latency > 0 {
		qpu.SetExecLatency(latency)
	}
	dev := qdmi.NewDevice(qpu, nil)
	m := qrm.NewManager(dev)
	if err := m.Start(workers); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(m, dev))
	t.Cleanup(func() {
		srv.Close()
		m.Stop()
	})
	return m, qpu, srv
}

func batchBody(t *testing.T, n, shots int) *bytes.Reader {
	t.Helper()
	reqs := make([]qrm.Request, n)
	for i := range reqs {
		reqs[i] = qrm.Request{Circuit: circuit.GHZ(3), Shots: shots, User: "edge"}
	}
	body, err := json.Marshal(reqs)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(body)
}

func TestStreamBatchClientDisconnectMidStream(t *testing.T) {
	const jobs = 12
	m, _, srv := newPacedStack(t, 5*time.Millisecond, 2)

	resp, err := http.Post(srv.URL+"/api/v1/jobs/batch?stream=1", "application/json",
		batchBody(t, jobs, 5))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// Read the header line and exactly one completed job, then hang up with
	// most of the batch still streaming.
	br := bufio.NewReader(resp.Body)
	header, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("reading header: %v", err)
	}
	if !strings.Contains(header, "job_ids") {
		t.Fatalf("header line: %s", header)
	}
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("reading first job: %v", err)
	}
	resp.Body.Close() // abrupt disconnect

	// The server must keep executing the batch and settle every job; a
	// wedged handler would leave the queue non-empty forever.
	done := make(chan struct{})
	go func() {
		m.WaitIdle()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server did not settle the batch after client disconnect")
	}
	snap := m.Metrics()
	if snap.Completed != jobs {
		t.Fatalf("completed %d of %d after disconnect", snap.Completed, jobs)
	}
	if snap.Failed != 0 {
		t.Fatalf("%d jobs failed after disconnect", snap.Failed)
	}
	// The server must still answer new requests (the handler goroutine for
	// the dead stream exits instead of holding anything).
	r2, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("healthz after disconnect: %d", r2.StatusCode)
	}
}

func TestStreamBatchSurfacesServerSideJobFailure(t *testing.T) {
	_, qpu, srv := newPacedStack(t, 0, 1)
	// One worker executes in submission order; fault exactly the first
	// execution so precisely one job fails server-side.
	qpu.InjectFaults(1)

	client := NewRemoteClient(srv.URL, nil)
	reqs := make([]qrm.Request, 3)
	for i := range reqs {
		reqs[i] = qrm.Request{Circuit: circuit.GHZ(3), Shots: 5, User: "edge"}
	}
	var streamed []*qrm.Job
	jobs, err := client.StreamBatch(context.Background(), reqs, func(j *qrm.Job) { streamed = append(streamed, j) })
	if err != nil {
		t.Fatalf("StreamBatch with a failing job should still deliver the batch: %v", err)
	}
	if len(jobs) != 3 || len(streamed) != 3 {
		t.Fatalf("delivered %d jobs, streamed %d, want 3/3", len(jobs), len(streamed))
	}
	failed, done := 0, 0
	for _, j := range jobs {
		switch j.Status {
		case qrm.StatusFailed:
			failed++
			if j.Error == "" || !strings.Contains(j.Error, "fault") {
				t.Fatalf("failed job without a usable error: %q", j.Error)
			}
			if len(j.Counts) != 0 {
				t.Fatalf("failed job carries counts: %v", j.Counts)
			}
		case qrm.StatusDone:
			done++
			if len(j.Counts) == 0 {
				t.Fatalf("done job %d has no counts", j.ID)
			}
		default:
			t.Fatalf("job %d in non-terminal state %s", j.ID, j.Status)
		}
	}
	if failed != 1 || done != 2 {
		t.Fatalf("failed=%d done=%d, want 1 failed / 2 done", failed, done)
	}
}

func TestStreamBatchFleetSurfacesFailureEnvelope(t *testing.T) {
	// Fleet-mode variant: a genuine job failure on a healthy device arrives
	// through the routed stream as a failed fleet record with the device-
	// level result attached.
	qpu := device.NewTwin20Q(9)
	dev := qdmi.NewDevice(qpu, nil)
	f := newTestFleet(t, map[string]*qdmi.Device{"solo": dev}, 1)
	srv := httptest.NewServer(NewFleetServer(f))
	t.Cleanup(srv.Close)

	qpu.InjectFaults(1)
	client := NewRemoteClient(srv.URL, nil)
	reqs := []qrm.Request{
		{Circuit: circuit.GHZ(3), Shots: 5, User: "edge"},
		{Circuit: circuit.GHZ(3), Shots: 5, User: "edge"},
	}
	jobs, err := client.StreamBatchRouted(context.Background(), reqs, RouteOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for _, j := range jobs {
		if j.Status == "failed" {
			failed++
			if j.Error == "" || j.Result == nil {
				t.Fatalf("fleet failure without error/result: %+v", j)
			}
		}
	}
	if failed != 1 {
		t.Fatalf("failed=%d, want 1", failed)
	}
}
