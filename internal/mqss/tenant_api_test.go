package mqss

// Multi-tenant admission behavior through the real HTTP stack: the token
// bucket refusing with 429/Retry-After, the client absorbing retryable
// refusals (rate_limited, shed, interrupted) into one slow submission, and
// the WFQ fairness property under overload.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/durable"
	"repro/internal/fleet"
	"repro/internal/qdmi"
	"repro/internal/tenant"
)

// TestClientAbsorbsRateLimit: a burst past the token bucket surfaces to the
// caller as slower submissions, never as errors — the client honors
// Retry-After and backs off until admitted.
func TestClientAbsorbsRateLimit(t *testing.T) {
	_, server := pacedStack(t, 96, 0, 2)
	server.SetTenantLimits(50, 3) // 3-deep bucket: the 4th burst submit throttles
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)
	client := NewRemoteClient(srv.URL, srv.Client())

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 4; i++ {
		h, err := client.Submit(ctx, SubmitRequest{Circuit: circuit.GHZ(3), Shots: 10, User: "burst"}, "")
		if err != nil {
			t.Fatalf("submit %d surfaced a rate-limit error: %v", i, err)
		}
		job, err := h.Wait(ctx)
		if err != nil || job.State != StateDone {
			t.Fatalf("job %d: %v %+v", i, err, job)
		}
	}

	ts, err := client.TenantsStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Limiter == nil || ts.Limiter.Rate != 50 || ts.Limiter.Burst != 3 {
		t.Fatalf("limiter config not exposed: %+v", ts.Limiter)
	}
	if len(ts.Tenants) != 1 || ts.Tenants[0].User != "burst" {
		t.Fatalf("tenant rows wrong: %+v", ts.Tenants)
	}
	row := ts.Tenants[0]
	if row.Throttled == 0 {
		t.Error("burst of 4 against a 3-deep bucket should have throttled")
	}
	if row.Allowed != 4 || row.Submitted != 4 || row.Completed != 4 {
		t.Errorf("admitted accounting wrong: %+v", row)
	}
}

// TestClientResubmitsShedJob: jobs evicted by admission control fail with a
// retryable shed envelope, and Wait transparently resubmits until the queue
// has room — conservation holds and the caller sees only completions.
func TestClientResubmitsShedJob(t *testing.T) {
	m, server := pacedStack(t, 97, 20*time.Millisecond, 1)
	m.SetAdmission(tenant.Admission{MaxTenantQueue: 1})
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)
	client := NewRemoteClient(srv.URL, srv.Client())

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var handles []*JobHandle
	for i := 0; i < 4; i++ {
		h, err := client.Submit(ctx, SubmitRequest{Circuit: circuit.GHZ(3), Shots: 10, User: "shedder"}, "")
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for i, h := range handles {
		job, err := h.Wait(ctx)
		if err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		if job.State != StateDone {
			t.Fatalf("job %d settled %s (%+v) despite transparent resubmission", i, job.State, job.Error)
		}
	}
	if shed := m.Metrics().Shed; shed == 0 {
		t.Error("a 4-job burst into a 1-deep tenant queue should have shed")
	}
	// Conservation at the queue: everything submitted is accounted.
	u := m.TenantUsage()
	if len(u) != 1 {
		t.Fatalf("tenant rows: %+v", u)
	}
	row := u[0]
	if row.Submitted != row.Completed+row.Failed+row.Cancelled+row.Shed+uint64(row.Queued) {
		t.Errorf("conservation broke: %+v", row)
	}
}

// slowDurableStack is durableStack with an execution latency on the
// devices, so jobs are still in flight when the test kills the node.
func slowDurableStack(t *testing.T, dir string, latency time.Duration) (*fleet.Scheduler, *Server, *durable.Store) {
	t.Helper()
	st, opened, err := durable.Open(dir, durable.Options{Sync: durable.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	f := fleet.New(fleet.PolicyBestFidelity, nil)
	for name, seed := range map[string]int64{"alpha": 61, "beta": 62} {
		qpu, err := device.New(device.Config{Name: name, Rows: 4, Cols: 5, Seed: seed, DigitalTwin: true})
		if err != nil {
			t.Fatal(err)
		}
		if latency > 0 {
			qpu.SetExecLatency(latency)
		}
		if err := f.AddDevice(name, qdmi.NewDevice(qpu, nil), 2); err != nil {
			t.Fatal(err)
		}
	}
	f.AttachStore(st)
	rs, err := f.Restore(opened.FleetJobs)
	if err != nil {
		t.Fatal(err)
	}
	st.NoteRestore(rs.Terminal, rs.Requeued, rs.Expired)
	server := NewFleetServer(f)
	server.AttachStore(st, opened.Idem)
	return f, server, st
}

// TestClientConvergesAcrossRestartInterruption is the satellite regression
// for PR 8's retryable interrupted envelope: a job caught by a restart —
// its dispatch deadline passing during recovery — lands as a retryable
// failure, and the client's Wait resubmits it without caller intervention.
func TestClientConvergesAcrossRestartInterruption(t *testing.T) {
	dir := t.TempDir()

	// The client talks to a stable URL fronting whichever incarnation is
	// alive, like a restarted node keeping its address.
	var handler atomic.Value // http.Handler
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	}))
	t.Cleanup(hs.Close)

	f1, server1, st1 := slowDurableStack(t, dir, 300*time.Millisecond)
	handler.Store(http.Handler(server1))
	client := NewRemoteClient(hs.URL, hs.Client())

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	h, err := client.Submit(ctx, SubmitRequest{
		Circuit: circuit.GHZ(3), Shots: 10, User: "restart", DeadlineMs: 60,
	}, "restart-key")
	if err != nil {
		t.Fatal(err)
	}

	// kill -9 while the job is in flight; by the time the node is back its
	// dispatch deadline has long passed, so recovery interrupts it.
	time.Sleep(100 * time.Millisecond)
	st1.Abandon()
	server1.Close()
	f1.Stop()

	f2, server2, st2 := slowDurableStack(t, dir, 0)
	t.Cleanup(func() { server2.Close(); f2.Stop(); st2.Close() })
	handler.Store(http.Handler(server2))

	// Sanity: the restored record really is the retryable interruption (a
	// fresh handle shows what a non-retrying caller would have seen).
	raw, err := client.V2Job(ctx, h.ID)
	if err != nil {
		t.Fatal(err)
	}
	if raw.State != StateFailed || raw.Error == nil || raw.Error.Code != CodeInterrupted || !raw.Error.Retryable {
		t.Fatalf("restored record should be retryable interrupted, got %+v err=%+v", raw.State, raw.Error)
	}

	// The original handle converges on its own: Wait sees the interrupted
	// record, resubmits, and returns the completed rerun.
	job, err := h.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateDone {
		t.Fatalf("client did not converge across the restart: %s %+v", job.State, job.Error)
	}
	if job.ID == raw.ID {
		t.Error("converged record should be a fresh submission, not the interrupted one")
	}
}

// TestWFQFairnessUnderOverload is the fairness property test: K tenants
// with unequal offered load (one at triple share) submit through the real
// HTTP stack into a backlogged single-worker pipeline. Weighted-fair
// claiming with equal weights must give each tenant an equal completion
// share while everyone is backlogged — the hog's extra load waits, and no
// tenant's share collapses to zero.
func TestWFQFairnessUnderOverload(t *testing.T) {
	m, server := pacedStack(t, 95, 2*time.Millisecond, 0)
	server.AutoRun = false // build the backlog first, then start the pipeline
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)
	client := NewRemoteClient(srv.URL, srv.Client())

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	load := map[string]int{"hog": 60, "t-1": 20, "t-2": 20, "t-3": 20}
	users := make([]string, 0, len(load))
	for u := range load {
		users = append(users, u)
	}
	sort.Strings(users)
	total := 0
	for _, u := range users {
		for i := 0; i < load[u]; i++ {
			if _, err := client.Submit(ctx, SubmitRequest{Circuit: circuit.GHZ(3), Shots: 5, User: u}, ""); err != nil {
				t.Fatal(err)
			}
			total++
		}
	}

	// The event bus firehose records true completion order (the simulation
	// clock stamps identical jobs with identical EndTimes, so records alone
	// cannot order them).
	sub := m.Events().Subscribe(0, 4096)
	defer sub.Close()
	if err := m.Start(1); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	m.WaitIdle()

	var finished []string // tenant per completion, in completion order
	deadline := time.After(10 * time.Second)
	for len(finished) < total {
		select {
		case ev := <-sub.Events():
			if ev.To != "done" {
				continue
			}
			j, err := m.Job(ev.JobID)
			if err != nil {
				t.Fatal(err)
			}
			finished = append(finished, j.Request.User)
		case <-deadline:
			t.Fatalf("only %d/%d completions observed", len(finished), total)
		}
	}

	// Measure each tenant's share of the first 40 completions — the window
	// where every tenant was still backlogged.
	window := finished[:40]
	share := map[string]int{}
	for _, d := range window {
		share[d]++
	}
	for _, u := range users {
		if share[u] < 6 || share[u] > 14 {
			t.Errorf("tenant %s completion share %d/40 outside fair band [6,14] (shares: %v)",
				u, share[u], share)
		}
	}
	// Explicit anti-starvation check on the earliest window.
	early := map[string]int{}
	for _, d := range finished[:20] {
		early[d]++
	}
	for _, u := range users {
		if early[u] == 0 {
			t.Errorf("tenant %s starved out of the first 20 completions (%v)", u, early)
		}
	}
}
