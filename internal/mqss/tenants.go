package mqss

import (
	"math"
	"net/http"
	"sort"

	"repro/internal/tenant"
)

// pathV2AdminTenants exposes the multi-tenant admission plane: per-user
// queue accounting (submitted/completed/shed and live depth), token-bucket
// throttle counters, and the configured limits. Operators hit it through
// `qhpcctl tenants status`.
const pathV2AdminTenants = "/api/v2/admin/tenants"

// TenantsStatus is the wire shape of GET /api/v2/admin/tenants. With no
// limiter and no queue bounds configured the endpoint still answers 200
// with both sections absent, so tooling can distinguish "no admission
// control configured" from "endpoint missing".
type TenantsStatus struct {
	// Limiter describes the token-bucket configuration (absent when rate
	// limiting is off).
	Limiter *LimiterStatus `json:"limiter,omitempty"`
	// Admission describes the queue-depth bounds (absent when unbounded).
	Admission *tenant.Admission `json:"admission,omitempty"`
	// Tenants has one row per user ever seen, sorted by user.
	Tenants []TenantStatus `json:"tenants"`
}

// LimiterStatus is the configured token-bucket shape.
type LimiterStatus struct {
	Rate  float64 `json:"rate"`  // tokens (jobs) per second
	Burst int     `json:"burst"` // bucket capacity
}

// TenantStatus is one tenant's merged view: dispatch-queue accounting
// plus the API edge's throttle counters and remaining quota.
type TenantStatus struct {
	tenant.Usage
	Allowed   uint64 `json:"allowed,omitempty"`
	Throttled uint64 `json:"throttled,omitempty"`
	// TokensLeft is the tenant's current token balance (rounded to 3
	// decimals); RetryAfterSec is the whole seconds until one token
	// accrues, 0 when a submission would be admitted right now. Both
	// only appear when a limiter is configured.
	TokensLeft    *float64 `json:"tokens_left,omitempty"`
	RetryAfterSec int      `json:"retry_after,omitempty"`
}

// tenantsStatus assembles the admin snapshot from whichever backend this
// server fronts plus the HTTP-edge limiter.
func (s *Server) tenantsStatus() TenantsStatus {
	var usage []tenant.Usage
	var adm tenant.Admission
	if s.fleet != nil {
		usage = s.fleet.TenantUsage()
		adm = s.fleet.Admission()
	} else {
		usage = s.qrm.TenantUsage()
		adm = s.qrm.Admission()
	}
	rows := map[string]*TenantStatus{}
	for _, u := range usage {
		cp := TenantStatus{Usage: u}
		rows[u.User] = &cp
	}
	out := TenantsStatus{Tenants: []TenantStatus{}}
	if adm.Enabled() {
		a := adm
		out.Admission = &a
	}
	if s.limiter != nil {
		out.Limiter = &LimiterStatus{Rate: s.limiter.Rate(), Burst: s.limiter.Burst()}
		for _, lu := range s.limiter.Usage() {
			r, ok := rows[lu.User]
			if !ok {
				// Throttled before any submission was admitted: the tenant
				// exists at the edge but not yet in the queue accounting.
				r = &TenantStatus{Usage: tenant.Usage{User: lu.User}}
				rows[lu.User] = r
			}
			r.Allowed, r.Throttled = lu.Allowed, lu.Throttled
			// Surface remaining quota per tenant: Remaining refreshes the
			// bucket, so the row reflects accrual since the last submission
			// rather than the balance frozen at refusal time.
			tokens := math.Round(s.limiter.Remaining(lu.User)*1000) / 1000
			r.TokensLeft = &tokens
			if ra := s.limiter.RetryAfter(lu.User); ra > 0 {
				r.RetryAfterSec = retryAfterSeconds(ra)
			}
		}
	}
	users := make([]string, 0, len(rows))
	for u := range rows {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		out.Tenants = append(out.Tenants, *rows[u])
	}
	return out
}

func (s *Server) handleV2AdminTenants(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeV2Error(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			"method not allowed; use GET", false)
		return
	}
	writeJSON(w, http.StatusOK, s.tenantsStatus())
}
