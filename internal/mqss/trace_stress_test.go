package mqss

// Stress for the tracing plane's lock-free contract, meaningful under
// -race (the CI test job runs the package that way): workers append spans
// and the retention ring evicts trace pointers while HTTP readers snapshot
// the same traces through GET /api/v2/jobs/{id}/trace. Nothing here
// asserts timings — the point is that concurrent append/evict/read holds
// up with zero torn reads, and that the endpoint always answers with
// either a tree or the documented 404.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/circuit"
)

func TestTraceStressConcurrentReadersAndEviction(t *testing.T) {
	m, server := pacedStack(t, 91, 500*time.Microsecond, 4)
	// A tiny ring forces constant eviction under the submit load, so
	// readers race eviction on nearly every request.
	m.SetTraceRetention(4)
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)

	const (
		submitters       = 4
		jobsPerSubmitter = 25
	)
	var (
		submitted atomic.Int64
		trees     atomic.Int64
		misses    atomic.Int64
		wg        sync.WaitGroup
		done      = make(chan struct{})
	)

	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < jobsPerSubmitter; i++ {
				sreq := SubmitRequest{
					Circuit: circuit.GHZ(3 + (g+i)%3), Shots: 5,
					User: fmt.Sprintf("stress-%d", g),
				}
				status, body := contractDo(t, srv, http.MethodPost, "/api/v2/jobs", sreq, nil)
				if status != http.StatusAccepted {
					t.Errorf("submit = %d\n%s", status, body)
					return
				}
				submitted.Add(1)
			}
		}(g)
	}

	// Readers sweep the id space continuously while jobs run and evict.
	var readers sync.WaitGroup
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			id := 1
			for {
				select {
				case <-done:
					return
				default:
				}
				status, body := contractDo(t, srv, http.MethodGet,
					fmt.Sprintf("/api/v2/jobs/j-%d/trace", id), nil, nil)
				switch status {
				case http.StatusOK:
					trees.Add(1)
					if len(body) == 0 {
						t.Error("200 trace with empty body")
					}
				case http.StatusNotFound:
					misses.Add(1) // unknown job, or evicted: both documented
				default:
					t.Errorf("trace read = %d\n%s", status, body)
				}
				id = id%(submitters*jobsPerSubmitter) + 1
			}
		}()
	}

	wg.Wait()
	// Drain: every submitted job must settle so eviction has churned the
	// full id space at least once past the ring size.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if m.Metrics().QueueDepth == 0 && m.Metrics().Inflight == 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(done)
	readers.Wait()

	if got := submitted.Load(); got != submitters*jobsPerSubmitter {
		t.Fatalf("submitted %d jobs, want %d", got, submitters*jobsPerSubmitter)
	}
	if trees.Load() == 0 {
		t.Errorf("readers never saw a span tree (trees=0, misses=%d)", misses.Load())
	}
	retained, _ := m.TraceStats()
	if retained > 4 {
		t.Errorf("retention ring holds %d traces, cap 4", retained)
	}
	t.Logf("stress: %d submitted, %d tree reads, %d misses, %d retained",
		submitted.Load(), trees.Load(), misses.Load(), retained)
}
