package mqss

// The /api/v2 handlers: the async-by-default job resource API. Submission
// returns 202 + Location immediately (?wait= turns it into a bounded
// long-poll), GET /jobs/{id} reads the resource (?wait= long-polls for a
// terminal state), GET /jobs/{id}/events streams lifecycle transitions as
// NDJSON or SSE off the backend's event bus, DELETE cancels (propagating
// into the dispatch pipeline and fleet parking), and GET /jobs pages the
// history with opaque cursors. Every error is the structured envelope
// {code, message, retryable}.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/federation"
	"repro/internal/fleet"
	"repro/internal/qrm"
	"repro/internal/telemetry/trace"
)

const pathV2Jobs = "/api/v2/jobs"

// maxWait caps ?wait= long-polls so a stuck client cannot pin a handler
// goroutine forever; longer waits re-poll.
const maxWait = 60 * time.Second

// parseWait reads the ?wait= long-poll budget: a Go duration ("500ms",
// "3s") or a bare number of seconds. Zero means "don't wait".
func parseWait(r *http.Request) (time.Duration, error) {
	v := r.URL.Query().Get("wait")
	if v == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		secs, serr := strconv.ParseFloat(v, 64)
		if serr != nil {
			return 0, fmt.Errorf("malformed wait %q (want a duration like 3s)", v)
		}
		d = time.Duration(secs * float64(time.Second))
	}
	if d < 0 {
		return 0, fmt.Errorf("malformed wait %q (must be >= 0)", v)
	}
	if d > maxWait {
		d = maxWait
	}
	return d, nil
}

// retryAfterSeconds renders a wait as whole Retry-After seconds, rounded
// up with a floor of 1 so a refusal never tells the client "retry now".
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// deviceName is the single-device server's backend name ("" in fleet mode,
// where each job record carries its own placement).
func (s *Server) deviceName() string {
	if s.dev != nil {
		return s.dev.QPU().Name()
	}
	return ""
}

// v2JobRecord fetches the unified record for a backend job ID.
func (s *Server) v2JobRecord(id int, withRequest bool) (*Job, error) {
	if s.fleet != nil {
		fj, err := s.fleet.Job(id)
		if err != nil {
			return nil, err
		}
		var devRec *qrm.Job
		if fj.Status == fleet.JobRouted {
			devRec, _ = s.fleet.DeviceRecord(id)
		}
		return v2FromFleet(fj, devRec, withRequest), nil
	}
	j, err := s.qrm.Job(id)
	if err != nil {
		return nil, err
	}
	return v2FromQRM(j, s.deviceName(), withRequest), nil
}

// v2Settle drives the job toward a terminal state within ctx: in pipeline
// (or fleet) mode it waits on the workers; on a pipeline-less single-device
// server AutoRun covers with a synchronous drain, preserving the v1
// self-contained-server behavior for ?wait= callers. Returning without the
// job terminal is not an error — the caller reports the current state.
func (s *Server) v2Settle(ctx context.Context, id int) {
	if s.fleet != nil {
		_, _ = s.fleet.WaitContext(ctx, id)
		return
	}
	if !s.qrm.Running() && s.AutoRun {
		// Drive the queue one job at a time so the caller's wait budget is
		// honored between device round-trips — a deep queue behind this job
		// must not pin the handler past its ?wait= (a whole-queue Drain
		// would). Work stops at the budget; the job stays queued for the
		// next request.
		for ctx.Err() == nil {
			if rec, err := s.qrm.Job(id); err != nil || qrmTerminal(rec.Status) {
				return // already settled (e.g. a concurrent cancel)
			}
			j, err := s.qrm.Step()
			if err != nil || j == nil {
				return
			}
			if j.ID == id {
				return
			}
		}
		return
	}
	// Running pipeline — or a deliberately asynchronous server (AutoRun
	// off, no workers): wait out the budget either way. Someone may drain
	// the queue or start the pipeline while we block.
	_, _ = s.qrm.AwaitTerminal(ctx, id)
}

// handleV2Jobs: POST = async submit, GET = cursor-paginated listing.
func (s *Server) handleV2Jobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.v2Submit(w, r)
	case http.MethodGet:
		s.v2List(w, r)
	default:
		writeV2Error(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			fmt.Sprintf("method %s not allowed", r.Method), false)
	}
}

// v2Submit accepts one job and returns 202 + Location (async by default).
// ?wait= long-polls for completion and returns 200 with the terminal
// record when it arrives in time. An Idempotency-Key header makes retries
// safe: the same key replays the original submission's outcome instead of
// executing twice (bounded dedup window).
func (s *Server) v2Submit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeV2Error(w, http.StatusBadRequest, CodeInvalidRequest,
			"decoding request: "+err.Error(), false)
		return
	}
	wait, err := parseWait(r)
	if err != nil {
		writeV2Error(w, http.StatusBadRequest, CodeInvalidRequest, err.Error(), false)
		return
	}
	if s.fleet == nil && (req.Device != "" || req.Policy != "") {
		writeV2Error(w, http.StatusBadRequest, CodeInvalidRequest,
			"device/policy routing requires a fleet server", false)
		return
	}
	// Federation: place the job by rendezvous hash on (tenant,
	// idempotency-key) and forward it to its owner. Placement runs before
	// the rate limiter — admission is the owner's call, so a tenant's
	// token bucket is drawn exactly once per submission no matter which
	// node it entered through. Requests that already hopped once
	// (HeaderForwardedFrom set) are owned here by definition; fedProxy
	// rejects a second hop as a membership misconfiguration.
	if s.fed != nil && r.Header.Get(federation.HeaderForwardedFrom) == "" {
		if owner := s.fed.PlaceJob(req.User, r.Header.Get("Idempotency-Key")); owner != s.fed.Self() {
			s.fed.NoteForwardedSubmit()
			body, merr := json.Marshal(req)
			if merr != nil {
				writeV2Error(w, http.StatusInternalServerError, CodeInternal, merr.Error(), false)
				return
			}
			s.fedProxy(w, r, owner, bytes.NewReader(body), false)
			return
		}
	}
	if ok, retryAfter := s.limiter.Allow(req.User); !ok {
		// Admission is a contract, not a crash: the refusal names the wait
		// until one token accrues and the tenant's remaining balance, and
		// the envelope is retryable so clients back off and resubmit
		// instead of surfacing an error.
		secs := retryAfterSeconds(retryAfter)
		// Rounded to 3 decimals: sub-millitoken accrual between the refusal
		// and this read is noise, and the golden contract fixture pins the
		// rounded value.
		tokens := math.Round(s.limiter.Remaining(req.User)*1000) / 1000
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusTooManyRequests, &APIError{
			Code:          CodeRateLimited,
			Message:       fmt.Sprintf("tenant %q over submission rate limit", req.User),
			Retryable:     true,
			TokensLeft:    &tokens,
			RetryAfterSec: secs,
		})
		return
	}
	var opts fleet.SubmitOptions
	if s.fleet != nil {
		opts = fleet.SubmitOptions{Device: req.Device}
		if req.Policy != "" {
			pol := fleet.Policy(req.Policy)
			if err := pol.Validate(); err != nil {
				writeV2Error(w, http.StatusBadRequest, CodeInvalidRequest, err.Error(), false)
				return
			}
			opts.Policy = pol
		}
	}
	id, replayed, err := s.idem.do(r.Header.Get("Idempotency-Key"), func() (int, error) {
		return s.submitCore(req.qrmRequest(), opts)
	})
	if err != nil {
		status, code, retryable := http.StatusUnprocessableEntity, CodeUnprocessable, false
		if strings.Contains(err.Error(), "offline") {
			status, code, retryable = http.StatusServiceUnavailable, CodeUnavailable, true
		}
		writeV2Error(w, status, code, err.Error(), retryable)
		return
	}
	if rid := requestIDFrom(r); rid != "" && !replayed {
		// Correlate the HTTP request with the server-side trace: the root
		// span carries the id the client saw in X-Request-ID. Replays keep
		// the original submission's id.
		s.jobTrace(id).Root().SetAttr("request_id", rid)
	}
	if from := r.Header.Get(federation.HeaderForwardedFrom); s.fed != nil && from != "" && !replayed {
		// The submission hopped nodes: record the cross-node leg on the
		// owner's trace so `qhpcctl trace` shows where the job entered
		// the federation.
		leg := s.jobTrace(id).Root().StartChild("fed-forward",
			trace.Str("from_node", from), trace.Str("to_node", s.fed.Self()))
		leg.End()
	}
	if wait > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), wait)
		s.v2Settle(ctx, id)
		cancel()
	}
	job, err := s.v2JobRecord(id, true)
	if err != nil {
		writeV2Error(w, http.StatusInternalServerError, CodeInternal, err.Error(), false)
		return
	}
	w.Header().Set("Location", pathV2Jobs+"/"+job.ID)
	if replayed {
		w.Header().Set("Idempotency-Replayed", "true")
	}
	status := http.StatusAccepted
	if job.State.Terminal() {
		// The long-poll (or a replayed already-finished submission) caught
		// the terminal record: this response is the final word.
		status = http.StatusOK
	}
	writeJSON(w, status, job)
}

// v2List: GET /api/v2/jobs?user=&state=&cursor=&limit= — newest first,
// opaque continuation cursor. state accepts a comma-separated set of v2
// states ("running" matches routed fleet jobs too: the fleet does not track
// the device-level run phase in its own records).
func (s *Server) v2List(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 20
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeV2Error(w, http.StatusBadRequest, CodeInvalidRequest,
				fmt.Sprintf("malformed limit %q", v), false)
			return
		}
		if n > 100 {
			n = 100
		}
		limit = n
	}
	before := 0
	if v := q.Get("cursor"); v != "" {
		id, err := decodeCursor(v)
		if err != nil {
			writeV2Error(w, http.StatusBadRequest, CodeInvalidRequest, err.Error(), false)
			return
		}
		before = id
	}
	var states []JobState
	if v := q.Get("state"); v != "" {
		for _, part := range strings.Split(v, ",") {
			st, err := ParseJobState(strings.TrimSpace(part))
			if err != nil {
				writeV2Error(w, http.StatusBadRequest, CodeInvalidRequest, err.Error(), false)
				return
			}
			states = append(states, st)
		}
	}
	user := q.Get("user")

	page := &JobPage{Jobs: []*Job{}}
	var lastID int
	var more bool
	if s.fleet != nil {
		var filter map[fleet.JobStatus]bool
		if states != nil {
			filter = make(map[fleet.JobStatus]bool)
			for _, st := range states {
				switch st {
				case StateQueued:
					filter[fleet.JobPending] = true
				case StateRouted, StateRunning:
					filter[fleet.JobRouted] = true
				case StateDone:
					filter[fleet.JobDone] = true
				case StateFailed:
					filter[fleet.JobFailed] = true
				case StateCancelled:
					filter[fleet.JobCancelled] = true
				}
			}
		}
		jobs, m := s.fleet.ListJobs(user, filter, before, limit)
		for _, fj := range jobs {
			page.Jobs = append(page.Jobs, v2FromFleet(fj, nil, false))
			lastID = fj.ID
		}
		more = m
	} else {
		var filter map[qrm.JobStatus]bool
		if states != nil {
			filter = make(map[qrm.JobStatus]bool)
			for _, st := range states {
				switch st {
				case StateQueued:
					filter[qrm.StatusQueued] = true
				case StateRouted:
					filter[qrm.StatusCompiling] = true
				case StateRunning:
					filter[qrm.StatusRunning] = true
				case StateDone:
					filter[qrm.StatusDone] = true
				case StateFailed:
					filter[qrm.StatusFailed] = true
					filter[qrm.StatusInterrupted] = true
				case StateCancelled:
					filter[qrm.StatusCancelled] = true
				}
			}
		}
		jobs, m := s.qrm.ListJobs(user, filter, before, limit)
		dev := s.deviceName()
		for _, j := range jobs {
			page.Jobs = append(page.Jobs, v2FromQRM(j, dev, false))
			lastID = j.ID
		}
		more = m
	}
	if more && lastID > 0 {
		page.NextCursor = encodeCursor(lastID)
	}
	writeJSON(w, http.StatusOK, page)
}

// handleV2JobByID routes /api/v2/jobs/{id} and /api/v2/jobs/{id}/events.
func (s *Server) handleV2JobByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, pathV2Jobs+"/")
	idStr, sub, _ := strings.Cut(rest, "/")
	id, err := ParseJobID(idStr)
	if err != nil {
		writeV2Error(w, http.StatusBadRequest, CodeInvalidRequest, err.Error(), false)
		return
	}
	// Federation: the job ID names its owner. Requests for jobs another
	// member owns — reads, cancels, watch streams, traces — are relayed
	// there transparently; IDs outside every member's range fall through
	// to the local (404) path.
	if owner, proxied := s.fedJobOwner(id); proxied {
		if sub == "events" {
			s.fed.NoteProxiedStream()
		} else {
			s.fed.NoteProxiedRead()
		}
		s.fedProxy(w, r, owner, nil, sub == "events")
		return
	}
	switch sub {
	case "":
		switch r.Method {
		case http.MethodGet:
			s.v2Get(w, r, id)
		case http.MethodDelete:
			s.v2Cancel(w, id)
		default:
			writeV2Error(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
				fmt.Sprintf("method %s not allowed", r.Method), false)
		}
	case "events":
		if r.Method != http.MethodGet {
			writeV2Error(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
				fmt.Sprintf("method %s not allowed", r.Method), false)
			return
		}
		s.v2Watch(w, r, id)
	case "trace":
		s.v2Trace(w, r, id)
	default:
		writeV2Error(w, http.StatusNotFound, CodeNotFound,
			fmt.Sprintf("no resource %q under job %s", sub, idStr), false)
	}
}

// v2Get reads one job; ?wait= long-polls for a terminal state first and
// returns whatever state the job is in when the budget runs out (200 either
// way — the state field is the answer).
func (s *Server) v2Get(w http.ResponseWriter, r *http.Request, id int) {
	wait, err := parseWait(r)
	if err != nil {
		writeV2Error(w, http.StatusBadRequest, CodeInvalidRequest, err.Error(), false)
		return
	}
	job, err := s.v2JobRecord(id, true)
	if err != nil {
		writeV2Error(w, http.StatusNotFound, CodeNotFound, err.Error(), false)
		return
	}
	if wait > 0 && !job.State.Terminal() {
		ctx, cancel := context.WithTimeout(r.Context(), wait)
		s.v2Settle(ctx, id)
		cancel()
		if job, err = s.v2JobRecord(id, true); err != nil {
			writeV2Error(w, http.StatusInternalServerError, CodeInternal, err.Error(), false)
			return
		}
	}
	writeJSON(w, http.StatusOK, job)
}

// v2Cancel: DELETE /api/v2/jobs/{id}. Parked and queued jobs cancel
// immediately; in-flight jobs have the cancellation requested and settle
// cancelled at the pipeline's next stage boundary — 202 covers both, with
// the current record in the body.
func (s *Server) v2Cancel(w http.ResponseWriter, id int) {
	var err error
	if s.fleet != nil {
		err = s.fleet.Cancel(id)
	} else {
		err = s.qrm.Cancel(id)
	}
	if err != nil {
		switch {
		case strings.Contains(err.Error(), "no job"):
			writeV2Error(w, http.StatusNotFound, CodeNotFound, err.Error(), false)
		case strings.Contains(err.Error(), "already"):
			writeV2Error(w, http.StatusConflict, CodeConflict, err.Error(), false)
		default:
			writeV2Error(w, http.StatusInternalServerError, CodeInternal, err.Error(), false)
		}
		return
	}
	job, err := s.v2JobRecord(id, true)
	if err != nil {
		writeV2Error(w, http.StatusInternalServerError, CodeInternal, err.Error(), false)
		return
	}
	writeJSON(w, http.StatusAccepted, job)
}

// v2Watch: GET /api/v2/jobs/{id}/events — the server-push stream. NDJSON
// by default, SSE under Accept: text/event-stream. The stream opens with a
// synthetic snapshot event for the job's current state (so late watchers
// see where they stand), then follows the event bus until the job goes
// terminal, the client disconnects, or the server begins a graceful
// shutdown. Because the subscription starts before the snapshot read, a
// transition can appear twice (snapshot + live); consumers key on state,
// not event count.
func (s *Server) v2Watch(w http.ResponseWriter, r *http.Request, id int) {
	var bus *qrm.EventBus
	if s.fleet != nil {
		bus = s.fleet.Events()
	} else {
		bus = s.qrm.Events()
	}
	sub := bus.Subscribe(id, 32)
	defer sub.Close()

	job, err := s.v2JobRecord(id, false)
	if err != nil {
		writeV2Error(w, http.StatusNotFound, CodeNotFound, err.Error(), false)
		return
	}

	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev JobEvent) {
		if sse {
			_, _ = fmt.Fprint(w, "data: ")
		}
		_ = enc.Encode(ev)
		if sse {
			_, _ = fmt.Fprint(w, "\n")
		}
		if flusher != nil {
			flusher.Flush()
		}
	}

	// Watchers re-attaching after a restart learn they are looking at a
	// recovered job from the opening event's reason.
	snapReason := "snapshot"
	if job.Recovered && !job.State.Terminal() {
		snapReason = "recovered"
	}
	emit(JobEvent{JobID: job.ID, State: job.State, Device: job.Device, Reason: snapReason})
	if job.State.Terminal() {
		return
	}
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				return // bus closed (backend shutting down)
			}
			state := stateFromEvent(ev.To)
			emit(JobEvent{
				Seq: ev.Seq, JobID: FormatJobID(ev.JobID),
				State: state, Device: ev.Device, Reason: ev.Reason,
			})
			if state.Terminal() && ev.Reason != "cancel-requested" {
				return
			}
		case <-r.Context().Done():
			return
		case <-s.closing:
			// Graceful shutdown: end the stream cleanly so http.Server's
			// Shutdown can drain this handler.
			emit(JobEvent{JobID: job.ID, State: job.State, Reason: "server-closing"})
			return
		}
	}
}
