package mqss

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/qdmi"
	"repro/internal/qrm"
)

// pacedStack builds a twin-device QRM with a wall-clock execution latency
// and a running dispatch pipeline — wide enough in-flight windows to race
// watches and cancellations into.
func pacedStack(t *testing.T, seed int64, latency time.Duration, workers int) (*qrm.Manager, *Server) {
	t.Helper()
	qpu := device.NewTwin20Q(seed)
	if latency > 0 {
		qpu.SetExecLatency(latency)
	}
	m := qrm.NewManager(qdmi.NewDevice(qpu, nil))
	if workers > 0 {
		if err := m.Start(workers); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(m.Stop)
	}
	return m, NewServer(m, qdmi.NewDevice(qpu, nil))
}

func postV2(t *testing.T, srv *httptest.Server, path string, body interface{}, header map[string]string) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL+path, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeV2Job(t *testing.T, r io.Reader) *Job {
	t.Helper()
	var j Job
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return &j
}

func TestV2SubmitAsyncThenPoll(t *testing.T) {
	_, server := pacedStack(t, 50, 5*time.Millisecond, 2)
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)

	resp := postV2(t, srv, "/api/v2/jobs", SubmitRequest{
		Circuit: circuit.GHZ(4), Shots: 50, User: "async", Priority: 3,
	}, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	if loc == "" {
		t.Fatal("202 response missing Location header")
	}
	job := decodeV2Job(t, resp.Body)
	if job.ID != "j-1" || job.State.Terminal() {
		t.Fatalf("submit body = %+v, want non-terminal j-1", job)
	}
	if job.Priority != 3 || job.User != "async" {
		t.Errorf("submit echo lost fields: %+v", job)
	}

	// Long-poll the Location until terminal.
	resp2, err := srv.Client().Get(srv.URL + loc + "?wait=5s")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("poll status = %d", resp2.StatusCode)
	}
	final := decodeV2Job(t, resp2.Body)
	if final.State != StateDone {
		t.Fatalf("final state = %s (%+v)", final.State, final.Error)
	}
	total := 0
	for _, n := range final.Counts {
		total += n
	}
	if total != 50 {
		t.Errorf("counts total = %d, want 50", total)
	}
	if final.Device == "" || final.CompiledGates == 0 {
		t.Errorf("unified record missing device/compile info: %+v", final)
	}
}

func TestV2SubmitWaitReturns200(t *testing.T) {
	_, server := pacedStack(t, 51, 0, 2)
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)
	resp := postV2(t, srv, "/api/v2/jobs?wait=10s", SubmitRequest{
		Circuit: circuit.GHZ(3), Shots: 20, User: "sync",
	}, nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit?wait status = %d, want 200", resp.StatusCode)
	}
	if job := decodeV2Job(t, resp.Body); job.State != StateDone {
		t.Fatalf("state = %s, want done", job.State)
	}
}

func TestV2LongPollTimeoutKeepsJobQueued(t *testing.T) {
	// No pipeline and AutoRun off: nothing will execute, so the long-poll
	// must time out and report the job still queued — not hang, not error.
	m, server := pacedStack(t, 52, 0, 0)
	server.AutoRun = false
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)

	resp := postV2(t, srv, "/api/v2/jobs", SubmitRequest{Circuit: circuit.GHZ(2), Shots: 5}, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	start := time.Now()
	resp2, err := srv.Client().Get(srv.URL + "/api/v2/jobs/j-1?wait=100ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("long-poll status = %d", resp2.StatusCode)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond || elapsed > 2*time.Second {
		t.Errorf("long-poll returned after %v, want ~100ms", elapsed)
	}
	if job := decodeV2Job(t, resp2.Body); job.State != StateQueued {
		t.Errorf("state after timeout = %s, want queued", job.State)
	}
	if n := m.PendingCount(); n != 1 {
		t.Errorf("queue depth = %d, want 1 (long-poll must not consume the job)", n)
	}
}

func TestV2ErrorEnvelope(t *testing.T) {
	_, server := pacedStack(t, 53, 0, 1)
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)
	c := srv.Client()

	check := func(t *testing.T, resp *http.Response, status int, code string, retryable bool) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != status {
			t.Errorf("status = %d, want %d", resp.StatusCode, status)
		}
		var e APIError
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("decoding envelope: %v", err)
		}
		if e.Code != code || e.Message == "" || e.Retryable != retryable {
			t.Errorf("envelope = %+v, want code=%s retryable=%v", e, code, retryable)
		}
	}

	resp, _ := c.Get(srv.URL + "/api/v2/jobs/not-an-id")
	check(t, resp, 400, CodeInvalidRequest, false)

	resp, _ = c.Get(srv.URL + "/api/v2/jobs/j-404")
	check(t, resp, 404, CodeNotFound, false)

	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/api/v2/jobs", nil)
	resp, _ = c.Do(req)
	check(t, resp, 405, CodeMethodNotAllowed, false)

	req, _ = http.NewRequest(http.MethodHead, srv.URL+"/api/v2/jobs/j-1", nil)
	resp, _ = c.Do(req)
	if resp.StatusCode != 405 {
		t.Errorf("HEAD job status = %d, want 405", resp.StatusCode)
	}
	resp.Body.Close()

	resp, _ = c.Get(srv.URL + "/api/v2/jobs?cursor=%21%21")
	check(t, resp, 400, CodeInvalidRequest, false)

	resp, _ = c.Get(srv.URL + "/api/v2/jobs?state=bogus")
	check(t, resp, 400, CodeInvalidRequest, false)

	resp = postV2(t, srv, "/api/v2/jobs", SubmitRequest{Circuit: circuit.GHZ(2), Shots: 0}, nil)
	check(t, resp, 422, CodeUnprocessable, false)

	resp = postV2(t, srv, "/api/v2/jobs", SubmitRequest{
		Circuit: circuit.GHZ(2), Shots: 5, Device: "nope",
	}, nil)
	check(t, resp, 400, CodeInvalidRequest, false)

	// Cancel of a terminal job → conflict.
	resp = postV2(t, srv, "/api/v2/jobs?wait=10s", SubmitRequest{Circuit: circuit.GHZ(2), Shots: 5}, nil)
	job := decodeV2Job(t, resp.Body)
	resp.Body.Close()
	req, _ = http.NewRequest(http.MethodDelete, srv.URL+"/api/v2/jobs/"+job.ID, nil)
	resp, _ = c.Do(req)
	check(t, resp, 409, CodeConflict, false)
}

func TestV2IdempotencyReplay(t *testing.T) {
	m, server := pacedStack(t, 54, 0, 2)
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)

	req := SubmitRequest{Circuit: circuit.GHZ(3), Shots: 10, User: "idem"}
	hdr := map[string]string{"Idempotency-Key": "key-1"}

	resp := postV2(t, srv, "/api/v2/jobs", req, hdr)
	first := decodeV2Job(t, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("Idempotency-Replayed") != "" {
		t.Error("first submission must not be marked replayed")
	}

	resp = postV2(t, srv, "/api/v2/jobs", req, hdr)
	second := decodeV2Job(t, resp.Body)
	if resp.Header.Get("Idempotency-Replayed") != "true" {
		t.Error("replay missing Idempotency-Replayed header")
	}
	resp.Body.Close()
	if first.ID != second.ID {
		t.Fatalf("replay returned %s, want original %s", second.ID, first.ID)
	}
	// A different key is a different job.
	resp = postV2(t, srv, "/api/v2/jobs", req, map[string]string{"Idempotency-Key": "key-2"})
	third := decodeV2Job(t, resp.Body)
	resp.Body.Close()
	if third.ID == first.ID {
		t.Error("distinct keys must not dedupe")
	}
	if snap := m.Metrics(); snap.Submitted != 2 {
		t.Errorf("submitted = %d, want 2 (one per distinct key)", snap.Submitted)
	}
}

func TestV2IdempotencyConcurrentSameKey(t *testing.T) {
	m, server := pacedStack(t, 55, 0, 2)
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)

	const clients = 16
	ids := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postV2(t, srv, "/api/v2/jobs", SubmitRequest{
				Circuit: circuit.GHZ(2), Shots: 5, User: "race",
			}, map[string]string{"Idempotency-Key": "contended"})
			var j Job
			_ = json.NewDecoder(resp.Body).Decode(&j)
			resp.Body.Close()
			ids[i] = j.ID
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("concurrent same-key submissions diverged: %v", ids)
		}
	}
	if snap := m.Metrics(); snap.Submitted != 1 {
		t.Errorf("submitted = %d, want exactly 1 (no double execution)", snap.Submitted)
	}
}

func TestV2ListCursorPagination(t *testing.T) {
	_, server := pacedStack(t, 56, 0, 0) // AutoRun sync keeps jobs deterministic
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)
	users := []string{"alice", "bob"}
	for i := 0; i < 7; i++ {
		resp := postV2(t, srv, "/api/v2/jobs?wait=5s", SubmitRequest{
			Circuit: circuit.GHZ(2), Shots: 5, User: users[i%2],
		}, nil)
		resp.Body.Close()
	}
	var seen []string
	cursor := ""
	pages := 0
	for {
		url := srv.URL + "/api/v2/jobs?limit=3"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		resp, err := srv.Client().Get(url)
		if err != nil {
			t.Fatal(err)
		}
		var page JobPage
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		for _, j := range page.Jobs {
			seen = append(seen, j.ID)
			if j.Request != nil {
				t.Error("list pages must omit the request payload")
			}
		}
		pages++
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if len(seen) != 7 || pages != 3 || seen[0] != "j-7" || seen[6] != "j-1" {
		t.Fatalf("cursor walk = %v in %d pages", seen, pages)
	}
	// Filters: user + state.
	resp, err := srv.Client().Get(srv.URL + "/api/v2/jobs?user=alice&state=done&limit=10")
	if err != nil {
		t.Fatal(err)
	}
	var page JobPage
	_ = json.NewDecoder(resp.Body).Decode(&page)
	resp.Body.Close()
	if len(page.Jobs) != 4 {
		t.Errorf("alice/done jobs = %d, want 4", len(page.Jobs))
	}
	resp, err = srv.Client().Get(srv.URL + "/api/v2/jobs?state=queued,running&limit=10")
	if err != nil {
		t.Fatal(err)
	}
	_ = json.NewDecoder(resp.Body).Decode(&page)
	resp.Body.Close()
	if len(page.Jobs) != 0 {
		t.Errorf("queued/running after drain = %d, want 0", len(page.Jobs))
	}
}

// readEvents consumes NDJSON events until the stream closes, forwarding
// each on a channel.
func readEvents(t *testing.T, body io.Reader) []JobEvent {
	t.Helper()
	var out []JobEvent
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		line = strings.TrimPrefix(line, "data: ")
		var ev JobEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		out = append(out, ev)
	}
	return out
}

func TestV2WatchStreamNDJSON(t *testing.T) {
	_, server := pacedStack(t, 57, 20*time.Millisecond, 1)
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)

	resp := postV2(t, srv, "/api/v2/jobs", SubmitRequest{Circuit: circuit.GHZ(3), Shots: 10}, nil)
	job := decodeV2Job(t, resp.Body)
	resp.Body.Close()

	wresp, err := srv.Client().Get(srv.URL + "/api/v2/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	if ct := wresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %s", ct)
	}
	evs := readEvents(t, wresp.Body)
	if len(evs) < 2 {
		t.Fatalf("events = %+v, want snapshot + transitions", evs)
	}
	if evs[0].Reason != "snapshot" {
		t.Errorf("first event reason = %q, want snapshot", evs[0].Reason)
	}
	last := evs[len(evs)-1]
	if last.State != StateDone {
		t.Errorf("final event state = %s, want done", last.State)
	}
	for _, ev := range evs {
		if ev.JobID != job.ID {
			t.Errorf("event for %s on a filtered stream for %s", ev.JobID, job.ID)
		}
	}
}

func TestV2WatchSSE(t *testing.T) {
	_, server := pacedStack(t, 58, 10*time.Millisecond, 1)
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)
	resp := postV2(t, srv, "/api/v2/jobs", SubmitRequest{Circuit: circuit.GHZ(2), Shots: 5}, nil)
	job := decodeV2Job(t, resp.Body)
	resp.Body.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/api/v2/jobs/"+job.ID+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	wresp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	if ct := wresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("content type = %s, want text/event-stream", ct)
	}
	raw, _ := io.ReadAll(wresp.Body)
	if !bytes.Contains(raw, []byte("data: ")) {
		t.Errorf("SSE body missing data: frames: %q", raw)
	}
	evs := readEvents(t, bytes.NewReader(raw))
	if len(evs) == 0 || evs[len(evs)-1].State != StateDone {
		t.Errorf("SSE events = %+v", evs)
	}
}

// TestV2SubmitWatchCancelRoundTrip is the acceptance round trip, driven
// through the context-aware client: submit async, watch the stream, cancel
// mid-flight, and observe the terminal cancelled state — all on the v2
// resource.
func TestV2SubmitWatchCancelRoundTrip(t *testing.T) {
	_, server := pacedStack(t, 59, 50*time.Millisecond, 1)
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)
	ctx := context.Background()
	c := NewRemoteClient(srv.URL, srv.Client())

	// A filler job keeps the single worker busy so ours stays cancellable.
	filler, err := c.Submit(ctx, SubmitRequest{Circuit: circuit.GHZ(2), Shots: 5}, "")
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Submit(ctx, SubmitRequest{Circuit: circuit.GHZ(3), Shots: 10, User: "roundtrip"}, "rt-key")
	if err != nil {
		t.Fatal(err)
	}

	type watchResult struct {
		job *Job
		evs []JobEvent
		err error
	}
	watched := make(chan watchResult, 1)
	go func() {
		var evs []JobEvent
		job, err := h.Watch(ctx, func(ev JobEvent) { evs = append(evs, ev) })
		watched <- watchResult{job, evs, err}
	}()

	time.Sleep(10 * time.Millisecond) // let the watch attach
	if err := h.Cancel(ctx); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	res := <-watched
	if res.err != nil {
		t.Fatalf("watch: %v", res.err)
	}
	if res.job.State != StateCancelled {
		t.Fatalf("final state = %s, want cancelled (events: %+v)", res.job.State, res.evs)
	}
	if len(res.evs) == 0 || res.evs[len(res.evs)-1].State != StateCancelled {
		t.Errorf("watch events = %+v, want trailing cancelled", res.evs)
	}
	if _, err := filler.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestV2ConcurrentWatchersCancelStress is the -race workout the satellite
// asks for: many jobs, several watch subscribers per job, cancellations
// racing the dispatch pipeline. Every watcher must terminate and every job
// must land terminal with watchers agreeing on the final state.
func TestV2ConcurrentWatchersCancelStress(t *testing.T) {
	_, server := pacedStack(t, 60, 2*time.Millisecond, 4)
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)
	ctx := context.Background()
	c := NewRemoteClient(srv.URL, srv.Client())

	const jobs = 24
	const watchersPerJob = 3
	handles := make([]*JobHandle, jobs)
	for i := range handles {
		h, err := c.Submit(ctx, SubmitRequest{Circuit: circuit.GHZ(2 + i%3), Shots: 5}, "")
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	finals := make([][]JobState, jobs)
	for i := range finals {
		finals[i] = make([]JobState, watchersPerJob)
	}
	var wg sync.WaitGroup
	for i, h := range handles {
		for w := 0; w < watchersPerJob; w++ {
			wg.Add(1)
			go func(i, w int, h *JobHandle) {
				defer wg.Done()
				wh, err := c.Handle(h.ID)
				if err != nil {
					t.Error(err)
					return
				}
				job, err := wh.Watch(ctx, nil)
				if err != nil {
					t.Errorf("watcher %d/%d: %v", i, w, err)
					return
				}
				finals[i][w] = job.State
			}(i, w, h)
		}
		if i%2 == 1 {
			wg.Add(1)
			go func(h *JobHandle) {
				defer wg.Done()
				_ = h.Cancel(ctx) // racing the pipeline; "already done" is fine
			}(h)
		}
	}
	wg.Wait()
	for i, h := range handles {
		job, err := h.Poll(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !job.State.Terminal() {
			t.Errorf("job %s stuck in %s", h.ID, job.State)
		}
		for w, st := range finals[i] {
			if st != job.State {
				t.Errorf("watcher %d of job %s saw %s, record says %s", w, h.ID, st, job.State)
			}
		}
	}
}

func TestV2DeadlineExceededEnvelope(t *testing.T) {
	m, server := pacedStack(t, 61, 0, 0)
	server.AutoRun = false
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)

	resp := postV2(t, srv, "/api/v2/jobs", SubmitRequest{
		Circuit: circuit.GHZ(2), Shots: 5, DeadlineMs: 1,
	}, nil)
	job := decodeV2Job(t, resp.Body)
	resp.Body.Close()
	time.Sleep(10 * time.Millisecond)
	if err := m.Start(1); err != nil {
		t.Fatal(err)
	}
	defer m.Stop()
	m.WaitIdle()

	resp2, err := srv.Client().Get(srv.URL + "/api/v2/jobs/" + job.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	final := decodeV2Job(t, resp2.Body)
	if final.State != StateFailed || final.Error == nil ||
		final.Error.Code != CodeDeadlineExceeded || !final.Error.Retryable {
		t.Fatalf("expired job = %+v (err %+v), want failed/deadline_exceeded/retryable", final, final.Error)
	}
}

func TestV2ServerCloseEndsWatch(t *testing.T) {
	_, server := pacedStack(t, 62, 200*time.Millisecond, 1)
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)

	resp := postV2(t, srv, "/api/v2/jobs", SubmitRequest{Circuit: circuit.GHZ(2), Shots: 5}, nil)
	job := decodeV2Job(t, resp.Body)
	resp.Body.Close()

	done := make(chan []JobEvent, 1)
	wresp, err := srv.Client().Get(srv.URL + "/api/v2/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		defer wresp.Body.Close()
		done <- readEvents(t, wresp.Body)
	}()
	time.Sleep(10 * time.Millisecond)
	server.Close()
	server.Close() // idempotent
	select {
	case evs := <-done:
		if len(evs) == 0 || evs[len(evs)-1].Reason != "server-closing" {
			t.Errorf("stream should end with server-closing, got %+v", evs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch stream did not end on server Close")
	}
}

func TestV2FleetSubmitWatchCancel(t *testing.T) {
	f := newTestFleet(t, map[string]*qdmi.Device{
		"alpha": twinDev(t, "alpha", 4, 5, 71),
		"beta":  twinDev(t, "beta", 3, 3, 72),
	}, 2)
	server := NewFleetServer(f)
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)
	ctx := context.Background()
	c := NewRemoteClient(srv.URL, srv.Client())

	// Routed submit + wait: the unified record carries placement + score.
	h, err := c.Submit(ctx, SubmitRequest{Circuit: circuit.GHZ(3), Shots: 10, User: "fleet"}, "")
	if err != nil {
		t.Fatal(err)
	}
	job, err := h.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateDone || job.Device == "" || job.Score == 0 {
		t.Fatalf("fleet v2 record = %+v", job)
	}

	// Park a pinned job by draining its device, watch it, cancel it: the
	// cancellation must reach the fleet's parking lot.
	if err := f.Drain("beta"); err != nil {
		t.Fatal(err)
	}
	ph, err := c.Submit(ctx, SubmitRequest{Circuit: circuit.GHZ(2), Shots: 5, Device: "beta"}, "")
	if err != nil {
		t.Fatal(err)
	}
	parked, err := ph.Poll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if parked.State != StateQueued || parked.Pinned != "beta" {
		t.Fatalf("pinned job on drained device = %+v, want queued/pinned", parked)
	}
	watched := make(chan *Job, 1)
	go func() {
		wh, _ := c.Handle(ph.ID)
		job, err := wh.Watch(ctx, nil)
		if err != nil {
			t.Error(err)
		}
		watched <- job
	}()
	time.Sleep(10 * time.Millisecond)
	if err := ph.Cancel(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case job := <-watched:
		if job == nil || job.State != StateCancelled {
			t.Fatalf("parked-cancel final = %+v, want cancelled", job)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch of parked job never terminated after cancel")
	}
}

// TestV2FleetMigrationEvents drains a device mid-stream and checks the
// watch surface reports the migration re-route onto the sibling.
func TestV2FleetMigrationEvents(t *testing.T) {
	alpha := twinDev(t, "alpha", 4, 5, 73)
	alpha.QPU().SetExecLatency(30 * time.Millisecond)
	// Only alpha is registered at submission time, so every job routes
	// there deterministically; beta joins just before the drain and becomes
	// the migration target.
	f := newTestFleet(t, map[string]*qdmi.Device{"alpha": alpha}, 1)
	server := NewFleetServer(f)
	srv := httptest.NewServer(server)
	t.Cleanup(srv.Close)
	ctx := context.Background()
	c := NewRemoteClient(srv.URL, srv.Client())

	var handles []*JobHandle
	for i := 0; i < 4; i++ {
		h, err := c.Submit(ctx, SubmitRequest{Circuit: circuit.GHZ(3), Shots: 5, User: "mig"}, "")
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	var mu sync.Mutex
	var evs []JobEvent
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		wh, _ := c.Handle(handles[3].ID)
		_, _ = wh.Watch(ctx, func(ev JobEvent) {
			mu.Lock()
			evs = append(evs, ev)
			mu.Unlock()
		})
	}()
	time.Sleep(10 * time.Millisecond)
	if err := f.AddDevice("beta", twinDev(t, "beta", 4, 5, 74), 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Drain("alpha"); err != nil {
		t.Fatal(err)
	}
	for _, h := range handles {
		job, err := h.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !job.State.Terminal() {
			t.Errorf("job %s = %s after drain, want terminal", h.ID, job.State)
		}
	}
	<-watchDone
	mu.Lock()
	defer mu.Unlock()
	sawMigration := false
	for _, ev := range evs {
		if ev.Reason == "migrated" {
			sawMigration = true
			if ev.Device != "beta" {
				t.Errorf("migration event device = %s, want beta", ev.Device)
			}
		}
	}
	if !sawMigration {
		t.Errorf("no migration event in %+v", evs)
	}
	if job, _ := handles[3].Poll(ctx); job.Migrations == 0 && job.Device == "beta" {
		t.Errorf("migrated record inconsistent: %+v", job)
	}
}
