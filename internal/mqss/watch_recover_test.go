package mqss

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/durable"
	"repro/internal/fleet"
	"repro/internal/qdmi"
)

// pacedDurableStack is durableStack with a wall-clock execution latency on
// its single device, so jobs stay in flight long enough for a crash to
// strand them and for a watcher to re-attach mid-replay.
func pacedDurableStack(t *testing.T, dir string, latency time.Duration) (*fleet.Scheduler, *Server, *httptest.Server, *durable.Store) {
	t.Helper()
	st, opened, err := durable.Open(dir, durable.Options{Sync: durable.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	qpu, err := device.New(device.Config{Name: "paced", Rows: 4, Cols: 5, Seed: 9, DigitalTwin: true})
	if err != nil {
		t.Fatal(err)
	}
	qpu.SetExecLatency(latency)
	f := fleet.New(fleet.PolicyBestFidelity, nil)
	if err := f.AddDevice("paced", qdmi.NewDevice(qpu, nil), 1); err != nil {
		t.Fatal(err)
	}
	f.AttachStore(st)
	rs, err := f.Restore(opened.FleetJobs)
	if err != nil {
		t.Fatal(err)
	}
	st.NoteRestore(rs.Terminal, rs.Requeued, rs.Expired)
	server := NewFleetServer(f)
	server.AttachStore(st, opened.Idem)
	hs := httptest.NewServer(server)
	return f, server, hs, st
}

// TestWatchReattachAfterRestartSeesRecoveredFirst pins the re-attach
// ordering contract: a client that reconnects its watch while the node is
// replaying the WAL must see the `recovered` event for a requeued job
// BEFORE any new state transition. Without that opening event, a watcher
// cannot tell a rebooted job from a stream that silently skipped states.
func TestWatchReattachAfterRestartSeesRecoveredFirst(t *testing.T) {
	dir := t.TempDir()
	f1, server1, hs1, st1 := pacedDurableStack(t, dir, 400*time.Millisecond)

	// Queue three slow jobs on the single worker, then crash while the
	// tail of the queue has not run: those jobs land in the WAL as
	// non-terminal and must be requeued on reboot.
	req := SubmitRequest{Circuit: circuit.GHZ(3), Shots: 10, User: "reattach"}
	var last *Job
	for i := 0; i < 3; i++ {
		resp := postV2(t, hs1, "/api/v2/jobs", req, nil)
		last = decodeV2Job(t, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %d", i, resp.StatusCode)
		}
	}

	// kill -9.
	st1.Abandon()
	server1.Close()
	hs1.Close()
	f1.Stop()

	// Reboot and immediately re-attach the watch, racing the requeued
	// backlog that is draining through the 400ms-per-job worker.
	f2, server2, hs2, _ := pacedDurableStack(t, dir, 400*time.Millisecond)
	defer func() { server2.Close(); hs2.Close(); f2.Stop() }()

	wresp, err := http.Get(hs2.URL + "/api/v2/jobs/" + last.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	if wresp.StatusCode != http.StatusOK {
		t.Fatalf("re-attached watch = %d", wresp.StatusCode)
	}

	var events []JobEvent
	sc := bufio.NewScanner(wresp.Body)
	for sc.Scan() {
		var ev JobEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
		if ev.State.Terminal() {
			break
		}
	}
	if len(events) == 0 {
		t.Fatal("re-attached watch delivered no events")
	}
	if events[0].Reason != "recovered" {
		t.Fatalf("first event after re-attach = %+v, want reason \"recovered\"", events[0])
	}
	if events[0].State.Terminal() {
		t.Fatalf("recovered event already terminal (%s): the watch attached too late to pin ordering", events[0].State)
	}
	// Every new transition strictly follows the recovered marker, and the
	// stream still runs the job to completion.
	for i, ev := range events[1:] {
		if ev.Reason == "recovered" {
			t.Fatalf("recovered marker repeated at position %d: %+v", i+1, ev)
		}
	}
	if lastEv := events[len(events)-1]; !lastEv.State.Terminal() {
		t.Fatalf("stream ended without a terminal state: %+v", lastEv)
	}
}
