package netmodel

import (
	"fmt"
	"math"
)

// Link models the network connection between the quantum computer's control
// computer and the HPC resources: bandwidth, per-message latency, and a
// protocol efficiency factor (§2.4's "the control software has additional
// inefficiency").
type Link struct {
	BandwidthBps float64
	LatencyS     float64
	// Efficiency in (0, 1]: achievable goodput fraction of raw bandwidth.
	Efficiency float64
}

// GigabitEthernet returns the paper's 1 Gbit link with typical LAN latency
// and a conservative 60% protocol efficiency.
func GigabitEthernet() Link {
	return Link{BandwidthBps: GigabitEthernetBps, LatencyS: 200e-6, Efficiency: 0.6}
}

// Validate checks link parameters.
func (l Link) Validate() error {
	if l.BandwidthBps <= 0 {
		return fmt.Errorf("netmodel: bandwidth must be positive")
	}
	if l.LatencyS < 0 {
		return fmt.Errorf("netmodel: latency must be non-negative")
	}
	if l.Efficiency <= 0 || l.Efficiency > 1 {
		return fmt.Errorf("netmodel: efficiency must be in (0, 1]")
	}
	return nil
}

// TransferTime returns the seconds needed to move `bits` over the link in
// `messages` round-trip-incurring chunks.
func (l Link) TransferTime(bits float64, messages int) (float64, error) {
	if err := l.Validate(); err != nil {
		return 0, err
	}
	if bits < 0 {
		return 0, fmt.Errorf("netmodel: negative payload")
	}
	if messages < 1 {
		messages = 1
	}
	return bits/(l.BandwidthBps*l.Efficiency) + float64(messages)*l.LatencyS, nil
}

// JobTransfer describes the data movement of one quantum job (§2.4: "data
// transfer occurs in a few different steps while running a quantum
// computation"). Sizes in bits.
type JobTransfer struct {
	// CircuitBits is the submitted program (QASM/JSON payload).
	CircuitBits float64
	// OutputBits is the measured-results payload (dominant direction).
	OutputBits float64
	// ControlMessages counts request/acknowledge round trips.
	ControlMessages int
}

// EstimateJobTransfer sizes the §2.4 steps for a circuit job: gates encoded
// at ~128 bits each, output per the chosen format over `shots` shots of a
// `qubits`-wide register.
func EstimateJobTransfer(gates, qubits, shots int, format OutputFormat) (JobTransfer, error) {
	if gates < 0 || qubits < 1 || shots < 1 {
		return JobTransfer{}, fmt.Errorf("netmodel: bad job shape g=%d q=%d s=%d", gates, qubits, shots)
	}
	jt := JobTransfer{
		CircuitBits:     float64(gates) * 128,
		ControlMessages: 4, // submit, ack, poll, fetch
	}
	switch format {
	case FormatRawBitstrings:
		jt.OutputBits = float64(shots) * float64(qubits) * PaperBitsPerMeasuredBit
	case FormatHistogram:
		distinct := math.Min(float64(shots), math.Pow(2, float64(qubits)))
		jt.OutputBits = distinct * (float64(qubits)*PaperBitsPerMeasuredBit + 64)
	case FormatIQPairs:
		jt.OutputBits = float64(shots) * float64(qubits) * 128
	default:
		return JobTransfer{}, fmt.Errorf("netmodel: unknown format %d", format)
	}
	return jt, nil
}

// TotalTime returns the end-to-end transfer time of the job over the link.
func (jt JobTransfer) TotalTime(l Link) (float64, error) {
	return l.TransferTime(jt.CircuitBits+jt.OutputBits, jt.ControlMessages)
}

// ExecutionDominated reports whether QPU execution time (reset-dominated,
// §2.4) exceeds the transfer time — the paper's conclusion that the network
// is never the bottleneck for near-term systems.
func (jt JobTransfer) ExecutionDominated(l Link, shots int) (bool, error) {
	t, err := jt.TotalTime(l)
	if err != nil {
		return false, err
	}
	execS := float64(shots) * PaperResetSeconds
	return execS > t, nil
}
