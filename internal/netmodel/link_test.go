package netmodel

import (
	"math"
	"testing"
)

func TestLinkValidate(t *testing.T) {
	if err := (Link{}).Validate(); err == nil {
		t.Error("zero link should fail")
	}
	if err := (Link{BandwidthBps: 1e9, LatencyS: -1, Efficiency: 0.5}).Validate(); err == nil {
		t.Error("negative latency should fail")
	}
	if err := (Link{BandwidthBps: 1e9, Efficiency: 1.5}).Validate(); err == nil {
		t.Error("efficiency > 1 should fail")
	}
	if err := GigabitEthernet().Validate(); err != nil {
		t.Errorf("reference link invalid: %v", err)
	}
}

func TestTransferTimeComponents(t *testing.T) {
	l := Link{BandwidthBps: 1e6, LatencyS: 0.01, Efficiency: 1}
	// 1 Mbit over 1 Mbit/s = 1 s, plus 2 messages x 10 ms.
	got, err := l.TransferTime(1e6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.02) > 1e-12 {
		t.Errorf("transfer time = %g, want 1.02", got)
	}
	// Zero messages clamps to one latency.
	got, _ = l.TransferTime(0, 0)
	if math.Abs(got-0.01) > 1e-12 {
		t.Errorf("empty transfer = %g, want one latency", got)
	}
	if _, err := l.TransferTime(-1, 1); err == nil {
		t.Error("negative payload should fail")
	}
}

func TestEstimateJobTransferFormats(t *testing.T) {
	raw, err := EstimateJobTransfer(100, 20, 10000, FormatRawBitstrings)
	if err != nil {
		t.Fatal(err)
	}
	if raw.OutputBits != 10000*20*8 {
		t.Errorf("raw output bits = %g", raw.OutputBits)
	}
	// Histogram wins when the outcome space saturates (2^q << shots).
	rawSmall, err := EstimateJobTransfer(100, 10, 10000, FormatRawBitstrings)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := EstimateJobTransfer(100, 10, 10000, FormatHistogram)
	if err != nil {
		t.Fatal(err)
	}
	if hist.OutputBits >= rawSmall.OutputBits {
		t.Error("histogram should be smaller than raw at 10 qubits / 10k shots")
	}
	iq, err := EstimateJobTransfer(100, 20, 10000, FormatIQPairs)
	if err != nil {
		t.Fatal(err)
	}
	if iq.OutputBits != 16*raw.OutputBits {
		t.Errorf("IQ bits = %g, want 16x raw", iq.OutputBits)
	}
	if _, err := EstimateJobTransfer(-1, 20, 100, FormatRawBitstrings); err == nil {
		t.Error("negative gates should fail")
	}
	if _, err := EstimateJobTransfer(10, 20, 100, OutputFormat(9)); err == nil {
		t.Error("unknown format should fail")
	}
}

// §2.4's conclusion: execution time dominates transfer time on 1 GbE.
func TestExecutionDominatesTransfer(t *testing.T) {
	l := GigabitEthernet()
	jt, err := EstimateJobTransfer(200, 20, 10000, FormatRawBitstrings)
	if err != nil {
		t.Fatal(err)
	}
	dom, err := jt.ExecutionDominated(l, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !dom {
		t.Error("execution should dominate transfer for a 10k-shot job on 1 GbE")
	}
	transfer, _ := jt.TotalTime(l)
	execS := 10000 * PaperResetSeconds // 3 s
	if transfer > execS/100 {
		t.Errorf("transfer %gs should be <1%% of execution %gs", transfer, execS)
	}
}

func TestTransferTimeScalesWithPayload(t *testing.T) {
	l := GigabitEthernet()
	small, _ := EstimateJobTransfer(10, 5, 100, FormatRawBitstrings)
	big, _ := EstimateJobTransfer(10, 20, 100000, FormatIQPairs)
	ts, err := small.TotalTime(l)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := big.TotalTime(l)
	if err != nil {
		t.Fatal(err)
	}
	if tb <= ts {
		t.Error("larger payload should take longer")
	}
}
