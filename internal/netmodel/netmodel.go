// Package netmodel reproduces the §2.4 network analysis: the data-transfer
// needs of a near-term quantum computer attached to HPC resources over
// 1 Gbit ethernet, across the three output formats the paper enumerates —
// histograms of bitstrings, raw per-shot bitstrings, and raw complex IQ
// readout pairs — and the scaling of the required rate with qubit count.
package netmodel

import (
	"fmt"
	"math"
)

// OutputFormat is how measurement results are encoded for transfer.
type OutputFormat int

const (
	// FormatHistogram sends (bitstring, count) pairs — the most common
	// format for circuit jobs, and the most compact when the state
	// concentrates on few outcomes.
	FormatHistogram OutputFormat = iota
	// FormatRawBitstrings sends every shot's bitstring.
	FormatRawBitstrings
	// FormatIQPairs sends the raw complex readout value (two float64s)
	// per qubit per shot — pulse-level and readout-research work.
	FormatIQPairs
)

func (f OutputFormat) String() string {
	switch f {
	case FormatHistogram:
		return "histogram"
	case FormatRawBitstrings:
		return "raw-bitstrings"
	case FormatIQPairs:
		return "iq-pairs"
	}
	return fmt.Sprintf("format(%d)", int(f))
}

// Link budgets.
const (
	// GigabitEthernetBps is the paper's 1 Gbit connection.
	GigabitEthernetBps = 1e9
	// PaperResetSeconds is the passive qubit reset dominating each shot.
	PaperResetSeconds = 300e-6
	// PaperBitsPerMeasuredBit is the assumed encoding inefficiency: each
	// measured bit consumes 8 bits on the wire.
	PaperBitsPerMeasuredBit = 8
)

// Workload describes a continuously-measuring quantum workload.
type Workload struct {
	Qubits int
	// ShotSeconds is the duration of one shot; the paper's estimate uses
	// the 300 µs passive reset as the floor.
	ShotSeconds float64
	// BitsPerBit is the wire encoding width of one measured bit.
	BitsPerBit float64
	// DistinctOutcomes is the number of distinct bitstrings observed per
	// batch (used by the histogram format); 0 means worst case.
	DistinctOutcomes int
	// ShotsPerBatch is the batch size over which a histogram is built.
	ShotsPerBatch int
}

// PaperWorkload returns the §2.4 reference workload for n qubits:
// 300 µs shots, 8-bit-per-bit encoding, continuous measurement.
func PaperWorkload(n int) Workload {
	return Workload{
		Qubits:      n,
		ShotSeconds: PaperResetSeconds,
		BitsPerBit:  PaperBitsPerMeasuredBit,
	}
}

// ShotRate returns shots per second under continuous measurement.
func (w Workload) ShotRate() float64 {
	if w.ShotSeconds <= 0 {
		return 0
	}
	return 1 / w.ShotSeconds
}

// DataRateBps returns the continuous-measurement output data rate in bits
// per second for the given format.
func (w Workload) DataRateBps(format OutputFormat) (float64, error) {
	if w.Qubits < 1 {
		return 0, fmt.Errorf("netmodel: workload has %d qubits", w.Qubits)
	}
	if w.ShotSeconds <= 0 {
		return 0, fmt.Errorf("netmodel: shot duration must be positive")
	}
	bitsPerBit := w.BitsPerBit
	if bitsPerBit <= 0 {
		bitsPerBit = 1
	}
	switch format {
	case FormatRawBitstrings:
		// The paper's calculation: rate = shotRate * qubits * bitsPerBit.
		return w.ShotRate() * float64(w.Qubits) * bitsPerBit, nil
	case FormatHistogram:
		// Per batch: distinct outcomes * (bitstring + 64-bit count).
		shots := w.ShotsPerBatch
		if shots <= 0 {
			shots = 1000
		}
		distinct := w.DistinctOutcomes
		if distinct <= 0 || distinct > shots {
			distinct = shots // worst case: every outcome unique
		}
		maxDistinct := math.Pow(2, float64(w.Qubits))
		if float64(distinct) > maxDistinct {
			distinct = int(maxDistinct)
		}
		bitsPerBatch := float64(distinct) * (float64(w.Qubits)*bitsPerBit + 64)
		batchSeconds := float64(shots) * w.ShotSeconds
		return bitsPerBatch / batchSeconds, nil
	case FormatIQPairs:
		// Two float64s per qubit per shot.
		return w.ShotRate() * float64(w.Qubits) * 128, nil
	}
	return 0, fmt.Errorf("netmodel: unknown format %d", format)
}

// LinkUtilization returns the fraction of the link the workload consumes.
func (w Workload) LinkUtilization(format OutputFormat, linkBps float64) (float64, error) {
	if linkBps <= 0 {
		return 0, fmt.Errorf("netmodel: link rate must be positive")
	}
	rate, err := w.DataRateBps(format)
	if err != nil {
		return 0, err
	}
	return rate / linkBps, nil
}

// FitsLink reports whether the workload's output fits the link.
func (w Workload) FitsLink(format OutputFormat, linkBps float64) (bool, error) {
	u, err := w.LinkUtilization(format, linkBps)
	if err != nil {
		return false, err
	}
	return u <= 1, nil
}

// ScalingRow is one row of the §2.4 qubit-count scaling table.
type ScalingRow struct {
	Qubits      int
	RateBps     float64
	Utilization float64
}

// ScalingTable reproduces the paper's extension of the calculation from 20
// to 54 and 150 qubits (raw-bitstring format, 1 GbE), demonstrating the
// linear growth in required rate.
func ScalingTable(qubitCounts []int) ([]ScalingRow, error) {
	rows := make([]ScalingRow, 0, len(qubitCounts))
	for _, n := range qubitCounts {
		w := PaperWorkload(n)
		rate, err := w.DataRateBps(FormatRawBitstrings)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ScalingRow{
			Qubits:      n,
			RateBps:     rate,
			Utilization: rate / GigabitEthernetBps,
		})
	}
	return rows, nil
}
