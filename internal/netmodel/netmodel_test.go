package netmodel

import (
	"math"
	"testing"
)

// The paper's headline number: 1/300µs x 20 x 8 bit = 533 kbit/s.
func TestPaperCalculation533kbps(t *testing.T) {
	w := PaperWorkload(20)
	rate, err := w.DataRateBps(FormatRawBitstrings)
	if err != nil {
		t.Fatal(err)
	}
	want := 20.0 * 8.0 / 300e-6 // 533,333 bit/s
	if math.Abs(rate-want) > 1 {
		t.Errorf("rate = %.0f bit/s, want %.0f (paper: 533 kbit/s)", rate, want)
	}
	if rate < 530e3 || rate > 540e3 {
		t.Errorf("rate %.0f outside 530-540 kbit/s band", rate)
	}
}

func TestWellBelowGigabitEthernet(t *testing.T) {
	w := PaperWorkload(20)
	u, err := w.LinkUtilization(FormatRawBitstrings, GigabitEthernetBps)
	if err != nil {
		t.Fatal(err)
	}
	if u > 0.001 {
		t.Errorf("20-qubit utilization = %.5f, paper says 'well below' 1 GbE", u)
	}
	ok, err := w.FitsLink(FormatRawBitstrings, GigabitEthernetBps)
	if err != nil || !ok {
		t.Error("20-qubit workload must fit 1 GbE")
	}
}

// §2.4: "the data rate grows linearly as the number of qubits increases".
func TestLinearScaling(t *testing.T) {
	rows, err := ScalingTable([]int{20, 54, 150})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatal("want 3 rows")
	}
	r20, r54, r150 := rows[0].RateBps, rows[1].RateBps, rows[2].RateBps
	if math.Abs(r54/r20-54.0/20.0) > 1e-9 {
		t.Errorf("54/20 ratio = %g, want %g", r54/r20, 54.0/20.0)
	}
	if math.Abs(r150/r20-150.0/20.0) > 1e-9 {
		t.Errorf("150/20 ratio = %g, want %g", r150/r20, 150.0/20.0)
	}
	// Even 150 qubits stays far below the link.
	if rows[2].Utilization > 0.005 {
		t.Errorf("150-qubit utilization = %.5f, want < 0.5%%", rows[2].Utilization)
	}
}

func TestHistogramFormatCompressesConcentratedStates(t *testing.T) {
	// A GHZ-like state has 2 distinct outcomes: histograms beat raw
	// bitstrings by orders of magnitude.
	w := PaperWorkload(20)
	w.ShotsPerBatch = 10000
	w.DistinctOutcomes = 2
	hist, err := w.DataRateBps(FormatHistogram)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := w.DataRateBps(FormatRawBitstrings)
	if err != nil {
		t.Fatal(err)
	}
	if hist >= raw/100 {
		t.Errorf("histogram rate %.0f should be <1%% of raw %.0f for 2-outcome states", hist, raw)
	}
}

func TestHistogramWorstCaseBounded(t *testing.T) {
	// With every outcome unique, the histogram carries bitstring+count per
	// shot: worse than raw by the count overhead.
	w := PaperWorkload(10)
	w.ShotsPerBatch = 1000
	w.DistinctOutcomes = 0 // worst case
	hist, err := w.DataRateBps(FormatHistogram)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := w.DataRateBps(FormatRawBitstrings)
	if hist <= raw {
		t.Errorf("worst-case histogram %.0f should exceed raw %.0f (count overhead)", hist, raw)
	}
	// But distinct outcomes cannot exceed 2^qubits.
	w2 := PaperWorkload(4) // 16 possible outcomes
	w2.ShotsPerBatch = 100000
	hist2, err := w2.DataRateBps(FormatHistogram)
	if err != nil {
		t.Fatal(err)
	}
	// 16 outcomes * (4*8+64) bits per 30 s batch — tiny.
	if hist2 > 100 {
		t.Errorf("4-qubit histogram rate = %.1f bit/s, want tiny (outcome cap)", hist2)
	}
}

func TestIQPairsAreHeaviest(t *testing.T) {
	w := PaperWorkload(20)
	iq, err := w.DataRateBps(FormatIQPairs)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := w.DataRateBps(FormatRawBitstrings)
	if iq <= raw {
		t.Errorf("IQ rate %.0f should exceed raw %.0f", iq, raw)
	}
	// 2 float64 vs 8 bits per qubit-shot: 16x.
	if math.Abs(iq/raw-16) > 1e-9 {
		t.Errorf("IQ/raw ratio = %g, want 16", iq/raw)
	}
	// Still fits 1 GbE at 20 qubits (8.5 Mbit/s).
	ok, _ := w.FitsLink(FormatIQPairs, GigabitEthernetBps)
	if !ok {
		t.Error("20-qubit IQ stream should fit 1 GbE")
	}
}

func TestValidation(t *testing.T) {
	w := Workload{Qubits: 0, ShotSeconds: 1e-4}
	if _, err := w.DataRateBps(FormatRawBitstrings); err == nil {
		t.Error("expected error for 0 qubits")
	}
	w = Workload{Qubits: 5, ShotSeconds: 0}
	if _, err := w.DataRateBps(FormatRawBitstrings); err == nil {
		t.Error("expected error for 0 shot duration")
	}
	w = PaperWorkload(5)
	if _, err := w.DataRateBps(OutputFormat(9)); err == nil {
		t.Error("expected error for unknown format")
	}
	if _, err := w.LinkUtilization(FormatRawBitstrings, 0); err == nil {
		t.Error("expected error for zero link rate")
	}
}

func TestDefaultBitsPerBit(t *testing.T) {
	w := Workload{Qubits: 10, ShotSeconds: 1e-3} // BitsPerBit unset -> 1 (ideal)
	rate, err := w.DataRateBps(FormatRawBitstrings)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rate-10*1000) > 1e-9 {
		t.Errorf("ideal encoding rate = %g, want 10000", rate)
	}
}

func TestFormatStrings(t *testing.T) {
	if FormatHistogram.String() != "histogram" ||
		FormatRawBitstrings.String() != "raw-bitstrings" ||
		FormatIQPairs.String() != "iq-pairs" {
		t.Error("format names wrong")
	}
}

func TestShotRate(t *testing.T) {
	w := PaperWorkload(20)
	if got := w.ShotRate(); math.Abs(got-3333.33) > 1 {
		t.Errorf("shot rate = %g, want ~3333/s", got)
	}
	if (Workload{}).ShotRate() != 0 {
		t.Error("zero workload shot rate should be 0")
	}
}
