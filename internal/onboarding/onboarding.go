// Package onboarding models Section 4: the structured program that converts
// hardware access into scientific output. Early-user candidates are scored
// by the paper's review criteria (research relevance, articulated workflow
// plan, deliverability, prior collaboration, institutional affiliation);
// admitted users progress through the Use–Modify–Create training stages on
// the digital twin before gaining noisy-hardware access; and the FAQ
// knowledge base is organized into the six §4 categories, with question
// frequency driving prioritization (the process that surfaced pagination,
// batch jobs, coupling-map access and job-restart tooling as engineering
// work items).
package onboarding

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Stage is the Use–Modify–Create progression of the training model.
type Stage int

const (
	// StageUse: guided execution of provided notebooks on the digital twin.
	StageUse Stage = iota
	// StageModify: experimental modification of provided workflows.
	StageModify
	// StageCreate: independent development; unlocks hardware access.
	StageCreate
)

func (s Stage) String() string {
	switch s {
	case StageUse:
		return "use"
	case StageModify:
		return "modify"
	case StageCreate:
		return "create"
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// Application is an early-user-phase candidacy (§4's review process).
type Application struct {
	User    string
	Project string
	// Review criteria, each scored 0-5 by the selection committee.
	ResearchRelevance  int  // relevance of the research topic
	WorkflowPlan       int  // clearly articulated HPC+QC workflow plan
	Deliverability     int  // likelihood of results within the timeline
	PriorCollaboration bool // existing channels with the center
	MQVAffiliation     bool // institutional affiliation
}

// Score computes the committee score. Boolean criteria add one point each.
func (a Application) Score() int {
	s := a.ResearchRelevance + a.WorkflowPlan + a.Deliverability
	if a.PriorCollaboration {
		s++
	}
	if a.MQVAffiliation {
		s++
	}
	return s
}

// Validate checks score ranges.
func (a Application) Validate() error {
	if a.User == "" {
		return fmt.Errorf("onboarding: application needs a user")
	}
	for _, v := range []int{a.ResearchRelevance, a.WorkflowPlan, a.Deliverability} {
		if v < 0 || v > 5 {
			return fmt.Errorf("onboarding: criterion score %d outside [0,5]", v)
		}
	}
	return nil
}

// User is an admitted early user.
type User struct {
	Name    string
	Project string
	Stage   Stage
	Mentor  string // the assigned solution architect (§4 mentorship model)
	// TwinJobs and HardwareJobs count executed work, for reporting.
	TwinJobs     int
	HardwareJobs int
	// FinalReport records the §4 requirement that early users report out.
	FinalReport bool
}

// Registry is the onboarding state: applications, admitted users, mentors,
// and the FAQ knowledge base.
type Registry struct {
	mu         sync.Mutex
	cutoff     int
	users      map[string]*User
	mentors    []string
	nextMentor int
	faq        map[Category][]*Question
}

// NewRegistry builds a registry; cutoff is the minimum committee score for
// admission, mentors the pool of solution architects assigned round-robin.
func NewRegistry(cutoff int, mentors []string) *Registry {
	return &Registry{
		cutoff:  cutoff,
		users:   make(map[string]*User),
		mentors: append([]string(nil), mentors...),
		faq:     make(map[Category][]*Question),
	}
}

// Review scores an application and admits the user if it clears the cutoff.
// Admitted users start at StageUse with an assigned mentor.
func (r *Registry) Review(a Application) (admitted bool, err error) {
	if err := a.Validate(); err != nil {
		return false, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.users[a.User]; exists {
		return false, fmt.Errorf("onboarding: user %q already admitted", a.User)
	}
	if a.Score() < r.cutoff {
		return false, nil
	}
	mentor := ""
	if len(r.mentors) > 0 {
		mentor = r.mentors[r.nextMentor%len(r.mentors)]
		r.nextMentor++
	}
	r.users[a.User] = &User{Name: a.User, Project: a.Project, Stage: StageUse, Mentor: mentor}
	return true, nil
}

// Lookup returns a copy of a user record.
func (r *Registry) Lookup(name string) (*User, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	u, ok := r.users[name]
	if !ok {
		return nil, fmt.Errorf("onboarding: unknown user %q", name)
	}
	cp := *u
	return &cp, nil
}

// Advance moves a user to the next training stage. Advancement to Create
// requires at least minTwinJobs executed on the digital twin — hands-on
// experience before hardware time (§4: "training began with quantum circuit
// submissions to a digital twin").
const minTwinJobs = 5

func (r *Registry) Advance(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	u, ok := r.users[name]
	if !ok {
		return fmt.Errorf("onboarding: unknown user %q", name)
	}
	switch u.Stage {
	case StageUse:
		u.Stage = StageModify
	case StageModify:
		if u.TwinJobs < minTwinJobs {
			return fmt.Errorf("onboarding: %q needs %d twin jobs before the create stage (has %d)",
				name, minTwinJobs, u.TwinJobs)
		}
		u.Stage = StageCreate
	case StageCreate:
		return fmt.Errorf("onboarding: %q already at the create stage", name)
	}
	return nil
}

// CanSubmit gates job submission: twin access from admission, hardware
// access only at the Create stage.
func (r *Registry) CanSubmit(name string, hardware bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	u, ok := r.users[name]
	if !ok {
		return fmt.Errorf("onboarding: %q is not an admitted early user", name)
	}
	if hardware && u.Stage != StageCreate {
		return fmt.Errorf("onboarding: %q is at stage %s; hardware access requires completing the Use-Modify-Create progression",
			name, u.Stage)
	}
	return nil
}

// RecordJob counts an executed job against the user's record.
func (r *Registry) RecordJob(name string, hardware bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	u, ok := r.users[name]
	if !ok {
		return fmt.Errorf("onboarding: unknown user %q", name)
	}
	if hardware {
		u.HardwareJobs++
	} else {
		u.TwinJobs++
	}
	return nil
}

// SubmitReport records the user's final report (an early-user obligation).
func (r *Registry) SubmitReport(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	u, ok := r.users[name]
	if !ok {
		return fmt.Errorf("onboarding: unknown user %q", name)
	}
	u.FinalReport = true
	return nil
}

// Category is one of the six §4 FAQ categories.
type Category string

const (
	CatGettingStarted Category = "getting-started"
	CatSubmission     Category = "job-submission-and-execution"
	CatTracking       Category = "job-tracking-and-results"
	CatSystemInfo     Category = "system-and-hardware-information"
	CatResourceUsage  Category = "resource-usage"
	CatBudgeting      Category = "budgeting"
)

// Categories lists the §4 taxonomy in presentation order.
func Categories() []Category {
	return []Category{CatGettingStarted, CatSubmission, CatTracking,
		CatSystemInfo, CatResourceUsage, CatBudgeting}
}

// Question is one FAQ entry; Count tracks how often users asked it.
type Question struct {
	Text   string
	Answer string
	Count  int
}

// Ask records a user question, creating or incrementing the FAQ entry, and
// returns the stored answer ("" when the entry is new and unanswered).
func (r *Registry) Ask(cat Category, text string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := strings.ToLower(strings.TrimSpace(text))
	for _, q := range r.faq[cat] {
		if strings.ToLower(q.Text) == key {
			q.Count++
			return q.Answer
		}
	}
	r.faq[cat] = append(r.faq[cat], &Question{Text: strings.TrimSpace(text), Count: 1})
	return ""
}

// Answer fills in the canonical answer for a question.
func (r *Registry) Answer(cat Category, text, answer string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := strings.ToLower(strings.TrimSpace(text))
	for _, q := range r.faq[cat] {
		if strings.ToLower(q.Text) == key {
			q.Answer = answer
			return nil
		}
	}
	return fmt.Errorf("onboarding: no question %q in category %s", text, cat)
}

// TopQuestions returns the most-asked questions in a category — the signal
// that drove §4's prioritization ("many users found it difficult to navigate
// large job histories ... which led us to implement more efficient
// pagination").
func (r *Registry) TopQuestions(cat Category, n int) []Question {
	r.mu.Lock()
	defer r.mu.Unlock()
	qs := make([]Question, 0, len(r.faq[cat]))
	for _, q := range r.faq[cat] {
		qs = append(qs, *q)
	}
	sort.SliceStable(qs, func(i, j int) bool { return qs[i].Count > qs[j].Count })
	if n > 0 && n < len(qs) {
		qs = qs[:n]
	}
	return qs
}

// CohortStats summarizes program health for reporting.
type CohortStats struct {
	Users         int
	AtCreateStage int
	ReportsFiled  int
	TwinJobs      int
	HardwareJobs  int
}

// Stats computes cohort statistics.
func (r *Registry) Stats() CohortStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	var st CohortStats
	for _, u := range r.users {
		st.Users++
		if u.Stage == StageCreate {
			st.AtCreateStage++
		}
		if u.FinalReport {
			st.ReportsFiled++
		}
		st.TwinJobs += u.TwinJobs
		st.HardwareJobs += u.HardwareJobs
	}
	return st
}
