package onboarding

import (
	"strings"
	"testing"
)

func strongApp(user string) Application {
	return Application{
		User: user, Project: "tsp-benchmarking",
		ResearchRelevance: 5, WorkflowPlan: 4, Deliverability: 4,
		PriorCollaboration: true, MQVAffiliation: true,
	}
}

func TestReviewAdmitsStrongApplications(t *testing.T) {
	r := NewRegistry(10, []string{"sa-alice", "sa-bob"})
	admitted, err := r.Review(strongApp("carol"))
	if err != nil {
		t.Fatal(err)
	}
	if !admitted {
		t.Fatal("strong application rejected")
	}
	u, err := r.Lookup("carol")
	if err != nil {
		t.Fatal(err)
	}
	if u.Stage != StageUse {
		t.Errorf("new user at stage %s, want use", u.Stage)
	}
	if u.Mentor != "sa-alice" {
		t.Errorf("mentor = %q, want round-robin sa-alice", u.Mentor)
	}
}

func TestReviewRejectsWeakApplications(t *testing.T) {
	r := NewRegistry(10, nil)
	weak := Application{User: "dave", ResearchRelevance: 2, WorkflowPlan: 2, Deliverability: 2}
	admitted, err := r.Review(weak)
	if err != nil {
		t.Fatal(err)
	}
	if admitted {
		t.Error("weak application admitted")
	}
	if _, err := r.Lookup("dave"); err == nil {
		t.Error("rejected user should not be registered")
	}
}

func TestReviewValidation(t *testing.T) {
	r := NewRegistry(5, nil)
	if _, err := r.Review(Application{}); err == nil {
		t.Error("empty application should fail")
	}
	bad := strongApp("x")
	bad.WorkflowPlan = 9
	if _, err := r.Review(bad); err == nil {
		t.Error("out-of-range score should fail")
	}
	r.Review(strongApp("erin"))
	if _, err := r.Review(strongApp("erin")); err == nil {
		t.Error("double admission should fail")
	}
}

func TestMentorRoundRobin(t *testing.T) {
	r := NewRegistry(5, []string{"sa-1", "sa-2"})
	r.Review(strongApp("u1"))
	r.Review(strongApp("u2"))
	r.Review(strongApp("u3"))
	u1, _ := r.Lookup("u1")
	u2, _ := r.Lookup("u2")
	u3, _ := r.Lookup("u3")
	if u1.Mentor != "sa-1" || u2.Mentor != "sa-2" || u3.Mentor != "sa-1" {
		t.Errorf("mentors = %q, %q, %q", u1.Mentor, u2.Mentor, u3.Mentor)
	}
}

func TestUseModifyCreateProgressionGatesHardware(t *testing.T) {
	r := NewRegistry(5, nil)
	r.Review(strongApp("frank"))
	// Twin access from day one; hardware blocked.
	if err := r.CanSubmit("frank", false); err != nil {
		t.Errorf("twin access denied: %v", err)
	}
	if err := r.CanSubmit("frank", true); err == nil {
		t.Error("hardware access should be blocked at the use stage")
	}
	if err := r.Advance("frank"); err != nil { // use -> modify
		t.Fatal(err)
	}
	// Create requires twin experience.
	if err := r.Advance("frank"); err == nil {
		t.Error("advancement to create without twin jobs should fail")
	}
	for i := 0; i < 5; i++ {
		if err := r.RecordJob("frank", false); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Advance("frank"); err != nil { // modify -> create
		t.Fatal(err)
	}
	if err := r.CanSubmit("frank", true); err != nil {
		t.Errorf("hardware access denied at create stage: %v", err)
	}
	if err := r.Advance("frank"); err == nil {
		t.Error("advancing past create should fail")
	}
}

func TestCanSubmitUnknownUser(t *testing.T) {
	r := NewRegistry(5, nil)
	if err := r.CanSubmit("nobody", false); err == nil {
		t.Error("unknown user should be denied")
	}
	if err := r.RecordJob("nobody", false); err == nil {
		t.Error("recording for unknown user should fail")
	}
	if err := r.Advance("nobody"); err == nil {
		t.Error("advancing unknown user should fail")
	}
	if err := r.SubmitReport("nobody"); err == nil {
		t.Error("report for unknown user should fail")
	}
}

func TestFAQFrequencyDrivesPriority(t *testing.T) {
	r := NewRegistry(5, nil)
	// The §4 story: pagination pain shows up as repeated questions.
	for i := 0; i < 7; i++ {
		r.Ask(CatTracking, "How do I find my old jobs in the dashboard?")
	}
	r.Ask(CatTracking, "Where are my result files?")
	r.Ask(CatTracking, "Where are my result files?")
	r.Ask(CatTracking, "Can I restart a job after an outage?")

	top := r.TopQuestions(CatTracking, 2)
	if len(top) != 2 {
		t.Fatalf("top questions = %d", len(top))
	}
	if !strings.Contains(top[0].Text, "dashboard") || top[0].Count != 7 {
		t.Errorf("top question = %+v", top[0])
	}
	if top[1].Count != 2 {
		t.Errorf("second question count = %d", top[1].Count)
	}
}

func TestFAQAnswerFlow(t *testing.T) {
	r := NewRegistry(5, nil)
	if got := r.Ask(CatSubmission, "How many shots can I request?"); got != "" {
		t.Error("new question should have no answer")
	}
	if err := r.Answer(CatSubmission, "how many shots can I request?", "Up to 100000 per job."); err != nil {
		t.Fatal(err)
	}
	if got := r.Ask(CatSubmission, "HOW MANY SHOTS CAN I REQUEST?"); got != "Up to 100000 per job." {
		t.Errorf("answer lookup = %q", got)
	}
	if err := r.Answer(CatBudgeting, "never asked", "x"); err == nil {
		t.Error("answering unknown question should fail")
	}
}

func TestSixFAQCategories(t *testing.T) {
	cats := Categories()
	if len(cats) != 6 {
		t.Fatalf("categories = %d, want 6 (§4)", len(cats))
	}
	if cats[0] != CatGettingStarted || cats[5] != CatBudgeting {
		t.Errorf("category order = %v", cats)
	}
}

func TestCohortStats(t *testing.T) {
	r := NewRegistry(5, []string{"sa"})
	r.Review(strongApp("u1"))
	r.Review(strongApp("u2"))
	r.Advance("u1")
	for i := 0; i < 5; i++ {
		r.RecordJob("u1", false)
	}
	r.Advance("u1")
	r.RecordJob("u1", true)
	r.SubmitReport("u1")
	st := r.Stats()
	if st.Users != 2 || st.AtCreateStage != 1 || st.ReportsFiled != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.TwinJobs != 5 || st.HardwareJobs != 1 {
		t.Errorf("job counts = %+v", st)
	}
}

func TestStageStrings(t *testing.T) {
	if StageUse.String() != "use" || StageModify.String() != "modify" || StageCreate.String() != "create" {
		t.Error("stage names wrong")
	}
}
