package ops

import (
	"fmt"
	"sort"
)

// Preventive maintenance (§3.4): a one-day procedure roughly every six
// months — flushing the liquid-nitrogen system, plus age-dependent tasks
// such as UPS battery checks and tip-seal replacement on the cryo pumps.
// Longer windows carry control software/firmware upgrades. The schedule is
// coordinated with the HPC center to minimize disruption (the same lesson-2
// control the calibration slots get).

// MaintenanceTask identifies one §3.4 activity.
type MaintenanceTask string

const (
	TaskLN2Flush        MaintenanceTask = "ln2-flush"
	TaskUPSBatteryCheck MaintenanceTask = "ups-battery-check"
	TaskTipSealReplace  MaintenanceTask = "tip-seal-replacement"
	TaskSoftwareUpgrade MaintenanceTask = "control-software-upgrade"
)

// MaintenanceWindow is one planned service interval.
type MaintenanceWindow struct {
	StartDay float64
	Days     float64
	Tasks    []MaintenanceTask
}

// MaintenancePlan generates the §3.4 schedule for a campaign of the given
// length: a one-day preventive window every intervalDays (default 182 ≈ six
// months), always including the LN2 flush; the UPS battery check joins
// every second window, tip seals every fourth, and a software upgrade
// extends every third window to two days.
func MaintenancePlan(campaignDays int, intervalDays float64) []MaintenanceWindow {
	if intervalDays <= 0 {
		intervalDays = 182
	}
	var plan []MaintenanceWindow
	n := 0
	for day := intervalDays; day < float64(campaignDays); day += intervalDays {
		n++
		w := MaintenanceWindow{
			StartDay: day,
			Days:     1,
			Tasks:    []MaintenanceTask{TaskLN2Flush},
		}
		if n%2 == 0 {
			w.Tasks = append(w.Tasks, TaskUPSBatteryCheck)
		}
		if n%4 == 0 {
			w.Tasks = append(w.Tasks, TaskTipSealReplace)
		}
		if n%3 == 0 {
			w.Tasks = append(w.Tasks, TaskSoftwareUpgrade)
			w.Days = 2
		}
		plan = append(plan, w)
	}
	return plan
}

// TotalMaintenanceDays sums the planned service time.
func TotalMaintenanceDays(plan []MaintenanceWindow) float64 {
	total := 0.0
	for _, w := range plan {
		total += w.Days
	}
	return total
}

// ValidatePlan checks that windows are ordered and non-overlapping and fit
// the campaign.
func ValidatePlan(plan []MaintenanceWindow, campaignDays int) error {
	sorted := append([]MaintenanceWindow(nil), plan...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].StartDay < sorted[j].StartDay })
	prevEnd := 0.0
	for i, w := range sorted {
		if w.Days <= 0 {
			return fmt.Errorf("ops: maintenance window %d has non-positive duration", i)
		}
		if w.StartDay < prevEnd {
			return fmt.Errorf("ops: maintenance window %d overlaps the previous one", i)
		}
		if w.StartDay+w.Days > float64(campaignDays) {
			return fmt.Errorf("ops: maintenance window %d extends past the campaign", i)
		}
		if len(w.Tasks) == 0 {
			return fmt.Errorf("ops: maintenance window %d has no tasks", i)
		}
		prevEnd = w.StartDay + w.Days
	}
	return nil
}

// MaintenanceCoverage reports which tasks the plan performs at least once —
// used to assert the §3.4 inventory is exercised over a long campaign.
func MaintenanceCoverage(plan []MaintenanceWindow) map[MaintenanceTask]int {
	out := make(map[MaintenanceTask]int)
	for _, w := range plan {
		for _, task := range w.Tasks {
			out[task]++
		}
	}
	return out
}
