package ops

import "testing"

func TestMaintenancePlanSixMonthCadence(t *testing.T) {
	// Two years of operation: windows at ~day 182, 364, 546, 728.
	plan := MaintenancePlan(750, 0)
	if len(plan) != 4 {
		t.Fatalf("plan has %d windows, want 4 over two years", len(plan))
	}
	if err := ValidatePlan(plan, 750); err != nil {
		t.Fatal(err)
	}
	cov := MaintenanceCoverage(plan)
	// Every window flushes LN2 (§3.4).
	if cov[TaskLN2Flush] != 4 {
		t.Errorf("LN2 flush count = %d, want every window", cov[TaskLN2Flush])
	}
	// Battery checks every second window, tip seals every fourth.
	if cov[TaskUPSBatteryCheck] != 2 {
		t.Errorf("UPS battery checks = %d, want 2", cov[TaskUPSBatteryCheck])
	}
	if cov[TaskTipSealReplace] != 1 {
		t.Errorf("tip seal replacements = %d, want 1", cov[TaskTipSealReplace])
	}
	if cov[TaskSoftwareUpgrade] != 1 {
		t.Errorf("software upgrades = %d, want 1", cov[TaskSoftwareUpgrade])
	}
}

func TestMaintenanceTotalDaysSmall(t *testing.T) {
	plan := MaintenancePlan(750, 0)
	total := TotalMaintenanceDays(plan)
	// 3 one-day windows + 1 two-day (software upgrade): 5 days / 750.
	if total != 5 {
		t.Errorf("total maintenance = %g days, want 5", total)
	}
	// Planned maintenance is under 1% of the campaign — consistent with
	// the paper's high-availability framing.
	if total/750 > 0.01 {
		t.Errorf("maintenance fraction %.4f exceeds 1%%", total/750)
	}
}

func TestMaintenancePlanShortCampaignIsEmpty(t *testing.T) {
	// The 146-day Figure 4 campaign contains no six-month window.
	plan := MaintenancePlan(146, 0)
	if len(plan) != 0 {
		t.Errorf("146-day campaign should need no preventive maintenance, got %d windows", len(plan))
	}
}

func TestValidatePlanRejectsBadPlans(t *testing.T) {
	bad := []MaintenanceWindow{{StartDay: 10, Days: 0, Tasks: []MaintenanceTask{TaskLN2Flush}}}
	if err := ValidatePlan(bad, 100); err == nil {
		t.Error("zero-duration window should fail")
	}
	overlap := []MaintenanceWindow{
		{StartDay: 10, Days: 2, Tasks: []MaintenanceTask{TaskLN2Flush}},
		{StartDay: 11, Days: 1, Tasks: []MaintenanceTask{TaskLN2Flush}},
	}
	if err := ValidatePlan(overlap, 100); err == nil {
		t.Error("overlapping windows should fail")
	}
	past := []MaintenanceWindow{{StartDay: 99.5, Days: 1, Tasks: []MaintenanceTask{TaskLN2Flush}}}
	if err := ValidatePlan(past, 100); err == nil {
		t.Error("window past campaign end should fail")
	}
	empty := []MaintenanceWindow{{StartDay: 10, Days: 1}}
	if err := ValidatePlan(empty, 100); err == nil {
		t.Error("window without tasks should fail")
	}
}

func TestCustomInterval(t *testing.T) {
	plan := MaintenancePlan(100, 30)
	if len(plan) != 3 {
		t.Errorf("30-day interval over 100 days: %d windows, want 3", len(plan))
	}
	if err := ValidatePlan(plan, 100); err != nil {
		t.Fatal(err)
	}
}
