// Package ops runs the daily-operations simulation of Section 3: qubit
// parameters drift, the scheduler-controlled automatic calibration policy
// keeps fidelities in band (Figure 4's 146-day series), the cryogenic plant
// reacts to power/cooling outages (§3.5), and availability is accounted for
// the way an HPC center would (§3.2's ">100 days of continuous operation").
package ops

import (
	"fmt"
	"math/rand"

	"repro/internal/calib"
	"repro/internal/cryo"
	"repro/internal/device"
	"repro/internal/facility"
	"repro/internal/telemetry"
)

// Sample is one point of the Figure 4 series.
type FidelityPoint struct {
	Day      float64
	F1Q      float64
	FReadout float64
	FCZ      float64
}

// OutageKind classifies injected faults.
type OutageKind int

const (
	OutagePower OutageKind = iota
	OutageCoolingWater
)

func (k OutageKind) String() string {
	if k == OutagePower {
		return "power"
	}
	return "cooling-water"
}

// OutageEvent describes an injected fault.
type OutageEvent struct {
	Kind     OutageKind
	StartDay float64
	// DurationHours the fault persists before repair.
	DurationHours float64
}

// Config parameterizes a campaign.
type Config struct {
	Days int
	Seed int64
	// Policy controls recalibration cadence; nil uses the default
	// daily-quick / weekly-full policy.
	Policy *calib.Policy
	// Redundant enables redundant power feeds + UPS and a redundant
	// cooling-water loop (lesson 3 ablation).
	Redundant bool
	// Outages to inject.
	Outages []OutageEvent
	// SampleEveryHours controls the fidelity series cadence (default 24).
	SampleEveryHours float64
	// HealthCheckShots (default 300) for the §3.2 GHZ checks; 0 disables
	// health-check-driven escalation (faster, drift-only campaigns).
	HealthCheckShots int
}

// Report is the outcome of a campaign.
type Report struct {
	// Series is the Figure 4 reproduction.
	Series []FidelityPoint
	// Quick/Full count executed procedures.
	QuickCals, FullCals int
	// CalibrationHours is total time spent calibrating.
	CalibrationHours float64
	// DowntimeHours is time the QPU was unavailable (calibration excluded,
	// counted separately, matching the paper's framing of calibration as
	// schedulable maintenance rather than failure).
	DowntimeHours float64
	// AvailableFraction = 1 - (downtime+calibration)/total.
	AvailableFraction float64
	// UnattendedDays is the longest stretch without human intervention
	// (outage repairs are the only human actions in the model).
	UnattendedDays float64
	// WarmupsAbove1K counts calibration-loss events (§3.5).
	WarmupsAbove1K int
	// CooldownHours spent re-cooling after outages.
	CooldownHours float64
}

// Simulator holds the wired subsystems for a campaign.
type Simulator struct {
	cfg    Config
	qpu    *device.QPU
	cry    *cryo.Cryostat
	power  *facility.PowerSystem
	water  *facility.CoolingWater
	policy *calib.Policy
	store  *telemetry.Store
	rng    *rand.Rand
}

// New wires a simulator.
func New(cfg Config) (*Simulator, error) {
	if cfg.Days < 1 {
		return nil, fmt.Errorf("ops: campaign needs >= 1 day, got %d", cfg.Days)
	}
	if cfg.SampleEveryHours == 0 {
		cfg.SampleEveryHours = 24
	}
	policy := cfg.Policy
	if policy == nil {
		policy = calib.DefaultPolicy()
	}
	var popts []facility.PowerOption
	if cfg.Redundant {
		popts = append(popts, facility.WithRedundantFeed(), facility.WithUPS(4*3600))
	}
	return &Simulator{
		cfg:    cfg,
		qpu:    device.New20Q(cfg.Seed),
		cry:    cryo.New(),
		power:  facility.NewPowerSystem(popts...),
		water:  facility.NewCoolingWater(18, cfg.Redundant),
		policy: policy,
		store:  telemetry.NewStore(0),
		rng:    rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
	}, nil
}

// Store exposes the telemetry accumulated during the campaign.
func (s *Simulator) Store() *telemetry.Store { return s.store }

// Run executes the campaign with an hourly step.
func (s *Simulator) Run() (*Report, error) {
	rep := &Report{}
	const stepHours = 1.0
	totalHours := float64(s.cfg.Days) * 24

	type activeOutage struct {
		ev      OutageEvent
		endHour float64
	}
	var outages []activeOutage
	for _, ev := range s.cfg.Outages {
		outages = append(outages, activeOutage{ev: ev, endHour: ev.StartDay*24 + ev.DurationHours})
	}

	lastSample := -s.cfg.SampleEveryHours
	unattendedStart := 0.0
	calibLost := false
	coolingDown := false

	for hour := 0.0; hour < totalHours; hour += stepHours {
		day := hour / 24

		// --- Fault injection & repair.
		for i := range outages {
			o := &outages[i]
			startHour := o.ev.StartDay * 24
			if hour >= startHour && hour < o.endHour {
				// A fault takes out one feed; redundancy (lesson 3) is
				// precisely the ability to survive single-feed failures.
				switch o.ev.Kind {
				case OutagePower:
					s.power.Feeds()[0].Fail()
				case OutageCoolingWater:
					s.water.Feeds()[0].Fail()
				}
			}
			if hour >= o.endHour && hour < o.endHour+stepHours {
				// Repair is a human intervention.
				switch o.ev.Kind {
				case OutagePower:
					for _, f := range s.power.Feeds() {
						f.Restore()
					}
				case OutageCoolingWater:
					for _, f := range s.water.Feeds() {
						f.Restore()
					}
				}
				if span := day - unattendedStart; span > rep.UnattendedDays {
					rep.UnattendedDays = span
				}
				unattendedStart = day
			}
		}

		// --- Facility dynamics.
		s.power.Advance(stepHours * 3600)
		s.water.Advance(stepHours * 3600)

		// Cooling requires power and in-window water (§3.5: water over
		// temperature trips the cryo pumps).
		coolingOK := s.power.Powered() && s.water.Healthy() && s.water.InWindow()
		if coolingOK {
			s.cry.SetCooling(cryo.CoolingOn)
		} else {
			s.cry.SetCooling(cryo.CoolingOff)
		}
		wasSafe := s.cry.CalibrationSafe()
		s.cry.Advance(stepHours * 3600)
		if wasSafe && !s.cry.CalibrationSafe() {
			rep.WarmupsAbove1K++
			calibLost = true
		}

		operational := coolingOK && s.cry.AtBase()
		if !operational {
			rep.DowntimeHours += stepHours
			if coolingOK && !s.cry.AtBase() {
				rep.CooldownHours += stepHours
				coolingDown = true
			}
		} else if coolingDown {
			coolingDown = false
		}

		// --- Drift always acts on the calibration record.
		s.qpu.AdvanceDrift(stepHours)
		s.policy.Advance(stepHours)

		// --- Calibration decisions only when operational.
		if operational {
			proc := calib.ProcedureNone
			if calibLost {
				// §3.5: excursions above 1 K require a full calibration.
				proc = calib.ProcedureFull
				calibLost = false
			} else {
				proc = s.policy.Decide(s.qpu.Calibration().AgeHours, nil)
			}
			if proc != calib.ProcedureNone {
				mins := s.qpu.Recalibrate(proc == calib.ProcedureFull)
				rep.CalibrationHours += mins / 60
				s.policy.Ran(proc)
				if proc == calib.ProcedureFull {
					rep.FullCals++
				} else {
					rep.QuickCals++
				}
			}
		}

		// --- Telemetry & series sampling.
		if hour-lastSample >= s.cfg.SampleEveryHours {
			lastSample = hour
			c := s.qpu.Calibration()
			pt := FidelityPoint{Day: day, F1Q: c.MeanF1Q(), FReadout: c.MeanFReadout(), FCZ: c.MeanFCZ()}
			rep.Series = append(rep.Series, pt)
			ts := hour * 3600
			s.store.Append("fidelity_1q", ts, pt.F1Q)
			s.store.Append("fidelity_readout", ts, pt.FReadout)
			s.store.Append("fidelity_cz", ts, pt.FCZ)
			s.store.Append("mxc_temp_k", ts, s.cry.QPUTemperature())
			s.store.Append("power_kw", ts, s.cry.PowerDrawKW())
			s.store.Append("water_temp_c", ts, s.water.Temperature())
		}
	}
	if span := float64(s.cfg.Days) - unattendedStart; span > rep.UnattendedDays {
		rep.UnattendedDays = span
	}
	rep.AvailableFraction = 1 - (rep.DowntimeHours+rep.CalibrationHours)/totalHours
	return rep, nil
}

// SeriesStats summarizes a fidelity series for assertions and EXPERIMENTS.md.
type SeriesStats struct {
	MeanF1Q, MinF1Q           float64
	MeanFReadout, MinFReadout float64
	MeanFCZ, MinFCZ           float64
}

// Stats computes series summary statistics.
func (r *Report) Stats() SeriesStats {
	st := SeriesStats{MinF1Q: 1, MinFReadout: 1, MinFCZ: 1}
	if len(r.Series) == 0 {
		return SeriesStats{}
	}
	for _, p := range r.Series {
		st.MeanF1Q += p.F1Q
		st.MeanFReadout += p.FReadout
		st.MeanFCZ += p.FCZ
		if p.F1Q < st.MinF1Q {
			st.MinF1Q = p.F1Q
		}
		if p.FReadout < st.MinFReadout {
			st.MinFReadout = p.FReadout
		}
		if p.FCZ < st.MinFCZ {
			st.MinFCZ = p.FCZ
		}
	}
	n := float64(len(r.Series))
	st.MeanF1Q /= n
	st.MeanFReadout /= n
	st.MeanFCZ /= n
	return st
}
